#!/usr/bin/env bash
# Repo verification: the tier-1 build + test cycle, then a sanitizer pass
# over the suites where lifetime bugs hide (IPC teardown, observability
# ring/export, chaos supervision).
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "== sanitizer pass skipped =="
  exit 0
fi

echo "== sanitizer pass: ASan+UBSan on test_ipc / test_obs / test_chaos =="
cmake -B build-asan -S . -DNEAT_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" --target test_ipc test_obs test_chaos
./build-asan/tests/test_ipc
./build-asan/tests/test_obs
./build-asan/tests/test_chaos

echo "== all checks passed =="
