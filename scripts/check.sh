#!/usr/bin/env bash
# Repo verification: the tier-1 build + test cycle, then a sanitizer pass
# over the suites where lifetime bugs hide (IPC teardown, observability
# ring/export, chaos supervision) plus a quick ext_perf pass (the packet
# pool and event-queue fast paths recycle memory; ASan must see them).
#
# Usage: scripts/check.sh [--skip-sanitize] [--perf]
#
# --perf additionally runs the full ext_perf bench and fails on a >10%
# regression of fig9_pkts_per_host_sec against the committed
# BENCH_ext_perf.json (the perf trajectory gate; see EXPERIMENTS.md), on a
# simulated-result drift (fig9_krps is seed-deterministic and must match the
# committed value), or on a latency-guard breach: batching may never trade
# more than 20% of the simulated request p99 against the pre-batching
# baseline recorded in baseline_fig9_p99_latency_ms.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

SKIP_SANITIZE=0
RUN_PERF=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    --perf) RUN_PERF=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "== sanitizer pass skipped =="
else
  echo "== sanitizer pass: ASan+UBSan on test_ipc / test_obs / test_chaos / test_workload / test_udp_e2e / test_defense / test_fleet / ext_perf / ext_workloads / ext_defense / ext_fleet =="
  cmake -B build-asan -S . -DNEAT_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target test_ipc test_obs test_chaos test_fastpath test_workload \
             test_udp_e2e test_defense test_fleet ext_perf ext_workloads \
             ext_defense ext_fleet
  ./build-asan/tests/test_ipc
  ./build-asan/tests/test_obs
  ./build-asan/tests/test_chaos
  ./build-asan/tests/test_fastpath
  # The workload engine churns sockets, filters and pooled packets by the
  # thousand — exactly where lifetime bugs hide. The UDP e2e suite crosses
  # the SYSCALL-server bind registry and replica recovery under ASan too.
  ./build-asan/tests/test_workload
  ./build-asan/tests/test_udp_e2e
  # The migration churn soak must leak no filters or sockets — that claim
  # only means something with ASan watching the teardown.
  ./build-asan/tests/test_defense
  # Cross-host extract/adopt moves sockets between whole hosts; ASan must
  # see every checkpoint buffer and husk fd die exactly once.
  ./build-asan/tests/test_fleet
  # One short end-to-end pass over the pooled data path under ASan: buffer
  # recycling must be invisible to the sanitizer.
  (cd build-asan/bench && ./ext_perf --quick)
  (cd build-asan/bench && ./ext_workloads --quick)
  (cd build-asan/bench && ./ext_defense --quick)
  (cd build-asan/bench && ./ext_fleet --quick)
fi

echo "== defense gate: ext_defense --quick vs the >=5x goodput-ratio floor =="
(cd build/bench && ./ext_defense --quick)
python3 - <<'EOF'
import json, sys

with open("build/bench/BENCH_ext_defense.json") as f:
    j = json.load(f)
ratio = float(j["syn_flood.goodput_ratio"])
shown = ">1000" if ratio > 1000 else f"{ratio:.1f}"
print(f"syn_flood.goodput_ratio: {shown}x (gate: >= 5)")
if ratio < 5.0:
    print("FAIL: defended/attacked goodput ratio below 5x", file=sys.stderr)
    sys.exit(1)
if not j["defense_ok"]:
    print("FAIL: ext_defense contract failures", file=sys.stderr)
    sys.exit(1)
print("defense gate passed")
EOF

echo "== fleet gate: ext_fleet --quick (crash isolation within 5%) =="
(cd build/bench && ./ext_fleet --quick)

if [[ "$RUN_PERF" == 1 ]]; then
  echo "== perf gate: ext_perf vs committed BENCH_ext_perf.json =="
  if [[ ! -f BENCH_ext_perf.json ]]; then
    echo "no committed BENCH_ext_perf.json to compare against" >&2
    exit 1
  fi
  (cd build/bench && ./ext_perf)
  python3 - <<'EOF'
import json, sys

def key(path, k):
    with open(path) as f:
        return float(json.load(f)[k])

committed = key("BENCH_ext_perf.json", "fig9_pkts_per_host_sec")
current = key("build/bench/BENCH_ext_perf.json", "fig9_pkts_per_host_sec")
ratio = current / committed
print(f"fig9_pkts_per_host_sec: committed {committed:.0f}, "
      f"current {current:.0f} ({ratio:.2f}x)")
if ratio < 0.90:
    print("FAIL: >10% wall-clock throughput regression", file=sys.stderr)
    sys.exit(1)

# Simulated results are seed-deterministic: any drift in krps means the
# data path changed behavior, not just speed.
krps_committed = key("BENCH_ext_perf.json", "fig9_krps")
krps = key("build/bench/BENCH_ext_perf.json", "fig9_krps")
print(f"fig9_krps: committed {krps_committed:.1f}, current {krps:.1f}")
if abs(krps - krps_committed) > 0.05 * krps_committed:
    print("FAIL: simulated fig9 krps drifted >5% from committed value",
          file=sys.stderr)
    sys.exit(1)

# Latency guard: end-to-end batching (channel budgets, NIC interrupt
# moderation) amortizes events but defers work; the simulated request p99
# must stay within 20% of the pre-batching baseline.
p99_base = key("build/bench/BENCH_ext_perf.json",
               "baseline_fig9_p99_latency_ms")
p99 = key("build/bench/BENCH_ext_perf.json", "fig9_p99_latency_ms")
limit = 1.20 * p99_base
print(f"fig9_p99_latency_ms: {p99:.3f} (pre-batching {p99_base:.3f}, "
      f"guard <= {limit:.3f})")
if p99 > limit:
    print("FAIL: batching traded >20% of request p99 for throughput",
          file=sys.stderr)
    sys.exit(1)

# Batch amortization must actually be happening: a mean NIC RX burst of
# 1.0 means the doorbell path silently fell back to per-frame delivery.
nic_mean = key("build/bench/BENCH_ext_perf.json", "fig9_nic_rx_batch_mean")
print(f"fig9_nic_rx_batch_mean: {nic_mean:.2f} frames/doorbell")
if nic_mean < 1.5:
    print("FAIL: NIC RX batching regressed to per-frame doorbells",
          file=sys.stderr)
    sys.exit(1)
print("perf gate passed")
EOF
fi

echo "== all checks passed =="
