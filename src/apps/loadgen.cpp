#include "apps/loadgen.hpp"

#include <algorithm>
#include <cassert>

namespace neat::apps {

using socklib::CloseReason;
using socklib::ConnCallbacks;
using socklib::Fd;
using socklib::kBadFd;

LoadGen::LoadGen(sim::Simulator& sim, std::string name, Config config)
    : sim::Process(sim, std::move(name)), config_(std::move(config)) {}

void LoadGen::attach_api(std::unique_ptr<socklib::SocketApi> api) {
  api_ = std::move(api);
}

void LoadGen::start() {
  assert(api_ && "attach_api() before start()");
  started_ = true;
  for (std::size_t i = 0; i < config_.concurrency; ++i) open_connection();
}

void LoadGen::mark() {
  report_.committed_requests = 0;
  report_.committed_bytes = 0;
  report_.clean_conns = 0;
  report_.error_conns = 0;
  report_.bad_status = 0;
  report_.payload_mismatches = 0;
  report_.errors_by_reason.fill(0);
  report_.latency.reset();
  for (auto& [fd, c] : conns_) {
    c.window_requests = 0;
    c.window_bytes = 0;
  }
}

void LoadGen::open_connection() {
  if (!started_) return;
  if (config_.max_conns != 0 && conns_started_ >= config_.max_conns) return;
  ++conns_started_;
  post(config_.connect_cost, [this] {
    ConnCallbacks cb;
    cb.on_connected = [this](Fd fd) { send_request(fd); };
    cb.on_readable = [this](Fd fd) { on_readable(fd); };
    cb.on_closed = [this](Fd fd, CloseReason r) { on_closed(fd, r); };
    const Fd fd = api_->connect(config_.server, cb);
    if (fd == kBadFd) {
      ++report_.error_conns;
      open_connection();
      return;
    }
    auto [cit, inserted] = conns_.emplace(fd, Conn{});
    if (inserted && config_.expect_body != nullptr) {
      // Element addresses in an unordered_map are stable; the sink dies
      // with the Conn it points at.
      Conn* cp = &cit->second;
      cp->parser.set_body_sink(
          [this, cp](std::size_t off, std::span<const std::uint8_t> chunk) {
            if (cp->parser.last_status() != 200) return;
            const auto& want = *config_.expect_body;
            if (off + chunk.size() > want.size() ||
                !std::equal(chunk.begin(), chunk.end(), want.begin() + off)) {
              ++report_.payload_mismatches;
            }
          });
    }
  });
}

void LoadGen::send_request(Fd fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (config_.think_time > 0) {
    after(config_.think_time, config_.send_cost, [this, fd] { do_send(fd); });
    return;
  }
  post(config_.send_cost, [this, fd] { do_send(fd); });
}

void LoadGen::do_send(Fd fd) {
  auto cit = conns_.find(fd);
  if (cit == conns_.end()) return;
  Conn& c = cit->second;
  const auto req = build_request(config_.path);
  const std::size_t n = api_->send(fd, req);
  // Requests are tiny; a short write here means the connection is dying.
  if (n != req.size()) {
    api_->close(fd);
    on_closed(fd, CloseReason::kReset);
    return;
  }
  c.request_outstanding = true;
  c.request_sent_at = sim().now();
}

void LoadGen::on_readable(Fd fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::size_t avail = api_->readable(fd);
  post(config_.recv_cost + config_.per_16_bytes * (avail / 16), [this, fd] {
    auto cit = conns_.find(fd);
    if (cit == conns_.end()) return;
    Conn& c = cit->second;

    std::uint8_t buf[8192];
    std::size_t done = 0;
    while (true) {
      const std::size_t n = api_->recv(fd, buf);
      if (n == 0) break;
      done += c.parser.feed({buf, n});
      if (c.parser.error()) break;
    }

    if (c.parser.error()) {
      api_->close(fd);
      on_closed(fd, CloseReason::kReset);
      return;
    }

    for (std::size_t i = 0; i < done; ++i) {
      if (!c.request_outstanding) break;
      c.request_outstanding = false;
      if (c.parser.last_status() != 200) ++report_.bad_status;
      const sim::SimTime lat = sim().now() - c.request_sent_at;
      report_.latency.record(lat);
      if (global_latency_ == nullptr) {
        global_latency_ =
            &sim().metrics().histogram("loadgen.request_latency_ns");
      }
      global_latency_->record(lat);
      ++c.completed;
      // Count optimistically; if the connection later errors, its window
      // contribution is dismissed (httperf semantics) in on_closed().
      ++c.window_requests;
      ++report_.committed_requests;
      const std::uint64_t nb = c.parser.body_bytes_total() - c.prev_body_total;
      c.window_bytes += nb;
      report_.committed_bytes += nb;
      c.prev_body_total = c.parser.body_bytes_total();

      if (c.completed >= config_.requests_per_conn) {
        ++report_.clean_conns;
        c.counted = true;
        api_->close(fd);
        conns_.erase(fd);
        open_connection();
        return;
      }
      send_request(fd);
    }

    if (api_->eof(fd)) {
      api_->close(fd);
      on_closed(fd, CloseReason::kReset);
    }
  });
}

void LoadGen::on_closed(Fd fd, CloseReason reason) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (!c.counted) {
    // httperf semantics: any connection with an error is dismissed from
    // the reported request rate and throughput — take back its window
    // contribution.
    report_.committed_requests -= std::min(report_.committed_requests,
                                           c.window_requests);
    report_.committed_bytes -=
        std::min(report_.committed_bytes, c.window_bytes);
    ++report_.error_conns;
    const auto idx = static_cast<std::size_t>(reason);
    if (idx < report_.errors_by_reason.size()) {
      ++report_.errors_by_reason[idx];
    }
  }
  conns_.erase(it);
  open_connection();
}

}  // namespace neat::apps
