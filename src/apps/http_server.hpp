// The benchmark web server — the paper's lighttpd stand-in.
//
// Event-driven, serves in-memory static files over keep-alive HTTP/1.1,
// deliberately minimal so measurements exercise the network stack rather
// than the application (§6.2). Programmed strictly against SocketApi: the
// same binary logic runs on the NEaT stack and on the Linux baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/http.hpp"
#include "obs/metrics.hpp"
#include "sim/process.hpp"
#include "socklib/socket_api.hpp"

namespace neat::apps {

class HttpServer : public sim::Process {
 public:
  /// Application-side CPU costs per operation (include the user-space part
  /// of the socket library, as lighttpd's profile would).
  struct Costs {
    sim::Cycles accept{2500};
    sim::Cycles read_parse{6500};   ///< per readable event + request parse
    sim::Cycles respond{30400};     ///< per request: dispatch + headers
    sim::Cycles per_16_bytes{2};    ///< body copy
  };

  struct Stats {
    std::uint64_t conns_accepted{0};
    std::uint64_t requests{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t not_found{0};
    std::uint64_t conn_errors{0};
    /// Connections closed by the slowloris header deadlines.
    std::uint64_t deadline_closes{0};
  };

  HttpServer(sim::Simulator& sim, std::string name, const FileStore& files,
             std::uint16_t port, Costs costs);
  HttpServer(sim::Simulator& sim, std::string name, const FileStore& files,
             std::uint16_t port)
      : HttpServer(sim, std::move(name), files, port, Costs{}) {}

  /// The server owns its socket API instance (its libc, so to speak).
  void attach_api(std::unique_ptr<socklib::SocketApi> api);

  /// Open the listening socket and start serving.
  void start();

  [[nodiscard]] const Stats& app_stats() const { return stats_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] socklib::SocketApi& api() { return *api_; }

  /// Keep-alive request limit per connection (paper tuned lighttpd to
  /// 1000).
  int max_requests_per_conn{1000};

  /// Slowloris defense. `first_byte_deadline` bounds accept() -> first
  /// byte; `header_deadline` bounds the time from a request's first byte
  /// to its complete header (it deliberately does NOT reset on trickled
  /// bytes — that trickle is the attack). Completing a request resets the
  /// clock for the next one. 0 disables (the undefended baseline).
  sim::SimTime first_byte_deadline{0};
  sim::SimTime header_deadline{0};

 protected:
  void on_restart() override;

 private:
  struct Conn {
    HttpRequestParser parser;
    std::vector<std::uint8_t> out;  // pending response bytes
    std::size_t out_off{0};
    int served{0};
    bool closing{false};
    bool respond_pending{0};
    std::vector<HttpRequest> queue;  // pipelined/waiting requests
    std::vector<sim::SimTime> queue_at;  // arrival stamp per queued request
    sim::SimTime accepted_at{0};
    bool got_bytes{false};          // any data ever received
    /// First byte of the in-progress request's header (0 = no partial
    /// request outstanding); the header deadline measures from here.
    sim::SimTime header_start_at{0};
  };

  void accept_loop();
  void on_readable(socklib::Fd fd);
  void serve_next(socklib::Fd fd);
  void continue_write(socklib::Fd fd);
  void finish(socklib::Fd fd);
  void deadline_sweep();

  const FileStore& files_;
  std::uint16_t port_;
  Costs costs_;
  Stats stats_;
  std::unique_ptr<socklib::SocketApi> api_;
  socklib::Fd listen_fd_{socklib::kBadFd};
  std::unordered_map<socklib::Fd, Conn> conns_;
  obs::Histogram* req_latency_{nullptr};
  sim::EventHandle sweep_timer_;
};

}  // namespace neat::apps
