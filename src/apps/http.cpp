#include "apps/http.hpp"

#include <algorithm>
#include <charconv>

namespace neat::apps {

namespace {
constexpr std::size_t kMaxHeadBytes = 8192;

/// Case-insensitive substring search in a header block.
bool contains_token(const std::string& head, const char* token) {
  auto lower = head;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower.find(token) != std::string::npos;
}
}  // namespace

std::vector<HttpRequest> HttpRequestParser::feed(
    std::span<const std::uint8_t> data) {
  std::vector<HttpRequest> out;
  if (error_) return out;
  buf_.append(reinterpret_cast<const char*>(data.data()), data.size());

  while (true) {
    const auto end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buf_.size() > kMaxHeadBytes) error_ = true;
      return out;
    }
    const std::string head = buf_.substr(0, end);
    buf_.erase(0, end + 4);

    HttpRequest req;
    const auto line_end = head.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      error_ = true;
      return out;
    }
    req.method = line.substr(0, sp1);
    req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    // HTTP/1.1 defaults to keep-alive; "Connection: close" overrides.
    req.keep_alive = version == "HTTP/1.1"
                         ? !contains_token(head, "connection: close")
                         : contains_token(head, "connection: keep-alive");
    out.push_back(std::move(req));
  }
}

std::vector<std::uint8_t> build_request(const std::string& path,
                                        bool keep_alive) {
  std::string s = "GET " + path + " HTTP/1.1\r\nHost: sut\r\n";
  if (!keep_alive) s += "Connection: close\r\n";
  s += "\r\n";
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> build_response(int status,
                                         std::span<const std::uint8_t> body,
                                         bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(status) +
                     (status == 200 ? " OK" : " Error") +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\n";
  if (!keep_alive) head += "Connection: close\r\n";
  head += "\r\n";
  std::vector<std::uint8_t> out;
  out.reserve(head.size() + body.size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> build_error_response(int status) {
  return build_response(status, {}, true);
}

std::size_t HttpResponseParser::feed(std::span<const std::uint8_t> data) {
  std::size_t completed = 0;
  std::size_t i = 0;
  while (i < data.size() && !error_) {
    if (!in_body_) {
      head_.push_back(static_cast<char>(data[i++]));
      if (head_.size() > kMaxHeadBytes) {
        error_ = true;
        return completed;
      }
      if (head_.size() >= 4 &&
          head_.compare(head_.size() - 4, 4, "\r\n\r\n") == 0) {
        // Parse status line + Content-Length.
        const auto sp = head_.find(' ');
        status_ = 0;
        if (sp != std::string::npos) {
          std::from_chars(head_.data() + sp + 1, head_.data() + sp + 4,
                          status_);
        }
        auto lower = head_;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        const auto cl = lower.find("content-length:");
        std::size_t len = 0;
        if (cl != std::string::npos) {
          const char* p = lower.data() + cl + 15;
          while (*p == ' ') ++p;
          std::from_chars(p, lower.data() + lower.size(), len);
        }
        head_.clear();
        body_remaining_ = len;
        body_len_ = len;
        in_body_ = true;
        if (body_remaining_ == 0) {
          in_body_ = false;
          ++completed;
        }
      }
    } else {
      const std::size_t take = std::min(body_remaining_, data.size() - i);
      if (sink_) sink_(body_len_ - body_remaining_, data.subspan(i, take));
      body_remaining_ -= take;
      body_total_ += take;
      i += take;
      if (body_remaining_ == 0) {
        in_body_ = false;
        ++completed;
      }
    }
  }
  return completed;
}

void FileStore::add(const std::string& path, std::size_t size) {
  std::vector<std::uint8_t> content(size);
  for (std::size_t i = 0; i < size; ++i) {
    content[i] = static_cast<std::uint8_t>('a' + (i * 31 + size) % 26);
  }
  files_[path] = std::move(content);
}

const std::vector<std::uint8_t>* FileStore::lookup(
    const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

}  // namespace neat::apps
