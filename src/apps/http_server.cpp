#include "apps/http_server.hpp"

#include <algorithm>
#include <cassert>

#include "sim/simulator.hpp"

namespace neat::apps {

using socklib::CloseReason;
using socklib::ConnCallbacks;
using socklib::Fd;
using socklib::kBadFd;

HttpServer::HttpServer(sim::Simulator& sim, std::string name,
                       const FileStore& files, std::uint16_t port,
                       Costs costs)
    : sim::Process(sim, std::move(name)),
      files_(files),
      port_(port),
      costs_(costs) {}

void HttpServer::attach_api(std::unique_ptr<socklib::SocketApi> api) {
  api_ = std::move(api);
}

void HttpServer::start() {
  assert(api_ && "attach_api() before start()");
  listen_fd_ = api_->listen(port_, 1024, [this] { accept_loop(); });
  sweep_timer_.cancel();
  if (first_byte_deadline > 0 || header_deadline > 0) deadline_sweep();
}

void HttpServer::accept_loop() {
  // One accept per job so each new connection pays its cost; chain while
  // more are pending.
  post(costs_.accept, [this] {
    ConnCallbacks cb;
    cb.on_readable = [this](Fd fd) { on_readable(fd); };
    cb.on_writable = [this](Fd fd) { continue_write(fd); };
    cb.on_closed = [this](Fd fd, CloseReason r) {
      if (r != CloseReason::kNormal) ++stats_.conn_errors;
      finish(fd);
    };
    const Fd fd = api_->accept(listen_fd_, cb);
    if (fd == kBadFd) return;
    ++stats_.conns_accepted;
    Conn c;
    c.accepted_at = sim().now();
    conns_.emplace(fd, std::move(c));
    accept_loop();  // maybe more queued
  });
}

void HttpServer::on_readable(Fd fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::size_t avail = api_->readable(fd);
  post(costs_.read_parse + costs_.per_16_bytes * (avail / 16), [this, fd] {
    auto cit = conns_.find(fd);
    if (cit == conns_.end()) return;
    Conn& c = cit->second;

    std::uint8_t buf[4096];
    std::size_t got = 0;
    std::size_t completed = 0;
    while (true) {
      const std::size_t n = api_->recv(fd, buf);
      if (n == 0) break;
      got += n;
      auto reqs = c.parser.feed({buf, n});
      completed += reqs.size();
      for (auto& r : reqs) {
        c.queue.push_back(std::move(r));
        c.queue_at.push_back(sim().now());
      }
    }
    if (got > 0) {
      c.got_bytes = true;
      if (completed > 0) {
        // Finishing a request is real progress: the header clock restarts
        // for whatever partial request the parser still buffers.
        c.header_start_at = c.parser.partial() ? sim().now() : 0;
      } else if (c.header_start_at == 0) {
        c.header_start_at = sim().now();
      }
      // else: trickled header bytes — deliberately NOT progress.
    }
    if (c.parser.error()) {
      api_->close(fd);
      finish(fd);
      return;
    }
    if (api_->eof(fd) && c.queue.empty() && c.out.empty()) {
      api_->close(fd);
      finish(fd);
      return;
    }
    serve_next(fd);
  });
}

void HttpServer::serve_next(Fd fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (c.respond_pending || c.queue.empty() || !c.out.empty()) return;
  c.respond_pending = true;

  const HttpRequest req = c.queue.front();
  c.queue.erase(c.queue.begin());
  const sim::SimTime arrived_at = c.queue_at.front();
  c.queue_at.erase(c.queue_at.begin());
  const std::vector<std::uint8_t>* body = files_.lookup(req.path);
  const std::size_t body_size = body ? body->size() : 0;

  post(costs_.respond + costs_.per_16_bytes * (body_size / 16),
       [this, fd, req, body, arrived_at] {
         auto cit = conns_.find(fd);
         if (cit == conns_.end()) return;
         Conn& c = cit->second;
         c.respond_pending = false;

         if (body != nullptr) {
           c.out = build_response(200, *body, req.keep_alive);
           ++stats_.requests;
           const sim::SimTime lat = sim().now() - arrived_at;
           if (req_latency_ == nullptr) {
             req_latency_ = &sim().metrics().histogram("http.request_latency_ns");
           }
           req_latency_->record(lat);
           sim().tracer().emit(
               {arrived_at, lat ? lat : 1, "http", "request_served", 0, fd, ""});
         } else {
           c.out = build_error_response(404);
           ++stats_.not_found;
         }
         c.out_off = 0;
         ++c.served;
         if (!req.keep_alive || c.served >= max_requests_per_conn) {
           c.closing = true;
         }
         continue_write(fd);
       });
}

void HttpServer::continue_write(Fd fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (c.out.empty()) {
    serve_next(fd);
    return;
  }
  const std::size_t n = api_->send(
      fd, std::span<const std::uint8_t>{c.out}.subspan(c.out_off));
  c.out_off += n;
  stats_.bytes_sent += n;
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    if (c.closing) {
      api_->close(fd);
      finish(fd);
      return;
    }
    serve_next(fd);  // pipelined request may be waiting
  }
  // else: short write — resume on on_writable
}

void HttpServer::finish(Fd fd) { conns_.erase(fd); }

void HttpServer::deadline_sweep() {
  const sim::SimTime now = sim().now();
  std::vector<Fd> stalled;
  for (auto& [fd, c] : conns_) {
    if (first_byte_deadline > 0 && !c.got_bytes &&
        now - c.accepted_at > first_byte_deadline) {
      stalled.push_back(fd);
    } else if (header_deadline > 0 && c.header_start_at > 0 &&
               now - c.header_start_at > header_deadline) {
      stalled.push_back(fd);
    }
  }
  for (Fd fd : stalled) {
    ++stats_.deadline_closes;
    api_->close(fd);
    finish(fd);
  }
  if (!stalled.empty()) {
    sim().metrics().counter("http.deadline_closes").inc(stalled.size());
  }
  // Sweep at a quarter of the tightest configured deadline: a holder
  // overstays by at most 25%.
  sim::SimTime tight = 0;
  if (first_byte_deadline > 0) tight = first_byte_deadline;
  if (header_deadline > 0 && (tight == 0 || header_deadline < tight)) {
    tight = header_deadline;
  }
  if (tight == 0) return;
  const sim::SimTime period = std::max<sim::SimTime>(tight / 4, sim::kMillisecond);
  sweep_timer_ = after(period, 0, [this] { deadline_sweep(); });
}

void HttpServer::on_restart() {
  conns_.clear();
  if (api_ && listen_fd_ != kBadFd) start();
}

}  // namespace neat::apps
