// Minimal HTTP/1.1 machinery: enough for a static-file keep-alive server
// and a request/response load generator (the paper's lighttpd + httperf
// roles). Incremental parsers tolerate arbitrary segmentation of the byte
// stream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace neat::apps {

struct HttpRequest {
  std::string method;
  std::string path;
  bool keep_alive{true};
};

/// Incremental request parser (server side). Feed bytes; collect complete
/// requests. GET/HEAD only (no request bodies), like the benchmark.
class HttpRequestParser {
 public:
  /// Returns requests completed by this chunk. Sets error() on malformed
  /// input.
  std::vector<HttpRequest> feed(std::span<const std::uint8_t> data);

  [[nodiscard]] bool error() const { return error_; }
  /// Bytes of an incomplete request are buffered (slowloris deadline
  /// tracking keys off this).
  [[nodiscard]] bool partial() const { return !buf_.empty(); }
  void reset() {
    buf_.clear();
    error_ = false;
  }

 private:
  std::string buf_;
  bool error_{false};
};

/// Serialize a request.
[[nodiscard]] std::vector<std::uint8_t> build_request(const std::string& path,
                                                      bool keep_alive = true);

/// Serialize a response head + body.
[[nodiscard]] std::vector<std::uint8_t> build_response(
    int status, std::span<const std::uint8_t> body, bool keep_alive = true);

[[nodiscard]] std::vector<std::uint8_t> build_error_response(int status);

/// Incremental response parser (client side): status + Content-Length
/// framing. Call reset_for_next() between keep-alive responses.
class HttpResponseParser {
 public:
  /// Feed bytes; returns the number of *complete responses* finished.
  std::size_t feed(std::span<const std::uint8_t> data);

  [[nodiscard]] bool error() const { return error_; }
  [[nodiscard]] int last_status() const { return status_; }
  [[nodiscard]] std::uint64_t body_bytes_total() const { return body_total_; }

  /// Observes every body chunk with its offset inside the current response
  /// body. Lets clients verify payload integrity end-to-end (the chaos
  /// campaign's "no silent corruption" invariant) without buffering.
  using BodySink =
      std::function<void(std::size_t offset, std::span<const std::uint8_t>)>;
  void set_body_sink(BodySink sink) { sink_ = std::move(sink); }

  void reset() {
    head_.clear();
    in_body_ = false;
    body_remaining_ = 0;
    body_len_ = 0;
    error_ = false;
  }

 private:
  std::string head_;
  bool in_body_{false};
  std::size_t body_remaining_{0};
  std::size_t body_len_{0};
  int status_{0};
  bool error_{false};
  std::uint64_t body_total_{0};
  BodySink sink_;
};

/// In-memory static content (lighttpd serving files cached in memory).
class FileStore {
 public:
  /// Create /name with `size` deterministic filler bytes.
  void add(const std::string& path, std::size_t size);

  [[nodiscard]] const std::vector<std::uint8_t>* lookup(
      const std::string& path) const;

  [[nodiscard]] std::size_t count() const { return files_.size(); }

 private:
  std::map<std::string, std::vector<std::uint8_t>> files_;
};

}  // namespace neat::apps
