// The load generator — the paper's httperf stand-in.
//
// Maintains a fixed number of concurrent persistent connections to the
// server; each connection issues `requests_per_conn` GETs for one file and
// is then closed and replaced, sustaining the offered load indefinitely.
// httperf semantics are preserved: a connection that suffers any error is
// discarded from the request-rate and throughput reports (§6.1).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "apps/http.hpp"
#include "obs/metrics.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "socklib/socket_api.hpp"

namespace neat::apps {

class LoadGen : public sim::Process {
 public:
  struct Config {
    net::SockAddr server;
    std::string path{"/file"};
    std::size_t concurrency{8};
    int requests_per_conn{100};
    /// Stop opening new connections after this many (0 = sustain forever).
    std::uint64_t max_conns{0};
    /// Pause between a response and the next request (0 = closed loop at
    /// full speed). Used to dial in low offered loads (Table 2).
    sim::SimTime think_time{0};

    /// When set, every 200-response body is compared byte-for-byte against
    /// this expected content (the served file); mismatches are counted in
    /// Report::payload_mismatches. The pointee must outlive the LoadGen.
    const std::vector<std::uint8_t>* expect_body{nullptr};

    sim::Cycles connect_cost{3500};
    sim::Cycles send_cost{2800};
    sim::Cycles recv_cost{2600};
    sim::Cycles per_16_bytes{2};
  };

  struct Report {
    std::uint64_t committed_requests{0};  ///< from error-free connections
    std::uint64_t committed_bytes{0};
    std::uint64_t clean_conns{0};
    std::uint64_t error_conns{0};
    std::uint64_t bad_status{0};
    /// Body bytes that differed from Config::expect_body (0 = integrity
    /// held end-to-end, the chaos campaign's core data invariant).
    std::uint64_t payload_mismatches{0};
    /// Error connections broken down by CloseReason (indexed by enum).
    std::array<std::uint64_t, 5> errors_by_reason{};
    /// Per-response latency. A mergeable log-linear histogram so the
    /// harness can fold all generators into one percentile report.
    obs::Histogram latency;
  };

  LoadGen(sim::Simulator& sim, std::string name, Config config);

  void attach_api(std::unique_ptr<socklib::SocketApi> api);
  void start();

  /// Begin a fresh measurement window (call after warmup).
  void mark();

  [[nodiscard]] const Report& report() const { return report_; }
  [[nodiscard]] Config& config() { return config_; }
  [[nodiscard]] std::size_t in_flight_conns() const { return conns_.size(); }

 protected:
  void on_restart() override {}

 private:
  struct Conn {
    HttpResponseParser parser;
    int completed{0};
    std::uint64_t request_sent_at{0};
    std::uint64_t window_requests{0};  ///< completed inside current window
    std::uint64_t window_bytes{0};
    std::uint64_t prev_body_total{0};
    bool request_outstanding{false};
    bool counted{false};  ///< error accounting done
  };

  void open_connection();
  void send_request(socklib::Fd fd);
  void do_send(socklib::Fd fd);
  void on_readable(socklib::Fd fd);
  void on_closed(socklib::Fd fd, socklib::CloseReason reason);

  Config config_;
  Report report_;
  obs::Histogram* global_latency_{nullptr};  ///< all-window registry copy
  std::unique_ptr<socklib::SocketApi> api_;
  std::unordered_map<socklib::Fd, Conn> conns_;
  std::uint64_t conns_started_{0};
  bool started_{false};
};

}  // namespace neat::apps
