// The per-socket shared-memory data path between an application and its
// stack replica (the design of [35], "On sockets and system calls").
//
// An app-side write goes into the tx ring and — at most once per batch —
// rings a doorbell at the replica; the replica drains the ring into its TCP
// send buffer in its own context, charged its own cycles. Receives read the
// TCP receive ring directly (it is the shared buffer). Neither direction
// involves the SYSCALL server: this is the syscall-less fast path that
// makes the whole design "agnostic to the number of network stack
// replicas".
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "ipc/byte_ring.hpp"
#include "ipc/doorbell.hpp"
#include "neat/costs.hpp"
#include "neat/replica.hpp"
#include "net/tcp.hpp"
#include "socklib/socket_api.hpp"

namespace neat::socklib {

class NeatSocket : public std::enable_shared_from_this<NeatSocket> {
 public:
  struct Events {
    std::function<void()> on_connected;
    std::function<void()> on_readable;
    std::function<void()> on_writable;
    std::function<void(CloseReason)> on_closed;
  };

  NeatSocket(sim::Process& app, StackReplica& replica, const StackCosts& costs,
             net::TcpSocketPtr tcp);

  /// Wire the TCP callbacks (requires shared ownership; call right after
  /// make_shared).
  void init();

  NeatSocket(const NeatSocket&) = delete;
  NeatSocket& operator=(const NeatSocket&) = delete;

  // --- app side --------------------------------------------------------------
  std::size_t write(std::span<const std::uint8_t> data);
  std::size_t read(std::span<std::uint8_t> dst);
  [[nodiscard]] std::size_t readable() const { return tcp_->readable(); }
  [[nodiscard]] bool eof() const { return tcp_->eof(); }
  [[nodiscard]] bool alive() const { return !failed_ && !closed_delivered_; }
  void close();

  void set_events(Events ev);

  /// Replica died with this socket's state: deliver kStackFailure upward.
  void fail();

  /// The connection was extracted and now lives on a DIFFERENT host: the
  /// local fd has nothing behind it any more. Delivers kMigratedAway so the
  /// application drops its bookkeeping; no FIN/RST is sent (the connection
  /// itself is alive — elsewhere).
  void migrated_away();

  /// Stateful recovery: swap in the restored TCP socket (same flow) and
  /// rewire callbacks — the application never notices the crash.
  void reattach(net::TcpSocketPtr tcp);

  /// Live migration: this connection now lives on `replica` as `tcp`.
  /// Re-targets the stack-side doorbell and rewires callbacks; pending
  /// tx-ring bytes drain into the new replica's send buffer.
  void rehome(StackReplica& replica, net::TcpSocketPtr tcp);

  [[nodiscard]] StackReplica& replica() const { return *replica_; }
  [[nodiscard]] net::TcpSocket& tcp() const { return *tcp_; }

 private:
  enum EventBit : std::uint32_t {
    kEvConnected = 1u << 0,
    kEvReadable = 1u << 1,
    kEvWritable = 1u << 2,
    kEvClosed = 1u << 3,
  };

  void pump();                      // replica context
  void raise(std::uint32_t bits);   // any context
  void dispatch();                  // app context

  sim::Process& app_;
  StackReplica* replica_;  // pointer: migration re-homes the socket
  const StackCosts costs_;
  net::TcpSocketPtr tcp_;
  ipc::ByteRing tx_ring_;
  ipc::Doorbell to_stack_;
  ipc::Doorbell to_app_;
  Events ev_;
  std::uint32_t pending_events_{0};
  CloseReason close_reason_{CloseReason::kNormal};
  bool pump_scheduled_{false};
  bool close_requested_{false};
  bool closed_delivered_{false};
  bool want_write_{false};
  bool failed_{false};
  // Set while draining remaining data after an app close() whose owner
  // already dropped its reference.
  std::shared_ptr<NeatSocket> self_keepalive_;
};

using NeatSocketPtr = std::shared_ptr<NeatSocket>;

}  // namespace neat::socklib
