#include "socklib/socklib.hpp"

#include <algorithm>

namespace neat::socklib {

SockLib::SockLib(sim::Process& app, NeatHost& host)
    : app_(app), host_(host), rng_(app.sim().rng().split(0x50c7)) {
  host_.add_failure_listener(this);
}

SockLib::~SockLib() { host_.remove_failure_listener(this); }

Fd SockLib::listen(std::uint16_t port, std::size_t backlog,
                   std::function<void()> on_acceptable) {
  const Fd fd = next_fd_++;
  ListenEntry entry;
  entry.port = port;
  entry.accept_bell = std::make_shared<ipc::Doorbell>(
      app_, host_.costs().app_notify, std::move(on_acceptable));
  auto bell = entry.accept_bell;
  listeners_.emplace(fd, std::move(entry));

  // listen() is a (rare) control-plane call: route via the SYSCALL server,
  // which records it durably and replicates the listening socket onto
  // every replica (§3.3 — listening sockets are the only replicated kind).
  NeatHost* host = &host_;
  const StackCosts costs = host_.costs();
  host_.syscall().submit([host, port, backlog, bell, costs] {
    ListenRecord rec;
    rec.port = port;
    rec.backlog = backlog;
    rec.wire = [bell](StackReplica&, net::TcpListener& l) {
      l.set_accept_ready([bell] { bell->ring(); });
    };
    for (auto* r : host->serving_replicas()) {
      StackReplica* rep = r;
      rep->tcp_process().post(costs.replica_control, [rep, rec] {
        net::TcpListener* l = rep->tcp().listen(rec.port, rec.backlog);
        if (l == nullptr) l = rep->tcp().listener(rec.port);
        if (l != nullptr) rec.wire(*rep, *l);
      });
    }
    host->record_listen(std::move(rec));
  });
  return fd;
}

Fd SockLib::accept(Fd listen_fd, ConnCallbacks cb) {
  auto it = listeners_.find(listen_fd);
  if (it == listeners_.end()) return kBadFd;
  ListenEntry& entry = it->second;

  // Scan subsockets round-robin, starting after the last successful
  // replica, so accept load spreads even when all queues are hot.
  auto replicas = host_.serving_replicas();
  if (replicas.empty()) return kBadFd;
  const std::size_t n = replicas.size();
  for (std::size_t i = 0; i < n; ++i) {
    StackReplica& rep = *replicas[(entry.rr_next + i) % n];
    net::TcpListener* l = rep.tcp().listener(entry.port);
    if (l == nullptr) continue;
    if (net::TcpSocketPtr tcp = l->accept()) {
      entry.rr_next = (entry.rr_next + i + 1) % n;
      const Fd fd = next_fd_++;
      host_.note_first_service(rep);
      wire_connection(fd, rep, std::move(tcp), std::move(cb),
                      /*notify_connect=*/false);
      return fd;
    }
  }
  return kBadFd;
}

Fd SockLib::connect(net::SockAddr remote, ConnCallbacks cb) {
  const Fd fd = next_fd_++;
  NeatHost* host = &host_;
  sim::Process* app = &app_;
  SockLib* self = this;
  const StackCosts costs = host_.costs();
  const auto steering = host_.config().steering;
  const std::uint64_t seed = rng_();

  host_.syscall().submit([host, app, self, fd, remote, cb, costs, steering,
                          seed]() mutable {
    StackReplica* rep = host->pick_replica();
    if (rep == nullptr) {
      app->post(costs.app_notify, [cb, fd] {
        if (cb.on_closed) cb.on_closed(fd, CloseReason::kStackFailure);
      });
      return;
    }
    rep->tcp_process().post(costs.replica_control, [host, self, fd, remote,
                                                    cb, costs, steering, seed,
                                                    rep]() mutable {
      // Pick the local port. Under RSS steering the library chooses a port
      // whose Toeplitz hash lands on this replica's queue, so the SYN|ACK
      // comes straight back to us with zero NIC reconfiguration. Ports
      // still occupied (e.g. a previous connection in TIME_WAIT) make
      // connect() fail — retry with another candidate.
      sim::Rng prng(seed);
      const bool defer =
          steering == NeatHost::Config::Steering::kExactFilter;
      net::TcpSocketPtr tcp;
      if (steering == NeatHost::Config::Steering::kRssPortSelection) {
        for (int tries = 0; tries < 8192 && !tcp; ++tries) {
          const auto cand =
              static_cast<std::uint16_t>(49152 + prng.below(16384));
          if (host->nic().rss_queue(remote.ip, remote.port, host->ip(),
                                    cand) != rep->queue()) {
            continue;
          }
          tcp = rep->tcp().connect(remote, cand, defer);
        }
      } else {
        tcp = rep->tcp().connect(remote, 0, defer);
      }
      if (!tcp) {
        self->app_.post(costs.app_notify, [cb, fd] {
          if (cb.on_closed) cb.on_closed(fd, CloseReason::kRefused);
        });
        return;
      }
      self->wire_connection(fd, *rep, tcp, std::move(cb),
                            /*notify_connect=*/true);
      if (defer) {
        // Install the exact-match filter first so the reply cannot race to
        // the wrong replica, then fire the SYN from the replica's context.
        const net::FlowKey key = tcp->flow();
        host->driver().control([host, key, rep, tcp, costs] {
          host->nic().add_flow_filter(key, rep->queue());
          rep->tcp_process().post(costs.replica_control, [rep, tcp] {
            rep->tcp().begin_handshake(*tcp);
          });
        });
      }
    });
  });
  return fd;
}

void SockLib::wire_connection(Fd fd, StackReplica& replica,
                              net::TcpSocketPtr tcp, ConnCallbacks cb,
                              bool notify_connect) {
  auto sock =
      std::make_shared<NeatSocket>(app_, replica, host_.costs(), std::move(tcp));
  sock->init();
  NeatSocket::Events ev;
  if (notify_connect && cb.on_connected) {
    ev.on_connected = [cb, fd] { cb.on_connected(fd); };
  }
  if (cb.on_readable) ev.on_readable = [cb, fd] { cb.on_readable(fd); };
  if (cb.on_writable) ev.on_writable = [cb, fd] { cb.on_writable(fd); };
  if (cb.on_closed) {
    ev.on_closed = [cb, fd](CloseReason r) { cb.on_closed(fd, r); };
  }
  conns_.emplace(fd, sock);
  sock->set_events(std::move(ev));
}

std::size_t SockLib::send(Fd fd, std::span<const std::uint8_t> data) {
  auto it = conns_.find(fd);
  return it == conns_.end() ? 0 : it->second->write(data);
}

std::size_t SockLib::recv(Fd fd, std::span<std::uint8_t> dst) {
  auto it = conns_.find(fd);
  return it == conns_.end() ? 0 : it->second->read(dst);
}

std::size_t SockLib::readable(Fd fd) const {
  auto it = conns_.find(fd);
  return it == conns_.end() ? 0 : it->second->readable();
}

bool SockLib::eof(Fd fd) const {
  auto it = conns_.find(fd);
  return it == conns_.end() ? true : it->second->eof();
}

void SockLib::close(Fd fd) {
  if (auto it = conns_.find(fd); it != conns_.end()) {
    it->second->set_events({});  // no callbacks after close()
    it->second->close();
    conns_.erase(it);
    return;
  }
  if (auto it = udp_socks_.find(fd); it != udp_socks_.end()) {
    host_.remove_udp_bind(it->second.port);
    udp_socks_.erase(it);
    return;
  }
  if (auto it = listeners_.find(fd); it != listeners_.end()) {
    host_.remove_listen(it->second.port);
    listeners_.erase(it);
  }
}

Fd SockLib::udp_open(std::uint16_t port, DatagramRx rx) {
  const Fd fd = next_fd_++;
  udp_socks_.emplace(fd, UdpEntry{port});

  // Like listen(), a bind is a rare control-plane call: route it through
  // the SYSCALL server, which records it durably and installs the binding
  // on every serving replica (any replica can process any datagram).
  sim::Process* app = &app_;
  const StackCosts costs = host_.costs();
  auto rx_shared = std::make_shared<DatagramRx>(std::move(rx));
  UdpBindRecord rec;
  rec.port = port;
  rec.wire = [app, costs, port, rx_shared](StackReplica&,
                                           net::UdpMux& mux) {
    mux.bind(port, [app, costs, rx_shared](net::UdpMux::Datagram d) {
      const net::SockAddr from = d.from;
      // Hoist the cost: the lambda's init-capture moves d.payload, and
      // argument evaluation order is unspecified.
      const sim::Cycles cost =
          costs.app_notify + costs.bytes_cost(d.payload->size());
      app->post(cost, [rx_shared, from, payload = std::move(d.payload)] {
        (*rx_shared)(from, payload->bytes());
      });
    });
  };
  NeatHost* host = &host_;
  host_.syscall().submit([host, rec] { host->record_udp_bind(rec); });
  return fd;
}

std::size_t SockLib::udp_send(Fd fd, net::SockAddr to,
                              std::span<const std::uint8_t> payload) {
  auto it = udp_socks_.find(fd);
  if (it == udp_socks_.end()) return 0;
  // UDP is stateless: any active replica can carry the datagram out.
  StackReplica* rep = host_.pick_replica();
  if (rep == nullptr) return 0;
  rep->udp_tx(net::Packet::of(payload), it->second.port, to);
  return payload.size();
}

void SockLib::on_replica_tcp_recovery(
    StackReplica& replica, const std::vector<net::TcpSocketPtr>& restored) {
  // Connections the checkpoint brought back are transparently re-attached
  // to their fds; the rest of this replica's sockets are gone. Every other
  // replica is untouched (the whole point of state partitioning).
  for (auto& [fd, sock] : conns_) {
    if (&sock->replica() != &replica) continue;
    const net::FlowKey flow = sock->tcp().flow();
    net::TcpSocketPtr replacement;
    for (const auto& r : restored) {
      if (r->flow() == flow) {
        replacement = r;
        break;
      }
    }
    if (replacement) {
      sock->reattach(std::move(replacement));
    } else {
      sock->fail();
    }
  }
}

void SockLib::on_connections_migrated(
    StackReplica& from, StackReplica& to,
    const std::vector<net::TcpSocketPtr>& adopted) {
  // Unlike a crash, migration moves every fd-attached connection intact:
  // match by flow and re-home. A socket of `from`'s that is NOT in the
  // adopted set was already closing (extract only moves ESTABLISHED) — it
  // keeps its old attachment and finishes dying where it is.
  for (auto& [fd, sock] : conns_) {
    if (&sock->replica() != &from) continue;
    const net::FlowKey flow = sock->tcp().flow();
    for (const auto& a : adopted) {
      if (a->flow() == flow) {
        sock->rehome(to, a);
        break;
      }
    }
  }
}

void SockLib::on_connections_departed(
    StackReplica& from, const std::vector<net::FlowKey>& flows) {
  // Cross-host drain: the listed flows now live on another machine. The
  // local sockets are husks — deliver kMigratedAway so the app closes the
  // fds; no FIN/RST goes out (the connection is alive, elsewhere).
  for (auto& [fd, sock] : conns_) {
    if (&sock->replica() != &from) continue;
    const net::FlowKey flow = sock->tcp().flow();
    for (const auto& f : flows) {
      if (f == flow) {
        sock->migrated_away();
        break;
      }
    }
  }
}

Fd SockLib::adopt_socket(StackReplica& replica, net::TcpSocketPtr tcp,
                         ConnCallbacks cb) {
  if (!tcp) return kBadFd;
  const Fd fd = next_fd_++;
  host_.note_first_service(replica);
  wire_connection(fd, replica, std::move(tcp), std::move(cb),
                  /*notify_connect=*/false);
  return fd;
}

}  // namespace neat::socklib
