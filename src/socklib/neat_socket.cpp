#include "socklib/neat_socket.hpp"

#include <algorithm>
#include <vector>

namespace neat::socklib {

const char* to_string(CloseReason r) {
  switch (r) {
    case CloseReason::kNormal: return "normal";
    case CloseReason::kReset: return "reset";
    case CloseReason::kTimeout: return "timeout";
    case CloseReason::kRefused: return "refused";
    case CloseReason::kStackFailure: return "stack-failure";
    case CloseReason::kMigratedAway: return "migrated-away";
  }
  return "?";
}

namespace {
CloseReason map_reason(net::TcpCloseReason r) {
  switch (r) {
    case net::TcpCloseReason::kNormal: return CloseReason::kNormal;
    case net::TcpCloseReason::kReset: return CloseReason::kReset;
    case net::TcpCloseReason::kTimeout: return CloseReason::kTimeout;
    case net::TcpCloseReason::kRefused: return CloseReason::kRefused;
    case net::TcpCloseReason::kStackFailure:
      return CloseReason::kStackFailure;
  }
  return CloseReason::kNormal;
}
}  // namespace

NeatSocket::NeatSocket(sim::Process& app, StackReplica& replica,
                       const StackCosts& costs, net::TcpSocketPtr tcp)
    : app_(app),
      replica_(&replica),
      costs_(costs),
      tcp_(std::move(tcp)),
      tx_ring_(std::min<std::size_t>(
          32768, tcp_->send_space() > 0 ? tcp_->send_space() : 32768)),
      to_stack_(replica.tcp_process(), costs.doorbell_take, [] {}),
      to_app_(app, costs.app_notify, [] {}) {}

void NeatSocket::init() {
  // Persistent handlers hold weak ownership: the doorbells live inside this
  // object and the TCP socket holds its callbacks — strong captures would
  // form reference cycles and leak a socket per connection.
  std::weak_ptr<NeatSocket> wp = weak_from_this();

  to_stack_.set_handler([wp] {
    if (auto s = wp.lock()) s->pump();
  });
  to_app_.set_handler([wp] {
    if (auto s = wp.lock()) s->dispatch();
  });

  net::TcpSocket::Callbacks cb;
  cb.on_established = [wp] {
    if (auto s = wp.lock()) s->raise(kEvConnected);
  };
  cb.on_readable = [wp] {
    if (auto s = wp.lock()) s->raise(kEvReadable);
  };
  cb.on_writable = [wp] {
    auto s = wp.lock();
    if (!s) return;
    // Replica context: more TCP send space — keep draining the ring.
    s->pump();
    if (s->want_write_ && s->tx_ring_.writable() > 0) {
      s->want_write_ = false;
      s->raise(kEvWritable);
    }
  };
  cb.on_closed = [wp](net::TcpCloseReason r) {
    auto s = wp.lock();
    if (!s) return;
    s->close_reason_ = map_reason(r);
    s->raise(kEvClosed);
  };
  tcp_->set_callbacks(std::move(cb));
}

std::size_t NeatSocket::write(std::span<const std::uint8_t> data) {
  if (failed_ || close_requested_) return 0;
  const std::size_t n = tx_ring_.write(data);
  if (n < data.size()) want_write_ = true;
  if (n > 0) to_stack_.ring();
  return n;
}

std::size_t NeatSocket::read(std::span<std::uint8_t> dst) {
  if (failed_) return 0;
  return tcp_->recv(dst);
}

void NeatSocket::close() {
  if (failed_ || close_requested_) return;
  close_requested_ = true;
  // The owner (SockLib) may drop its reference right after close(); the
  // teardown job keeps the socket alive until the FIN has been issued, so
  // capture a strong reference rather than going through the weak-handler
  // doorbell.
  auto self = shared_from_this();
  replica_->tcp_process().post(costs_.doorbell_take, [self] { self->pump(); });
}

void NeatSocket::set_events(Events ev) {
  ev_ = std::move(ev);
  // Anything already pending (data that raced ahead of accept())?
  if (ev_.on_readable && (tcp_->readable() > 0 || tcp_->eof())) {
    raise(kEvReadable);
  }
  if (tcp_->state() == net::TcpState::kClosed && !closed_delivered_) {
    raise(kEvClosed);
  }
}

void NeatSocket::reattach(net::TcpSocketPtr tcp) {
  if (failed_ || closed_delivered_) return;
  tcp_ = std::move(tcp);
  pump_scheduled_ = false;
  init();  // rewire TCP callbacks + doorbell handlers to the new socket
  // Anything buffered pre-crash is readable again; resume sending too.
  if (tcp_->readable() > 0) raise(kEvReadable);
  to_stack_.ring();
}

void NeatSocket::rehome(StackReplica& replica, net::TcpSocketPtr tcp) {
  if (failed_ || closed_delivered_) return;
  replica_ = &replica;
  to_stack_.rebind(replica.tcp_process());
  reattach(std::move(tcp));
}

void NeatSocket::fail() {
  if (failed_) return;
  failed_ = true;
  close_reason_ = CloseReason::kStackFailure;
  raise(kEvClosed);
}

void NeatSocket::migrated_away() {
  if (failed_ || closed_delivered_) return;
  // Reuse the failure plumbing — it detaches the socket from further I/O —
  // but tell the app the truth: the connection lives on, on another host.
  failed_ = true;
  close_reason_ = CloseReason::kMigratedAway;
  raise(kEvClosed);
}

void NeatSocket::pump() {
  // Replica context: move bytes tx_ring -> TCP send buffer, charging the
  // replica for the copy. One outstanding drain job at a time.
  if (pump_scheduled_ || failed_) return;
  const auto st = tcp_->state();
  const bool can_accept =
      st == net::TcpState::kEstablished || st == net::TcpState::kCloseWait ||
      st == net::TcpState::kSynSent || st == net::TcpState::kSynRcvd;
  if (!can_accept) {
    // Reset or migrated-out-under-us socket: nothing can be pushed now. A
    // reset socket delivers on_closed (dispatch releases the ring); a
    // migrated one re-rings this doorbell after rehome.
    if (close_requested_) self_keepalive_.reset();
    return;
  }
  const std::size_t n = std::min(tx_ring_.readable(), tcp_->send_space());
  if (n == 0) {
    if (close_requested_) {
      if (tx_ring_.empty()) {
        if (tcp_->state() != net::TcpState::kClosed) tcp_->close();
        self_keepalive_.reset();
      } else {
        // Closed by the app with unsent data and a stalled TCP window:
        // keep ourselves alive (like a kernel draining a closed socket in
        // the background) until on_writable resumes the pump.
        self_keepalive_ = shared_from_this();
      }
    }
    return;
  }
  pump_scheduled_ = true;
  auto self = shared_from_this();
  replica_->tcp_process().post(
      costs_.sock_drain_base + costs_.bytes_cost(n), [self, n] {
        self->pump_scheduled_ = false;
        if (self->failed_) return;
        // Peek, send, then consume only what TCP accepted: the socket may
        // have been migrated out (silently closed) since this job was
        // posted, in which case send() takes nothing and the bytes stay in
        // the ring for the post-rehome pump to deliver.
        std::vector<std::uint8_t> buf(n);
        const std::size_t got = self->tx_ring_.peek(buf);
        if (got > 0) {
          const std::size_t accepted =
              self->tcp_->send(std::span<const std::uint8_t>{buf.data(), got});
          self->tx_ring_.discard(accepted);
        }
        if (self->want_write_ && self->tx_ring_.writable() > 0) {
          self->want_write_ = false;
          self->raise(kEvWritable);
        }
        self->pump();  // either more data, or the deferred close
      });
}

void NeatSocket::raise(std::uint32_t bits) {
  pending_events_ |= bits;
  to_app_.ring();
}

void NeatSocket::dispatch() {
  // App context: deliver coalesced events.
  const std::uint32_t ev = pending_events_;
  pending_events_ = 0;
  if ((ev & kEvConnected) && ev_.on_connected) ev_.on_connected();
  if ((ev & kEvReadable) && ev_.on_readable) ev_.on_readable();
  if ((ev & kEvWritable) && ev_.on_writable) ev_.on_writable();
  if (ev & kEvClosed) {
    if (!closed_delivered_) {
      closed_delivered_ = true;
      tx_ring_.release();
      if (ev_.on_closed) ev_.on_closed(close_reason_);
    }
  }
}

}  // namespace neat::socklib
