// The application-facing socket interface.
//
// NEaT "retains full compatibility with the BSD socket API" — applications
// are written once against this interface and run unchanged on the NEaT
// stack (socklib::SockLib) and on the Linux-baseline stack
// (baseline::LinuxSockets). It is the event-driven, non-blocking flavour of
// the BSD API (the apps in the paper — lighttpd, httperf — are themselves
// event-driven).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "net/addr.hpp"

namespace neat::socklib {

using Fd = int;
inline constexpr Fd kBadFd = -1;

enum class CloseReason {
  kNormal,
  kReset,
  kTimeout,
  kRefused,
  kStackFailure,  ///< the stack replica holding the socket crashed
  kMigratedAway,  ///< connection moved to another host; the fd is dead here
};

[[nodiscard]] const char* to_string(CloseReason r);

/// Datagram delivery callback (UDP): source address + payload bytes. The
/// span is only valid for the duration of the call.
using DatagramRx =
    std::function<void(net::SockAddr from, std::span<const std::uint8_t>)>;

/// Per-connection event callbacks (edge-style notifications).
struct ConnCallbacks {
  std::function<void(Fd)> on_connected;
  std::function<void(Fd)> on_readable;  ///< data or EOF became available
  std::function<void(Fd)> on_writable;  ///< send space freed after a short write
  std::function<void(Fd, CloseReason)> on_closed;
};

class SocketApi {
 public:
  virtual ~SocketApi() = default;

  /// Open a listening socket. `on_acceptable` fires when accept() would
  /// yield a connection. Returns kBadFd on failure.
  virtual Fd listen(std::uint16_t port, std::size_t backlog,
                    std::function<void()> on_acceptable) = 0;

  /// Pop one established connection; kBadFd if none is ready.
  virtual Fd accept(Fd listen_fd, ConnCallbacks cb) = 0;

  /// Begin an active connect; completion via cb.on_connected / on_closed.
  virtual Fd connect(net::SockAddr remote, ConnCallbacks cb) = 0;

  /// Non-blocking write; returns bytes accepted.
  virtual std::size_t send(Fd fd, std::span<const std::uint8_t> data) = 0;

  /// Non-blocking read; returns bytes read (0: nothing available or EOF —
  /// disambiguate with eof()).
  virtual std::size_t recv(Fd fd, std::span<std::uint8_t> dst) = 0;

  [[nodiscard]] virtual std::size_t readable(Fd fd) const = 0;
  [[nodiscard]] virtual bool eof(Fd fd) const = 0;

  /// Orderly close; the fd is released immediately.
  virtual void close(Fd fd) = 0;

  // --- UDP (datagram) -------------------------------------------------------
  // Default implementations report "unsupported" so TCP-only backends stay
  // source-compatible.

  /// Open a UDP socket bound to `port`; incoming datagrams arrive via `rx`.
  /// Returns kBadFd if the backend has no UDP support.
  virtual Fd udp_open(std::uint16_t port, DatagramRx rx) {
    (void)port;
    (void)rx;
    return kBadFd;
  }

  /// Fire-and-forget datagram from `fd`'s bound port. Returns bytes
  /// accepted (0 when unsupported or the fd is unknown).
  virtual std::size_t udp_send(Fd fd, net::SockAddr to,
                               std::span<const std::uint8_t> payload) {
    (void)fd;
    (void)to;
    (void)payload;
    return 0;
  }
};

}  // namespace neat::socklib
