// SockLib: the NEaT user-space POSIX library (one instance per application
// process).
//
// It hides replication completely: a listening fd is transparently backed
// by one hidden "subsocket" per replica (created at listen() time, §3.3); a
// connected fd maps to the single replica that owns the connection; data
// moves over shared rings without touching the SYSCALL server.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ipc/doorbell.hpp"
#include "neat/host.hpp"
#include "sim/random.hpp"
#include "socklib/neat_socket.hpp"
#include "socklib/socket_api.hpp"

namespace neat::socklib {

class SockLib final : public SocketApi, public ReplicaFailureListener {
 public:
  SockLib(sim::Process& app, NeatHost& host);
  ~SockLib() override;

  SockLib(const SockLib&) = delete;
  SockLib& operator=(const SockLib&) = delete;

  // SocketApi
  Fd listen(std::uint16_t port, std::size_t backlog,
            std::function<void()> on_acceptable) override;
  Fd accept(Fd listen_fd, ConnCallbacks cb) override;
  Fd connect(net::SockAddr remote, ConnCallbacks cb) override;
  std::size_t send(Fd fd, std::span<const std::uint8_t> data) override;
  std::size_t recv(Fd fd, std::span<std::uint8_t> dst) override;
  [[nodiscard]] std::size_t readable(Fd fd) const override;
  [[nodiscard]] bool eof(Fd fd) const override;
  void close(Fd fd) override;
  Fd udp_open(std::uint16_t port, DatagramRx rx) override;
  std::size_t udp_send(Fd fd, net::SockAddr to,
                       std::span<const std::uint8_t> payload) override;

  // ReplicaFailureListener
  void on_replica_tcp_recovery(
      StackReplica& replica,
      const std::vector<net::TcpSocketPtr>& restored) override;
  void on_connections_migrated(
      StackReplica& from, StackReplica& to,
      const std::vector<net::TcpSocketPtr>& adopted) override;
  void on_connections_departed(
      StackReplica& from, const std::vector<net::FlowKey>& flows) override;

  /// Fleet-layer adoption: wrap a TCP socket that `replica` just adopted
  /// from another HOST in a fresh fd. The counterpart of
  /// on_connections_departed on the receiving machine — data already
  /// buffered in the adopted socket is delivered via cb.on_readable.
  Fd adopt_socket(StackReplica& replica, net::TcpSocketPtr tcp,
                  ConnCallbacks cb);

  [[nodiscard]] NeatHost& host() { return host_; }
  [[nodiscard]] std::size_t open_sockets() const { return conns_.size(); }
  [[nodiscard]] std::size_t open_udp_sockets() const {
    return udp_socks_.size();
  }

 private:
  struct ListenEntry {
    std::uint16_t port{0};
    std::shared_ptr<ipc::Doorbell> accept_bell;
    std::size_t rr_next{0};  // round-robin start over replicas
  };

  void wire_connection(Fd fd, StackReplica& replica, net::TcpSocketPtr tcp,
                       ConnCallbacks cb, bool notify_connect);

  struct UdpEntry {
    std::uint16_t port{0};
  };

  sim::Process& app_;
  NeatHost& host_;
  sim::Rng rng_;
  Fd next_fd_{3};
  std::unordered_map<Fd, ListenEntry> listeners_;
  std::unordered_map<Fd, NeatSocketPtr> conns_;
  std::unordered_map<Fd, UdpEntry> udp_socks_;
};

}  // namespace neat::socklib
