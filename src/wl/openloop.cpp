#include "wl/openloop.hpp"

#include <algorithm>
#include <cassert>

namespace neat::wl {

using socklib::CloseReason;
using socklib::ConnCallbacks;
using socklib::Fd;
using socklib::kBadFd;

OpenLoopClient::OpenLoopClient(sim::Simulator& sim, std::string name,
                               Config config)
    : sim::Process(sim, std::move(name)),
      config_(std::move(config)),
      rng_(sim.rng().split(0x0917c ^ std::hash<std::string>{}(config_.tenant))) {
}

void OpenLoopClient::attach_api(std::unique_ptr<socklib::SocketApi> api) {
  api_ = std::move(api);
}

void OpenLoopClient::start() {
  assert(api_ && "attach_api() before start()");
  running_ = true;
  last_epoch_ = sim().now();
  sampler_ = std::make_unique<ArrivalSampler>(config_.arrival,
                                              rng_.split(0xa441));
  hub_latency_ = &sim().metrics().histogram("wl." + config_.tenant +
                                            ".request_latency_ns");
  hub_requests_ =
      &sim().metrics().counter("wl." + config_.tenant + ".requests");
  schedule_next_arrival();
}

void OpenLoopClient::stop() { running_ = false; }

void OpenLoopClient::mark() {
  report_.sessions_started = 0;
  report_.sessions_completed = 0;
  report_.sessions_failed = 0;
  report_.sessions_abandoned = 0;
  report_.sessions_shed = 0;
  report_.requests_completed = 0;
  report_.bytes_received = 0;
  report_.bad_status = 0;
  report_.slo_violations = 0;
  report_.latency.reset();
  report_.raw_latency.reset();
}

void OpenLoopClient::schedule_next_arrival() {
  if (!running_) return;
  const sim::SimTime epoch = sampler_->next_after(last_epoch_);
  last_epoch_ = epoch;
  const sim::SimTime now = sim().now();
  const sim::SimTime delay = epoch > now ? epoch - now : 0;
  after(delay, config_.arrival_cost, [this, epoch] {
    on_arrival(epoch);
    schedule_next_arrival();
  });
}

void OpenLoopClient::on_arrival(sim::SimTime epoch) {
  if (!running_) return;
  if (sessions_.size() >= config_.max_in_flight) {
    ++report_.sessions_shed;
    return;
  }
  ++report_.sessions_started;

  ConnCallbacks cb;
  cb.on_connected = [this, epoch](Fd fd) {
    auto it = sessions_.find(fd);
    if (it == sessions_.end()) return;
    it->second.connected = true;
    // First request's CO clock starts at the arrival epoch: connect time
    // (SYN backlog queueing included) is part of what the user waited.
    issue_request(fd, epoch);
  };
  cb.on_readable = [this](Fd fd) { on_readable(fd); };
  cb.on_closed = [this](Fd fd, CloseReason r) { on_closed(fd, r); };

  const Fd fd = api_->connect(config_.server, cb);
  if (fd == kBadFd) {
    ++report_.sessions_failed;
    return;
  }
  Session s;
  s.path = config_.catalog[rng_.below(config_.catalog.size())];
  s.remaining = config_.session.sample_requests(rng_);
  s.intended_at = epoch;
  sessions_.emplace(fd, std::move(s));
  // The user's patience clock runs from arrival, covering connect too: a
  // SYN that the server never answers must surface as abandonment, not
  // vanish because no request was ever "outstanding".
  arm_abandonment(fd);
}

void OpenLoopClient::issue_request(Fd fd, sim::SimTime intended) {
  post(config_.send_cost, [this, fd, intended] {
    auto it = sessions_.find(fd);
    if (it == sessions_.end()) return;
    Session& s = it->second;
    const auto req = apps::build_request(s.path);
    const std::size_t n = api_->send(fd, req);
    if (n != req.size()) {
      api_->close(fd);
      on_closed(fd, CloseReason::kReset);
      return;
    }
    s.request_outstanding = true;
    s.intended_at = intended;
    s.request_sent_at = sim().now();
    arm_abandonment(fd);
  });
}

void OpenLoopClient::arm_abandonment(Fd fd) {
  if (config_.session.abandon_after == 0) return;
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  const std::uint64_t seq = it->second.wait_seq;
  after(config_.session.abandon_after, config_.recv_cost, [this, fd, seq] {
    auto sit = sessions_.find(fd);
    if (sit == sessions_.end() || sit->second.wait_seq != seq) return;
    // Still waiting on the same request: the user walks away. The time
    // already waited goes in as a latency lower bound — the request *at
    // least* took this long, and omitting it would censor the tail.
    const sim::SimTime waited = sim().now() - sit->second.intended_at;
    record_latency_sample(waited);
    ++report_.sessions_abandoned;
    finish_session(fd, /*completed=*/false);
  });
}

void OpenLoopClient::on_readable(Fd fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  const std::size_t avail = api_->readable(fd);
  post(config_.recv_cost + config_.per_16_bytes * (avail / 16), [this, fd] {
    auto cit = sessions_.find(fd);
    if (cit == sessions_.end()) return;
    Session& s = cit->second;

    std::uint8_t buf[8192];
    std::size_t done = 0;
    while (true) {
      const std::size_t n = api_->recv(fd, buf);
      if (n == 0) break;
      done += s.parser.feed({buf, n});
      if (s.parser.error()) break;
    }

    if (s.parser.error()) {
      api_->close(fd);
      on_closed(fd, CloseReason::kReset);
      return;
    }

    for (std::size_t i = 0; i < done; ++i) {
      if (!s.request_outstanding) break;
      s.request_outstanding = false;
      ++s.wait_seq;  // retires the pending abandonment timer
      if (s.parser.last_status() != 200) ++report_.bad_status;

      const sim::SimTime now = sim().now();
      record_latency(s.intended_at, s.request_sent_at);
      ++report_.requests_completed;
      if (hub_requests_ != nullptr) hub_requests_->inc();
      const std::uint64_t nb =
          s.parser.body_bytes_total() - s.prev_body_total;
      report_.bytes_received += nb;
      s.prev_body_total = s.parser.body_bytes_total();

      if (--s.remaining == 0) {
        ++report_.sessions_completed;
        finish_session(fd, /*completed=*/true);
        return;
      }
      // Next request's intended time: now + think. Think time is user
      // behavior, not server queueing, so the CO clock excludes it.
      const sim::SimTime intended = now + config_.session.think_time;
      if (config_.session.think_time > 0) {
        after(config_.session.think_time, 0,
              [this, fd, intended] { issue_request(fd, intended); });
      } else {
        issue_request(fd, intended);
      }
    }

    if (api_->eof(fd)) {
      api_->close(fd);
      on_closed(fd, CloseReason::kReset);
    }
  });
}

void OpenLoopClient::on_closed(Fd fd, CloseReason) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.request_outstanding) {
    // The in-flight request died with the connection; record the waited
    // time as a lower bound so failures don't launder the tail.
    record_latency_sample(sim().now() - s.intended_at);
  }
  ++report_.sessions_failed;
  sessions_.erase(it);
}

void OpenLoopClient::finish_session(Fd fd, bool) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  // Erase before close() so a reentrant on_closed finds nothing and the
  // session is not double-counted as failed.
  sessions_.erase(it);
  api_->close(fd);
}

void OpenLoopClient::record_latency(sim::SimTime intended,
                                    sim::SimTime sent) {
  const sim::SimTime now = sim().now();
  const sim::SimTime co = now > intended ? now - intended : 0;
  const sim::SimTime raw = now > sent ? now - sent : 0;
  record_latency_sample(co);
  report_.raw_latency.record(raw);
}

void OpenLoopClient::record_latency_sample(sim::SimTime co) {
  report_.latency.record(co);
  if (hub_latency_ != nullptr) hub_latency_->record(co);
  if (config_.slo > 0 && co > config_.slo) ++report_.slo_violations;
}

}  // namespace neat::wl
