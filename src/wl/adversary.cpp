#include "wl/adversary.hpp"

#include <cassert>

#include "apps/http.hpp"
#include "net/packet.hpp"

namespace neat::wl {

using socklib::CloseReason;
using socklib::ConnCallbacks;
using socklib::Fd;
using socklib::kBadFd;

// ---------------------------------------------------------------------------
// SynFlood
// ---------------------------------------------------------------------------

SynFlood::SynFlood(sim::Simulator& sim, std::string name, nic::Nic& nic,
                   Config config)
    : sim::Process(sim, std::move(name)),
      nic_(nic),
      config_(config),
      rng_(sim.rng().split(0x5f1d)) {}

void SynFlood::start() {
  if (running_) return;
  running_ = true;
  fire();
}

void SynFlood::stop() { running_ = false; }

void SynFlood::fire() {
  if (!running_) return;
  const double mean_gap_ns = 1e9 / std::max(config_.rate, 1.0);
  const auto gap = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(rng_.exponential(mean_gap_ns)));
  after(gap, config_.per_syn_cost, [this] {
    if (!running_) return;
    const net::Ipv4Addr src{static_cast<std::uint32_t>(
        config_.spoof_base.value + rng_.below(config_.spoof_pool))};
    net::PacketPtr pkt = net::Packet::make(0);
    net::TcpHeader th;
    th.src_port = static_cast<std::uint16_t>(1024 + rng_.below(64512));
    th.dst_port = config_.target.port;
    th.seq = static_cast<std::uint32_t>(rng_());
    th.syn = true;
    th.window = 65535;
    th.mss_option = 1460;
    th.encode(*pkt, src, config_.target.ip);
    net::Ipv4Header ih;
    ih.src = src;
    ih.dst = config_.target.ip;
    ih.proto = net::IpProto::kTcp;
    ih.encode(*pkt);
    net::EthernetHeader eh;
    eh.dst = config_.target_mac;
    eh.src = nic_.mac();
    eh.type = net::EtherType::kIpv4;
    eh.encode(*pkt);
    nic_.transmit(std::move(pkt));
    ++stats_.syns_sent;
    fire();
  });
}

// ---------------------------------------------------------------------------
// Slowloris
// ---------------------------------------------------------------------------

Slowloris::Slowloris(sim::Simulator& sim, std::string name, Config config)
    : sim::Process(sim, std::move(name)), config_(std::move(config)) {}

void Slowloris::attach_api(std::unique_ptr<socklib::SocketApi> api) {
  api_ = std::move(api);
}

void Slowloris::start() {
  assert(api_ && "attach_api() before start()");
  running_ = true;
  for (std::size_t i = 0; i < config_.connections; ++i) open_one();
}

void Slowloris::stop() {
  running_ = false;
  for (const Fd fd : held_) api_->close(fd);
  held_.clear();
}

void Slowloris::open_one() {
  if (!running_) return;
  post(config_.connect_cost, [this] {
    if (!running_) return;
    ConnCallbacks cb;
    cb.on_connected = [this](Fd fd) {
      if (!held_.contains(fd)) return;
      // A request line that never ends: the server's parser buffers it
      // forever, waiting for the blank line that never comes.
      static constexpr char kStub[] = "GET /file20 HTTP/1.1\r\nX-A: ";
      post(config_.send_cost, [this, fd] {
        if (!held_.contains(fd)) return;
        const auto* p = reinterpret_cast<const std::uint8_t*>(kStub);
        api_->send(fd, {p, sizeof(kStub) - 1});
        trickle(fd);
      });
    };
    cb.on_readable = [this](Fd fd) {
      if (!held_.contains(fd)) return;
      std::uint8_t buf[256];
      while (api_->recv(fd, buf) > 0) {
      }
      if (api_->eof(fd)) {
        // The server shed us with an orderly close; reconnect to keep the
        // pressure constant (what a real attack tool's event loop does).
        // close() frees the connection record that owns this very callback,
        // so it must run from a fresh job, not from inside the closure.
        held_.erase(fd);
        ++stats_.conns_lost;
        post(0, [this, fd] {
          api_->close(fd);
          open_one();
        });
      }
    };
    cb.on_closed = [this](Fd fd, CloseReason) {
      if (held_.erase(fd) == 0) return;
      ++stats_.conns_lost;
      open_one();  // keep the pressure constant
    };
    const Fd fd = api_->connect(config_.server, cb);
    if (fd == kBadFd) {
      ++stats_.conns_lost;
      return;
    }
    held_.insert(fd);
    ++stats_.conns_opened;
  });
}

void Slowloris::trickle(Fd fd) {
  after(config_.trickle_every, config_.send_cost, [this, fd] {
    if (!running_ || !held_.contains(fd)) return;
    static constexpr std::uint8_t kByte[] = {'a'};
    api_->send(fd, kByte);
    ++stats_.bytes_trickled;
    trickle(fd);
  });
}

// ---------------------------------------------------------------------------
// ChurnStorm
// ---------------------------------------------------------------------------

ChurnStorm::ChurnStorm(sim::Simulator& sim, std::string name, Config config)
    : sim::Process(sim, std::move(name)),
      config_(std::move(config)),
      rng_(sim.rng().split(0xc472)) {}

void ChurnStorm::attach_api(std::unique_ptr<socklib::SocketApi> api) {
  api_ = std::move(api);
}

void ChurnStorm::start() {
  assert(api_ && "attach_api() before start()");
  if (running_) return;
  running_ = true;
  fire();
}

void ChurnStorm::stop() { running_ = false; }

void ChurnStorm::fire() {
  if (!running_) return;
  const double mean_gap_ns = 1e9 / std::max(config_.rate, 1.0);
  const auto gap = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(rng_.exponential(mean_gap_ns)));
  after(gap, config_.connect_cost, [this] {
    if (running_) {
      if (live_.size() >= config_.max_in_flight) {
        ++stats_.shed;
      } else {
        ConnCallbacks cb;
        cb.on_connected = [this](Fd fd) {
          if (!live_.contains(fd)) return;
          if (!config_.request_before_close) {
            finish(fd, /*ok=*/true);
            return;
          }
          post(config_.send_cost, [this, fd] {
            if (!live_.contains(fd)) return;
            const auto req = apps::build_request(config_.path);
            if (api_->send(fd, req) != req.size()) finish(fd, /*ok=*/false);
          });
        };
        cb.on_readable = [this](Fd fd) {
          if (!live_.contains(fd)) return;
          post(config_.recv_cost, [this, fd] {
            if (!live_.contains(fd)) return;
            // One response is all we want; drain and hang up.
            std::uint8_t buf[2048];
            std::size_t got = 0;
            while (true) {
              const std::size_t n = api_->recv(fd, buf);
              if (n == 0) break;
              got += n;
            }
            if (got > 0) {
              ++stats_.requests_ok;
              finish(fd, /*ok=*/true);
            } else if (api_->eof(fd)) {
              finish(fd, /*ok=*/false);
            }
          });
        };
        cb.on_closed = [this](Fd fd, CloseReason) {
          if (live_.erase(fd) == 0) return;
          ++stats_.failed;
        };
        const Fd fd = api_->connect(config_.server, cb);
        if (fd == kBadFd) {
          ++stats_.failed;
        } else {
          live_.insert(fd);
          ++stats_.opened;
        }
      }
    }
    fire();
  });
}

void ChurnStorm::finish(Fd fd, bool ok) {
  if (live_.erase(fd) == 0) return;
  if (!ok) ++stats_.failed;
  ++stats_.closed;
  api_->close(fd);
}

}  // namespace neat::wl
