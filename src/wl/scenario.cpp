#include "wl/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "fleet/app.hpp"
#include "fleet/cluster.hpp"
#include "fleet/fleet_autoscaler.hpp"
#include "fleet/obs_merge.hpp"
#include "harness/testbed.hpp"
#include "socklib/socklib.hpp"

namespace neat::wl {

namespace {

constexpr sim::SimTime kTimelineSample = 25 * sim::kMillisecond;

/// Client half of a scenario (token first: must die before the Testbed).
struct ClientSide {
  harness::TestbedDependent token;
  std::unique_ptr<NeatHost> host;
  std::vector<std::unique_ptr<OpenLoopClient>> tenants;
  std::vector<std::unique_ptr<SynFlood>> floods;
  std::vector<std::unique_ptr<Slowloris>> loris;
  std::vector<std::unique_ptr<ChurnStorm>> storms;
};

[[nodiscard]] double ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

/// Multi-host branch of run_scenario(): a FleetCluster behind the steering
/// tier, PingServers on every backend, FleetClients ramping the connection
/// population, optional mid-run host crash and fleet autoscaling.
ScenarioResult run_fleet_scenario(const Scenario& sc) {
  fleet::FleetConfig fc;
  fc.seed = sc.seed;
  fc.backends = sc.fleet_hosts;
  fc.standbys = sc.fleet_standbys;
  fc.clients = sc.fleet_clients;
  fc.replicas_per_backend = sc.fleet_replicas_per_host;
  fc.replicas_per_client = sc.client_replicas;
  fleet::FleetCluster fleet(fc);

  std::vector<std::uint16_t> ports;
  for (int p = 0; p < sc.fleet_ports; ++p) {
    ports.push_back(static_cast<std::uint16_t>(harness::kBasePort + p));
  }

  // One PingServer per backend (standbys included: a host entering the
  // table later must already be listening), one FleetClient per client
  // machine, everything destroyed before the cluster.
  std::vector<std::unique_ptr<fleet::PingServer>> servers;
  for (std::size_t i = 0; i < fleet.backend_count(); ++i) {
    fleet::FleetHost& b = fleet.backend(i);
    auto s = std::make_unique<fleet::PingServer>(
        fleet.sim, "ping" + std::to_string(b.id), *b.host, b.id);
    s->pin(b.app_thread());
    s->start(ports);
    servers.push_back(std::move(s));
  }
  fleet.set_adoption_handler(
      [&servers](fleet::FleetHost& to, StackReplica& rep,
                 const std::vector<net::TcpSocketPtr>& adopted) {
        servers[static_cast<std::size_t>(to.id)]->adopt(rep, adopted);
      });

  std::vector<std::unique_ptr<fleet::FleetClient>> clients;
  const auto n_clients = static_cast<std::uint64_t>(fleet.client_count());
  for (std::size_t j = 0; j < fleet.client_count(); ++j) {
    fleet::FleetHost& c = fleet.client(j);
    fleet::FleetClient::Config cc;
    cc.vip = fleet.config().steering.vip;
    cc.ports = ports;
    cc.total_conns = sc.fleet_conns / n_clients;
    auto cl = std::make_unique<fleet::FleetClient>(
        fleet.sim, "fleetcli" + std::to_string(j), *c.host, cc);
    cl->pin(c.app_thread());
    clients.push_back(std::move(cl));
  }

  std::unique_ptr<fleet::FleetAutoScaler> scaler;
  if (sc.fleet_autoscale) {
    scaler = std::make_unique<fleet::FleetAutoScaler>(fleet);
    scaler->start();
  }
  fleet.start_health_probing();

  if (sc.fleet_crash_host >= 0) {
    const auto victim = static_cast<std::size_t>(sc.fleet_crash_host);
    fleet.sim.queue().schedule(sc.fleet_crash_at,
                               [&fleet, victim] { fleet.crash_host(victim); });
  }

  for (auto& cl : clients) cl->start();
  fleet.sim.run_for(sc.warmup);
  for (auto& cl : clients) cl->mark();
  fleet.sim.run_for(sc.measure);

  // --- collect ------------------------------------------------------------
  ScenarioResult res;
  res.name = sc.name;
  for (std::size_t i = 0; i < fleet.backend_count(); ++i) {
    if (fleet.steering().has_backend(fleet.backend(i).id)) {
      ++res.fleet_hosts_up_end;
    }
  }
  for (const auto& cl : clients) {
    const auto& st = cl->app_stats();
    res.fleet_established += st.connected;
    res.fleet_responses += st.responses;
    res.fleet_lost_conns += st.closed_reset + st.closed_other;
  }
  for (const auto& s : servers) {
    res.fleet_requests_served += s->app_stats().requests;
  }
  if (scaler) {
    res.fleet_host_activations = scaler->host_activations();
    res.fleet_host_drains = scaler->host_drains();
    scaler->stop();
  }
  res.fleet_backends_declared_down =
      fleet.steering().stats().backends_declared_down;

  std::vector<const obs::Hub*> client_hubs;
  for (std::size_t j = 0; j < fleet.client_count(); ++j) {
    client_hubs.push_back(fleet.client(j).hub.get());
  }
  const obs::Histogram rtt =
      fleet::merged_histogram(client_hubs, "fleet.rtt_ns");
  res.fleet_rtt_p50_ms = ms(rtt.quantile(0.50));
  res.fleet_rtt_p99_ms = ms(rtt.quantile(0.99));
  return res;
}

}  // namespace

ScenarioResult run_scenario(const Scenario& sc) {
  if (sc.fleet_hosts > 0) return run_fleet_scenario(sc);
  harness::Testbed::Config cfg;
  cfg.seed = sc.seed;
  harness::Testbed tb(cfg);

  const int n_tenants = std::max<int>(1, static_cast<int>(sc.tenants.size()));

  // --- server rig: system cores 0-2, replicas, autoscaler spares, webs ----
  harness::Placement pl;
  pl.os = {0, 0};
  pl.syscall = {1, 0};
  pl.driver = {2, 0};
  int core = 3;
  for (int r = 0; r < sc.replicas; ++r) {
    if (sc.multi_component) {
      pl.replicas.push_back({{core, 0}, {core + 1, 0}});
      core += 2;
    } else {
      pl.replicas.push_back({{core, 0}});
      ++core;
    }
  }
  std::vector<std::vector<sim::HwThread*>> spares;
  if (sc.autoscale) {
    for (int s = 0; s < sc.spare_replica_slots; ++s) {
      assert(core < tb.server_machine.cores());
      spares.push_back({&tb.server_machine.thread(core)});
      ++core;
    }
  }
  for (int w = 0; w < n_tenants; ++w) {
    assert(core < tb.server_machine.cores());
    pl.webs.push_back({core, 0});
    ++core;
  }

  // Per-tenant file catalogs: sizes drawn once, deterministically, from the
  // tenant's SizeModel, so the byte mix is heavy-tailed but the FileStore
  // stays finite (and identical across runs of the same seed).
  harness::NeatServerOptions so;
  so.multi_component = sc.multi_component;
  so.replicas = sc.replicas;
  so.webs = n_tenants;
  so.placement = pl;
  so.tracking_filters = sc.tracking_filters;
  so.defer_syn_filters = sc.defer_syn_filters;
  so.host.tcp.syn_cookies = sc.syn_cookies;
  so.http_first_byte_deadline = sc.http_first_byte_deadline;
  so.http_header_deadline = sc.http_header_deadline;
  so.files = {{"/file20", 20}};  // adversaries fetch this
  sim::Rng catalog_rng(sc.seed ^ 0xca7a1095u);
  std::vector<std::vector<std::string>> catalogs;
  for (const auto& t : sc.tenants) {
    std::vector<std::string> paths;
    for (std::size_t j = 0; j < std::max<std::size_t>(1, t.catalog_files);
         ++j) {
      std::string path = "/" + t.name + "/f" + std::to_string(j);
      so.files.emplace_back(path, t.sizes.sample(catalog_rng));
      paths.push_back(std::move(path));
    }
    catalogs.push_back(std::move(paths));
  }
  harness::ServerRig server = harness::build_neat_server(tb, so);
  if (sc.fin_retire_linger > 0) {
    tb.server_nic.set_fin_retire_linger(sc.fin_retire_linger);
  }

  std::unique_ptr<AutoScaler> scaler;
  if (sc.autoscale) {
    scaler = std::make_unique<AutoScaler>(*server.neat, std::move(spares),
                                          sc.policy);
    scaler->start();
  }

  // --- client side --------------------------------------------------------
  ClientSide cs;
  cs.token = tb.depend();
  NeatHost::Config hc;
  hc.kind = NeatHost::Config::Kind::kSingle;
  // Distinct host id: the census gauges are keyed per host, so the client
  // host no longer clobbers the server's replica counts.
  hc.host_id = 1;
  // Open-loop generators + churn storms recycle ephemeral ports fast;
  // mirror build_client()'s tcp_tw_reuse-style client tuning.
  hc.tcp.time_wait = 50 * sim::kMillisecond;
  cs.host = std::make_unique<NeatHost>(tb.sim, tb.client_machine,
                                       tb.client_nic, hc);
  auto& cm = tb.client_machine;
  const int total_client_procs =
      3 + sc.client_replicas + n_tenants +
      static_cast<int>(sc.adversaries.size());
  assert(total_client_procs <= cm.cores() && "client machine out of cores");
  (void)total_client_procs;
  cs.host->os_process().pin(cm.thread(0));
  cs.host->syscall().pin(cm.thread(1));
  cs.host->driver().pin(cm.thread(2));
  for (int r = 0; r < sc.client_replicas; ++r) {
    cs.host->add_replica({&cm.thread(3 + r)});
  }
  int client_core = 3 + sc.client_replicas;

  for (std::size_t i = 0; i < sc.tenants.size(); ++i) {
    const TenantSpec& t = sc.tenants[i];
    OpenLoopClient::Config oc;
    oc.tenant = t.name;
    oc.server = net::SockAddr{
        harness::kServerIp,
        static_cast<std::uint16_t>(harness::kBasePort + i)};
    oc.arrival = t.arrival;
    oc.session = t.session;
    oc.catalog = catalogs[i];
    oc.max_in_flight = t.max_in_flight;
    oc.slo = t.slo;
    auto cl = std::make_unique<OpenLoopClient>(tb.sim, "wl-" + t.name, oc);
    cl->pin(cm.thread(client_core++));
    cl->attach_api(std::make_unique<socklib::SockLib>(*cl, *cs.host));
    cs.tenants.push_back(std::move(cl));
  }

  for (const AdversarySpec& a : sc.adversaries) {
    const auto port = static_cast<std::uint16_t>(
        harness::kBasePort + std::clamp(a.target_tenant, 0, n_tenants - 1));
    const net::SockAddr target{harness::kServerIp, port};
    sim::Process* proc = nullptr;
    std::function<void()> go;
    std::function<void()> halt;
    switch (a.kind) {
      case AdversarySpec::Kind::kSynFlood: {
        SynFlood::Config fc;
        fc.target = target;
        fc.target_mac = net::MacAddr::local(1);
        fc.rate = a.rate;
        auto f = std::make_unique<SynFlood>(tb.sim, "synflood",
                                            tb.client_nic, fc);
        proc = f.get();
        go = [p = f.get()] { p->start(); };
        halt = [p = f.get()] { p->stop(); };
        cs.floods.push_back(std::move(f));
        break;
      }
      case AdversarySpec::Kind::kSlowloris: {
        Slowloris::Config lc;
        lc.server = target;
        lc.connections = a.connections;
        auto l = std::make_unique<Slowloris>(tb.sim, "slowloris", lc);
        l->attach_api(std::make_unique<socklib::SockLib>(*l, *cs.host));
        proc = l.get();
        go = [p = l.get()] { p->start(); };
        halt = [p = l.get()] { p->stop(); };
        cs.loris.push_back(std::move(l));
        break;
      }
      case AdversarySpec::Kind::kChurnStorm: {
        ChurnStorm::Config cc;
        cc.server = target;
        cc.rate = a.rate;
        cc.request_before_close = a.request_before_close;
        auto s = std::make_unique<ChurnStorm>(tb.sim, "churn", cc);
        s->attach_api(std::make_unique<socklib::SockLib>(*s, *cs.host));
        proc = s.get();
        go = [p = s.get()] { p->start(); };
        halt = [p = s.get()] { p->stop(); };
        cs.storms.push_back(std::move(s));
        break;
      }
    }
    proc->pin(cm.thread(client_core++));
    tb.sim.queue().schedule(a.start_at, go);
    if (a.stop_at > a.start_at) tb.sim.queue().schedule(a.stop_at, halt);
  }

  // Static ARP, as on a real point-to-point testbed. Replicas the
  // AutoScaler spawns later resolve on demand (their ARP request transits
  // the link like any other frame).
  const net::MacAddr server_mac = net::MacAddr::local(1);
  const net::MacAddr client_mac = net::MacAddr::local(2);
  for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
    server.neat->replica(i).ip_layer_ref().arp().insert(harness::kClientIp,
                                                        client_mac);
  }
  for (std::size_t i = 0; i < cs.host->replica_count(); ++i) {
    cs.host->replica(i).ip_layer_ref().arp().insert(harness::kServerIp,
                                                    server_mac);
  }

  // Replica-count timeline, sampled from the server host. (The census
  // gauges are now keyed per host id, so reading the host directly and
  // reading `neat.host0.replicas_serving` agree; direct access also gives
  // us the NIC filter high-water mark in the same sweep.)
  ScenarioResult res;
  res.name = sc.name;
  const sim::SimTime horizon = sc.warmup + sc.measure;
  NeatHost* shost = server.neat.get();
  const bool debug = std::getenv("WL_DEBUG") != nullptr;
  for (sim::SimTime t = 0; t <= horizon; t += kTimelineSample) {
    tb.sim.queue().schedule(t, [&tb, &res, shost, debug] {
      res.replica_timeline.emplace_back(tb.sim.now(),
                                        shost->serving_replicas().size());
      res.server_flow_filters_peak =
          std::max<std::uint64_t>(res.server_flow_filters_peak,
                                  tb.server_nic.flow_filter_count());
      if (debug) {
        const obs::Gauge* u =
            tb.sim.metrics().find_gauge("autoscaler.mean_utilization");
        std::printf("[wl] t=%llums serving=%zu active=%zu util=%.3f\n",
                    static_cast<unsigned long long>(tb.sim.now() /
                                                    sim::kMillisecond),
                    shost->serving_replicas().size(),
                    shost->active_replicas().size(),
                    u != nullptr ? u->value() : -1.0);
      }
    });
  }

  for (auto& t : cs.tenants) t->start();
  tb.sim.run_for(sc.warmup);
  for (auto& t : cs.tenants) t->mark();
  tb.sim.run_for(sc.measure);

  // --- collect ------------------------------------------------------------
  const double secs = sim::to_seconds(sc.measure);
  for (std::size_t i = 0; i < cs.tenants.size(); ++i) {
    const auto& rep = cs.tenants[i]->report();
    TenantResult tr;
    tr.name = sc.tenants[i].name;
    tr.sessions_started = rep.sessions_started;
    tr.sessions_completed = rep.sessions_completed;
    tr.sessions_failed = rep.sessions_failed;
    tr.sessions_abandoned = rep.sessions_abandoned;
    tr.sessions_shed = rep.sessions_shed;
    tr.requests = rep.requests_completed;
    tr.bad_status = rep.bad_status;
    tr.slo_violations = rep.slo_violations;
    if (secs > 0) {
      tr.krps = static_cast<double>(rep.requests_completed) / secs / 1000.0;
      tr.goodput_mbps =
          static_cast<double>(rep.bytes_received) / secs / 1e6;
    }
    tr.p50_ms = ms(rep.latency.quantile(0.50));
    tr.p99_ms = ms(rep.latency.quantile(0.99));
    tr.p999_ms = ms(rep.latency.quantile(0.999));
    tr.raw_p99_ms = ms(rep.raw_latency.quantile(0.99));
    res.tenants.push_back(std::move(tr));
  }

  for (const auto& [t, n] : res.replica_timeline) {
    res.max_replicas = std::max(res.max_replicas, n);
    res.end_replicas = n;
  }
  if (scaler) {
    res.scale_ups = scaler->scale_ups();
    res.scale_downs = scaler->scale_downs();
  }
  if (const auto* c = tb.sim.metrics().find_counter("neat.lazy_terminations");
      c != nullptr) {
    res.lazy_terminations = c->value();
  }
  for (const auto& f : cs.floods) res.syns_sent += f->stats().syns_sent;
  for (const auto& s : cs.storms) res.churn_conns += s->stats().opened;
  for (const auto& l : cs.loris) {
    res.slowloris_held += l->held();
    res.slowloris_shed += l->stats().conns_lost;
  }
  res.server_filters_retired = tb.server_nic.stats().filters_retired;
  res.server_flow_filters_end = tb.server_nic.flow_filter_count();
  res.server_filter_evictions = tb.server_nic.stats().filters_evicted;
  for (std::size_t i = 0; i < shost->replica_count(); ++i) {
    const auto& ts = shost->replica(i).tcp().stats();
    res.syn_cookies_sent += ts.syn_cookies_sent;
    res.syn_cookies_accepted += ts.syn_cookies_accepted;
    res.syn_cookies_rejected += ts.syn_cookies_rejected;
  }
  for (const auto& w : server.webs) {
    res.http_deadline_closes += w->app_stats().deadline_closes;
  }
  if (const auto* c = tb.sim.metrics().find_counter("neat.migrations");
      c != nullptr) {
    res.migrations = c->value();
  }

  // Quiesce generation before teardown so no adversary keeps re-arming.
  for (auto& t : cs.tenants) t->stop();
  for (auto& f : cs.floods) f->stop();
  for (auto& l : cs.loris) l->stop();
  for (auto& s : cs.storms) s->stop();
  if (scaler) scaler->stop();
  return res;
}

// ---------------------------------------------------------------------------
// Built-in scenarios
// ---------------------------------------------------------------------------

namespace {

TenantSpec web_tenant(const char* name, double rate) {
  TenantSpec t;
  t.name = name;
  t.arrival = ArrivalModel::poisson(rate);
  t.session.requests_per_session = 4;
  t.session.geometric = true;
  t.session.abandon_after = 2 * sim::kSecond;
  t.sizes = SizeModel::pareto(200.0, 1.3, 64 * 1024);
  t.catalog_files = 6;
  t.slo = 20 * sim::kMillisecond;
  return t;
}

TenantSpec api_tenant(const char* name, double rate) {
  TenantSpec t;
  t.name = name;
  t.arrival = ArrivalModel::poisson(rate);
  t.session.requests_per_session = 1;
  t.session.abandon_after = 1 * sim::kSecond;
  t.sizes = SizeModel::fixed_size(256);
  t.catalog_files = 1;
  t.slo = 5 * sim::kMillisecond;
  return t;
}

Scenario steady_mix(bool quick) {
  Scenario sc;
  sc.name = "steady_mix";
  sc.replicas = 2;
  sc.measure = quick ? 250 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  sc.tenants.push_back(web_tenant("web", 4000 * f));
  sc.tenants.push_back(api_tenant("api", 8000 * f));
  TenantSpec bulk;
  bulk.name = "bulk";
  bulk.arrival = ArrivalModel::poisson(150 * f);
  bulk.session.requests_per_session = 2;
  bulk.session.abandon_after = 2 * sim::kSecond;
  bulk.sizes = SizeModel::log_normal(10.2, 0.8, 256 * 1024);
  bulk.catalog_files = 5;
  bulk.slo = 200 * sim::kMillisecond;
  sc.tenants.push_back(bulk);
  return sc;
}

Scenario mmpp_bursts(bool quick) {
  Scenario sc;
  sc.name = "mmpp_bursts";
  sc.replicas = 2;
  sc.measure = quick ? 300 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  TenantSpec bursty = api_tenant("bursty", 3000 * f);
  bursty.arrival =
      ArrivalModel::mmpp(3000 * f, 30000 * f, 100 * sim::kMillisecond,
                         20 * sim::kMillisecond);
  bursty.sizes = SizeModel::fixed_size(512);
  bursty.slo = 10 * sim::kMillisecond;
  sc.tenants.push_back(bursty);
  sc.tenants.push_back(api_tenant("steady", 6000 * f));
  return sc;
}

Scenario diurnal(bool quick) {
  Scenario sc;
  sc.name = "diurnal";
  sc.replicas = 1;
  sc.autoscale = true;
  // Lazy termination needs per-flow tracking filters: without them a
  // draining replica's established flows lose their steering the moment it
  // leaves the RSS set, never finish, and block collection forever.
  sc.tracking_filters = true;
  sc.spare_replica_slots = 2;
  sc.measure = quick ? 500 * sim::kMillisecond : 900 * sim::kMillisecond;
  const double f = quick ? 0.6 : 1.0;
  TenantSpec t = api_tenant("diurnal", 0);
  t.arrival = ArrivalModel::diurnal(
      2000 * f, 45000 * f,
      quick ? 300 * sim::kMillisecond : 450 * sim::kMillisecond);
  t.sizes = SizeModel::fixed_size(512);
  t.slo = 10 * sim::kMillisecond;
  sc.tenants.push_back(t);
  return sc;
}

Scenario flash_crowd(bool quick) {
  Scenario sc;
  sc.name = "flash_crowd";
  sc.replicas = 1;
  sc.autoscale = true;
  sc.tracking_filters = true;  // required for lazy termination (see diurnal)
  sc.spare_replica_slots = 3;
  sc.warmup = 150 * sim::kMillisecond;
  sc.measure = quick ? 700 * sim::kMillisecond : 1100 * sim::kMillisecond;
  const double f = quick ? 0.7 : 1.0;
  TenantSpec t = api_tenant("web", 0);
  // Surge starts after mark() so the whole ramp is inside the measured
  // window; it ends with >=350ms of calm so lazy termination has time to
  // fire (scaler cooldown 150ms + host gc).
  t.arrival = ArrivalModel::flash_crowd(
      5000 * f, 80000 * f, /*at=*/250 * sim::kMillisecond,
      /*ramp=*/50 * sim::kMillisecond,
      /*hold=*/quick ? 200 * sim::kMillisecond : 350 * sim::kMillisecond,
      /*decay=*/80 * sim::kMillisecond);
  t.sizes = SizeModel::fixed_size(512);
  t.slo = 10 * sim::kMillisecond;
  t.max_in_flight = 8192;
  sc.tenants.push_back(t);
  return sc;
}

Scenario syn_flood(bool quick) {
  Scenario sc;
  sc.name = "syn_flood";
  sc.replicas = 2;
  sc.tracking_filters = true;
  sc.fin_retire_linger = 150 * sim::kMillisecond;
  sc.measure = quick ? 300 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  sc.tenants.push_back(api_tenant("web", 8000 * f));
  AdversarySpec a;
  a.kind = AdversarySpec::Kind::kSynFlood;
  a.rate = 60000 * f;
  a.start_at = 250 * sim::kMillisecond;  // after mark(): collateral visible
  sc.adversaries.push_back(a);
  return sc;
}

Scenario slowloris(bool quick) {
  Scenario sc;
  sc.name = "slowloris";
  sc.replicas = 2;
  sc.measure = quick ? 300 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  sc.tenants.push_back(api_tenant("web", 8000 * f));
  AdversarySpec a;
  a.kind = AdversarySpec::Kind::kSlowloris;
  a.connections = quick ? 128 : 256;
  a.start_at = 200 * sim::kMillisecond;
  sc.adversaries.push_back(a);
  return sc;
}

Scenario churn_storm(bool quick) {
  Scenario sc;
  sc.name = "churn_storm";
  sc.replicas = 2;
  sc.tracking_filters = true;
  sc.fin_retire_linger = 150 * sim::kMillisecond;
  sc.measure = quick ? 300 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  sc.tenants.push_back(api_tenant("web", 8000 * f));
  AdversarySpec a;
  a.kind = AdversarySpec::Kind::kChurnStorm;
  a.rate = 12000 * f;
  a.request_before_close = true;
  a.start_at = 200 * sim::kMillisecond;
  sc.adversaries.push_back(a);
  return sc;
}

Scenario fleet_crash(bool quick) {
  Scenario sc;
  sc.name = "fleet_crash";
  sc.seed = 7;
  sc.fleet_hosts = quick ? 3 : 4;
  sc.fleet_clients = 2;
  sc.fleet_replicas_per_host = 2;
  sc.fleet_conns = quick ? 4000 : 20000;
  sc.fleet_ports = 8;
  sc.warmup = 250 * sim::kMillisecond;
  sc.measure = quick ? 500 * sim::kMillisecond : 900 * sim::kMillisecond;
  // Kill one backend mid-window: the prober evicts it, its flows die, every
  // other backend keeps serving.
  sc.fleet_crash_host = 0;
  sc.fleet_crash_at = sc.warmup + 150 * sim::kMillisecond;
  return sc;
}

}  // namespace

const std::vector<NamedScenario>& builtin_scenarios() {
  static const std::vector<NamedScenario> kScenarios = {
      {"steady_mix", "three tenants (web/api/bulk), heavy-tailed sizes",
       steady_mix},
      {"mmpp_bursts", "bursty MMPP tenant next to a steady one",
       mmpp_bursts},
      {"diurnal", "sinusoidal load against the autoscaler", diurnal},
      {"flash_crowd", "step surge: scale up, then lazy termination",
       flash_crowd},
      {"syn_flood", "spoofed SYN flood collateral on a serving tenant",
       syn_flood},
      {"slowloris", "slow-header connection hoarding", slowloris},
      {"churn_storm", "open/close churn against steering + filters",
       churn_storm},
      {"fleet_crash", "multi-host cluster: mid-run backend crash behind "
       "the maglev tier", fleet_crash},
  };
  return kScenarios;
}

}  // namespace neat::wl
