// Arrival processes for the workload engine.
//
// An ArrivalModel describes session arrivals per second as a (possibly
// time-varying) intensity λ(t); an ArrivalSampler turns it into a concrete
// deterministic arrival sequence via Lewis–Shedler thinning against the
// model's peak rate. Everything draws from the sampler's own sub-Rng, so a
// (seed, model) pair replays the identical arrival train regardless of what
// the rest of the simulation does — the property that makes open-loop
// measurement meaningful (the offered load never reacts to the server).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace neat::wl {

struct ArrivalModel {
  enum class Kind {
    kPoisson,     ///< constant-rate Poisson
    kMmpp,        ///< 2-state Markov-modulated Poisson (base/burst)
    kDiurnal,     ///< sinusoidal ramp between base and peak
    kFlashCrowd,  ///< base rate with a ramp/hold/decay surge window
  };

  Kind kind{Kind::kPoisson};
  double rate{1000.0};  ///< base intensity, sessions/second

  // kMmpp: alternate between `rate` and `burst_rate`, exponential dwells.
  double burst_rate{0.0};
  sim::SimTime dwell_base{100 * sim::kMillisecond};
  sim::SimTime dwell_burst{20 * sim::kMillisecond};

  // kDiurnal: λ(t) sweeps rate -> peak_rate -> rate each period.
  double peak_rate{0.0};
  sim::SimTime period{1 * sim::kSecond};

  // kFlashCrowd: λ ramps from rate to surge_rate over [surge_at,
  // surge_at+surge_ramp], holds, then decays linearly back.
  double surge_rate{0.0};
  sim::SimTime surge_at{0};
  sim::SimTime surge_ramp{50 * sim::kMillisecond};
  sim::SimTime surge_hold{300 * sim::kMillisecond};
  sim::SimTime surge_decay{100 * sim::kMillisecond};

  [[nodiscard]] static ArrivalModel poisson(double rate) {
    ArrivalModel m;
    m.kind = Kind::kPoisson;
    m.rate = rate;
    return m;
  }

  [[nodiscard]] static ArrivalModel mmpp(double base, double burst,
                                         sim::SimTime dwell_base,
                                         sim::SimTime dwell_burst) {
    ArrivalModel m;
    m.kind = Kind::kMmpp;
    m.rate = base;
    m.burst_rate = burst;
    m.dwell_base = dwell_base;
    m.dwell_burst = dwell_burst;
    return m;
  }

  [[nodiscard]] static ArrivalModel diurnal(double base, double peak,
                                            sim::SimTime period) {
    ArrivalModel m;
    m.kind = Kind::kDiurnal;
    m.rate = base;
    m.peak_rate = peak;
    m.period = period;
    return m;
  }

  [[nodiscard]] static ArrivalModel flash_crowd(double base, double surge,
                                                sim::SimTime at,
                                                sim::SimTime ramp,
                                                sim::SimTime hold,
                                                sim::SimTime decay) {
    ArrivalModel m;
    m.kind = Kind::kFlashCrowd;
    m.rate = base;
    m.surge_rate = surge;
    m.surge_at = at;
    m.surge_ramp = ramp;
    m.surge_hold = hold;
    m.surge_decay = decay;
    return m;
  }

  /// Peak intensity, the thinning envelope.
  [[nodiscard]] double max_rate() const {
    switch (kind) {
      case Kind::kPoisson: return rate;
      case Kind::kMmpp: return std::max(rate, burst_rate);
      case Kind::kDiurnal: return std::max(rate, peak_rate);
      case Kind::kFlashCrowd: return std::max(rate, surge_rate);
    }
    return rate;
  }
};

class ArrivalSampler {
 public:
  ArrivalSampler(ArrivalModel model, sim::Rng rng)
      : model_(model), rng_(rng), mmpp_rng_(rng.split(0x33a9)) {}

  /// Instantaneous intensity at `t`. Calls must be non-decreasing in `t`
  /// (the MMPP state machine only advances forward).
  [[nodiscard]] double rate_at(sim::SimTime t) {
    switch (model_.kind) {
      case ArrivalModel::Kind::kPoisson:
        return model_.rate;
      case ArrivalModel::Kind::kMmpp: {
        while (t >= state_until_) {
          const sim::SimTime dwell = std::max<sim::SimTime>(
              1, static_cast<sim::SimTime>(mmpp_rng_.exponential(
                     static_cast<double>(burst_ ? model_.dwell_burst
                                                : model_.dwell_base))));
          state_until_ += dwell;
          burst_ = !burst_;
        }
        // `burst_` flipped past t's state; the state *covering* t is the
        // previous one only when the loop ran. Track explicitly instead:
        return in_burst_covering(t) ? model_.burst_rate : model_.rate;
      }
      case ArrivalModel::Kind::kDiurnal: {
        const double phase =
            2.0 * kPi * static_cast<double>(t % model_.period) /
            static_cast<double>(model_.period);
        const double w = 0.5 - 0.5 * std::cos(phase);  // 0 at t=0, 1 mid
        return model_.rate + (model_.peak_rate - model_.rate) * w;
      }
      case ArrivalModel::Kind::kFlashCrowd: {
        const sim::SimTime a = model_.surge_at;
        if (t < a) return model_.rate;
        const sim::SimTime ramp_end = a + model_.surge_ramp;
        if (t < ramp_end) {
          const double f = static_cast<double>(t - a) /
                           static_cast<double>(std::max<sim::SimTime>(
                               1, model_.surge_ramp));
          return model_.rate + (model_.surge_rate - model_.rate) * f;
        }
        const sim::SimTime hold_end = ramp_end + model_.surge_hold;
        if (t < hold_end) return model_.surge_rate;
        const sim::SimTime decay_end = hold_end + model_.surge_decay;
        if (t < decay_end) {
          const double f = static_cast<double>(decay_end - t) /
                           static_cast<double>(std::max<sim::SimTime>(
                               1, model_.surge_decay));
          return model_.rate + (model_.surge_rate - model_.rate) * f;
        }
        return model_.rate;
      }
    }
    return model_.rate;
  }

  /// Next arrival strictly after `t` (Lewis–Shedler thinning against the
  /// peak rate).
  [[nodiscard]] sim::SimTime next_after(sim::SimTime t) {
    const double lam_max = std::max(model_.max_rate(), 1e-9);
    const double mean_gap_ns = 1e9 / lam_max;
    for (int guard = 0; guard < 1'000'000; ++guard) {
      t += std::max<sim::SimTime>(
          1, static_cast<sim::SimTime>(rng_.exponential(mean_gap_ns)));
      if (rng_.uniform() * lam_max <= rate_at(t)) return t;
    }
    return t;  // unreachable for sane models; keeps the loop bounded
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  /// MMPP bookkeeping: rate_at() advanced the flip schedule past `t`;
  /// reconstruct which state covers `t` from the flip count parity.
  [[nodiscard]] bool in_burst_covering(sim::SimTime) const {
    // After the while-loop, `burst_` names the state of the *current*
    // interval [prev_flip, state_until_), which is the one covering t.
    return burst_;
  }

  ArrivalModel model_;
  sim::Rng rng_;
  sim::Rng mmpp_rng_;
  bool burst_{false};
  sim::SimTime state_until_{0};
};

}  // namespace neat::wl
