// Adversarial clients: traffic that attacks the stack instead of using it.
//
// Three classics, each aimed at a different NEaT mechanism:
//   * SynFlood  — spoofed-source SYNs at line rate. Exercises the SYN
//     backlog, the per-replica half-open state, and (with tracking filters
//     on) pollution of the NIC's exact-match flow table. Sources must be
//     spoofed: a flood from the client's real IP would be answered by the
//     client stack's own RST (unmatched SYN|ACK), tearing the half-open
//     state down and turning the attack into a no-op.
//   * Slowloris — many connections that each dribble one header byte at a
//     time, holding server sockets and web-server parser state open
//     indefinitely without ever completing a request.
//   * ChurnStorm — connections opened and torn down as fast as possible,
//     stressing subsocket steering, ephemeral-port selection against
//     TIME_WAIT, and tracking-filter install/retire turnover.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "nic/nic.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "socklib/socket_api.hpp"

namespace neat::wl {

/// Spoofed-source SYN flood, injected as raw frames on the attacker's NIC
/// (no local stack involvement — the whole point is that no real endpoint
/// exists behind the source addresses).
class SynFlood : public sim::Process {
 public:
  struct Config {
    net::SockAddr target;
    net::MacAddr target_mac;
    double rate{50'000.0};  ///< SYNs/second
    /// Spoofed sources are drawn from `spoof_base + [0, spoof_pool)`.
    /// The server's SYN|ACKs to these addresses pend unresolvable in its
    /// ARP table until the half-open times out — the state-holding attack.
    net::Ipv4Addr spoof_base{net::Ipv4Addr::of(10, 66, 0, 1)};
    std::uint32_t spoof_pool{64};
    sim::Cycles per_syn_cost{300};
  };

  struct Stats {
    std::uint64_t syns_sent{0};
  };

  SynFlood(sim::Simulator& sim, std::string name, nic::Nic& nic,
           Config config);

  void start();
  void stop();
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  void on_restart() override {}

 private:
  void fire();

  nic::Nic& nic_;
  Config config_;
  Stats stats_;
  sim::Rng rng_;
  bool running_{false};
};

/// Slowloris: open `connections` sockets, send an eternally-unfinished
/// request header on each, trickle one byte per `trickle_every` to defeat
/// idle timeouts. Holds sockets + parser state, not bandwidth.
class Slowloris : public sim::Process {
 public:
  struct Config {
    net::SockAddr server;
    std::size_t connections{128};
    sim::SimTime trickle_every{100 * sim::kMillisecond};
    sim::Cycles connect_cost{3500};
    sim::Cycles send_cost{1500};
  };

  struct Stats {
    std::uint64_t conns_opened{0};
    std::uint64_t conns_lost{0};  ///< server shed us (reset/close)
    std::uint64_t bytes_trickled{0};
  };

  Slowloris(sim::Simulator& sim, std::string name, Config config);

  void attach_api(std::unique_ptr<socklib::SocketApi> api);
  void start();
  void stop();  ///< release all held connections

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t held() const { return held_.size(); }

 protected:
  void on_restart() override {}

 private:
  void open_one();
  void trickle(socklib::Fd fd);

  Config config_;
  Stats stats_;
  std::unique_ptr<socklib::SocketApi> api_;
  std::unordered_set<socklib::Fd> held_;
  bool running_{false};
};

/// Connection-churn storm: open, optionally issue one tiny request, close,
/// repeat at `rate`. The abuse is the connection lifecycle itself.
class ChurnStorm : public sim::Process {
 public:
  struct Config {
    net::SockAddr server;
    double rate{10'000.0};  ///< connections/second
    /// Send one GET before closing (false = pure open/close SYN churn).
    bool request_before_close{true};
    std::string path{"/file20"};
    std::size_t max_in_flight{2048};
    sim::Cycles connect_cost{3500};
    sim::Cycles send_cost{2800};
    sim::Cycles recv_cost{2600};
  };

  struct Stats {
    std::uint64_t opened{0};
    std::uint64_t closed{0};
    std::uint64_t failed{0};
    std::uint64_t requests_ok{0};
    std::uint64_t shed{0};
  };

  ChurnStorm(sim::Simulator& sim, std::string name, Config config);

  void attach_api(std::unique_ptr<socklib::SocketApi> api);
  void start();
  void stop();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] socklib::SocketApi& api() { return *api_; }
  [[nodiscard]] std::size_t in_flight() const { return live_.size(); }

 protected:
  void on_restart() override {}

 private:
  void fire();
  void finish(socklib::Fd fd, bool ok);

  Config config_;
  Stats stats_;
  std::unique_ptr<socklib::SocketApi> api_;
  std::unordered_set<socklib::Fd> live_;
  sim::Rng rng_;
  bool running_{false};
};

}  // namespace neat::wl
