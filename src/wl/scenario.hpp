// Scenario registry + runner: named, seed-reproducible workload campaigns.
//
// A Scenario declares tenants (each with its own port, arrival process,
// session shape, size mix and SLO — several services multiplexed onto one
// NEaT host) plus optional adversaries and autoscaling. run_scenario()
// assembles the two-machine testbed, drives the whole thing, and returns
// per-tenant CO-corrected results plus a replica-count timeline, so a bench
// can show the AutoScaler riding a flash crowd and a SYN flood's collateral
// damage as numbers rather than anecdotes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "neat/autoscaler.hpp"
#include "wl/adversary.hpp"
#include "wl/arrival.hpp"
#include "wl/openloop.hpp"
#include "wl/session.hpp"

namespace neat::wl {

struct TenantSpec {
  std::string name{"t0"};
  ArrivalModel arrival{ArrivalModel::poisson(5000.0)};
  SessionModel session{};
  SizeModel sizes{SizeModel::fixed_size(1024)};
  /// Distinct files drawn from `sizes` to populate this tenant's catalog.
  std::size_t catalog_files{4};
  sim::SimTime slo{20 * sim::kMillisecond};
  std::size_t max_in_flight{4096};
};

struct AdversarySpec {
  enum class Kind { kSynFlood, kSlowloris, kChurnStorm };
  Kind kind{Kind::kSynFlood};
  double rate{50'000.0};         ///< SYNs/s or conns/s
  std::size_t connections{128};  ///< slowloris holds this many
  bool request_before_close{true};
  int target_tenant{0};
  /// Window relative to scenario start (stop_at 0 = run to the end).
  sim::SimTime start_at{100 * sim::kMillisecond};
  sim::SimTime stop_at{0};
};

struct Scenario {
  std::string name{"unnamed"};
  std::uint64_t seed{42};
  sim::SimTime warmup{150 * sim::kMillisecond};
  sim::SimTime measure{600 * sim::kMillisecond};
  int replicas{1};
  bool multi_component{false};
  bool tracking_filters{false};
  // --- defenses (ext_defense benches run each scenario with and without) --
  /// SYN cookies: no TCB until the handshake's final ACK validates.
  bool syn_cookies{false};
  /// No NIC tracking filter until the handshake completes (needs
  /// tracking_filters).
  bool defer_syn_filters{false};
  /// Web-server slowloris deadlines (0 = undefended).
  sim::SimTime http_first_byte_deadline{0};
  sim::SimTime http_header_deadline{0};
  /// Override the NIC's FIN-to-reclaim linger (0 = keep the NIC default).
  /// Sub-second scenarios shorten it so filter retirement is observable.
  sim::SimTime fin_retire_linger{0};
  /// Hand the AutoScaler this many spare single-core replica slots.
  bool autoscale{false};
  int spare_replica_slots{2};
  AutoScaler::Policy policy{};
  /// Client-side stack replicas carrying the generated load.
  int client_replicas{4};
  std::vector<TenantSpec> tenants;
  std::vector<AdversarySpec> adversaries;

  // --- fleet topology (fleet_hosts > 0 switches run_scenario() from the
  // --- two-machine testbed to a multi-host cluster behind the maglev
  // --- steering tier; tenants/adversaries above are then unused) ----------
  int fleet_hosts{0};      ///< backend hosts in the steering table
  int fleet_standbys{0};   ///< warm spares (fleet autoscaler material)
  int fleet_clients{2};    ///< client machines
  int fleet_replicas_per_host{2};
  std::uint64_t fleet_conns{20'000};  ///< total connections, fleet-wide
  int fleet_ports{8};                 ///< VIP ports served by every backend
  /// Power this backend off mid-run (-1 = no crash). The tier's health
  /// prober detects and evicts it; only its connections are lost.
  int fleet_crash_host{-1};
  sim::SimTime fleet_crash_at{0};  ///< relative to scenario start
  bool fleet_autoscale{false};     ///< run the FleetAutoScaler
};

struct TenantResult {
  std::string name;
  std::uint64_t sessions_started{0};
  std::uint64_t sessions_completed{0};
  std::uint64_t sessions_failed{0};
  std::uint64_t sessions_abandoned{0};
  std::uint64_t sessions_shed{0};
  std::uint64_t requests{0};
  std::uint64_t bad_status{0};
  std::uint64_t slo_violations{0};
  double krps{0.0};
  double goodput_mbps{0.0};
  double p50_ms{0.0};
  double p99_ms{0.0};
  double p999_ms{0.0};
  /// Wire-clock p99 (no CO correction) — the flattering number.
  double raw_p99_ms{0.0};
};

struct ScenarioResult {
  std::string name;
  std::vector<TenantResult> tenants;
  /// (time, serving replicas) sampled every 25 ms across warmup+measure.
  std::vector<std::pair<sim::SimTime, std::size_t>> replica_timeline;
  std::size_t max_replicas{0};
  std::size_t end_replicas{0};
  std::uint64_t scale_ups{0};
  std::uint64_t scale_downs{0};
  std::uint64_t lazy_terminations{0};
  std::uint64_t syns_sent{0};
  std::uint64_t churn_conns{0};
  std::uint64_t slowloris_held{0};
  /// Times the server shed a slowloris holder (the adversary reopens, so the
  /// standing population stays at target — sheds measure bounded lifetime).
  std::uint64_t slowloris_shed{0};
  std::uint64_t server_filters_retired{0};
  std::uint64_t server_flow_filters_end{0};
  /// High-water mark of the server NIC flow-filter table (sampled on the
  /// replica timeline) — shows whether a flood can exhaust the table.
  std::uint64_t server_flow_filters_peak{0};
  std::uint64_t server_filter_evictions{0};
  std::uint64_t syn_cookies_sent{0};
  std::uint64_t syn_cookies_accepted{0};
  std::uint64_t syn_cookies_rejected{0};
  /// Connections the web servers closed for overstaying a header deadline.
  std::uint64_t http_deadline_closes{0};
  std::uint64_t migrations{0};

  // --- fleet results (fleet_hosts > 0 runs only) --------------------------
  std::size_t fleet_hosts_up_end{0};  ///< backends in the table at the end
  std::uint64_t fleet_established{0};
  std::uint64_t fleet_responses{0};
  std::uint64_t fleet_lost_conns{0};  ///< client fds closed by reset/failure
  std::uint64_t fleet_requests_served{0};  ///< summed over backend hubs
  std::uint64_t fleet_host_activations{0};
  std::uint64_t fleet_host_drains{0};
  std::uint64_t fleet_backends_declared_down{0};
  double fleet_rtt_p50_ms{0.0};  ///< merged across client-host hubs
  double fleet_rtt_p99_ms{0.0};
};

ScenarioResult run_scenario(const Scenario& sc);

/// Built-in scenario library (the bench iterates this).
struct NamedScenario {
  std::string name;
  std::string summary;
  std::function<Scenario(bool quick)> make;
};
[[nodiscard]] const std::vector<NamedScenario>& builtin_scenarios();

}  // namespace neat::wl
