// Session-shape models: what a client does once it has arrived.
//
// SizeModel draws response sizes (the file a session fetches) from fixed,
// bounded-Pareto, or log-normal distributions — the heavy-tailed shapes
// measured for web traffic. SessionModel describes the request train riding
// one connection: how many requests, the think time between them, and how
// long the user waits before abandoning a stalled session.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace neat::wl {

struct SizeModel {
  enum class Kind { kFixed, kPareto, kLogNormal };

  Kind kind{Kind::kFixed};
  std::size_t fixed{1024};

  // kPareto: P(X > x) = (xm/x)^alpha for x >= xm, truncated at `cap`.
  double pareto_xm{256.0};
  double pareto_alpha{1.2};

  // kLogNormal: ln X ~ N(mu, sigma^2), truncated at `cap`.
  double lognorm_mu{8.0};    // e^8 ≈ 3 KiB median
  double lognorm_sigma{1.0};

  std::size_t cap{1 << 20};  ///< truncation bound, keeps tails finite

  [[nodiscard]] static SizeModel fixed_size(std::size_t bytes) {
    SizeModel m;
    m.kind = Kind::kFixed;
    m.fixed = bytes;
    return m;
  }

  [[nodiscard]] static SizeModel pareto(double xm, double alpha,
                                        std::size_t cap) {
    SizeModel m;
    m.kind = Kind::kPareto;
    m.pareto_xm = xm;
    m.pareto_alpha = alpha;
    m.cap = cap;
    return m;
  }

  [[nodiscard]] static SizeModel log_normal(double mu, double sigma,
                                            std::size_t cap) {
    SizeModel m;
    m.kind = Kind::kLogNormal;
    m.lognorm_mu = mu;
    m.lognorm_sigma = sigma;
    m.cap = cap;
    return m;
  }

  [[nodiscard]] std::size_t sample(sim::Rng& rng) const {
    switch (kind) {
      case Kind::kFixed:
        return fixed;
      case Kind::kPareto: {
        // Inverse CDF: x = xm * (1-u)^(-1/alpha).
        const double u = rng.uniform();
        const double x =
            pareto_xm * std::pow(1.0 - u, -1.0 / pareto_alpha);
        return clamp(x);
      }
      case Kind::kLogNormal: {
        // Box–Muller; one normal per sample keeps the draw count stable.
        const double u1 = std::max(rng.uniform(), 1e-12);
        const double u2 = rng.uniform();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
        const double x = std::exp(lognorm_mu + lognorm_sigma * z);
        return clamp(x);
      }
    }
    return fixed;
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  [[nodiscard]] std::size_t clamp(double x) const {
    if (!(x > 1.0)) return 1;
    return std::min(static_cast<std::size_t>(x), cap);
  }
};

struct SessionModel {
  /// Requests per session; with `geometric`, this is the mean of a
  /// geometric draw (keep-alive trains of random length), else exact.
  std::uint32_t requests_per_session{1};
  bool geometric{false};

  /// Client-side think time between a response and the next request.
  sim::SimTime think_time{0};

  /// Give up on a session whose in-flight request has stalled this long
  /// (0 = infinitely patient). Abandonment closes the connection and the
  /// waited time enters the latency record as a lower bound, so stalls
  /// are never silently dropped from the tail.
  sim::SimTime abandon_after{0};

  [[nodiscard]] std::uint32_t sample_requests(sim::Rng& rng) const {
    if (!geometric || requests_per_session <= 1) {
      return std::max<std::uint32_t>(1, requests_per_session);
    }
    // Geometric with mean n: success prob 1/n, count = trials to success.
    const double p = 1.0 / static_cast<double>(requests_per_session);
    std::uint32_t n = 1;
    while (n < 64 * requests_per_session && rng.uniform() > p) ++n;
    return n;
  }
};

}  // namespace neat::wl
