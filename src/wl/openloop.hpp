// Open-loop session generator with coordinated-omission-corrected latency.
//
// Unlike apps::LoadGen (the closed-loop httperf stand-in, which only issues
// a request once the previous one returns), sessions here arrive on a
// schedule drawn from an ArrivalModel and never wait for the server: a slow
// server faces a growing connection backlog exactly as a real one would.
//
// Latency is measured from each request's *intended* send time — the
// session's arrival epoch for the first request (so connect time is
// inside), previous-completion + think-time for the rest — not from the
// moment the bytes left. A stalled server therefore cannot hide its stall
// by delaying the measurement clock (the coordinated-omission trap that
// makes closed-loop p99s look flat under overload). Abandoned sessions
// record their waited time as a lower-bound sample for the same reason.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/http.hpp"
#include "obs/metrics.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "socklib/socket_api.hpp"
#include "wl/arrival.hpp"
#include "wl/session.hpp"

namespace neat::wl {

class OpenLoopClient : public sim::Process {
 public:
  struct Config {
    std::string tenant{"t0"};
    net::SockAddr server;
    ArrivalModel arrival;
    SessionModel session;
    /// Paths a session may fetch (one chosen uniformly per session). The
    /// scenario builder populates this from a SizeModel so the byte mix is
    /// heavy-tailed while the server's FileStore stays finite.
    std::vector<std::string> catalog{{"/file20"}};
    /// Back-pressure valve: arrivals beyond this many live sessions are
    /// shed (counted, not silently dropped) so an overloaded run keeps
    /// bounded memory instead of accumulating unbounded sockets.
    std::size_t max_in_flight{4096};
    /// Per-request latency budget; responses above it count as violations
    /// (0 = no SLO).
    sim::SimTime slo{0};

    sim::Cycles connect_cost{3500};
    sim::Cycles send_cost{2800};
    sim::Cycles recv_cost{2600};
    sim::Cycles per_16_bytes{2};
    sim::Cycles arrival_cost{200};
  };

  struct Report {
    std::uint64_t sessions_started{0};
    std::uint64_t sessions_completed{0};
    std::uint64_t sessions_failed{0};     ///< connection error mid-session
    std::uint64_t sessions_abandoned{0};  ///< user gave up waiting
    std::uint64_t sessions_shed{0};       ///< max_in_flight valve
    std::uint64_t requests_completed{0};
    std::uint64_t bytes_received{0};
    std::uint64_t bad_status{0};
    std::uint64_t slo_violations{0};
    /// CO-corrected: measured from intended send times (+ abandonment
    /// lower bounds). The honest distribution under overload.
    obs::Histogram latency;
    /// Wire-clock latency (send -> response) for comparison; the gap
    /// between the two distributions *is* the coordinated omission.
    obs::Histogram raw_latency;
  };

  OpenLoopClient(sim::Simulator& sim, std::string name, Config config);

  void attach_api(std::unique_ptr<socklib::SocketApi> api);
  /// Begin generating arrivals (first epoch drawn after the current time).
  void start();
  /// Stop generating new arrivals; in-flight sessions drain naturally.
  void stop();
  /// Begin a fresh measurement window.
  void mark();

  [[nodiscard]] const Report& report() const { return report_; }
  [[nodiscard]] Config& config() { return config_; }
  [[nodiscard]] std::size_t in_flight_sessions() const {
    return sessions_.size();
  }
  [[nodiscard]] socklib::SocketApi& api() { return *api_; }

 protected:
  void on_restart() override {}

 private:
  struct Session {
    apps::HttpResponseParser parser;
    std::string path;
    std::uint32_t remaining{1};
    /// Intended send time of the in-flight request (CO clock).
    sim::SimTime intended_at{0};
    sim::SimTime request_sent_at{0};
    std::uint64_t prev_body_total{0};
    /// Bumped whenever the in-flight request resolves; stale abandonment
    /// timers compare against it and stand down.
    std::uint64_t wait_seq{0};
    bool request_outstanding{false};
    bool connected{false};
  };

  void schedule_next_arrival();
  void on_arrival(sim::SimTime epoch);
  void issue_request(socklib::Fd fd, sim::SimTime intended);
  void arm_abandonment(socklib::Fd fd);
  void on_readable(socklib::Fd fd);
  void on_closed(socklib::Fd fd, socklib::CloseReason reason);
  void finish_session(socklib::Fd fd, bool completed);
  void record_latency(sim::SimTime intended, sim::SimTime sent);
  void record_latency_sample(sim::SimTime co);

  Config config_;
  Report report_;
  std::unique_ptr<socklib::SocketApi> api_;
  std::unique_ptr<ArrivalSampler> sampler_;
  sim::Rng rng_;
  std::unordered_map<socklib::Fd, Session> sessions_;
  obs::Histogram* hub_latency_{nullptr};
  obs::Counter* hub_requests_{nullptr};
  sim::SimTime last_epoch_{0};
  bool running_{false};
};

}  // namespace neat::wl
