// The NIC driver process.
//
// One single-threaded, isolated process per NIC (paper §3.5: the driver is
// the one data-plane component NEaT does not replicate — a single core
// handles 10G line rate). It moves packets between the NIC queues and the
// per-replica channels, fans ARP out to every replica, executes control-
// plane requests (filters, indirection), and implements the recovery
// protocol: after a replica crash it drops that queue's packets until the
// restarted replica announces itself (§3.6).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ipc/channel.hpp"
#include "ipc/doorbell.hpp"
#include "neat/costs.hpp"
#include "net/packet.hpp"
#include "nic/nic.hpp"
#include "sim/process.hpp"

namespace neat::drv {

struct DriverStats {
  std::uint64_t rx_forwarded{0};
  std::uint64_t rx_dropped_inactive{0};
  std::uint64_t rx_dropped_channel_full{0};
  std::uint64_t tx_sent{0};
  std::uint64_t control_ops{0};
  std::uint64_t restarts{0};  ///< crash-recovery cycles this driver survived
};

class NicDriver : public sim::Process {
 public:
  NicDriver(sim::Simulator& sim, nic::Nic& nic, StackCosts costs,
            std::string name = "nicdrv");

  [[nodiscard]] nic::Nic& nic() { return nic_; }
  [[nodiscard]] const DriverStats& driver_stats() const { return dstats_; }

  /// A replica announces itself as the endpoint for `queue`. The channel
  /// must deliver into the replica's first RX component. Re-announcing
  /// after a restart reactivates delivery.
  void announce_endpoint(int queue, ipc::Channel<net::PacketPtr>* ch);

  /// Recovery manager marks a crashed replica's queue inactive; the driver
  /// then drops (rather than queues) its packets until re-announce.
  void deactivate_endpoint(int queue);

  [[nodiscard]] bool endpoint_active(int queue) const;

  /// Create a TX channel for one replica (producer side keeps the handle).
  /// Packets sent into it are charged driver TX cost and transmitted.
  std::unique_ptr<ipc::Channel<net::PacketPtr>> make_tx_channel(
      std::size_t capacity = 1024);

  /// A transmit port for one replica. Normally it wraps a TX channel into
  /// the driver process; in hardware-offload mode it feeds the NIC
  /// directly (§4: "if the programmable NIC were to offer the same
  /// interface as the network driver, there would be no need for the
  /// drivers and we could free their cores").
  using TxPort = std::function<void(net::PacketPtr)>;
  TxPort make_tx_port(std::size_t capacity = 1024);

  /// §4 future-work mode: the NIC itself runs the driver's data plane.
  /// RX packets go straight from hardware classification into the
  /// replicas' channels and TX frames go straight out — no driver-process
  /// cycles; the driver remains only as the (idle) control plane and its
  /// core is free for an application.
  void set_hardware_offload(bool on) { hardware_offload_ = on; }
  [[nodiscard]] bool hardware_offload() const { return hardware_offload_; }

  /// Asynchronous control-plane op executed in driver context (install
  /// filters, reprogram indirection, ...). Models the PCI config mailbox.
  void control(std::function<void()> op);

 protected:
  void on_restart() override;

  /// Max frames drained per driver job. Matches ipc::Channel's batch
  /// budget: one doorbell moves up to a burst, bounding per-job latency.
  static constexpr std::size_t kRxBurst = 32;

 private:
  void rx_kick(int queue);
  void drain_burst(int queue, std::size_t budget);

  nic::Nic& nic_;
  StackCosts costs_;
  DriverStats dstats_;
  obs::Histogram* rx_batch_size_{nullptr};

  struct Endpoint {
    ipc::Channel<net::PacketPtr>* channel{nullptr};
    bool active{false};
  };
  std::vector<Endpoint> endpoints_;
  std::vector<std::uint8_t> draining_;  // not vector<bool>: need lvalue refs
  bool hardware_offload_{false};
};

}  // namespace neat::drv
