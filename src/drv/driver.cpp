#include "drv/driver.hpp"

#include "net/ethernet.hpp"
#include "net/wire.hpp"

namespace neat::drv {

NicDriver::NicDriver(sim::Simulator& sim, nic::Nic& nic, StackCosts costs,
                     std::string name)
    : sim::Process(sim, std::move(name)),
      nic_(nic),
      costs_(costs),
      endpoints_(static_cast<std::size_t>(nic.params().num_queues)),
      draining_(static_cast<std::size_t>(nic.params().num_queues), 0) {
  nic_.set_rx_notify([this](int queue) { rx_kick(queue); });
}

void NicDriver::announce_endpoint(int queue,
                                  ipc::Channel<net::PacketPtr>* ch) {
  auto& ep = endpoints_[static_cast<std::size_t>(queue)];
  ep.channel = ch;
  ep.active = true;
  // Catch up on anything already sitting in the ring.
  rx_kick(queue);
}

void NicDriver::deactivate_endpoint(int queue) {
  endpoints_[static_cast<std::size_t>(queue)].active = false;
}

bool NicDriver::endpoint_active(int queue) const {
  return endpoints_[static_cast<std::size_t>(queue)].active;
}

std::unique_ptr<ipc::Channel<net::PacketPtr>> NicDriver::make_tx_channel(
    std::size_t capacity) {
  return std::make_unique<ipc::Channel<net::PacketPtr>>(
      *this, capacity, ipc::kDefaultChannelLatency,
      [this](const net::PacketPtr&) { return costs_.drv_tx; },
      [this](net::PacketPtr&& pkt) {
        ++dstats_.tx_sent;
        nic_.transmit(std::move(pkt));
      });
}

NicDriver::TxPort NicDriver::make_tx_port(std::size_t capacity) {
  if (hardware_offload_) {
    return [this](net::PacketPtr pkt) {
      ++dstats_.tx_sent;
      nic_.transmit(std::move(pkt));  // the NIC is the driver
    };
  }
  auto ch = std::shared_ptr<ipc::Channel<net::PacketPtr>>(
      make_tx_channel(capacity));
  return [ch](net::PacketPtr pkt) { ch->send(std::move(pkt)); };
}

void NicDriver::control(std::function<void()> op) {
  post(costs_.drv_control, [this, op = std::move(op)] {
    ++dstats_.control_ops;
    op();
  });
}

void NicDriver::rx_kick(int queue) {
  if (hardware_offload_) {
    // The NIC dispatches to the replica channels itself, at zero driver
    // cost (it already classified the packet; "the NIC as an additional
    // processing core that runs certain parts of the stack").
    while (net::PacketPtr pkt = nic_.poll_rx(queue)) {
      auto& ep = endpoints_[static_cast<std::size_t>(queue)];
      if (ep.active && ep.channel != nullptr) {
        if (ep.channel->send(std::move(pkt))) ++dstats_.rx_forwarded;
      } else {
        ++dstats_.rx_dropped_inactive;
      }
    }
    return;
  }
  if (crashed()) return;  // interrupts fall on deaf ears
  auto& draining = draining_[static_cast<std::size_t>(queue)];
  if (draining) return;
  const std::size_t depth = nic_.rx_depth(queue);
  if (depth == 0) return;
  // One job per burst: the frames visible at doorbell time (capped at
  // kRxBurst) are drained together, charged the summed per-frame cost so
  // virtual-time accounting is identical to one-job-per-frame. Frames
  // arriving during the drain ring the (re-armed) doorbell again.
  const std::size_t budget = depth < kRxBurst ? depth : kRxBurst;
  draining = true;
  post(costs_.drv_rx * static_cast<sim::Cycles>(budget),
       [this, queue, budget] { drain_burst(queue, budget); });
}

void NicDriver::drain_burst(int queue, std::size_t budget) {
  draining_[static_cast<std::size_t>(queue)] = false;
  std::size_t drained = 0;
  for (; drained < budget; ++drained) {
    net::PacketPtr pkt = nic_.poll_rx(queue);
    if (!pkt) break;

    // ARP is not flow-steered: fan it out to every active replica so each
    // isolated ARP resolver can learn/answer independently.
    const auto b = pkt->bytes();
    const bool is_arp =
        b.size() >= net::EthernetHeader::kSize &&
        net::get_u16(b, 12) ==
            static_cast<std::uint16_t>(net::EtherType::kArp);

    if (is_arp) {
      for (auto& ep : endpoints_) {
        if (ep.active && ep.channel != nullptr) {
          if (ep.channel->send(pkt->clone())) ++dstats_.rx_forwarded;
        }
      }
    } else {
      auto& ep = endpoints_[static_cast<std::size_t>(queue)];
      if (!ep.active || ep.channel == nullptr) {
        ++dstats_.rx_dropped_inactive;
      } else if (ep.channel->send(std::move(pkt))) {
        ++dstats_.rx_forwarded;
      } else {
        ++dstats_.rx_dropped_channel_full;
      }
    }
  }
  if (drained > 0) {
    if (rx_batch_size_ == nullptr) {
      rx_batch_size_ = &sim().metrics().histogram("nic.rx_batch_size");
    }
    rx_batch_size_->record(drained);
  }

  // Keep the chain going while the ring has more.
  if (nic_.rx_depth(queue) > 0) rx_kick(queue);
}

void NicDriver::on_restart() {
  ++dstats_.restarts;
  // Fresh driver instance: forget in-progress drains, then rescan all
  // rings — the NIC kept receiving while we were down (bounded by ring
  // depth; the excess was dropped by the hardware, as on a real machine).
  for (auto& d : draining_) d = 0;
  for (int q = 0; q < nic_.params().num_queues; ++q) rx_kick(q);
}

}  // namespace neat::drv
