// The Linux-baseline host: a monolithic, shared-everything network stack.
//
// This models how the paper's comparison system behaves, with the
// mechanisms that matter for scalability *of implementation*:
//   * one shared TCP state machine for the whole machine — protected by
//     locks (accept queue, connection hash, timers) whose cost grows with
//     contention and with cross-core cache-line movement;
//   * syscall-based sockets: every send/recv/accept pays a mode switch and
//     runs kernel code on the calling core;
//   * RX processing in per-core softirq contexts, steered by the NIC's RSS
//     and the configured IRQ affinities;
//   * the tuning knobs of Table 1 (scheduler, TSO, IRQ affinity, RX queue
//     affinity, server pinning, RFS), which change locality/migration
//     behaviour exactly as the paper's breakdown describes.
//
// The same applications (SocketApi) run here and on NEaT.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ipc/channel.hpp"
#include "ipc/doorbell.hpp"
#include "neat/replica.hpp"  // IpLayer
#include "net/tcp.hpp"
#include "nic/nic.hpp"
#include "sim/machine.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "socklib/socket_api.hpp"

namespace neat::baseline {

/// Table 1 knobs.
struct LinuxTuning {
  bool deadline_sched{false};  ///< "sched": deadline scheduler policy
  bool tso{false};             ///< "eth": auto-negotiation off + TSO on
  bool irq_affinity{false};    ///< "irqAff": spread IRQs across cores
  bool rx_affinity{false};     ///< "rxAff": pin receive queues explicitly
  bool pin_servers{false};     ///< "serv": pin server processes to cores
  bool rfs{false};             ///< receive flow steering (no benefit, §6.1)

  [[nodiscard]] static LinuxTuning defaults() { return {}; }
  [[nodiscard]] static LinuxTuning best() {
    return {true, true, true, true, true, false};
  }
};

struct LinuxCosts {
  // Kernel path costs (cycles).
  sim::Cycles softirq_rx{2100};      ///< NIC irq + driver + IP + TCP receive
  sim::Cycles kernel_tx{1600};       ///< TCP/IP output + driver, caller core
  sim::Cycles syscall_mode{600};     ///< user<->kernel mode switch pair
  sim::Cycles sys_read{700};
  sim::Cycles sys_write{900};
  sim::Cycles sys_accept{2000};
  sim::Cycles sys_connect{8000};
  sim::Cycles sys_close{2400};
  sim::Cycles epoll_wake{1000};      ///< waking a blocked server process
  sim::Cycles per_16_bytes{6};

  // Shared-state costs.
  sim::Cycles lock_uncontended{60};
  sim::Cycles cacheline_transfer{280};  ///< lock/data bouncing between cores
  int shared_lines_per_packet{4};       ///< contended lines touched per pkt
  sim::Cycles migration{18000};         ///< scheduler migration of a process
  double migration_rate_hz{120.0};      ///< per unpinned process
  sim::Cycles locality_miss{800};  ///< per request when rx core != app core
  /// Per-request cost of an unpinned server: every migration rebuilds the
  /// cache/TLB working set and the socket structures keep chasing the
  /// process around (the paper's "serv" knob is worth ~20%).
  sim::Cycles unpinned_penalty{24000};
  /// Manually pinned RX queues *without* server pinning make it worse —
  /// the paper observed this regression directly (§6.1).
  sim::Cycles rxaff_mismatch{1800};
  /// Quadratic shared-state contention: cycles per request charged as
  /// quad * (cores-1)^2 — the "non-scalable locks" collapse that makes the
  /// same kernel relatively slower on the 12-core AMD than the 8-core Xeon.
  sim::Cycles contention_quad{373};
  sim::Cycles no_tso_per_mtu{600};      ///< extra per-MTU cost when TSO off
  sim::Cycles sched_noise{350};         ///< per request, non-deadline sched
};

/// A contended kernel lock: callers are charged queueing delay + cache-line
/// transfer when the previous holder ran on a different core.
class KernelLock {
 public:
  /// Returns extra cycles to charge for this acquisition.
  sim::Cycles acquire(sim::SimTime now, int core, sim::Cycles hold,
                      sim::Frequency freq, const LinuxCosts& costs);

  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t contended() const { return contended_; }

 private:
  sim::SimTime busy_until_{0};
  int last_core_{-1};
  std::uint64_t acquisitions_{0};
  std::uint64_t contended_{0};
};

class LinuxHost;

/// Per-core softirq context (ksoftirqd / NET_RX).
class SoftirqProcess final : public sim::Process {
 public:
  SoftirqProcess(sim::Simulator& sim, LinuxHost& host, int index);

  void kick(int queue);

 private:
  void drain_one(int queue);

  LinuxHost& host_;
  std::vector<std::uint8_t> draining_;
};

class LinuxSockets;

class LinuxHost : public net::TcpEnv {
 public:
  struct Config {
    LinuxTuning tuning{};
    LinuxCosts costs{};
    net::TcpConfig tcp{};
  };

  LinuxHost(sim::Simulator& sim, sim::Machine& machine, nic::Nic& nic,
            Config config);
  ~LinuxHost();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Machine& machine() { return machine_; }
  [[nodiscard]] nic::Nic& nic() { return nic_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] net::TcpStack& tcp() { return tcp_; }
  [[nodiscard]] net::Ipv4Addr ip() const { return nic_.ip(); }
  [[nodiscard]] IpLayer& ip_layer() { return ip_; }

  /// Register an application process (a lighttpd). Returns its index.
  /// When tuning.pin_servers is false the process is subject to scheduler
  /// migrations across the machine's threads.
  int register_app(sim::Process& app, sim::HwThread& initial);

  // TcpEnv (the shared kernel stack's environment).
  sim::SimTime now() override { return sim_.now(); }
  sim::EventHandle start_timer(sim::SimTime delay,
                               std::function<void()> fn) override;
  void tx(net::PacketPtr segment, net::Ipv4Addr src,
          net::Ipv4Addr dst) override;
  std::uint32_t random_u32() override {
    return static_cast<std::uint32_t>(rng_());
  }
  obs::Hub* obs_hub() override { return &sim_.obs(); }

  /// Charge shared-state costs for one kernel operation on `core`:
  /// uncontended lock cost + contention + cache-line transfers.
  [[nodiscard]] sim::Cycles shared_state_cost(int core, int lines);

  /// The kernel context currently executing stack code (for attributing
  /// TX work spawned inside TCP processing).
  void set_current(sim::Process* p) { current_ = p; }
  [[nodiscard]] sim::Process* current() const { return current_; }

  [[nodiscard]] int softirq_count() const {
    return static_cast<int>(softirqs_.size());
  }
  [[nodiscard]] sim::Process& softirq(int i) { return *softirqs_.at(i); }

  [[nodiscard]] KernelLock& accept_lock() { return accept_lock_; }
  [[nodiscard]] KernelLock& conn_lock() { return conn_lock_; }
  [[nodiscard]] KernelLock& timer_lock() { return timer_lock_; }

  /// Per-request locality penalty (rx softirq core != app core), depends
  /// on tuning.
  [[nodiscard]] sim::Cycles locality_penalty() const;

  /// Cost of a syscall of base cost `base` touching `lines` shared lines.
  [[nodiscard]] sim::Cycles syscall_cost(sim::Cycles base, int core,
                                         int lines);

 private:
  friend class SoftirqProcess;
  friend class LinuxSockets;

  void handle_frame_in_softirq(SoftirqProcess& ctx, net::PacketPtr frame);
  void migration_tick();

  sim::Simulator& sim_;
  sim::Machine& machine_;
  nic::Nic& nic_;
  Config config_;
  sim::Rng rng_;
  IpLayer ip_;
  net::TcpStack tcp_;
  std::vector<std::unique_ptr<SoftirqProcess>> softirqs_;
  std::vector<int> queue_to_softirq_;
  KernelLock accept_lock_;
  KernelLock conn_lock_;
  KernelLock timer_lock_;
  sim::Process* current_{nullptr};

  struct AppEntry {
    sim::Process* proc;
  };
  std::vector<AppEntry> apps_;
  sim::EventHandle migration_timer_;
};

/// SocketApi implementation over the shared kernel stack.
class LinuxSockets final : public socklib::SocketApi {
 public:
  LinuxSockets(sim::Process& app, LinuxHost& host, int app_core_hint);

  socklib::Fd listen(std::uint16_t port, std::size_t backlog,
                     std::function<void()> on_acceptable) override;
  socklib::Fd accept(socklib::Fd listen_fd,
                     socklib::ConnCallbacks cb) override;
  socklib::Fd connect(net::SockAddr remote,
                      socklib::ConnCallbacks cb) override;
  std::size_t send(socklib::Fd fd,
                   std::span<const std::uint8_t> data) override;
  std::size_t recv(socklib::Fd fd, std::span<std::uint8_t> dst) override;
  [[nodiscard]] std::size_t readable(socklib::Fd fd) const override;
  [[nodiscard]] bool eof(socklib::Fd fd) const override;
  void close(socklib::Fd fd) override;

 private:
  struct LinuxSocket;

  [[nodiscard]] int core() const;
  void charge(sim::Cycles base, int lines);
  socklib::Fd wire(net::TcpSocketPtr tcp, socklib::ConnCallbacks cb,
                   bool notify_connect);

  sim::Process& app_;
  LinuxHost& host_;
  socklib::Fd next_fd_{3};
  struct ListenEntry {
    std::uint16_t port;
    std::shared_ptr<ipc::Doorbell> bell;
  };
  std::unordered_map<socklib::Fd, ListenEntry> listeners_;
  std::unordered_map<socklib::Fd, std::shared_ptr<LinuxSocket>> conns_;
};

}  // namespace neat::baseline
