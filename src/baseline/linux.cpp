#include "baseline/linux.hpp"

#include <algorithm>
#include <cassert>

namespace neat::baseline {

// ---------------------------------------------------------------------------
// KernelLock
// ---------------------------------------------------------------------------

sim::Cycles KernelLock::acquire(sim::SimTime now, int core, sim::Cycles hold,
                                sim::Frequency freq,
                                const LinuxCosts& costs) {
  ++acquisitions_;
  sim::Cycles extra = costs.lock_uncontended;
  if (busy_until_ > now) {
    ++contended_;
    extra += freq.cycles_in(busy_until_ - now);  // spin while queued
  }
  const sim::SimTime start = std::max(now, busy_until_);
  busy_until_ = start + freq.duration(hold);
  if (last_core_ != core && last_core_ != -1) {
    extra += costs.cacheline_transfer;  // lock line moves between caches
  }
  last_core_ = core;
  return extra;
}

// ---------------------------------------------------------------------------
// SoftirqProcess
// ---------------------------------------------------------------------------

SoftirqProcess::SoftirqProcess(sim::Simulator& sim, LinuxHost& host,
                               int index)
    : sim::Process(sim, "softirq" + std::to_string(index)),
      host_(host),
      draining_(static_cast<std::size_t>(host.nic().params().num_queues),
                0) {}

void SoftirqProcess::kick(int queue) {
  auto& draining = draining_[static_cast<std::size_t>(queue)];
  if (draining) return;
  if (host_.nic().rx_depth(queue) == 0) return;
  draining = 1;
  const int core = thread() != nullptr ? thread()->core_id() : 0;
  const sim::Cycles cost =
      host_.config().costs.softirq_rx +
      host_.shared_state_cost(core,
                              host_.config().costs.shared_lines_per_packet);
  post(cost, [this, queue] { drain_one(queue); });
}

void SoftirqProcess::drain_one(int queue) {
  draining_[static_cast<std::size_t>(queue)] = 0;
  net::PacketPtr pkt = host_.nic().poll_rx(queue);
  if (pkt) host_.handle_frame_in_softirq(*this, std::move(pkt));
  if (host_.nic().rx_depth(queue) > 0) {
    draining_[static_cast<std::size_t>(queue)] = 1;
    const int core = thread() != nullptr ? thread()->core_id() : 0;
    const sim::Cycles cost =
        host_.config().costs.softirq_rx +
        host_.shared_state_cost(core,
                                host_.config().costs.shared_lines_per_packet);
    post(cost, [this, queue] { drain_one(queue); });
  }
}

// ---------------------------------------------------------------------------
// LinuxHost
// ---------------------------------------------------------------------------

LinuxHost::LinuxHost(sim::Simulator& sim, sim::Machine& machine,
                     nic::Nic& nic, Config config)
    : sim_(sim),
      machine_(machine),
      nic_(nic),
      config_(config),
      rng_(sim.rng().split(0x11u)),
      ip_(nic.mac(), nic.ip(),
          [this](net::PacketPtr f) { nic_.transmit(std::move(f)); }),
      tcp_(*this, nic.ip(), [&] {
        net::TcpConfig c = config.tcp;
        c.tso = config.tuning.tso;
        return c;
      }()) {
  const int cores = machine.cores();
  softirqs_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    auto p = std::make_unique<SoftirqProcess>(sim, *this, c);
    p->pin(machine.thread(c, 0));
    p->set_can_poll(false);  // shares the core with the app scheduled there
    softirqs_.push_back(std::move(p));
  }

  // IRQ affinity: tuned = queue i -> core i; default = everything lands on
  // core 0 plus whatever irqbalance happens to spread (we model the
  // pre-tuning state as a lopsided spread over the first half of cores).
  const int queues = nic.params().num_queues;
  queue_to_softirq_.resize(static_cast<std::size_t>(queues));
  for (int q = 0; q < queues; ++q) {
    if (config_.tuning.irq_affinity) {
      queue_to_softirq_[static_cast<std::size_t>(q)] = q % cores;
    } else {
      queue_to_softirq_[static_cast<std::size_t>(q)] =
          (q % 2 == 0) ? 0 : (q / 2) % std::max(1, cores / 2);
    }
  }

  nic_.set_active_queues([&] {
    std::vector<int> qs;
    for (int q = 0; q < queues; ++q) qs.push_back(q);
    return qs;
  }());
  nic_.set_rx_notify([this](int queue) {
    softirqs_[static_cast<std::size_t>(
                  queue_to_softirq_[static_cast<std::size_t>(queue)])]
        ->kick(queue);
  });

  migration_timer_ = sim_.schedule(sim::kMillisecond, [this] {
    migration_tick();
  });
}

LinuxHost::~LinuxHost() { migration_timer_.cancel(); }

int LinuxHost::register_app(sim::Process& app, sim::HwThread& initial) {
  app.pin(initial);
  app.set_can_poll(false);  // Linux processes block in epoll_wait
  apps_.push_back(AppEntry{&app});
  return static_cast<int>(apps_.size()) - 1;
}

void LinuxHost::migration_tick() {
  // CFS moves unpinned processes between cores for balance; every move
  // costs cycles and destroys cache locality for a while. The balancer
  // targets lightly loaded threads (it is not random scatter), so steady
  // state stays roughly balanced — the damage is churn, not imbalance.
  if (!config_.tuning.pin_servers && !apps_.empty()) {
    const double per_tick =
        config_.costs.migration_rate_hz / 1000.0;  // ticks are 1 ms
    // Current occupancy per hardware thread.
    const int threads = machine_.cores() * machine_.threads_per_core();
    std::vector<int> load(static_cast<std::size_t>(threads), 0);
    auto slot_of = [&](const sim::Process* p) {
      return p->thread()->core_id() * machine_.threads_per_core() +
             p->thread()->thread_id();
    };
    for (const auto& a : apps_) ++load[static_cast<std::size_t>(slot_of(a.proc))];
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      auto& a = apps_[i];
      if (rng_.uniform() >= per_tick) continue;
      // Balance-preserving churn: either move to a strictly less loaded
      // thread, or swap places with another process (both happen in CFS
      // wakeup/idle balancing). Either way the mover(s) pay the migration
      // cost and lose cache locality for a while.
      const auto s1 = rng_.below(static_cast<std::uint64_t>(threads));
      const auto s2 = rng_.below(static_cast<std::uint64_t>(threads));
      const auto dst = load[s1] <= load[s2] ? s1 : s2;
      const auto src = static_cast<std::size_t>(slot_of(a.proc));
      if (dst != src && load[dst] < load[src]) {
        --load[src];
        ++load[dst];
        const int c = static_cast<int>(dst) / machine_.threads_per_core();
        const int t = static_cast<int>(dst) % machine_.threads_per_core();
        a.proc->pin(machine_.thread(c, t));
        a.proc->post(config_.costs.migration, [] {});
        continue;
      }
      const std::size_t j = rng_.below(apps_.size());
      if (j == i) continue;
      auto& b = apps_[j];
      sim::HwThread* ta = a.proc->thread();
      sim::HwThread* tb = b.proc->thread();
      if (ta == tb) continue;
      a.proc->pin(*tb);
      b.proc->pin(*ta);
      a.proc->post(config_.costs.migration, [] {});
      b.proc->post(config_.costs.migration, [] {});
    }
  }
  migration_timer_ = sim_.schedule(sim::kMillisecond, [this] {
    migration_tick();
  });
}

sim::Cycles LinuxHost::shared_state_cost(int core, int lines) {
  // Each contended line behaves like a tiny lock: serialized updates whose
  // cache line bounces between writing cores. The conn/timer locks model
  // the two hottest ones; remaining lines cost a transfer each.
  sim::Cycles extra = 0;
  const auto& freq = machine_.params().freq;
  extra += conn_lock_.acquire(sim_.now(), core, 60, freq, config_.costs);
  if (lines > 1) {
    extra += timer_lock_.acquire(sim_.now(), core, 40, freq, config_.costs);
  }
  for (int i = 2; i < lines; ++i) {
    extra += config_.costs.cacheline_transfer;
  }
  if (!config_.tuning.deadline_sched) extra += config_.costs.sched_noise;
  return extra;
}

sim::Cycles LinuxHost::locality_penalty() const {
  // With RSS spreading flows over queues, the softirq that processed a
  // packet usually ran on a different core than the server reading the
  // socket; the socket structures cross caches. Good affinity settings
  // shrink the penalty; rxAff without serv pinning *grows* it (the paper
  // observed exactly that regression). RFS brings nothing once everything
  // is pinned, matching the paper.
  const auto& t = config_.tuning;
  const auto& c = config_.costs;
  sim::Cycles p = c.locality_miss;
  if (!t.pin_servers) {
    p += c.unpinned_penalty;
    if (t.rx_affinity) p += c.rxaff_mismatch;
  } else if (t.rx_affinity) {
    p = c.locality_miss / 2;
  }
  return p;
}

sim::Cycles LinuxHost::syscall_cost(sim::Cycles base, int core, int lines) {
  return config_.costs.syscall_mode + base + shared_state_cost(core, lines);
}

sim::EventHandle LinuxHost::start_timer(sim::SimTime delay,
                                        std::function<void()> fn) {
  // Kernel timers fire in softirq context (timer wheel on CPU 0).
  return softirqs_[0]->after(delay, 800, std::move(fn));
}

void LinuxHost::tx(net::PacketPtr segment, net::Ipv4Addr src,
                   net::Ipv4Addr dst) {
  // Transmit work executes in whatever kernel context triggered it.
  sim::Process* ctx = current_ != nullptr ? current_ : softirqs_[0].get();
  const int core = ctx->thread() != nullptr ? ctx->thread()->core_id() : 0;
  sim::Cycles cost = config_.costs.kernel_tx +
                     config_.costs.per_16_bytes * (segment->size() / 16) +
                     shared_state_cost(core, 2);
  if (!config_.tuning.tso && segment->size() > net::kEthernetMtu) {
    cost += config_.costs.no_tso_per_mtu *
            (segment->size() / net::kEthernetMtu);
  }
  ctx->post(cost, [this, segment = std::move(segment), src, dst]() mutable {
    if (dst == ip()) {
      tcp_.rx(src, dst, std::move(segment));
      return;
    }
    ip_.send(std::move(segment), net::IpProto::kTcp, src, dst);
  });
}

void LinuxHost::handle_frame_in_softirq(SoftirqProcess& ctx,
                                        net::PacketPtr frame) {
  set_current(&ctx);
  auto decoded = ip_.rx_frame(frame);
  if (decoded) {
    if (decoded->hdr.proto == net::IpProto::kTcp) {
      tcp_.rx(decoded->hdr.src, decoded->hdr.dst,
              std::move(decoded->payload));
    }
    // (UDP/ICMP omitted in the baseline: the evaluation is TCP-only.)
  }
  set_current(nullptr);
}

// ---------------------------------------------------------------------------
// LinuxSockets
// ---------------------------------------------------------------------------

/// Kernel socket glue: TCP callbacks run in softirq context and wake the
/// app through its epoll doorbell.
struct LinuxSockets::LinuxSocket
    : public std::enable_shared_from_this<LinuxSockets::LinuxSocket> {
  LinuxSocket(sim::Process& app, LinuxHost& host, net::TcpSocketPtr t)
      : tcp(std::move(t)),
        bell(app, host.config().costs.epoll_wake, [] {}) {}

  void init(socklib::ConnCallbacks callbacks, socklib::Fd fd,
            bool notify_connect) {
    cb = std::move(callbacks);
    this_fd = fd;
    std::weak_ptr<LinuxSocket> wp = weak_from_this();
    bell.set_handler([wp] {
      if (auto s = wp.lock()) s->dispatch();
    });
    net::TcpSocket::Callbacks tcb;
    if (notify_connect) {
      tcb.on_established = [wp] {
        if (auto s = wp.lock()) s->raise(1);
      };
    }
    tcb.on_readable = [wp] {
      if (auto s = wp.lock()) s->raise(2);
    };
    tcb.on_writable = [wp] {
      if (auto s = wp.lock()) s->raise(4);
    };
    tcb.on_closed = [wp](net::TcpCloseReason r) {
      auto s = wp.lock();
      if (!s) return;
      s->reason = r;
      s->raise(8);
    };
    tcp->set_callbacks(std::move(tcb));
    // Data (or a close) may have raced ahead of accept(): deliver the edge
    // that fired before callbacks were installed.
    if (tcp->readable() > 0 || tcp->eof()) raise(2);
    if (tcp->state() == net::TcpState::kClosed) raise(8);
  }

  void raise(std::uint32_t bits) {
    pending |= bits;
    bell.ring();
  }

  void dispatch() {
    const std::uint32_t ev = pending;
    pending = 0;
    if ((ev & 1) && cb.on_connected) cb.on_connected(this_fd);
    if ((ev & 2) && cb.on_readable) cb.on_readable(this_fd);
    if ((ev & 4) && cb.on_writable) cb.on_writable(this_fd);
    if ((ev & 8) && cb.on_closed && !closed_delivered) {
      closed_delivered = true;
      cb.on_closed(this_fd, [this] {
        switch (reason) {
          case net::TcpCloseReason::kNormal:
            return socklib::CloseReason::kNormal;
          case net::TcpCloseReason::kReset:
            return socklib::CloseReason::kReset;
          case net::TcpCloseReason::kTimeout:
            return socklib::CloseReason::kTimeout;
          case net::TcpCloseReason::kRefused:
            return socklib::CloseReason::kRefused;
          case net::TcpCloseReason::kStackFailure:
            return socklib::CloseReason::kStackFailure;
        }
        return socklib::CloseReason::kNormal;
      }());
    }
  }

  net::TcpSocketPtr tcp;
  ipc::Doorbell bell;
  socklib::ConnCallbacks cb;
  socklib::Fd this_fd{socklib::kBadFd};
  std::uint32_t pending{0};
  net::TcpCloseReason reason{net::TcpCloseReason::kNormal};
  bool closed_delivered{false};
};

LinuxSockets::LinuxSockets(sim::Process& app, LinuxHost& host,
                           int /*app_core_hint*/)
    : app_(app), host_(host) {}

int LinuxSockets::core() const {
  return app_.thread() != nullptr ? app_.thread()->core_id() : 0;
}

void LinuxSockets::charge(sim::Cycles base, int lines) {
  app_.post(host_.syscall_cost(base, core(), lines), [] {});
}

socklib::Fd LinuxSockets::listen(std::uint16_t port, std::size_t backlog,
                                 std::function<void()> on_acceptable) {
  charge(host_.config().costs.sys_accept, 2);  // socket+bind+listen
  net::TcpListener* l = host_.tcp().listen(port, backlog);
  if (l == nullptr) return socklib::kBadFd;
  const socklib::Fd fd = next_fd_++;
  auto bell = std::make_shared<ipc::Doorbell>(
      app_, host_.config().costs.epoll_wake, std::move(on_acceptable));
  l->set_accept_ready([bell] { bell->ring(); });
  listeners_.emplace(fd, ListenEntry{port, bell});
  return fd;
}

socklib::Fd LinuxSockets::accept(socklib::Fd listen_fd,
                                 socklib::ConnCallbacks cb) {
  auto it = listeners_.find(listen_fd);
  if (it == listeners_.end()) return socklib::kBadFd;
  net::TcpListener* l = host_.tcp().listener(it->second.port);
  if (l == nullptr) return socklib::kBadFd;
  // Accepting takes the listener lock — the contended path recent Linux
  // work (MegaPipe, affinity-accept) attacks; NEaT sidesteps it entirely.
  const sim::Cycles lock_extra = host_.accept_lock().acquire(
      host_.simulator().now(), core(), 150, host_.machine().params().freq,
      host_.config().costs);
  net::TcpSocketPtr tcp = l->accept();
  charge(host_.config().costs.sys_accept + lock_extra, 2);
  if (!tcp) return socklib::kBadFd;
  return wire(std::move(tcp), std::move(cb), false);
}

socklib::Fd LinuxSockets::connect(net::SockAddr remote,
                                  socklib::ConnCallbacks cb) {
  charge(host_.config().costs.sys_connect, 3);
  host_.set_current(&app_);
  net::TcpSocketPtr tcp = host_.tcp().connect(remote);
  host_.set_current(nullptr);
  if (!tcp) return socklib::kBadFd;
  return wire(std::move(tcp), std::move(cb), true);
}

socklib::Fd LinuxSockets::wire(net::TcpSocketPtr tcp,
                               socklib::ConnCallbacks cb,
                               bool notify_connect) {
  const socklib::Fd fd = next_fd_++;
  auto sock = std::make_shared<LinuxSocket>(app_, host_, std::move(tcp));
  sock->init(std::move(cb), fd, notify_connect);
  conns_.emplace(fd, std::move(sock));
  return fd;
}

std::size_t LinuxSockets::send(socklib::Fd fd,
                               std::span<const std::uint8_t> data) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return 0;
  // The write path carries the per-request shared-state contention bill:
  // every response touches globally shared kernel structures whose cache
  // lines bounce between all active cores (quadratic collapse — see
  // "Non-scalable locks are dangerous" [16]).
  const auto nc = static_cast<sim::Cycles>(host_.machine().cores() - 1);
  const sim::Cycles contention =
      host_.config().costs.contention_quad * nc * nc;
  charge(host_.config().costs.sys_write + contention +
             host_.config().costs.per_16_bytes * (data.size() / 16) +
             host_.locality_penalty(),
         2);
  host_.set_current(&app_);
  const std::size_t n = it->second->tcp->send(data);
  host_.set_current(nullptr);
  return n;
}

std::size_t LinuxSockets::recv(socklib::Fd fd, std::span<std::uint8_t> dst) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return 0;
  charge(host_.config().costs.sys_read +
             host_.config().costs.per_16_bytes * (dst.size() / 16),
         1);
  host_.set_current(&app_);
  const std::size_t n = it->second->tcp->recv(dst);
  host_.set_current(nullptr);
  return n;
}

std::size_t LinuxSockets::readable(socklib::Fd fd) const {
  auto it = conns_.find(fd);
  return it == conns_.end() ? 0 : it->second->tcp->readable();
}

bool LinuxSockets::eof(socklib::Fd fd) const {
  auto it = conns_.find(fd);
  return it == conns_.end() ? true : it->second->tcp->eof();
}

void LinuxSockets::close(socklib::Fd fd) {
  if (auto it = conns_.find(fd); it != conns_.end()) {
    charge(host_.config().costs.sys_close, 2);
    it->second->cb = {};
    host_.set_current(&app_);
    it->second->tcp->close();
    host_.set_current(nullptr);
    conns_.erase(it);
    return;
  }
  if (auto it = listeners_.find(fd); it != listeners_.end()) {
    host_.tcp().close_listener(it->second.port);
    listeners_.erase(it);
  }
}

}  // namespace neat::baseline
