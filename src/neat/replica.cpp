#include "neat/replica.hpp"

namespace neat {

namespace {

/// Shared TcpEnv::on_flow_established body: with handshake-deferred
/// tracking filters, a passively established flow earns its exact-match
/// steering entry now — installed in driver context, pinned to the
/// replica's queue (where RSS delivered the whole handshake).
void deferred_filter_install(drv::NicDriver* driver, const net::FlowKey& key,
                             int queue) {
  if (driver == nullptr) return;
  const nic::NicParams& p = driver->nic().params();
  if (!p.tracking_filters || !p.defer_syn_filters) return;
  driver->control(
      [driver, key, queue] { driver->nic().add_flow_filter(key, queue); });
}

}  // namespace

const char* to_string(Component c) {
  switch (c) {
    case Component::kIp: return "ip";
    case Component::kTcp: return "tcp";
    case Component::kUdp: return "udp";
    case Component::kFilter: return "pf";
    case Component::kWhole: return "stack";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// IpLayer
// ---------------------------------------------------------------------------

IpLayer::IpLayer(net::MacAddr mac, net::Ipv4Addr ip, FrameTx tx_frame)
    : mac_(mac),
      ip_(ip),
      tx_frame_(std::move(tx_frame)),
      arp_(mac, ip, [this](const net::ArpMessage& m, net::MacAddr dst) {
        auto pkt = m.encode();
        net::EthernetHeader eth;
        eth.src = mac_;
        eth.dst = dst;
        eth.type = net::EtherType::kArp;
        eth.encode(*pkt);
        tx_frame_(std::move(pkt));
      }) {}

void IpLayer::send(net::PacketPtr payload, net::IpProto proto,
                   net::Ipv4Addr src, net::Ipv4Addr dst) {
  net::Ipv4Header hdr;
  hdr.src = src;
  hdr.dst = dst;
  hdr.proto = proto;
  hdr.ident = ident_++;
  // TSO super-segments bypass the MTU check: the NIC slices them.
  const bool needs_frag =
      !payload->tso &&
      payload->size() + net::Ipv4Header::kSize > net::kEthernetMtu;

  auto emit = [this](net::PacketPtr ip_pkt, net::MacAddr dst_mac) {
    net::EthernetHeader eth;
    eth.src = mac_;
    eth.dst = dst_mac;
    eth.type = net::EtherType::kIpv4;
    eth.encode(*ip_pkt);
    tx_frame_(std::move(ip_pkt));
  };

  arp_.resolve(dst, [this, hdr, needs_frag, payload = std::move(payload),
                     emit](net::MacAddr mac) mutable {
    if (needs_frag) {
      for (auto& frag : net::ipv4_fragment(hdr, *payload, net::kEthernetMtu)) {
        emit(std::move(frag), mac);
      }
    } else {
      const bool tso = payload->tso;
      hdr.encode(*payload);
      payload->tso = tso;
      emit(std::move(payload), mac);
    }
  });
}

std::optional<IpLayer::Decoded> IpLayer::rx_frame(
    const net::PacketPtr& frame) {
  auto eth = net::EthernetHeader::decode(*frame);
  if (!eth) return std::nullopt;
  if (eth->type == net::EtherType::kArp) {
    if (auto msg = net::ArpMessage::decode(*frame)) arp_.handle(*msg);
    return std::nullopt;
  }
  auto hdr = net::Ipv4Header::decode(*frame);
  if (!hdr) return std::nullopt;
  if (hdr->dst != ip_) return std::nullopt;  // not ours
  auto complete = reasm_.add(*hdr, frame);
  if (!complete) return std::nullopt;
  return Decoded{complete->header, complete->payload};
}

void IpLayer::reset() {
  arp_ = net::ArpResolver(
      mac_, ip_, [this](const net::ArpMessage& m, net::MacAddr dst) {
        auto pkt = m.encode();
        net::EthernetHeader eth;
        eth.src = mac_;
        eth.dst = dst;
        eth.type = net::EtherType::kArp;
        eth.encode(*pkt);
        tx_frame_(std::move(pkt));
      });
  reasm_.expire_all();
  ident_ = 1;
}

// ---------------------------------------------------------------------------
// SingleComponentReplica
// ---------------------------------------------------------------------------

SingleComponentReplica::SingleComponentReplica(
    sim::Simulator& sim, int id, int queue, drv::NicDriver& driver,
    net::MacAddr mac, net::Ipv4Addr ip, StackCosts costs,
    net::TcpConfig tcp_cfg, obs::Hub* hub)
    : sim::Process(sim, "neat" + std::to_string(id)),
      StackReplica(id, queue,
                   sim.rng().split(0xa5172 + static_cast<std::uint64_t>(id))()),
      costs_(costs),
      rng_(sim.rng().split(0x5e9 + static_cast<std::uint64_t>(id))),
      hub_(hub),
      driver_(&driver),
      tx_port_(driver.make_tx_port()),
      rx_ch_(
          *this, 2048, ipc::kDefaultChannelLatency,
          [this](const net::PacketPtr& p) {
            return costs_.single_rx_base + costs_.bytes_cost(p->size());
          },
          [this](net::PacketPtr&& p) { handle_frame(std::move(p)); }),
      ip_(mac, ip, [this](net::PacketPtr f) { tx_port_(std::move(f)); }),
      tcp_stack_(*this, ip, tcp_cfg) {
  // Burst mode: one channel delivery job hands the whole frame batch over;
  // TCP segments are regrouped and consumed by TcpStack::rx_batch with
  // per-burst (not per-frame) bookkeeping.
  rx_ch_.set_batch_handler(
      [this](std::vector<net::PacketPtr>&& frames) {
        handle_frame_batch(std::move(frames));
      });
}

sim::EventHandle SingleComponentReplica::start_timer(
    sim::SimTime delay, std::function<void()> fn) {
  return after(delay, 600, std::move(fn));
}

void SingleComponentReplica::tx(net::PacketPtr segment, net::Ipv4Addr src,
                                net::Ipv4Addr dst) {
  // Charge segment-construction cost in our own context, then hand to IP.
  const sim::Cycles c =
      costs_.single_tx_base + costs_.bytes_cost(segment->size());
  post(c, [this, segment = std::move(segment), src, dst]() mutable {
    if (dst == ip_.ip()) {
      // Loopback: each replica implements its own loopback device (§3.3).
      handle_ip(net::Ipv4Header{src, dst, net::IpProto::kTcp}, segment);
      return;
    }
    ip_.send(std::move(segment), net::IpProto::kTcp, src, dst);
  });
}

void SingleComponentReplica::handle_frame(net::PacketPtr frame) {
  auto decoded = ip_.rx_frame(frame);
  if (!decoded) return;
  handle_ip(decoded->hdr, decoded->payload);
}

void SingleComponentReplica::handle_frame_batch(
    std::vector<net::PacketPtr>&& frames) {
  // Decode the whole burst, then hand every TCP segment to the stack in one
  // rx_batch call. Non-TCP traffic (UDP/ICMP, a rarity on the data path) is
  // dispatched inline; cross-protocol ordering within one delivery job has
  // no observable effect since virtual time is frozen for the whole burst.
  std::vector<net::TcpStack::SegmentArrival> segs;
  segs.reserve(frames.size());
  for (auto& f : frames) {
    auto decoded = ip_.rx_frame(f);
    if (!decoded) continue;
    if (decoded->hdr.proto == net::IpProto::kTcp) {
      if (!pf_pass(decoded->hdr, *decoded->payload)) continue;
      segs.push_back({decoded->hdr.src, decoded->hdr.dst,
                      std::move(decoded->payload)});
    } else {
      handle_ip(decoded->hdr, std::move(decoded->payload));
    }
  }
  const auto ep = epoch();
  tcp_stack_.rx_batch(std::move(segs), [this, ep] {
    return !crashed() && epoch() == ep;
  });
}

bool SingleComponentReplica::pf_pass(const net::Ipv4Header& hdr,
                                     const net::Packet& payload) const {
  // Packet filter consultation is free when no rules are installed.
  if (pf_.rule_count() == 0) return true;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  const auto b = payload.bytes();
  if ((hdr.proto == net::IpProto::kTcp || hdr.proto == net::IpProto::kUdp) &&
      b.size() >= 4) {
    sport = static_cast<std::uint16_t>(b[0] << 8 | b[1]);
    dport = static_cast<std::uint16_t>(b[2] << 8 | b[3]);
  }
  return pf_.accept(hdr.proto, hdr.src, hdr.dst, sport, dport);
}

void SingleComponentReplica::handle_ip(const net::Ipv4Header& hdr,
                                       net::PacketPtr payload) {
  if (!pf_pass(hdr, *payload)) return;
  switch (hdr.proto) {
    case net::IpProto::kTcp:
      tcp_stack_.rx(hdr.src, hdr.dst, std::move(payload));
      break;
    case net::IpProto::kUdp: {
      auto uh = net::UdpHeader::decode(*payload, hdr.src, hdr.dst);
      if (uh) udp_.deliver(*uh, hdr.src, hdr.dst, std::move(payload));
      break;
    }
    case net::IpProto::kIcmp: {
      auto icmp = net::IcmpMessage::decode(*payload);
      if (icmp && icmp->type == net::IcmpMessage::Type::kEchoRequest) {
        auto reply = net::Packet::of(payload->bytes());
        net::IcmpMessage r = *icmp;
        r.type = net::IcmpMessage::Type::kEchoReply;
        r.encode(*reply);
        ip_.send(std::move(reply), net::IpProto::kIcmp, hdr.dst, hdr.src);
      }
      break;
    }
  }
}

void SingleComponentReplica::udp_tx(net::PacketPtr payload,
                                    std::uint16_t src_port, net::SockAddr to) {
  const sim::Cycles c =
      costs_.udp_per_packet + costs_.bytes_cost(payload->size());
  post(c, [this, payload = std::move(payload), src_port, to]() mutable {
    net::UdpHeader uh;
    uh.src_port = src_port;
    uh.dst_port = to.port;
    uh.encode(*payload, ip_.ip(), to.ip);
    ip_.send(std::move(payload), net::IpProto::kUdp, ip_.ip(), to.ip);
  });
}

void SingleComponentReplica::on_flow_established(const net::FlowKey& key) {
  deferred_filter_install(driver_, key, queue());
}

void SingleComponentReplica::on_crash() {
  // All state dies with the process — silently, as seen from the wire.
  tcp_stack_.destroy_all_state();
  ip_.reset();
  udp_.clear();
}

void SingleComponentReplica::reset_after_restart(Component) {
  tcp_stack_.destroy_all_state();
  ip_.reset();
  udp_.clear();
  pf_.clear();
  rerandomize_layout();  // a fresh process image -> fresh ASLR layout
}

// ---------------------------------------------------------------------------
// Multi-component replica
// ---------------------------------------------------------------------------

TcpComponent::TcpComponent(sim::Simulator& sim, MultiComponentReplica& owner,
                           std::string name, net::Ipv4Addr ip,
                           StackCosts costs, net::TcpConfig cfg)
    : sim::Process(sim, std::move(name)),
      owner_(owner),
      costs_(costs),
      rng_(sim.rng().split(0x7c9 + static_cast<std::uint64_t>(owner.id()))),
      tcp_stack_(*this, ip, cfg) {}

sim::EventHandle TcpComponent::start_timer(sim::SimTime delay,
                                           std::function<void()> fn) {
  return after(delay, 600, std::move(fn));
}

void TcpComponent::tx(net::PacketPtr segment, net::Ipv4Addr src,
                      net::Ipv4Addr dst) {
  const sim::Cycles c = costs_.tcp_tx_base + costs_.bytes_cost(segment->size());
  post(c, [this, segment = std::move(segment), src, dst]() mutable {
    if (dst == tcp_stack_.local_ip()) {
      // Loopback short-circuits inside the TCP component.
      post(costs_.tcp_rx_base + costs_.bytes_cost(segment->size()),
           [this, segment, src, dst]() mutable {
             tcp_stack_.rx(src, dst, std::move(segment));
           });
      return;
    }
    owner_.tcp_to_ip_->send(MultiComponentReplica::TcpToIp{
        std::move(segment), src, dst, net::IpProto::kTcp});
  });
}

void TcpComponent::on_flow_established(const net::FlowKey& key) {
  deferred_filter_install(owner_.driver_, key, owner_.queue());
}

obs::Hub* TcpComponent::obs_hub() {
  obs::Hub* hub = owner_.hub_override();
  return hub != nullptr ? hub : &sim().obs();
}

void TcpComponent::on_crash() { tcp_stack_.destroy_all_state(); }

IpComponent::IpComponent(sim::Simulator& sim, MultiComponentReplica& owner,
                         std::string name, net::MacAddr mac, net::Ipv4Addr ip,
                         StackCosts costs, IpLayer::FrameTx tx_frame)
    : sim::Process(sim, std::move(name)),
      owner_(owner),
      costs_(costs),
      rx_ch_(
          *this, 2048, ipc::kDefaultChannelLatency,
          [this](const net::PacketPtr& p) {
            return costs_.ip_rx_base + costs_.bytes_cost(p->size());
          },
          [this](net::PacketPtr&& p) { handle_frame(std::move(p)); }),
      ip_(mac, ip, std::move(tx_frame)) {}

void IpComponent::handle_frame(net::PacketPtr frame) {
  auto decoded = ip_.rx_frame(frame);
  if (!decoded) return;
  const auto& hdr = decoded->hdr;
  switch (hdr.proto) {
    case net::IpProto::kTcp:
      owner_.ip_to_tcp_->send(MultiComponentReplica::IpToTcp{
          hdr.src, hdr.dst, std::move(decoded->payload)});
      break;
    case net::IpProto::kUdp:
      owner_.ip_to_udp_->send(MultiComponentReplica::IpToTcp{
          hdr.src, hdr.dst, std::move(decoded->payload)});
      break;
    case net::IpProto::kIcmp: {
      auto icmp = net::IcmpMessage::decode(*decoded->payload);
      if (icmp && icmp->type == net::IcmpMessage::Type::kEchoRequest) {
        auto reply = net::Packet::of(decoded->payload->bytes());
        net::IcmpMessage r = *icmp;
        r.type = net::IcmpMessage::Type::kEchoReply;
        r.encode(*reply);
        ip_.send(std::move(reply), net::IpProto::kIcmp, hdr.dst, hdr.src);
      }
      break;
    }
  }
}

void IpComponent::on_crash() { ip_.reset(); }
void IpComponent::on_restart() { ip_.reset(); }

UdpComponent::UdpComponent(sim::Simulator& sim, MultiComponentReplica& owner,
                           std::string name)
    : sim::Process(sim, std::move(name)), owner_(owner) {
  (void)owner_;
}

FilterComponent::FilterComponent(sim::Simulator& sim, std::string name)
    : sim::Process(sim, std::move(name)) {}

MultiComponentReplica::MultiComponentReplica(
    sim::Simulator& sim, int id, int queue, drv::NicDriver& driver,
    net::MacAddr mac, net::Ipv4Addr ip, StackCosts costs,
    net::TcpConfig tcp_cfg, obs::Hub* hub)
    : StackReplica(id, queue,
                   sim.rng().split(0xa5173 + static_cast<std::uint64_t>(id))()),
      costs_(costs),
      hub_(hub),
      driver_(&driver) {
  const std::string base = "multi" + std::to_string(id);
  drv_tx_ = driver.make_tx_port();
  tcp_proc_ = std::make_unique<TcpComponent>(sim, *this, base + ".tcp", ip,
                                             costs, tcp_cfg);
  ip_proc_ = std::make_unique<IpComponent>(
      sim, *this, base + ".ip", mac, ip, costs,
      [tx = drv_tx_](net::PacketPtr f) { tx(std::move(f)); });
  udp_proc_ = std::make_unique<UdpComponent>(sim, *this, base + ".udp");
  pf_proc_ = std::make_unique<FilterComponent>(sim, base + ".pf");

  ip_to_tcp_ = std::make_unique<ipc::Channel<IpToTcp>>(
      *tcp_proc_, 2048, ipc::kDefaultChannelLatency,
      [this](const IpToTcp& m) {
        return costs_.tcp_rx_base + costs_.bytes_cost(m.seg->size());
      },
      [this](IpToTcp&& m) {
        tcp_proc_->stack().rx(m.src, m.dst, std::move(m.seg));
      });
  // Burst mode: the IP→TCP crossing delivers a whole batch per consumer
  // job; the stack consumes it with per-burst bookkeeping. The messages
  // already ARE SegmentArrivals, so the batch moves without repacking.
  ip_to_tcp_->set_batch_handler([this](std::vector<IpToTcp>&& batch) {
    const auto ep = tcp_proc_->epoch();
    tcp_proc_->stack().rx_batch(std::move(batch), [this, ep] {
      return !tcp_proc_->crashed() && tcp_proc_->epoch() == ep;
    });
  });

  ip_to_udp_ = std::make_unique<ipc::Channel<IpToTcp>>(
      *udp_proc_, 512, ipc::kDefaultChannelLatency,
      [this](const IpToTcp& m) {
        return costs_.udp_per_packet + costs_.bytes_cost(m.seg->size());
      },
      [this](IpToTcp&& m) {
        auto uh = net::UdpHeader::decode(*m.seg, m.src, m.dst);
        if (uh) udp_proc_->mux().deliver(*uh, m.src, m.dst, std::move(m.seg));
      });
  // UDP consumes bursts too: one delivery job drains the whole batch.
  ip_to_udp_->set_batch_handler([this](std::vector<IpToTcp>&& batch) {
    const auto ep = udp_proc_->epoch();
    for (auto& m : batch) {
      if (udp_proc_->crashed() || udp_proc_->epoch() != ep) break;
      auto uh = net::UdpHeader::decode(*m.seg, m.src, m.dst);
      if (uh) udp_proc_->mux().deliver(*uh, m.src, m.dst, std::move(m.seg));
    }
  });

  tcp_to_ip_ = std::make_unique<ipc::Channel<TcpToIp>>(
      *ip_proc_, 2048, ipc::kDefaultChannelLatency,
      [this](const TcpToIp& m) {
        return costs_.ip_tx_base + costs_.bytes_cost(m.payload->size());
      },
      [this](TcpToIp&& m) {
        ip_proc_->ip_send(std::move(m.payload), m.proto, m.src, m.dst);
      });
}

void MultiComponentReplica::udp_tx(net::PacketPtr payload,
                                   std::uint16_t src_port, net::SockAddr to) {
  const sim::Cycles c =
      costs_.udp_per_packet + costs_.bytes_cost(payload->size());
  udp_proc_->post(c, [this, payload = std::move(payload), src_port,
                      to]() mutable {
    const net::Ipv4Addr src = ip_proc_->layer().ip();
    net::UdpHeader uh;
    uh.src_port = src_port;
    uh.dst_port = to.port;
    uh.encode(*payload, src, to.ip);
    // Reuses the transport→IP channel; the IP component pays its usual TX
    // cost and encapsulates in its own context.
    tcp_to_ip_->send(TcpToIp{std::move(payload), src, to.ip,
                             net::IpProto::kUdp});
  });
}

std::vector<sim::Process*> MultiComponentReplica::processes() {
  return {tcp_proc_.get(), ip_proc_.get(), udp_proc_.get(), pf_proc_.get()};
}

sim::Process* MultiComponentReplica::component(Component c) {
  switch (c) {
    case Component::kTcp: return tcp_proc_.get();
    case Component::kIp: return ip_proc_.get();
    case Component::kUdp: return udp_proc_.get();
    case Component::kFilter: return pf_proc_.get();
    case Component::kWhole: return tcp_proc_.get();
  }
  return nullptr;
}

void MultiComponentReplica::reset_after_restart(Component which) {
  switch (which) {
    case Component::kTcp:
    case Component::kWhole:
      tcp_proc_->stack().destroy_all_state();
      ip_to_tcp_->rebind(*tcp_proc_);
      rerandomize_layout();
      break;
    case Component::kIp:
      ip_proc_->layer().reset();
      // In-flight messages towards TCP died with the old incarnation.
      ip_to_tcp_->rebind(*tcp_proc_);
      tcp_to_ip_->rebind(*ip_proc_);
      break;
    case Component::kUdp:
      udp_proc_->mux().clear();
      ip_to_udp_->rebind(*udp_proc_);
      break;
    case Component::kFilter:
      pf_proc_->filter().clear();
      break;
  }
}

}  // namespace neat
