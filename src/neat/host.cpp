#include "neat/host.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace neat {

// ---------------------------------------------------------------------------
// SyscallServer
// ---------------------------------------------------------------------------

SyscallServer::SyscallServer(sim::Simulator& sim, StackCosts costs)
    : sim::Process(sim, "syscall"),
      ch_(*this, 4096, ipc::kDefaultChannelLatency, costs.syscall_server,
          [this](std::function<void()>&& op) {
            ++calls_;
            op();
          }) {}

// ---------------------------------------------------------------------------
// NeatHost
// ---------------------------------------------------------------------------

namespace {
/// Placeholder for "all remaining operating system processes" sharing the
/// OS core (paper §6.3). It idles unless someone posts work at it.
class OsProcess final : public sim::Process {
 public:
  explicit OsProcess(sim::Simulator& sim) : sim::Process(sim, "os") {}
};
}  // namespace

NeatHost::NeatHost(sim::Simulator& sim, sim::Machine& machine, nic::Nic& nic,
                   Config config)
    : sim_(sim),
      machine_(machine),
      nic_(nic),
      config_(config),
      driver_(std::make_unique<drv::NicDriver>(sim, nic, config.costs)),
      syscall_(std::make_unique<SyscallServer>(sim, config.costs)),
      os_proc_(std::make_unique<OsProcess>(sim)),
      rng_(sim.rng().split(0x4057)) {
  if (config_.hub != nullptr) nic_.bind_hub(config_.hub);
  if (config_.smartnic_offload) driver_->set_hardware_offload(true);
  supervisor_ = std::make_unique<Supervisor>(*this, config_.supervision);
  supervisor_->watch_driver();
  gc_timer_ = sim_.schedule(config_.gc_period, [this] { gc_tick(); });
}

NeatHost::~NeatHost() { gc_timer_.cancel(); }

StackReplica& NeatHost::add_replica(
    const std::vector<sim::HwThread*>& pins) {
  assert(!pins.empty());
  const int id = static_cast<int>(replicas_.size());
  const int queue = id;  // one NIC queue pair per replica
  std::unique_ptr<StackReplica> rep;
  if (config_.kind == Config::Kind::kSingle) {
    auto r = std::make_unique<SingleComponentReplica>(
        sim_, id, queue, *driver_, nic_.mac(), nic_.ip(), config_.costs,
        config_.tcp, config_.hub);
    r->pin(*pins[0]);
    rep = std::move(r);
  } else {
    auto r = std::make_unique<MultiComponentReplica>(
        sim_, id, queue, *driver_, nic_.mac(), nic_.ip(), config_.costs,
        config_.tcp, config_.hub);
    sim::HwThread* tcp_pin = pins[0];
    sim::HwThread* ip_pin = pins.size() > 1 ? pins[1] : pins[0];
    sim::HwThread* udp_pin = pins.size() > 2 ? pins[2] : ip_pin;
    sim::HwThread* pf_pin = pins.size() > 3 ? pins[3] : ip_pin;
    r->tcp_component().pin(*tcp_pin);
    r->ip_component().pin(*ip_pin);
    r->component(Component::kUdp)->pin(*udp_pin);
    r->component(Component::kFilter)->pin(*pf_pin);
    rep = std::move(r);
  }
  StackReplica& ref = *rep;
  replicas_.push_back(std::move(rep));
  replica_pins_.push_back(pins);
  checkpoints_.resize(replicas_.size());
  if (config_.checkpoint_interval > 0) {
    sim_.schedule(config_.checkpoint_interval,
                  [this, id] { checkpoint_tick(id); });
  }
  driver_->announce_endpoint(queue, &ref.rx_channel());
  sim_.tracer().emit({sim_.now(), 0, "neat", "scale_up", 0, id,
                      "\"queue\":" + std::to_string(queue)});
  update_steering();
  // Subsocket replication: every recorded listener appears on the new
  // replica too, so it immediately shares the accept load.
  replay_listens(ref);
  replay_udp_binds(ref);
  supervisor_->watch_replica(ref);
  note_replica_census();
  return ref;
}

void NeatHost::note_replica_census() {
  auto& m = metrics();
  const double active = static_cast<double>(active_replicas().size());
  const double serving = static_cast<double>(serving_replicas().size());
  // Keyed per host: two hosts sharing one simulator (server + workload
  // client is the common pair) each get their own census series instead
  // of last-writer-wins on a single pair of gauges.
  const std::string prefix = "neat.host" + std::to_string(config_.host_id);
  m.gauge(prefix + ".replicas_active").set(active);
  m.gauge(prefix + ".replicas_serving").set(serving);
  // Host 0 (the system under test, by convention) also feeds the legacy
  // unscoped names that dashboards and scenario samplers read.
  if (config_.host_id == 0) {
    m.gauge("neat.replicas_active").set(active);
    m.gauge("neat.replicas_serving").set(serving);
  }
}

std::vector<StackReplica*> NeatHost::active_replicas() {
  std::vector<StackReplica*> out;
  for (auto& r : replicas_) {
    if (!r->terminating && !r->terminated && !r->quarantined &&
        !r->tcp_process().crashed()) {
      out.push_back(r.get());
    }
  }
  return out;
}

std::vector<StackReplica*> NeatHost::serving_replicas() {
  std::vector<StackReplica*> out;
  for (auto& r : replicas_) {
    if (!r->terminated && !r->quarantined) out.push_back(r.get());
  }
  return out;
}

StackReplica* NeatHost::pick_replica() {
  auto active = active_replicas();
  if (active.empty()) return nullptr;
  return active[rng_.below(active.size())];
}

void NeatHost::record_listen(ListenRecord rec) {
  listen_registry_.push_back(std::move(rec));
}

void NeatHost::remove_listen(std::uint16_t port) {
  std::erase_if(listen_registry_,
                [port](const ListenRecord& r) { return r.port == port; });
  for (auto* r : serving_replicas()) {
    r->tcp_process().post(config_.costs.replica_control, [r, port] {
      r->tcp().close_listener(port);
    });
  }
}

void NeatHost::replay_listens(StackReplica& replica) {
  for (const auto& rec : listen_registry_) {
    replica.tcp_process().post(
        config_.costs.replica_control, [&replica, rec] {
          net::TcpListener* l = replica.tcp().listen(rec.port, rec.backlog);
          if (l == nullptr) l = replica.tcp().listener(rec.port);
          if (l != nullptr && rec.wire) rec.wire(replica, *l);
        });
  }
}

void NeatHost::record_udp_bind(UdpBindRecord rec) {
  udp_bind_registry_.push_back(rec);
  for (auto* r : serving_replicas()) {
    r->component(Component::kUdp)->post(
        config_.costs.replica_control,
        [r, rec] {
          if (rec.wire) rec.wire(*r, r->udp());
        });
  }
}

void NeatHost::remove_udp_bind(std::uint16_t port) {
  std::erase_if(udp_bind_registry_,
                [port](const UdpBindRecord& r) { return r.port == port; });
  for (auto* r : serving_replicas()) {
    r->component(Component::kUdp)->post(
        config_.costs.replica_control,
        [r, port] { r->udp().unbind(port); });
  }
}

void NeatHost::replay_udp_binds(StackReplica& replica) {
  for (const auto& rec : udp_bind_registry_) {
    replica.component(Component::kUdp)->post(
        config_.costs.replica_control, [&replica, rec] {
          if (rec.wire) rec.wire(replica, replica.udp());
        });
  }
}

void NeatHost::update_steering() {
  std::vector<int> queues;
  for (auto* r : active_replicas()) queues.push_back(r->queue());
  if (queues.empty()) return;
  driver_->control([this, queues] { nic_.set_active_queues(queues); });
}

void NeatHost::begin_scale_down(StackReplica& replica) {
  if (replica.terminating || replica.terminated) return;
  // Draining leans entirely on the NIC's per-flow tracking filters: pulling
  // the replica's queue out of the RSS indirection re-shuffles every flow
  // that has no exact-match filter, so without filters the "drain" resets
  // the very connections it was meant to preserve. That is a configuration
  // bug, not a degraded mode — fail loudly.
  if (!nic_.params().tracking_filters &&
      replica.tcp().active_connection_count() > 0) {
    std::fprintf(stderr,
                 "neat: lazy termination requires tracking filters "
                 "(draining replica %d holds %zu connections)\n",
                 replica.id(), replica.tcp().active_connection_count());
    std::abort();
  }
  replica.terminating = true;
  sim_.tracer().emit({sim_.now(), 0, "neat", "scale_down", 0, replica.id(),
                      "\"conns_draining\":" + std::to_string(
                          replica.tcp().active_connection_count())});
  // (ii) new connections bypass it; existing flows keep their path thanks
  // to the NIC's per-flow tracking filters.
  update_steering();
  note_replica_census();
}

void NeatHost::migrate_connections(StackReplica& from, StackReplica& to,
                                   std::function<void(std::size_t)> on_done) {
  assert(&from != &to);
  // The repoint of per-flow exact-match filters IS the migration mechanism
  // on the RX side; without tracking filters the moved flows would hash
  // back to the source's queue and die there.
  if (!nic_.params().tracking_filters) {
    std::fprintf(stderr,
                 "neat: connection migration requires tracking filters\n");
    std::abort();
  }
  NeatHost* self = this;
  StackReplica* src = &from;
  StackReplica* dst = &to;
  sim_.tracer().emit({sim_.now(), 0, "neat", "migrate_begin", 0, from.id(),
                      "\"to\":" + std::to_string(to.id())});
  // 1. Open the NIC capture window (driver/control context). Keys are read
  //    at the same instant the window opens so nothing slips past: every
  //    frame for a moving flow from here on is buffered, not delivered.
  driver_->control([self, src, dst, on_done = std::move(on_done)] {
    auto keys = std::make_shared<std::vector<net::FlowKey>>();
    src->tcp().for_each_connection(
        [&](net::TcpSocket& s) { keys->push_back(s.flow()); });
    self->nic_.begin_flow_capture(*keys);
    const sim::SimTime t0 = self->sim_.now();
    // 2. Freeze + extract in the source's TCP context, charged per conn.
    const sim::Cycles freeze =
        self->config_.costs.migrate_base +
        self->config_.costs.migrate_per_conn *
            static_cast<sim::Cycles>(keys->size());
    src->tcp_process().post(freeze, [self, src, dst, t0, on_done] {
      auto cp = std::make_shared<net::TcpCheckpoint>(
          src->tcp().extract_for_migration());
      // 3. Ship the image over IPC: the adopt cost lands in the target's
      //    TCP context and scales with the serialized bytes.
      const sim::Cycles thaw =
          self->config_.costs.migrate_base +
          self->config_.costs.migrate_per_conn *
              static_cast<sim::Cycles>(cp->conns.size()) +
          self->config_.costs.bytes_cost(cp->bytes());
      dst->tcp_process().post(thaw, [self, src, dst, cp, t0, on_done] {
        auto adopted = std::make_shared<std::vector<net::TcpSocketPtr>>(
            dst->tcp().adopt(*cp));
        // 4. Repoint the filters, then close the window and replay what it
        //    buffered — strictly in this order, and only now: a filter
        //    repointed before adopt would deliver frames to a stack that
        //    does not know the flow yet (instant RST), and a replay before
        //    the repoint would re-deliver to the drained source.
        self->driver_->control([self, src, dst, cp, adopted, t0, on_done] {
          for (const auto& c : cp->conns) {
            self->nic_.add_flow_filter(c.flow, dst->queue());
          }
          self->nic_.end_flow_capture();
          // 5. Socket libraries re-home their fd-attached sockets.
          for (auto* l : self->listeners_) {
            l->on_connections_migrated(*src, *dst, *adopted);
          }
          const sim::SimTime blackout = self->sim_.now() - t0;
          self->metrics()
              .histogram("neat.migration_blackout_ns")
              .record(blackout);
          self->metrics().counter("neat.migrations").inc();
          self->sim_.tracer().emit(
              {self->sim_.now(), 0, "neat", "migrate_done", 0, src->id(),
               "\"to\":" + std::to_string(dst->id()) + ",\"conns\":" +
                   std::to_string(cp->conns.size()) + ",\"blackout_ns\":" +
                   std::to_string(blackout)});
          if (on_done) on_done(cp->conns.size());
        });
      });
    });
  });
}

void NeatHost::retire_queue(int queue) {
  driver_->deactivate_endpoint(queue);
  // Purge tracking filters pinned to the dead queue: a reused 4-tuple
  // would otherwise steer its SYN into a queue nobody drains (a silent
  // connect blackhole). Fall back to RSS over the live replicas instead.
  driver_->control([this, queue] { nic_.remove_filters_for_queue(queue); });
}

void NeatHost::gc_tick() {
  for (auto& r : replicas_) {
    // A drainer that *crashed* is not collected here: its zero connection
    // count is the crash's doing, not a clean drain. The supervisor's
    // watchdog must detect the death and collect it (stamping the recovery
    // log), otherwise the event would vanish unaccounted.
    if (r->terminating && !r->terminated && !r->tcp_process().crashed() &&
        r->tcp().active_connection_count() == 0) {
      // (iii) connection count hit zero: collect the replica. Its cores
      // are now free for applications. Unwatch first — these crashes are
      // deliberate, not failures for the watchdog to recover.
      supervisor_->unwatch_replica(*r);
      r->terminated = true;
      retire_queue(r->queue());
      for (auto* p : r->processes()) p->crash();
      metrics().counter("neat.lazy_terminations").inc();
      note_replica_census();
    }
  }
  gc_timer_ = sim_.schedule(config_.gc_period, [this] { gc_tick(); });
}

void NeatHost::checkpoint_tick(int replica_id) {
  StackReplica& rep = *replicas_[static_cast<std::size_t>(replica_id)];
  if (!rep.terminated) {
    // The checkpoint pass runs inside the TCP process and is charged per
    // connection — this is the run-time overhead stateful recovery costs.
    const auto conns = rep.tcp().connection_count();
    const sim::Cycles cost =
        config_.costs.checkpoint_base +
        config_.costs.checkpoint_per_conn * static_cast<sim::Cycles>(conns);
    rep.tcp_process().post(cost, [this, replica_id, &rep] {
      checkpoints_[static_cast<std::size_t>(replica_id)] =
          rep.tcp().snapshot();
    });
  }
  sim_.schedule(config_.checkpoint_interval,
                [this, replica_id] { checkpoint_tick(replica_id); });
}

void NeatHost::inject_crash(StackReplica& replica, Component component) {
  sim::Process* proc = replica.component(component);
  assert(proc != nullptr);
  if (proc->crashed()) return;

  const bool tcp_loss =
      component == Component::kTcp || component == Component::kWhole ||
      std::string_view(replica.kind()) == "single";
  RecoveryEvent ev;
  ev.at = sim_.now();
  ev.replica_id = replica.id();
  ev.component = to_string(component);
  ev.tcp_state_lost = tcp_loss;
  ev.connections_lost = tcp_loss ? replica.tcp().connection_count() : 0;
  recovery_log_.push_back(ev);
  sim_.tracer().emit({sim_.now(), 0, "neat", "crash", 0, replica.id(),
                      "\"component\":\"" + ev.component + "\",\"conns_lost\":" +
                          std::to_string(ev.connections_lost)});

  // The crash: state vanishes silently (on_crash hooks). That is ALL this
  // does — recovery belongs to the supervisor, whose watchdog must notice
  // the silence and schedule the restart (or quarantine). There is no
  // oracle restart path; a second inject while the component is already
  // down returns early above, so restarts cannot double-schedule.
  proc->crash();
  // The driver stops passing packets to the replica until it announces
  // itself again (§3.6) — only needed when the RX-facing component died.
  if (component == Component::kIp || component == Component::kWhole ||
      std::string_view(replica.kind()) == "single") {
    driver_->deactivate_endpoint(replica.queue());
  }
}

void NeatHost::power_off() {
  if (powered_off_) return;
  powered_off_ = true;
  sim_.tracer().emit({sim_.now(), 0, "neat", "power_off", 0, -1,
                      "\"host\":" + std::to_string(config_.host_id)});
  // Supervision first: with the watchdogs and pending restart timers gone,
  // nothing can resurrect any of the processes we are about to kill.
  supervisor_->shutdown();
  gc_timer_.cancel();
  for (auto& r : replicas_) {
    r->terminated = true;
    for (auto* p : r->processes()) {
      if (!p->crashed()) p->crash();
    }
  }
  if (!driver_->crashed()) driver_->crash();
  if (!syscall_->crashed()) syscall_->crash();
  if (!os_proc_->crashed()) os_proc_->crash();
  note_replica_census();
}

void NeatHost::inject_driver_crash() {
  if (driver_->crashed()) return;
  RecoveryEvent ev;
  ev.at = sim_.now();
  ev.component = "nicdrv";
  ev.tcp_state_lost = false;
  recovery_log_.push_back(ev);
  sim_.tracer().emit({sim_.now(), 0, "neat", "crash", 0, -1,
                      "\"component\":\"nicdrv\""});
  // Crash only; the supervisor's driver watchdog detects and restarts.
  driver_->crash();
}

std::size_t NeatHost::recover_replica(StackReplica& replica,
                                      Component component) {
  sim::Process* proc = replica.component(component);
  assert(proc != nullptr);
  if (!proc->crashed()) return 0;
  proc->restart();
  replica.reset_after_restart(component);
  replica.rx_channel().rebind(replica.rx_channel().consumer());
  const bool tcp_loss =
      component == Component::kTcp || component == Component::kWhole ||
      std::string_view(replica.kind()) == "single";
  std::size_t restored_count = 0;
  if (tcp_loss) {
    // Stateful recovery: restore whatever the last checkpoint captured
    // (empty vector under the default stateless strategy), then tell the
    // applications which sockets survived and which are gone.
    std::vector<net::TcpSocketPtr> restored;
    if (config_.checkpoint_interval > 0) {
      restored = replica.tcp().restore(
          checkpoints_[static_cast<std::size_t>(replica.id())]);
      restored_count = restored.size();
    }
    for (auto* l : listeners_) l->on_replica_tcp_recovery(replica, restored);
    // Re-create the listening subsockets: the TCP server is reachable
    // again right after recovery. A draining replica skips this — it must
    // not attract fresh connections (§3.4).
    if (!replica.terminating) replay_listens(replica);
  }
  // The UDP port mux died whenever its hosting process did (always, for a
  // single-component replica). Re-install the durable binds.
  if (component == Component::kUdp ||
      std::string_view(replica.kind()) == "single") {
    replay_udp_binds(replica);
  }
  // Replica announces itself; the driver resumes delivery.
  driver_->control([this, &replica] {
    driver_->announce_endpoint(replica.queue(), &replica.rx_channel());
  });
  return restored_count;
}

void NeatHost::recover_driver() {
  if (!driver_->crashed()) return;
  driver_->restart();
  // Replica TX channels into the driver forget in-flight frames.
  //
  // Re-announce every replica that should be receiving. A replica
  // recovered while the driver was down — or in the window before its
  // announce control op executed — lost that announce (work posted to a
  // crashed process is silently dropped), and nothing else would ever
  // repair the endpoint: the steering entry stays live while the driver
  // drops every frame for it. Crashed replicas are skipped; their own
  // recovery re-announces them. Announcing an already-active endpoint is
  // idempotent (it just re-kicks the ring scan).
  for (auto& r : replicas_) {
    if (r->terminated || r->rx_channel().consumer().crashed()) continue;
    StackReplica& replica = *r;
    driver_->control([this, &replica] {
      driver_->announce_endpoint(replica.queue(), &replica.rx_channel());
    });
  }
  update_steering();
}

void NeatHost::quarantine_replica(StackReplica& replica) {
  if (replica.quarantined) return;
  sim_.tracer().emit({sim_.now(), 0, "neat", "quarantine", 0, replica.id(), ""});
  awaiting_first_service_.erase(replica.id());
  supervisor_->unwatch_replica(replica);
  replica.quarantined = true;
  replica.terminated = true;  // GC, checkpointing and steering all skip it
  retire_queue(replica.queue());
  for (auto* p : replica.processes()) {
    if (!p->crashed()) p->crash();
  }
  // Apps learn every socket on this replica is gone for good.
  for (auto* l : listeners_) l->on_replica_tcp_recovery(replica, {});
  update_steering();
  note_replica_census();
}

StackReplica* NeatHost::spawn_replacement(StackReplica& failed) {
  const int queue = static_cast<int>(replicas_.size());
  if (queue >= nic_.params().num_queues) return nullptr;
  const auto pins = replica_pins_[static_cast<std::size_t>(failed.id())];
  return &add_replica(pins);
}

void NeatHost::collect_replica(StackReplica& replica) {
  if (replica.terminated) return;
  sim_.tracer().emit({sim_.now(), 0, "neat", "collect", 0, replica.id(), ""});
  awaiting_first_service_.erase(replica.id());
  supervisor_->unwatch_replica(replica);
  replica.terminated = true;
  retire_queue(replica.queue());
  for (auto* p : replica.processes()) {
    if (!p->crashed()) p->crash();
  }
  // Unlike the clean GC path this replica still had connections; the apps
  // must learn they are gone.
  for (auto* l : listeners_) l->on_replica_tcp_recovery(replica, {});
  note_replica_census();
}

std::size_t NeatHost::note_detection(int replica_id,
                                     const std::string& component,
                                     sim::SimTime detected_at) {
  for (std::size_t i = recovery_log_.size(); i-- > 0;) {
    RecoveryEvent& ev = recovery_log_[i];
    if (ev.replica_id == replica_id && ev.component == component &&
        ev.detected_at == 0 && ev.recovered_at == 0) {
      ev.detected_at = detected_at;
      return i;
    }
  }
  // A death the injection log never saw (defensive; all current crash
  // paths log before crashing).
  RecoveryEvent ev;
  ev.at = detected_at;
  ev.replica_id = replica_id;
  ev.component = component;
  ev.detected_at = detected_at;
  recovery_log_.push_back(ev);
  return recovery_log_.size() - 1;
}

void NeatHost::await_first_service(int replica_id, std::size_t event_idx) {
  awaiting_first_service_[replica_id] = event_idx;
}

void NeatHost::note_first_service(StackReplica& replica) {
  auto it = awaiting_first_service_.find(replica.id());
  if (it == awaiting_first_service_.end()) return;
  RecoveryEvent& ev = recovery_log_[it->second];
  awaiting_first_service_.erase(it);
  ev.first_service_at = sim_.now();
  metrics()
      .histogram("recovery.crash_to_first_service_ns")
      .record(ev.first_service_latency());
  sim_.tracer().emit({sim_.now(), 0, "neat", "first_service", 0,
                      replica.id(),
                      "\"since_crash_ns\":" +
                          std::to_string(ev.first_service_latency())});
}

std::vector<std::uint16_t> NeatHost::listen_ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(listen_registry_.size());
  for (const auto& rec : listen_registry_) out.push_back(rec.port);
  return out;
}

}  // namespace neat
