#include "neat/host.hpp"

#include <algorithm>
#include <cassert>

namespace neat {

// ---------------------------------------------------------------------------
// SyscallServer
// ---------------------------------------------------------------------------

SyscallServer::SyscallServer(sim::Simulator& sim, StackCosts costs)
    : sim::Process(sim, "syscall"),
      ch_(*this, 4096, ipc::kDefaultChannelLatency, costs.syscall_server,
          [this](std::function<void()>&& op) {
            ++calls_;
            op();
          }) {}

// ---------------------------------------------------------------------------
// NeatHost
// ---------------------------------------------------------------------------

namespace {
/// Placeholder for "all remaining operating system processes" sharing the
/// OS core (paper §6.3). It idles unless someone posts work at it.
class OsProcess final : public sim::Process {
 public:
  explicit OsProcess(sim::Simulator& sim) : sim::Process(sim, "os") {}
};
}  // namespace

NeatHost::NeatHost(sim::Simulator& sim, sim::Machine& machine, nic::Nic& nic,
                   Config config)
    : sim_(sim),
      machine_(machine),
      nic_(nic),
      config_(config),
      driver_(std::make_unique<drv::NicDriver>(sim, nic, config.costs)),
      syscall_(std::make_unique<SyscallServer>(sim, config.costs)),
      os_proc_(std::make_unique<OsProcess>(sim)),
      rng_(sim.rng().split(0x4057)) {
  if (config_.smartnic_offload) driver_->set_hardware_offload(true);
  gc_timer_ = sim_.schedule(config_.gc_period, [this] { gc_tick(); });
}

NeatHost::~NeatHost() { gc_timer_.cancel(); }

StackReplica& NeatHost::add_replica(
    const std::vector<sim::HwThread*>& pins) {
  assert(!pins.empty());
  const int id = static_cast<int>(replicas_.size());
  const int queue = id;  // one NIC queue pair per replica
  std::unique_ptr<StackReplica> rep;
  if (config_.kind == Config::Kind::kSingle) {
    auto r = std::make_unique<SingleComponentReplica>(
        sim_, id, queue, *driver_, nic_.mac(), nic_.ip(), config_.costs,
        config_.tcp);
    r->pin(*pins[0]);
    rep = std::move(r);
  } else {
    auto r = std::make_unique<MultiComponentReplica>(
        sim_, id, queue, *driver_, nic_.mac(), nic_.ip(), config_.costs,
        config_.tcp);
    sim::HwThread* tcp_pin = pins[0];
    sim::HwThread* ip_pin = pins.size() > 1 ? pins[1] : pins[0];
    sim::HwThread* udp_pin = pins.size() > 2 ? pins[2] : ip_pin;
    sim::HwThread* pf_pin = pins.size() > 3 ? pins[3] : ip_pin;
    r->tcp_component().pin(*tcp_pin);
    r->ip_component().pin(*ip_pin);
    r->component(Component::kUdp)->pin(*udp_pin);
    r->component(Component::kFilter)->pin(*pf_pin);
    rep = std::move(r);
  }
  StackReplica& ref = *rep;
  replicas_.push_back(std::move(rep));
  checkpoints_.resize(replicas_.size());
  if (config_.checkpoint_interval > 0) {
    sim_.schedule(config_.checkpoint_interval,
                  [this, id] { checkpoint_tick(id); });
  }
  driver_->announce_endpoint(queue, &ref.rx_channel());
  update_steering();
  // Subsocket replication: every recorded listener appears on the new
  // replica too, so it immediately shares the accept load.
  replay_listens(ref);
  return ref;
}

std::vector<StackReplica*> NeatHost::active_replicas() {
  std::vector<StackReplica*> out;
  for (auto& r : replicas_) {
    if (!r->terminating && !r->terminated &&
        !r->tcp_process().crashed()) {
      out.push_back(r.get());
    }
  }
  return out;
}

std::vector<StackReplica*> NeatHost::serving_replicas() {
  std::vector<StackReplica*> out;
  for (auto& r : replicas_) {
    if (!r->terminated) out.push_back(r.get());
  }
  return out;
}

StackReplica* NeatHost::pick_replica() {
  auto active = active_replicas();
  if (active.empty()) return nullptr;
  return active[rng_.below(active.size())];
}

void NeatHost::record_listen(ListenRecord rec) {
  listen_registry_.push_back(std::move(rec));
}

void NeatHost::remove_listen(std::uint16_t port) {
  std::erase_if(listen_registry_,
                [port](const ListenRecord& r) { return r.port == port; });
  for (auto* r : serving_replicas()) {
    r->tcp_process().post(config_.costs.replica_control, [r, port] {
      r->tcp().close_listener(port);
    });
  }
}

void NeatHost::replay_listens(StackReplica& replica) {
  for (const auto& rec : listen_registry_) {
    replica.tcp_process().post(
        config_.costs.replica_control, [&replica, rec] {
          net::TcpListener* l = replica.tcp().listen(rec.port, rec.backlog);
          if (l == nullptr) l = replica.tcp().listener(rec.port);
          if (l != nullptr && rec.wire) rec.wire(replica, *l);
        });
  }
}

void NeatHost::update_steering() {
  std::vector<int> queues;
  for (auto* r : active_replicas()) queues.push_back(r->queue());
  if (queues.empty()) return;
  driver_->control([this, queues] { nic_.set_active_queues(queues); });
}

void NeatHost::begin_scale_down(StackReplica& replica) {
  if (replica.terminating || replica.terminated) return;
  replica.terminating = true;
  // (ii) new connections bypass it; existing flows keep their path thanks
  // to the NIC's per-flow tracking filters.
  update_steering();
}

void NeatHost::gc_tick() {
  for (auto& r : replicas_) {
    if (r->terminating && !r->terminated &&
        r->tcp().active_connection_count() == 0) {
      // (iii) connection count hit zero: collect the replica. Its cores
      // are now free for applications.
      r->terminated = true;
      driver_->deactivate_endpoint(r->queue());
      for (auto* p : r->processes()) p->crash();
    }
  }
  gc_timer_ = sim_.schedule(config_.gc_period, [this] { gc_tick(); });
}

void NeatHost::checkpoint_tick(int replica_id) {
  StackReplica& rep = *replicas_[static_cast<std::size_t>(replica_id)];
  if (!rep.terminated) {
    // The checkpoint pass runs inside the TCP process and is charged per
    // connection — this is the run-time overhead stateful recovery costs.
    const auto conns = rep.tcp().connection_count();
    const sim::Cycles cost =
        config_.costs.checkpoint_base +
        config_.costs.checkpoint_per_conn * static_cast<sim::Cycles>(conns);
    rep.tcp_process().post(cost, [this, replica_id, &rep] {
      checkpoints_[static_cast<std::size_t>(replica_id)] =
          rep.tcp().snapshot();
    });
  }
  sim_.schedule(config_.checkpoint_interval,
                [this, replica_id] { checkpoint_tick(replica_id); });
}

void NeatHost::inject_crash(StackReplica& replica, Component component) {
  sim::Process* proc = replica.component(component);
  assert(proc != nullptr);
  if (proc->crashed()) return;

  const bool tcp_loss =
      component == Component::kTcp || component == Component::kWhole ||
      std::string_view(replica.kind()) == "single";
  RecoveryEvent ev;
  ev.at = sim_.now();
  ev.replica_id = replica.id();
  ev.component = to_string(component);
  ev.tcp_state_lost = tcp_loss;
  ev.connections_lost = tcp_loss ? replica.tcp().connection_count() : 0;
  recovery_log_.push_back(ev);

  // The crash: state vanishes silently (on_crash hooks).
  proc->crash();
  // The driver stops passing packets to the replica until it announces
  // itself again (§3.6) — only needed when the RX-facing component died.
  if (component == Component::kIp || component == Component::kWhole ||
      std::string_view(replica.kind()) == "single") {
    driver_->deactivate_endpoint(replica.queue());
  }

  // Restart after the (short) recovery delay.
  sim_.schedule(config_.restart_delay, [this, &replica, component, proc,
                                        tcp_loss] {
    proc->restart();
    replica.reset_after_restart(component);
    replica.rx_channel().rebind(replica.rx_channel().consumer());
    if (tcp_loss) {
      // Stateful recovery: restore whatever the last checkpoint captured
      // (empty vector under the default stateless strategy), then tell the
      // applications which sockets survived and which are gone.
      std::vector<net::TcpSocketPtr> restored;
      if (config_.checkpoint_interval > 0) {
        restored = replica.tcp().restore(
            checkpoints_[static_cast<std::size_t>(replica.id())]);
        recovery_log_.back().connections_restored = restored.size();
      }
      for (auto* l : listeners_) l->on_replica_tcp_recovery(replica, restored);
      // Re-create the listening subsockets: the TCP server is reachable
      // again right after recovery.
      replay_listens(replica);
    }
    // Replica announces itself; the driver resumes delivery.
    driver_->control([this, &replica] {
      driver_->announce_endpoint(replica.queue(), &replica.rx_channel());
    });
  });
}

void NeatHost::inject_driver_crash() {
  if (driver_->crashed()) return;
  RecoveryEvent ev;
  ev.at = sim_.now();
  ev.component = "nicdrv";
  ev.tcp_state_lost = false;
  recovery_log_.push_back(ev);
  driver_->crash();
  sim_.schedule(config_.restart_delay, [this] {
    driver_->restart();
    // Replica TX channels into the driver forget in-flight frames.
    update_steering();
  });
}

}  // namespace neat
