#include "neat/autoscaler.hpp"

#include <algorithm>

namespace neat {

AutoScaler::AutoScaler(NeatHost& host,
                       std::vector<std::vector<sim::HwThread*>> spare_pins,
                       Policy policy)
    : host_(host), spare_pins_(std::move(spare_pins)), policy_(policy) {}

AutoScaler::~AutoScaler() { stop(); }

void AutoScaler::start() {
  if (running_) return;
  running_ = true;
  snapshots_.clear();
  timer_ = host_.simulator().schedule(policy_.period, [this] { tick(); });
}

void AutoScaler::stop() {
  running_ = false;
  timer_.cancel();
}

double AutoScaler::utilization_of(StackReplica& r,
                                  sim::SimTime window) const {
  // Utilization of the TCP-bearing process — the saturation point of a
  // replica (the IP side is strictly cheaper).
  const sim::Process& p = const_cast<StackReplica&>(r).tcp_process();
  sim::Cycles prev = 0;
  for (const auto& [proc, cycles] : snapshots_) {
    if (proc == &p) prev = cycles;
  }
  const sim::Cycles busy = p.stats().processing - prev;
  const auto& mp = p.thread() != nullptr
                       ? p.thread()->params()
                       : host_.machine().params();
  const double budget =
      mp.freq.ghz * 1e9 * sim::to_seconds(window) / mp.work_scale;
  return budget > 0 ? static_cast<double>(busy) / budget : 0.0;
}

void AutoScaler::tick() {
  if (!running_) return;

  auto active = host_.active_replicas();
  double total = 0.0;
  double min_util = 2.0;
  double max_util = -1.0;
  StackReplica* coldest = nullptr;
  StackReplica* hottest = nullptr;
  for (auto* r : active) {
    const double u = utilization_of(*r, policy_.period);
    total += u;
    if (u < min_util) {
      min_util = u;
      coldest = r;
    }
    if (u > max_util) {
      max_util = u;
      hottest = r;
    }
  }
  last_util_ = active.empty() ? 0.0 : total / static_cast<double>(active.size());

  // Publish the control-loop state so workload benches can plot replica
  // timelines against load without reaching into the host.
  auto& metrics = host_.simulator().metrics();
  metrics.gauge("autoscaler.replicas_active")
      .set(static_cast<double>(active.size()));
  metrics.gauge("autoscaler.mean_utilization").set(last_util_);
  metrics.gauge("autoscaler.spare_pins").set(
      static_cast<double>(spare_pins_.size()));

  // Refresh snapshots for the next window.
  snapshots_.clear();
  for (std::size_t i = 0; i < host_.replica_count(); ++i) {
    const sim::Process& p = host_.replica(i).tcp_process();
    snapshots_.emplace_back(&p, p.stats().processing);
  }

  const sim::SimTime now = host_.simulator().now();
  const bool cooled = now - last_action_ >= policy_.cooldown;
  if (cooled && !active.empty()) {
    if (last_util_ > policy_.scale_up_threshold && !spare_pins_.empty()) {
      host_.add_replica(spare_pins_.back());
      spare_pins_.pop_back();
      ++scale_ups_;
      metrics.counter("autoscaler.scale_ups").inc();
      last_action_ = now;
    } else if (last_util_ < policy_.scale_down_threshold &&
               active.size() > policy_.min_replicas && coldest != nullptr) {
      host_.begin_scale_down(*coldest);
      if (policy_.migrate_on_scale_down) {
        StackReplica* target = hottest != coldest ? hottest : nullptr;
        if (target == nullptr) {
          for (auto* r : active) {
            if (r != coldest) {
              target = r;
              break;
            }
          }
        }
        if (target != nullptr) {
          // Immediate drain: hand the coldest replica's established
          // connections to the busiest survivor (it stays hot anyway) and
          // let the next gc tick collect the now-empty replica.
          host_.migrate_connections(*coldest, *target);
          metrics.counter("autoscaler.migrating_scale_downs").inc();
        }
      }
      ++scale_downs_;
      metrics.counter("autoscaler.scale_downs").inc();
      last_action_ = now;
      // The replica's threads return to the pool once it is collected; we
      // conservatively reclaim them now (the collector crashes the procs).
      // Note: pins of multi-component replicas are not reconstructed here.
    }
  }

  timer_ = host_.simulator().schedule(policy_.period, [this] { tick(); });
}

}  // namespace neat
