// Supervision: watchdog-driven crash detection and restart policy.
//
// The seed reproduction recovered from crashes through an oracle — the same
// call that injected the fault also scheduled the restart. This module
// replaces that with the supervision loop a real deployment needs:
//
//  * every stack component process (and the NIC driver) is monitored by a
//    heartbeat Watchdog; a crash is *detected* when the component stops
//    acknowledging probes, never assumed;
//  * a detected crash schedules a restart after an exponential-backoff
//    delay (base = NeatHost::Config::restart_delay), so a component that
//    dies immediately after every restart consumes bounded resources;
//  * a replica that crash-loops `quarantine_after` consecutive times is
//    quarantined — removed from steering permanently — and, policy
//    permitting, replaced by a freshly spawned replica on the same cores;
//  * a replica that crashes while draining under lazy termination (§3.4)
//    is either collected immediately (its TCP state is gone, nothing left
//    to drain) or restarted to finish draining — it never rejoins the
//    active steering set either way.
//
// Every detection/restart/quarantine annotates the host's recovery log
// (detection latency, backoff level, action), which is what the chaos
// campaign and the reliability benches audit.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "neat/replica.hpp"
#include "sim/time.hpp"
#include "sim/watchdog.hpp"

namespace neat {

class NeatHost;

struct SupervisionConfig {
  /// Master switch; off reverts to "crashes stay down until someone calls
  /// NeatHost::recover_replica by hand" (unit tests of the crash state).
  bool enabled{true};
  /// Probe cadence and the silence that declares a component dead.
  /// Detection latency is bounded by watchdog_timeout + heartbeat_period.
  sim::SimTime heartbeat_period{5 * sim::kMillisecond};
  sim::SimTime watchdog_timeout{15 * sim::kMillisecond};
  /// CPU cost of handling one probe in the monitored process.
  sim::Cycles heartbeat_cost{150};
  /// Restart delay = restart_delay * multiplier^backoff_level, capped.
  double backoff_multiplier{2.0};
  sim::SimTime backoff_cap{640 * sim::kMillisecond};
  /// Consecutive crashes (uptime below stability_window between them)
  /// before a replica is declared crash-looping and quarantined.
  int quarantine_after{4};
  /// Uptime that resets the consecutive-crash counter to zero.
  sim::SimTime stability_window{80 * sim::kMillisecond};
  /// Spawn a replacement replica (same pins) when quarantining.
  bool replace_quarantined{true};
};

class Supervisor {
 public:
  struct Stats {
    std::uint64_t detections{0};
    std::uint64_t restarts{0};
    std::uint64_t driver_restarts{0};
    std::uint64_t quarantines{0};
    std::uint64_t replacements{0};
    std::uint64_t scale_down_collects{0};
    sim::SimTime detection_latency_total{0};
    sim::SimTime detection_latency_max{0};
    int max_backoff_level{0};

    [[nodiscard]] double mean_detection_ms() const {
      return detections == 0 ? 0.0
                             : static_cast<double>(detection_latency_total) /
                                   static_cast<double>(detections) / 1e6;
    }
  };

  Supervisor(NeatHost& host, SupervisionConfig cfg);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Begin monitoring all component processes of `r` (called by the host
  /// for every replica, including supervisor-spawned replacements).
  void watch_replica(StackReplica& r);

  /// Stop monitoring (replica collected by GC or quarantined). Safe to
  /// call for replicas that were never watched.
  void unwatch_replica(StackReplica& r);

  /// Begin monitoring the NIC driver process.
  void watch_driver();

  /// Stop ALL supervision permanently: cancel pending backoff restarts,
  /// disarm every watchdog, drop every watch. Used by NeatHost::power_off —
  /// a powered-off host must stay down, so nothing may fire after this.
  void shutdown();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SupervisionConfig& config() const { return cfg_; }

  /// Consecutive-crash count feeding the backoff/quarantine policy.
  [[nodiscard]] int consecutive_crashes(const StackReplica& r) const;

  /// True while a detected crash of (r, c) awaits its backoff restart —
  /// the explicit "restart pending" window that prevents double-scheduling.
  [[nodiscard]] bool restart_pending(const StackReplica& r,
                                     Component c) const;
  [[nodiscard]] bool driver_restart_pending() const;

 private:
  struct Watch {
    StackReplica* replica{nullptr};  // nullptr = the NIC driver
    Component component{Component::kWhole};
    sim::Process* proc{nullptr};
    std::unique_ptr<sim::Watchdog> dog;
    bool restart_pending{false};
    sim::EventHandle restart_timer;
  };
  struct LoopState {
    int consecutive{0};
    sim::SimTime last_recover{0};
  };

  void arm(Watch& w);
  void on_silent(Watch& w, sim::SimTime silent_for);
  void handle_replica_death(Watch& w, std::size_t event_idx);
  void handle_driver_death(Watch& w, std::size_t event_idx);
  void complete_replica_restart(Watch& w, std::size_t event_idx);
  void complete_driver_restart(Watch& w, std::size_t event_idx);
  [[nodiscard]] sim::SimTime backoff_delay(int level) const;

  NeatHost& host_;
  SupervisionConfig cfg_;
  std::vector<std::unique_ptr<Watch>> watches_;
  std::unordered_map<int, LoopState> replica_loop_;  // replica id -> state
  LoopState driver_loop_;
  Stats stats_;
};

}  // namespace neat
