// NEaT stack replicas.
//
// A replica is one independent, fully isolated instance of the network
// stack. It owns a NIC queue pair, a TCP connection table, an ARP cache, an
// IP layer — and shares *nothing* with its sibling replicas (paper §3).
//
// Two compositions exist, selected at build time in the paper and per-host
// here:
//   * SingleComponentReplica — driver-facing RX/TX + IP + TCP + UDP + packet
//     filter in one process ("NEaT Nx" configurations);
//   * MultiComponentReplica  — vertically split into isolated IP and TCP
//     processes (plus UDP and PF) for finer fault containment
//     ("Multi Nx" configurations, Figure 3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "drv/driver.hpp"
#include "ipc/channel.hpp"
#include "neat/costs.hpp"
#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/filter.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "sim/process.hpp"
#include "sim/random.hpp"

namespace neat {

/// Which component of a replica (fault-injection targets; Table 3).
enum class Component { kIp, kTcp, kUdp, kFilter, kWhole };

[[nodiscard]] const char* to_string(Component c);

/// IP layer shared by both replica flavours: encap/decap, ARP, reassembly.
/// Pure logic — the owning process charges the cycles.
class IpLayer {
 public:
  using FrameTx = std::function<void(net::PacketPtr)>;

  IpLayer(net::MacAddr mac, net::Ipv4Addr ip, FrameTx tx_frame);

  /// Encapsulate (IP + Ethernet, ARP-resolved) and transmit.
  void send(net::PacketPtr payload, net::IpProto proto, net::Ipv4Addr src,
            net::Ipv4Addr dst);

  struct Decoded {
    net::Ipv4Header hdr;
    net::PacketPtr payload;
  };

  /// Process one Ethernet frame. ARP is consumed internally; a complete
  /// IPv4 datagram (post-reassembly) is returned.
  std::optional<Decoded> rx_frame(const net::PacketPtr& frame);

  [[nodiscard]] net::ArpResolver& arp() { return arp_; }
  [[nodiscard]] net::Ipv4Addr ip() const { return ip_; }
  [[nodiscard]] net::MacAddr mac() const { return mac_; }

  /// Forget all soft state (crash recovery): ARP cache, partial datagrams.
  void reset();

 private:
  net::MacAddr mac_;
  net::Ipv4Addr ip_;
  FrameTx tx_frame_;
  net::ArpResolver arp_;
  net::Ipv4Reassembler reasm_;
  std::uint16_t ident_{1};
};

/// Abstract replica as seen by the host manager, SYSCALL server and the
/// socket library.
class StackReplica {
 public:
  virtual ~StackReplica() = default;

  [[nodiscard]] virtual net::TcpStack& tcp() = 0;
  /// The process hosting the TCP state (doorbell consumer for sockets).
  [[nodiscard]] virtual sim::Process& tcp_process() = 0;
  /// Channel the driver delivers this replica's packets into.
  [[nodiscard]] virtual ipc::Channel<net::PacketPtr>& rx_channel() = 0;
  [[nodiscard]] virtual net::PacketFilter& filter() = 0;
  [[nodiscard]] virtual net::UdpMux& udp() = 0;
  /// All component processes (fault-injection / placement).
  [[nodiscard]] virtual std::vector<sim::Process*> processes() = 0;
  [[nodiscard]] virtual sim::Process* component(Component c) = 0;
  [[nodiscard]] virtual const char* kind() const = 0;
  [[nodiscard]] virtual IpLayer& ip_layer_ref() = 0;

  [[nodiscard]] int queue() const { return queue_; }
  [[nodiscard]] int id() const { return id_; }

  /// Lazy-termination mark (§3.4): no *new* connections, existing served.
  bool terminating{false};
  /// Set once the terminating replica drained and was collected.
  bool terminated{false};
  /// Set when the supervisor gave up on a crash-looping replica: its
  /// processes stay dead, it never rejoins steering, and (policy
  /// permitting) a freshly spawned replica takes over its load.
  bool quarantined{false};

  /// The replica's address-space layout token (§3.8): each replica is
  /// created with ASLR enabled, so semantically equivalent replicas have
  /// unpredictably different memory layouts, and every restart draws a new
  /// one. Binding each connection to a random replica then re-randomizes
  /// the layout an attacker probes across connections.
  [[nodiscard]] std::uint64_t aslr_layout() const { return aslr_layout_; }

  /// Transmit a UDP datagram from this replica (UDP being stateless, the
  /// socket library may hand any datagram to any serving replica). Runs in
  /// the replica's UDP-bearing process; `payload` is the raw application
  /// bytes, headers are added on the way out.
  virtual void udp_tx(net::PacketPtr payload, std::uint16_t src_port,
                      net::SockAddr to) = 0;

  /// Invoked (by the host) after a crash+restart cycle of the TCP-bearing
  /// process to clear any residual soft state.
  virtual void reset_after_restart(Component which) = 0;

 protected:
  StackReplica(int id, int queue, std::uint64_t aslr_seed)
      : queue_(queue), id_(id), aslr_rng_(aslr_seed) {
    aslr_layout_ = aslr_rng_();
  }
  /// Called on restart: a fresh process image gets a fresh layout.
  void rerandomize_layout() { aslr_layout_ = aslr_rng_(); }

  int queue_;
  int id_;
  sim::Rng aslr_rng_;
  std::uint64_t aslr_layout_{0};
};

// ---------------------------------------------------------------------------
// Single-component replica
// ---------------------------------------------------------------------------

class SingleComponentReplica final : public sim::Process,
                                     public net::TcpEnv,
                                     public StackReplica {
 public:
  /// `hub` overrides the simulator-global obs hub (per-host metric
  /// namespaces in a fleet); nullptr keeps the global one.
  SingleComponentReplica(sim::Simulator& sim, int id, int queue,
                         drv::NicDriver& driver, net::MacAddr mac,
                         net::Ipv4Addr ip, StackCosts costs,
                         net::TcpConfig tcp_cfg, obs::Hub* hub = nullptr);

  // StackReplica
  net::TcpStack& tcp() override { return tcp_stack_; }
  sim::Process& tcp_process() override { return *this; }
  ipc::Channel<net::PacketPtr>& rx_channel() override { return rx_ch_; }
  net::PacketFilter& filter() override { return pf_; }
  net::UdpMux& udp() override { return udp_; }
  std::vector<sim::Process*> processes() override { return {this}; }
  sim::Process* component(Component) override { return this; }
  const char* kind() const override { return "single"; }
  IpLayer& ip_layer_ref() override { return ip_; }
  void udp_tx(net::PacketPtr payload, std::uint16_t src_port,
              net::SockAddr to) override;
  void reset_after_restart(Component) override;

  // TcpEnv
  sim::SimTime now() override { return sim().now(); }
  sim::EventHandle start_timer(sim::SimTime delay,
                               std::function<void()> fn) override;
  void tx(net::PacketPtr segment, net::Ipv4Addr src,
          net::Ipv4Addr dst) override;
  std::uint32_t random_u32() override {
    return static_cast<std::uint32_t>(rng_());
  }
  obs::Hub* obs_hub() override {
    return hub_ != nullptr ? hub_ : &sim().obs();
  }
  void on_flow_established(const net::FlowKey& key) override;

  [[nodiscard]] IpLayer& ip_layer() { return ip_; }

 protected:
  void on_crash() override;

 private:
  void handle_frame(net::PacketPtr frame);
  void handle_frame_batch(std::vector<net::PacketPtr>&& frames);
  void handle_ip(const net::Ipv4Header& hdr, net::PacketPtr payload);
  [[nodiscard]] bool pf_pass(const net::Ipv4Header& hdr,
                             const net::Packet& payload) const;

  StackCosts costs_;
  sim::Rng rng_;
  obs::Hub* hub_;  // per-host hub override; nullptr = simulator-global
  drv::NicDriver* driver_;  // deferred-filter installs go through here
  drv::NicDriver::TxPort tx_port_;     // → driver (or NIC, when offloaded)
  ipc::Channel<net::PacketPtr> rx_ch_;  // driver → this
  IpLayer ip_;
  net::TcpStack tcp_stack_;
  net::UdpMux udp_;
  net::PacketFilter pf_;
};

// ---------------------------------------------------------------------------
// Multi-component replica
// ---------------------------------------------------------------------------

class MultiComponentReplica;

/// The TCP process of a multi-component replica.
class TcpComponent final : public sim::Process, public net::TcpEnv {
 public:
  TcpComponent(sim::Simulator& sim, MultiComponentReplica& owner,
               std::string name, net::Ipv4Addr ip, StackCosts costs,
               net::TcpConfig cfg);

  [[nodiscard]] net::TcpStack& stack() { return tcp_stack_; }

  // TcpEnv
  sim::SimTime now() override { return sim().now(); }
  sim::EventHandle start_timer(sim::SimTime delay,
                               std::function<void()> fn) override;
  void tx(net::PacketPtr segment, net::Ipv4Addr src,
          net::Ipv4Addr dst) override;
  std::uint32_t random_u32() override {
    return static_cast<std::uint32_t>(rng_());
  }
  obs::Hub* obs_hub() override;  // the owning replica's hub (see cpp)
  void on_flow_established(const net::FlowKey& key) override;

 protected:
  void on_crash() override;

 private:
  MultiComponentReplica& owner_;
  StackCosts costs_;
  sim::Rng rng_;
  net::TcpStack tcp_stack_;
};

/// The IP process: eth/ARP/IP handling between the driver and transports.
class IpComponent final : public sim::Process {
 public:
  IpComponent(sim::Simulator& sim, MultiComponentReplica& owner,
              std::string name, net::MacAddr mac, net::Ipv4Addr ip,
              StackCosts costs, IpLayer::FrameTx tx_frame);

  [[nodiscard]] IpLayer& layer() { return ip_; }
  [[nodiscard]] ipc::Channel<net::PacketPtr>& rx_channel() { return rx_ch_; }

  /// Transport-originated transmit (runs in IP context via tx channel).
  void ip_send(net::PacketPtr payload, net::IpProto proto, net::Ipv4Addr src,
               net::Ipv4Addr dst) {
    ip_.send(std::move(payload), proto, src, dst);
  }

 protected:
  void on_crash() override;
  void on_restart() override;

 private:
  void handle_frame(net::PacketPtr frame);

  MultiComponentReplica& owner_;
  StackCosts costs_;
  std::unique_ptr<ipc::Channel<net::PacketPtr>> tx_ch_;  // → driver
  ipc::Channel<net::PacketPtr> rx_ch_;                   // driver → this
  IpLayer ip_;
};

/// The UDP process (stateless; trivially recoverable).
class UdpComponent final : public sim::Process {
 public:
  UdpComponent(sim::Simulator& sim, MultiComponentReplica& owner,
               std::string name);
  [[nodiscard]] net::UdpMux& mux() { return mux_; }

 protected:
  /// Port bindings are soft state: they die with the process. The host
  /// replays the durable bind registry after recovery.
  void on_crash() override { mux_.clear(); }

 private:
  MultiComponentReplica& owner_;
  net::UdpMux mux_;
};

/// The packet-filter process (stateless rules, reloaded on restart).
class FilterComponent final : public sim::Process {
 public:
  FilterComponent(sim::Simulator& sim, std::string name);
  [[nodiscard]] net::PacketFilter& filter() { return pf_; }

 protected:
  void on_restart() override { /* rules are config: reloaded by owner */ }

 private:
  net::PacketFilter pf_;
};

/// Assembly of the four processes + the channels between them.
class MultiComponentReplica final : public StackReplica {
 public:
  /// `hub` as for SingleComponentReplica: per-host obs override.
  MultiComponentReplica(sim::Simulator& sim, int id, int queue,
                        drv::NicDriver& driver, net::MacAddr mac,
                        net::Ipv4Addr ip, StackCosts costs,
                        net::TcpConfig tcp_cfg, obs::Hub* hub = nullptr);

  [[nodiscard]] obs::Hub* hub_override() const { return hub_; }

  net::TcpStack& tcp() override { return tcp_proc_->stack(); }
  sim::Process& tcp_process() override { return *tcp_proc_; }
  ipc::Channel<net::PacketPtr>& rx_channel() override {
    return ip_proc_->rx_channel();
  }
  net::PacketFilter& filter() override { return pf_proc_->filter(); }
  net::UdpMux& udp() override { return udp_proc_->mux(); }
  std::vector<sim::Process*> processes() override;
  sim::Process* component(Component c) override;
  const char* kind() const override { return "multi"; }
  IpLayer& ip_layer_ref() override { return ip_proc_->layer(); }
  void udp_tx(net::PacketPtr payload, std::uint16_t src_port,
              net::SockAddr to) override;
  void reset_after_restart(Component which) override;

  [[nodiscard]] IpComponent& ip_component() { return *ip_proc_; }
  [[nodiscard]] TcpComponent& tcp_component() { return *tcp_proc_; }

 private:
  friend class TcpComponent;
  friend class IpComponent;
  friend class UdpComponent;

  // Inter-component messages. IP→TCP reuses the stack's burst arrival
  // record so a whole channel batch moves into TcpStack::rx_batch without
  // per-message repacking.
  using IpToTcp = net::TcpStack::SegmentArrival;
  struct TcpToIp {
    net::PacketPtr payload;
    net::Ipv4Addr src;
    net::Ipv4Addr dst;
    net::IpProto proto{net::IpProto::kTcp};
  };

  StackCosts costs_;
  obs::Hub* hub_;  // per-host hub override; nullptr = simulator-global
  drv::NicDriver* driver_;  // deferred-filter installs go through here
  drv::NicDriver::TxPort drv_tx_;
  std::unique_ptr<TcpComponent> tcp_proc_;
  std::unique_ptr<IpComponent> ip_proc_;
  std::unique_ptr<UdpComponent> udp_proc_;
  std::unique_ptr<FilterComponent> pf_proc_;
  std::unique_ptr<ipc::Channel<IpToTcp>> ip_to_tcp_;
  std::unique_ptr<ipc::Channel<TcpToIp>> tcp_to_ip_;
  std::unique_ptr<ipc::Channel<IpToTcp>> ip_to_udp_;
};

}  // namespace neat
