// NeatHost: one machine running the NEaT stack.
//
// Owns the NIC driver, the SYSCALL server, the OS process, and the set of
// stack replicas; implements the control-plane behaviours of the paper:
//   * replica-aware NIC steering (active-queue indirection),
//   * the listen registry that replicates listening sockets onto every
//     replica (and replays them after restarts / onto new replicas),
//   * scale up (spawn replica) and scale down (lazy termination, §3.4),
//   * stateless failure recovery (§3.6): crash detection, restart after a
//     short delay, driver re-announce, listener replay, and app
//     notification when TCP state was lost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "drv/driver.hpp"
#include "neat/costs.hpp"
#include "neat/replica.hpp"
#include "neat/supervisor.hpp"
#include "nic/nic.hpp"
#include "sim/machine.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace neat {

/// The SYSCALL server: a dedicated process through which the (rare)
/// blocking/control system calls are routed (§3.1). The data path bypasses
/// it entirely.
class SyscallServer : public sim::Process {
 public:
  SyscallServer(sim::Simulator& sim, StackCosts costs);

  /// Submit a system call; `op` runs in server context after the channel
  /// hop and the server-side handling cost.
  void submit(std::function<void()> op) { ch_.send(std::move(op)); }

  [[nodiscard]] std::uint64_t calls_handled() const { return calls_; }

 private:
  ipc::Channel<std::function<void()>> ch_;
  std::uint64_t calls_{0};
};

/// Apps (their socket libraries) implement this to learn about replica
/// failures that lost TCP state. `restored` carries the connections a
/// checkpoint brought back (empty under the default stateless recovery):
/// the library re-attaches those and fails the rest.
class ReplicaFailureListener {
 public:
  virtual ~ReplicaFailureListener() = default;
  virtual void on_replica_tcp_recovery(
      StackReplica& replica,
      const std::vector<net::TcpSocketPtr>& restored) = 0;
  /// Established connections moved live from one replica to another
  /// (immediate scale-down drain). `adopted` are the target-side socket
  /// objects; libraries re-home the fd-attached sockets by flow match.
  /// Defaulted so listeners that predate migration keep compiling.
  virtual void on_connections_migrated(
      StackReplica& from, StackReplica& to,
      const std::vector<net::TcpSocketPtr>& adopted) {
    (void)from;
    (void)to;
    (void)adopted;
  }
  /// Established connections left this HOST entirely (cross-host drain in
  /// the fleet layer): there is no local target replica, the listed flows
  /// now live on another machine. Libraries deliver kMigratedAway upward
  /// so applications drop the dead fds. Defaulted like the hook above.
  virtual void on_connections_departed(StackReplica& from,
                                       const std::vector<net::FlowKey>& flows) {
    (void)from;
    (void)flows;
  }
};

/// One durable listen() record; replayed onto replicas after restart and
/// onto newly spawned replicas (subsocket replication, §3.3).
struct ListenRecord {
  std::uint16_t port{0};
  std::size_t backlog{128};
  /// Wires the freshly created per-replica listener (installs the
  /// accept-ready doorbell towards the owning application).
  std::function<void(StackReplica&, net::TcpListener&)> wire;
};

/// One durable UDP bind; like ListenRecord, replayed onto every serving
/// replica (UDP is stateless, so any replica can process any datagram) and
/// re-replayed after a restart wipes a replica's port mux.
struct UdpBindRecord {
  std::uint16_t port{0};
  /// Installs the binding on one replica's mux (runs in that replica's
  /// UDP-bearing process context).
  std::function<void(StackReplica&, net::UdpMux&)> wire;
};

/// A recovery event, for the fault-injection experiments (Table 3) and the
/// chaos campaigns. The crash itself fills the first block; the supervisor
/// annotates detection/recovery as it observes and handles the failure.
struct RecoveryEvent {
  sim::SimTime at{0};  ///< when the component actually died
  int replica_id{-1};
  std::string component;
  bool tcp_state_lost{false};
  std::size_t connections_lost{0};
  std::size_t connections_restored{0};  ///< via checkpoint, if enabled

  // Supervision annotations.
  sim::SimTime detected_at{0};   ///< watchdog declared the component dead
  sim::SimTime recovered_at{0};  ///< restart (or terminal action) completed
  /// First request served by the restarted replica (0 until observed) —
  /// the app-visible end of the outage window.
  sim::SimTime first_service_at{0};
  int backoff_level{0};          ///< exponential-backoff level applied
  /// "restart" | "quarantine" | "replace" | "gc" (collected while draining).
  std::string action{"restart"};

  [[nodiscard]] sim::SimTime detection_latency() const {
    return detected_at > at ? detected_at - at : 0;
  }
  [[nodiscard]] sim::SimTime recovery_latency() const {
    return recovered_at > at ? recovered_at - at : 0;
  }
  [[nodiscard]] sim::SimTime first_service_latency() const {
    return first_service_at > at ? first_service_at - at : 0;
  }
};

class NeatHost {
 public:
  struct Config {
    enum class Kind { kSingle, kMulti };
    Kind kind{Kind::kSingle};
    /// Distinguishes hosts that share one simulator (and hence one metrics
    /// registry): the replica-census gauges are keyed by this id so a
    /// client-side host cannot clobber the server's census.
    int host_id{0};
    StackCosts costs{};
    net::TcpConfig tcp{};
    sim::SimTime restart_delay{20 * sim::kMillisecond};
    sim::SimTime gc_period{10 * sim::kMillisecond};
    /// Client-side steering policy for outbound connections.
    enum class Steering { kRssPortSelection, kExactFilter };
    Steering steering{Steering::kRssPortSelection};

    /// §4 future-work mode: a programmable NIC runs the driver's data
    /// plane; the driver process carries control traffic only and its
    /// core is free for applications.
    bool smartnic_offload{false};

    /// Stateful recovery (§6.6 discussion): periodically checkpoint each
    /// replica's TCP state into a host-side store and restore it after a
    /// TCP crash. 0 disables checkpointing (the paper's default stateless
    /// strategy). Non-zero intervals buy connection survival at a
    /// per-interval CPU cost on every replica.
    sim::SimTime checkpoint_interval{0};

    /// Watchdog/restart/quarantine policy; restart_delay above is the
    /// backoff base.
    SupervisionConfig supervision{};

    /// Per-host observability hub. When set, everything this host records —
    /// replica TCP metrics, NIC steering counters, recovery latencies,
    /// census gauges — lands on this hub instead of the simulator-global
    /// one, giving each host of a fleet its own metric namespace (the
    /// fleet layer merges them for fleet percentiles). nullptr keeps the
    /// single-host behaviour: everything on sim.obs().
    obs::Hub* hub{nullptr};
  };

  NeatHost(sim::Simulator& sim, sim::Machine& machine, nic::Nic& nic,
           Config config);
  ~NeatHost();

  NeatHost(const NeatHost&) = delete;
  NeatHost& operator=(const NeatHost&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Machine& machine() { return machine_; }
  [[nodiscard]] nic::Nic& nic() { return nic_; }
  [[nodiscard]] drv::NicDriver& driver() { return *driver_; }
  [[nodiscard]] SyscallServer& syscall() { return *syscall_; }
  [[nodiscard]] sim::Process& os_process() { return *os_proc_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const StackCosts& costs() const { return config_.costs; }
  [[nodiscard]] net::Ipv4Addr ip() const { return nic_.ip(); }

  /// This host's obs hub (the per-host override, or the simulator-global
  /// hub when none was configured).
  [[nodiscard]] obs::Hub& hub() {
    return config_.hub != nullptr ? *config_.hub : sim_.obs();
  }
  [[nodiscard]] obs::Registry& metrics() { return hub().metrics; }

  /// Spawn a replica; `pins` are the hardware threads for its processes —
  /// single-component: [stack]; multi-component: [tcp, ip] (UDP and PF are
  /// colocated on the IP thread, where they idle unless exercised).
  StackReplica& add_replica(const std::vector<sim::HwThread*>& pins);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] StackReplica& replica(std::size_t i) { return *replicas_[i]; }

  /// Replicas currently eligible for new connections.
  [[nodiscard]] std::vector<StackReplica*> active_replicas();
  /// Replicas still serving (includes terminating, excludes terminated).
  [[nodiscard]] std::vector<StackReplica*> serving_replicas();

  /// Random active replica (connection placement; also the security
  /// re-randomization property of §3.8).
  StackReplica* pick_replica();

  // --- listen registry -------------------------------------------------------
  void record_listen(ListenRecord rec);
  void remove_listen(std::uint16_t port);
  void replay_listens(StackReplica& replica);

  // --- UDP bind registry -----------------------------------------------------
  /// Record a durable UDP bind and install it on every serving replica.
  void record_udp_bind(UdpBindRecord rec);
  void remove_udp_bind(std::uint16_t port);
  void replay_udp_binds(StackReplica& replica);
  [[nodiscard]] std::size_t udp_bind_count() const {
    return udp_bind_registry_.size();
  }

  // --- scaling (§3.4) --------------------------------------------------------
  /// Mark a replica for lazy termination: new connections avoid it; it is
  /// garbage-collected when its connection count reaches zero.
  void begin_scale_down(StackReplica& replica);

  /// Live connection migration: move every ESTABLISHED connection from
  /// `from` to `to` while both replicas are up, so a scale-down drains
  /// immediately instead of waiting for clients to hang up. Sequence:
  /// open a NIC capture window for the moving flows, freeze+extract in
  /// the source's TCP context, ship the image, adopt in the target's TCP
  /// context, repoint the exact-match filters to the target's queue, then
  /// close the window and replay the frames it buffered. `on_done` (if
  /// set) fires with the number of connections moved; the blackout
  /// (capture open -> replay) lands in the "neat.migration_blackout_ns"
  /// histogram. Requires tracking filters (the repoint is the mechanism).
  void migrate_connections(StackReplica& from, StackReplica& to,
                           std::function<void(std::size_t)> on_done = {});

  // --- reliability (§3.6) ----------------------------------------------------
  /// Crash one component of a replica. The crash is all this does: the
  /// supervisor's watchdog must *detect* it and schedule the recovery —
  /// there is no oracle restart path.
  void inject_crash(StackReplica& replica, Component component);
  /// Crash the NIC driver; detection/restart via the supervisor (§3.5).
  void inject_driver_crash();

  /// Power the whole host off, permanently: supervision stops (nothing is
  /// ever restarted), every process — replicas, driver, SYSCALL server,
  /// OS — crashes, and the GC timer is cancelled. From the wire the host
  /// simply goes silent; the fleet's health prober must *detect* that,
  /// exactly as the per-host supervisor detects a replica crash. There is
  /// no power_on: a crashed fleet host is replaced, not revived.
  void power_off();
  [[nodiscard]] bool powered_off() const { return powered_off_; }

  [[nodiscard]] Supervisor& supervisor() { return *supervisor_; }

  // --- recovery mechanics (invoked by the Supervisor) ------------------------
  /// Restart a crashed component: fresh process image, state reset,
  /// checkpoint restore (if enabled), app notification, listener replay,
  /// driver re-announce. Returns the number of connections a checkpoint
  /// restored (0 under stateless recovery).
  std::size_t recover_replica(StackReplica& replica, Component component);
  /// Restart the crashed driver and re-program steering.
  void recover_driver();
  /// Give up on a crash-looping replica: processes stay down, steering
  /// drops it for good, apps learn their sockets are gone.
  void quarantine_replica(StackReplica& replica);
  /// Spawn a fresh replica on the same hardware threads as `failed`
  /// (quarantine replacement). Returns nullptr when out of NIC queues.
  StackReplica* spawn_replacement(StackReplica& failed);
  /// Collect a replica that crashed while draining under lazy termination:
  /// it has nothing left to serve, so it goes straight to terminated.
  void collect_replica(StackReplica& replica);

  /// Find the crash event for (replica_id, component) that has not been
  /// detected yet, stamp its detected_at, and return its index; appends a
  /// fresh event when the crash was not injected through the log (defensive
  /// — every current crash path logs). Indices stay valid: the log is
  /// append-only.
  std::size_t note_detection(int replica_id, const std::string& component,
                             sim::SimTime detected_at);
  [[nodiscard]] RecoveryEvent& event(std::size_t idx) {
    return recovery_log_[idx];
  }

  /// Arm the crash-to-first-service measurement: the next successful
  /// accept() on `replica_id` stamps `first_service_at` on event `idx`.
  void await_first_service(int replica_id, std::size_t event_idx);
  /// Called by the socket library on every successful accept; records the
  /// end of the app-visible outage when the replica was being watched.
  void note_first_service(StackReplica& replica);

  [[nodiscard]] const std::vector<RecoveryEvent>& recovery_log() const {
    return recovery_log_;
  }

  /// Ports with durable listen() records (invariant audits).
  [[nodiscard]] std::vector<std::uint16_t> listen_ports() const;

  void add_failure_listener(ReplicaFailureListener* l) {
    listeners_.push_back(l);
  }
  void remove_failure_listener(ReplicaFailureListener* l) {
    std::erase(listeners_, l);
  }

  /// Fleet layer: tell the socket libraries on this host that `flows` were
  /// extracted from `from` and now live on another machine (cross-host
  /// drain). Fans out to on_connections_departed on every listener.
  void notify_connections_departed(StackReplica& from,
                                   const std::vector<net::FlowKey>& flows) {
    for (auto* l : listeners_) l->on_connections_departed(from, flows);
  }

  /// Re-program the NIC indirection to the current active-replica set.
  void update_steering();

 private:
  /// Permanently stop delivery to `queue` (quarantine / collection):
  /// deactivate the driver endpoint and purge its stale tracking filters.
  void retire_queue(int queue);
  void gc_tick();
  void checkpoint_tick(int replica_id);
  /// Refresh the replica-census gauges on the metrics hub (called whenever
  /// the active/serving sets change: spawn, scale-down, gc, quarantine).
  void note_replica_census();

  sim::Simulator& sim_;
  sim::Machine& machine_;
  nic::Nic& nic_;
  Config config_;
  std::unique_ptr<drv::NicDriver> driver_;
  std::unique_ptr<SyscallServer> syscall_;
  std::unique_ptr<sim::Process> os_proc_;
  std::unique_ptr<Supervisor> supervisor_;
  std::vector<std::unique_ptr<StackReplica>> replicas_;
  /// Hardware threads each replica was pinned to (replacement spawning).
  std::vector<std::vector<sim::HwThread*>> replica_pins_;
  std::vector<ListenRecord> listen_registry_;
  std::vector<UdpBindRecord> udp_bind_registry_;
  std::vector<ReplicaFailureListener*> listeners_;
  std::vector<RecoveryEvent> recovery_log_;
  /// replica id -> recovery-log index awaiting its first post-restart accept.
  std::unordered_map<int, std::size_t> awaiting_first_service_;
  /// The "independent data store" checkpoints survive crashes in.
  std::vector<net::TcpCheckpoint> checkpoints_;
  sim::Rng rng_;
  sim::EventHandle gc_timer_;
  bool powered_off_{false};
};

}  // namespace neat
