// Automatic replica scaling (paper §3.4).
//
// "The system boots with at least one replica ... When NEaT becomes
// overloaded, it automatically spawns a new network stack replica. ...
// When the load drops again, NEaT can also scale down" — via lazy
// termination, which NeatHost implements.
//
// The AutoScaler samples the utilization of each replica's TCP-bearing
// process over a control period and drives NeatHost::add_replica /
// begin_scale_down against a pool of spare hardware threads.
#pragma once

#include <cstdint>
#include <vector>

#include "neat/host.hpp"

namespace neat {

class AutoScaler {
 public:
  struct Policy {
    /// Spawn a replica when mean active-replica utilization exceeds this.
    double scale_up_threshold{0.85};
    /// Lazily terminate one when it drops below this (and more than
    /// min_replicas are active).
    double scale_down_threshold{0.30};
    std::size_t min_replicas{1};
    sim::SimTime period{50 * sim::kMillisecond};
    /// Settle time after any action before acting again.
    sim::SimTime cooldown{150 * sim::kMillisecond};
    /// Scale down by live-migrating the coldest replica's established
    /// connections onto the hottest remaining replica, so the drain is
    /// immediate instead of waiting for clients to hang up (lazy
    /// termination still collects the husk). Off by default: it needs
    /// tracking filters, and lazy drain is the paper's baseline.
    bool migrate_on_scale_down{false};
  };

  /// `spare_pins` are hardware-thread sets handed to add_replica() as
  /// capacity grows; scaling up stops when they run out (the paper's
  /// "limited by the ratio of cores dedicated to the system").
  AutoScaler(NeatHost& host,
             std::vector<std::vector<sim::HwThread*>> spare_pins,
             Policy policy);
  AutoScaler(NeatHost& host,
             std::vector<std::vector<sim::HwThread*>> spare_pins)
      : AutoScaler(host, std::move(spare_pins), Policy{}) {}
  ~AutoScaler();

  AutoScaler(const AutoScaler&) = delete;
  AutoScaler& operator=(const AutoScaler&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_downs() const { return scale_downs_; }

  /// Most recent per-replica utilization sample (active replicas only).
  [[nodiscard]] double last_mean_utilization() const { return last_util_; }

 private:
  void tick();
  [[nodiscard]] double utilization_of(StackReplica& r,
                                      sim::SimTime window) const;

  NeatHost& host_;
  std::vector<std::vector<sim::HwThread*>> spare_pins_;
  Policy policy_;
  sim::EventHandle timer_;
  bool running_{false};
  sim::SimTime last_action_{0};
  double last_util_{0.0};
  std::vector<std::pair<const sim::Process*, sim::Cycles>> snapshots_;
  std::uint64_t scale_ups_{0};
  std::uint64_t scale_downs_{0};
};

}  // namespace neat
