// CPU cost model: cycles charged by each component per unit of work.
//
// The simulator executes real protocol code but virtual time; these
// constants are what turn packet flows into CPU load. They were calibrated
// (bench/calibration) so that the absolute throughputs land in the
// neighbourhood of the paper's testbed numbers — ~224 krps best-case Linux
// and ~302 krps NEaT 3x on the 12-core AMD — and, more importantly, so that
// the *relative* shapes of every figure reproduce. EXPERIMENTS.md records
// paper-vs-measured for each one.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace neat {

struct StackCosts {
  // --- NIC driver (per packet) -------------------------------------------
  sim::Cycles drv_rx{1900};  ///< descriptor + buffer handoff, RX
  sim::Cycles drv_tx{1500};  ///< descriptor + doorbell, TX
  sim::Cycles drv_control{500};

  // --- multi-component replica -------------------------------------------
  sim::Cycles ip_rx_base{1000};  ///< eth+IP decode, demux (per packet)
  sim::Cycles ip_tx_base{900};   ///< IP+eth encode (per packet)
  sim::Cycles pf_per_packet{350};
  sim::Cycles udp_per_packet{900};
  sim::Cycles tcp_rx_base{3900};  ///< segment processing (per segment)
  sim::Cycles tcp_tx_base{3200};  ///< segment construction (per segment)

  // --- single-component replica (no IPC glue between IP and TCP) ---------
  sim::Cycles single_rx_base{7200};
  sim::Cycles single_tx_base{5600};

  // --- per-byte copy/checksum cost, in cycles per 16 bytes ----------------
  sim::Cycles per_16_bytes{6};

  // --- socket fast path ----------------------------------------------------
  sim::Cycles doorbell_take{350};    ///< notification pickup (either side)
  sim::Cycles sock_drain_base{800};  ///< stack-side send-ring drain, per pass
  sim::Cycles accept_cost{1200};     ///< app-side accept-queue pop
  sim::Cycles app_notify{300};       ///< app-side readable/writable event

  // --- optional stateful recovery (checkpointing, §6.6) -------------------
  sim::Cycles checkpoint_base{4000};      ///< per checkpoint pass
  sim::Cycles checkpoint_per_conn{350};   ///< per established connection

  // --- live connection migration (replica-to-replica hand-off) -----------
  sim::Cycles migrate_base{6000};      ///< freeze/thaw pass, either side
  sim::Cycles migrate_per_conn{450};   ///< serialize/adopt one connection

  // --- control plane --------------------------------------------------------
  sim::Cycles syscall_server{3500};  ///< SYSCALL server per request
  sim::Cycles replica_control{2500}; ///< replica-side control op
  sim::Cycles app_syscall{1200};     ///< app-side issue + completion

  /// Per-byte contribution for a payload of `n` bytes.
  [[nodiscard]] sim::Cycles bytes_cost(std::size_t n) const {
    return per_16_bytes * (static_cast<sim::Cycles>(n) / 16);
  }
};

/// Default calibrated model.
[[nodiscard]] inline StackCosts default_costs() { return StackCosts{}; }

}  // namespace neat
