#include "neat/supervisor.hpp"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "neat/host.hpp"

namespace neat {

Supervisor::Supervisor(NeatHost& host, SupervisionConfig cfg)
    : host_(host), cfg_(cfg) {}

Supervisor::~Supervisor() {
  for (auto& w : watches_) w->restart_timer.cancel();
}

void Supervisor::watch_replica(StackReplica& r) {
  if (!cfg_.enabled) return;
  auto add = [this, &r](Component c) {
    sim::Process* p = r.component(c);
    assert(p != nullptr);
    auto w = std::make_unique<Watch>();
    w->replica = &r;
    w->component = c;
    w->proc = p;
    w->dog = std::make_unique<sim::Watchdog>(
        host_.simulator(), cfg_.heartbeat_period, cfg_.watchdog_timeout);
    arm(*w);
    watches_.push_back(std::move(w));
  };
  if (r.processes().size() == 1) {
    add(Component::kWhole);
  } else {
    // One watchdog per isolated component process.
    add(Component::kTcp);
    add(Component::kIp);
    add(Component::kUdp);
    add(Component::kFilter);
  }
}

void Supervisor::unwatch_replica(StackReplica& r) {
  for (auto& w : watches_) {
    if (w->replica == &r) w->restart_timer.cancel();
  }
  std::erase_if(watches_, [&r](const std::unique_ptr<Watch>& w) {
    return w->replica == &r;
  });
}

void Supervisor::watch_driver() {
  if (!cfg_.enabled) return;
  auto w = std::make_unique<Watch>();
  w->replica = nullptr;
  w->proc = &host_.driver();
  w->dog = std::make_unique<sim::Watchdog>(
      host_.simulator(), cfg_.heartbeat_period, cfg_.watchdog_timeout);
  arm(*w);
  watches_.push_back(std::move(w));
}

void Supervisor::shutdown() {
  for (auto& w : watches_) {
    w->restart_timer.cancel();
    w->dog.reset();  // dtor cancels the probe timer
  }
  watches_.clear();
}

int Supervisor::consecutive_crashes(const StackReplica& r) const {
  auto it = replica_loop_.find(r.id());
  return it == replica_loop_.end() ? 0 : it->second.consecutive;
}

bool Supervisor::restart_pending(const StackReplica& r, Component c) const {
  sim::Process* p = const_cast<StackReplica&>(r).component(c);
  for (const auto& w : watches_) {
    if (w->replica == &r && w->proc == p) return w->restart_pending;
  }
  return false;
}

bool Supervisor::driver_restart_pending() const {
  for (const auto& w : watches_) {
    if (w->replica == nullptr) return w->restart_pending;
  }
  return false;
}

void Supervisor::arm(Watch& w) {
  sim::Process* proc = w.proc;
  const sim::Cycles cost = cfg_.heartbeat_cost;
  Watch* wp = &w;
  w.dog->arm(
      // The probe: a heartbeat job posted into the monitored process. A
      // crashed process silently drops posts, so acks simply stop.
      [proc, cost](std::function<void()> ack) {
        proc->post(cost, [ack = std::move(ack)] { ack(); });
      },
      [this, wp](sim::SimTime silent) { on_silent(*wp, silent); });
}

void Supervisor::on_silent(Watch& w, sim::SimTime silent_for) {
  (void)silent_for;
  if (w.restart_pending) return;  // already being handled
  if (!w.proc->crashed()) {
    // Spurious: the target is alive (e.g. externally restarted before the
    // watchdog noticed the gap). Resume monitoring.
    arm(w);
    return;
  }
  const sim::SimTime now = host_.simulator().now();
  const int rid = w.replica == nullptr ? -1 : w.replica->id();
  const std::string comp =
      w.replica == nullptr ? "nicdrv" : to_string(w.component);
  const std::size_t idx = host_.note_detection(rid, comp, now);
  ++stats_.detections;
  const sim::SimTime lat = host_.event(idx).detection_latency();
  stats_.detection_latency_total += lat;
  stats_.detection_latency_max = std::max(stats_.detection_latency_max, lat);
  host_.metrics().histogram("recovery.crash_to_detect_ns").record(lat);
  if (w.replica == nullptr) {
    handle_driver_death(w, idx);
  } else {
    handle_replica_death(w, idx);
  }
  // `w` may have been destroyed (quarantine / scale-down collect): no
  // member access past this point.
}

void Supervisor::handle_replica_death(Watch& w, std::size_t event_idx) {
  StackReplica& rep = *w.replica;
  const sim::SimTime death_at = host_.event(event_idx).at;
  const bool tcp_loss = w.component == Component::kTcp ||
                        w.component == Component::kWhole ||
                        std::string_view(rep.kind()) == "single";

  // A replica that dies while draining under lazy termination never
  // rejoins steering. If its TCP state is gone there is nothing left to
  // drain: collect it now. Otherwise restart it (below) so the surviving
  // connections finish; the GC collects it as usual.
  if (rep.terminating && tcp_loss) {
    RecoveryEvent& ev = host_.event(event_idx);
    ev.action = "gc";
    ev.recovered_at = host_.simulator().now();
    ++stats_.scale_down_collects;
    host_.collect_replica(rep);  // destroys `w` — return immediately
    return;
  }

  // Crash-loop accounting: an uptime of at least stability_window since
  // the previous recovery resets the consecutive counter.
  LoopState& loop = replica_loop_[rep.id()];
  if (loop.last_recover == 0 ||
      death_at - loop.last_recover >= cfg_.stability_window) {
    loop.consecutive = 1;
  } else {
    ++loop.consecutive;
  }

  if (!rep.terminating && loop.consecutive >= cfg_.quarantine_after) {
    RecoveryEvent& ev = host_.event(event_idx);
    ev.action = "quarantine";
    ev.backoff_level = loop.consecutive - 1;
    ev.recovered_at = host_.simulator().now();
    ++stats_.quarantines;
    host_.quarantine_replica(rep);  // destroys `w`
    if (cfg_.replace_quarantined &&
        host_.spawn_replacement(rep) != nullptr) {
      ++stats_.replacements;
      // The replacement's spawn is part of handling this failure.
      host_.event(event_idx).action = "replace";
    }
    return;
  }

  const int level = loop.consecutive - 1;
  stats_.max_backoff_level = std::max(stats_.max_backoff_level, level);
  host_.event(event_idx).backoff_level = level;
  w.restart_pending = true;
  Watch* wp = &w;
  w.restart_timer = host_.simulator().schedule(
      backoff_delay(level),
      [this, wp, event_idx] { complete_replica_restart(*wp, event_idx); });
}

void Supervisor::complete_replica_restart(Watch& w, std::size_t event_idx) {
  w.restart_pending = false;
  StackReplica& rep = *w.replica;
  const std::size_t restored = host_.recover_replica(rep, w.component);
  RecoveryEvent& ev = host_.event(event_idx);
  ev.recovered_at = host_.simulator().now();
  if (restored > 0) ev.connections_restored = restored;
  ++stats_.restarts;
  replica_loop_[rep.id()].last_recover = host_.simulator().now();
  sim::Simulator& sim = host_.simulator();
  host_.metrics().histogram("recovery.crash_to_recovered_ns")
      .record(ev.recovery_latency());
  sim.tracer().emit({sim.now(), 0, "neat", "restart", 0, rep.id(),
                     "\"since_crash_ns\":" +
                         std::to_string(ev.recovery_latency())});
  // The outage isn't over until the restarted replica serves again: the
  // next accept() on it closes the crash-to-first-service window.
  host_.await_first_service(rep.id(), event_idx);
  arm(w);  // monitor the fresh incarnation
}

void Supervisor::handle_driver_death(Watch& w, std::size_t event_idx) {
  const sim::SimTime death_at = host_.event(event_idx).at;
  if (driver_loop_.last_recover == 0 ||
      death_at - driver_loop_.last_recover >= cfg_.stability_window) {
    driver_loop_.consecutive = 1;
  } else {
    ++driver_loop_.consecutive;
  }
  // The driver is the one component with no replacement (§3.5): backoff
  // grows but it is always restarted.
  const int level = driver_loop_.consecutive - 1;
  stats_.max_backoff_level = std::max(stats_.max_backoff_level, level);
  host_.event(event_idx).backoff_level = level;
  w.restart_pending = true;
  Watch* wp = &w;
  w.restart_timer = host_.simulator().schedule(
      backoff_delay(level),
      [this, wp, event_idx] { complete_driver_restart(*wp, event_idx); });
}

void Supervisor::complete_driver_restart(Watch& w, std::size_t event_idx) {
  w.restart_pending = false;
  host_.recover_driver();
  RecoveryEvent& ev = host_.event(event_idx);
  ev.recovered_at = host_.simulator().now();
  ++stats_.driver_restarts;
  driver_loop_.last_recover = host_.simulator().now();
  sim::Simulator& sim = host_.simulator();
  host_.metrics().histogram("recovery.crash_to_recovered_ns")
      .record(ev.recovery_latency());
  sim.tracer().emit({sim.now(), 0, "neat", "restart", 0, -1,
                     "\"component\":\"nicdrv\",\"since_crash_ns\":" +
                         std::to_string(ev.recovery_latency())});
  arm(w);
}

sim::SimTime Supervisor::backoff_delay(int level) const {
  double d = static_cast<double>(host_.config().restart_delay);
  for (int i = 0; i < level; ++i) d *= cfg_.backoff_multiplier;
  d = std::min(d, static_cast<double>(cfg_.backoff_cap));
  return std::max<sim::SimTime>(1, static_cast<sim::SimTime>(d));
}

}  // namespace neat
