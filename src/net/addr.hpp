// Link- and network-layer addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace neat::net {

/// 48-bit Ethernet MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddr&) const = default;

  [[nodiscard]] bool is_broadcast() const {
    for (auto b : bytes) {
      if (b != 0xff) return false;
    }
    return true;
  }

  [[nodiscard]] static MacAddr broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  /// Locally administered address derived from a small integer id.
  [[nodiscard]] static MacAddr local(std::uint32_t id) {
    return MacAddr{{0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                    static_cast<std::uint8_t>(id >> 16),
                    static_cast<std::uint8_t>(id >> 8),
                    static_cast<std::uint8_t>(id)}};
  }

  [[nodiscard]] std::string str() const;
};

/// IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value{0};

  auto operator<=>(const Ipv4Addr&) const = default;

  [[nodiscard]] static constexpr Ipv4Addr of(std::uint8_t a, std::uint8_t b,
                                             std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr{static_cast<std::uint32_t>(a) << 24 |
                    static_cast<std::uint32_t>(b) << 16 |
                    static_cast<std::uint32_t>(c) << 8 |
                    static_cast<std::uint32_t>(d)};
  }

  [[nodiscard]] static constexpr Ipv4Addr any() { return Ipv4Addr{0}; }
  [[nodiscard]] bool is_any() const { return value == 0; }

  [[nodiscard]] std::string str() const;
};

/// Transport endpoint (address, port).
struct SockAddr {
  Ipv4Addr ip;
  std::uint16_t port{0};

  auto operator<=>(const SockAddr&) const = default;
  [[nodiscard]] std::string str() const;
};

/// Connection 4-tuple as seen from the local host.
struct FlowKey {
  Ipv4Addr local_ip;
  std::uint16_t local_port{0};
  Ipv4Addr remote_ip;
  std::uint16_t remote_port{0};

  auto operator<=>(const FlowKey&) const = default;
  [[nodiscard]] std::string str() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = k.local_ip.value;
    h = h * 0x9e3779b97f4a7c15ULL + k.remote_ip.value;
    h = h * 0x9e3779b97f4a7c15ULL +
        (static_cast<std::uint64_t>(k.local_port) << 16 | k.remote_port);
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace neat::net
