// ARP: wire codec plus a small cache/resolver.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace neat::net {

struct ArpMessage {
  static constexpr std::size_t kSize = 28;

  enum class Op : std::uint16_t { kRequest = 1, kReply = 2 };

  Op op{Op::kRequest};
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  [[nodiscard]] PacketPtr encode() const;
  [[nodiscard]] static std::optional<ArpMessage> decode(Packet& pkt);
};

/// ARP cache + resolution engine. The owner supplies the transmit hook and
/// pumps received ARP messages through handle().
class ArpResolver {
 public:
  using TxHook = std::function<void(const ArpMessage&, MacAddr dst)>;
  using Resolved = std::function<void(MacAddr)>;

  ArpResolver(MacAddr own_mac, Ipv4Addr own_ip, TxHook tx)
      : mac_(own_mac), ip_(own_ip), tx_(std::move(tx)) {}

  /// Look up `ip`; invokes `cb` immediately if cached, otherwise sends an
  /// ARP request and queues the callback.
  void resolve(Ipv4Addr ip, Resolved cb);

  /// Process an incoming ARP message; replies to requests for our IP and
  /// learns mappings from replies (and gratuitous requests).
  void handle(const ArpMessage& msg);

  /// Pre-populate (static entries / tests).
  void insert(Ipv4Addr ip, MacAddr mac);

  [[nodiscard]] std::optional<MacAddr> lookup(Ipv4Addr ip) const;
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  struct IpHash {
    std::size_t operator()(const Ipv4Addr& a) const {
      return std::hash<std::uint32_t>{}(a.value);
    }
  };

  MacAddr mac_;
  Ipv4Addr ip_;
  TxHook tx_;
  std::unordered_map<Ipv4Addr, MacAddr, IpHash> cache_;
  std::unordered_map<Ipv4Addr, std::vector<Resolved>, IpHash> waiting_;
};

}  // namespace neat::net
