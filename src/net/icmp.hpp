// ICMP echo (ping) and error message codec — the subset a server stack needs.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace neat::net {

struct IcmpMessage {
  static constexpr std::size_t kHeaderSize = 8;

  enum class Type : std::uint8_t {
    kEchoReply = 0,
    kDestUnreachable = 3,
    kEchoRequest = 8,
  };

  Type type{Type::kEchoRequest};
  std::uint8_t code{0};
  std::uint16_t ident{0};
  std::uint16_t seq{0};

  /// Prepend the header to `pkt` (payload already present) with checksum.
  void encode(Packet& pkt) const;

  /// Parse + consume; verifies checksum.
  [[nodiscard]] static std::optional<IcmpMessage> decode(Packet& pkt);
};

}  // namespace neat::net
