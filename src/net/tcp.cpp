#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "net/wire.hpp"

namespace neat::net {

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

void TcpHeader::encode(Packet& pkt, Ipv4Addr src, Ipv4Addr dst) const {
  const std::size_t opts = mss_option ? 4 : 0;
  const std::size_t hlen = kMinSize + opts;
  auto b = pkt.push(hlen);
  put_u16(b, 0, src_port);
  put_u16(b, 2, dst_port);
  put_u32(b, 4, seq);
  put_u32(b, 8, ack_flag ? ack : 0);
  put_u8(b, 12, static_cast<std::uint8_t>((hlen / 4) << 4));
  std::uint8_t flags = 0;
  if (fin) flags |= 0x01;
  if (syn) flags |= 0x02;
  if (rst) flags |= 0x04;
  if (psh) flags |= 0x08;
  if (ack_flag) flags |= 0x10;
  put_u8(b, 13, flags);
  put_u16(b, 14, window);
  put_u16(b, 16, 0);  // checksum placeholder
  put_u16(b, 18, 0);  // urgent pointer
  if (mss_option) {
    put_u8(b, 20, 2);  // kind: MSS
    put_u8(b, 21, 4);  // length
    put_u16(b, 22, *mss_option);
  }
  put_u16(pkt.bytes(), 16,
          transport_checksum(src, dst, static_cast<std::uint8_t>(IpProto::kTcp),
                             pkt.bytes()));
}

std::optional<TcpHeader> TcpHeader::decode(Packet& pkt, Ipv4Addr src,
                                           Ipv4Addr dst) {
  if (pkt.size() < kMinSize) return std::nullopt;
  if (!verify_transport_checksum(
          src, dst, static_cast<std::uint8_t>(IpProto::kTcp), pkt.bytes())) {
    return std::nullopt;
  }
  auto whole = pkt.bytes();
  const std::size_t hlen = static_cast<std::size_t>(whole[12] >> 4) * 4;
  if (hlen < kMinSize || hlen > pkt.size()) return std::nullopt;

  TcpHeader h;
  h.src_port = get_u16(whole, 0);
  h.dst_port = get_u16(whole, 2);
  h.seq = get_u32(whole, 4);
  h.ack = get_u32(whole, 8);
  const std::uint8_t flags = whole[13];
  h.fin = flags & 0x01;
  h.syn = flags & 0x02;
  h.rst = flags & 0x04;
  h.psh = flags & 0x08;
  h.ack_flag = flags & 0x10;
  h.window = get_u16(whole, 14);

  // Parse options (we understand MSS; skip the rest).
  std::size_t off = kMinSize;
  while (off < hlen) {
    const std::uint8_t kind = whole[off];
    if (kind == 0) break;   // end of options
    if (kind == 1) {        // NOP
      ++off;
      continue;
    }
    if (off + 1 >= hlen) break;
    const std::uint8_t len = whole[off + 1];
    if (len < 2 || off + len > hlen) break;
    if (kind == 2 && len == 4) h.mss_option = get_u16(whole, off + 2);
    off += len;
  }
  pkt.pull(hlen);
  return h;
}

// ---------------------------------------------------------------------------
// SYN cookies
// ---------------------------------------------------------------------------

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// 26-bit keyed MAC binding the cookie to the full (unmasked) counter, so
/// a stale cookie fails even when its 3-bit tag aliases a current period.
std::uint32_t cookie_mac(std::uint64_t secret, const FlowKey& flow,
                         std::uint32_t client_isn, std::uint32_t count,
                         unsigned mss_idx) {
  std::uint64_t h = mix64(secret ^ 0x4e4561547631ULL);  // "NEaTv1"
  h = mix64(h ^ (static_cast<std::uint64_t>(flow.local_ip.value) << 32 |
                 flow.remote_ip.value));
  h = mix64(h ^ (static_cast<std::uint64_t>(flow.local_port) << 48 |
                 static_cast<std::uint64_t>(flow.remote_port) << 32 |
                 client_isn));
  h = mix64(h ^ (static_cast<std::uint64_t>(count) << 3 | mss_idx));
  return static_cast<std::uint32_t>(h) & 0x03ffffffu;
}

}  // namespace

unsigned syn_cookie_mss_index(std::uint16_t mss) {
  unsigned idx = 0;
  for (unsigned i = 0; i < kSynCookieMss.size(); ++i) {
    if (kSynCookieMss[i] <= mss) idx = i;
  }
  return idx;
}

std::uint32_t syn_cookie_make(std::uint64_t secret, const FlowKey& flow,
                              std::uint32_t client_isn, std::uint32_t count,
                              unsigned mss_idx) {
  mss_idx &= 7u;
  return (count & 7u) << 29 | static_cast<std::uint32_t>(mss_idx) << 26 |
         cookie_mac(secret, flow, client_isn, count, mss_idx);
}

std::optional<std::uint16_t> syn_cookie_check(std::uint64_t secret,
                                              const FlowKey& flow,
                                              std::uint32_t client_isn,
                                              std::uint32_t cookie,
                                              std::uint32_t now_count) {
  const std::uint32_t tag = cookie >> 29;
  const unsigned mss_idx = (cookie >> 26) & 7u;
  const std::uint32_t mac = cookie & 0x03ffffffu;
  // Accept the current and the previous rotation period only.
  for (std::uint32_t age = 0; age <= 1; ++age) {
    if (age > now_count) break;
    const std::uint32_t cand = now_count - age;
    if ((cand & 7u) != tag) continue;
    if (cookie_mac(secret, flow, client_isn, cand, mss_idx) == mac) {
      return kSynCookieMss[mss_idx];
    }
  }
  return std::nullopt;
}

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------------

TcpSocket::TcpSocket(TcpStack& stack, FlowKey flow, const TcpConfig& cfg)
    : stack_(stack),
      flow_(flow),
      cfg_(cfg),
      send_ring_(cfg.send_buf),
      ssthresh_(cfg.recv_buf * 64),  // effectively "infinite" until first loss
      rto_(cfg.rto_initial),
      recv_ring_(cfg.recv_buf) {
  cwnd_ = cfg_.initial_cwnd_segments * cfg_.mss;
  state_entered_ = stack_.env().now();
}

void TcpSocket::set_state(TcpState next) {
  if (next == state_) return;
  const sim::SimTime now = stack_.env().now();
  stack_.record_dwell(state_, now - state_entered_);
  state_ = next;
  state_entered_ = now;
}

TcpSocket::~TcpSocket() {
  rto_timer_.cancel();
  ack_timer_.cancel();
  time_wait_timer_.cancel();
}

std::size_t TcpSocket::send_space() const { return send_ring_.writable(); }

std::size_t TcpSocket::effective_mss() const {
  return std::min<std::size_t>(cfg_.mss, peer_mss_);
}

std::uint16_t TcpSocket::advertised_window() const {
  return static_cast<std::uint16_t>(
      std::min<std::size_t>(recv_ring_.writable(), 65535));
}

void TcpSocket::start_active_open() {
  iss_ = stack_.env().random_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  set_state(TcpState::kSynSent);
  ++stack_.stats_.conns_initiated;
  emit_segment(iss_, 0, /*fin=*/false, /*syn=*/true, /*force_ack=*/false);
  arm_rto();
}

void TcpSocket::start_passive_open(const TcpHeader& syn) {
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  peer_mss_ = syn.mss_option.value_or(536);
  snd_wnd_ = syn.window;
  iss_ = stack_.env().random_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  set_state(TcpState::kSynRcvd);
  emit_segment(iss_, 0, /*fin=*/false, /*syn=*/true, /*force_ack=*/true);
  arm_rto();
}

std::size_t TcpSocket::send(std::span<const std::uint8_t> data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return 0;
  }
  if (fin_queued_) return 0;  // sending after close() is an app bug
  const std::size_t n = send_ring_.write(data);
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_output();
  }
  return n;
}

std::size_t TcpSocket::recv(std::span<std::uint8_t> dst) {
  const std::size_t before = recv_ring_.writable();
  const std::size_t n = recv_ring_.read(dst);
  // Window may have re-opened: let the peer know if it was nearly closed.
  if (n > 0 && before < effective_mss() &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
       state_ == TcpState::kFinWait2)) {
    send_ack_now();  // window update
  }
  deliver_in_order();  // stalled out-of-order data may now fit
  return n;
}

void TcpSocket::close() {
  switch (state_) {
    case TcpState::kSynSent:
      enter_closed(TcpCloseReason::kNormal);
      return;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
      fin_queued_ = true;
      set_state(TcpState::kFinWait1);
      try_output();
      return;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      set_state(TcpState::kLastAck);
      try_output();
      return;
    default:
      return;  // already closing/closed
  }
}

void TcpSocket::abort() {
  if (state_ == TcpState::kClosed) return;
  if (state_ != TcpState::kSynSent && state_ != TcpState::kListen) {
    TcpHeader h;
    h.src_port = flow_.local_port;
    h.dst_port = flow_.remote_port;
    h.seq = snd_nxt_;
    h.rst = true;
    h.ack_flag = true;
    h.ack = rcv_nxt_;
    auto pkt = Packet::make(0);
    h.encode(*pkt, flow_.local_ip, flow_.remote_ip);
    ++stack_.stats_.segments_out;
    ++stack_.stats_.rsts_out;
    stack_.env().tx(std::move(pkt), flow_.local_ip, flow_.remote_ip);
  }
  enter_closed(TcpCloseReason::kNormal);
}

void TcpSocket::on_segment(const TcpHeader& h, PacketPtr payload) {
  if (state_ == TcpState::kClosed) return;

  snd_wnd_ = h.window;

  if (h.rst) {
    // Minimal validation: the RST must be inside the receive window (or be
    // the answer to our SYN).
    if (state_ == TcpState::kSynSent) {
      if (h.ack_flag && h.ack == snd_nxt_) fail(TcpCloseReason::kRefused);
      return;
    }
    if (seq_ge(h.seq, rcv_nxt_ - 1)) fail(TcpCloseReason::kReset);
    return;
  }

  if (state_ == TcpState::kSynSent) {
    if (h.syn && h.ack_flag && h.ack == snd_nxt_) {
      irs_ = h.seq;
      rcv_nxt_ = h.seq + 1;
      peer_mss_ = h.mss_option.value_or(536);
      snd_una_ = h.ack;
      set_state(TcpState::kEstablished);
      retries_ = 0;
      disarm_rto();
      send_ack_now();
      if (cb_.on_established) cb_.on_established();
      try_output();
    } else if (h.syn && !h.ack_flag) {
      // Simultaneous open.
      irs_ = h.seq;
      rcv_nxt_ = h.seq + 1;
      peer_mss_ = h.mss_option.value_or(536);
      set_state(TcpState::kSynRcvd);
      emit_segment(iss_, 0, false, true, true);  // re-send SYN, now with ACK
    }
    return;
  }

  if (state_ == TcpState::kSynRcvd) {
    if (h.syn && !h.ack_flag) {
      // Duplicate SYN: retransmit our SYN|ACK.
      emit_segment(iss_, 0, false, true, true);
      return;
    }
    if (h.ack_flag && h.ack == snd_nxt_) {
      snd_una_ = h.ack;
      set_state(TcpState::kEstablished);
      retries_ = 0;
      disarm_rto();
      stack_.handshake_complete(*this);
      if (cb_.on_established) cb_.on_established();
      // Fall through: the ACK may carry data.
    } else if (!h.ack_flag) {
      return;
    } else {
      return;  // ACK for something else; drop
    }
  }

  if (h.syn) {
    // SYN in a synchronized state: ignore (the peer's SYN retransmission
    // crossing our SYN|ACK loss is handled by our own RTO).
    return;
  }

  if (h.ack_flag) on_ack(h);
  if (state_ == TcpState::kClosed) return;  // on_ack may have finished us

  if (payload && payload->size() > 0) accept_data(h, payload);

  if (h.fin) {
    fin_seen_ = true;
    fin_rcv_seq_ = h.seq + static_cast<std::uint32_t>(payload ? payload->size()
                                                             : 0);
  }
  if (fin_seen_ && !fin_received_ && rcv_nxt_ == fin_rcv_seq_) {
    fin_received_ = true;
    ++rcv_nxt_;
    send_ack_now();
    switch (state_) {
      case TcpState::kEstablished:
        set_state(TcpState::kCloseWait);
        break;
      case TcpState::kFinWait1:
        // Our FIN not yet acked: simultaneous close.
        set_state(TcpState::kClosing);
        break;
      case TcpState::kFinWait2:
        enter_time_wait();
        break;
      default:
        break;
    }
    if (cb_.on_readable) cb_.on_readable();  // EOF is readable
  } else if (fin_received_ && h.fin) {
    send_ack_now();  // retransmitted FIN
    if (state_ == TcpState::kTimeWait) enter_time_wait();  // restart 2MSL
  }
}

void TcpSocket::on_ack(const TcpHeader& h) {
  if (seq_gt(h.ack, snd_nxt_)) {  // acks data we never sent
    send_ack_now();
    return;
  }

  if (seq_le(h.ack, snd_una_)) {
    // Not a new ack. Count duplicates for fast retransmit.
    const bool is_dup = h.ack == snd_una_ && inflight() > 0;
    if (is_dup) {
      ++dupacks_;
      if (dupacks_ == 3 && !in_recovery_) {
        // Fast retransmit + enter fast recovery (NewReno).
        ssthresh_ = std::max(inflight() / 2, 2 * effective_mss());
        recover_ = snd_nxt_;
        in_recovery_ = true;
        ++retransmit_count_;
        ++stack_.stats_.retransmits;
        stack_.count_retransmit();
        rtt_sample_.reset();  // Karn
        const std::size_t len = std::min<std::size_t>(
            effective_mss(), send_ring_.readable());
        if (len > 0) {
          emit_segment(snd_una_, len, false, false, true);
        } else if (fin_sent_) {
          emit_segment(fin_seq_, 0, true, false, true);
        }
        cwnd_ = ssthresh_ + 3 * effective_mss();
      } else if (in_recovery_) {
        cwnd_ += effective_mss();  // inflate
        try_output();
      }
    }
    return;
  }

  // New data acked.
  std::uint32_t acked = h.ack - snd_una_;
  std::uint32_t data_acked = acked;
  if (fin_sent_ && seq_ge(h.ack, fin_seq_ + 1)) --data_acked;  // the FIN
  send_ring_.discard(std::min<std::size_t>(data_acked, send_ring_.readable()));
  snd_una_ = h.ack;
  retries_ = 0;
  dupacks_ = 0;

  if (rtt_sample_ && seq_ge(h.ack, rtt_sample_->first)) {
    update_rtt(stack_.env().now() - rtt_sample_->second);
    rtt_sample_.reset();
  }

  if (in_recovery_) {
    if (seq_ge(h.ack, recover_)) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else {
      // Partial ack: retransmit the next hole immediately.
      ++retransmit_count_;
      ++stack_.stats_.retransmits;
      stack_.count_retransmit();
      const std::size_t len =
          std::min<std::size_t>(effective_mss(), send_ring_.readable());
      if (len > 0) emit_segment(snd_una_, len, false, false, true);
      cwnd_ = cwnd_ > data_acked ? cwnd_ - data_acked + effective_mss()
                                 : effective_mss();
    }
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += std::min<std::size_t>(data_acked, effective_mss());  // slow start
  } else {
    cwnd_ += std::max<std::size_t>(
        1, effective_mss() * effective_mss() / std::max<std::size_t>(cwnd_, 1));
  }

  if (inflight() > 0) {
    arm_rto();  // restart for remaining data
  } else {
    disarm_rto();
  }

  // FIN acknowledged?
  if (fin_sent_ && seq_ge(snd_una_, fin_seq_ + 1)) {
    switch (state_) {
      case TcpState::kFinWait1:
        set_state(TcpState::kFinWait2);
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        enter_closed(TcpCloseReason::kNormal);
        return;
      default:
        break;
    }
  }

  if (cb_.on_writable && send_space() > 0) cb_.on_writable();
  try_output();
}

void TcpSocket::accept_data(const TcpHeader& h, const PacketPtr& payload) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinWait1 &&
      state_ != TcpState::kFinWait2) {
    return;
  }
  const auto data = payload->bytes();
  const std::uint32_t seg_seq = h.seq;
  const auto len = static_cast<std::uint32_t>(data.size());
  stack_.stats_.bytes_in += len;

  if (seq_ge(rcv_nxt_, seg_seq + len)) {
    send_ack_now();  // entirely old; re-ack so the peer can advance
    return;
  }

  if (seq_le(seg_seq, rcv_nxt_)) {
    const std::uint32_t skip = rcv_nxt_ - seg_seq;
    const std::size_t wrote = recv_ring_.write(data.subspan(skip));
    rcv_nxt_ += static_cast<std::uint32_t>(wrote);
    // Bytes beyond our advertised window are dropped; the peer retransmits.
    deliver_in_order();
    schedule_ack(wrote);
    if (wrote > 0 && cb_.on_readable) cb_.on_readable();
  } else {
    // Out of order: stash (bounded) and signal the hole with a dup ack.
    ++stack_.stats_.ooo_segments;
    auto it = std::lower_bound(
        ooo_.begin(), ooo_.end(), seg_seq,
        [](const OooSeg& s, std::uint32_t q) { return s.seq < q; });
    const bool have = it != ooo_.end() && it->seq == seg_seq;
    if (ooo_bytes_ + len <= cfg_.recv_buf * 2 && !have) {
      ooo_.insert(it, OooSeg{seg_seq, {data.begin(), data.end()}});
      ooo_bytes_ += len;
    }
    send_ack_now();
  }
}

void TcpSocket::deliver_in_order() {
  if (delivering_) return;
  delivering_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{delivering_};
  bool progressed = true;
  while (progressed && !ooo_.empty()) {
    progressed = false;
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      const std::uint32_t seq = it->seq;
      auto& bytes = it->bytes;
      const auto len = static_cast<std::uint32_t>(bytes.size());
      if (seq_ge(rcv_nxt_, seq + len)) {
        ooo_bytes_ -= bytes.size();
        it = ooo_.erase(it);  // fully consumed already
        progressed = true;
        continue;
      }
      if (seq_le(seq, rcv_nxt_)) {
        const std::uint32_t skip = rcv_nxt_ - seq;
        const std::size_t wrote = recv_ring_.write(
            std::span<const std::uint8_t>{bytes}.subspan(skip));
        if (wrote == 0) return;  // receive buffer full; stall
        rcv_nxt_ += static_cast<std::uint32_t>(wrote);
        if (skip + wrote == bytes.size()) {
          ooo_bytes_ -= bytes.size();
          it = ooo_.erase(it);
        }
        progressed = true;
        if (cb_.on_readable) cb_.on_readable();
        break;  // restart scan from the beginning
      }
      ++it;
    }
  }
}

void TcpSocket::try_output() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }

  const std::size_t wnd = std::min<std::size_t>(cwnd_, snd_wnd_);
  while (!fin_sent_) {
    // Data bytes in flight; the ring holds [snd_una_, snd_una_ + readable).
    const std::uint32_t sent_unacked = snd_nxt_ - snd_una_;
    const std::size_t ring_bytes = send_ring_.readable();
    assert(ring_bytes >= sent_unacked);
    const std::size_t avail = ring_bytes - sent_unacked;  // not yet sent
    if (avail == 0) break;
    if (wnd <= sent_unacked) {
      // Window closed. If nothing is in flight the RTO acts as our persist
      // timer and will push out a probe.
      if (inflight() == 0) arm_rto();
      break;
    }
    const std::size_t usable = wnd - sent_unacked;
    const std::size_t limit = cfg_.tso ? cfg_.tso_limit : effective_mss();
    const std::size_t len = std::min({avail, usable, limit});
    if (len == 0) break;
    emit_segment(snd_nxt_, len, false, false, true);
    if (!rtt_sample_) rtt_sample_ = {snd_nxt_ + len, stack_.env().now()};
    snd_nxt_ += static_cast<std::uint32_t>(len);
  }

  // Emit the FIN once every byte has been sent.
  if (fin_queued_ && !fin_sent_ &&
      send_ring_.readable() == snd_nxt_ - snd_una_) {
    fin_seq_ = snd_nxt_;
    fin_sent_ = true;
    emit_segment(fin_seq_, 0, true, false, true);
    ++snd_nxt_;
  }

  if (inflight() > 0 && rto_deadline_ == 0) arm_rto();
}

void TcpSocket::emit_segment(std::uint32_t seq, std::size_t len, bool fin,
                             bool syn, bool force_ack) {
  auto pkt = Packet::make(len);
  if (len > 0) {
    const std::size_t off = seq - snd_una_;
    const std::size_t got = send_ring_.peek_at(off, pkt->bytes());
    assert(got == len && "segment data must be in the send ring");
    (void)got;
  }
  TcpHeader h;
  h.src_port = flow_.local_port;
  h.dst_port = flow_.remote_port;
  h.seq = seq;
  h.syn = syn;
  h.fin = fin;
  h.psh = len > 0;
  h.ack_flag = force_ack;
  h.ack = rcv_nxt_;
  h.window = advertised_window();
  if (syn) h.mss_option = static_cast<std::uint16_t>(cfg_.mss);
  h.encode(*pkt, flow_.local_ip, flow_.remote_ip);
  pkt->tso = len > effective_mss();
  ++stack_.stats_.segments_out;
  if (len > 0) {
    ++stack_.stats_.data_segments_out;
  } else if (!syn && !fin) {
    ++stack_.stats_.pure_acks_out;
  }
  stack_.stats_.bytes_out += len;
  ack_timer_.cancel();  // any segment carries the ack
  delack_bytes_ = 0;
  stack_.env().tx(std::move(pkt), flow_.local_ip, flow_.remote_ip);
}

void TcpSocket::send_ack_now() {
  emit_segment(snd_nxt_, 0, false, false, true);
}

void TcpSocket::schedule_ack(std::size_t new_bytes) {
  if (cfg_.delayed_ack == 0) {
    send_ack_now();
    return;
  }
  // RFC 1122: at most one outstanding delayed ACK, and an immediate ACK at
  // least every 2*MSS of received data (counting bytes, not segments — a
  // TSO/LRO super-segment must be acked at once or the sender's window
  // stalls against the delack timer). Any outgoing data segment (the
  // request/response case) piggybacks the ACK and cancels the timer.
  delack_bytes_ += new_bytes;
  if (delack_bytes_ >=
      static_cast<std::size_t>(cfg_.ack_every) * effective_mss()) {
    send_ack_now();
    return;
  }
  if (ack_timer_.pending()) return;
  auto wp = weak_from_this();
  ack_timer_ = stack_.env().start_timer(cfg_.delayed_ack, [wp] {
    if (auto sp = wp.lock()) sp->send_ack_now();
  });
}

void TcpSocket::arm_rto() {
  const sim::SimTime now = stack_.env().now();
  rto_deadline_ = now + rto_;
  // Keep the pending event if it fires no later than the new deadline: it
  // re-checks the deadline and sleeps the remainder (rto_tick). Only a
  // deadline earlier than the pending event (rto_ shrank) reschedules.
  if (rto_timer_.pending() && rto_fire_at_ <= rto_deadline_) return;
  rto_timer_.cancel();
  rto_fire_at_ = rto_deadline_;
  auto wp = weak_from_this();
  rto_timer_ = stack_.env().start_timer(rto_deadline_ - now, [wp] {
    if (auto sp = wp.lock()) sp->rto_tick();
  });
}

void TcpSocket::disarm_rto() { rto_deadline_ = 0; }

void TcpSocket::rto_tick() {
  if (rto_deadline_ == 0) return;  // disarmed while the event was in flight
  const sim::SimTime now = stack_.env().now();
  if (now < rto_deadline_) {
    // Re-armed since this event was scheduled: sleep the remainder.
    rto_fire_at_ = rto_deadline_;
    auto wp = weak_from_this();
    rto_timer_ = stack_.env().start_timer(rto_deadline_ - now, [wp] {
      if (auto sp = wp.lock()) sp->rto_tick();
    });
    return;
  }
  rto_deadline_ = 0;
  on_rto();
}

void TcpSocket::on_rto() {
  ++retries_;
  rtt_sample_.reset();  // Karn: never time retransmitted data

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd) {
    if (retries_ > cfg_.syn_retries) {
      fail(TcpCloseReason::kTimeout);
      return;
    }
    emit_segment(iss_, 0, false, true, state_ == TcpState::kSynRcvd);
    rto_ = std::min(rto_ * 2, cfg_.rto_max);
    arm_rto();
    return;
  }

  if (retries_ > cfg_.data_retries) {
    fail(TcpCloseReason::kTimeout);
    return;
  }

  // Collapse to one MSS and retransmit the first unacked segment.
  ssthresh_ = std::max(inflight() / 2, 2 * effective_mss());
  cwnd_ = effective_mss();
  in_recovery_ = false;
  dupacks_ = 0;

  const std::size_t len =
      std::min<std::size_t>(effective_mss(), send_ring_.readable());
  if (len > 0) {
    ++retransmit_count_;
    ++stack_.stats_.retransmits;
    stack_.count_retransmit();
    emit_segment(snd_una_, len, false, false, true);
  } else if (fin_sent_ && seq_le(fin_seq_, snd_una_)) {
    ++retransmit_count_;
    ++stack_.stats_.retransmits;
    stack_.count_retransmit();
    emit_segment(fin_seq_, 0, true, false, true);
  } else if (send_ring_.readable() > 0) {
    // Zero-window probe: push one byte past the window.
    ++retransmit_count_;
    emit_segment(snd_una_, 1, false, false, true);
    snd_nxt_ = std::max(snd_nxt_, snd_una_ + 1);
  }
  rto_ = std::min(rto_ * 2, cfg_.rto_max);
  arm_rto();
}

void TcpSocket::update_rtt(sim::SimTime measured) {
  stack_.record_rtt(measured);
  if (srtt_ == 0) {
    srtt_ = measured;
    rttvar_ = measured / 2;
  } else {
    const auto diff = srtt_ > measured ? srtt_ - measured : measured - srtt_;
    rttvar_ = (3 * rttvar_ + diff) / 4;
    srtt_ = (7 * srtt_ + measured) / 8;
  }
  rto_ = std::clamp(srtt_ + std::max<sim::SimTime>(4 * rttvar_, sim::kMillisecond),
                    cfg_.rto_min, cfg_.rto_max);
}

void TcpSocket::enter_time_wait() {
  set_state(TcpState::kTimeWait);
  disarm_rto();
  // TIME_WAIT only needs the connection identity and timers — holding
  // buffer memory here would pin gigabytes under connection churn.
  send_ring_.release();
  if (recv_ring_.empty()) recv_ring_.release();
  ooo_.clear();
  ooo_bytes_ = 0;
  time_wait_timer_.cancel();
  auto wp = weak_from_this();
  time_wait_timer_ = stack_.env().start_timer(cfg_.time_wait, [wp] {
    if (auto sp = wp.lock()) sp->enter_closed(TcpCloseReason::kNormal);
  });
}

void TcpSocket::enter_closed(TcpCloseReason reason) {
  if (state_ == TcpState::kClosed) return;
  if (state_ == TcpState::kSynRcvd) stack_.handshake_dropped();
  set_state(TcpState::kClosed);
  disarm_rto();
  ack_timer_.cancel();
  time_wait_timer_.cancel();
  auto self = shared_from_this();  // keep alive across callback + unmap
  if (cb_.on_closed) cb_.on_closed(reason);
  stack_.socket_closed(*this);
  send_ring_.release();
  recv_ring_.release();
  ooo_.clear();
  ooo_bytes_ = 0;
}

void TcpSocket::fail(TcpCloseReason reason) {
  if (reason == TcpCloseReason::kTimeout || reason == TcpCloseReason::kRefused)
    ++stack_.stats_.conns_failed;
  if (reason == TcpCloseReason::kReset) ++stack_.stats_.rsts_in;
  enter_closed(reason);
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpSocketPtr TcpListener::accept() {
  while (!accept_q_.empty()) {
    TcpSocketPtr s = std::move(accept_q_.front());
    accept_q_.pop_front();
    if (s->state() != TcpState::kClosed) return s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(TcpEnv& env, Ipv4Addr local_ip, TcpConfig cfg)
    : env_(env), local_ip_(local_ip), cfg_(cfg) {
  next_ephemeral_ = static_cast<std::uint16_t>(
      49152 + env_.random_u32() % 16000);
  cookie_secret_ =
      static_cast<std::uint64_t>(env_.random_u32()) << 32 | env_.random_u32();
}

TcpListener* TcpStack::listen(std::uint16_t port, std::size_t backlog) {
  auto [it, inserted] =
      listeners_.emplace(port, std::make_unique<TcpListener>(port, backlog));
  return inserted ? it->second.get() : nullptr;
}

void TcpStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

std::uint16_t TcpStack::ephemeral_port() {
  for (int tries = 0; tries < 16384; ++tries) {
    const std::uint16_t p = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 65535 ? 49152 : next_ephemeral_ + 1;
    if (port_use_[p] == 0) return p;
  }
  return 0;
}

TcpSocketPtr TcpStack::connect(SockAddr remote, std::uint16_t local_port,
                               bool defer_syn) {
  if (local_port == 0) local_port = ephemeral_port();
  if (local_port == 0) return nullptr;
  FlowKey key{local_ip_, local_port, remote.ip, remote.port};
  if (conns_.contains(key)) return nullptr;
  auto sock = std::make_shared<TcpSocket>(*this, key, cfg_);
  insert_conn(key, sock);
  if (!defer_syn) sock->start_active_open();
  return sock;
}

void TcpStack::rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt) {
  ++stats_.segments_in;
  auto h = TcpHeader::decode(*pkt, src, dst);
  if (!h) {
    // Wire corruption caught by the transport checksum (or a mangled
    // header): drop silently, exactly like a real stack, but leave an
    // audit trail on the obs hub for the chaos campaigns.
    ++stats_.checksum_drops;
    if (obs::Hub* hub = env_.obs_hub()) {
      if (checksum_drop_counter_ == nullptr) {
        checksum_drop_counter_ = &hub->metrics.counter("tcp.checksum_drops");
      }
      checksum_drop_counter_->inc();
    }
    return;
  }
  if (h->rst) ++stats_.rsts_in;
  const FlowKey key{dst, h->dst_port, src, h->src_port};
  if (auto it = conns_.find(key); it != conns_.end()) {
    TcpSocketPtr s = it->second;  // keep alive: handler may close/erase
    s->on_segment(*h, std::move(pkt));
    return;
  }
  if (h->syn && !h->ack_flag) {
    auto lit = listeners_.find(h->dst_port);
    if (lit != listeners_.end()) {
      TcpListener& l = *lit->second;
      if (cfg_.syn_cookies) {
        // Stateless: answer with a cookie SYN|ACK and forget the SYN ever
        // happened. No TCB, no pending-handshake slot, no backlog entry —
        // a spoofed SYN costs this host nothing that outlives the reply.
        send_cookie_synack(*h, key);
        return;
      }
      if (l.accept_q_.size() + pending_handshakes_ < l.backlog_) {
        auto sock = std::make_shared<TcpSocket>(*this, key, cfg_);
        insert_conn(key, sock);
        ++pending_handshakes_;
        sock->start_passive_open(*h);
      } else {
        // Silently drop the SYN (backlog overflow) — the client retries.
        ++stats_.syns_dropped_backlog;
      }
      return;
    }
  }
  if (try_cookie_accept(*h, key, pkt)) return;
  // A frame for a flow that migrated away can still be in flight through
  // this replica's RX channel when the extract runs (the NIC capture window
  // closes the NIC side, not the channel side). It is stale, not an error:
  // drop it silently — the peer's copy was captured and replayed at the
  // target. An RST here would kill the migrated connection.
  if (migrated_out_.contains(key)) return;
  if (!h->rst) {
    send_rst_for(*h, src, dst, pkt ? pkt->size() : 0);
  }
}

void TcpStack::rx_batch(std::vector<SegmentArrival>&& batch,
                        const std::function<bool()>& alive) {
  if (batch.empty()) return;
  // Per-burst (not per-segment) observability: one timestamped histogram
  // record covers the whole batch. Virtual time cannot advance inside this
  // job, so every segment in the burst shares the timestamp anyway.
  if (obs::Hub* hub = env_.obs_hub()) {
    if (rx_batch_hist_ == nullptr) {
      rx_batch_hist_ = &hub->metrics.histogram("tcp.rx_batch_size");
    }
    rx_batch_hist_->record(batch.size());
  }
  for (auto& a : batch) {
    if (alive && !alive()) break;
    rx(a.src, a.dst, std::move(a.seg));
  }
}

std::uint32_t TcpStack::cookie_count() const {
  const sim::SimTime period =
      std::max<sim::SimTime>(cfg_.syn_cookie_rotate, 1);
  return static_cast<std::uint32_t>(env_.now() / period);
}

void TcpStack::send_cookie_synack(const TcpHeader& syn, const FlowKey& key) {
  const unsigned mss_idx = syn_cookie_mss_index(syn.mss_option.value_or(536));
  TcpHeader h;
  h.src_port = key.local_port;
  h.dst_port = key.remote_port;
  h.seq = syn_cookie_make(cookie_secret_, key, syn.seq, cookie_count(),
                          mss_idx);
  h.ack = syn.seq + 1;
  h.syn = true;
  h.ack_flag = true;
  h.window = static_cast<std::uint16_t>(
      std::min<std::size_t>(cfg_.recv_buf, 65535));
  h.mss_option = static_cast<std::uint16_t>(cfg_.mss);
  auto pkt = Packet::make(0);
  h.encode(*pkt, key.local_ip, key.remote_ip);
  ++stats_.segments_out;
  ++stats_.syn_cookies_sent;
  env_.tx(std::move(pkt), key.local_ip, key.remote_ip);
}

bool TcpStack::try_cookie_accept(const TcpHeader& h, const FlowKey& key,
                                 PacketPtr& pkt) {
  if (!cfg_.syn_cookies || h.syn || h.rst || !h.ack_flag) return false;
  auto lit = listeners_.find(key.local_port);
  if (lit == listeners_.end()) return false;
  // The client echoes cookie+1 in the ACK; its first segment after the
  // handshake (pure ACK or ACK+data) carries seq = client_isn + 1.
  const std::uint32_t cookie = h.ack - 1;
  const std::uint32_t client_isn = h.seq - 1;
  const std::optional<std::uint16_t> mss = syn_cookie_check(
      cookie_secret_, key, client_isn, cookie, cookie_count());
  if (!mss) {
    // Forged or expired cookie: allocate nothing, let the caller RST.
    ++stats_.syn_cookies_rejected;
    return false;
  }
  auto sock = std::make_shared<TcpSocket>(*this, key, cfg_);
  insert_conn(key, sock);
  sock->iss_ = cookie;
  sock->snd_una_ = cookie + 1;
  sock->snd_nxt_ = cookie + 1;
  sock->irs_ = client_isn;
  sock->rcv_nxt_ = client_isn + 1;
  sock->peer_mss_ = *mss;
  sock->snd_wnd_ = h.window;
  sock->set_state(TcpState::kEstablished);
  ++stats_.syn_cookies_accepted;
  handshake_complete(*sock);
  // The validating ACK may carry the connection's first data bytes.
  sock->on_segment(h, std::move(pkt));
  return true;
}

void TcpStack::handshake_complete(TcpSocket& s) {
  if (pending_handshakes_ > 0) --pending_handshakes_;
  ++stats_.conns_accepted;
  if (obs::Hub* hub = env_.obs_hub()) {
    if (handshake_counter_ == nullptr) {
      handshake_counter_ = &hub->metrics.counter("tcp.handshakes");
    }
    handshake_counter_->inc();
    hub->tracer.emit({env_.now(), 0, "tcp", "handshake_done", 0,
                      s.flow().local_port,
                      "\"port\":" + std::to_string(s.flow().local_port)});
  }
  auto lit = listeners_.find(s.flow().local_port);
  if (lit == listeners_.end()) {
    s.abort();  // listener vanished between SYN and ACK
    return;
  }
  lit->second->accept_q_.push_back(s.shared_from_this());
  // Deferred NIC filter install: the peer completed the handshake, so it
  // has earned a steering filter (spoofed SYNs never reach this point).
  env_.on_flow_established(s.flow());
  if (lit->second->on_ready_) lit->second->on_ready_();
}

void TcpStack::record_rtt(sim::SimTime rtt) {
  obs::Hub* hub = env_.obs_hub();
  if (hub == nullptr) return;
  if (rtt_hist_ == nullptr) rtt_hist_ = &hub->metrics.histogram("tcp.rtt_ns");
  rtt_hist_->record(rtt);
}

void TcpStack::count_retransmit() {
  obs::Hub* hub = env_.obs_hub();
  if (hub == nullptr) return;
  if (retx_counter_ == nullptr) {
    retx_counter_ = &hub->metrics.counter("tcp.retransmits");
  }
  retx_counter_->inc();
}

void TcpStack::record_dwell(TcpState s, sim::SimTime dwell) {
  obs::Hub* hub = env_.obs_hub();
  if (hub == nullptr) return;
  auto& slot = dwell_hist_[static_cast<std::size_t>(s)];
  if (slot == nullptr) {
    slot = &hub->metrics.histogram(std::string("tcp.state_dwell.") +
                                   to_string(s) + "_ns");
  }
  slot->record(dwell);
}

void TcpStack::send_rst_for(const TcpHeader& h, Ipv4Addr src, Ipv4Addr dst,
                            std::size_t payload_len) {
  TcpHeader rst;
  rst.src_port = h.dst_port;
  rst.dst_port = h.src_port;
  rst.rst = true;
  if (h.ack_flag) {
    rst.seq = h.ack;
  } else {
    rst.seq = 0;
    rst.ack_flag = true;
    rst.ack = h.seq + static_cast<std::uint32_t>(payload_len) +
              (h.syn ? 1 : 0) + (h.fin ? 1 : 0);
  }
  auto pkt = Packet::make(0);
  rst.encode(*pkt, dst, src);
  ++stats_.segments_out;
  ++stats_.rsts_out;
  env_.tx(std::move(pkt), dst, src);
}

void TcpStack::socket_closed(TcpSocket& s) { erase_conn(s.flow()); }

std::size_t TcpStack::active_connection_count() const {
  std::size_t n = 0;
  for (const auto& [key, sock] : conns_) {
    if (sock->state() != TcpState::kTimeWait &&
        sock->state() != TcpState::kClosed) {
      ++n;
    }
  }
  return n;
}

void TcpStack::for_each_connection(
    const std::function<void(TcpSocket&)>& fn) {
  // Copy handles first: fn may close sockets and mutate the table.
  std::vector<TcpSocketPtr> snapshot;
  snapshot.reserve(conns_.size());
  for (auto& [key, sock] : conns_) snapshot.push_back(sock);
  for (auto& s : snapshot) fn(*s);
}

TcpCheckpoint TcpStack::snapshot() const {
  TcpCheckpoint cp;
  cp.taken_at = env_.now();
  for (const auto& [key, sock] : conns_) {
    if (sock->state_ != TcpState::kEstablished) continue;
    TcpConnSnapshot s;
    s.flow = key;
    s.iss = sock->iss_;
    s.irs = sock->irs_;
    s.snd_una = sock->snd_una_;
    s.rcv_nxt = sock->rcv_nxt_;
    s.snd_wnd = sock->snd_wnd_;
    s.peer_mss = sock->peer_mss_;
    s.send_buf.resize(sock->send_ring_.readable());
    sock->send_ring_.peek(s.send_buf);
    s.recv_buf.resize(sock->recv_ring_.readable());
    sock->recv_ring_.peek(s.recv_buf);
    s.snd_nxt = sock->snd_nxt_;
    cp.conns.push_back(std::move(s));
  }
  return cp;
}

TcpCheckpoint TcpStack::extract_for_migration() {
  TcpCheckpoint cp;
  cp.taken_at = env_.now();
  std::vector<TcpSocketPtr> moving;
  for (const auto& [key, sock] : conns_) {
    if (sock->state_ == TcpState::kEstablished) moving.push_back(sock);
  }
  for (const auto& sock : moving) {
    TcpConnSnapshot s;
    s.flow = sock->flow_;
    s.iss = sock->iss_;
    s.irs = sock->irs_;
    s.snd_una = sock->snd_una_;
    s.rcv_nxt = sock->rcv_nxt_;
    s.snd_wnd = sock->snd_wnd_;
    s.peer_mss = sock->peer_mss_;
    s.send_buf.resize(sock->send_ring_.readable());
    sock->send_ring_.peek(s.send_buf);
    s.recv_buf.resize(sock->recv_ring_.readable());
    sock->recv_ring_.peek(s.recv_buf);
    s.snd_nxt = sock->snd_nxt_;
    for (const auto& seg : sock->ooo_) s.ooo.push_back({seg.seq, seg.bytes});
    s.fin_seen = sock->fin_seen_;
    s.fin_rcv_seq = sock->fin_rcv_seq_;
    // A connection the app never accepted lives in the listener queue; it
    // must be re-enqueued at the target, not re-homed to a socket object.
    if (auto lit = listeners_.find(sock->flow_.local_port);
        lit != listeners_.end()) {
      auto& q = lit->second->accept_q_;
      if (auto qit = std::find(q.begin(), q.end(), sock); qit != q.end()) {
        s.unaccepted = true;
        q.erase(qit);
      }
    }
    cp.conns.push_back(std::move(s));
    migrated_out_.insert(sock->flow_);
    // Remove silently, like destroy_all_state(): no FIN, no RST. The peer
    // must observe nothing but a short pause — the connection continues
    // from the checkpoint at the target. Drop the receive side so an app
    // read racing the re-home cannot consume bytes the checkpoint already
    // carries (they would be delivered twice).
    sock->recv_ring_.clear();
    sock->ooo_.clear();
    sock->ooo_bytes_ = 0;
    sock->state_ = TcpState::kClosed;
    sock->rto_timer_.cancel();
    sock->rto_deadline_ = 0;
    sock->ack_timer_.cancel();
    sock->time_wait_timer_.cancel();
    erase_conn(sock->flow_);
  }
  return cp;
}

std::vector<TcpSocketPtr> TcpStack::adopt(const TcpCheckpoint& cp) {
  std::vector<TcpSocketPtr> adopted;
  for (const auto& s : cp.conns) {
    migrated_out_.erase(s.flow);  // the flow may be migrating back here
    if (conns_.contains(s.flow)) continue;
    auto sock = std::make_shared<TcpSocket>(*this, s.flow, cfg_);
    sock->state_ = TcpState::kEstablished;
    sock->state_entered_ = env_.now();
    sock->iss_ = s.iss;
    sock->irs_ = s.irs;
    sock->snd_una_ = s.snd_una;
    // Unlike checkpoint restore, migration is byte-exact: nothing was lost
    // between extract and adopt (the NIC capture buffer replays the gap),
    // so output resumes from snd_nxt. Congestion state restarts from the
    // initial window — a deliberate slow-start restart after the move.
    sock->snd_nxt_ = s.snd_nxt;
    sock->rcv_nxt_ = s.rcv_nxt;
    sock->snd_wnd_ = s.snd_wnd;
    sock->peer_mss_ = s.peer_mss;
    sock->send_ring_.write(s.send_buf);
    sock->recv_ring_.write(s.recv_buf);
    for (const auto& seg : s.ooo) {
      sock->ooo_.push_back({seg.seq, seg.bytes});
      sock->ooo_bytes_ += seg.bytes.size();
    }
    sock->fin_seen_ = s.fin_seen;
    sock->fin_rcv_seq_ = s.fin_rcv_seq;
    insert_conn(s.flow, sock);
    if (sock->inflight() > 0) sock->arm_rto();
    // Un-transmitted send-ring bytes must not wait for an inbound event
    // that may never come (the peer could be idle, waiting for us).
    sock->try_output();
    if (s.unaccepted) {
      auto lit = listeners_.find(s.flow.local_port);
      if (lit == listeners_.end()) {
        sock->abort();  // nobody will ever accept it here
        continue;
      }
      lit->second->accept_q_.push_back(sock);
      if (lit->second->on_ready_) lit->second->on_ready_();
    } else {
      adopted.push_back(sock);
    }
  }
  return adopted;
}

std::vector<TcpSocketPtr> TcpStack::restore(const TcpCheckpoint& cp) {
  std::vector<TcpSocketPtr> restored;
  for (const auto& s : cp.conns) {
    if (conns_.contains(s.flow)) continue;
    auto sock = std::make_shared<TcpSocket>(*this, s.flow, cfg_);
    sock->state_ = TcpState::kEstablished;
    sock->state_entered_ = env_.now();
    sock->iss_ = s.iss;
    sock->irs_ = s.irs;
    sock->snd_una_ = s.snd_una;
    // Everything unacked at checkpoint time counts as lost in flight:
    // resume output from snd_una so try_output() retransmits it all.
    sock->snd_nxt_ = s.snd_una;
    sock->rcv_nxt_ = s.rcv_nxt;
    sock->snd_wnd_ = s.snd_wnd;
    sock->peer_mss_ = s.peer_mss;
    sock->send_ring_.write(s.send_buf);
    sock->recv_ring_.write(s.recv_buf);
    insert_conn(s.flow, sock);
    restored.push_back(sock);
    sock->try_output();
    // Tell the peer where we stand; a peer that advanced past our
    // checkpoint will answer with data/acks that resynchronize us — or
    // the connection stalls out and dies by timeout.
    sock->send_ack_now();
  }
  return restored;
}

void TcpStack::destroy_all_state() {
  auto conns = std::move(conns_);
  conns_.clear();
  std::fill(port_use_.begin(), port_use_.end(), 0);
  listeners_.clear();
  migrated_out_.clear();
  pending_handshakes_ = 0;
  // Sockets die silently: no FIN, no RST — exactly what a crash looks like
  // to the peers. Destructors cancel all timers.
  for (auto& [key, sock] : conns) {
    sock->state_ = TcpState::kClosed;
    sock->rto_timer_.cancel();
    sock->rto_deadline_ = 0;
    sock->ack_timer_.cancel();
    sock->time_wait_timer_.cancel();
  }
}

}  // namespace neat::net
