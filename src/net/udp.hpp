// UDP: wire codec and a minimal port mux.
//
// The paper treats UDP as the easy case — stateless, so any replica can
// process any datagram and recovery is trivial. The mux below is what a
// NEaT UDP component wraps.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace neat::net {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};

  /// Prepend header; computes length and the pseudo-header checksum.
  void encode(Packet& pkt, Ipv4Addr src, Ipv4Addr dst) const;

  /// Parse + consume; verifies checksum (nullopt on corruption).
  [[nodiscard]] static std::optional<UdpHeader> decode(Packet& pkt,
                                                       Ipv4Addr src,
                                                       Ipv4Addr dst);
};

/// Datagram delivery mux: bind(port) -> receive callback.
class UdpMux {
 public:
  struct Datagram {
    SockAddr from;
    SockAddr to;
    PacketPtr payload;
  };
  using Receiver = std::function<void(Datagram)>;

  /// Returns false if the port is taken.
  bool bind(std::uint16_t port, Receiver rx) {
    auto [it, inserted] = bound_.emplace(port, std::move(rx));
    (void)it;
    return inserted;
  }

  void unbind(std::uint16_t port) { bound_.erase(port); }
  [[nodiscard]] bool is_bound(std::uint16_t port) const {
    return bound_.contains(port);
  }

  /// Forget every binding (crash recovery: the mux is soft state that dies
  /// with its process; the host replays durable binds onto the restarted
  /// replica).
  void clear() { bound_.clear(); }
  [[nodiscard]] std::size_t bound_count() const { return bound_.size(); }

  /// Datagrams handed to a receiver on this mux (per-replica steering
  /// visibility for tests and benches).
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

  /// Deliver a decoded datagram; returns false if no receiver (caller may
  /// emit ICMP port-unreachable).
  bool deliver(const UdpHeader& h, Ipv4Addr src, Ipv4Addr dst,
               PacketPtr payload) {
    auto it = bound_.find(h.dst_port);
    if (it == bound_.end()) return false;
    ++delivered_;
    it->second(Datagram{SockAddr{src, h.src_port}, SockAddr{dst, h.dst_port},
                        std::move(payload)});
    return true;
  }

 private:
  std::unordered_map<std::uint16_t, Receiver> bound_;
  std::uint64_t delivered_{0};
};

}  // namespace neat::net
