// Packet buffer with headroom for in-place header push/pull.
//
// Packets are real byte strings: every layer serializes a genuine wire
// header (checksums included) on transmit and parses it on receive, so the
// protocol code in this repository is testable against the actual formats —
// only the passage of time is simulated.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace neat::net {

class Packet;
using PacketPtr = std::shared_ptr<Packet>;

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 64;

  /// Allocate with `payload` bytes of content and room to prepend headers.
  [[nodiscard]] static PacketPtr make(std::size_t payload,
                                      std::size_t headroom = kDefaultHeadroom) {
    return std::make_shared<Packet>(payload, headroom);
  }

  /// Allocate with content copied from `data`.
  [[nodiscard]] static PacketPtr of(std::span<const std::uint8_t> data,
                                    std::size_t headroom = kDefaultHeadroom) {
    auto p = make(data.size(), headroom);
    auto b = p->bytes();
    for (std::size_t i = 0; i < data.size(); ++i) b[i] = data[i];
    return p;
  }

  Packet(std::size_t payload, std::size_t headroom)
      : buf_(headroom + payload), head_(headroom) {}

  /// Deep copy (duplication injection, loopback).
  [[nodiscard]] PacketPtr clone() const {
    auto p = std::make_shared<Packet>(*this);
    return p;
  }

  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }

  [[nodiscard]] std::span<std::uint8_t> bytes() {
    return {buf_.data() + head_, size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {buf_.data() + head_, size()};
  }

  /// Prepend `n` bytes (push a header); returns the new front region.
  std::span<std::uint8_t> push(std::size_t n) {
    assert(head_ >= n && "insufficient headroom");
    head_ -= n;
    return {buf_.data() + head_, n};
  }

  /// Consume `n` bytes from the front (pop a header); returns them.
  std::span<const std::uint8_t> pull(std::size_t n) {
    assert(size() >= n && "pulling past end of packet");
    auto r = std::span<const std::uint8_t>{buf_.data() + head_, n};
    head_ += n;
    return r;
  }

  /// Trim the packet to `n` bytes of content (drop trailing padding).
  void truncate(std::size_t n) {
    assert(n <= size());
    buf_.resize(head_ + n);
  }

  // --- out-of-band metadata (not on the wire) -----------------------------

  /// NIC RX queue this packet was steered to; -1 before classification.
  int rx_queue{-1};
  /// True when this buffer is a TSO super-segment that the NIC will cut
  /// into MTU-sized frames on the wire (we charge wire time for the total).
  bool tso{false};
  /// Ingress timestamp set by the NIC (for latency accounting in tests).
  std::uint64_t nic_rx_time{0};

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_;
};

}  // namespace neat::net
