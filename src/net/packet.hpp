// Packet buffer with headroom for in-place header push/pull.
//
// Packets are real byte strings: every layer serializes a genuine wire
// header (checksums included) on transmit and parses it on receive, so the
// protocol code in this repository is testable against the actual formats —
// only the passage of time is simulated.
//
// Buffers come from an optional per-simulator freelist (net::PacketPool,
// installed with a PacketPool::Use scope): a dropped packet returns its
// byte vector to the pool, and the next Packet::make of a similar size
// reuses it instead of calling the allocator. Reused buffers are
// indistinguishable from fresh ones — same size, same headroom, zeroed.
// Without an installed pool every buffer is plain heap (bare unit tests).
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace neat::net {

class Packet;
using PacketPtr = std::shared_ptr<Packet>;

namespace detail {

/// Shared freelist state. Lives behind a shared_ptr: every pooled Packet
/// holds a reference, so buffers recycle safely no matter which of the
/// pool and the packet dies first.
struct PoolCore {
  /// Buffers are bucketed by capacity: bucket b holds kMinBytes << b.
  static constexpr std::size_t kMinBytes = 128;
  static constexpr std::size_t kBuckets = 12;  // up to 256 KiB
  /// Retention cap per bucket; beyond it returned buffers are freed.
  static constexpr std::size_t kMaxPerBucket = 4096;

  struct Stats {
    std::uint64_t fresh{0};         ///< buffers the allocator provided
    std::uint64_t reused{0};        ///< buffers served from the freelist
    std::uint64_t recycled{0};      ///< buffers accepted back
    std::uint64_t dropped_full{0};  ///< returns refused (bucket at cap)
  };

  std::array<std::vector<std::vector<std::uint8_t>>, kBuckets> free;
  Stats stats;
  // Optional live export (PacketPool::bind); null until bound.
  obs::Counter* fresh_ctr{nullptr};
  obs::Counter* reused_ctr{nullptr};
  obs::Counter* recycled_ctr{nullptr};

  /// Bucket that serves a request of `n` bytes, or -1 if oversized.
  [[nodiscard]] static int bucket_for(std::size_t n) {
    if (n <= kMinBytes) return 0;
    const int b = std::bit_width(n - 1) - 7;  // ceil(log2(n)) - log2(128)
    return b < static_cast<int>(kBuckets) ? b : -1;
  }

  /// Largest bucket a buffer of `capacity` can serve (floor), or -1.
  [[nodiscard]] static int bucket_of_capacity(std::size_t capacity) {
    if (capacity < kMinBytes) return -1;
    const int b = std::bit_width(capacity) - 8;  // floor(log2(cap)) - 7
    return b < static_cast<int>(kBuckets) ? b
                                          : static_cast<int>(kBuckets) - 1;
  }

  [[nodiscard]] std::vector<std::uint8_t> take(std::size_t need) {
    const int b = bucket_for(need);
    if (b >= 0 && !free[static_cast<std::size_t>(b)].empty()) {
      auto& bucket = free[static_cast<std::size_t>(b)];
      std::vector<std::uint8_t> buf = std::move(bucket.back());
      bucket.pop_back();
      ++stats.reused;
      if (reused_ctr != nullptr) reused_ctr->inc();
      buf.assign(need, 0);  // same size and contents as a fresh buffer
      return buf;
    }
    ++stats.fresh;
    if (fresh_ctr != nullptr) fresh_ctr->inc();
    std::vector<std::uint8_t> buf;
    // Round the capacity up to the bucket size so the buffer lands back in
    // the bucket that served it (and assign() below never reallocates).
    if (b >= 0) buf.reserve(kMinBytes << b);
    buf.assign(need, 0);
    return buf;
  }

  void give(std::vector<std::uint8_t>&& buf) {
    const int b = bucket_of_capacity(buf.capacity());
    if (b < 0 || free[static_cast<std::size_t>(b)].size() >= kMaxPerBucket) {
      ++stats.dropped_full;
      return;  // buf freed normally
    }
    ++stats.recycled;
    if (recycled_ctr != nullptr) recycled_ctr->inc();
    free[static_cast<std::size_t>(b)].push_back(std::move(buf));
  }
};

/// Pool installed for the current thread (the sim is single-threaded; this
/// is a plain pointer swap per PacketPool::Use scope, not a lock).
[[nodiscard]] inline const std::shared_ptr<PoolCore>*& current_pool() {
  thread_local const std::shared_ptr<PoolCore>* cur = nullptr;
  return cur;
}

}  // namespace detail

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 64;

  /// Allocate with `payload` bytes of content and room to prepend headers.
  /// Served from the installed PacketPool when one is in scope.
  [[nodiscard]] static PacketPtr make(std::size_t payload,
                                      std::size_t headroom = kDefaultHeadroom) {
    if (const auto* pool = detail::current_pool()) {
      return std::make_shared<Packet>((*pool)->take(headroom + payload),
                                      headroom, *pool);
    }
    return std::make_shared<Packet>(payload, headroom);
  }

  /// Allocate with content copied from `data`.
  [[nodiscard]] static PacketPtr of(std::span<const std::uint8_t> data,
                                    std::size_t headroom = kDefaultHeadroom) {
    auto p = make(data.size(), headroom);
    if (!data.empty()) {
      std::memcpy(p->buf_.data() + p->head_, data.data(), data.size());
    }
    return p;
  }

  Packet(std::size_t payload, std::size_t headroom)
      : buf_(headroom + payload), head_(headroom) {}

  /// Pooled buffer (already sized headroom + payload, zeroed); returns to
  /// `core` on destruction.
  Packet(std::vector<std::uint8_t> buf, std::size_t headroom,
         std::shared_ptr<detail::PoolCore> core)
      : buf_(std::move(buf)), head_(headroom), core_(std::move(core)) {}

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  ~Packet() {
    if (core_) core_->give(std::move(buf_));
  }

  /// Deep copy (duplication injection, loopback). Pool-aware: the copy's
  /// buffer comes from the installed pool like any other allocation.
  [[nodiscard]] PacketPtr clone() const {
    auto p = make(size(), head_);
    if (size() > 0) {
      std::memcpy(p->buf_.data() + p->head_, buf_.data() + head_, size());
    }
    p->rx_queue = rx_queue;
    p->tso = tso;
    p->nic_rx_time = nic_rx_time;
    return p;
  }

  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }

  [[nodiscard]] std::span<std::uint8_t> bytes() {
    return {buf_.data() + head_, size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {buf_.data() + head_, size()};
  }

  /// Prepend `n` bytes (push a header); returns the new front region.
  std::span<std::uint8_t> push(std::size_t n) {
    assert(head_ >= n && "insufficient headroom");
    head_ -= n;
    return {buf_.data() + head_, n};
  }

  /// Consume `n` bytes from the front (pop a header); returns them.
  std::span<const std::uint8_t> pull(std::size_t n) {
    assert(size() >= n && "pulling past end of packet");
    auto r = std::span<const std::uint8_t>{buf_.data() + head_, n};
    head_ += n;
    return r;
  }

  /// Trim the packet to `n` bytes of content (drop trailing padding).
  void truncate(std::size_t n) {
    assert(n <= size());
    buf_.resize(head_ + n);
  }

  // --- out-of-band metadata (not on the wire) -----------------------------

  /// NIC RX queue this packet was steered to; -1 before classification.
  int rx_queue{-1};
  /// True when this buffer is a TSO super-segment that the NIC will cut
  /// into MTU-sized frames on the wire (we charge wire time for the total).
  bool tso{false};
  /// Ingress timestamp set by the NIC (for latency accounting in tests).
  std::uint64_t nic_rx_time{0};

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_;
  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace neat::net
