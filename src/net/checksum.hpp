// RFC 1071 Internet checksum, with the TCP/UDP pseudo-header variant.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "net/addr.hpp"

namespace neat::net {

/// Incremental ones-complement sum accumulator.
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) {
    std::size_t i = 0;
    if (odd_ && !data.empty()) {
      // Pair the dangling byte from the previous chunk with this one.
      sum_ += static_cast<std::uint32_t>(pending_) << 8 | data[0];
      odd_ = false;
      i = 1;
    }
    // Bulk: fold 8 bytes per iteration with end-around carry. RFC 1071 §2(B)
    // — the ones-complement sum is byte-order independent, so the partial
    // sum over native-order words equals the big-endian-word sum after a
    // byte swap. Only whole 16-bit words enter this path, so stream parity
    // is preserved for the tail loop below.
    if (i + 8 <= data.size()) {
      std::uint64_t s = 0;
      for (; i + 8 <= data.size(); i += 8) {
        std::uint64_t w;
        std::memcpy(&w, data.data() + i, 8);
        s += w;
        if (s < w) ++s;  // end-around carry
      }
      s = (s & 0xffffffffULL) + (s >> 32);
      while (s >> 16) s = (s & 0xffffULL) + (s >> 16);
      auto native = static_cast<std::uint16_t>(s);
      if constexpr (std::endian::native == std::endian::little) {
        native = static_cast<std::uint16_t>(native << 8 | native >> 8);
      }
      sum_ += native;
    }
    for (; i + 1 < data.size(); i += 2) {
      sum_ += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    }
    if (i < data.size()) {
      pending_ = data[i];
      odd_ = true;
    }
  }

  void add_u16(std::uint16_t v) {
    if (!odd_) {
      sum_ += v;  // already a whole big-endian word
      return;
    }
    std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v)};
    add({b, 2});
  }

  void add_u32(std::uint32_t v) {
    if (!odd_) {
      sum_ += (v >> 16) + (v & 0xffff);
      return;
    }
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v));
  }

  /// Final ones-complement checksum (already inverted, ready for the wire).
  [[nodiscard]] std::uint16_t finish() const {
    std::uint64_t s = sum_;
    if (odd_) s += static_cast<std::uint32_t>(pending_) << 8;
    while (s >> 16) s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s);
  }

 private:
  std::uint64_t sum_{0};
  std::uint8_t pending_{0};
  bool odd_{false};
};

/// Plain checksum over a buffer (IPv4 header checksum).
[[nodiscard]] inline std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

/// Transport checksum with IPv4 pseudo-header (TCP=6, UDP=17).
[[nodiscard]] inline std::uint16_t transport_checksum(
    Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
    std::span<const std::uint8_t> segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value);
  acc.add_u32(dst.value);
  acc.add_u16(protocol);
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

/// Verify: summing a buffer whose checksum field is filled must give 0.
[[nodiscard]] inline bool verify_transport_checksum(
    Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
    std::span<const std::uint8_t> segment) {
  return transport_checksum(src, dst, protocol, segment) == 0;
}

}  // namespace neat::net
