// Stateless packet filter — the PF component of a multi-component replica.
//
// Rules match on the IPv4 5-tuple with wildcards, first match wins; the
// default policy is accept. Being stateless, the component hosting this
// filter recovers transparently from crashes: rules are re-installed from
// configuration (Table 3 discussion).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "net/ipv4.hpp"

namespace neat::net {

struct FilterRule {
  enum class Action { kAccept, kDrop };

  Action action{Action::kDrop};
  std::optional<IpProto> proto;      // nullopt = any
  std::optional<Ipv4Addr> src_ip;    // nullopt = any
  std::optional<Ipv4Addr> dst_ip;
  std::optional<std::uint16_t> src_port;  // only meaningful for TCP/UDP
  std::optional<std::uint16_t> dst_port;
  std::string label;

  mutable std::uint64_t hits{0};
};

class PacketFilter {
 public:
  /// Append a rule (evaluated in insertion order).
  void add_rule(FilterRule rule) { rules_.push_back(std::move(rule)); }
  void clear() { rules_.clear(); }
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] const std::vector<FilterRule>& rules() const { return rules_; }

  /// Evaluate a packet. Ports are 0 when the protocol has none.
  [[nodiscard]] bool accept(IpProto proto, Ipv4Addr src, Ipv4Addr dst,
                            std::uint16_t src_port,
                            std::uint16_t dst_port) const {
    for (const auto& r : rules_) {
      if (r.proto && *r.proto != proto) continue;
      if (r.src_ip && *r.src_ip != src) continue;
      if (r.dst_ip && *r.dst_ip != dst) continue;
      if (r.src_port && *r.src_port != src_port) continue;
      if (r.dst_port && *r.dst_port != dst_port) continue;
      ++r.hits;
      return r.action == FilterRule::Action::kAccept;
    }
    ++default_hits_;
    return true;  // default accept
  }

  [[nodiscard]] std::uint64_t default_hits() const { return default_hits_; }

 private:
  std::vector<FilterRule> rules_;
  mutable std::uint64_t default_hits_{0};
};

}  // namespace neat::net
