// Ethernet II framing.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace neat::net {

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  EtherType type{EtherType::kIpv4};

  /// Prepend this header to `pkt`.
  void encode(Packet& pkt) const;

  /// Parse and consume the header from the front of `pkt`.
  [[nodiscard]] static std::optional<EthernetHeader> decode(Packet& pkt);
};

/// Standard Ethernet MTU (payload bytes available to IP).
inline constexpr std::size_t kEthernetMtu = 1500;

/// Minimum frame payload (we account padding in wire time, not in buffers).
inline constexpr std::size_t kEthernetMinPayload = 46;

/// Per-frame wire overhead: preamble(8) + header(14) + FCS(4) + IFG(12).
inline constexpr std::size_t kEthernetWireOverhead = 38;

}  // namespace neat::net
