// UDP and ICMP wire codecs.
#include "net/checksum.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"
#include "net/wire.hpp"

namespace neat::net {

void UdpHeader::encode(Packet& pkt, Ipv4Addr src, Ipv4Addr dst) const {
  const auto len = static_cast<std::uint16_t>(pkt.size() + kSize);
  auto b = pkt.push(kSize);
  put_u16(b, 0, src_port);
  put_u16(b, 2, dst_port);
  put_u16(b, 4, len);
  put_u16(b, 6, 0);
  std::uint16_t csum = transport_checksum(
      src, dst, static_cast<std::uint8_t>(IpProto::kUdp), pkt.bytes());
  if (csum == 0) csum = 0xffff;  // RFC 768: 0 means "no checksum"
  put_u16(pkt.bytes(), 6, csum);
}

std::optional<UdpHeader> UdpHeader::decode(Packet& pkt, Ipv4Addr src,
                                           Ipv4Addr dst) {
  if (pkt.size() < kSize) return std::nullopt;
  auto whole = pkt.bytes();
  const std::uint16_t len = get_u16(whole, 4);
  if (len < kSize || len > pkt.size()) return std::nullopt;
  pkt.truncate(len);
  if (get_u16(whole, 6) != 0 &&
      !verify_transport_checksum(src, dst,
                                 static_cast<std::uint8_t>(IpProto::kUdp),
                                 pkt.bytes())) {
    return std::nullopt;
  }
  auto b = pkt.pull(kSize);
  UdpHeader h;
  h.src_port = get_u16(b, 0);
  h.dst_port = get_u16(b, 2);
  return h;
}

void IcmpMessage::encode(Packet& pkt) const {
  auto b = pkt.push(kHeaderSize);
  put_u8(b, 0, static_cast<std::uint8_t>(type));
  put_u8(b, 1, code);
  put_u16(b, 2, 0);
  put_u16(b, 4, ident);
  put_u16(b, 6, seq);
  put_u16(pkt.bytes(), 2, internet_checksum(pkt.bytes()));
}

std::optional<IcmpMessage> IcmpMessage::decode(Packet& pkt) {
  if (pkt.size() < kHeaderSize) return std::nullopt;
  if (internet_checksum(pkt.bytes()) != 0) return std::nullopt;
  auto b = pkt.pull(kHeaderSize);
  IcmpMessage m;
  m.type = static_cast<Type>(get_u8(b, 0));
  m.code = get_u8(b, 1);
  m.ident = get_u16(b, 4);
  m.seq = get_u16(b, 6);
  return m;
}

}  // namespace neat::net
