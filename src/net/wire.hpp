// Big-endian (network byte order) wire encoding helpers.
#pragma once

#include <cstdint>
#include <span>

namespace neat::net {

inline void put_u8(std::span<std::uint8_t> b, std::size_t off,
                   std::uint8_t v) {
  b[off] = v;
}
inline void put_u16(std::span<std::uint8_t> b, std::size_t off,
                    std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}
inline void put_u32(std::span<std::uint8_t> b, std::size_t off,
                    std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 24);
  b[off + 1] = static_cast<std::uint8_t>(v >> 16);
  b[off + 2] = static_cast<std::uint8_t>(v >> 8);
  b[off + 3] = static_cast<std::uint8_t>(v);
}

[[nodiscard]] inline std::uint8_t get_u8(std::span<const std::uint8_t> b,
                                         std::size_t off) {
  return b[off];
}
[[nodiscard]] inline std::uint16_t get_u16(std::span<const std::uint8_t> b,
                                           std::size_t off) {
  return static_cast<std::uint16_t>(b[off] << 8 | b[off + 1]);
}
[[nodiscard]] inline std::uint32_t get_u32(std::span<const std::uint8_t> b,
                                           std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) << 24 |
         static_cast<std::uint32_t>(b[off + 1]) << 16 |
         static_cast<std::uint32_t>(b[off + 2]) << 8 |
         static_cast<std::uint32_t>(b[off + 3]);
}

}  // namespace neat::net
