// IPv4: header codec, fragmentation and reassembly, protocol demux.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace neat::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // we do not emit IP options

  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto{IpProto::kTcp};
  std::uint8_t ttl{64};
  std::uint16_t ident{0};
  std::uint16_t total_length{0};  // filled by encode from packet size
  bool dont_fragment{true};
  bool more_fragments{false};
  std::uint16_t fragment_offset{0};  // in 8-byte units

  /// Prepend the header (computes total_length & checksum).
  void encode(Packet& pkt) const;

  /// Parse + consume from the front of `pkt`; verifies checksum and trims
  /// link-layer padding to total_length. Returns nullopt on corruption.
  [[nodiscard]] static std::optional<Ipv4Header> decode(Packet& pkt);
};

/// Splits an IP payload into fragments fitting `mtu`. Returns packets that
/// each already carry their IPv4 header.
[[nodiscard]] std::vector<PacketPtr> ipv4_fragment(const Ipv4Header& hdr,
                                                   const Packet& payload,
                                                   std::size_t mtu);

/// Reassembly buffer for fragmented datagrams, keyed by (src,dst,proto,id).
class Ipv4Reassembler {
 public:
  struct Result {
    Ipv4Header header;
    PacketPtr payload;
  };

  explicit Ipv4Reassembler(std::size_t max_datagrams = 256)
      : max_datagrams_(max_datagrams) {}

  /// Feed one fragment (header already decoded, pkt = payload only).
  /// Returns the reassembled datagram when complete.
  std::optional<Result> add(const Ipv4Header& hdr, const PacketPtr& payload);

  /// Drop partial datagrams older than the caller's deadline policy.
  void expire_all() { partial_.clear(); }

  [[nodiscard]] std::size_t pending() const { return partial_.size(); }

 private:
  struct Key {
    std::uint32_t src, dst;
    std::uint16_t id;
    std::uint8_t proto;
    auto operator<=>(const Key&) const = default;
  };
  struct Partial {
    std::map<std::uint16_t, std::vector<std::uint8_t>> frags;  // off->bytes
    std::optional<std::uint16_t> total_len;
    Ipv4Header first_header;
  };
  std::map<Key, Partial> partial_;
  std::size_t max_datagrams_;
};

}  // namespace neat::net
