// Per-simulator freelist of packet buffers.
//
// The data path allocates and frees a byte vector per packet — two
// allocator round-trips per frame, tens of millions per bench run. A
// PacketPool short-circuits them: when a pooled Packet dies its buffer
// goes back to a capacity-bucketed freelist, and the next Packet::make of
// a similar size reuses it. Install with a PacketPool::Use scope (the
// harness Testbed does this; bare unit tests that never install a pool
// get plain heap buffers and are unaffected).
//
// Reused buffers are fully reinitialized — same size, same headroom, all
// bytes zeroed — so pooling is observationally transparent; the property
// test in tests/test_fastpath.cpp pins this down.
#pragma once

#include <memory>

#include "net/packet.hpp"
#include "obs/obs.hpp"

namespace neat::net {

class PacketPool {
 public:
  using Stats = detail::PoolCore::Stats;

  PacketPool() : core_(std::make_shared<detail::PoolCore>()) {}

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Export live alloc/recycle counters through the simulation's
  /// observability hub (pool.fresh / pool.reused / pool.recycled).
  void bind(obs::Hub& hub) {
    core_->fresh_ctr = &hub.metrics.counter("pool.fresh");
    core_->reused_ctr = &hub.metrics.counter("pool.reused");
    core_->recycled_ctr = &hub.metrics.counter("pool.recycled");
  }

  /// Detach from the hub. Must be called before the hub dies if the pool
  /// (or any pooled packet) can outlive it — buffers released during
  /// simulator teardown would otherwise bump freed counters.
  void unbind() {
    core_->fresh_ctr = nullptr;
    core_->reused_ctr = nullptr;
    core_->recycled_ctr = nullptr;
  }

  [[nodiscard]] const Stats& stats() const { return core_->stats; }

  /// RAII install scope: while alive, every Packet::make on this thread is
  /// served by this pool. Nests (restores the previous pool on exit).
  class Use {
   public:
    explicit Use(PacketPool& pool) : prev_(detail::current_pool()) {
      detail::current_pool() = &pool.core_;
    }
    ~Use() { detail::current_pool() = prev_; }

    Use(const Use&) = delete;
    Use& operator=(const Use&) = delete;

   private:
    const std::shared_ptr<detail::PoolCore>* prev_;
  };

 private:
  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace neat::net
