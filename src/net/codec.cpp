// Wire codecs for addresses, Ethernet, IPv4 and ARP.
#include <algorithm>
#include <cstdio>

#include "net/addr.hpp"
#include "net/arp.hpp"
#include "net/checksum.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/wire.hpp"

namespace neat::net {

// ---------------------------------------------------------------------------
// Address formatting
// ---------------------------------------------------------------------------

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value >> 24 & 0xff,
                value >> 16 & 0xff, value >> 8 & 0xff, value & 0xff);
  return buf;
}

std::string SockAddr::str() const {
  return ip.str() + ":" + std::to_string(port);
}

std::string FlowKey::str() const {
  return SockAddr{local_ip, local_port}.str() + "<->" +
         SockAddr{remote_ip, remote_port}.str();
}

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

void EthernetHeader::encode(Packet& pkt) const {
  auto b = pkt.push(kSize);
  std::copy(dst.bytes.begin(), dst.bytes.end(), b.begin());
  std::copy(src.bytes.begin(), src.bytes.end(), b.begin() + 6);
  put_u16(b, 12, static_cast<std::uint16_t>(type));
}

std::optional<EthernetHeader> EthernetHeader::decode(Packet& pkt) {
  if (pkt.size() < kSize) return std::nullopt;
  auto b = pkt.pull(kSize);
  EthernetHeader h;
  std::copy(b.begin(), b.begin() + 6, h.dst.bytes.begin());
  std::copy(b.begin() + 6, b.begin() + 12, h.src.bytes.begin());
  const auto t = get_u16(b, 12);
  if (t != static_cast<std::uint16_t>(EtherType::kIpv4) &&
      t != static_cast<std::uint16_t>(EtherType::kArp)) {
    return std::nullopt;
  }
  h.type = static_cast<EtherType>(t);
  return h;
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

void Ipv4Header::encode(Packet& pkt) const {
  const auto total = static_cast<std::uint16_t>(pkt.size() + kSize);
  auto b = pkt.push(kSize);
  put_u8(b, 0, 0x45);  // version 4, IHL 5
  put_u8(b, 1, 0);     // DSCP/ECN
  put_u16(b, 2, total);
  put_u16(b, 4, ident);
  std::uint16_t flags_frag = fragment_offset & 0x1fff;
  if (dont_fragment) flags_frag |= 0x4000;
  if (more_fragments) flags_frag |= 0x2000;
  put_u16(b, 6, flags_frag);
  put_u8(b, 8, ttl);
  put_u8(b, 9, static_cast<std::uint8_t>(proto));
  put_u16(b, 10, 0);  // checksum placeholder
  put_u32(b, 12, src.value);
  put_u32(b, 16, dst.value);
  put_u16(b, 10, internet_checksum(b.subspan(0, kSize)));
}

std::optional<Ipv4Header> Ipv4Header::decode(Packet& pkt) {
  if (pkt.size() < kSize) return std::nullopt;
  auto whole = pkt.bytes();
  const std::uint8_t vihl = whole[0];
  if ((vihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(vihl & 0x0f) * 4;
  if (ihl < kSize || pkt.size() < ihl) return std::nullopt;
  if (internet_checksum(whole.subspan(0, ihl)) != 0) return std::nullopt;

  Ipv4Header h;
  h.total_length = get_u16(whole, 2);
  if (h.total_length < ihl || h.total_length > pkt.size()) return std::nullopt;
  h.ident = get_u16(whole, 4);
  const std::uint16_t ff = get_u16(whole, 6);
  h.dont_fragment = (ff & 0x4000) != 0;
  h.more_fragments = (ff & 0x2000) != 0;
  h.fragment_offset = ff & 0x1fff;
  h.ttl = get_u8(whole, 8);
  h.proto = static_cast<IpProto>(get_u8(whole, 9));
  h.src = Ipv4Addr{get_u32(whole, 12)};
  h.dst = Ipv4Addr{get_u32(whole, 16)};

  pkt.truncate(h.total_length);  // strip link-layer padding
  pkt.pull(ihl);
  return h;
}

std::vector<PacketPtr> ipv4_fragment(const Ipv4Header& hdr,
                                     const Packet& payload, std::size_t mtu) {
  std::vector<PacketPtr> out;
  const std::size_t max_data = (mtu - Ipv4Header::kSize) & ~std::size_t{7};
  const auto data = payload.bytes();
  if (data.size() + Ipv4Header::kSize <= mtu) {
    auto p = Packet::of(data);
    Ipv4Header h = hdr;
    h.more_fragments = false;
    h.fragment_offset = 0;
    h.encode(*p);
    out.push_back(std::move(p));
    return out;
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min(max_data, data.size() - off);
    auto p = Packet::of(data.subspan(off, n));
    Ipv4Header h = hdr;
    h.dont_fragment = false;
    h.fragment_offset = static_cast<std::uint16_t>(off / 8);
    h.more_fragments = off + n < data.size();
    h.encode(*p);
    out.push_back(std::move(p));
    off += n;
  }
  return out;
}

std::optional<Ipv4Reassembler::Result> Ipv4Reassembler::add(
    const Ipv4Header& hdr, const PacketPtr& payload) {
  if (!hdr.more_fragments && hdr.fragment_offset == 0) {
    return Result{hdr, payload};  // unfragmented fast path
  }
  const Key key{hdr.src.value, hdr.dst.value, hdr.ident,
                static_cast<std::uint8_t>(hdr.proto)};
  if (partial_.size() >= max_datagrams_ && !partial_.contains(key)) {
    partial_.erase(partial_.begin());  // evict oldest-keyed (bounded memory)
  }
  Partial& part = partial_[key];
  if (hdr.fragment_offset == 0) part.first_header = hdr;
  auto data = payload->bytes();
  part.frags[hdr.fragment_offset].assign(data.begin(), data.end());
  if (!hdr.more_fragments) {
    part.total_len = static_cast<std::uint16_t>(hdr.fragment_offset * 8 +
                                                data.size());
  }
  if (!part.total_len) return std::nullopt;

  // Check contiguity.
  std::size_t expect = 0;
  for (const auto& [off, bytes] : part.frags) {
    if (static_cast<std::size_t>(off) * 8 != expect) return std::nullopt;
    expect += bytes.size();
  }
  if (expect != *part.total_len) return std::nullopt;

  auto whole = Packet::make(expect);
  auto out = whole->bytes();
  std::size_t pos = 0;
  for (const auto& [off, bytes] : part.frags) {
    std::copy(bytes.begin(), bytes.end(), out.begin() + static_cast<long>(pos));
    pos += bytes.size();
  }
  Ipv4Header h = part.first_header;
  h.more_fragments = false;
  h.fragment_offset = 0;
  partial_.erase(key);
  return Result{h, whole};
}

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

PacketPtr ArpMessage::encode() const {
  auto p = Packet::make(kSize);
  auto b = p->bytes();
  put_u16(b, 0, 1);       // HTYPE Ethernet
  put_u16(b, 2, 0x0800);  // PTYPE IPv4
  put_u8(b, 4, 6);        // HLEN
  put_u8(b, 5, 4);        // PLEN
  put_u16(b, 6, static_cast<std::uint16_t>(op));
  std::copy(sender_mac.bytes.begin(), sender_mac.bytes.end(), b.begin() + 8);
  put_u32(b, 14, sender_ip.value);
  std::copy(target_mac.bytes.begin(), target_mac.bytes.end(), b.begin() + 18);
  put_u32(b, 24, target_ip.value);
  return p;
}

std::optional<ArpMessage> ArpMessage::decode(Packet& pkt) {
  if (pkt.size() < kSize) return std::nullopt;
  auto b = pkt.pull(kSize);
  if (get_u16(b, 0) != 1 || get_u16(b, 2) != 0x0800) return std::nullopt;
  ArpMessage m;
  const auto op = get_u16(b, 6);
  if (op != 1 && op != 2) return std::nullopt;
  m.op = static_cast<Op>(op);
  std::copy(b.begin() + 8, b.begin() + 14, m.sender_mac.bytes.begin());
  m.sender_ip = Ipv4Addr{get_u32(b, 14)};
  std::copy(b.begin() + 18, b.begin() + 24, m.target_mac.bytes.begin());
  m.target_ip = Ipv4Addr{get_u32(b, 24)};
  return m;
}

void ArpResolver::resolve(Ipv4Addr ip, Resolved cb) {
  if (auto it = cache_.find(ip); it != cache_.end()) {
    cb(it->second);
    return;
  }
  const bool already_asking = waiting_.contains(ip);
  waiting_[ip].push_back(std::move(cb));
  if (!already_asking) {
    ArpMessage req;
    req.op = ArpMessage::Op::kRequest;
    req.sender_mac = mac_;
    req.sender_ip = ip_;
    req.target_mac = MacAddr{};
    req.target_ip = ip;
    tx_(req, MacAddr::broadcast());
  }
}

void ArpResolver::handle(const ArpMessage& msg) {
  // Learn the sender mapping (also from gratuitous ARP).
  if (!msg.sender_ip.is_any()) {
    cache_[msg.sender_ip] = msg.sender_mac;
    if (auto it = waiting_.find(msg.sender_ip); it != waiting_.end()) {
      auto cbs = std::move(it->second);
      waiting_.erase(it);
      for (auto& cb : cbs) cb(msg.sender_mac);
    }
  }
  if (msg.op == ArpMessage::Op::kRequest && msg.target_ip == ip_) {
    ArpMessage reply;
    reply.op = ArpMessage::Op::kReply;
    reply.sender_mac = mac_;
    reply.sender_ip = ip_;
    reply.target_mac = msg.sender_mac;
    reply.target_ip = msg.sender_ip;
    tx_(reply, msg.sender_mac);
  }
}

void ArpResolver::insert(Ipv4Addr ip, MacAddr mac) { cache_[ip] = mac; }

std::optional<MacAddr> ArpResolver::lookup(Ipv4Addr ip) const {
  if (auto it = cache_.find(ip); it != cache_.end()) return it->second;
  return std::nullopt;
}

}  // namespace neat::net
