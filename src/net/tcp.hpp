// TCP: wire codec and a complete connection state machine.
//
// This is the stateful heart of every NEaT replica — the component whose
// failures are the only ones that lose visible state (Table 3). The
// implementation is a compact but real TCP:
//
//  * three-way handshake (active + passive open) with MSS negotiation,
//  * sliding-window byte-stream transfer with flow control,
//  * retransmission: RFC 6298 RTO estimation + Karn's algorithm, exponential
//    backoff, and 3-dupACK fast retransmit,
//  * Reno congestion control (slow start / congestion avoidance / fast
//    recovery),
//  * out-of-order reassembly, checksum verification, RST generation and
//    handling, the full close dance incl. TIME_WAIT (paper §4 calls the
//    TIME_WAIT timeout out as a control-plane knob),
//  * optional TSO-sized segments (the NIC cuts them into MTU frames).
//
// The protocol logic is pure: all timing/transmission is delegated to a
// TcpEnv supplied by the containing component, so the same class runs inside
// a single-component NEaT replica, the TCP process of a multi-component
// replica, the Linux-baseline kernel model, and the unit tests.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ipc/byte_ring.hpp"
#include "obs/obs.hpp"
#include "net/addr.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace neat::net {

// --------------------------------------------------------------------------
// Wire format
// --------------------------------------------------------------------------

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  bool syn{false};
  bool ack_flag{false};
  bool fin{false};
  bool rst{false};
  bool psh{false};
  std::uint16_t window{0};
  std::optional<std::uint16_t> mss_option;  // only meaningful on SYN

  /// Prepend the header to `pkt` (payload present) and fill the checksum.
  void encode(Packet& pkt, Ipv4Addr src, Ipv4Addr dst) const;

  /// Parse + consume; verifies the pseudo-header checksum.
  [[nodiscard]] static std::optional<TcpHeader> decode(Packet& pkt,
                                                       Ipv4Addr src,
                                                       Ipv4Addr dst);
};

// Sequence-number arithmetic (mod 2^32).
[[nodiscard]] inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
[[nodiscard]] inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
[[nodiscard]] inline bool seq_gt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
[[nodiscard]] inline bool seq_ge(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

// --------------------------------------------------------------------------
// Configuration & environment
// --------------------------------------------------------------------------

struct TcpConfig {
  std::size_t mss{1460};
  std::size_t send_buf{98304};
  std::size_t recv_buf{98304};
  std::uint32_t initial_cwnd_segments{10};
  sim::SimTime rto_initial{200 * sim::kMillisecond};
  sim::SimTime rto_min{50 * sim::kMillisecond};
  sim::SimTime rto_max{8 * sim::kSecond};
  /// Delayed-ACK timeout (Linux uses 40-200 ms); 0 = ACK immediately.
  sim::SimTime delayed_ack{40 * sim::kMillisecond};
  int ack_every{2};  ///< with delayed_ack: immediate ACK every 2*MSS bytes
  /// TIME_WAIT hold time; a pure control-plane setting in NEaT (§4). The
  /// default is far below 2MSL to bound simulation state, as documented in
  /// DESIGN.md.
  sim::SimTime time_wait{500 * sim::kMillisecond};
  int syn_retries{5};
  int data_retries{8};
  bool tso{true};
  std::size_t tso_limit{65535 - 120};  ///< max bytes per emitted segment
  /// SYN-cookie mode (RFC 4987 shape): a listener under cookies answers
  /// every SYN with a stateless SYN|ACK whose ISN encodes the connection
  /// parameters — no TCB exists until the final ACK validates. Spoofed
  /// SYNs therefore allocate nothing.
  bool syn_cookies{false};
  /// Cookie secret rotation period; a cookie is accepted for the current
  /// and the previous period (so the handshake RTT may straddle a
  /// rotation), then expires.
  sim::SimTime syn_cookie_rotate{500 * sim::kMillisecond};
};

// --------------------------------------------------------------------------
// SYN cookies
// --------------------------------------------------------------------------
//
// Cookie ISN layout (32 bits):   [31:29] counter mod 8
//                                [28:26] MSS table index
//                                [25:0]  26-bit MAC over
//                                        (secret, 4-tuple, client ISN,
//                                         counter, MSS index)
// The functions are pure so tests can pin golden vectors.

/// MSS values encodable in a cookie (3 bits). Offered MSS is rounded down.
inline constexpr std::array<std::uint16_t, 8> kSynCookieMss{
    536, 1220, 1440, 1460, 2960, 4380, 8760, 9000};

/// Largest kSynCookieMss index whose value is <= mss.
[[nodiscard]] unsigned syn_cookie_mss_index(std::uint16_t mss);

/// Build the cookie ISN for a SYN from `flow` (as seen locally) carrying
/// `client_isn`, at rotation-counter `count`.
[[nodiscard]] std::uint32_t syn_cookie_make(std::uint64_t secret,
                                            const FlowKey& flow,
                                            std::uint32_t client_isn,
                                            std::uint32_t count,
                                            unsigned mss_idx);

/// Validate a cookie echoed back in an ACK. Returns the negotiated MSS, or
/// nullopt if the MAC fails or the cookie is older than one rotation.
[[nodiscard]] std::optional<std::uint16_t> syn_cookie_check(
    std::uint64_t secret, const FlowKey& flow, std::uint32_t client_isn,
    std::uint32_t cookie, std::uint32_t now_count);

/// Host environment a TcpStack runs in; implemented by each containing
/// component (replica process, kernel model, test fixture).
class TcpEnv {
 public:
  virtual ~TcpEnv() = default;
  [[nodiscard]] virtual sim::SimTime now() = 0;
  /// Start a cancellable timer in the component's context.
  virtual sim::EventHandle start_timer(sim::SimTime delay,
                                       std::function<void()> fn) = 0;
  /// Transmit a finished TCP segment towards IP.
  virtual void tx(PacketPtr segment, Ipv4Addr src, Ipv4Addr dst) = 0;
  /// Randomness for ISS and ephemeral ports.
  virtual std::uint32_t random_u32() = 0;
  /// Observability hub of the enclosing simulation; nullptr disables all
  /// metric/trace recording (bare unit-test environments).
  [[nodiscard]] virtual obs::Hub* obs_hub() { return nullptr; }
  /// A passive connection reached ESTABLISHED. NEaT replicas use this to
  /// install the NIC exact-match steering filter only once the peer has
  /// proven liveness (deferred filter install — spoofed SYNs never get
  /// one). Default: nothing.
  virtual void on_flow_established(const FlowKey&) {}
};

// --------------------------------------------------------------------------
// Sockets
// --------------------------------------------------------------------------

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

[[nodiscard]] const char* to_string(TcpState s);

enum class TcpCloseReason {
  kNormal,       ///< orderly FIN exchange completed
  kReset,        ///< peer sent RST
  kTimeout,      ///< retransmission limit exceeded
  kRefused,      ///< SYN answered by RST
  kStackFailure  ///< replica crashed; set by recovery logic
};

class TcpStack;

/// One TCP connection. Obtain via TcpStack::connect() or a listener's
/// accept queue. All app-facing calls are non-blocking.
class TcpSocket : public std::enable_shared_from_this<TcpSocket> {
 public:
  struct Callbacks {
    std::function<void()> on_established;
    std::function<void()> on_readable;  ///< data or EOF available
    std::function<void()> on_writable;  ///< send space freed
    std::function<void(TcpCloseReason)> on_closed;
  };

  TcpSocket(TcpStack& stack, FlowKey flow, const TcpConfig& cfg);
  ~TcpSocket();

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] const FlowKey& flow() const { return flow_; }
  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  /// Queue bytes for transmission; returns how many were accepted
  /// (bounded by send-buffer space).
  std::size_t send(std::span<const std::uint8_t> data);

  /// Read received bytes; returns bytes read (0 = nothing available —
  /// check eof() to distinguish from EOF).
  std::size_t recv(std::span<std::uint8_t> dst);

  [[nodiscard]] std::size_t readable() const { return recv_ring_.readable(); }
  [[nodiscard]] std::size_t send_space() const;
  [[nodiscard]] bool eof() const {
    return fin_received_ && recv_ring_.empty();
  }

  /// Orderly close: FIN after all queued data drains.
  void close();

  /// Abortive close: RST immediately.
  void abort();

  /// Bytes in flight (unacknowledged).
  [[nodiscard]] std::size_t inflight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmit_count_; }
  [[nodiscard]] std::size_t cwnd() const { return cwnd_; }
  [[nodiscard]] sim::SimTime srtt() const { return srtt_; }

 private:
  friend class TcpStack;

  void start_active_open();
  void start_passive_open(const TcpHeader& syn);
  /// Single choke point for state transitions: records the dwell time of
  /// the state being left into the per-state histograms.
  void set_state(TcpState next);
  void on_segment(const TcpHeader& h, PacketPtr payload);
  void on_ack(const TcpHeader& h);
  void accept_data(const TcpHeader& h, const PacketPtr& payload);
  void deliver_in_order();
  void try_output();
  void emit_segment(std::uint32_t seq, std::size_t len, bool fin, bool syn,
                    bool force_ack);
  void send_ack_now();
  void schedule_ack(std::size_t new_bytes);
  void arm_rto();
  void disarm_rto();
  void rto_tick();
  void on_rto();
  void update_rtt(sim::SimTime measured);
  void enter_time_wait();
  void enter_closed(TcpCloseReason reason);
  void fail(TcpCloseReason reason);
  [[nodiscard]] std::uint16_t advertised_window() const;
  [[nodiscard]] std::size_t effective_mss() const;

  TcpStack& stack_;
  FlowKey flow_;
  const TcpConfig& cfg_;
  TcpState state_{TcpState::kClosed};
  sim::SimTime state_entered_{0};
  Callbacks cb_;

  // Send side. send_ring_ holds [snd_una_, snd_una_ + size) of the stream.
  ipc::ByteRing send_ring_;
  std::uint32_t iss_{0};
  std::uint32_t snd_una_{0};
  std::uint32_t snd_nxt_{0};
  std::uint32_t snd_wnd_{0};
  bool fin_queued_{false};
  bool fin_sent_{false};
  std::uint32_t fin_seq_{0};

  // Congestion control (Reno), in bytes.
  std::size_t cwnd_{0};
  std::size_t ssthresh_{};
  int dupacks_{0};
  std::uint32_t recover_{0};  // NewReno recovery point
  bool in_recovery_{false};

  // RTT estimation (RFC 6298).
  sim::SimTime srtt_{0};
  sim::SimTime rttvar_{0};
  sim::SimTime rto_;
  std::optional<std::pair<std::uint32_t, sim::SimTime>> rtt_sample_;

  // Receive side.
  ipc::ByteRing recv_ring_;
  std::uint32_t irs_{0};
  std::uint32_t rcv_nxt_{0};
  bool fin_received_{false};
  bool fin_seen_{false};  // peer's FIN observed but maybe not yet in order
  std::uint32_t fin_rcv_seq_{0};
  /// Out-of-order segments, sorted by raw sequence number (the same order
  /// the std::map this replaces iterated in). Reordering windows hold a
  /// handful of segments, so a sorted vector beats a node-based map: no
  /// per-segment node allocation and linear scans stay in cache.
  struct OooSeg {
    std::uint32_t seq;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<OooSeg> ooo_;
  std::size_t ooo_bytes_{0};
  bool delivering_{false};  // reentrancy guard for deliver_in_order()

  // Timers. The RTO is lazily re-armed: every ACK just moves
  // rto_deadline_ forward; the scheduled event re-checks the deadline when
  // it fires and sleeps the remainder, so the common path (ACK per
  // round-trip) is two stores instead of a cancel + reschedule.
  sim::EventHandle rto_timer_;
  sim::SimTime rto_deadline_{0};  // 0 = disarmed
  sim::SimTime rto_fire_at_{0};   // when the pending event fires
  sim::EventHandle ack_timer_;
  sim::EventHandle time_wait_timer_;
  int retries_{0};
  std::size_t delack_bytes_{0};  // data bytes received since last ACK sent
  std::uint64_t retransmit_count_{0};
  std::uint16_t peer_mss_{536};
  bool app_released_{false};
};

using TcpSocketPtr = std::shared_ptr<TcpSocket>;

/// A listening socket: SYN queue + accept queue.
class TcpListener {
 public:
  using AcceptReady = std::function<void()>;

  TcpListener(std::uint16_t port, std::size_t backlog)
      : port_(port), backlog_(backlog) {}

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t pending() const { return accept_q_.size(); }

  /// Pop one fully established connection (nullptr if none).
  [[nodiscard]] TcpSocketPtr accept();

  /// Invoked whenever a connection becomes acceptable.
  void set_accept_ready(AcceptReady cb) { on_ready_ = std::move(cb); }

 private:
  friend class TcpStack;
  std::uint16_t port_;
  std::size_t backlog_;
  std::deque<TcpSocketPtr> accept_q_;
  AcceptReady on_ready_;
};

// --------------------------------------------------------------------------
// Stack (per-replica TCP instance)
// --------------------------------------------------------------------------

struct TcpStats {
  std::uint64_t segments_in{0};
  std::uint64_t segments_out{0};
  std::uint64_t bytes_in{0};
  std::uint64_t bytes_out{0};
  std::uint64_t checksum_drops{0};
  std::uint64_t retransmits{0};
  std::uint64_t rsts_out{0};
  std::uint64_t rsts_in{0};
  std::uint64_t conns_accepted{0};
  std::uint64_t conns_initiated{0};
  std::uint64_t conns_failed{0};
  std::uint64_t ooo_segments{0};
  std::uint64_t syns_dropped_backlog{0};
  std::uint64_t pure_acks_out{0};
  std::uint64_t data_segments_out{0};
  std::uint64_t syn_cookies_sent{0};
  std::uint64_t syn_cookies_accepted{0};
  std::uint64_t syn_cookies_rejected{0};
};

/// Serialized state of one established connection, for checkpoint-based
/// stateful recovery (the alternative recovery strategy the paper discusses
/// in §6.6: "rely on checkpointing techniques to support a stateful
/// recovery strategy allowing existing connections to survive failures").
struct TcpConnSnapshot {
  FlowKey flow;
  std::uint32_t iss{0};
  std::uint32_t irs{0};
  std::uint32_t snd_una{0};
  std::uint32_t rcv_nxt{0};
  std::uint32_t snd_wnd{0};
  std::uint16_t peer_mss{536};
  std::vector<std::uint8_t> send_buf;  ///< unacked + unsent stream bytes
  std::vector<std::uint8_t> recv_buf;  ///< received, not yet read by app
  // Extra fidelity used by live migration (checkpoint restore deliberately
  // ignores these and retransmits from snd_una — see restore()).
  std::uint32_t snd_nxt{0};
  struct OooChunk {
    std::uint32_t seq;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<OooChunk> ooo;  ///< out-of-order reassembly segments
  bool fin_seen{false};       ///< peer FIN observed beyond a reassembly hole
  std::uint32_t fin_rcv_seq{0};
  bool unaccepted{false};  ///< established but still in the listener queue
};

/// A point-in-time checkpoint of a stack's established connections.
struct TcpCheckpoint {
  sim::SimTime taken_at{0};
  std::vector<TcpConnSnapshot> conns;

  /// Serialized size (what a checkpointing engine would copy out).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t n = 0;
    for (const auto& c : conns) {
      n += sizeof(TcpConnSnapshot) + c.send_buf.size() + c.recv_buf.size();
    }
    return n;
  }
};

class TcpStack {
 public:
  TcpStack(TcpEnv& env, Ipv4Addr local_ip, TcpConfig cfg = {});

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  [[nodiscard]] Ipv4Addr local_ip() const { return local_ip_; }
  [[nodiscard]] const TcpConfig& config() const { return cfg_; }
  [[nodiscard]] TcpEnv& env() { return env_; }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }

  /// Open a listener. Returns nullptr if the port is already bound.
  TcpListener* listen(std::uint16_t port, std::size_t backlog = 128);
  void close_listener(std::uint16_t port);
  [[nodiscard]] TcpListener* listener(std::uint16_t port) {
    auto it = listeners_.find(port);
    return it == listeners_.end() ? nullptr : it->second.get();
  }

  /// Active open. Picks an ephemeral port if local_port == 0. With
  /// defer_syn, the connection is registered but no SYN is emitted until
  /// begin_handshake() — NEaT installs the NIC steering filter in between
  /// so the SYN|ACK cannot race to the wrong replica.
  TcpSocketPtr connect(SockAddr remote, std::uint16_t local_port = 0,
                       bool defer_syn = false);

  /// Fire the SYN of a deferred connect(). No-op if already started.
  void begin_handshake(TcpSocket& s) {
    if (s.state() == TcpState::kClosed) s.start_active_open();
  }

  /// Entry point for TCP segments from IP (pkt starts at the TCP header).
  void rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt);

  /// One arrival from IP, as staged by a burst-mode RX channel.
  struct SegmentArrival {
    Ipv4Addr src;
    Ipv4Addr dst;
    PacketPtr seg;
  };

  /// Burst entry point: consume a whole RX batch in one consumer job with
  /// one obs-timestamp/histogram record per burst instead of per-segment
  /// bookkeeping. `alive` (optional) is consulted between segments so a
  /// handler that crashes its own process mid-burst stops the loop — the
  /// rest of the burst died inside that process's memory.
  void rx_batch(std::vector<SegmentArrival>&& batch,
                const std::function<bool()>& alive = {});

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

  /// Connections currently mid-handshake (SYN seen, not yet established).
  /// The chaos campaign uses this to time crashes into the handshake
  /// window, the paper's hardest recovery case.
  [[nodiscard]] std::size_t pending_handshake_count() const {
    return pending_handshakes_;
  }

  /// Number of connections in "active" states (not TIME_WAIT/CLOSED) —
  /// what the lazy-termination garbage collector watches.
  [[nodiscard]] std::size_t active_connection_count() const;

  /// Enumerate live connections (harness/recovery bookkeeping).
  void for_each_connection(const std::function<void(TcpSocket&)>& fn);

  /// Drop all state instantly and silently — what a crash does. Peers see
  /// nothing until their own timers fire or a RST answers a later segment.
  void destroy_all_state();

  /// Capture all ESTABLISHED connections (connections mid-handshake or
  /// mid-teardown are not worth preserving and are left out, as a real
  /// checkpointing engine would).
  [[nodiscard]] TcpCheckpoint snapshot() const;

  /// Recreate connections from a checkpoint into this (empty) stack.
  /// Restored connections resume from the checkpointed sequence state:
  /// anything in flight at the crash is retransmitted; connections that
  /// made irrecoverable progress since the checkpoint (data acked to the
  /// peer after the snapshot) stall and die by the normal TCP timeout —
  /// exactly the divergence problem that makes checkpointing imperfect.
  /// Returns the restored sockets (for the library to re-attach).
  std::vector<TcpSocketPtr> restore(const TcpCheckpoint& cp);

  /// Live migration, source side: snapshot every ESTABLISHED connection at
  /// full fidelity (snd_nxt, reassembly buffer, accept-queue membership)
  /// and remove them from this stack silently — no FIN, no RST, timers
  /// cancelled. The connections now live only in the returned checkpoint.
  [[nodiscard]] TcpCheckpoint extract_for_migration();

  /// Live migration, target side: recreate the extracted connections in
  /// this stack byte-exactly. Connections never accepted by the app are
  /// re-enqueued into this stack's listener for the same port (dropped
  /// with a RST if none exists). Returns the adopted sockets, in snapshot
  /// order, for the socket library to re-home (excludes re-enqueued ones).
  std::vector<TcpSocketPtr> adopt(const TcpCheckpoint& cp);

 private:
  friend class TcpSocket;

  void send_rst_for(const TcpHeader& h, Ipv4Addr src, Ipv4Addr dst,
                    std::size_t payload_len);
  void send_cookie_synack(const TcpHeader& syn, const FlowKey& key);
  /// Try to complete a cookie handshake from an un-matched ACK. Returns
  /// true if the segment was consumed (socket created or cookie judged
  /// stale), false to fall through to the RST path.
  bool try_cookie_accept(const TcpHeader& h, const FlowKey& key,
                         PacketPtr& pkt);
  [[nodiscard]] std::uint32_t cookie_count() const;
  void socket_closed(TcpSocket& s);  // remove from table when fully done
  void handshake_complete(TcpSocket& s);
  // Observability (all no-ops when env reports no hub). Metric handles are
  // cached per stack so the hot paths pay one pointer test per event.
  void record_rtt(sim::SimTime rtt);
  void count_retransmit();
  void record_dwell(TcpState s, sim::SimTime dwell);
  void handshake_dropped() {
    if (pending_handshakes_ > 0) --pending_handshakes_;
  }
  std::uint16_t ephemeral_port();
  /// All conns_ insert/erase goes through these so port_use_ stays exact.
  void insert_conn(const FlowKey& key, TcpSocketPtr sock) {
    conns_[key] = std::move(sock);
    ++port_use_[key.local_port];
  }
  void erase_conn(const FlowKey& key) {
    if (conns_.erase(key) > 0) --port_use_[key.local_port];
  }

  TcpEnv& env_;
  Ipv4Addr local_ip_;
  TcpConfig cfg_;
  TcpStats stats_;
  std::unordered_map<FlowKey, TcpSocketPtr, FlowKeyHash> conns_;
  /// Connections per local port. Makes ephemeral allocation O(1) — the
  /// old scan over conns_ was O(n) per connect, quadratic over a ramp,
  /// which melts at fleet scale (hundreds of thousands of client flows).
  std::vector<std::uint32_t> port_use_ = std::vector<std::uint32_t>(65536, 0);
  /// Flows extracted for migration: stale frames still in this replica's
  /// RX channel must be dropped, not RST'd (erased if the flow returns).
  std::unordered_set<FlowKey, FlowKeyHash> migrated_out_;
  std::unordered_map<std::uint16_t, std::unique_ptr<TcpListener>> listeners_;
  std::uint16_t next_ephemeral_{0};
  std::size_t pending_handshakes_{0};
  std::uint64_t cookie_secret_{0};
  obs::Histogram* rtt_hist_{nullptr};
  obs::Histogram* rx_batch_hist_{nullptr};
  obs::Counter* retx_counter_{nullptr};
  obs::Counter* handshake_counter_{nullptr};
  obs::Counter* checksum_drop_counter_{nullptr};
  std::array<obs::Histogram*, 11> dwell_hist_{};
};

}  // namespace neat::net
