// Experiment harness: assembles the paper's two-machine testbed and runs
// the lighttpd/httperf workloads against either stack.
//
// One machine is the system under test (the AMD Opteron or the Xeon); the
// other generates load. The load-generation machine is deliberately
// over-provisioned (more cores, faster clock, many stack replicas) so that
// — as in the paper — the client is never the bottleneck.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/http.hpp"
#include "apps/http_server.hpp"
#include "apps/loadgen.hpp"
#include "baseline/linux.hpp"
#include "ipc/channel.hpp"
#include "neat/host.hpp"
#include "net/packet_pool.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"
#include "socklib/socklib.hpp"

namespace neat::harness {

inline constexpr net::Ipv4Addr kServerIp = net::Ipv4Addr::of(10, 0, 0, 1);
inline constexpr net::Ipv4Addr kClientIp = net::Ipv4Addr::of(10, 0, 0, 2);
inline constexpr std::uint16_t kBasePort = 8000;

/// RAII witness of the "rigs die before their Testbed" contract. Every rig
/// built against a Testbed holds one; the Testbed's destructor asserts (in
/// debug builds) that none are outstanding, turning the comment-only
/// teardown contract into a fail-fast check at the destruction site. The
/// counter lives on the heap behind a shared_ptr so a leaked token never
/// dereferences a dead Testbed even when the assert is compiled out.
class TestbedDependent {
 public:
  TestbedDependent() = default;
  explicit TestbedDependent(std::shared_ptr<std::size_t> count)
      : count_(std::move(count)) {
    if (count_) ++*count_;
  }
  TestbedDependent(TestbedDependent&& o) noexcept
      : count_(std::move(o.count_)) {
    o.count_.reset();
  }
  TestbedDependent& operator=(TestbedDependent&& o) noexcept {
    if (this != &o) {
      release();
      count_ = std::move(o.count_);
      o.count_.reset();
    }
    return *this;
  }
  TestbedDependent(const TestbedDependent&) = delete;
  TestbedDependent& operator=(const TestbedDependent&) = delete;
  ~TestbedDependent() { release(); }

  void release() {
    if (count_) {
      --*count_;
      count_.reset();
    }
  }

 private:
  std::shared_ptr<std::size_t> count_;
};

/// The two machines + NICs + 10G DAC link.
class Testbed {
 public:
  struct Config {
    sim::MachineParams server_machine{sim::amd_opteron_6168()};
    /// Idealized load-generation appliance.
    sim::MachineParams client_machine;
    nic::NicParams server_nic{};
    nic::NicParams client_nic{};
    nic::Link::Params link{};
    std::uint64_t seed{1};

    Config();
  };

  explicit Testbed(Config cfg);
  ~Testbed();

  /// Issue a teardown-order token; rig builders attach one to every rig.
  [[nodiscard]] TestbedDependent depend() {
    return TestbedDependent(dependents_);
  }
  /// Rigs currently alive against this testbed (0 required at destruction).
  [[nodiscard]] std::size_t dependent_count() const { return *dependents_; }

  /// Channel-registry hygiene: the registry is a process-wide static, so a
  /// channel leaked past its simulator would silently poison the next
  /// test's accounting sweep. Captured at construction, checked when the
  /// testbed (and everything pinned to it) is gone — first member, so it
  /// is destroyed after every channel this testbed transitively owns.
  struct RegistryGuard {
    std::size_t baseline{ipc::channel_registry().size()};
    ~RegistryGuard() {
      assert(ipc::channel_registry().size() == baseline &&
             "channel outlived its simulator (dangling registry entry)");
      if (baseline == 0) ipc::channel_registry_reset();
    }
  };
  RegistryGuard registry_guard;

  /// Per-simulator packet-buffer freelist, installed (thread-locally) for
  /// the lifetime of the testbed: every Packet::make inside the simulation
  /// recycles buffers instead of hitting the allocator.
  net::PacketPool pool;
  net::PacketPool::Use pool_use{pool};

  sim::Simulator sim;
  Config cfg;
  sim::Machine& server_machine;
  sim::Machine& client_machine;
  nic::Nic server_nic;
  nic::Nic client_nic;
  nic::Link link;

 private:
  std::shared_ptr<std::size_t> dependents_{std::make_shared<std::size_t>(0)};
};

// ---------------------------------------------------------------------------
// Server rigs
// ---------------------------------------------------------------------------

/// Explicit placement for the NEaT system processes on the server machine.
struct Placement {
  struct Slot {
    int core{0};
    int thread{0};
  };
  Slot os{0, 0};
  Slot syscall{1, 0};
  Slot driver{2, 0};
  /// One entry per replica; single-component uses pins[0], multi-component
  /// uses pins[0]=TCP, pins[1]=IP (UDP/PF colocate with IP).
  std::vector<std::vector<Slot>> replicas;
  std::vector<Slot> webs;
};

/// Figure 6-style placement on the 12-core AMD: OS, SYSCALL, driver on
/// cores 0-2, replicas next, web servers on the remaining cores.
[[nodiscard]] Placement amd_placement(bool multi_component, int replicas,
                                      int webs);

/// Xeon placements. `ht` selects the hyper-threaded layouts of Figures 8
/// and 10 (driver+SYSCALL share a core; replicas and webs use both threads
/// of their cores).
[[nodiscard]] Placement xeon_placement(bool multi_component, int replicas,
                                       int webs, bool ht);

struct ServerRig {
  /// Teardown-order witness (first member: released only after every other
  /// member — hosts, webs, their channels — is gone).
  TestbedDependent testbed_token;
  /// Heap-allocated: servers hold references into the store, which must
  /// stay stable even if the rig itself is moved.
  std::unique_ptr<apps::FileStore> files =
      std::make_unique<apps::FileStore>();
  std::unique_ptr<NeatHost> neat;                   // one of these two
  std::unique_ptr<baseline::LinuxHost> linux_host;  // is set
  std::vector<std::unique_ptr<apps::HttpServer>> webs;

  [[nodiscard]] std::uint64_t total_requests() const {
    std::uint64_t n = 0;
    for (const auto& w : webs) n += w->app_stats().requests;
    return n;
  }
};

struct NeatServerOptions {
  bool multi_component{false};
  int replicas{1};
  int webs{1};
  Placement placement;  // empty -> amd_placement derived automatically
  NeatHost::Config host;
  apps::HttpServer::Costs server_costs{};
  std::vector<std::pair<std::string, std::size_t>> files{{"/file20", 20}};
  bool tracking_filters{false};  // forwarded to NIC at testbed build time
  /// SYN-flood defense: no tracking filter until the handshake completes
  /// (requires tracking_filters; pair with host.tcp.syn_cookies so no TCB
  /// exists either until then).
  bool defer_syn_filters{false};
  /// Slowloris defense: forwarded to every web server before start().
  sim::SimTime http_first_byte_deadline{0};
  sim::SimTime http_header_deadline{0};
};

[[nodiscard]] ServerRig build_neat_server(Testbed& tb, NeatServerOptions opt);

struct LinuxServerOptions {
  baseline::LinuxTuning tuning{baseline::LinuxTuning::best()};
  baseline::LinuxCosts costs{};
  net::TcpConfig tcp{};
  int webs{1};
  apps::HttpServer::Costs server_costs{};
  std::vector<std::pair<std::string, std::size_t>> files{{"/file20", 20}};
};

[[nodiscard]] ServerRig build_linux_server(Testbed& tb,
                                           LinuxServerOptions opt);

// ---------------------------------------------------------------------------
// Client rig
// ---------------------------------------------------------------------------

struct ClientOptions {
  int stack_replicas{6};
  int generators{12};
  std::size_t concurrency_per_gen{32};
  int requests_per_conn{100};
  /// Per-generator cap on total connections opened (0 = sustain forever).
  std::uint64_t max_conns{0};
  std::string path{"/file20"};
  StackCosts costs{};
  net::TcpConfig tcp{};
};

struct ClientRig {
  /// Teardown-order witness (first member; see ServerRig).
  TestbedDependent testbed_token;
  std::unique_ptr<NeatHost> host;
  std::vector<std::unique_ptr<apps::LoadGen>> gens;

  /// Reset all measurement windows.
  void mark();

  struct Aggregate {
    double krps{0.0};
    double mbps{0.0};
    double mean_latency_ms{0.0};
    double p50_latency_ms{0.0};
    double p95_latency_ms{0.0};
    double p99_latency_ms{0.0};
    double p999_latency_ms{0.0};
    std::uint64_t requests{0};
    std::uint64_t error_conns{0};
    std::uint64_t clean_conns{0};
  };
  [[nodiscard]] Aggregate aggregate(sim::SimTime window) const;
};

/// Build the client: generator i targets port kBasePort + (i % num_ports).
[[nodiscard]] ClientRig build_client(Testbed& tb, ClientOptions opt,
                                     int num_ports);

// ---------------------------------------------------------------------------
// Experiment runner
// ---------------------------------------------------------------------------

struct RunResult {
  double krps{0.0};
  double mbps{0.0};
  double mean_latency_ms{0.0};
  double p50_latency_ms{0.0};
  double p95_latency_ms{0.0};
  double p99_latency_ms{0.0};
  double p999_latency_ms{0.0};
  std::uint64_t requests{0};
  std::uint64_t error_conns{0};
  std::uint64_t clean_conns{0};
};

/// Warm up, open a measurement window, report rates over it.
RunResult run_window(Testbed& tb, ClientRig& client, sim::SimTime warmup,
                     sim::SimTime measure);

/// Pre-populate both ends' ARP caches (static neighbor entries, as one
/// would configure on a two-machine point-to-point testbed).
void prepopulate_arp(ServerRig& server, ClientRig& client);

}  // namespace neat::harness
