#include "harness/testbed.hpp"

#include <cassert>

namespace neat::harness {

Testbed::Config::Config() {
  client_machine.name = "client";
  client_machine.cores = 32;
  client_machine.threads_per_core = 1;
  client_machine.freq = sim::Frequency{3.0};
  client_machine.work_scale = 0.8;
}

Testbed::Testbed(Config config)
    : sim(config.seed),
      cfg(std::move(config)),
      server_machine(sim.add_machine(cfg.server_machine)),
      client_machine(sim.add_machine(cfg.client_machine)),
      server_nic(sim, net::MacAddr::local(1), kServerIp, cfg.server_nic),
      client_nic(sim, net::MacAddr::local(2), kClientIp, cfg.client_nic),
      link(sim, server_nic, client_nic, cfg.link) {
  pool.bind(sim.obs());
}

Testbed::~Testbed() {
  // Out-of-order teardown check: every rig must already be gone. A rig that
  // outlives its testbed holds processes pinned to freed machines and
  // channels into a dead simulator — exactly the UAF class PR 3 fixed in
  // five fixtures. Fail at the destruction site, not at the later crash.
  assert(*dependents_ == 0 &&
         "rig outlived its Testbed (destroy rigs before the testbed)");
  // The obs hub dies with `sim`, before `pool`; packets released during
  // simulator teardown (closures in the event queue hold PacketPtrs) must
  // not bump freed counters.
  pool.unbind();
}

// ---------------------------------------------------------------------------
// Placements
// ---------------------------------------------------------------------------

Placement amd_placement(bool multi_component, int replicas, int webs) {
  Placement p;
  p.os = {0, 0};
  p.syscall = {1, 0};
  p.driver = {2, 0};
  int core = 3;
  for (int r = 0; r < replicas; ++r) {
    if (multi_component) {
      p.replicas.push_back({{core, 0}, {core + 1, 0}});  // TCP, IP
      core += 2;
    } else {
      p.replicas.push_back({{core, 0}});
      ++core;
    }
  }
  for (int w = 0; w < webs; ++w) {
    assert(core < 12 && "AMD machine out of cores for this configuration");
    p.webs.push_back({core++, 0});
  }
  return p;
}

Placement xeon_placement(bool multi_component, int replicas, int webs,
                         bool ht) {
  Placement p;
  constexpr int kCores = 8;
  std::vector<std::vector<bool>> used(kCores, std::vector<bool>(2, false));
  auto take = [&](int c, int t) {
    used[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)] = true;
    return Placement::Slot{c, t};
  };

  if (ht) {
    // Figure 8b/10: OS alone (its sibling is the last web slot), the NIC
    // driver and the SYSCALL server share one core, stack components pack
    // two per core on sibling threads.
    p.os = take(0, 0);
    p.driver = take(1, 0);
    p.syscall = take(1, 1);
    int core = 2;
    int thread = 0;
    auto next_stack_slot = [&] {
      const Placement::Slot s = take(core, thread);
      thread = 1 - thread;
      if (thread == 0) ++core;
      return s;
    };
    if (multi_component) {
      // All TCP processes pack first (Fig. 8c pairs replicas per core),
      // then all IP processes.
      std::vector<Placement::Slot> tcps, ips;
      for (int r = 0; r < replicas; ++r) tcps.push_back(next_stack_slot());
      if (thread != 0) {
        thread = 0;
        ++core;
      }
      for (int r = 0; r < replicas; ++r) ips.push_back(next_stack_slot());
      if (thread != 0) {
        thread = 0;
        ++core;
      }
      for (int r = 0; r < replicas; ++r) {
        p.replicas.push_back(
            {tcps[static_cast<std::size_t>(r)], ips[static_cast<std::size_t>(r)]});
      }
    } else {
      for (int r = 0; r < replicas; ++r) {
        p.replicas.push_back({next_stack_slot()});
      }
      if (thread != 0) {
        thread = 0;
        ++core;
      }
    }
  } else {
    // Core-only layout: OS and SYSCALL share core 0 (both are nearly idle
    // under load), the driver gets core 1, stack components one core each.
    p.os = take(0, 0);
    p.syscall = {0, 0};
    p.driver = take(1, 0);
    int core = 2;
    for (int r = 0; r < replicas; ++r) {
      if (multi_component) {
        assert(core + 1 < kCores);
        p.replicas.push_back({take(core, 0), take(core + 1, 0)});
        core += 2;
      } else {
        assert(core < kCores);
        p.replicas.push_back({take(core, 0)});
        ++core;
      }
    }
  }

  // Webs: breadth-first — thread 0 of every free core, then the sibling
  // threads, then idle sibling threads of stack/system cores. This mirrors
  // how the paper scaled lighttpd: whole cores first, hyper-threads next,
  // and finally the threads of the cores occupied by the network stack
  // itself (Fig. 9, points 6 and 8).
  std::vector<Placement::Slot> web_slots;
  for (int t = 0; t < 2; ++t) {
    for (int c = 0; c < kCores; ++c) {
      if (!used[static_cast<std::size_t>(c)][0] &&
          !used[static_cast<std::size_t>(c)][1]) {
        web_slots.push_back({c, t});
      }
    }
  }
  for (int c = kCores - 1; c >= 0; --c) {
    for (int t = 1; t >= 0; --t) {
      if (used[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)]) {
        continue;
      }
      const bool half_used = used[static_cast<std::size_t>(c)][0] ||
                             used[static_cast<std::size_t>(c)][1];
      if (half_used) web_slots.push_back({c, t});
    }
  }
  assert(static_cast<int>(web_slots.size()) >= webs &&
         "Xeon out of hardware threads for this configuration");
  for (int w = 0; w < webs; ++w) {
    p.webs.push_back(web_slots[static_cast<std::size_t>(w)]);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Server rigs
// ---------------------------------------------------------------------------

ServerRig build_neat_server(Testbed& tb, NeatServerOptions opt) {
  ServerRig rig;
  rig.testbed_token = tb.depend();
  for (const auto& [path, size] : opt.files) rig.files->add(path, size);
  if (opt.tracking_filters) tb.server_nic.set_tracking_filters(true);
  assert((!opt.defer_syn_filters || opt.tracking_filters) &&
         "defer_syn_filters needs tracking filters to defer");
  if (opt.defer_syn_filters) tb.server_nic.set_defer_syn_filters(true);

  NeatHost::Config hc = opt.host;
  hc.kind = opt.multi_component ? NeatHost::Config::Kind::kMulti
                                : NeatHost::Config::Kind::kSingle;
  rig.neat = std::make_unique<NeatHost>(tb.sim, tb.server_machine,
                                        tb.server_nic, hc);

  Placement pl = opt.placement;
  if (pl.replicas.empty()) {
    pl = amd_placement(opt.multi_component, opt.replicas, opt.webs);
  }
  auto& mc = tb.server_machine;
  rig.neat->os_process().pin(mc.thread(pl.os.core, pl.os.thread));
  rig.neat->syscall().pin(mc.thread(pl.syscall.core, pl.syscall.thread));
  rig.neat->driver().pin(mc.thread(pl.driver.core, pl.driver.thread));

  for (int r = 0; r < opt.replicas; ++r) {
    std::vector<sim::HwThread*> pins;
    for (const auto& slot : pl.replicas[static_cast<std::size_t>(r)]) {
      pins.push_back(&mc.thread(slot.core, slot.thread));
    }
    rig.neat->add_replica(pins);
  }

  for (int w = 0; w < opt.webs; ++w) {
    auto srv = std::make_unique<apps::HttpServer>(
        tb.sim, "web" + std::to_string(w + 1), *rig.files,
        static_cast<std::uint16_t>(kBasePort + w), opt.server_costs);
    const auto& slot = pl.webs[static_cast<std::size_t>(w)];
    srv->pin(mc.thread(slot.core, slot.thread));
    srv->first_byte_deadline = opt.http_first_byte_deadline;
    srv->header_deadline = opt.http_header_deadline;
    srv->attach_api(std::make_unique<socklib::SockLib>(*srv, *rig.neat));
    srv->start();
    rig.webs.push_back(std::move(srv));
  }
  return rig;
}

ServerRig build_linux_server(Testbed& tb, LinuxServerOptions opt) {
  ServerRig rig;
  rig.testbed_token = tb.depend();
  for (const auto& [path, size] : opt.files) rig.files->add(path, size);

  baseline::LinuxHost::Config cfg;
  cfg.tuning = opt.tuning;
  cfg.costs = opt.costs;
  cfg.tcp = opt.tcp;
  rig.linux_host = std::make_unique<baseline::LinuxHost>(
      tb.sim, tb.server_machine, tb.server_nic, cfg);

  auto& mc = tb.server_machine;
  const int cores = mc.cores();
  const int tpc = mc.threads_per_core();
  for (int w = 0; w < opt.webs; ++w) {
    auto srv = std::make_unique<apps::HttpServer>(
        tb.sim, "web" + std::to_string(w + 1), *rig.files,
        static_cast<std::uint16_t>(kBasePort + w), opt.server_costs);
    const int slot = w % (cores * tpc);
    rig.linux_host->register_app(*srv, mc.thread(slot % cores, slot / cores));
    srv->attach_api(std::make_unique<baseline::LinuxSockets>(
        *srv, *rig.linux_host, slot % cores));
    srv->start();
    rig.webs.push_back(std::move(srv));
  }
  return rig;
}

// ---------------------------------------------------------------------------
// Client rig
// ---------------------------------------------------------------------------

ClientRig build_client(Testbed& tb, ClientOptions opt, int num_ports) {
  ClientRig rig;
  rig.testbed_token = tb.depend();
  NeatHost::Config hc;
  hc.kind = NeatHost::Config::Kind::kSingle;
  // The client shares the simulator (and so the metrics registry) with the
  // system under test: a distinct host id keeps its census gauges apart.
  hc.host_id = 1;
  hc.costs = opt.costs;
  hc.tcp = opt.tcp;
  // Load generators churn tens of thousands of connections per second out
  // of a 16k ephemeral-port pool; like real httperf testbeds (tcp_tw_reuse)
  // the client recycles TIME_WAIT ports quickly or the pool exhausts.
  hc.tcp.time_wait = 50 * sim::kMillisecond;
  rig.host = std::make_unique<NeatHost>(tb.sim, tb.client_machine,
                                        tb.client_nic, hc);
  auto& mc = tb.client_machine;
  assert(3 + opt.stack_replicas + opt.generators <= mc.cores() &&
         "client machine out of cores");
  rig.host->os_process().pin(mc.thread(0));
  rig.host->syscall().pin(mc.thread(1));
  rig.host->driver().pin(mc.thread(2));
  for (int r = 0; r < opt.stack_replicas; ++r) {
    rig.host->add_replica({&mc.thread(3 + r)});
  }

  for (int g = 0; g < opt.generators; ++g) {
    apps::LoadGen::Config lc;
    lc.server = net::SockAddr{
        kServerIp, static_cast<std::uint16_t>(kBasePort + g % num_ports)};
    lc.path = opt.path;
    lc.concurrency = opt.concurrency_per_gen;
    lc.requests_per_conn = opt.requests_per_conn;
    lc.max_conns = opt.max_conns;
    auto gen = std::make_unique<apps::LoadGen>(
        tb.sim, "httperf" + std::to_string(g), lc);
    gen->pin(mc.thread(3 + opt.stack_replicas + g));
    gen->attach_api(std::make_unique<socklib::SockLib>(*gen, *rig.host));
    gen->start();
    rig.gens.push_back(std::move(gen));
  }
  return rig;
}

void ClientRig::mark() {
  for (auto& g : gens) g->mark();
}

ClientRig::Aggregate ClientRig::aggregate(sim::SimTime window) const {
  Aggregate a;
  std::uint64_t bytes = 0;
  // Merge the per-generator histograms so the percentiles come from one
  // combined distribution (max-of-p99s across generators is not a p99).
  obs::Histogram merged;
  for (const auto& g : gens) {
    const auto& r = g->report();
    a.requests += r.committed_requests;
    bytes += r.committed_bytes;
    a.error_conns += r.error_conns;
    a.clean_conns += r.clean_conns;
    merged.merge(r.latency);
  }
  const double secs = sim::to_seconds(window);
  if (secs > 0) {
    a.krps = static_cast<double>(a.requests) / secs / 1000.0;
    a.mbps = static_cast<double>(bytes) / secs / 1e6;
  }
  a.mean_latency_ms = merged.mean() / 1e6;
  a.p50_latency_ms = static_cast<double>(merged.quantile(0.50)) / 1e6;
  a.p95_latency_ms = static_cast<double>(merged.quantile(0.95)) / 1e6;
  a.p99_latency_ms = static_cast<double>(merged.quantile(0.99)) / 1e6;
  a.p999_latency_ms = static_cast<double>(merged.quantile(0.999)) / 1e6;
  return a;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

RunResult run_window(Testbed& tb, ClientRig& client, sim::SimTime warmup,
                     sim::SimTime measure) {
  tb.sim.run_for(warmup);
  client.mark();
  tb.sim.run_for(measure);
  const auto agg = client.aggregate(measure);
  RunResult r;
  r.krps = agg.krps;
  r.mbps = agg.mbps;
  r.mean_latency_ms = agg.mean_latency_ms;
  r.p50_latency_ms = agg.p50_latency_ms;
  r.p95_latency_ms = agg.p95_latency_ms;
  r.p99_latency_ms = agg.p99_latency_ms;
  r.p999_latency_ms = agg.p999_latency_ms;
  r.requests = agg.requests;
  r.error_conns = agg.error_conns;
  r.clean_conns = agg.clean_conns;
  return r;
}

void prepopulate_arp(ServerRig& server, ClientRig& client) {
  const net::MacAddr server_mac = net::MacAddr::local(1);
  const net::MacAddr client_mac = net::MacAddr::local(2);
  if (server.neat) {
    for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
      server.neat->replica(i).ip_layer_ref().arp().insert(kClientIp,
                                                          client_mac);
    }
  }
  if (server.linux_host) {
    server.linux_host->ip_layer().arp().insert(kClientIp, client_mac);
  }
  for (std::size_t i = 0; i < client.host->replica_count(); ++i) {
    client.host->replica(i).ip_layer_ref().arp().insert(kServerIp,
                                                        server_mac);
  }
}

}  // namespace neat::harness
