// Observability: the flow-event tracer.
//
// A bounded ring of timestamped events covering the life of a flow and of
// the control plane: SYN received, replica steered, handshake done, request
// served, crash, detection, restart, scale-up/down. The ring keeps the
// *newest* events when it overflows — the interesting part of a long run is
// almost always its tail (the fault you injected last, the connections that
// never recovered).
//
// Export is chrome://tracing's JSON array format ("traceEvents"), loadable
// in chrome://tracing or https://ui.perfetto.dev. Timestamps are emitted in
// microseconds (the format's unit) at nanosecond resolution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace neat::obs {

/// One trace event. `name` and `category` must be string literals (or
/// otherwise outlive the tracer) — events are recorded on hot paths and must
/// not allocate for the common no-argument case. `args_json` is the body of
/// the chrome "args" object, e.g. `"queue":3,"via":"rss"`; empty for none.
struct TraceEvent {
  std::uint64_t ts_ns{0};
  std::uint64_t dur_ns{0};  ///< 0 → instant event ("i"); else complete ("X")
  const char* category{""};
  const char* name{""};
  int pid{0};  ///< machine (0 = server, 1 = client)
  int tid{0};  ///< replica / queue / generator id where meaningful
  std::string args_json;
};

class FlowTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit FlowTracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1) {}

  void set_enabled(bool v) { enabled_ = v; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(TraceEvent ev) {
    if (!enabled_) return;
    ++emitted_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(ev));
      return;
    }
    // Overwrite the oldest slot; head_ marks the new logical start.
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total events ever emitted (>= size() once the ring wraps).
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  /// Events in emission order (oldest-first). Duration events ("X") are
  /// stamped with their *start* time but emitted at completion, so
  /// timestamps here are not necessarily sorted — the JSON export sorts.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    emitted_ = 0;
  }

  /// chrome://tracing JSON object: {"traceEvents":[...],"displayTimeUnit":"ns"}
  void write_chrome_json(std::ostream& os) const {
    std::vector<TraceEvent> evs = events();
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& ev : evs) {
      if (!first) os << ",";
      first = false;
      char ts[64];
      // Microseconds with nanosecond resolution.
      std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                    static_cast<unsigned long long>(ev.ts_ns / 1000),
                    static_cast<unsigned long long>(ev.ts_ns % 1000));
      os << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.category
         << "\",\"ph\":\"" << (ev.dur_ns ? 'X' : 'i') << "\",\"ts\":" << ts
         << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
      if (ev.dur_ns) {
        char dur[64];
        std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                      static_cast<unsigned long long>(ev.dur_ns / 1000),
                      static_cast<unsigned long long>(ev.dur_ns % 1000));
        os << ",\"dur\":" << dur;
      } else {
        os << ",\"s\":\"t\"";  // instant-event scope: thread
      }
      if (!ev.args_json.empty()) os << ",\"args\":{" << ev.args_json << "}";
      os << "}";
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
  }

  [[nodiscard]] std::string chrome_json() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};
  bool enabled_{true};
  std::uint64_t emitted_{0};
};

inline std::string FlowTracer::chrome_json() const {
  std::ostringstream ss;
  write_chrome_json(ss);
  return ss.str();
}

}  // namespace neat::obs
