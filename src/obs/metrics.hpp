// Observability: the metrics registry.
//
// Counters, gauges and fixed-layout log-linear histograms for the hot paths
// of the stack. The simulator is single-threaded, so none of this needs
// locks; what it needs instead is (a) stable handles so instrumented code
// can cache a pointer and pay one map lookup per metric per lifetime, and
// (b) mergeable histograms so per-generator latency distributions can be
// combined into one percentile report (taking max-of-p99s across
// generators, as the harness used to, is not a p99).
//
// The histogram is HdrHistogram-shaped: values below 2^5 get their own
// bucket (exact); above that, each power-of-two range is split into 16
// linear sub-buckets, bounding the relative error of any recorded value —
// and therefore of any reported quantile — by 1/16.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace neat::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  /// Keep the largest value ever set (high-water marks).
  void set_max(double v) { value_ = std::max(value_, v); }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_{0.0};
};

/// Log-linear histogram over unsigned 64-bit values (typically nanoseconds).
///
/// Layout: values in [0, 32) are exact; for larger values the power-of-two
/// group [2^k, 2^(k+1)) is split into 16 equal sub-buckets. Every bucket
/// boundary is therefore `s << g` for integer s in [16, 32), and the width
/// of a bucket containing value v is at most v/16.
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;  // 2^kSubBucketBits
  static constexpr int kSubBucketBits = 5;
  // Groups for bit widths 6..64 inclusive, 16 sub-buckets each.
  static constexpr int kGroups = 59;
  static constexpr int kBuckets = kSubBuckets + kGroups * 16;  // 976

  void record(std::uint64_t v, std::uint64_t n = 1) {
    buckets_[static_cast<std::size_t>(index(v))] += n;
    count_ += n;
    sum_ += v * n;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0, 1]: the upper edge of the bucket holding
  /// the q-th ranked recording, clamped to the observed maximum (so
  /// quantile(1.0) == max() exactly). Monotonically non-decreasing in q.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[static_cast<std::size_t>(i)];
      if (seen > target) return std::min(bucket_upper(i), max_);
    }
    return max_;
  }

  /// Fold `other` into this histogram (identical fixed layout).
  void merge(const Histogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          other.buckets_[static_cast<std::size_t>(i)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() { *this = Histogram{}; }

  /// Bucket index for a value. Exposed (with the boundary helpers) so the
  /// tests can verify the layout directly.
  [[nodiscard]] static int index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    const int g = std::bit_width(v) - kSubBucketBits;  // >= 1
    const auto sub = static_cast<int>(v >> g);         // in [16, 32)
    return kSubBuckets + (g - 1) * 16 + (sub - 16);
  }

  /// Smallest value mapping to bucket i.
  [[nodiscard]] static std::uint64_t bucket_lower(int i) {
    if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
    const int j = i - kSubBuckets;
    const int g = j / 16 + 1;
    const auto s = static_cast<std::uint64_t>(j % 16 + 16);
    return s << g;
  }

  /// Largest value mapping to bucket i.
  [[nodiscard]] static std::uint64_t bucket_upper(int i) {
    if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
    const int j = i - kSubBuckets;
    const int g = j / 16 + 1;
    const auto s = static_cast<std::uint64_t>(j % 16 + 16);
    // ((s+1) << g) - 1, careful with the final group's overflow.
    const std::uint64_t next = (s + 1) << g;
    return next == 0 ? ~std::uint64_t{0} : next - 1;
  }

  [[nodiscard]] std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<std::uint64_t> buckets_ =
      std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{~std::uint64_t{0}};
  std::uint64_t max_{0};
};

/// Name → metric map. Handles returned by counter()/gauge()/histogram() are
/// stable for the registry's lifetime: instrumented code looks a metric up
/// once and caches the pointer.
class Registry {
 public:
  Counter& counter(std::string_view name) { return slot(counters_, name); }
  Gauge& gauge(std::string_view name) { return slot(gauges_, name); }
  Histogram& histogram(std::string_view name) {
    return slot(histograms_, name);
  }

  [[nodiscard]] const Counter* find_counter(std::string_view name) const {
    return find(counters_, name);
  }
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const {
    return find(gauges_, name);
  }
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const {
    return find(histograms_, name);
  }

  template <typename T>
  using Map = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  [[nodiscard]] const Map<Counter>& counters() const { return counters_; }
  [[nodiscard]] const Map<Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const Map<Histogram>& histograms() const {
    return histograms_;
  }

 private:
  template <typename T>
  static T& slot(Map<T>& m, std::string_view name) {
    auto it = m.find(name);
    if (it == m.end()) {
      it = m.emplace(std::string(name), std::make_unique<T>()).first;
    }
    return *it->second;
  }

  template <typename T>
  static const T* find(const Map<T>& m, std::string_view name) {
    auto it = m.find(name);
    return it == m.end() ? nullptr : it->second.get();
  }

  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
};

}  // namespace neat::obs
