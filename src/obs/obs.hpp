// Observability hub: one Registry + one FlowTracer per simulation.
//
// The hub lives on sim::Simulator so every layer that can reach the
// simulator (which is all of them) can record metrics and trace events
// without new plumbing. obs itself depends on nothing — it takes raw
// nanosecond timestamps — so the dependency arrow points strictly
// downward: sim links obs, never the reverse.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neat::obs {

struct Hub {
  Registry metrics;
  FlowTracer tracer;
};

}  // namespace neat::obs
