// Toeplitz RSS hash (Microsoft RSS specification), as implemented by the
// Intel 82599 the paper's testbed used. The NIC steers each incoming flow to
// a queue — and therefore to a NEaT replica — based on this hash of the
// 5-tuple, which is what gives NEaT random, replica-affine connection
// placement without any software coordination.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "net/addr.hpp"

namespace neat::nic {

/// The de-facto standard 40-byte key (from the MS RSS verification suite).
inline constexpr std::array<std::uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

class ToeplitzHasher {
 public:
  explicit ToeplitzHasher(std::span<const std::uint8_t> key = kDefaultRssKey) {
    for (std::size_t i = 0; i < key_.size() && i < key.size(); ++i) {
      key_[i] = key[i];
    }
  }

  /// Hash an arbitrary input byte string.
  [[nodiscard]] std::uint32_t hash(std::span<const std::uint8_t> input) const {
    std::uint32_t result = 0;
    // Sliding 32-bit window over the key, advanced one bit per input bit.
    std::uint32_t window = static_cast<std::uint32_t>(key_[0]) << 24 |
                           static_cast<std::uint32_t>(key_[1]) << 16 |
                           static_cast<std::uint32_t>(key_[2]) << 8 |
                           static_cast<std::uint32_t>(key_[3]);
    std::size_t next_byte = 4;
    for (const std::uint8_t byte : input) {
      for (int bit = 7; bit >= 0; --bit) {
        if (byte >> bit & 1) result ^= window;
        window <<= 1;
        const std::size_t bit_index =
            next_byte * 8 + static_cast<std::size_t>(7 - bit);
        const std::size_t key_bit = bit_index % (key_.size() * 8);
        if (key_[key_bit / 8] >> (7 - key_bit % 8) & 1) window |= 1;
      }
      ++next_byte;
    }
    return result;
  }

  /// TCP/UDP IPv4 4-tuple hash: src ip, dst ip, src port, dst port — the
  /// order defined by the RSS spec.
  [[nodiscard]] std::uint32_t hash_tuple(net::Ipv4Addr src, net::Ipv4Addr dst,
                                         std::uint16_t src_port,
                                         std::uint16_t dst_port) const {
    std::array<std::uint8_t, 12> in{};
    in[0] = static_cast<std::uint8_t>(src.value >> 24);
    in[1] = static_cast<std::uint8_t>(src.value >> 16);
    in[2] = static_cast<std::uint8_t>(src.value >> 8);
    in[3] = static_cast<std::uint8_t>(src.value);
    in[4] = static_cast<std::uint8_t>(dst.value >> 24);
    in[5] = static_cast<std::uint8_t>(dst.value >> 16);
    in[6] = static_cast<std::uint8_t>(dst.value >> 8);
    in[7] = static_cast<std::uint8_t>(dst.value);
    in[8] = static_cast<std::uint8_t>(src_port >> 8);
    in[9] = static_cast<std::uint8_t>(src_port);
    in[10] = static_cast<std::uint8_t>(dst_port >> 8);
    in[11] = static_cast<std::uint8_t>(dst_port);
    return hash(in);
  }

  /// IPv4-only 2-tuple hash: src ip, dst ip — used for protocols without
  /// ports (and the "IPv4 only" rows of the RSS verification vectors).
  [[nodiscard]] std::uint32_t hash_ip_pair(net::Ipv4Addr src,
                                           net::Ipv4Addr dst) const {
    std::array<std::uint8_t, 8> in{};
    in[0] = static_cast<std::uint8_t>(src.value >> 24);
    in[1] = static_cast<std::uint8_t>(src.value >> 16);
    in[2] = static_cast<std::uint8_t>(src.value >> 8);
    in[3] = static_cast<std::uint8_t>(src.value);
    in[4] = static_cast<std::uint8_t>(dst.value >> 24);
    in[5] = static_cast<std::uint8_t>(dst.value >> 16);
    in[6] = static_cast<std::uint8_t>(dst.value >> 8);
    in[7] = static_cast<std::uint8_t>(dst.value);
    return hash(in);
  }

 private:
  std::array<std::uint8_t, 40> key_{};
};

}  // namespace neat::nic
