#include "nic/nic.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/wire.hpp"

namespace neat::nic {

// ---------------------------------------------------------------------------
// Nic
// ---------------------------------------------------------------------------

Nic::Nic(sim::Simulator& sim, net::MacAddr mac, net::Ipv4Addr ip,
         NicParams params)
    : sim_(sim),
      mac_(mac),
      ip_(ip),
      params_(params),
      indirection_(params.indirection_entries, 0),
      rx_queues_(static_cast<std::size_t>(params.num_queues)),
      rx_heads_(static_cast<std::size_t>(params.num_queues), 0),
      rx_irq_armed_(static_cast<std::size_t>(params.num_queues), 0) {}

void Nic::set_active_queues(const std::vector<int>& queues) {
  assert(!queues.empty());
  for (std::size_t i = 0; i < indirection_.size(); ++i) {
    indirection_[i] = queues[i % queues.size()];
  }
}

void Nic::set_indirection(std::vector<int> table) {
  assert(table.size() == indirection_.size());
  indirection_ = std::move(table);
}

void Nic::add_flow_filter(const net::FlowKey& key, int queue) {
  // An explicit install means the 4-tuple is live again (fresh SYN, or the
  // stack re-announcing after a handshake): any dead-flow memory for it is
  // stale.
  fin_retired_.erase(key);
  if (auto it = flows_.find(key); it != flows_.end()) {
    it->second.queue = queue;
    touch_lru(key);
    return;
  }
  if (flows_.size() >= params_.flow_table_capacity) evict_one_filter();
  lru_.push_front(key);
  FlowEntry e{queue, lru_.begin(), ++filter_gen_, false};
  e.installed_at = sim_.now();
  e.last_hit = sim_.now();
  flows_.emplace(key, std::move(e));
  ++stats_.filters_installed;
}

void Nic::evict_one_filter() {
  // Sample the K least-recently-used entries and pick the lowest-scoring
  // one: entries that never steered a post-install packet ("embryonic" —
  // exactly what a spoofed SYN leaves behind) lose to any active flow;
  // among equals the stalest last activity goes. Sampling keeps eviction
  // O(K) under an install storm, which is when it runs hottest.
  constexpr int kSample = 16;
  auto victim = lru_.end();
  bool victim_embryonic = false;
  sim::SimTime victim_last = 0;
  int scanned = 0;
  for (auto it = std::prev(lru_.end());; --it) {
    const FlowEntry& e = flows_.find(*it)->second;
    const bool embryonic = e.hits == 0;
    const bool better =
        victim == lru_.end() || (embryonic && !victim_embryonic) ||
        (embryonic == victim_embryonic && e.last_hit < victim_last);
    if (better) {
      victim = it;
      victim_embryonic = embryonic;
      victim_last = e.last_hit;
    }
    if (++scanned >= kSample || it == lru_.begin()) break;
  }
  flows_.erase(*victim);
  lru_.erase(victim);
  ++stats_.filters_evicted;
  if (evict_counter_ == nullptr) {
    evict_counter_ = &metrics_registry().counter("nic.filter_evictions");
  }
  evict_counter_->inc();
}

void Nic::retire_flow_on_fin(const net::FlowKey& key) {
  auto it = flows_.find(key);
  if (it == flows_.end() || it->second.fin_seen) return;
  it->second.fin_seen = true;
  // Hardware ages the entry out once the close handshake and TIME_WAIT have
  // had time to complete. The generation stamp makes the delayed removal a
  // no-op if the 4-tuple was reused (fresh install) in the meantime.
  const std::uint64_t gen = it->second.gen;
  sim_.queue().schedule(params_.fin_retire_linger, [this, key, gen] {
    auto it2 = flows_.find(key);
    if (it2 == flows_.end() || it2->second.gen != gen) return;
    remove_flow_filter(key);
    ++stats_.filters_retired;
    // Remember the flow as dead for a grace window: close-handshake
    // stragglers still in flight (FIN retransmits, the final ACK — always
    // present when fin_retire_linger < TIME_WAIT) must not re-fault the
    // filter back in, or it leaks forever. A scheduled sweep erases the
    // memory; an earlier sweep for a refreshed entry no-ops on expiry.
    fin_retired_[key] = sim_.now() + params_.dead_flow_memory;
    sim_.queue().post(params_.dead_flow_memory, [this, key] {
      auto d = fin_retired_.find(key);
      if (d != fin_retired_.end() && sim_.now() >= d->second) {
        fin_retired_.erase(d);
      }
    });
  });
}

void Nic::remove_flow_filter(const net::FlowKey& key) {
  if (auto it = flows_.find(key); it != flows_.end()) {
    lru_.erase(it->second.lru_it);
    flows_.erase(it);
  }
}

std::size_t Nic::remove_filters_for_queue(int queue) {
  std::size_t removed = 0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.queue == queue) {
      lru_.erase(it->second.lru_it);
      it = flows_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<int> Nic::flow_filter(const net::FlowKey& key) const {
  if (auto it = flows_.find(key); it != flows_.end()) return it->second.queue;
  return std::nullopt;
}

void Nic::touch_lru(const net::FlowKey& key) {
  auto it = flows_.find(key);
  assert(it != flows_.end());
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
}

std::optional<ParsedFlow> Nic::peek_flow(const net::Packet& frame,
                                         net::Ipv4Addr local_ip) {
  const auto b = frame.bytes();
  if (b.size() < net::EthernetHeader::kSize + net::Ipv4Header::kSize) {
    return std::nullopt;
  }
  std::size_t off = net::EthernetHeader::kSize;
  const std::uint16_t ethertype = net::get_u16(b, 12);
  if (ethertype != static_cast<std::uint16_t>(net::EtherType::kIpv4)) {
    return std::nullopt;
  }
  const std::uint8_t vihl = b[off];
  if (vihl >> 4 != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(vihl & 0x0f) * 4;
  const auto proto = static_cast<net::IpProto>(b[off + 9]);
  const net::Ipv4Addr src{net::get_u32(b, off + 12)};
  const net::Ipv4Addr dst{net::get_u32(b, off + 16)};
  const std::uint16_t frag = net::get_u16(b, off + 6);
  ParsedFlow flow;
  flow.key.local_ip = dst;
  flow.key.remote_ip = src;
  (void)local_ip;
  if ((proto == net::IpProto::kTcp || proto == net::IpProto::kUdp) &&
      (frag & 0x1fff) == 0) {  // ports only in the first fragment
    const std::size_t t = off + ihl;
    if (b.size() >= t + 4) {
      flow.key.remote_port = net::get_u16(b, t);
      flow.key.local_port = net::get_u16(b, t + 2);
    }
    if (proto == net::IpProto::kTcp && b.size() >= t + 14) {
      flow.is_tcp = true;
      const std::uint8_t flags = b[t + 13];
      flow.fin = flags & 0x01;
      flow.syn = flags & 0x02;
      flow.rst = flags & 0x04;
    }
  }
  return flow;
}

int Nic::rss_queue(net::Ipv4Addr remote_ip, std::uint16_t remote_port,
                   net::Ipv4Addr local_ip, std::uint16_t local_port) const {
  // RSS hashes (src, dst) as seen in the received packet: remote is source.
  const std::uint32_t h =
      hasher_.hash_tuple(remote_ip, local_ip, remote_port, local_port);
  return indirection_[h % indirection_.size()];
}

int Nic::classify(const net::Packet& frame) const {
  auto flow = peek_flow(frame, ip_);
  if (!flow) return 0;  // ARP and friends: default queue
  if (auto it = flows_.find(flow->key); it != flows_.end()) {
    return it->second.queue;
  }
  if (flow->key.local_port == 0 && flow->key.remote_port == 0) return 0;
  return rss_queue(flow->key.remote_ip, flow->key.remote_port,
                   flow->key.local_ip, flow->key.local_port);
}

void Nic::transmit(net::PacketPtr frame) {
  ++stats_.tx_frames;
  stats_.tx_bytes += frame->size();
  if (link_ != nullptr) link_->send(*this, std::move(frame));
}

void Nic::receive(net::PacketPtr frame) {
  // MAC filtering.
  if (frame->size() < net::EthernetHeader::kSize) return;
  const auto b = frame->bytes();
  net::MacAddr dst;
  std::copy(b.begin(), b.begin() + 6, dst.bytes.begin());
  if (dst != mac_ && !dst.is_broadcast()) {
    ++stats_.rx_dropped_no_match;
    return;
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += frame->size();

  int queue = 0;
  const auto flow = peek_flow(*frame, ip_);
  if (capturing_ && flow && capture_set_.contains(flow->key)) {
    // Migration window: the flow's state is in transit between replicas.
    // Park the frame; end_flow_capture() replays it through classification
    // once the filter points at the new owner.
    ++stats_.capture_buffered;
    capture_buf_.push_back(std::move(frame));
    return;
  }
  if (flow && (flow->key.local_port != 0 || flow->key.remote_port != 0)) {
    if (auto it = flows_.find(flow->key); it != flows_.end()) {
      queue = it->second.queue;
      ++stats_.rx_steered_filter;
      ++it->second.hits;
      it->second.last_hit = sim_.now();
      touch_lru(flow->key);
      if (params_.tracking_filters && flow->rst) {
        remove_flow_filter(flow->key);  // flow is gone; free the entry
        ++stats_.filters_retired;
      } else if (params_.tracking_filters && flow->fin) {
        retire_flow_on_fin(flow->key);
      }
      note_steering(/*filter_hit=*/true, *flow, queue);
    } else {
      queue = rss_queue(flow->key.remote_ip, flow->key.remote_port,
                        flow->key.local_ip, flow->key.local_port);
      ++stats_.rx_steered_rss;
      if (params_.tracking_filters && flow->is_tcp && flow->syn) {
        if (!params_.defer_syn_filters) {
          // The paper's proposed hardware extension: remember where this
          // flow's first packet went so later indirection changes (scale
          // up/down) never move it. In defer mode the stack installs the
          // filter itself once the handshake completes.
          add_flow_filter(flow->key, queue);
        }
      } else if (params_.tracking_filters && !params_.defer_syn_filters &&
                 flow->is_tcp && !flow->rst) {
        // Mid-flow packet with no filter: the entry was evicted under
        // pressure. Re-fault it back in at the RSS-chosen queue (in defer
        // mode re-install is the stack's job, and a handshake ACK arriving
        // filterless is normal there, not a fault) — unless the flow was
        // just FIN-retired: a straggler steers fine by RSS, but installing
        // a dead flow's filter leaks it (no second FIN ever retires it).
        if (fin_retired_.contains(flow->key)) {
          ++stats_.refaults_suppressed_dead;
        } else {
          ++stats_.filters_refaulted;
          if (refault_counter_ == nullptr) {
            refault_counter_ =
                &metrics_registry().counter("nic.filter_refaults");
          }
          refault_counter_->inc();
          add_flow_filter(flow->key, queue);
        }
      }
      note_steering(/*filter_hit=*/false, *flow, queue);
    }
  }

  auto& q = rx_queues_[static_cast<std::size_t>(queue)];
  auto& head = rx_heads_[static_cast<std::size_t>(queue)];
  if (q.size() - head >= params_.queue_depth) {
    ++stats_.rx_dropped_queue_full;
    return;
  }
  frame->rx_queue = queue;
  frame->nic_rx_time = sim_.now();
  q.push_back(std::move(frame));
  if (!rx_notify_) return;
  if (params_.rx_coalesce_usecs == 0) {
    rx_notify_(queue);
    return;
  }
  // Interrupt moderation: the first frame on an idle queue arms one
  // doorbell a window in the future; frames landing before it fires share
  // it, so the driver sees them as a burst.
  auto& armed = rx_irq_armed_[static_cast<std::size_t>(queue)];
  if (armed) return;
  armed = 1;
  sim_.queue().post(params_.rx_coalesce_usecs, [this, queue] {
    rx_irq_armed_[static_cast<std::size_t>(queue)] = 0;
    const auto qi = static_cast<std::size_t>(queue);
    if (rx_notify_ && rx_heads_[qi] < rx_queues_[qi].size()) {
      rx_notify_(queue);
    }
  });
}

void Nic::note_steering(bool filter_hit, const ParsedFlow& flow, int queue) {
  if (steer_filter_counter_ == nullptr) {
    auto& m = metrics_registry();
    steer_filter_counter_ = &m.counter("nic.steer_filter_hit");
    steer_rss_counter_ = &m.counter("nic.steer_rss");
  }
  (filter_hit ? steer_filter_counter_ : steer_rss_counter_)->inc();
  if (flow.is_tcp && flow.syn) {
    auto& tracer = sim_.tracer();
    std::string args = "\"queue\":" + std::to_string(queue);
    args += filter_hit ? ",\"via\":\"filter\"" : ",\"via\":\"rss\"";
    tracer.emit({sim_.now(), 0, "nic", "syn_received", 0, queue, args});
    tracer.emit({sim_.now(), 0, "nic", "replica_steered", 0, queue,
                 std::move(args)});
  }
}

void Nic::begin_flow_capture(const std::vector<net::FlowKey>& keys) {
  for (const auto& k : keys) capture_set_.emplace(k, true);
  capturing_ = true;
}

void Nic::end_flow_capture() {
  capturing_ = false;
  capture_set_.clear();
  std::vector<net::PacketPtr> buf = std::move(capture_buf_);
  capture_buf_.clear();
  for (auto& frame : buf) {
    ++stats_.capture_replayed;
    receive(std::move(frame));  // full re-classification, repointed filters
  }
}

net::PacketPtr Nic::poll_rx(int queue) {
  auto& q = rx_queues_[static_cast<std::size_t>(queue)];
  auto& head = rx_heads_[static_cast<std::size_t>(queue)];
  if (head >= q.size()) {
    q.clear();
    head = 0;
    return nullptr;
  }
  net::PacketPtr p = std::move(q[head++]);
  if (head == q.size()) {
    q.clear();
    head = 0;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

Link::Link(sim::Simulator& sim, Nic& a, Nic& b, Params params)
    : sim_(sim),
      ends_{&a, &b},
      params_(params),
      impairment_(params.impairment),
      rng_(sim.rng().split(0x11eb)) {
  // The flat Params knobs predate LinkImpairment; fold them in.
  if (params.drop_probability > 0) {
    impairment_.drop_probability = params.drop_probability;
  }
  if (params.corrupt_probability > 0) {
    impairment_.corrupt_probability = params.corrupt_probability;
  }
  a.attach_link(this);
  b.attach_link(this);
}

sim::SimTime Link::wire_time(const net::Packet& frame) const {
  // A TSO super-segment goes out as ceil(size/MTU) MTU-sized frames, each
  // paying preamble + header + FCS + IFG. We bill the aggregate wire time.
  const std::size_t size = frame.size();
  std::size_t frames = 1;
  if (frame.tso && size > net::kEthernetMtu + net::EthernetHeader::kSize) {
    frames = (size + net::kEthernetMtu - 1) / net::kEthernetMtu;
  }
  const std::size_t wire_bytes =
      std::max(size, net::kEthernetMinPayload + net::EthernetHeader::kSize) +
      frames * net::kEthernetWireOverhead;
  const double ns =
      static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_gbps;
  return std::max<sim::SimTime>(1, static_cast<sim::SimTime>(ns));
}

void Link::deliver_at(Nic* to, net::PacketPtr frame, sim::SimTime arrival) {
  sim_.queue().schedule_at(arrival, [this, to, frame = std::move(frame)] {
    ++delivered_;
    to->receive(frame);
  });
}

void Link::send(Nic& from, net::PacketPtr frame) {
  const int d = &from == ends_[0] ? 0 : 1;
  Nic* to = ends_[1 - d];
  Direction& dir = dir_[d];
  const LinkImpairment& imp = impairment_;

  if (imp.drop_probability > 0 && rng_.chance(imp.drop_probability)) {
    ++dropped_;
    return;
  }
  if (imp.corrupt_probability > 0 && rng_.chance(imp.corrupt_probability)) {
    // Flip a byte somewhere in the frame; checksums must catch this.
    auto b = frame->bytes();
    if (!b.empty()) {
      b[rng_.below(b.size())] ^= 0xff;
      ++corrupted_;
    }
  }

  if (tap_) tap_(from, *frame);

  const sim::SimTime wt = wire_time(*frame);
  const sim::SimTime start = std::max(sim_.now(), dir.busy_until);
  dir.busy_until = start + wt;
  dir.busy_accum += wt;
  sim::SimTime arrival = dir.busy_until + params_.propagation;
  if (imp.jitter > 0) arrival += rng_.below(imp.jitter);
  if (imp.reorder_probability > 0 && imp.reorder_window > 0 &&
      rng_.chance(imp.reorder_probability)) {
    // Hold the frame back so later frames overtake it on delivery.
    arrival += 1 + rng_.below(imp.reorder_window);
    ++reordered_;
  }
  if (imp.duplicate_probability > 0 &&
      rng_.chance(imp.duplicate_probability)) {
    ++duplicated_;
    deliver_at(to, frame->clone(), arrival + 1 + rng_.below(
        std::max<sim::SimTime>(1, params_.propagation)));
  }
  deliver_at(to, std::move(frame), arrival);
}

double Link::utilization(sim::SimTime window_start, sim::SimTime now,
                         int d) const {
  if (now <= window_start) return 0.0;
  (void)window_start;
  return static_cast<double>(dir_[d].busy_accum) / static_cast<double>(now);
}

}  // namespace neat::nic
