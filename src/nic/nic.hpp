// Multi-queue NIC model in the style of the Intel 82599 (i82599) the paper
// used: RSS with an indirection table, an exact-match flow-director table
// (up to 8K filters), TSO, and per-queue bounded RX rings.
//
// Classification and steering run "in hardware": they consume no simulated
// CPU cycles. The driver process is told which queue a packet landed on and
// charges its own per-packet cost — that separation is what lets NEaT treat
// the NIC as "an additional processing core that runs certain parts of the
// stack very efficiently" (paper §4).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "nic/toeplitz.hpp"
#include "sim/simulator.hpp"

namespace neat::nic {

class Link;

struct NicParams {
  int num_queues{16};
  std::size_t queue_depth{1024};
  /// Exact-match flow steering table capacity ("Intel 10G cards can hold up
  /// to 8 thousand filters").
  std::size_t flow_table_capacity{8192};
  /// RSS indirection table size (82599: 128 entries).
  std::size_t indirection_entries{128};
  /// Emulate the paper's proposed NIC extension: hardware-installed
  /// "tracking" filters that pin each flow to the queue its SYN was steered
  /// to, so reconfiguring the indirection table (scale up/down) never moves
  /// an existing connection.
  bool tracking_filters{false};
  /// Defense mode for tracking filters: do NOT install a filter when a SYN
  /// is steered by RSS — the stack installs it (via the driver) only once
  /// the handshake completes. A spoofed SYN then never consumes a flow
  /// table entry. Meaningful only with tracking_filters.
  bool defer_syn_filters{false};
  /// How long a tracking filter outlives the first FIN seen on its flow.
  /// The filter must survive the rest of the close handshake (the peer's
  /// FIN/ACK still needs to reach the same queue) and the local TIME_WAIT,
  /// after which the entry is dead weight the hardware should reclaim.
  /// A linger shorter than TIME_WAIT is safe: for dead_flow_memory after
  /// retirement, close-handshake stragglers are steered by RSS without
  /// re-faulting the dead flow's filter back in (which would leak it —
  /// nothing ever FINs a dead flow a second time).
  sim::SimTime fin_retire_linger{1 * sim::kSecond};
  /// How long after FIN-retirement a flow key is remembered as dead so
  /// straggler-driven refault is suppressed. Covers the peer's TIME_WAIT
  /// and final retransmissions.
  sim::SimTime dead_flow_memory{1 * sim::kSecond};
  bool tso{true};
  /// RX interrupt moderation (ethtool rx-usecs): the first frame landing on
  /// a queue with no doorbell pending schedules the driver notification this
  /// far in the future; frames arriving inside the window ride the same
  /// doorbell, so the driver drains them as one burst. 0 = interrupt per
  /// frame. Trades microseconds of RX latency for fewer wake-ups.
  sim::SimTime rx_coalesce_usecs{0};
};

struct NicStats {
  std::uint64_t rx_frames{0};
  std::uint64_t rx_bytes{0};
  std::uint64_t tx_frames{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t rx_dropped_queue_full{0};
  std::uint64_t rx_dropped_no_match{0};  // wrong MAC
  std::uint64_t filters_installed{0};
  std::uint64_t filters_evicted{0};
  /// Filters reclaimed because the flow ended (RST, or FIN + linger) —
  /// distinct from capacity evictions above. Churn workloads must see this
  /// track filters_installed or the table leaks.
  std::uint64_t filters_retired{0};
  /// Steering decisions by mechanism: exact-match filter hit vs RSS hash.
  std::uint64_t rx_steered_filter{0};
  std::uint64_t rx_steered_rss{0};
  /// Non-SYN TCP packets of a tracked flow that arrived without a filter —
  /// the flow's entry was evicted under pressure and the packet fell back
  /// to RSS (SYN-install mode re-installs the filter on the spot).
  std::uint64_t filters_refaulted{0};
  /// Refaults suppressed because the flow was recently FIN-retired: a
  /// close-handshake straggler must not re-install a dead flow's filter
  /// (with fin_retire_linger < TIME_WAIT that leak would be permanent).
  std::uint64_t refaults_suppressed_dead{0};
  /// Frames held in / replayed from the migration capture buffer.
  std::uint64_t capture_buffered{0};
  std::uint64_t capture_replayed{0};
};

/// Per-flow observation parsed by the classifier (also exposed to tests).
struct ParsedFlow {
  net::FlowKey key;  // local = this host's side
  bool is_tcp{false};
  bool syn{false};
  bool fin{false};
  bool rst{false};
};

class Nic {
 public:
  /// `rx_notify(queue)` is the doorbell to the driver: called (in zero
  /// simulated time) whenever a packet is appended to an RX queue.
  Nic(sim::Simulator& sim, net::MacAddr mac, net::Ipv4Addr ip,
      NicParams params);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] net::MacAddr mac() const { return mac_; }
  [[nodiscard]] net::Ipv4Addr ip() const { return ip_; }
  [[nodiscard]] const NicParams& params() const { return params_; }

  /// Enable/disable per-flow tracking filters after construction (the
  /// harness forwards NeatServerOptions::tracking_filters through here).
  void set_tracking_filters(bool on) { params_.tracking_filters = on; }

  /// Tune the FIN-to-reclaim linger after construction (workload scenarios
  /// shorten it so retirement is observable within a sub-second run).
  void set_fin_retire_linger(sim::SimTime t) { params_.fin_retire_linger = t; }

  /// Toggle handshake-deferred filter installation (see NicParams).
  void set_defer_syn_filters(bool on) { params_.defer_syn_filters = on; }

  /// Tune RX interrupt moderation after construction (see NicParams).
  void set_rx_coalesce(sim::SimTime window) {
    params_.rx_coalesce_usecs = window;
  }

  /// Record this NIC's counters on `hub` instead of the simulator-global
  /// registry (per-host observability: fleet clusters give every host its
  /// own hub). Must be called before the first packet is received — the
  /// counter handles are cached lazily on first use and never re-resolved.
  void bind_hub(obs::Hub* hub) { hub_ = hub; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  void set_rx_notify(std::function<void(int queue)> cb) {
    rx_notify_ = std::move(cb);
  }

  // --- control plane (driver) ---------------------------------------------

  /// Spread RSS buckets evenly over `queues` (the active-replica set).
  void set_active_queues(const std::vector<int>& queues);

  /// Raw indirection table (bucket -> queue).
  void set_indirection(std::vector<int> table);
  [[nodiscard]] const std::vector<int>& indirection() const {
    return indirection_;
  }

  /// Install an exact-match steering filter. Evicts LRU when full.
  void add_flow_filter(const net::FlowKey& key, int queue);
  void remove_flow_filter(const net::FlowKey& key);
  /// Drop every filter steering to `queue` (the endpoint died for good:
  /// quarantine/collection). Stale pins to a dead queue would otherwise
  /// blackhole reused 4-tuples — their SYNs steer to a queue nobody
  /// drains. Returns how many filters were removed.
  std::size_t remove_filters_for_queue(int queue);
  [[nodiscard]] std::optional<int> flow_filter(const net::FlowKey& key) const;
  [[nodiscard]] std::size_t flow_filter_count() const { return flows_.size(); }

  /// Live-migration capture window: frames whose flow is in `keys` are
  /// buffered instead of delivered, from this call until
  /// end_flow_capture() re-injects them through normal classification.
  /// Opened BEFORE the source stack snapshots, closed AFTER the filters
  /// are repointed, so no packet is processed against half-moved state.
  void begin_flow_capture(const std::vector<net::FlowKey>& keys);
  void end_flow_capture();
  [[nodiscard]] std::size_t captured_frame_count() const {
    return capture_buf_.size();
  }

  // --- data plane -----------------------------------------------------------

  /// TX entry (from the driver): frame goes out on the attached link.
  void transmit(net::PacketPtr frame);

  /// RX entry (from the link): classify, steer, enqueue, notify driver.
  void receive(net::PacketPtr frame);

  /// Driver-side dequeue; nullptr when the queue is empty.
  [[nodiscard]] net::PacketPtr poll_rx(int queue);
  [[nodiscard]] std::size_t rx_depth(int queue) const {
    return rx_queues_[static_cast<std::size_t>(queue)].size();
  }

  /// Which queue would this frame be steered to? (exposed for tests and for
  /// RSS-aware source-port selection in the client library).
  [[nodiscard]] int classify(const net::Packet& frame) const;

  /// Queue the RSS indirection currently assigns to this 4-tuple.
  [[nodiscard]] int rss_queue(net::Ipv4Addr remote_ip,
                              std::uint16_t remote_port,
                              net::Ipv4Addr local_ip,
                              std::uint16_t local_port) const;

  /// Parse a frame's flow information without consuming it.
  [[nodiscard]] static std::optional<ParsedFlow> peek_flow(
      const net::Packet& frame, net::Ipv4Addr local_ip);

  // Link wiring (used by Link).
  void attach_link(Link* link) { link_ = link; }
  [[nodiscard]] Link* link() const { return link_; }

 private:
  void touch_lru(const net::FlowKey& key);
  /// Scored eviction under table pressure: sample the LRU tail, preferring
  /// "embryonic" entries (never steered a post-install packet — what a
  /// spoofed SYN leaves behind) and breaking ties by stalest activity.
  void evict_one_filter();
  /// First FIN observed on a tracked flow: mark it and schedule the entry's
  /// reclamation after fin_retire_linger (generation-guarded).
  void retire_flow_on_fin(const net::FlowKey& key);
  /// Record one steering decision in the metrics registry, and trace SYNs
  /// (the per-flow steering event; tracing every frame would drown the
  /// ring).
  void note_steering(bool filter_hit, const ParsedFlow& flow, int queue);
  /// Registry the lazily-cached counters resolve against (hub override or
  /// the simulator-global one).
  [[nodiscard]] obs::Registry& metrics_registry() {
    return hub_ != nullptr ? hub_->metrics : sim_.metrics();
  }

  sim::Simulator& sim_;
  net::MacAddr mac_;
  net::Ipv4Addr ip_;
  NicParams params_;
  NicStats stats_;
  ToeplitzHasher hasher_;
  std::vector<int> indirection_;
  std::vector<std::vector<net::PacketPtr>> rx_queues_;  // FIFO per queue
  std::vector<std::size_t> rx_heads_;
  /// Per-queue flag: a moderated doorbell event is already scheduled.
  std::vector<std::uint8_t> rx_irq_armed_;
  std::function<void(int)> rx_notify_;
  Link* link_{nullptr};
  obs::Hub* hub_{nullptr};  ///< per-host metric hub override (fleet)

  struct FlowEntry {
    int queue;
    std::list<net::FlowKey>::iterator lru_it;
    /// Generation stamp: a linger-delayed FIN retirement only fires if the
    /// entry it targeted is still the same installation (a reused 4-tuple
    /// re-installs with a fresh generation and must keep its filter).
    std::uint64_t gen{0};
    bool fin_seen{false};
    sim::SimTime installed_at{0};
    sim::SimTime last_hit{0};
    std::uint64_t hits{0};  ///< post-install packets steered by this entry
  };
  std::unordered_map<net::FlowKey, FlowEntry, net::FlowKeyHash> flows_;
  /// Flows whose filter was FIN-retired, remembered until the stored
  /// expiry time so straggler refault is suppressed (see NicParams::
  /// dead_flow_memory). Entries are erased by a scheduled sweep event; a
  /// fresh install for the key (4-tuple reuse) erases eagerly.
  std::unordered_map<net::FlowKey, sim::SimTime, net::FlowKeyHash>
      fin_retired_;
  std::list<net::FlowKey> lru_;  // front = most recent
  std::uint64_t filter_gen_{0};
  std::unordered_map<net::FlowKey, bool, net::FlowKeyHash> capture_set_;
  std::vector<net::PacketPtr> capture_buf_;
  bool capturing_{false};
  obs::Counter* steer_filter_counter_{nullptr};
  obs::Counter* steer_rss_counter_{nullptr};
  obs::Counter* evict_counter_{nullptr};
  obs::Counter* refault_counter_{nullptr};
};

/// Wire impairment knobs — the adversarial packet dynamics a robustness
/// claim must survive. Every decision is drawn from the link's own
/// deterministic sub-Rng, so a (seed, schedule) pair replays bit-for-bit.
struct LinkImpairment {
  /// Frame is silently discarded.
  double drop_probability{0.0};
  /// One byte of the frame is flipped; checksums must catch it.
  double corrupt_probability{0.0};
  /// Frame is delivered twice (the second copy after a short extra delay).
  double duplicate_probability{0.0};
  /// Frame is held back an extra uniform [0, reorder_window) so frames
  /// serialized after it can overtake it.
  double reorder_probability{0.0};
  sim::SimTime reorder_window{200 * sim::kMicrosecond};
  /// Uniform [0, jitter) added to every delivery (latency variation).
  sim::SimTime jitter{0};

  [[nodiscard]] bool any() const {
    return drop_probability > 0 || corrupt_probability > 0 ||
           duplicate_probability > 0 || reorder_probability > 0 || jitter > 0;
  }
};

/// Full-duplex point-to-point 10GbE link (the SFP+ DAC cable between the two
/// testbed machines). Each direction serializes frames FIFO at the
/// configured bandwidth; optional impairment injection (drop, corruption,
/// duplication, reordering, jitter) for robustness tests.
class Link {
 public:
  struct Params {
    double bandwidth_gbps{10.0};
    sim::SimTime propagation{500 * sim::kNanosecond};
    double drop_probability{0.0};     // convenience: folded into impairment
    double corrupt_probability{0.0};  // convenience: folded into impairment
    LinkImpairment impairment{};
  };

  Link(sim::Simulator& sim, Nic& a, Nic& b, Params params);
  Link(sim::Simulator& sim, Nic& a, Nic& b) : Link(sim, a, b, Params{}) {}

  void set_drop_probability(double p) { impairment_.drop_probability = p; }
  void set_corrupt_probability(double p) { impairment_.corrupt_probability = p; }

  /// Swap the whole impairment profile at once (chaos campaigns toggle
  /// between a baseline profile and a degraded blip). Returns the previous
  /// profile so callers can restore it.
  LinkImpairment set_impairment(const LinkImpairment& imp) {
    LinkImpairment old = impairment_;
    impairment_ = imp;
    return old;
  }
  [[nodiscard]] const LinkImpairment& impairment() const { return impairment_; }

  /// Observation tap: called for every frame put on the wire (after
  /// drop/corrupt injection), with the sending NIC. For tracing tools.
  using Tap = std::function<void(const Nic& from, const net::Packet& frame)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Called by a NIC to put a frame on the wire.
  void send(Nic& from, net::PacketPtr frame);

  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t frames_duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t frames_reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }
  [[nodiscard]] double utilization(sim::SimTime window_start,
                                   sim::SimTime now, int dir) const;

 private:
  struct Direction {
    sim::SimTime busy_until{0};
    std::uint64_t busy_accum{0};  // ns of wire time ever scheduled
  };

  /// Wire time for a frame, TSO-aware (per-MTU-frame overhead).
  [[nodiscard]] sim::SimTime wire_time(const net::Packet& frame) const;

  void deliver_at(Nic* to, net::PacketPtr frame, sim::SimTime arrival);

  sim::Simulator& sim_;
  Nic* ends_[2];
  Params params_;
  LinkImpairment impairment_;
  Tap tap_;
  Direction dir_[2];
  std::uint64_t dropped_{0};
  std::uint64_t corrupted_{0};
  std::uint64_t duplicated_{0};
  std::uint64_t reordered_{0};
  std::uint64_t delivered_{0};
  sim::Rng rng_;
};

}  // namespace neat::nic
