// Deterministic random number generation for the simulator.
//
// A single splittable xoshiro256** generator per simulation keeps runs
// reproducible; components derive sub-streams from it so adding a component
// does not perturb the stream seen by others.
#pragma once

#include <cstdint>
#include <limits>

namespace neat::sim {

/// xoshiro256** — fast, high-quality, and fully deterministic across
/// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
/// distributions are implementation-defined).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method, debiased.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrival processes in the load generator).
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * __builtin_log(1.0 - u);
  }

  /// Derive an independent sub-stream; deterministic per (seed, tag).
  [[nodiscard]] Rng split(std::uint64_t tag) const {
    return Rng{s_[0] ^ (tag * 0xd1342543de82ef95ULL) ^ s_[3]};
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace neat::sim
