// Measurement helpers: streaming summaries and fixed-layout latency
// histograms used by the load generator and the experiment harness.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/time.hpp"

namespace neat::sim {

/// Streaming mean / min / max / variance (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Log-scale latency histogram: 1 ns .. ~1000 s in ~7.5% buckets.
/// Supports approximate quantiles with bounded relative error.
class LatencyHistogram {
 public:
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kDecades = 12;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;

  void add(SimTime ns) {
    summary_.add(static_cast<double>(ns));
    buckets_[index(ns)]++;
    ++count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean_ns() const { return summary_.mean(); }
  [[nodiscard]] double max_ns() const { return summary_.max(); }

  /// q in [0, 1]; returns the upper edge (ns) of the bucket containing the
  /// q-quantile.
  [[nodiscard]] double quantile_ns(double q) const {
    if (count_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[static_cast<std::size_t>(i)];
      if (seen > target) return upper_edge(i);
    }
    return upper_edge(kBuckets - 1);
  }

  void reset() {
    buckets_.fill(0);
    count_ = 0;
    summary_.reset();
  }

 private:
  static int index(SimTime ns) {
    if (ns < 1) ns = 1;
    const double lg = std::log10(static_cast<double>(ns));
    int i = static_cast<int>(lg * kBucketsPerDecade);
    return std::clamp(i, 0, kBuckets - 1);
  }
  static double upper_edge(int i) {
    return std::pow(10.0, static_cast<double>(i + 1) / kBucketsPerDecade);
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_{0};
  Summary summary_;
};

/// Windowed rate meter: events per second over [mark, now].
class RateMeter {
 public:
  void record(std::uint64_t n = 1) { count_ += n; }

  /// Start a fresh measurement window at time `t`.
  void mark(SimTime t) {
    mark_time_ = t;
    count_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Events per second between mark and `now`.
  [[nodiscard]] double rate(SimTime now) const {
    const SimTime dt = now > mark_time_ ? now - mark_time_ : 0;
    if (dt == 0) return 0.0;
    return static_cast<double>(count_) / to_seconds(dt);
  }

 private:
  std::uint64_t count_{0};
  SimTime mark_time_{0};
};

}  // namespace neat::sim
