// The isolated-process abstraction.
//
// NEaT's first design principle is isolation: every component of the system
// is a single-threaded, event-driven process that owns its state and
// communicates only via message passing. A sim::Process models one such
// process: work is delivered to it as (cycle-cost, callback) jobs that
// execute serially on the hardware thread the process is pinned to.
//
// The model captures the behaviours the paper's evaluation depends on:
//  * sleep/wake — an idle process polls briefly, then suspends via MWAIT;
//    waking it costs latency (and kernel cycles when the wake must be
//    kernel-assisted because the process shares its hardware thread);
//  * crash/restart — a crashed process silently drops all queued and future
//    work until restarted, and stale timers from before the crash never
//    fire (epoch guard), which is what makes stateless recovery safe.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace neat::sim {

class HwThread;
class Simulator;

/// Cumulative per-process accounting, in cycles of the owning thread.
/// Table 2 derives its CPU-usage breakdown from snapshots of these.
struct ProcStats {
  Cycles processing{0};  ///< useful work (job costs)
  Cycles polling{0};     ///< spinning on empty queues before suspending
  Cycles kernel{0};      ///< suspend/resume and kernel-assisted wakes
  std::uint64_t jobs{0};
  std::uint64_t wakeups{0};
  std::uint64_t suspends{0};

  [[nodiscard]] Cycles total_active() const {
    return processing + polling + kernel;
  }
};

class Process {
 public:
  Process(Simulator& sim, std::string name);
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Pin to a hardware thread. Must be called before any post(). Re-pinning
  /// while idle is allowed (used by the scale-down relocation strategy).
  void pin(HwThread& thread);

  [[nodiscard]] HwThread* thread() const { return thread_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() const { return sim_; }
  [[nodiscard]] const ProcStats& stats() const { return stats_; }

  /// Deliver work: after `cost` cycles of CPU time on this process's
  /// thread, run `fn`. If the process is suspended this first pays the
  /// wake-up penalty. Work posted to a crashed process is silently dropped
  /// (messages to a dead process are lost, exactly as in the real system).
  void post(Cycles cost, SmallFn fn);

  /// Schedule work `delay` ns in the future (timers). The job is dropped if
  /// the process crashes or restarts in the meantime — a restarted replica
  /// must never see timers from its previous life.
  ///
  /// Template so the epoch-guard wrapper captures the caller's callable
  /// directly: the combined closure stays within SmallFn's inline budget
  /// (a nested SmallFn never would), keeping timers allocation-free.
  template <typename F>
  EventHandle after(SimTime delay, Cycles cost, F fn) {
    const auto epoch = epoch_;
    return schedule_raw(
        delay, [this, epoch, cost, fn = std::move(fn)]() mutable {
          if (crashed_ || epoch_ != epoch) return;
          post(cost, std::move(fn));
        });
  }

  /// Whether this process may spin-poll when idle (true for drivers and
  /// stack replicas with a dedicated hardware thread). Processes sharing a
  /// hardware thread always block instead — the paper's "slower
  /// communication channels" for colocated components.
  void set_can_poll(bool v) { can_poll_ = v; }
  [[nodiscard]] bool can_poll() const;

  // --- fault injection ----------------------------------------------------
  /// Kill the process: queued jobs and all future posts are dropped.
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Bring the process back (fresh state). Invokes on_restart().
  void restart();
  /// Epoch increments on crash *and* restart; jobs carry the epoch they
  /// were created in and are dropped if it no longer matches.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Number of jobs delivered but not yet executed.
  [[nodiscard]] std::uint64_t backlog() const { return backlog_; }

 protected:
  virtual void on_crash() {}
  virtual void on_restart() {}

 private:
  friend class HwThread;

  enum class RunState { kAwake, kPolling, kSuspended, kWaking };

  /// Out-of-line bridge to the event queue (Simulator is incomplete here).
  EventHandle schedule_raw(SimTime delay, SmallFn fn);

  void account_processing(Cycles c) {
    stats_.processing += c;
    ++stats_.jobs;
  }
  void account_polling(Cycles c) { stats_.polling += c; }
  void account_kernel(Cycles c) { stats_.kernel += c; }
  /// Called by HwThread when the process runs out of work.
  void became_idle();
  /// Called by HwThread when the poll grace expires.
  void suspend();

  Simulator& sim_;
  std::string name_;
  HwThread* thread_{nullptr};
  ProcStats stats_;
  RunState run_state_{RunState::kSuspended};
  bool can_poll_{true};
  bool crashed_{false};
  std::uint64_t epoch_{0};
  std::uint64_t backlog_{0};
  SimTime wake_deadline_{0};  // valid while run_state_ == kWaking
};

}  // namespace neat::sim
