// Heartbeat watchdog: liveness detection without an oracle.
//
// A Watchdog periodically sends a probe through a user-supplied channel
// (typically a Process::post into the monitored process) and expects the
// probe's `ack` callback to run. A process that crashed silently drops the
// posted probe, so acks stop arriving; once the silence exceeds `timeout`
// the watchdog declares the target dead, disarms itself, and fires
// `on_silent` exactly once. Whoever handles the death re-arms the watchdog
// after the target is restarted — the disarmed window is what makes
// "restart already pending" an explicit state instead of a race.
//
// Detection latency is bounded by timeout + period (+ the probe's own
// delivery cost while the target was still alive).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace neat::sim {

class Watchdog {
 public:
  /// Deliver one probe; call `ack` from the monitored context iff alive.
  using Probe = std::function<void(std::function<void()> ack)>;
  /// Invoked once per detection, with the observed silence duration.
  /// The callback may destroy this Watchdog.
  using OnSilent = std::function<void(SimTime silent_for)>;

  Watchdog(Simulator& sim, SimTime period, SimTime timeout)
      : sim_(sim), period_(period), timeout_(timeout) {}

  ~Watchdog() { tick_.cancel(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Start (or resume, after a restart) monitoring. The target is given a
  /// fresh grace period; acks from a previous arming are ignored.
  void arm(Probe probe, OnSilent on_silent) {
    probe_ = std::move(probe);
    on_silent_ = std::move(on_silent);
    ++generation_;
    armed_ = true;
    last_ack_ = sim_.now();
    tick_.cancel();
    tick_ = sim_.schedule(period_, [this] { tick(); });
  }

  /// Stop monitoring (target terminated on purpose). Idempotent.
  void disarm() {
    armed_ = false;
    tick_.cancel();
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] SimTime last_ack() const { return last_ack_; }

 private:
  void tick() {
    if (!armed_) return;
    const SimTime silent = sim_.now() - last_ack_;
    if (silent >= timeout_) {
      armed_ = false;
      // Copy out before invoking: the handler may delete this object.
      OnSilent handler = on_silent_;
      handler(silent);
      return;  // no member access past this point
    }
    const std::uint64_t gen = generation_;
    probe_([this, gen] {
      if (gen == generation_) last_ack_ = sim_.now();
    });
    tick_ = sim_.schedule(period_, [this] { tick(); });
  }

  Simulator& sim_;
  SimTime period_;
  SimTime timeout_;
  Probe probe_;
  OnSilent on_silent_;
  bool armed_{false};
  std::uint64_t generation_{0};
  SimTime last_ack_{0};
  EventHandle tick_;
};

}  // namespace neat::sim
