#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/machine.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace neat::sim {

// ---------------------------------------------------------------------------
// HwThread
// ---------------------------------------------------------------------------

HwThread::HwThread(Simulator& sim, const MachineParams& params, int core_id,
                   int thread_id)
    : sim_(sim), params_(params), core_id_(core_id), thread_id_(thread_id) {}

double HwThread::speed_factor() const {
  if (sibling_ != nullptr && sibling_->contending()) {
    return params_.ht_shared_speed;
  }
  return 1.0;
}

void HwThread::submit(Process& proc, Cycles cost, SmallFn&& fn,
                      Cycles kernel_cost) {
  queue_.push_back(Job{&proc, cost, kernel_cost, std::move(fn), proc.epoch()});
  if (state_ == State::kPolling) preempt_poll();
  if (state_ == State::kIdle) start_next();
}

void HwThread::preempt_poll() {
  assert(state_ == State::kPolling);
  assert(polling_proc_ != nullptr);
  // Account the cycles burned spinning until this instant.
  const SimTime spun = sim_.now() - poll_started_;
  polling_proc_->account_polling(params_.freq.cycles_in(spun));
  polling_proc_ = nullptr;
  ++run_token_;  // invalidate the pending poll-expiry event
  state_ = State::kIdle;
}

void HwThread::begin_poll(Process& proc) {
  assert(state_ == State::kIdle);
  state_ = State::kPolling;
  polling_proc_ = &proc;
  poll_started_ = sim_.now();
  const auto token = ++run_token_;
  sim_.queue().post(params_.poll_grace, [this, token, p = &proc] {
    if (run_token_ != token || state_ != State::kPolling) return;
    p->account_polling(params_.freq.cycles_in(params_.poll_grace));
    polling_proc_ = nullptr;
    state_ = State::kIdle;
    p->suspend();
  });
}

void HwThread::start_next() {
  while (true) {
    if (queue_head_ >= queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
      state_ = State::kIdle;
      // Everyone pinned here is out of work: poll (sole pollable process)
      // or suspend (colocated processes use blocking channels).
      for (auto* thread_proc : pinned_procs_) thread_proc->became_idle();
      return;
    }
    Job& job = queue_[queue_head_++];
    Process& p = *job.proc;
    if (p.crashed() || p.epoch() != job.epoch) {
      // Work queued to a dead (or since-restarted) process evaporates.
      job.fn.reset();
      p.backlog_ = p.backlog_ > 0 ? p.backlog_ - 1 : 0;
      continue;
    }
    state_ = State::kExecuting;
    const double factor = speed_factor();
    const auto scaled = static_cast<Cycles>(
        static_cast<double>(job.cost + job.kernel_cost) * params_.work_scale);
    const SimTime dur = params_.freq.duration(scaled, factor);
    // At most one job executes at a time, so it can live in current_ and the
    // completion event only needs to capture `this` (fits SmallFn inline).
    current_ = std::move(job);
    sim_.queue().post(dur, [this] { complete_current(); });
    return;
  }
}

void HwThread::complete_current() {
  Job job = std::move(current_);
  Process& p = *job.proc;
  if (!p.crashed() && p.epoch() == job.epoch) {
    p.account_processing(job.cost);
    if (p.backlog_ > 0) --p.backlog_;
    if (job.fn) job.fn();
  } else if (p.backlog_ > 0) {
    --p.backlog_;
  }
  state_ = State::kIdle;
  start_next();
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(Simulator& sim, MachineParams params)
    : sim_(sim), params_(std::move(params)) {
  assert(params_.cores > 0);
  assert(params_.threads_per_core >= 1 && params_.threads_per_core <= 2);
  threads_.reserve(
      static_cast<std::size_t>(params_.cores * params_.threads_per_core));
  for (int c = 0; c < params_.cores; ++c) {
    for (int t = 0; t < params_.threads_per_core; ++t) {
      threads_.push_back(std::make_unique<HwThread>(sim_, params_, c, t));
    }
  }
  if (params_.threads_per_core == 2) {
    for (int c = 0; c < params_.cores; ++c) {
      HwThread& a = thread(c, 0);
      HwThread& b = thread(c, 1);
      a.sibling_ = &b;
      b.sibling_ = &a;
    }
  }
}

MachineParams amd_opteron_6168() {
  MachineParams p;
  p.name = "amd12";
  p.cores = 12;
  p.threads_per_core = 1;
  p.freq = Frequency{1.9};
  p.work_scale = 1.0;
  return p;
}

MachineParams intel_xeon_e5520() {
  MachineParams p;
  p.name = "xeon8";
  p.cores = 8;
  p.threads_per_core = 2;
  p.freq = Frequency{2.26};
  p.work_scale = 1.0;
  return p;
}

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

Process::~Process() {
  if (thread_ != nullptr) thread_->remove_pinned(*this);
}

void Process::pin(HwThread& thread) {
  if (thread_ != nullptr) thread_->remove_pinned(*this);
  thread_ = &thread;
  thread.add_pinned(*this);
}

bool Process::can_poll() const {
  // Only a process alone on its hardware thread may spin: colocated
  // processes fall back to blocking (kernel) channels automatically.
  return can_poll_ && thread_ != nullptr && thread_->pinned_count() == 1;
}

void Process::post(Cycles cost, SmallFn fn) {
  assert(thread_ != nullptr && "process must be pinned before receiving work");
  if (crashed_) return;
  ++backlog_;
  const MachineParams& mp = thread_->params();
  if (run_state_ == RunState::kSuspended || run_state_ == RunState::kWaking) {
    // Wake path. MWAIT wake when alone on the hardware thread, otherwise a
    // kernel-assisted wake (IPI + context switch), which is both slower and
    // burns destination-side kernel cycles. Messages arriving while the
    // wake is still in flight are delivered at the same deadline so that
    // per-process FIFO order is preserved (the event queue breaks ties in
    // schedule order).
    Cycles kernel_cost = 0;
    if (run_state_ == RunState::kSuspended) {
      ++stats_.wakeups;
      const bool alone = thread_->pinned_count() == 1;
      const SimTime latency =
          alone ? mp.wake_fast_latency : mp.wake_kernel_latency;
      kernel_cost = mp.resume_cycles + (alone ? 0 : mp.wake_kernel_cycles);
      account_kernel(kernel_cost);
      wake_deadline_ = sim_.now() + latency;
      run_state_ = RunState::kWaking;
    }
    const auto epoch = epoch_;
    sim_.queue().post_at(
        wake_deadline_,
        [this, epoch, cost, kernel_cost, fn = std::move(fn)]() mutable {
          if (crashed_ || epoch_ != epoch) return;
          run_state_ = RunState::kAwake;
          thread_->submit(*this, cost, std::move(fn), kernel_cost);
        });
    return;
  }
  run_state_ = RunState::kAwake;
  thread_->submit(*this, cost, std::move(fn));
}

EventHandle Process::schedule_raw(SimTime delay, SmallFn fn) {
  return sim_.queue().schedule(delay, std::move(fn));
}

void Process::became_idle() {
  if (crashed_ || backlog_ != 0 || run_state_ != RunState::kAwake) return;
  if (can_poll()) {
    run_state_ = RunState::kPolling;
    thread_->begin_poll(*this);
  } else {
    suspend();
  }
}

void Process::suspend() {
  if (run_state_ == RunState::kSuspended) return;
  run_state_ = RunState::kSuspended;
  ++stats_.suspends;
  account_kernel(thread_->params().suspend_cycles);
}

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  backlog_ = 0;
  run_state_ = RunState::kSuspended;
  on_crash();
}

void Process::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  backlog_ = 0;
  run_state_ = RunState::kSuspended;
  on_restart();
}

}  // namespace neat::sim
