// Multicore machine model: cores, hardware threads, and their timing
// parameters.
//
// The paper evaluates on two testbeds — a 12-core AMD Opteron 6168 (1.9 GHz,
// no hyper-threading) and a dual-socket quad-core Intel Xeon E5520 (2.26 GHz,
// 2 hardware threads per core). A Machine captures exactly the properties the
// evaluation depends on: how many independent hardware contexts exist, how a
// hardware thread slows down when its sibling is active, and how fast a cycle
// of work executes.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace neat::sim {

class HwThread;
class Process;
class Simulator;

/// Tunable timing parameters of a machine. Defaults model a contemporary
/// x86 server; the harness overrides per testbed.
struct MachineParams {
  std::string name{"machine"};
  int cores{4};
  int threads_per_core{1};
  Frequency freq{2.0};

  /// Per-cycle efficiency multiplier: cost_in_cycles is multiplied by this
  /// before converting to time. Models per-architecture IPC differences
  /// (the Opteron 6168 retires fewer instructions per cycle than Nehalem).
  double work_scale{1.0};

  /// Speed factor of a hardware thread whose sibling is simultaneously
  /// active. Two busy siblings then deliver 2*0.655 = 1.31x the throughput of
  /// one core — the commonly observed hyper-threading benefit (~31%).
  double ht_shared_speed{0.655};

  /// How long an idle, alone-on-its-thread process keeps polling its queues
  /// before suspending (MWAIT). Table 2's "polling" bucket.
  SimTime poll_grace{14 * kMicrosecond};

  /// Cycles burned in the kernel to suspend (MWAIT is privileged) and to
  /// resume — a NewtOS suspend/resume round trips through the kernel and
  /// scheduler. Table 2's "active in kernel" bucket.
  Cycles suspend_cycles{5000};
  Cycles resume_cycles{5000};

  /// Latency for waking a suspended process on its own hardware thread via
  /// an MWAIT-monitored store. The store itself lands in nanoseconds, but
  /// the sleeper still resumes through its (user-space) scheduler context —
  /// NewtOS-style wakeups of idle components cost several microseconds,
  /// which is exactly the light-load latency effect of Figure 12.
  SimTime wake_fast_latency{25 * kMicrosecond};

  /// Latency and destination-side kernel cost for waking a process that
  /// shares its hardware thread with others (kernel-assisted wake: IPI +
  /// context switch + scheduling).
  SimTime wake_kernel_latency{25 * kMicrosecond};
  Cycles wake_kernel_cycles{2500};
};

/// One hardware thread (architectural context). Executes at most one job at
/// a time; jobs from all processes pinned to it are serialized FIFO.
class HwThread {
 public:
  HwThread(Simulator& sim, const MachineParams& params, int core_id,
           int thread_id);

  HwThread(const HwThread&) = delete;
  HwThread& operator=(const HwThread&) = delete;

  [[nodiscard]] int core_id() const { return core_id_; }
  [[nodiscard]] int thread_id() const { return thread_id_; }
  [[nodiscard]] const MachineParams& params() const { return params_; }

  /// True if the thread is executing a job or spinning in a poll loop —
  /// i.e. it contends with its sibling for core resources. A suspended
  /// (MWAIT'd) thread does not contend.
  [[nodiscard]] bool contending() const { return state_ != State::kIdle; }

  [[nodiscard]] std::size_t pinned_count() const {
    return pinned_procs_.size();
  }

  /// Queue a job: `cost` cycles of work on behalf of `proc`, then `fn`.
  /// `kernel_cost` extends the occupancy (wake/resume overhead) without
  /// counting as useful processing.
  void submit(Process& proc, Cycles cost, SmallFn&& fn,
              Cycles kernel_cost = 0);

 private:
  friend class Machine;
  friend class Process;

  enum class State { kIdle, kExecuting, kPolling };

  struct Job {
    Process* proc;
    Cycles cost;            // useful work -> "processing" bucket
    Cycles kernel_cost{0};  // resume/wake overhead -> occupies time only
                            // (already accounted to the kernel bucket)
    SmallFn fn;
    std::uint64_t epoch;  // process epoch when the job was queued
  };

  void add_pinned(Process& p) { pinned_procs_.push_back(&p); }
  void remove_pinned(Process& p) {
    std::erase(pinned_procs_, &p);
  }

  /// Interrupt a poll loop (job arrived while polling): accounts the cycles
  /// spent spinning so far and returns to executing.
  void preempt_poll();

  /// Enter the poll-then-suspend sequence on behalf of `proc` (the sole
  /// process pinned here). After poll_grace with no work, `proc.suspend()`
  /// is invoked.
  void begin_poll(Process& proc);

  void start_next();
  void complete_current();
  [[nodiscard]] double speed_factor() const;

  Simulator& sim_;
  const MachineParams& params_;
  int core_id_;
  int thread_id_;
  HwThread* sibling_{nullptr};  // wired by Machine
  State state_{State::kIdle};
  std::vector<Job> queue_;  // FIFO via queue_head_
  std::size_t queue_head_{0};
  /// The single in-flight job (state_ == kExecuting). Held here, not in the
  /// completion closure, so the completion event captures only `this`.
  Job current_{};
  std::vector<Process*> pinned_procs_;
  Process* polling_proc_{nullptr};
  SimTime poll_started_{0};
  std::uint64_t run_token_{0};  // guards stale poll-expiry events
};

/// A machine: `cores x threads_per_core` hardware threads sharing one set of
/// timing parameters. Thread (c, t) is returned by thread(c, t).
class Machine {
 public:
  Machine(Simulator& sim, MachineParams params);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineParams& params() const { return params_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] int cores() const { return params_.cores; }
  [[nodiscard]] int threads_per_core() const {
    return params_.threads_per_core;
  }
  [[nodiscard]] int hw_threads() const {
    return params_.cores * params_.threads_per_core;
  }

  [[nodiscard]] HwThread& thread(int core, int ht = 0) {
    assert(core >= 0 && core < params_.cores);
    assert(ht >= 0 && ht < params_.threads_per_core);
    return *threads_[static_cast<std::size_t>(core * params_.threads_per_core +
                                              ht)];
  }

 private:
  Simulator& sim_;
  MachineParams params_;
  std::vector<std::unique_ptr<HwThread>> threads_;
};

/// The paper's AMD testbed: 12-core Opteron 6168, 1.9 GHz, no HT.
[[nodiscard]] MachineParams amd_opteron_6168();

/// The paper's Intel testbed: dual quad-core Xeon E5520, 2.26 GHz, 2-way HT
/// (8 cores / 16 hardware threads total).
[[nodiscard]] MachineParams intel_xeon_e5520();

}  // namespace neat::sim
