// Deterministic discrete-event queue.
//
// Events scheduled for the same virtual time fire in schedule order (FIFO),
// which makes every run with the same seed bit-for-bit reproducible — a
// property the NEaT test suite relies on (DESIGN.md invariant 7).
//
// The queue is the hottest structure in the whole simulator (tens of
// millions of events per bench run), so it is built for allocation-free
// steady state:
//
//  * heap entries are 24-byte PODs — sift operations never move closures;
//  * callbacks live in a recycled slot table addressed by (index,
//    generation); cancellation is a generation check, not a heap-allocated
//    shared flag per event;
//  * post()/post_at() skip EventHandle construction entirely for
//    fire-and-forget events (the vast majority: channel deliveries, NIC
//    wire arrivals, process wake-ups).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace neat::sim {

namespace detail {

/// Callback storage shared between the queue and its handles. Kept alive by
/// outstanding EventHandles so cancel()/pending() stay safe even after the
/// queue itself is destroyed (the queue clears all closures on destruction,
/// so no user object is pinned past the simulation).
struct EventSlots {
  struct Slot {
    SmallFn fn;
    std::uint32_t gen{0};
    bool armed{false};
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free;

  std::uint32_t acquire(SmallFn fn) {
    std::uint32_t idx;
    if (!free.empty()) {
      idx = free.back();
      free.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    Slot& s = slots[idx];
    s.fn = std::move(fn);
    s.armed = true;
    return idx;
  }

  /// Retire a slot once its heap entry has been popped; bumps the
  /// generation so stale handles (and stale heap entries) can never match.
  void release(std::uint32_t idx) {
    Slot& s = slots[idx];
    s.fn.reset();
    s.armed = false;
    ++s.gen;
    free.push_back(idx);
  }
};

}  // namespace detail

/// Handle to a scheduled event. Allows O(1) cancellation; cancelled events
/// are skipped (and their slots recycled) when they reach the head of the
/// queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent. Releases the
  /// closure (and anything it captured) immediately.
  void cancel() {
    if (pending()) {
      auto& s = slots_->slots[idx_];
      s.fn.reset();
      s.armed = false;  // slot itself is recycled when the entry pops
    }
  }

  /// True while the event is scheduled and not cancelled or fired.
  [[nodiscard]] bool pending() const {
    if (!slots_) return false;
    const auto& s = slots_->slots[idx_];
    return s.armed && s.gen == gen_;
  }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventSlots> slots, std::uint32_t idx,
              std::uint32_t gen)
      : slots_(std::move(slots)), idx_(idx), gen_(gen) {}

  std::shared_ptr<detail::EventSlots> slots_;
  std::uint32_t idx_{0};
  std::uint32_t gen_{0};
};

/// Min-heap of timestamped callbacks with deterministic tie-breaking.
class EventQueue {
 public:
  EventQueue() : slots_(std::make_shared<detail::EventSlots>()) {}

  ~EventQueue() {
    // Drop every outstanding closure now: callbacks may capture sockets or
    // packets that must not outlive the simulation just because some
    // EventHandle still exists somewhere.
    for (auto& s : slots_->slots) {
      s.fn.reset();
      s.armed = false;
      ++s.gen;
    }
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time. Advances only inside run_until()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Total events executed since construction (wall-clock perf accounting:
  /// ext_perf reports events per host-second).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedule `fn` to run at absolute time `at` (>= now). Times in the past
  /// are clamped to `now` — firing immediately on the next step.
  EventHandle schedule_at(SimTime at, SmallFn fn) {
    const std::uint32_t idx = push(at, std::move(fn));
    return EventHandle{slots_, idx, slots_->slots[idx].gen};
  }

  /// Schedule `fn` to run `delay` ns from now.
  EventHandle schedule(SimTime delay, SmallFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Fire-and-forget variants: no handle, no cancellation, no shared_ptr
  /// traffic. The fast path for every message delivery.
  void post_at(SimTime at, SmallFn fn) { push(at, std::move(fn)); }
  void post(SimTime delay, SmallFn fn) { push(now_ + delay, std::move(fn)); }

  /// Run the earliest pending event, advancing time to it.
  /// Returns false if there is nothing left to run.
  bool step() {
    while (std::vector<Entry>* h = top_heap()) {
      const Entry e = h->front();
      heap_pop(*h);
      auto& slot = slots_->slots[e.slot];
      if (slot.gen != e.gen) continue;  // slot already recycled (stale)
      if (!slot.armed) {                // cancelled: recycle silently
        slots_->release(e.slot);
        --live_;
        continue;
      }
      SmallFn fn = std::move(slot.fn);
      slots_->release(e.slot);
      --live_;
      ++executed_;
      now_ = e.time;
      fn();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or virtual time would exceed
  /// `deadline`. Time is left at min(deadline, last event time).
  void run_until(SimTime deadline) {
    while (std::vector<Entry>* h = top_heap()) {
      const Entry e = h->front();
      auto& slot = slots_->slots[e.slot];
      if (slot.gen != e.gen) {  // slot already recycled (stale)
        heap_pop(*h);
        continue;
      }
      if (!slot.armed) {  // cancelled: recycle silently
        heap_pop(*h);
        slots_->release(e.slot);
        --live_;
        continue;
      }
      if (e.time > deadline) break;
      heap_pop(*h);
      SmallFn fn = std::move(slot.fn);
      slots_->release(e.slot);
      --live_;
      ++executed_;
      now_ = e.time;
      fn();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until the queue is completely drained.
  void run() {
    while (step()) {
    }
  }

 private:
  struct Entry {
    SimTime time{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
  };

  /// Strict ordering: earlier time first, schedule order (seq) as the
  /// deterministic tie-break (DESIGN.md invariant 7).
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Hand-rolled 4-ary min-heaps over the 24-byte POD entries. A 4-ary heap
  // halves the tree depth versus the binary std::priority_queue (fewer
  // cache lines touched per sift) and the hole-based sifts move each entry
  // once instead of swapping — this queue is the hottest structure in the
  // simulator, and the bench runs push ~1M events per simulated window.
  //
  // The queue is SPLIT by horizon: events due within kFarThreshold go to
  // the near heap, everything else (protocol timers: RTO, TIME_WAIT,
  // delayed ACK, app think time) to the far heap. Under connection churn
  // tens of thousands of ms-scale timers are pending at any instant; kept
  // in one heap they push every ns-scale delivery sift through hundreds of
  // kilobytes of cold entries. Split, the near heap stays a few hundred
  // cache-hot entries and the far heap is touched roughly once per timer.
  // Pop order is still strictly (time, seq): step() compares the two heap
  // tops with the same `earlier` ordering, so determinism (DESIGN.md
  // invariant 7) is preserved bit-for-bit.

  static constexpr SimTime kFarThreshold = 1 * kMillisecond;

  static void heap_push(std::vector<Entry>& h, Entry e) {
    h.push_back(e);  // grow; e sifts into place below
    std::size_t i = h.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  static void heap_pop(std::vector<Entry>& h) {
    const Entry last = h.back();
    h.pop_back();
    const std::size_t n = h.size();
    if (n == 0) return;
    std::size_t i = 0;
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(h[c], h[best])) best = c;
      }
      if (!earlier(h[best], last)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = last;
  }

  /// The heap holding the globally earliest entry (nullptr when drained).
  [[nodiscard]] std::vector<Entry>* top_heap() {
    if (near_.empty()) return far_.empty() ? nullptr : &far_;
    if (far_.empty()) return &near_;
    return earlier(near_.front(), far_.front()) ? &near_ : &far_;
  }

  std::uint32_t push(SimTime at, SmallFn fn) {
    if (at < now_) at = now_;
    const std::uint32_t idx = slots_->acquire(std::move(fn));
    const Entry e{at, seq_++, idx, slots_->slots[idx].gen};
    heap_push(at - now_ >= kFarThreshold ? far_ : near_, e);
    ++live_;
    return idx;
  }

  std::shared_ptr<detail::EventSlots> slots_;
  std::vector<Entry> near_;
  std::vector<Entry> far_;
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::size_t live_{0};
  std::uint64_t executed_{0};
};

}  // namespace neat::sim
