// Deterministic discrete-event queue.
//
// Events scheduled for the same virtual time fire in schedule order (FIFO),
// which makes every run with the same seed bit-for-bit reproducible — a
// property the NEaT test suite relies on (DESIGN.md invariant 7).
//
// The queue is the hottest structure in the whole simulator (tens of
// millions of events per bench run), so it is built for allocation-free
// steady state:
//
//  * heap entries are 24-byte PODs — sift operations never move closures;
//  * callbacks live in a recycled slot table addressed by (index,
//    generation); cancellation is a generation check, not a heap-allocated
//    shared flag per event;
//  * post()/post_at() skip EventHandle construction entirely for
//    fire-and-forget events (the vast majority: channel deliveries, NIC
//    wire arrivals, process wake-ups).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace neat::sim {

namespace detail {

/// Callback storage shared between the queue and its handles. Kept alive by
/// outstanding EventHandles so cancel()/pending() stay safe even after the
/// queue itself is destroyed (the queue clears all closures on destruction,
/// so no user object is pinned past the simulation).
struct EventSlots {
  struct Slot {
    SmallFn fn;
    std::uint32_t gen{0};
    bool armed{false};
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free;

  std::uint32_t acquire(SmallFn fn) {
    std::uint32_t idx;
    if (!free.empty()) {
      idx = free.back();
      free.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    Slot& s = slots[idx];
    s.fn = std::move(fn);
    s.armed = true;
    return idx;
  }

  /// Retire a slot once its heap entry has been popped; bumps the
  /// generation so stale handles (and stale heap entries) can never match.
  void release(std::uint32_t idx) {
    Slot& s = slots[idx];
    s.fn.reset();
    s.armed = false;
    ++s.gen;
    free.push_back(idx);
  }
};

}  // namespace detail

/// Handle to a scheduled event. Allows O(1) cancellation; cancelled events
/// are skipped (and their slots recycled) when they reach the head of the
/// queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent. Releases the
  /// closure (and anything it captured) immediately.
  void cancel() {
    if (pending()) {
      auto& s = slots_->slots[idx_];
      s.fn.reset();
      s.armed = false;  // slot itself is recycled when the entry pops
    }
  }

  /// True while the event is scheduled and not cancelled or fired.
  [[nodiscard]] bool pending() const {
    if (!slots_) return false;
    const auto& s = slots_->slots[idx_];
    return s.armed && s.gen == gen_;
  }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventSlots> slots, std::uint32_t idx,
              std::uint32_t gen)
      : slots_(std::move(slots)), idx_(idx), gen_(gen) {}

  std::shared_ptr<detail::EventSlots> slots_;
  std::uint32_t idx_{0};
  std::uint32_t gen_{0};
};

/// Min-heap of timestamped callbacks with deterministic tie-breaking.
class EventQueue {
 public:
  EventQueue() : slots_(std::make_shared<detail::EventSlots>()) {}

  ~EventQueue() {
    // Drop every outstanding closure now: callbacks may capture sockets or
    // packets that must not outlive the simulation just because some
    // EventHandle still exists somewhere.
    for (auto& s : slots_->slots) {
      s.fn.reset();
      s.armed = false;
      ++s.gen;
    }
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time. Advances only inside run_until()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Total events executed since construction (wall-clock perf accounting:
  /// ext_perf reports events per host-second).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedule `fn` to run at absolute time `at` (>= now). Times in the past
  /// are clamped to `now` — firing immediately on the next step.
  EventHandle schedule_at(SimTime at, SmallFn fn) {
    const std::uint32_t idx = push(at, std::move(fn));
    return EventHandle{slots_, idx, slots_->slots[idx].gen};
  }

  /// Schedule `fn` to run `delay` ns from now.
  EventHandle schedule(SimTime delay, SmallFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Fire-and-forget variants: no handle, no cancellation, no shared_ptr
  /// traffic. The fast path for every message delivery.
  void post_at(SimTime at, SmallFn fn) { push(at, std::move(fn)); }
  void post(SimTime delay, SmallFn fn) { push(now_ + delay, std::move(fn)); }

  /// Run the earliest pending event, advancing time to it.
  /// Returns false if there is nothing left to run.
  bool step() {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      heap_.pop();
      auto& slot = slots_->slots[e.slot];
      if (slot.gen != e.gen) continue;  // slot already recycled (stale)
      if (!slot.armed) {                // cancelled: recycle silently
        slots_->release(e.slot);
        --live_;
        continue;
      }
      SmallFn fn = std::move(slot.fn);
      slots_->release(e.slot);
      --live_;
      ++executed_;
      now_ = e.time;
      fn();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or virtual time would exceed
  /// `deadline`. Time is left at min(deadline, last event time).
  void run_until(SimTime deadline) {
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      const auto& slot = slots_->slots[top.slot];
      if (slot.gen != top.gen || !slot.armed) {
        // Drop cancelled/stale heads without advancing time.
        if (slot.gen == top.gen) {
          slots_->release(top.slot);
          --live_;
        }
        heap_.pop();
        continue;
      }
      if (top.time > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until the queue is completely drained.
  void run() {
    while (step()) {
    }
  }

 private:
  struct Entry {
    SimTime time{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::uint32_t push(SimTime at, SmallFn fn) {
    if (at < now_) at = now_;
    const std::uint32_t idx = slots_->acquire(std::move(fn));
    heap_.push(Entry{at, seq_++, idx, slots_->slots[idx].gen});
    ++live_;
    return idx;
  }

  std::shared_ptr<detail::EventSlots> slots_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::size_t live_{0};
  std::uint64_t executed_{0};
};

}  // namespace neat::sim
