// Deterministic discrete-event queue.
//
// Events scheduled for the same virtual time fire in schedule order (FIFO),
// which makes every run with the same seed bit-for-bit reproducible — a
// property the NEaT test suite relies on (DESIGN.md invariant 7).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace neat::sim {

/// Handle to a scheduled event. Allows O(1) cancellation; cancelled events
/// are skipped (and destroyed) when they reach the head of the queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }

  /// True while the event is scheduled and not cancelled or fired.
  [[nodiscard]] bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

/// Min-heap of timestamped callbacks with deterministic tie-breaking.
class EventQueue {
 public:
  /// Current virtual time. Advances only inside run_until()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Schedule `fn` to run at absolute time `at` (>= now). Times in the past
  /// are clamped to `now` — firing immediately on the next step.
  EventHandle schedule_at(SimTime at, std::function<void()> fn) {
    if (at < now_) at = now_;
    auto alive = std::make_shared<bool>(true);
    heap_.push(Event{at, seq_++, std::move(fn), alive});
    ++live_;
    return EventHandle{alive};
  }

  /// Schedule `fn` to run `delay` ns from now.
  EventHandle schedule(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run the earliest pending event, advancing time to it.
  /// Returns false if there is nothing left to run.
  bool step() {
    while (!heap_.empty()) {
      // Copy out then pop so the callback may schedule new events freely.
      Event ev = heap_.top();
      heap_.pop();
      if (!*ev.alive) continue;  // cancelled: discard silently
      *ev.alive = false;
      --live_;
      now_ = ev.time;
      ev.fn();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or virtual time would exceed
  /// `deadline`. Time is left at min(deadline, last event time).
  void run_until(SimTime deadline) {
    while (!heap_.empty()) {
      const Event& top = heap_.top();
      if (!*top.alive) {  // drop cancelled heads without advancing time
        heap_.pop();
        continue;
      }
      if (top.time > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until the queue is completely drained.
  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    SimTime time{};
    std::uint64_t seq{};
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_{0};
  std::uint64_t seq_{0};
  std::size_t live_{0};
};

}  // namespace neat::sim
