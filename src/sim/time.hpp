// Virtual time and CPU-cycle accounting for the NEaT discrete-event simulator.
//
// The simulator measures wall-clock virtual time in integer nanoseconds and CPU
// work in integer cycles. Cycles convert to time through the frequency of the
// hardware thread executing the work, which lets the same protocol code run on
// machines with different clock speeds (the paper's 1.9 GHz Opteron vs the
// 2.26 GHz Xeon).
#pragma once

#include <cstdint>

namespace neat::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// CPU work in cycles (before any frequency / hyper-threading scaling).
using Cycles = std::uint64_t;

/// A frequency in GHz; also cycles-per-nanosecond.
struct Frequency {
  double ghz{1.0};

  /// Time taken to execute `c` cycles at `speed_factor` (0 < factor <= 1)
  /// of this frequency, rounded up to at least 1 ns for nonzero work.
  [[nodiscard]] SimTime duration(Cycles c, double speed_factor = 1.0) const {
    if (c == 0) return 0;
    const double ns = static_cast<double>(c) / (ghz * speed_factor);
    const auto t = static_cast<SimTime>(ns);
    return t == 0 ? 1 : t;
  }

  /// Number of cycles this frequency executes in `ns` nanoseconds.
  [[nodiscard]] Cycles cycles_in(SimTime ns) const {
    return static_cast<Cycles>(static_cast<double>(ns) * ghz);
  }
};

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Convert a SimTime interval to (floating point) seconds.
[[nodiscard]] inline double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Convert a SimTime interval to (floating point) milliseconds.
[[nodiscard]] inline double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Convert a SimTime interval to (floating point) microseconds.
[[nodiscard]] inline double to_micros(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

}  // namespace neat::sim
