// Move-only callable with large inline storage.
//
// The simulator's hot path is "schedule a closure, fire it once": 18M+
// closures per bench run. std::function's 16-byte small-buffer means nearly
// every capture (a PacketPtr plus a timestamp plus a this-pointer already
// exceeds it) heap-allocates, and the allocator shows up at the top of the
// wall-clock profile. SmallFn trades memory for allocation-freedom: 80
// bytes of inline storage covers every closure the data path creates, with
// a heap fallback for the rare oversized capture. Move-only (closures own
// packets and sockets; copying them would be a bug anyway).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace neat::sim {

class SmallFn {
 public:
  /// Inline capture budget. Sized for the largest hot-path closure
  /// (Process::post wake path: this + epoch + costs + a nested callable).
  static constexpr std::size_t kInlineSize = 80;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule()/post() call site
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the held callable (releases captured resources immediately —
  /// cancellation paths use this so dead closures don't pin packets).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*destroy)(unsigned char*);
    void (*relocate)(unsigned char* dst, unsigned char* src);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](unsigned char* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
      [](unsigned char* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
      [](unsigned char* dst, unsigned char* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*s));
        s->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](unsigned char* b) {
        (**std::launder(reinterpret_cast<Fn**>(b)))();
      },
      [](unsigned char* b) {
        delete *std::launder(reinterpret_cast<Fn**>(b));
      },
      [](unsigned char* dst, unsigned char* src) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (static_cast<void*>(dst)) Fn*(*s);
      }};

  void steal(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};
};

}  // namespace neat::sim
