// Top-level simulation context: virtual clock, event queue, RNG, machines.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace neat::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] SimTime now() const { return queue_.now(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Observability hub: the metrics registry and flow tracer shared by
  /// every layer of this simulation.
  [[nodiscard]] obs::Hub& obs() { return obs_; }
  [[nodiscard]] obs::Registry& metrics() { return obs_.metrics; }
  [[nodiscard]] obs::FlowTracer& tracer() { return obs_.tracer; }

  /// Schedule a raw event (not tied to any process; use Process::after for
  /// component timers so they die with the component).
  EventHandle schedule(SimTime delay, SmallFn fn) {
    return queue_.schedule(delay, std::move(fn));
  }

  /// Fire-and-forget raw event: no handle, no cancellation (the fast path).
  void post(SimTime delay, SmallFn fn) { queue_.post(delay, std::move(fn)); }

  /// Create a machine owned by the simulator.
  Machine& add_machine(MachineParams params) {
    machines_.push_back(std::make_unique<Machine>(*this, std::move(params)));
    return *machines_.back();
  }

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  [[nodiscard]] Machine& machine(std::size_t i) { return *machines_.at(i); }

  /// Advance virtual time to `deadline`, executing all events on the way.
  void run_until(SimTime deadline) { queue_.run_until(deadline); }

  /// Advance virtual time by `delta`.
  void run_for(SimTime delta) { queue_.run_until(queue_.now() + delta); }

  /// Drain every pending event (use in small tests only).
  void run() { queue_.run(); }

 private:
  EventQueue queue_;
  Rng rng_;
  obs::Hub obs_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace neat::sim
