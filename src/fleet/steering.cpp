#include "fleet/steering.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/wire.hpp"

namespace neat::fleet {

namespace {

/// In-place Ethernet rewrite — the tier's entire data-plane transformation.
void rewrite_macs(net::Packet& frame, net::MacAddr dst, net::MacAddr src) {
  auto b = frame.bytes();
  std::copy(dst.bytes.begin(), dst.bytes.end(), b.begin());
  std::copy(src.bytes.begin(), src.bytes.end(), b.begin() + 6);
}

[[nodiscard]] bool is_arp(const net::Packet& frame) {
  const auto b = frame.bytes();
  return b.size() >= net::EthernetHeader::kSize &&
         net::get_u16(b, 12) ==
             static_cast<std::uint16_t>(net::EtherType::kArp);
}

[[nodiscard]] bool is_icmp(const net::Packet& frame) {
  const auto b = frame.bytes();
  constexpr std::size_t kEth = net::EthernetHeader::kSize;
  return b.size() >= kEth + net::Ipv4Header::kSize &&
         net::get_u16(b, 12) ==
             static_cast<std::uint16_t>(net::EtherType::kIpv4) &&
         static_cast<net::IpProto>(b[kEth + 9]) == net::IpProto::kIcmp;
}

[[nodiscard]] net::Ipv4Addr frame_dst_ip(const net::Packet& frame) {
  constexpr std::size_t kEth = net::EthernetHeader::kSize;
  return net::Ipv4Addr{net::get_u32(frame.bytes(), kEth + 16)};
}

}  // namespace

SteeringTier::SteeringTier(sim::Simulator& sim, SteeringConfig cfg,
                           obs::Hub* hub)
    : sim_(sim), cfg_(cfg), hub_(hub), table_(cfg.table_size) {}

SteeringTier::~SteeringTier() { probe_timer_.cancel(); }

SteeringTier::Port& SteeringTier::new_port() {
  nic::NicParams params;
  params.num_queues = 1;
  params.queue_depth = cfg_.port_queue_depth;
  params.tracking_filters = false;
  auto port = std::make_unique<Port>();
  const auto idx = ports_.size();
  // Backend ports carry the prober IP (so echo replies terminate here);
  // client ports carry the VIP (the address clients believe they talk to).
  port->nic = std::make_unique<nic::Nic>(
      sim_, net::MacAddr::local(cfg_.mac_base + static_cast<std::uint32_t>(idx)),
      cfg_.prober_ip, params);
  if (hub_ != nullptr) port->nic->bind_hub(hub_);
  port->nic->set_rx_notify([this, idx](int) { schedule_drain(idx); });
  ports_.push_back(std::move(port));
  return *ports_.back();
}

nic::Nic& SteeringTier::add_backend_port(int id, net::MacAddr peer_mac) {
  assert(!backend_ports_.contains(id));
  Port& p = new_port();
  p.is_backend = true;
  p.backend_id = id;
  p.peer_mac = peer_mac;
  backend_ports_.emplace(id, ports_.size() - 1);
  return *p.nic;
}

nic::Nic& SteeringTier::add_client_port(net::Ipv4Addr ip,
                                        net::MacAddr peer_mac) {
  assert(!client_ports_.contains(ip.value));
  Port& p = new_port();
  p.is_backend = false;
  p.client_ip = ip;
  p.peer_mac = peer_mac;
  client_ports_.emplace(ip.value, ports_.size() - 1);
  return *p.nic;
}

nic::Nic* SteeringTier::backend_port(int id) {
  auto it = backend_ports_.find(id);
  return it == backend_ports_.end() ? nullptr : ports_[it->second]->nic.get();
}

void SteeringTier::add_backend(int id) {
  assert(backend_ports_.contains(id) && "link the backend's port first");
  table_.add_backend(id);
  probes_.emplace(id, ProbeState{});
  sim_.tracer().emit({sim_.now(), 0, "fleet", "backend_add", 0, id,
                      "\"backends\":" + std::to_string(table_.backend_count())});
}

void SteeringTier::remove_backend(int id) {
  if (!table_.has_backend(id)) return;
  table_.remove_backend(id);
  probes_.erase(id);
  // Purge the dead backend's tracked flows: later client frames re-hash to
  // a survivor, whose TCP stack answers the unknown segments with RSTs.
  std::size_t purged = 0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second == id) {
      it = flows_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  stats_.flows_removed += purged;
  sim_.tracer().emit({sim_.now(), 0, "fleet", "backend_remove", 0, id,
                      "\"flows_purged\":" + std::to_string(purged)});
}

std::optional<int> SteeringTier::tracked_backend(
    const net::FlowKey& flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return std::nullopt;
  return it->second;
}

std::vector<net::FlowKey> SteeringTier::tracked_flows_for(int id) const {
  std::vector<net::FlowKey> out;
  for (const auto& [k, b] : flows_) {
    if (b == id) out.push_back(k);
  }
  return out;
}

void SteeringTier::repoint_flows(const std::vector<net::FlowKey>& flows,
                                 int id) {
  for (const auto& f : flows) flows_[f] = id;
}

int SteeringTier::steer(const net::FlowKey& flow) const {
  if (auto it = flows_.find(flow); it != flows_.end()) return it->second;
  return table_.lookup(flow);
}

void SteeringTier::begin_capture(const std::vector<net::FlowKey>& flows) {
  for (auto& p : ports_) {
    if (!p->is_backend) p->nic->begin_flow_capture(flows);
  }
}

void SteeringTier::end_capture() {
  for (auto& p : ports_) {
    if (!p->is_backend) p->nic->end_flow_capture();
  }
}

void SteeringTier::schedule_drain(std::size_t port_idx) {
  Port& p = *ports_[port_idx];
  if (p.drain_pending) return;
  p.drain_pending = true;
  // One drain event per port per forward_latency window: frames arriving
  // inside the window ride the same event, preserving per-port FIFO (the
  // event heap is not FIFO-stable at equal timestamps).
  sim_.queue().post(cfg_.forward_latency,
                    [this, port_idx] { drain(port_idx); });
}

void SteeringTier::drain(std::size_t port_idx) {
  Port& p = *ports_[port_idx];
  p.drain_pending = false;
  while (net::PacketPtr frame = p.nic->poll_rx(0)) {
    if (is_arp(*frame)) {
      proxy_arp(p, std::move(frame));
      continue;
    }
    if (p.is_backend) {
      handle_backend_frame(p, std::move(frame));
    } else {
      handle_client_frame(std::move(frame));
    }
  }
}

void SteeringTier::proxy_arp(Port& port, net::PacketPtr frame) {
  // The tier answers every ARP request with the receiving port's own MAC:
  // to each machine, "everything else" lives behind the tier (proxy ARP on
  // a point-to-point segment). Replies are never seen — neighbours resolve
  // us, not each other.
  auto eth = net::EthernetHeader::decode(*frame);
  if (!eth) return;
  auto msg = net::ArpMessage::decode(*frame);
  if (!msg || msg->op != net::ArpMessage::Op::kRequest) return;
  net::ArpMessage reply;
  reply.op = net::ArpMessage::Op::kReply;
  reply.sender_mac = port.nic->mac();
  reply.sender_ip = msg->target_ip;
  reply.target_mac = msg->sender_mac;
  reply.target_ip = msg->sender_ip;
  auto pkt = reply.encode();
  net::EthernetHeader reth;
  reth.src = port.nic->mac();
  reth.dst = msg->sender_mac;
  reth.type = net::EtherType::kArp;
  reth.encode(*pkt);
  ++stats_.arp_proxied;
  port.nic->transmit(std::move(pkt));
}

void SteeringTier::forward(Port& out, net::PacketPtr frame) {
  rewrite_macs(*frame, out.peer_mac, out.nic->mac());
  out.nic->transmit(std::move(frame));
}

void SteeringTier::note_flow_flags(const net::FlowKey& canonical, bool rst,
                                   bool fin) {
  if (rst) {
    if (flows_.erase(canonical) > 0) ++stats_.flows_removed;
    return;
  }
  if (fin) {
    // Let the rest of the close handshake (and TIME_WAIT stragglers) keep
    // their pinned path, then retire the entry. A reused 4-tuple's SYN
    // re-installs before the linger fires; erasing then is fine — the next
    // frame re-pins via the table, which is where a fresh flow goes anyway.
    sim_.queue().post(cfg_.fin_linger, [this, canonical] {
      if (flows_.erase(canonical) > 0) ++stats_.flows_removed;
    });
  }
}

void SteeringTier::handle_client_frame(net::PacketPtr frame) {
  const auto flow = nic::Nic::peek_flow(*frame, cfg_.vip);
  if (!flow || frame_dst_ip(*frame) != cfg_.vip) {
    ++stats_.unknown_dst_drops;
    return;
  }
  // peek_flow keys by the frame's destination side, so a client→VIP frame
  // is already in canonical orientation: local = VIP:port, remote = client.
  const net::FlowKey& key = flow->key;
  int backend = -1;
  if (auto it = flows_.find(key); it != flows_.end()) {
    backend = it->second;
  } else {
    backend = table_.lookup(key);
    if (backend >= 0 && flow->is_tcp && flow->syn) {
      // Pin on SYN only: mid-flow frames with no entry belong to purged
      // (dead-host) flows — steer them to a survivor for the RST, but do
      // not resurrect the pin.
      flows_.emplace(key, backend);
      ++stats_.flows_installed;
    }
  }
  if (backend < 0) {
    ++stats_.no_backend_drops;
    return;
  }
  auto pit = backend_ports_.find(backend);
  if (pit == backend_ports_.end()) {
    ++stats_.no_backend_drops;
    return;
  }
  if (flow->is_tcp) note_flow_flags(key, flow->rst, flow->fin);
  ++stats_.to_backend;
  forward(*ports_[pit->second], std::move(frame));
}

void SteeringTier::handle_backend_frame(Port& in, net::PacketPtr frame) {
  if (is_icmp(*frame) && frame_dst_ip(*frame) == cfg_.prober_ip) {
    // A health-probe echo reply; attribution is by arrival port.
    net::EthernetHeader::decode(*frame);
    net::Ipv4Header::decode(*frame);
    auto icmp = net::IcmpMessage::decode(*frame);
    if (icmp && icmp->type == net::IcmpMessage::Type::kEchoReply) {
      ++stats_.probe_replies;
      if (auto it = probes_.find(in.backend_id); it != probes_.end()) {
        it->second.awaiting = false;
        it->second.misses = 0;
      }
    }
    return;
  }
  const auto flow = nic::Nic::peek_flow(*frame, cfg_.vip);
  if (!flow) {
    ++stats_.unknown_dst_drops;
    return;
  }
  const net::Ipv4Addr dst = frame_dst_ip(*frame);
  auto cit = client_ports_.find(dst.value);
  if (cit == client_ports_.end()) {
    ++stats_.unknown_dst_drops;
    return;
  }
  if (flow->is_tcp) {
    // Backend→client frames arrive keyed by the client side; flip into the
    // canonical VIP-local orientation before conntrack updates.
    net::FlowKey canonical;
    canonical.local_ip = flow->key.remote_ip;
    canonical.local_port = flow->key.remote_port;
    canonical.remote_ip = flow->key.local_ip;
    canonical.remote_port = flow->key.local_port;
    note_flow_flags(canonical, flow->rst, flow->fin);
  }
  ++stats_.to_client;
  forward(*ports_[cit->second], std::move(frame));
}

void SteeringTier::start_probing(std::function<void(int id)> on_down) {
  on_down_ = std::move(on_down);
  if (probing_) return;
  probing_ = true;
  probe_timer_ = sim_.schedule(cfg_.probe_interval, [this] { probe_tick(); });
}

void SteeringTier::stop_probing() {
  probing_ = false;
  probe_timer_.cancel();
}

void SteeringTier::probe_tick() {
  if (!probing_) return;
  // Score the previous round first: an unanswered probe is a miss.
  std::vector<int> down;
  for (auto& [id, st] : probes_) {
    if (st.declared_down) continue;
    if (st.awaiting) {
      st.awaiting = false;
      if (++st.misses >= cfg_.probe_miss_threshold) {
        st.declared_down = true;
        ++stats_.backends_declared_down;
        down.push_back(id);
      }
    }
  }
  for (int id : down) {
    sim_.tracer().emit({sim_.now(), 0, "fleet", "backend_down", 0, id, ""});
    if (on_down_) on_down_(id);  // may erase probes_[id] via remove_backend
  }
  // Send this round's probes to every backend still in the table.
  for (auto& [id, st] : probes_) {
    if (st.declared_down) continue;
    auto pit = backend_ports_.find(id);
    if (pit == backend_ports_.end()) continue;
    Port& port = *ports_[pit->second];
    auto pkt = net::Packet::make(0);
    net::IcmpMessage echo;
    echo.type = net::IcmpMessage::Type::kEchoRequest;
    echo.ident = static_cast<std::uint16_t>(id);
    echo.seq = ++st.seq;
    echo.encode(*pkt);
    net::Ipv4Header ip;
    ip.src = cfg_.prober_ip;
    ip.dst = cfg_.vip;
    ip.proto = net::IpProto::kIcmp;
    ip.encode(*pkt);
    net::EthernetHeader eth;
    eth.dst = port.peer_mac;
    eth.src = port.nic->mac();
    eth.type = net::EtherType::kIpv4;
    eth.encode(*pkt);
    st.awaiting = true;
    ++stats_.probes_sent;
    port.nic->transmit(std::move(pkt));
  }
  probe_timer_ = sim_.schedule(cfg_.probe_interval, [this] { probe_tick(); });
}

}  // namespace neat::fleet
