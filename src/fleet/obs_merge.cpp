#include "fleet/obs_merge.hpp"

namespace neat::fleet {

void merge_registry(obs::Registry& dst, const obs::Registry& src) {
  for (const auto& [name, c] : src.counters()) {
    dst.counter(name).inc(c->value());
  }
  for (const auto& [name, g] : src.gauges()) {
    dst.gauge(name).add(g->value());
  }
  for (const auto& [name, h] : src.histograms()) {
    dst.histogram(name).merge(*h);
  }
}

obs::Histogram merged_histogram(const std::vector<const obs::Hub*>& hubs,
                                std::string_view name) {
  obs::Histogram out;
  for (const auto* hub : hubs) {
    if (hub == nullptr) continue;
    if (const auto* h = hub->metrics.find_histogram(name)) out.merge(*h);
  }
  return out;
}

std::uint64_t summed_counter(const std::vector<const obs::Hub*>& hubs,
                             std::string_view name) {
  std::uint64_t total = 0;
  for (const auto* hub : hubs) {
    if (hub == nullptr) continue;
    if (const auto* c = hub->metrics.find_counter(name)) total += c->value();
  }
  return total;
}

}  // namespace neat::fleet
