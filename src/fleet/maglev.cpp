#include "fleet/maglev.hpp"

#include <algorithm>
#include <cassert>

namespace neat::fleet {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

[[nodiscard]] bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

}  // namespace

MaglevTable::MaglevTable(std::size_t table_size)
    : table_(table_size, -1) {
  assert(is_prime(table_size) &&
         "maglev table size must be prime (skip must be coprime with M)");
}

void MaglevTable::add_backend(int id) {
  assert(!has_backend(id));
  const std::size_t m = table_.size();
  const std::uint64_t h1 = splitmix64(static_cast<std::uint64_t>(id));
  const std::uint64_t h2 = splitmix64(h1);
  Backend b;
  b.id = id;
  b.offset = static_cast<std::size_t>(h1 % m);
  b.skip = static_cast<std::size_t>(h2 % (m - 1)) + 1;
  backends_.insert(
      std::upper_bound(backends_.begin(), backends_.end(), b,
                       [](const Backend& x, const Backend& y) {
                         return x.id < y.id;
                       }),
      b);
  // Standard maglev: a join rebuilds from scratch so the newcomer's share
  // comes evenly from every incumbent (disruption ~M/N, spread out).
  std::fill(table_.begin(), table_.end(), -1);
  fill_unassigned();
}

void MaglevTable::remove_backend(int id) {
  const auto it = std::find_if(backends_.begin(), backends_.end(),
                               [id](const Backend& b) { return b.id == id; });
  if (it == backends_.end()) return;
  backends_.erase(it);
  // Constrained fill: survivors' entries stay exactly where they are; only
  // the departed backend's slots are orphaned and re-filled by the same
  // preference walk. Changed entries == the removed backend's old share.
  for (auto& e : table_) {
    if (e == id) e = -1;
  }
  fill_unassigned();
}

void MaglevTable::fill_unassigned() {
  if (backends_.empty()) return;
  const std::size_t m = table_.size();
  std::size_t unfilled = 0;
  for (const int e : table_) unfilled += e == -1 ? 1 : 0;
  std::vector<std::size_t> next(backends_.size(), 0);
  // Round-robin preference walk (the NSDI'16 population loop). Each
  // backend's permutation covers all M slots (skip coprime with prime M),
  // so the walk terminates once every slot is assigned.
  while (unfilled > 0) {
    for (std::size_t i = 0; i < backends_.size() && unfilled > 0; ++i) {
      const Backend& b = backends_[i];
      std::size_t slot;
      do {
        slot = (b.offset + next[i] * b.skip) % m;
        ++next[i];
      } while (table_[slot] != -1);
      table_[slot] = b.id;
      --unfilled;
    }
  }
}

bool MaglevTable::has_backend(int id) const {
  return std::any_of(backends_.begin(), backends_.end(),
                     [id](const Backend& b) { return b.id == id; });
}

std::vector<int> MaglevTable::backends() const {
  std::vector<int> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.id);
  return out;
}

std::uint64_t MaglevTable::flow_hash(const net::FlowKey& flow) {
  // Hash the 4-tuple symmetric-free (direction matters: the tier always
  // sees the client->VIP orientation for steering decisions).
  std::uint64_t h = splitmix64(
      (static_cast<std::uint64_t>(flow.remote_ip.value) << 32) |
      flow.local_ip.value);
  h = splitmix64(h ^ ((static_cast<std::uint64_t>(flow.remote_port) << 16) |
                      flow.local_port));
  return h;
}

int MaglevTable::lookup(const net::FlowKey& flow) const {
  return lookup_hash(flow_hash(flow));
}

int MaglevTable::lookup_hash(std::uint64_t hash) const {
  if (backends_.empty()) return -1;
  return table_[static_cast<std::size_t>(hash % table_.size())];
}

}  // namespace neat::fleet
