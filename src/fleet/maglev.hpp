// Maglev-style consistent-hash steering table (Eisenbud et al., NSDI'16).
//
// The fleet tier steers flows to backend hosts exactly the way a NEaT host's
// NIC steers flows to replicas, one level up: a hash of the 4-tuple indexes
// a fixed-size lookup table whose entries name backend hosts. The table is
// built from per-backend preference permutations so that
//   * load spreads near-evenly (each backend owns ~M/N of the M entries),
//   * removing a backend disturbs ONLY that backend's entries — survivors
//     keep every slot they had (we re-fill orphaned slots with the standard
//     population walk constrained to survivors' remaining preferences),
//   * adding a backend rebuilds from scratch (standard maglev): the newcomer
//     takes ~M/N entries spread across all incumbents.
//
// Like the NIC's tracking filters, the tier additionally pins established
// flows with a connection-tracking map, so even the (bounded) disruption of
// a table change never moves a live connection; the table decides *new*
// flows only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/addr.hpp"

namespace neat::fleet {

/// splitmix64 — the repo-wide cheap mixer (same finalizer FlowKeyHash uses).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

class MaglevTable {
 public:
  /// Table sizes must be prime (each backend's skip is then coprime with M,
  /// so its preference permutation visits every slot). 4099 entries give a
  /// ≤ ~1% load imbalance for fleets of up to a few dozen backends.
  static constexpr std::size_t kDefaultTableSize = 4099;

  explicit MaglevTable(std::size_t table_size = kDefaultTableSize);

  /// Add a backend (id must be fresh). Standard maglev rebuild: every
  /// backend's share moves a little to make room for the newcomer.
  void add_backend(int id);

  /// Remove a backend. Constrained re-fill: survivors keep every entry they
  /// already own; only the removed backend's former entries are reassigned.
  /// Disruption is therefore exactly the removed backend's share (~M/N).
  void remove_backend(int id);

  [[nodiscard]] bool has_backend(int id) const;
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] std::vector<int> backends() const;

  /// Backend for a flow; -1 when the table is empty.
  [[nodiscard]] int lookup(const net::FlowKey& flow) const;
  [[nodiscard]] int lookup_hash(std::uint64_t hash) const;

  /// Raw table (tests: golden vectors, balance and disruption bounds).
  [[nodiscard]] const std::vector<int>& entries() const { return table_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// The flow hash the tier steers by (exposed for tests).
  [[nodiscard]] static std::uint64_t flow_hash(const net::FlowKey& flow);

 private:
  struct Backend {
    int id{0};
    std::size_t offset{0};  ///< permutation start: h1(id) % M
    std::size_t skip{0};    ///< permutation stride: h2(id) % (M-1) + 1
  };

  /// Standard maglev population walk over the current backend set, filling
  /// only unassigned (-1) slots. With a fully cleared table this is the
  /// canonical build; with survivors' entries pre-kept it is the
  /// constrained fill that bounds removal disruption.
  void fill_unassigned();

  std::vector<Backend> backends_;  ///< sorted by id: the table is a function
                                   ///< of the backend *set*, not join order
  std::vector<int> table_;
};

}  // namespace neat::fleet
