#include "fleet/fleet_autoscaler.hpp"

#include <limits>
#include <string>

namespace neat::fleet {

FleetAutoScaler::FleetAutoScaler(FleetCluster& fleet, FleetScalePolicy policy)
    : fleet_(fleet), policy_(policy) {
  AutoScaler::Policy per_host = policy_.per_host;
  if (!policy_.per_host_scaling) {
    // Pure samplers: thresholds no utilization can cross.
    per_host.scale_up_threshold = 2.0;
    per_host.scale_down_threshold = -1.0;
  }
  for (std::size_t i = 0; i < fleet_.backend_count(); ++i) {
    per_host_.push_back(std::make_unique<AutoScaler>(
        *fleet_.backend(i).host, fleet_.spare_pins(i), per_host));
  }
}

FleetAutoScaler::~FleetAutoScaler() { stop(); }

void FleetAutoScaler::start() {
  if (running_) return;
  running_ = true;
  last_action_ = fleet_.simulator().now();
  for (auto& s : per_host_) s->start();
  timer_ = fleet_.simulator().schedule(policy_.period, [this] { tick(); });
}

void FleetAutoScaler::stop() {
  running_ = false;
  timer_.cancel();
  for (auto& s : per_host_) s->stop();
}

void FleetAutoScaler::tick() {
  if (!running_) return;
  timer_ = fleet_.simulator().schedule(policy_.period, [this] { tick(); });

  sim::Simulator& sim = fleet_.simulator();
  SteeringTier& tier = fleet_.steering();

  // Fleet-mean utilization over the in-table backends (each per-host
  // scaler already samples its own machine every per-host period).
  double sum = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < fleet_.backend_count(); ++i) {
    if (!tier.has_backend(fleet_.backend(i).id)) continue;
    sum += per_host_[i]->last_mean_utilization();
    ++active;
  }
  if (active == 0) return;
  last_util_ = sum / static_cast<double>(active);
  sim.obs().metrics.gauge("fleet.mean_utilization").set(last_util_);

  if (drain_in_flight_ ||
      sim.now() - last_action_ < policy_.cooldown) {
    return;
  }

  if (last_util_ > policy_.host_up_threshold) {
    // Hot: bring a standby into the table (never a powered-off husk).
    for (std::size_t i = 0; i < fleet_.backend_count(); ++i) {
      FleetHost& b = fleet_.backend(i);
      if (tier.has_backend(b.id) || b.host->powered_off()) continue;
      fleet_.activate_backend(i);
      ++host_activations_;
      last_action_ = sim.now();
      sim.tracer().emit({sim.now(), 0, "fleet", "host_scale_up", 0, b.id,
                         "\"util\":" + std::to_string(last_util_)});
      return;
    }
    return;
  }

  if (last_util_ < policy_.host_down_threshold &&
      active > policy_.min_hosts) {
    // Cold: drain the coldest backend into the coldest survivor. The
    // drained host leaves the table inside drain_host and becomes the
    // next standby.
    std::size_t coldest = fleet_.backend_count();
    std::size_t target = fleet_.backend_count();
    double cold_util = std::numeric_limits<double>::max();
    double target_util = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < fleet_.backend_count(); ++i) {
      FleetHost& b = fleet_.backend(i);
      if (!tier.has_backend(b.id) || b.host->powered_off()) continue;
      const double u = per_host_[i]->last_mean_utilization();
      if (u < cold_util) {
        // Previous coldest becomes the target candidate.
        if (coldest < fleet_.backend_count() && cold_util < target_util) {
          target = coldest;
          target_util = cold_util;
        }
        coldest = i;
        cold_util = u;
      } else if (u < target_util) {
        target = i;
        target_util = u;
      }
    }
    if (coldest >= fleet_.backend_count() || target >= fleet_.backend_count()) {
      return;
    }
    drain_in_flight_ = true;
    ++host_drains_;
    last_action_ = sim.now();
    sim.tracer().emit(
        {sim.now(), 0, "fleet", "host_scale_down", 0,
         fleet_.backend(coldest).id,
         "\"into\":" + std::to_string(fleet_.backend(target).id) +
             ",\"util\":" + std::to_string(last_util_)});
    fleet_.drain_host(coldest, target,
                      [this](std::size_t) { drain_in_flight_ = false; });
  }
}

}  // namespace neat::fleet
