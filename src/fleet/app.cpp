#include "fleet/app.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <span>
#include <string>
#include <utility>

namespace neat::fleet {

namespace {

void put_u32(std::uint8_t* dst, std::uint32_t v) {
  dst[0] = static_cast<std::uint8_t>(v >> 24);
  dst[1] = static_cast<std::uint8_t>(v >> 16);
  dst[2] = static_cast<std::uint8_t>(v >> 8);
  dst[3] = static_cast<std::uint8_t>(v);
}

[[nodiscard]] std::uint32_t read_u32(const std::uint8_t* src) {
  return (static_cast<std::uint32_t>(src[0]) << 24) |
         (static_cast<std::uint32_t>(src[1]) << 16) |
         (static_cast<std::uint32_t>(src[2]) << 8) |
         static_cast<std::uint32_t>(src[3]);
}

/// Pull exactly one frame. Caller guarantees readable(fd) >= kPingFrame,
/// so the inner loop terminates within this event.
void read_frame(socklib::SockLib& lib, socklib::Fd fd,
                std::array<std::uint8_t, kPingFrame>& frame) {
  std::size_t have = 0;
  while (have < kPingFrame) {
    have += lib.recv(fd, std::span(frame.data() + have, kPingFrame - have));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PingServer
// ---------------------------------------------------------------------------

PingServer::PingServer(sim::Simulator& sim, std::string name, NeatHost& host,
                       int host_id)
    : sim::Process(sim, std::move(name)), host_id_(host_id) {
  lib_ = std::make_unique<socklib::SockLib>(*this, host);
}

PingServer::~PingServer() = default;

void PingServer::start(const std::vector<std::uint16_t>& ports,
                       std::size_t backlog) {
  for (const auto port : ports) {
    // The accept callback needs the listen fd that listen() returns.
    auto lfd = std::make_shared<socklib::Fd>(socklib::kBadFd);
    *lfd = lib_->listen(port, backlog, [this, lfd] { on_acceptable(*lfd); });
  }
}

socklib::ConnCallbacks PingServer::callbacks() {
  socklib::ConnCallbacks cb;
  cb.on_readable = [this](socklib::Fd fd) { service(fd); };
  cb.on_closed = [this](socklib::Fd fd, socklib::CloseReason r) {
    if (r == socklib::CloseReason::kMigratedAway) ++stats_.migrated_away;
    ++stats_.closed;
    lib_->close(fd);
    conns_.erase(fd);
  };
  return cb;
}

void PingServer::on_acceptable(socklib::Fd listen_fd) {
  for (;;) {
    const socklib::Fd fd = lib_->accept(listen_fd, callbacks());
    if (fd == socklib::kBadFd) return;
    conns_.insert(fd);
    ++stats_.accepted;
  }
}

void PingServer::service(socklib::Fd fd) {
  while (lib_->readable(fd) >= kPingFrame) {
    std::array<std::uint8_t, kPingFrame> req;
    read_frame(*lib_, fd, req);
    std::array<std::uint8_t, kPingFrame> resp{};
    put_u32(resp.data(), static_cast<std::uint32_t>(host_id_));
    std::copy(req.begin() + 8, req.end(), resp.begin() + 8);
    lib_->send(fd, resp);
    ++stats_.requests;
  }
}

void PingServer::adopt(StackReplica& replica,
                       const std::vector<net::TcpSocketPtr>& sockets) {
  for (const auto& s : sockets) {
    const socklib::Fd fd = lib_->adopt_socket(replica, s, callbacks());
    if (fd == socklib::kBadFd) continue;
    conns_.insert(fd);
    ++stats_.adopted;
    // Requests (or partial frames completed by capture replay) may already
    // sit in the adopted receive buffer; the on_readable edge for those
    // bytes fired on the old host, so serve them explicitly once.
    service(fd);
  }
}

// ---------------------------------------------------------------------------
// FleetClient
// ---------------------------------------------------------------------------

FleetClient::FleetClient(sim::Simulator& sim, std::string name,
                         NeatHost& host, Config cfg)
    : sim::Process(sim, std::move(name)), host_(host), cfg_(std::move(cfg)) {
  assert(!cfg_.ports.empty());
  assert(cfg_.ramp_batch < 4096 && "batch must fit the SYSCALL channel");
  lib_ = std::make_unique<socklib::SockLib>(*this, host_);
}

FleetClient::~FleetClient() = default;

void FleetClient::start() { ramp_tick(); }

void FleetClient::mark() {
  window_responses_.clear();
  measuring_ = true;
}

void FleetClient::ramp_tick() {
  // Self-pacing: never hold more than max_inflight_connects handshakes
  // open, so the ramp tracks whatever rate the stack can actually
  // establish at (and the SYSCALL channel never silently overflows).
  const std::uint64_t inflight =
      stats_.attempted - stats_.connected - stats_.connect_failures;
  std::uint64_t batch = std::min<std::uint64_t>(
      cfg_.ramp_batch, cfg_.total_conns - stats_.attempted);
  if (inflight >= cfg_.max_inflight_connects) {
    batch = 0;
  } else {
    batch = std::min<std::uint64_t>(batch,
                                    cfg_.max_inflight_connects - inflight);
  }
  while (batch-- > 0) open_one();
  if (stats_.attempted < cfg_.total_conns) {
    sim().queue().post(cfg_.ramp_interval, [this] { ramp_tick(); });
  }
}

void FleetClient::open_one() {
  ++stats_.attempted;
  const bool pinger = (stats_.attempted % cfg_.sample_every) == 0;
  const std::uint16_t port =
      cfg_.ports[next_port_++ % cfg_.ports.size()];

  socklib::ConnCallbacks cb;
  cb.on_connected = [this, pinger](socklib::Fd fd) {
    ++stats_.connected;
    ++live_conns_;
    if (pinger) {
      pingers_.emplace(fd, Pinger{});
      ping_tick(fd);
    }
  };
  cb.on_readable = [this](socklib::Fd fd) { on_readable(fd); };
  cb.on_closed = [this](socklib::Fd fd, socklib::CloseReason r) {
    switch (r) {
      case socklib::CloseReason::kRefused:
        ++stats_.connect_failures;
        break;
      case socklib::CloseReason::kReset:
      case socklib::CloseReason::kStackFailure:
        ++stats_.closed_reset;
        if (live_conns_ > 0) --live_conns_;
        break;
      case socklib::CloseReason::kMigratedAway:
        ++stats_.closed_migrated;
        if (live_conns_ > 0) --live_conns_;
        break;
      default:
        ++stats_.closed_other;
        if (live_conns_ > 0) --live_conns_;
        break;
    }
    lib_->close(fd);
    pingers_.erase(fd);
  };
  lib_->connect(net::SockAddr{cfg_.vip, port}, cb);
}

void FleetClient::send_ping(socklib::Fd fd, Pinger& p) {
  p.sent_at = sim().now();
  p.outstanding = true;
  ++p.cookie;
  std::array<std::uint8_t, kPingFrame> req{};
  put_u32(req.data() + 8, static_cast<std::uint32_t>(p.cookie >> 32));
  put_u32(req.data() + 12, static_cast<std::uint32_t>(p.cookie));
  lib_->send(fd, req);
}

void FleetClient::ping_tick(socklib::Fd fd) {
  auto it = pingers_.find(fd);
  if (it == pingers_.end()) return;  // connection closed; stop the loop
  Pinger& p = it->second;
  if (!p.outstanding) {
    send_ping(fd, p);
  } else if (sim().now() - p.sent_at >=
             cfg_.retry_intervals * cfg_.ping_interval) {
    // Unanswered for too long: the backend is likely dead. Resend — the
    // tier (its conntrack purged) re-steers the frame to a survivor whose
    // stack RSTs it, which is how this husk finally closes.
    ++stats_.retries;
    send_ping(fd, p);
  }
  sim().queue().post(cfg_.ping_interval, [this, fd] { ping_tick(fd); });
}

obs::Histogram& FleetClient::rtt_histogram(int host_id) {
  auto it = rtt_by_host_.find(host_id);
  if (it == rtt_by_host_.end()) {
    obs::Histogram& h = host_.metrics().histogram(
        "fleet.rtt.host" + std::to_string(host_id) + "_ns");
    it = rtt_by_host_.emplace(host_id, &h).first;
  }
  return *it->second;
}

void FleetClient::on_readable(socklib::Fd fd) {
  auto it = pingers_.find(fd);
  if (it == pingers_.end()) {
    // Ballast connections never send, so nothing should arrive here.
    return;
  }
  Pinger& p = it->second;
  while (lib_->readable(fd) >= kPingFrame) {
    std::array<std::uint8_t, kPingFrame> resp;
    read_frame(*lib_, fd, resp);
    const int host_id = static_cast<int>(read_u32(resp.data()));
    p.outstanding = false;
    ++stats_.responses;
    ++stats_.per_host_responses[host_id];
    ++window_responses_[host_id];
    if (measuring_) {
      const auto rtt = static_cast<std::uint64_t>(sim().now() - p.sent_at);
      host_.metrics().histogram("fleet.rtt_ns").record(rtt);
      rtt_histogram(host_id).record(rtt);
    }
  }
}

}  // namespace neat::fleet
