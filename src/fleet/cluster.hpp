// FleetCluster: a multi-host NEaT deployment in one simulation.
//
// The paper partitions one machine's stack into independently-restartable
// replicas behind the NIC's RSS/filter steering; the fleet layer applies
// the same design recursively one level up: a set of whole NeatHosts
// behind a maglev steering tier. The correspondences are deliberate —
//
//     replica            : host
//     NIC RSS + filters  : maglev table + tier conntrack
//     supervisor watchdog: tier ICMP health prober
//     replica migration  : cross-host drain (extract / adopt via the tier)
//
// The cluster owns the simulator, the tier, N backend hosts (all serving
// the VIP), optional standby hosts (wired but not in the table), and M
// client hosts. Every host gets its own obs::Hub so per-host metrics stay
// separable; fleet/obs_merge.hpp folds them into fleet percentiles.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fleet/steering.hpp"
#include "ipc/channel.hpp"
#include "neat/host.hpp"
#include "net/packet_pool.hpp"
#include "nic/nic.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"
#include "sim/simulator.hpp"

namespace neat::fleet {

/// Client host j's address (each client machine has one IP, many ports).
[[nodiscard]] inline net::Ipv4Addr client_ip(int j) {
  return net::Ipv4Addr::of(10, 0, 1, static_cast<std::uint8_t>(1 + j));
}

struct FleetConfig {
  std::uint64_t seed{1};
  /// Backend hosts entered into the steering table at construction.
  int backends{4};
  /// Extra backend hosts built and wired but NOT in the table: warm
  /// spares the fleet autoscaler (or a test) activates via add_backend.
  int standbys{0};
  int clients{2};
  int replicas_per_backend{2};
  int replicas_per_client{2};

  SteeringConfig steering{};
  StackCosts costs{};
  net::TcpConfig backend_tcp{};
  net::TcpConfig client_tcp{};
  nic::NicParams backend_nic{};  ///< num_queues forced to replica capacity
  nic::NicParams client_nic{};
  nic::Link::Params link{};
  sim::MachineParams backend_machine{};  ///< cores forced to what fits
  sim::MachineParams client_machine{};
  NeatHost::Config::Steering client_steering{
      NeatHost::Config::Steering::kRssPortSelection};
  /// Headroom for per-host scale-up: replicas the machine has spare cores
  /// (and the NIC has queues) for beyond replicas_per_backend.
  int spare_replicas_per_backend{0};

  /// Cross-host drain: how long to let in-flight frames (already past the
  /// tier when the capture window opened) reach the source stack before
  /// freezing it. Covers link propagation + NIC + driver + replica hops.
  sim::SimTime drain_settle{20 * sim::kMicrosecond};
};

/// One machine of the fleet (backend, standby, or client) and everything
/// bolted to it. `link` connects `nic` to its dedicated tier port.
struct FleetHost {
  int id{0};
  bool is_client{false};
  std::unique_ptr<obs::Hub> hub;
  sim::Machine* machine{nullptr};  // owned by the simulator
  std::unique_ptr<nic::Nic> nic;
  std::unique_ptr<NeatHost> host;
  std::unique_ptr<nic::Link> link;
  /// MAC of the tier port this host faces (its one static ARP neighbor).
  net::MacAddr tier_port_mac;

  /// The hardware thread reserved for this machine's application process
  /// (the machine's last core; everything before it is OS/stack).
  [[nodiscard]] sim::HwThread& app_thread() const {
    return machine->thread(machine->cores() - 1);
  }
};

class FleetCluster {
 public:
  explicit FleetCluster(FleetConfig cfg);
  ~FleetCluster();

  FleetCluster(const FleetCluster&) = delete;
  FleetCluster& operator=(const FleetCluster&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim; }
  [[nodiscard]] SteeringTier& steering() { return *tier_; }
  [[nodiscard]] const FleetConfig& config() const { return cfg; }

  /// Backends index 0..backends+standbys-1 (standbys last); id == index.
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] FleetHost& backend(std::size_t i) { return *backends_[i]; }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] FleetHost& client(std::size_t j) { return *clients_[j]; }

  /// Per-host hubs of the in-table backends (for fleet merges).
  [[nodiscard]] std::vector<const obs::Hub*> backend_hubs() const;

  /// Spare-pin sets for a backend's per-host AutoScaler (the cores kept in
  /// reserve by spare_replicas_per_backend).
  [[nodiscard]] std::vector<std::vector<sim::HwThread*>> spare_pins(
      std::size_t i) const;

  /// Power backend `i` off, permanently. Nothing else happens here: the
  /// tier's health prober must detect the silence and remove the backend,
  /// exactly as the per-host supervisor detects a dead replica.
  void crash_host(std::size_t i) { backends_[i]->host->power_off(); }

  /// Enter a standby (or previously drained) backend into the table.
  void activate_backend(std::size_t i) {
    tier_->add_backend(backends_[i]->id);
  }

  /// Start the tier's health prober; a detected-dead backend is pulled
  /// from the table (purging its flows) and then reported via `on_down`.
  void start_health_probing(std::function<void(int id)> on_down = {});

  /// Apps on the receiving side of a cross-host drain: called (in driver
  /// control context of the target host) with each target replica's
  /// freshly adopted sockets, so the application wraps them in fds —
  /// SockLib::adopt_socket is the intended implementation.
  using AdoptionHandler = std::function<void(
      FleetHost& to, StackReplica& replica,
      const std::vector<net::TcpSocketPtr>& adopted)>;
  void set_adoption_handler(AdoptionHandler h) {
    on_adopted_ = std::move(h);
  }

  /// Cross-host live drain: move every established connection from
  /// backend `from` to backend `to`. Fleet-level mirror of
  /// NeatHost::migrate_connections —
  ///   1. collect the source host's flows, open a capture window for them
  ///      on the tier's client ports, and pull `from` out of the table
  ///      (no new SYNs; captured frames wait);
  ///   2. let in-flight frames settle into the still-live source stack;
  ///   3. per source replica: freeze + extract in its TCP context;
  ///   4. split each checkpoint by the TARGET NIC's RSS verdict and adopt
  ///      each piece in the matching target replica's TCP context (so
  ///      subsequent frames steer to the adopting replica with zero
  ///      filter programming; exact filters are installed only when the
  ///      target NIC runs tracking filters);
  ///   5. when everything is adopted: notify the source host's socket
  ///      libraries (kMigratedAway husks), repoint the tier conntrack to
  ///      `to`, close the capture window (replays buffered frames).
  /// `on_done` fires with the number of connections moved.
  void drain_host(std::size_t from, std::size_t to,
                  std::function<void(std::size_t)> on_done = {});

  /// Total established connections currently on backend `i`.
  [[nodiscard]] std::size_t backend_connections(std::size_t i);

  // --- members (construction order matters; see harness::Testbed) ---------
  /// Channel-registry hygiene: first member, destroyed last, after every
  /// channel the cluster transitively owns.
  struct RegistryGuard {
    std::size_t baseline{ipc::channel_registry().size()};
    ~RegistryGuard() {
      assert(ipc::channel_registry().size() == baseline &&
             "channel outlived its simulator (dangling registry entry)");
      if (baseline == 0) ipc::channel_registry_reset();
    }
  };
  RegistryGuard registry_guard;

  net::PacketPool pool;
  net::PacketPool::Use pool_use{pool};

  FleetConfig cfg;
  sim::Simulator sim;

 private:
  struct DrainState;

  std::unique_ptr<FleetHost> build_host(int id, bool is_client);
  void extract_and_ship(const std::shared_ptr<DrainState>& st,
                        StackReplica& rep, std::size_t flow_count);
  void maybe_finish_drain(const std::shared_ptr<DrainState>& st);

  std::unique_ptr<SteeringTier> tier_;
  std::vector<std::unique_ptr<FleetHost>> backends_;
  std::vector<std::unique_ptr<FleetHost>> clients_;
  AdoptionHandler on_adopted_;
  bool draining_{false};
};

}  // namespace neat::fleet
