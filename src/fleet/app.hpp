// Fleet workload applications.
//
// PingServer: the backend application — accepts connections on a set of
// ports and answers fixed 16-byte requests with fixed 16-byte responses
// that carry the serving host's id. Frames are consumed only when all 16
// bytes are buffered, so a request stream cut at any byte by a cross-host
// migration resumes byte-exactly on the adopting host (the partial frame
// rides the moved TCP receive buffer); the embedded host id is what lets
// clients attribute every response (and hence latency sample) to the
// backend that actually served it.
//
// FleetClient: the client application — ramps up a large population of
// connections to the VIP (paced, to respect the SYSCALL channel depth),
// then drives a sampled subset of them as "pingers" that measure
// request/response latency per serving backend. The unsampled majority
// sit established and idle: they are the million-connection ballast that
// makes host crash/drain experiments meaningful without needing a million
// concurrent request streams.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fleet/cluster.hpp"
#include "sim/process.hpp"
#include "socklib/socklib.hpp"

namespace neat::fleet {

/// Both directions speak fixed 16-byte frames: request carries a client
/// cookie in bytes [8,16); response echoes it and stamps the serving
/// host's id into bytes [0,4).
inline constexpr std::size_t kPingFrame = 16;

class PingServer : public sim::Process {
 public:
  struct Stats {
    std::uint64_t accepted{0};
    std::uint64_t requests{0};
    std::uint64_t adopted{0};        ///< sockets taken over from another host
    std::uint64_t migrated_away{0};  ///< husk fds dropped after a drain
    std::uint64_t closed{0};
  };

  /// `host_id` is stamped into every response (clients attribute by it).
  PingServer(sim::Simulator& sim, std::string name, NeatHost& host,
             int host_id);
  ~PingServer() override;

  /// listen() on every port (call once, before the simulation runs).
  void start(const std::vector<std::uint16_t>& ports,
             std::size_t backlog = 1024);

  /// Receiving side of a cross-host drain: wrap each adopted TCP socket in
  /// a fresh fd and resume serving it (FleetCluster adoption handler).
  void adopt(StackReplica& replica,
             const std::vector<net::TcpSocketPtr>& sockets);

  [[nodiscard]] const Stats& app_stats() const { return stats_; }
  [[nodiscard]] socklib::SockLib& lib() { return *lib_; }
  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }

 private:
  [[nodiscard]] socklib::ConnCallbacks callbacks();
  void on_acceptable(socklib::Fd listen_fd);
  /// Serve every complete frame currently buffered on `fd`.
  void service(socklib::Fd fd);

  int host_id_;
  std::unique_ptr<socklib::SockLib> lib_;
  std::unordered_set<socklib::Fd> conns_;
  Stats stats_;
};

class FleetClient : public sim::Process {
 public:
  struct Config {
    net::Ipv4Addr vip;
    std::vector<std::uint16_t> ports;  ///< server ports, round-robined
    std::uint64_t total_conns{1000};   ///< connections to ramp up
    /// Pacing: up to `ramp_batch` connects per `ramp_interval`, but never
    /// more than `max_inflight_connects` awaiting their handshake — the
    /// ramp self-paces to the stack's establishment throughput. The
    /// SYSCALL channel holds 4096 in-flight submissions and *drops
    /// silently* when full; the in-flight cap (plus ping traffic) must
    /// stay well below that.
    std::uint64_t ramp_batch{256};
    sim::SimTime ramp_interval{1 * sim::kMillisecond};
    std::uint64_t max_inflight_connects{1536};
    /// Every sample_every-th connection becomes a pinger.
    std::uint64_t sample_every{64};
    sim::SimTime ping_interval{10 * sim::kMillisecond};
    /// A pinger unanswered for this many intervals resends; the resent
    /// frame is also what flushes out a dead backend (the tier re-steers
    /// it to a survivor, whose stack answers with a RST).
    int retry_intervals{3};
  };

  struct Stats {
    std::uint64_t attempted{0};
    std::uint64_t connected{0};
    std::uint64_t connect_failures{0};  ///< refused (port space exhausted)
    std::uint64_t responses{0};
    std::uint64_t retries{0};
    std::uint64_t closed_reset{0};     ///< RST / stack failure
    std::uint64_t closed_migrated{0};  ///< kMigratedAway (never expected on
                                       ///< the client side of a drain)
    std::uint64_t closed_other{0};
    /// Responses per serving backend host id (crash-isolation accounting).
    std::map<int, std::uint64_t> per_host_responses;
  };

  FleetClient(sim::Simulator& sim, std::string name, NeatHost& host,
              Config cfg);
  ~FleetClient() override;

  void start();

  /// Open a measurement window: the per-host window counters restart from
  /// zero (totals in app_stats() keep running).
  void mark();
  [[nodiscard]] const Stats& app_stats() const { return stats_; }
  [[nodiscard]] const std::map<int, std::uint64_t>& window_responses() const {
    return window_responses_;
  }
  [[nodiscard]] std::uint64_t live_connections() const { return live_conns_; }
  [[nodiscard]] socklib::SockLib& lib() { return *lib_; }

 private:
  struct Pinger {
    sim::SimTime sent_at{0};
    bool outstanding{false};
    std::uint64_t cookie{0};
  };

  void ramp_tick();
  void open_one();
  void ping_tick(socklib::Fd fd);
  void send_ping(socklib::Fd fd, Pinger& p);
  void on_readable(socklib::Fd fd);
  [[nodiscard]] obs::Histogram& rtt_histogram(int host_id);

  NeatHost& host_;
  Config cfg_;
  std::unique_ptr<socklib::SockLib> lib_;
  std::unordered_map<socklib::Fd, Pinger> pingers_;
  std::unordered_map<int, obs::Histogram*> rtt_by_host_;
  /// RTT histograms record only after mark(): warmup runs the ramp at the
  /// stack's saturation point, and those queueing delays are not what the
  /// measure-window percentiles are about.
  bool measuring_{false};
  std::uint64_t live_conns_{0};
  std::uint64_t next_port_{0};
  Stats stats_;
  std::map<int, std::uint64_t> window_responses_;
};

}  // namespace neat::fleet
