// Fleet-level observability merge.
//
// Each NeatHost in a fleet records into its own obs::Hub (per-host metric
// namespace), which kills the last-writer-wins hazard of many hosts sharing
// one registry — but a fleet report needs fleet numbers. This helper folds
// per-host registries into one: counters and gauges add, histograms merge
// bucket-wise, so a fleet p99 is computed from one combined distribution
// (max-of-per-host-p99s is not a p99).
#pragma once

#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace neat::fleet {

/// Fold `src` into `dst`. Counters and gauges accumulate by name (gauge
/// merge is a sum — right for censuses and totals; averages should be
/// derived from counters instead). Histograms merge exactly (same fixed
/// layout everywhere).
void merge_registry(obs::Registry& dst, const obs::Registry& src);

/// One named histogram merged across hubs (absent entries and null hubs
/// are skipped).
[[nodiscard]] obs::Histogram merged_histogram(
    const std::vector<const obs::Hub*>& hubs, std::string_view name);

/// One named counter summed across hubs.
[[nodiscard]] std::uint64_t summed_counter(
    const std::vector<const obs::Hub*>& hubs, std::string_view name);

}  // namespace neat::fleet
