// The fleet's L4 steering tier: a maglev-style software load balancer that
// sits between the client machines and the NEaT backend hosts.
//
// Topology: nic::Link is strictly point-to-point, so the tier owns one NIC
// *port* per connected machine (like a switch). Every backend host shares
// one virtual IP (the VIP); clients connect to the VIP and the tier decides
// which backend carries each flow:
//
//   client ports                    backend ports
//   ┌────────┐   lookup(flow):     ┌────────┐
//   │client 0│──┐ conntrack hit →  ┌──│backend 0│  (all share the VIP)
//   │client 1│──┤ pinned backend;  ├──│backend 1│
//   │  ...   │──┤ miss → maglev    ├──│  ...    │
//   └────────┘  └──────────────────┘  └────────┘
//
// Forwarding is an in-place Ethernet dst/src-MAC rewrite plus a transmit on
// the chosen port — the IP packet (and its checksums) pass through
// untouched, exactly like a DSR maglev deployment where every backend owns
// the VIP locally. The tier consumes no simulated CPU; like the NIC model
// it is "hardware", and its latency is a fixed per-hop forward delay.
//
// Connection tracking mirrors the NIC's per-flow tracking filters one level
// up: a SYN pins its flow to the maglev-chosen backend, and later table
// changes (hosts joining/leaving) never move an established flow. RSTs
// drop the entry immediately; FINs retire it after a linger.
//
// The tier is also the fleet's failure detector: it pings every in-table
// backend (ICMP echo to the VIP out of that backend's port — replies are
// attributable by arrival port) and declares a host dead after N
// consecutive misses, the same detect-don't-assume discipline the per-host
// supervisor applies to replicas.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fleet/maglev.hpp"
#include "net/addr.hpp"
#include "net/packet.hpp"
#include "nic/nic.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace neat::fleet {

struct SteeringConfig {
  /// The service address: every backend host's NIC carries this IP.
  net::Ipv4Addr vip{net::Ipv4Addr::of(10, 0, 0, 100)};
  /// Source address of the tier's health probes (backend ports answer ARP
  /// for it; backends address their echo replies to it).
  net::Ipv4Addr prober_ip{net::Ipv4Addr::of(10, 9, 9, 9)};
  std::size_t table_size{MaglevTable::kDefaultTableSize};
  /// One-hop forwarding latency through the tier (per direction).
  sim::SimTime forward_latency{2 * sim::kMicrosecond};
  /// Tracked-flow retirement after a FIN (covers the rest of the close
  /// handshake + TIME_WAIT; an RST drops the entry immediately).
  sim::SimTime fin_linger{1 * sim::kSecond};
  /// MAC ids for tier ports start here (MacAddr::local(mac_base + port#)).
  std::uint32_t mac_base{200};
  /// Health prober cadence and the consecutive misses that declare a
  /// backend dead (3 × 50ms tolerates a replica-0 restart blip, which
  /// silences echo briefly, without false-positives).
  sim::SimTime probe_interval{50 * sim::kMillisecond};
  int probe_miss_threshold{3};
  /// Per-port RX ring depth (frames queue here for one forward_latency).
  std::size_t port_queue_depth{65536};
};

class SteeringTier {
 public:
  struct Stats {
    std::uint64_t to_backend{0};       ///< frames forwarded client → backend
    std::uint64_t to_client{0};        ///< frames forwarded backend → client
    std::uint64_t flows_installed{0};  ///< conntrack entries created
    std::uint64_t flows_removed{0};    ///< RST/FIN retirements + purges
    std::uint64_t no_backend_drops{0}; ///< table empty / backend port gone
    std::uint64_t unknown_dst_drops{0};
    std::uint64_t arp_proxied{0};
    std::uint64_t probes_sent{0};
    std::uint64_t probe_replies{0};
    std::uint64_t backends_declared_down{0};
  };

  SteeringTier(sim::Simulator& sim, SteeringConfig cfg,
               obs::Hub* hub = nullptr);
  ~SteeringTier();

  SteeringTier(const SteeringTier&) = delete;
  SteeringTier& operator=(const SteeringTier&) = delete;

  // --- ports (wired to Links by the cluster) -------------------------------
  /// Create the tier-side port facing backend `id` (whose NIC has
  /// `peer_mac`). The caller links the returned NIC to the host's NIC.
  /// Creating the port does NOT enter the backend into the steering table —
  /// call add_backend once the host is ready to serve (standby hosts have
  /// ports but no table share).
  nic::Nic& add_backend_port(int id, net::MacAddr peer_mac);
  /// Create the tier-side port facing the client machine at `ip`.
  nic::Nic& add_client_port(net::Ipv4Addr ip, net::MacAddr peer_mac);

  [[nodiscard]] nic::Nic* backend_port(int id);

  // --- steering table ------------------------------------------------------
  void add_backend(int id);
  /// Pull `id` from the table AND purge its tracked flows (a crashed or
  /// draining host). Purged flows that are still live on the wire re-hash
  /// to a surviving backend, whose stack answers them with a RST.
  void remove_backend(int id);
  [[nodiscard]] bool has_backend(int id) const { return table_.has_backend(id); }
  [[nodiscard]] const MaglevTable& table() const { return table_; }

  // --- connection tracking -------------------------------------------------
  /// Canonical flow keys are VIP-local: {local=VIP:port, remote=client}.
  [[nodiscard]] std::optional<int> tracked_backend(
      const net::FlowKey& flow) const;
  [[nodiscard]] std::size_t tracked_flow_count() const { return flows_.size(); }
  [[nodiscard]] std::vector<net::FlowKey> tracked_flows_for(int id) const;
  /// Re-pin tracked flows to a new backend (cross-host migration repoint).
  void repoint_flows(const std::vector<net::FlowKey>& flows, int id);
  /// Steering decision a fresh frame of `flow` would get right now.
  [[nodiscard]] int steer(const net::FlowKey& flow) const;

  // --- migration capture (client-facing ports) -----------------------------
  /// Buffer every client frame of the listed (canonical) flows at the
  /// client ports until end_capture() replays them — the fleet-level
  /// equivalent of the NIC capture window inside one host.
  void begin_capture(const std::vector<net::FlowKey>& flows);
  void end_capture();

  // --- health probing ------------------------------------------------------
  /// Probe every in-table backend each probe_interval; `on_down(id)` fires
  /// (once) when a backend misses probe_miss_threshold probes in a row.
  /// The callback typically calls remove_backend.
  void start_probing(std::function<void(int id)> on_down);
  void stop_probing();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const SteeringConfig& config() const { return cfg_; }

 private:
  struct Port {
    std::unique_ptr<nic::Nic> nic;
    bool is_backend{false};
    int backend_id{-1};         ///< backend ports
    net::Ipv4Addr client_ip;    ///< client ports
    net::MacAddr peer_mac;      ///< MAC of the machine behind this port
    bool drain_pending{false};  ///< one drain event outstanding
  };
  struct ProbeState {
    std::uint16_t seq{0};
    bool awaiting{false};
    int misses{0};
    bool declared_down{false};
  };

  Port& new_port();
  void schedule_drain(std::size_t port_idx);
  void drain(std::size_t port_idx);
  void handle_client_frame(net::PacketPtr frame);
  void handle_backend_frame(Port& in, net::PacketPtr frame);
  void proxy_arp(Port& port, net::PacketPtr frame);
  void forward(Port& out, net::PacketPtr frame);
  void note_flow_flags(const net::FlowKey& canonical, bool rst, bool fin);
  void probe_tick();

  sim::Simulator& sim_;
  SteeringConfig cfg_;
  obs::Hub* hub_;
  MaglevTable table_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<int, std::size_t> backend_ports_;  // id -> port idx
  std::unordered_map<std::uint32_t, std::size_t> client_ports_;  // ip -> idx
  std::unordered_map<net::FlowKey, int, net::FlowKeyHash> flows_;
  std::unordered_map<int, ProbeState> probes_;
  std::function<void(int)> on_down_;
  sim::EventHandle probe_timer_;
  bool probing_{false};
  Stats stats_;
};

}  // namespace neat::fleet
