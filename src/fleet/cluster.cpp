#include "fleet/cluster.hpp"

#include <string>
#include <unordered_map>
#include <utility>

#include "net/tcp.hpp"

namespace neat::fleet {

FleetCluster::FleetCluster(FleetConfig config)
    : cfg(std::move(config)), sim(cfg.seed) {
  pool.bind(sim.obs());
  tier_ = std::make_unique<SteeringTier>(sim, cfg.steering);

  const int total_backends = cfg.backends + cfg.standbys;
  for (int i = 0; i < total_backends; ++i) {
    backends_.push_back(build_host(i, /*is_client=*/false));
  }
  for (int i = 0; i < cfg.backends; ++i) tier_->add_backend(i);
  for (int j = 0; j < cfg.clients; ++j) {
    clients_.push_back(build_host(j, /*is_client=*/true));
  }

  // Static neighbors, as an operator would configure on point-to-point
  // segments: each host resolves everything beyond its link to the MAC of
  // its tier port. Replicas spawned later (scale-up, replacement) resolve
  // the same answer dynamically via the tier's proxy ARP.
  for (auto& b : backends_) {
    for (std::size_t r = 0; r < b->host->replica_count(); ++r) {
      auto& arp = b->host->replica(r).ip_layer_ref().arp();
      arp.insert(cfg.steering.prober_ip, b->tier_port_mac);
      for (int j = 0; j < cfg.clients; ++j) {
        arp.insert(client_ip(j), b->tier_port_mac);
      }
    }
  }
  for (auto& c : clients_) {
    for (std::size_t r = 0; r < c->host->replica_count(); ++r) {
      c->host->replica(r).ip_layer_ref().arp().insert(cfg.steering.vip,
                                                      c->tier_port_mac);
    }
  }
}

FleetCluster::~FleetCluster() {
  tier_->stop_probing();
  // The obs hubs die with their hosts/sim before `pool`; packets released
  // during teardown must not bump freed counters.
  pool.unbind();
}

std::unique_ptr<FleetHost> FleetCluster::build_host(int id, bool is_client) {
  auto h = std::make_unique<FleetHost>();
  h->id = id;
  h->is_client = is_client;
  h->hub = std::make_unique<obs::Hub>();

  const int replicas =
      is_client ? cfg.replicas_per_client : cfg.replicas_per_backend;
  const int spares = is_client ? 0 : cfg.spare_replicas_per_backend;

  sim::MachineParams mp = is_client ? cfg.client_machine : cfg.backend_machine;
  mp.name = std::string(is_client ? "client" : "backend") + std::to_string(id);
  // OS + SYSCALL + driver, one core per (current or spare) replica, and
  // the application core last (FleetHost::app_thread).
  mp.cores = 3 + replicas + spares + 1;
  mp.threads_per_core = 1;
  h->machine = &sim.add_machine(mp);

  nic::NicParams np = is_client ? cfg.client_nic : cfg.backend_nic;
  np.num_queues = replicas + spares;
  const net::MacAddr mac =
      net::MacAddr::local(static_cast<std::uint32_t>(is_client ? 40 + id
                                                               : 10 + id));
  const net::Ipv4Addr ip = is_client ? client_ip(id) : cfg.steering.vip;
  h->nic = std::make_unique<nic::Nic>(sim, mac, ip, np);
  h->nic->bind_hub(h->hub.get());

  NeatHost::Config hc;
  hc.host_id = is_client ? 100 + id : id;
  hc.costs = cfg.costs;
  hc.tcp = is_client ? cfg.client_tcp : cfg.backend_tcp;
  if (is_client) hc.steering = cfg.client_steering;
  hc.hub = h->hub.get();
  h->host = std::make_unique<NeatHost>(sim, *h->machine, *h->nic, hc);
  h->host->os_process().pin(h->machine->thread(0));
  h->host->syscall().pin(h->machine->thread(1));
  h->host->driver().pin(h->machine->thread(2));
  for (int r = 0; r < replicas; ++r) {
    h->host->add_replica({&h->machine->thread(3 + r)});
  }

  nic::Nic& port = is_client ? tier_->add_client_port(ip, mac)
                             : tier_->add_backend_port(id, mac);
  h->tier_port_mac = port.mac();
  h->link = std::make_unique<nic::Link>(sim, *h->nic, port, cfg.link);
  return h;
}

std::vector<const obs::Hub*> FleetCluster::backend_hubs() const {
  std::vector<const obs::Hub*> hubs;
  for (const auto& b : backends_) {
    if (tier_->has_backend(b->id)) hubs.push_back(b->hub.get());
  }
  return hubs;
}

std::vector<std::vector<sim::HwThread*>> FleetCluster::spare_pins(
    std::size_t i) const {
  std::vector<std::vector<sim::HwThread*>> pins;
  FleetHost& b = *backends_[i];
  for (int s = 0; s < cfg.spare_replicas_per_backend; ++s) {
    pins.push_back({&b.machine->thread(3 + cfg.replicas_per_backend + s)});
  }
  return pins;
}

void FleetCluster::start_health_probing(std::function<void(int id)> on_down) {
  tier_->start_probing([this, on_down = std::move(on_down)](int id) {
    tier_->remove_backend(id);
    if (on_down) on_down(id);
  });
}

std::size_t FleetCluster::backend_connections(std::size_t i) {
  std::size_t n = 0;
  for (auto* r : backends_[i]->host->serving_replicas()) {
    n += r->tcp().connection_count();
  }
  return n;
}

// ---------------------------------------------------------------------------
// Cross-host drain
// ---------------------------------------------------------------------------

struct FleetCluster::DrainState {
  FleetHost* src{nullptr};
  FleetHost* dst{nullptr};
  sim::SimTime t0{0};
  /// Source replicas not yet extracted / adoption posts not yet landed.
  std::size_t pending_extracts{0};
  std::size_t pending_adopts{0};
  /// Flows actually extracted (ESTABLISHED at freeze time): these are the
  /// ones repointed to dst; closing stragglers keep their old pin.
  std::vector<net::FlowKey> moved;
  std::size_t moved_count{0};
  /// Per source replica: the flows that left it (departure notifications).
  std::vector<std::pair<StackReplica*, std::vector<net::FlowKey>>> departed;
  std::function<void(std::size_t)> on_done;
};

void FleetCluster::drain_host(std::size_t from, std::size_t to,
                              std::function<void(std::size_t)> on_done) {
  assert(from != to);
  assert(!draining_ && "one cross-host drain at a time");
  draining_ = true;

  auto st = std::make_shared<DrainState>();
  st->src = backends_[from].get();
  st->dst = backends_[to].get();
  st->on_done = std::move(on_done);
  st->t0 = sim.now();

  // 1. Collect the source host's flows and open the tier capture window
  //    for them, then pull the source out of the table so no new SYNs land
  //    on it. remove_backend purges ALL of the source's tracked flows —
  //    re-pin the pre-existing set right back, so flows that turn out not
  //    to be ESTABLISHED at freeze time (half-closed stragglers) keep
  //    flowing to the source host, which finishes closing them.
  std::vector<net::FlowKey> all;
  struct SrcRep {
    StackReplica* rep;
    std::size_t flows;
  };
  std::vector<SrcRep> srcs;
  for (auto* r : st->src->host->serving_replicas()) {
    std::size_t before = all.size();
    r->tcp().for_each_connection(
        [&](net::TcpSocket& s) { all.push_back(s.flow()); });
    srcs.push_back({r, all.size() - before});
  }
  const std::vector<net::FlowKey> pinned =
      tier_->tracked_flows_for(st->src->id);
  tier_->begin_capture(all);
  tier_->remove_backend(st->src->id);
  tier_->repoint_flows(pinned, st->src->id);

  sim.tracer().emit({sim.now(), 0, "fleet", "drain_begin", 0, st->src->id,
                     "\"flows\":" + std::to_string(all.size()) +
                         ",\"to\":" + std::to_string(st->dst->id)});

  // 2. Let frames already past the tier settle into the still-live source
  //    stack, then 3. freeze + extract each source replica in its own TCP
  //    context (charged like an intra-host migration freeze).
  st->pending_extracts = srcs.size();
  FleetCluster* self = this;
  sim.queue().post(cfg.drain_settle, [self, st, srcs = std::move(srcs)] {
    if (srcs.empty()) {
      self->maybe_finish_drain(st);
      return;
    }
    for (const auto& s : srcs) self->extract_and_ship(st, *s.rep, s.flows);
  });
}

void FleetCluster::extract_and_ship(const std::shared_ptr<DrainState>& st,
                                    StackReplica& rep,
                                    std::size_t flow_count) {
  const StackCosts& costs = cfg.costs;
  const sim::Cycles freeze =
      costs.migrate_base +
      costs.migrate_per_conn * static_cast<sim::Cycles>(flow_count);
  FleetCluster* self = this;
  StackReplica* src_rep = &rep;
  src_rep->tcp_process().post(freeze, [self, st, src_rep] {
    auto cp = src_rep->tcp().extract_for_migration();

    st->departed.emplace_back(src_rep, std::vector<net::FlowKey>{});
    auto& dep = st->departed.back().second;

    // 4. Split the checkpoint by the TARGET NIC's RSS verdict, so every
    //    adopted flow's frames already steer to the replica adopting it.
    std::unordered_map<int, StackReplica*> by_queue;
    for (auto* t : st->dst->host->active_replicas()) {
      by_queue.emplace(t->queue(), t);
    }
    std::unordered_map<StackReplica*, std::shared_ptr<net::TcpCheckpoint>>
        subs;
    for (auto& c : cp.conns) {
      dep.push_back(c.flow);
      st->moved.push_back(c.flow);
      const int q = st->dst->nic->rss_queue(c.flow.remote_ip,
                                            c.flow.remote_port,
                                            c.flow.local_ip,
                                            c.flow.local_port);
      auto it = by_queue.find(q);
      StackReplica* target =
          it != by_queue.end() ? it->second : by_queue.begin()->second;
      auto& sub = subs[target];
      if (!sub) {
        sub = std::make_shared<net::TcpCheckpoint>();
        sub->taken_at = cp.taken_at;
      }
      sub->conns.push_back(std::move(c));
    }

    const StackCosts& costs = self->cfg.costs;
    for (auto& [target, sub] : subs) {
      ++st->pending_adopts;
      const sim::Cycles thaw =
          costs.migrate_base +
          costs.migrate_per_conn *
              static_cast<sim::Cycles>(sub->conns.size()) +
          costs.bytes_cost(sub->bytes());
      StackReplica* t = target;
      t->tcp_process().post(thaw, [self, st, t, sub] {
        auto adopted = std::make_shared<std::vector<net::TcpSocketPtr>>(
            t->tcp().adopt(*sub));
        st->moved_count += adopted->size();
        // Filters (when the target tracks flows) + app-side fd adoption
        // run in the target's driver control context, like the repoint
        // step of an intra-host migration.
        st->dst->host->driver().control([self, st, t, sub, adopted] {
          if (st->dst->nic->params().tracking_filters) {
            for (const auto& c : sub->conns) {
              st->dst->nic->add_flow_filter(c.flow, t->queue());
            }
          }
          if (self->on_adopted_) self->on_adopted_(*st->dst, *t, *adopted);
          --st->pending_adopts;
          self->maybe_finish_drain(st);
        });
      });
    }

    --st->pending_extracts;
    self->maybe_finish_drain(st);
  });
}

void FleetCluster::maybe_finish_drain(const std::shared_ptr<DrainState>& st) {
  if (st->pending_extracts != 0 || st->pending_adopts != 0) return;

  // 5. Everything adopted: tell the source host's socket libraries the
  //    flows departed (apps drop their husk fds), repoint the tier's
  //    conntrack at the target, and close the capture window — the replay
  //    delivers the buffered client frames to the adopting replicas.
  for (auto& [rep, flows] : st->departed) {
    if (!flows.empty()) {
      st->src->host->notify_connections_departed(*rep, flows);
    }
  }
  tier_->repoint_flows(st->moved, st->dst->id);
  tier_->end_capture();
  draining_ = false;

  const sim::SimTime blackout = sim.now() - st->t0;
  sim.obs().metrics.histogram("fleet.drain_blackout_ns")
      .record(static_cast<std::uint64_t>(blackout));
  sim.tracer().emit({sim.now(), 0, "fleet", "drain_done", 0, st->src->id,
                     "\"moved\":" + std::to_string(st->moved_count) +
                         ",\"blackout_ns\":" + std::to_string(blackout)});
  if (st->on_done) st->on_done(st->moved_count);
}

}  // namespace neat::fleet
