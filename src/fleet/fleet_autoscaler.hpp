// Fleet-level automatic scaling: the cluster analogue of the per-host
// AutoScaler (§3.4 applied recursively).
//
// Each backend host keeps its own AutoScaler driving replica counts
// against that machine's spare cores; the FleetAutoScaler sits above them,
// watches the fleet-mean utilization, and scales the HOST set — activating
// a warm standby into the maglev table when the fleet runs hot, draining
// the coldest backend into the coldest survivor (cross-host live
// migration) when it runs cold. A drained host leaves the table but stays
// built: it is the next standby.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/cluster.hpp"
#include "neat/autoscaler.hpp"

namespace neat::fleet {

struct FleetScalePolicy {
  /// Activate a standby when fleet-mean utilization exceeds this.
  double host_up_threshold{0.80};
  /// Drain the coldest backend when fleet-mean drops below this (and more
  /// than min_hosts are in the table).
  double host_down_threshold{0.25};
  std::size_t min_hosts{1};
  sim::SimTime period{100 * sim::kMillisecond};
  /// Settle time after a host-level action before acting again (longer
  /// than the per-host cooldown: host moves are coarser).
  sim::SimTime cooldown{500 * sim::kMillisecond};
  /// Per-host replica scaling, run by this object on every backend. With
  /// per_host_scaling false the per-host scalers still run as utilization
  /// samplers but never act.
  AutoScaler::Policy per_host{};
  bool per_host_scaling{true};
};

class FleetAutoScaler {
 public:
  FleetAutoScaler(FleetCluster& fleet, FleetScalePolicy policy);
  FleetAutoScaler(FleetCluster& fleet)
      : FleetAutoScaler(fleet, FleetScalePolicy{}) {}
  ~FleetAutoScaler();

  FleetAutoScaler(const FleetAutoScaler&) = delete;
  FleetAutoScaler& operator=(const FleetAutoScaler&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t host_activations() const {
    return host_activations_;
  }
  [[nodiscard]] std::uint64_t host_drains() const { return host_drains_; }
  [[nodiscard]] double last_fleet_utilization() const { return last_util_; }

  /// The per-host replica scaler of backend `i` (samples even when
  /// per_host_scaling is off).
  [[nodiscard]] AutoScaler& host_scaler(std::size_t i) {
    return *per_host_[i];
  }

 private:
  void tick();

  FleetCluster& fleet_;
  FleetScalePolicy policy_;
  std::vector<std::unique_ptr<AutoScaler>> per_host_;  // index == backend idx
  sim::EventHandle timer_;
  bool running_{false};
  bool drain_in_flight_{false};
  sim::SimTime last_action_{0};
  double last_util_{0.0};
  std::uint64_t host_activations_{0};
  std::uint64_t host_drains_{0};
};

}  // namespace neat::fleet
