// Edge-triggered, coalescing doorbell.
//
// When an application deposits data into a socket ring it must make sure the
// stack replica eventually looks at it — but ringing on *every* write would
// turn the syscall-less fast path back into a per-operation notification.
// A Doorbell coalesces: while a previous ring has not been consumed, further
// rings are free no-ops, exactly like an MWAIT monitor armed on a write.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/process.hpp"

namespace neat::ipc {

class Doorbell {
 public:
  /// `cost` is the consumer-side cycles to take the notification (queue
  /// scan); `handler` then runs in the consumer's context and typically
  /// drains the associated ring(s).
  Doorbell(sim::Process& consumer, sim::Cycles cost,
           std::function<void()> handler)
      : consumer_(&consumer), cost_(cost), handler_(std::move(handler)) {}

  ~Doorbell() { *alive_ = false; }  // in-flight rings become no-ops

  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  /// Replace the handler (used when the handler must capture shared
  /// ownership of an object that contains this doorbell).
  void set_handler(std::function<void()> handler) {
    handler_ = std::move(handler);
  }

  /// Ring. Coalesced while a previous ring is pending.
  void ring() {
    ++rings_;
    if (pending_) return;
    if (consumer_->crashed()) return;
    pending_ = true;
    ++deliveries_;
    consumer_->post(cost_, [this, alive = alive_] {
      if (!*alive) return;  // the doorbell's owner was destroyed
      pending_ = false;
      handler_();
    });
  }

  /// Re-target after consumer restart; clears any lost pending state.
  void rebind(sim::Process& consumer) {
    consumer_ = &consumer;
    pending_ = false;
  }

  /// Recovery hook: a pending ring queued to a process that crashed will
  /// never fire; callers re-arm after restart.
  void reset() { pending_ = false; }

  [[nodiscard]] bool pending() const { return pending_; }
  [[nodiscard]] std::uint64_t rings() const { return rings_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

 private:
  sim::Process* consumer_;
  sim::Cycles cost_;
  std::function<void()> handler_;
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
  bool pending_{false};
  std::uint64_t rings_{0};
  std::uint64_t deliveries_{0};
};

}  // namespace neat::ipc
