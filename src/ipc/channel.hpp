// Bounded single-producer message channels between isolated processes.
//
// All cross-process communication in NEaT goes through asynchronous bounded
// queues: the producer deposits a message and (if needed) wakes the consumer;
// the consumer is charged a per-message CPU cost when it dequeues. A full
// channel drops the message — exactly like a full NIC ring or a full MINIX
// asynsend slot — and the upper layers (TCP) are responsible for recovery.
//
// Accounting invariant: once the simulation has quiesced (no message still
// inside its transfer latency), every message ever sent is classified as
// exactly one of delivered / dropped_full / dropped_dead:
//
//     sent == delivered + dropped_full + dropped_dead
//
// "Delivered" means the message reached a live consumer incarnation (the
// handler job was enqueued); if the consumer crashes before executing the
// job, the message still counts as delivered — it made it into the dead
// process's memory, which is where it died. tests/test_chaos.cpp sweeps
// this invariant across chaos campaigns via the process-wide registry
// below.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace neat::ipc {

/// Statistics every channel keeps; the harness reads these to report drop
/// rates and queue pressure.
struct ChannelStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_full{0};
  std::uint64_t dropped_dead{0};
  /// Highest number of simultaneously in-flight messages ever observed.
  std::size_t in_flight_hwm{0};
};

/// Untyped view of a channel: what audits need without knowing T. Every
/// live Channel<T> is reachable through channel_registry() — the chaos
/// tests sweep it to check the accounting invariant on *every* channel in
/// the simulation, including ones buried inside replicas.
class ChannelBase {
 public:
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  [[nodiscard]] virtual const ChannelStats& channel_stats() const = 0;
  [[nodiscard]] virtual std::size_t channel_in_flight() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  ChannelBase();
  virtual ~ChannelBase();
};

/// All channels currently alive in this process (the sim is
/// single-threaded; no locking).
[[nodiscard]] inline std::vector<ChannelBase*>& channel_registry() {
  static std::vector<ChannelBase*> reg;
  return reg;
}

inline ChannelBase::ChannelBase() { channel_registry().push_back(this); }
inline ChannelBase::~ChannelBase() {
  auto& reg = channel_registry();
  reg.erase(std::remove(reg.begin(), reg.end(), this), reg.end());
}

/// Explicit reset of the process-wide registry. The registry is a
/// function-local static, so it outlives every simulator; harnesses call
/// this between simulations (after asserting it drained) so an entry leaked
/// by one test can never alias a later simulation's audit sweep.
inline void channel_registry_reset() { channel_registry().clear(); }

/// A typed, bounded, unidirectional channel into `consumer`.
///
/// `cost_fn(msg)` gives the CPU cycles the consumer spends handling the
/// message; `handler(msg)` runs after that work completes. `latency` models
/// the cache-line/interconnect transfer delay between cores.
template <typename T>
class Channel : public ChannelBase {
 public:
  using Handler = std::function<void(T&&)>;
  using CostFn = std::function<sim::Cycles(const T&)>;

  Channel(sim::Process& consumer, std::size_t capacity, sim::SimTime latency,
          CostFn cost_fn, Handler handler)
      : consumer_(&consumer),
        capacity_(capacity),
        latency_(latency),
        cost_fn_(std::move(cost_fn)),
        handler_(std::move(handler)) {}

  /// Convenience: fixed per-message cost.
  Channel(sim::Process& consumer, std::size_t capacity, sim::SimTime latency,
          sim::Cycles cost, Handler handler)
      : Channel(consumer, capacity, latency,
                [cost](const T&) { return cost; }, std::move(handler)) {}

  /// Deposit a message. Returns false (and drops it) if the channel is full
  /// or the consumer is dead.
  bool send(T msg) {
    ++stats_.sent;
    if (consumer_->crashed()) {
      // Messages to a dead process are lost; any slots still accounted to
      // in-flight messages died with it, so reclaim them all.
      in_flight_ = 0;
      ++stats_.dropped_dead;
      return false;
    }
    if (in_flight_ >= capacity_) {
      ++stats_.dropped_full;
      return false;
    }
    ++in_flight_;
    stats_.in_flight_hwm = std::max(stats_.in_flight_hwm, in_flight_);
    auto& sim = consumer_->sim();
    const auto epoch = consumer_->epoch();
    const sim::SimTime sent_at = sim.now();
    sim.queue().post(
        latency_, [this, epoch, sent_at, msg = std::move(msg)]() mutable {
          if (consumer_->crashed() || consumer_->epoch() != epoch) {
            // Died in transfer: the consumer (or its incarnation) is gone.
            if (in_flight_ > 0) --in_flight_;
            ++stats_.dropped_dead;
            return;
          }
          ++stats_.delivered;
          const sim::Cycles cost = cost_fn_(msg);
          consumer_->post(cost, [this, sent_at, msg = std::move(msg)]() mutable {
            if (in_flight_ > 0) --in_flight_;
            auto& sim = consumer_->sim();
            if (queue_delay_ == nullptr) {
              queue_delay_ = &sim.metrics().histogram("ipc.queue_delay_ns");
            }
            queue_delay_->record(sim.now() - sent_at);
            handler_(std::move(msg));
          });
        });
    return true;
  }

  /// Re-target the channel at a (possibly restarted) consumer; forgets any
  /// in-flight messages, which died with the previous incarnation.
  void rebind(sim::Process& consumer) {
    consumer_ = &consumer;
    in_flight_ = 0;
  }

  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] sim::Process& consumer() const { return *consumer_; }

  [[nodiscard]] const ChannelStats& channel_stats() const override {
    return stats_;
  }
  [[nodiscard]] std::size_t channel_in_flight() const override {
    return in_flight_;
  }
  [[nodiscard]] std::string describe() const override {
    return "channel->" + consumer_->name();
  }

 private:
  sim::Process* consumer_;
  std::size_t capacity_;
  sim::SimTime latency_;
  CostFn cost_fn_;
  Handler handler_;
  std::size_t in_flight_{0};
  ChannelStats stats_;
  obs::Histogram* queue_delay_{nullptr};
};

/// Default inter-core message latency: a couple of cache-line transfers.
inline constexpr sim::SimTime kDefaultChannelLatency = 200 * sim::kNanosecond;

}  // namespace neat::ipc
