// Bounded single-producer message channels between isolated processes.
//
// All cross-process communication in NEaT goes through asynchronous bounded
// queues: the producer deposits a message and (if needed) wakes the consumer;
// the consumer is charged a per-message CPU cost when it dequeues. A full
// channel drops the message — exactly like a full NIC ring or a full MINIX
// asynsend slot — and the upper layers (TCP) are responsible for recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace neat::ipc {

/// Statistics every channel keeps; the harness reads these to report drop
/// rates and queue pressure.
struct ChannelStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_full{0};
  std::uint64_t dropped_dead{0};
};

/// A typed, bounded, unidirectional channel into `consumer`.
///
/// `cost_fn(msg)` gives the CPU cycles the consumer spends handling the
/// message; `handler(msg)` runs after that work completes. `latency` models
/// the cache-line/interconnect transfer delay between cores.
template <typename T>
class Channel {
 public:
  using Handler = std::function<void(T&&)>;
  using CostFn = std::function<sim::Cycles(const T&)>;

  Channel(sim::Process& consumer, std::size_t capacity, sim::SimTime latency,
          CostFn cost_fn, Handler handler)
      : consumer_(&consumer),
        capacity_(capacity),
        latency_(latency),
        cost_fn_(std::move(cost_fn)),
        handler_(std::move(handler)) {}

  /// Convenience: fixed per-message cost.
  Channel(sim::Process& consumer, std::size_t capacity, sim::SimTime latency,
          sim::Cycles cost, Handler handler)
      : Channel(consumer, capacity, latency,
                [cost](const T&) { return cost; }, std::move(handler)) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deposit a message. Returns false (and drops it) if the channel is full
  /// or the consumer is dead.
  bool send(T msg) {
    ++stats_.sent;
    if (consumer_->crashed()) {
      // Messages to a dead process are lost; any slots still accounted to
      // in-flight messages died with it, so reclaim them all.
      in_flight_ = 0;
      ++stats_.dropped_dead;
      return false;
    }
    if (in_flight_ >= capacity_) {
      ++stats_.dropped_full;
      return false;
    }
    ++in_flight_;
    auto& q = consumer_->sim().queue();
    const auto epoch = consumer_->epoch();
    q.schedule(latency_, [this, epoch, msg = std::move(msg)]() mutable {
      if (consumer_->crashed() || consumer_->epoch() != epoch) {
        if (in_flight_ > 0) --in_flight_;
        return;
      }
      const sim::Cycles cost = cost_fn_(msg);
      consumer_->post(cost, [this, msg = std::move(msg)]() mutable {
        if (in_flight_ > 0) --in_flight_;
        ++stats_.delivered;
        handler_(std::move(msg));
      });
    });
    return true;
  }

  /// Re-target the channel at a (possibly restarted) consumer; forgets any
  /// in-flight messages, which died with the previous incarnation.
  void rebind(sim::Process& consumer) {
    consumer_ = &consumer;
    in_flight_ = 0;
  }

  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] sim::Process& consumer() const { return *consumer_; }

 private:
  sim::Process* consumer_;
  std::size_t capacity_;
  sim::SimTime latency_;
  CostFn cost_fn_;
  Handler handler_;
  std::size_t in_flight_{0};
  ChannelStats stats_;
};

/// Default inter-core message latency: a couple of cache-line transfers.
inline constexpr sim::SimTime kDefaultChannelLatency = 200 * sim::kNanosecond;

}  // namespace neat::ipc
