// Bounded single-producer message channels between isolated processes.
//
// All cross-process communication in NEaT goes through asynchronous bounded
// queues: the producer deposits a message and (if needed) wakes the consumer;
// the consumer is charged a per-message CPU cost when it dequeues. A full
// channel drops the message — exactly like a full NIC ring or a full MINIX
// asynsend slot — and the upper layers (TCP) are responsible for recovery.
//
// Accounting invariant: once the simulation has quiesced (no message still
// inside its transfer latency), every message ever sent is classified as
// exactly one of delivered / dropped_full / dropped_dead:
//
//     sent == delivered + dropped_full + dropped_dead
//
// "Delivered" means the message reached a live consumer incarnation (the
// handler job was enqueued); if the consumer crashes before executing the
// job, the message still counts as delivered — it made it into the dead
// process's memory, which is where it died. tests/test_chaos.cpp sweeps
// this invariant across chaos campaigns via the process-wide registry
// below.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace neat::ipc {

/// Statistics every channel keeps; the harness reads these to report drop
/// rates and queue pressure.
struct ChannelStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_full{0};
  std::uint64_t dropped_dead{0};
  /// Consumer wake-ups: number of batched delivery jobs posted. The
  /// amortization ratio is delivered / batches.
  std::uint64_t batches{0};
  /// Highest number of simultaneously in-flight messages ever observed.
  std::size_t in_flight_hwm{0};
};

/// Untyped view of a channel: what audits need without knowing T. Every
/// live Channel<T> is reachable through channel_registry() — the chaos
/// tests sweep it to check the accounting invariant on *every* channel in
/// the simulation, including ones buried inside replicas.
class ChannelBase {
 public:
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  [[nodiscard]] virtual const ChannelStats& channel_stats() const = 0;
  [[nodiscard]] virtual std::size_t channel_in_flight() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  ChannelBase();
  virtual ~ChannelBase();
};

/// All channels currently alive in this process (the sim is
/// single-threaded; no locking).
[[nodiscard]] inline std::vector<ChannelBase*>& channel_registry() {
  static std::vector<ChannelBase*> reg;
  return reg;
}

inline ChannelBase::ChannelBase() { channel_registry().push_back(this); }
inline ChannelBase::~ChannelBase() {
  auto& reg = channel_registry();
  reg.erase(std::remove(reg.begin(), reg.end(), this), reg.end());
}

/// Explicit reset of the process-wide registry. The registry is a
/// function-local static, so it outlives every simulator; harnesses call
/// this between simulations (after asserting it drained) so an entry leaked
/// by one test can never alias a later simulation's audit sweep.
inline void channel_registry_reset() { channel_registry().clear(); }

/// A typed, bounded, unidirectional channel into `consumer`.
///
/// `cost_fn(msg)` gives the CPU cycles the consumer spends handling the
/// message; `handler(msg)` runs after that work completes. `latency` models
/// the cache-line/interconnect transfer delay between cores.
///
/// Delivery is batched: messages deposited while a transfer is pending
/// accumulate in the shared ring and are drained together when the consumer
/// wakes — one flush event and ONE consumer job per batch (budget
/// kBatchBudget, re-armed immediately while the ring is non-empty so a deep
/// queue cannot starve interleaved work). The consumer is still charged the
/// full per-message cost (summed into the batch job), so virtual-time
/// accounting is unchanged — batching amortizes the event/job dispatch, not
/// the modeled CPU work. The first message of a batch pays the full
/// transfer latency; later ones ride the same doorbell, exactly like frames
/// sharing a NIC interrupt.
template <typename T>
class Channel : public ChannelBase {
 public:
  using Handler = std::function<void(T&&)>;
  /// Optional whole-batch consumer: receives every message of one delivery
  /// job at once (TcpStack-style loops hoist per-batch work this way).
  using BatchHandler = std::function<void(std::vector<T>&&)>;
  using CostFn = std::function<sim::Cycles(const T&)>;

  /// Max messages drained per consumer wake-up; bounds per-job latency so
  /// percentiles stay honest under deep queues.
  static constexpr std::size_t kBatchBudget = 32;

  Channel(sim::Process& consumer, std::size_t capacity, sim::SimTime latency,
          CostFn cost_fn, Handler handler)
      : consumer_(&consumer),
        capacity_(capacity),
        latency_(latency),
        cost_fn_(std::move(cost_fn)),
        handler_(std::move(handler)) {}

  /// Convenience: fixed per-message cost.
  Channel(sim::Process& consumer, std::size_t capacity, sim::SimTime latency,
          sim::Cycles cost, Handler handler)
      : Channel(consumer, capacity, latency,
                [cost](const T&) { return cost; }, std::move(handler)) {}

  /// Install a whole-batch handler; overrides the per-message handler.
  void set_batch_handler(BatchHandler h) { batch_handler_ = std::move(h); }

  /// Deposit a message. Returns false (and drops it) if the channel is full
  /// or the consumer is dead.
  bool send(T msg) {
    ++stats_.sent;
    if (consumer_->crashed()) {
      // Messages to a dead process are lost; any slots still accounted to
      // in-flight messages died with it, so reclaim them all.
      in_flight_ = 0;
      ++stats_.dropped_dead;
      return false;
    }
    if (staging_head_ < staging_.size() &&
        consumer_->epoch() != staged_epoch_) {
      // The consumer restarted while a batch sat in the ring: everything
      // staged belonged to the previous incarnation.
      drop_staged_dead();
      staged_epoch_ = consumer_->epoch();
    }
    if (in_flight_ >= capacity_) {
      ++stats_.dropped_full;
      return false;
    }
    ++in_flight_;
    stats_.in_flight_hwm = std::max(stats_.in_flight_hwm, in_flight_);
    staging_.push_back(Staged{std::move(msg), consumer_->sim().now()});
    if (!flush_armed_) {
      flush_armed_ = true;
      staged_epoch_ = consumer_->epoch();
      consumer_->sim().queue().post(latency_, [this] { flush(); });
    }
    return true;
  }

  /// Re-target the channel at a (possibly restarted) consumer; forgets any
  /// in-flight messages, which died with the previous incarnation.
  void rebind(sim::Process& consumer) {
    drop_staged_dead();
    consumer_ = &consumer;
    in_flight_ = 0;
    staged_epoch_ = consumer.epoch();
  }

  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] sim::Process& consumer() const { return *consumer_; }

  [[nodiscard]] const ChannelStats& channel_stats() const override {
    return stats_;
  }
  [[nodiscard]] std::size_t channel_in_flight() const override {
    return in_flight_;
  }
  [[nodiscard]] std::string describe() const override {
    return "channel->" + consumer_->name();
  }

 private:
  struct Staged {
    T msg;
    sim::SimTime at;
  };

  /// Classify everything still staged as dead-with-its-consumer.
  void drop_staged_dead() {
    const std::size_t n = staging_.size() - staging_head_;
    if (n > 0) {
      stats_.dropped_dead += n;
      in_flight_ = in_flight_ >= n ? in_flight_ - n : 0;
    }
    staging_.clear();
    staging_head_ = 0;
  }

  /// The consumer's doorbell fired: drain up to kBatchBudget staged
  /// messages into one delivery job, re-arming immediately if more remain.
  void flush() {
    flush_armed_ = false;
    if (staging_head_ >= staging_.size()) {
      staging_.clear();
      staging_head_ = 0;
      return;
    }
    if (consumer_->crashed() || consumer_->epoch() != staged_epoch_) {
      // Died in transfer: the consumer (or its incarnation) is gone.
      drop_staged_dead();
      return;
    }
    const std::size_t avail = staging_.size() - staging_head_;
    const std::size_t n = avail < kBatchBudget ? avail : kBatchBudget;
    const sim::SimTime oldest = staging_[staging_head_].at;
    auto& sim = consumer_->sim();
    stats_.delivered += n;
    ++stats_.batches;
    if (batch_size_ == nullptr) {
      batch_size_ = &sim.metrics().histogram("ipc.batch_size");
    }
    batch_size_->record(n);
    if (n == 1 && !batch_handler_) {
      // Single-message fast path: capture the message in the job closure
      // directly — no batch vector, no heap allocation. Under steady
      // (non-bursty) load this is the overwhelmingly common case.
      T msg = std::move(staging_[staging_head_].msg);
      const sim::Cycles cost = cost_fn_(msg);
      if (++staging_head_ >= staging_.size()) {
        staging_.clear();
        staging_head_ = 0;
      } else {
        flush_armed_ = true;
        sim.queue().post(0, [this] { flush(); });
      }
      consumer_->post(cost, [this, oldest, msg = std::move(msg)]() mutable {
        in_flight_ = in_flight_ > 0 ? in_flight_ - 1 : 0;
        record_delay(oldest);
        handler_(std::move(msg));
      });
      return;
    }
    std::vector<T> batch = acquire_vec(n);
    sim::Cycles cost = 0;
    for (std::size_t k = 0; k < n; ++k) {
      Staged& s = staging_[staging_head_ + k];
      cost += cost_fn_(s.msg);
      batch.push_back(std::move(s.msg));
    }
    staging_head_ += n;
    if (staging_head_ >= staging_.size()) {
      staging_.clear();
      staging_head_ = 0;
    } else {
      flush_armed_ = true;
      sim.queue().post(0, [this] { flush(); });
    }
    const auto epoch = staged_epoch_;
    consumer_->post(
        cost, [this, epoch, oldest, batch = std::move(batch)]() mutable {
          const std::size_t n = batch.size();
          in_flight_ = in_flight_ >= n ? in_flight_ - n : 0;
          record_delay(oldest);
          if (batch_handler_) {
            batch_handler_(std::move(batch));
          } else {
            for (auto& m : batch) {
              // A handler may crash its own process mid-batch; the rest of
              // the burst dies with it (it was already in its memory).
              if (consumer_->crashed() || consumer_->epoch() != epoch) break;
              handler_(std::move(m));
            }
          }
          release_vec(std::move(batch));
        });
  }

  /// Batch vectors cycle through a small pool so steady-state delivery —
  /// including the batch-handler path — never touches the allocator.
  std::vector<T> acquire_vec(std::size_t n) {
    std::vector<T> v;
    if (!vec_pool_.empty()) {
      v = std::move(vec_pool_.back());
      vec_pool_.pop_back();
    }
    v.reserve(n);
    return v;
  }

  void release_vec(std::vector<T>&& v) {
    v.clear();
    if (vec_pool_.size() < 4) vec_pool_.push_back(std::move(v));
  }

  void record_delay(sim::SimTime oldest) {
    auto& sim = consumer_->sim();
    if (queue_delay_ == nullptr) {
      queue_delay_ = &sim.metrics().histogram("ipc.queue_delay_ns");
    }
    queue_delay_->record(sim.now() - oldest);
  }

  sim::Process* consumer_;
  std::size_t capacity_;
  sim::SimTime latency_;
  CostFn cost_fn_;
  Handler handler_;
  BatchHandler batch_handler_;
  std::size_t in_flight_{0};
  std::vector<Staged> staging_;
  std::size_t staging_head_{0};
  bool flush_armed_{false};
  std::uint64_t staged_epoch_{0};
  ChannelStats stats_;
  std::vector<std::vector<T>> vec_pool_;
  obs::Histogram* queue_delay_{nullptr};
  obs::Histogram* batch_size_{nullptr};
};

/// Default inter-core message latency: a couple of cache-line transfers.
inline constexpr sim::SimTime kDefaultChannelLatency = 200 * sim::kNanosecond;

}  // namespace neat::ipc
