// Shared-memory byte ring: the data plane of a NEaT socket.
//
// The socket design (Hruby et al., TRIOS'14, cited as [35]) maps a pair of
// byte rings between the application and its network stack replica, so that
// send()/recv() are plain memory copies plus an occasional doorbell —
// "resolving the vast majority of system calls within the application
// itself". This class is that ring.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace neat::ipc {

class ByteRing {
 public:
  /// Backing memory is allocated lazily on first write and can be released
  /// with release() — connection teardown states (TIME_WAIT) must not pin
  /// buffer memory, or high connection churn exhausts RAM.
  explicit ByteRing(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t readable() const { return size_; }
  [[nodiscard]] std::size_t writable() const { return capacity_ - size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity_; }

  /// Copy as much of `src` in as fits; returns bytes written. At most two
  /// memcpy segments: [tail, min(end, tail+n)) and the wrap onto [0, rest).
  std::size_t write(std::span<const std::uint8_t> src) {
    if (buf_.empty() && !src.empty()) buf_.resize(capacity_);
    const std::size_t n = std::min(src.size(), writable());
    if (n == 0) return 0;
    const std::size_t tail = (head_ + size_) % capacity_;
    const std::size_t first = std::min(n, capacity_ - tail);
    std::memcpy(buf_.data() + tail, src.data(), first);
    if (n > first) std::memcpy(buf_.data(), src.data() + first, n - first);
    size_ += n;
    high_water_ = std::max(high_water_, size_);
    total_in_ += n;
    return n;
  }

  /// Drop content AND free the backing memory (lazily re-allocated if the
  /// ring is written again).
  void release() {
    head_ = 0;
    size_ = 0;
    buf_.clear();
    buf_.shrink_to_fit();
  }

  /// Copy up to dst.size() bytes out; returns bytes read.
  std::size_t read(std::span<std::uint8_t> dst) {
    const std::size_t n = copy_out(0, dst);
    head_ = (head_ + n) % capacity_;
    size_ -= n;
    total_out_ += n;
    return n;
  }

  /// Copy bytes starting `offset` into the readable region, without
  /// consuming (TCP retransmission reads unacked data at an offset).
  std::size_t peek_at(std::size_t offset, std::span<std::uint8_t> dst) const {
    return copy_out(offset, dst);
  }

  /// Copy up to `n` bytes without consuming them.
  std::size_t peek(std::span<std::uint8_t> dst) const {
    return copy_out(0, dst);
  }

  /// Drop up to n bytes; returns bytes dropped.
  std::size_t discard(std::size_t n) {
    if (buf_.empty()) return 0;
    n = std::min(n, readable());
    head_ = (head_ + n) % buf_.size();
    size_ -= n;
    total_out_ += n;
    return n;
  }

  /// Remove all content (socket teardown / replica restart).
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] std::uint64_t total_in() const { return total_in_; }
  [[nodiscard]] std::uint64_t total_out() const { return total_out_; }
  /// Largest occupancy ever reached (queue-pressure diagnostics).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  /// Shared tail of read/peek/peek_at: copy up to dst.size() bytes starting
  /// `offset` into the readable region, in at most two memcpy segments.
  std::size_t copy_out(std::size_t offset,
                       std::span<std::uint8_t> dst) const {
    if (buf_.empty() || offset >= size_) return 0;
    const std::size_t n = std::min(dst.size(), size_ - offset);
    if (n == 0) return 0;
    const std::size_t pos = (head_ + offset) % capacity_;
    const std::size_t first = std::min(n, capacity_ - pos);
    std::memcpy(dst.data(), buf_.data() + pos, first);
    if (n > first) std::memcpy(dst.data() + first, buf_.data(), n - first);
    return n;
  }

  std::size_t capacity_;
  std::vector<std::uint8_t> buf_;  // empty until first write
  std::size_t head_{0};
  std::size_t size_{0};
  std::size_t high_water_{0};
  std::uint64_t total_in_{0};
  std::uint64_t total_out_{0};
};

}  // namespace neat::ipc
