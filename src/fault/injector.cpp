#include "fault/injector.hpp"

#include <cassert>

namespace neat::fault {

std::vector<ComponentWeight> default_weights() {
  // Relative sizes of the stack's isolated components, measured from this
  // repository (wc -l): net/tcp.* 1265, IP+eth+arp codecs 637, UDP+ICMP
  // 168, packet filter 65, NIC driver 188. TCP dwarfs everything else,
  // matching the paper's observation that only TCP faults cause visible
  // state loss; our TCP share (~54%) is a bit above the paper's 46.2%
  // because our non-TCP components are leaner than NewtOS's.
  return {
      {Component::kTcp, false, 1265.0, "tcp"},
      {Component::kIp, false, 637.0, "ip"},
      {Component::kUdp, false, 168.0, "udp"},
      {Component::kFilter, false, 65.0, "pf"},
      {Component::kWhole, true, 188.0, "nicdrv"},
  };
}

FaultInjector::FaultInjector(NeatHost& host, std::uint64_t seed,
                             std::vector<ComponentWeight> weights)
    : host_(host), rng_(seed), weights_(std::move(weights)) {
  for (const auto& w : weights_) total_weight_ += w.weight;
}

InjectionOutcome FaultInjector::inject_random() {
  // Pick the faulty component, weighted by code size.
  double x = rng_.uniform() * total_weight_;
  const ComponentWeight* chosen = &weights_.back();
  for (const auto& w : weights_) {
    if (x < w.weight) {
      chosen = &w;
      break;
    }
    x -= w.weight;
  }

  if (chosen->is_driver) {
    host_.inject_driver_crash();
    return InjectionOutcome{"nicdrv", false, 0};
  }

  const std::size_t replica = rng_.below(host_.replica_count());
  return inject(replica, chosen->component);
}

InjectionOutcome FaultInjector::inject(std::size_t replica,
                                       Component component) {
  assert(replica < host_.replica_count());
  StackReplica& rep = host_.replica(replica);
  const std::size_t before = host_.recovery_log().size();
  host_.inject_crash(rep, component);
  InjectionOutcome out;
  out.component = to_string(component);
  if (host_.recovery_log().size() > before) {
    const RecoveryEvent& ev = host_.recovery_log().back();
    out.tcp_state_lost = ev.tcp_state_lost;
    out.connections_lost = ev.connections_lost;
  }
  return out;
}

}  // namespace neat::fault
