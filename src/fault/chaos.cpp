#include "fault/chaos.hpp"

#include <algorithm>
#include <array>
#include <string_view>

namespace neat::fault {

const char* to_string(ChaosKind k) {
  switch (k) {
    case ChaosKind::kReplicaCrash: return "replica_crash";
    case ChaosKind::kComponentCrash: return "component_crash";
    case ChaosKind::kDriverCrash: return "driver_crash";
    case ChaosKind::kConcurrent: return "concurrent";
    case ChaosKind::kCrashStorm: return "crash_storm";
    case ChaosKind::kHandshakeCrash: return "handshake_crash";
    case ChaosKind::kScaleDownCrash: return "scale_down_crash";
    case ChaosKind::kLinkBlip: return "link_blip";
  }
  return "?";
}

ChaosCampaign::ChaosCampaign(NeatHost& host, nic::Link& link, ChaosConfig cfg)
    : host_(host), link_(link), cfg_(cfg), rng_(cfg.seed) {}

void ChaosCampaign::start() {
  end_at_ = host_.simulator().now() + cfg_.duration;
  schedule_next();
}

void ChaosCampaign::schedule_next() {
  const auto gap = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(
             rng_.exponential(static_cast<double>(cfg_.mean_fault_gap))));
  const sim::SimTime at = host_.simulator().now() + gap;
  if (at >= end_at_) return;  // schedule exhausted; settle phase begins
  host_.simulator().schedule(gap, [this] {
    inject_one();
    schedule_next();
  });
}

ChaosKind ChaosCampaign::draw_kind() {
  const std::array<std::pair<ChaosKind, double>, 8> weighted{{
      {ChaosKind::kReplicaCrash, cfg_.w_replica_crash},
      {ChaosKind::kComponentCrash, cfg_.w_component_crash},
      {ChaosKind::kDriverCrash, cfg_.w_driver_crash},
      {ChaosKind::kConcurrent, cfg_.w_concurrent},
      {ChaosKind::kCrashStorm, cfg_.w_crash_storm},
      {ChaosKind::kHandshakeCrash, cfg_.w_handshake_crash},
      {ChaosKind::kScaleDownCrash, cfg_.w_scale_down_crash},
      {ChaosKind::kLinkBlip, cfg_.w_link_blip},
  }};
  double total = 0;
  for (const auto& [k, w] : weighted) total += w;
  double x = rng_.uniform() * total;
  for (const auto& [k, w] : weighted) {
    if (x < w) return k;
    x -= w;
  }
  return ChaosKind::kReplicaCrash;
}

StackReplica* ChaosCampaign::random_active() {
  auto active = host_.active_replicas();
  if (active.empty()) return nullptr;
  return active[rng_.below(active.size())];
}

void ChaosCampaign::inject_one() {
  ++report_.faults_injected;
  switch (draw_kind()) {
    case ChaosKind::kReplicaCrash: do_replica_crash(); break;
    case ChaosKind::kComponentCrash: do_component_crash(); break;
    case ChaosKind::kDriverCrash: do_driver_crash(); break;
    case ChaosKind::kConcurrent: do_concurrent(); break;
    case ChaosKind::kCrashStorm: do_crash_storm(); break;
    case ChaosKind::kHandshakeCrash: do_handshake_crash(); break;
    case ChaosKind::kScaleDownCrash: do_scale_down_crash(); break;
    case ChaosKind::kLinkBlip: do_link_blip(); break;
  }
}

void ChaosCampaign::do_replica_crash() {
  if (StackReplica* r = random_active()) {
    ++report_.replica_crashes;
    host_.inject_crash(*r, Component::kWhole);
  }
}

void ChaosCampaign::do_component_crash() {
  StackReplica* r = random_active();
  if (r == nullptr) return;
  ++report_.component_crashes;
  if (std::string_view(r->kind()) == "single") {
    host_.inject_crash(*r, Component::kWhole);
    return;
  }
  static constexpr std::array<Component, 4> kComponents{
      Component::kTcp, Component::kIp, Component::kUdp, Component::kFilter};
  host_.inject_crash(*r, kComponents[rng_.below(kComponents.size())]);
}

void ChaosCampaign::do_driver_crash() {
  ++report_.driver_crashes;
  host_.inject_driver_crash();
}

void ChaosCampaign::do_concurrent() {
  ++report_.concurrent_faults;
  host_.inject_driver_crash();
  if (StackReplica* r = random_active()) {
    host_.inject_crash(*r, Component::kWhole);
  }
}

void ChaosCampaign::do_crash_storm() {
  auto active = host_.active_replicas();
  if (active.empty()) return;
  ++report_.crash_storms;
  // Fisher-Yates prefix: pick storm_size distinct victims.
  const std::size_t n = std::min(cfg_.storm_size, active.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng_.below(active.size() - i);
    std::swap(active[i], active[j]);
    host_.inject_crash(*active[i], Component::kWhole);
  }
}

void ChaosCampaign::do_handshake_crash() {
  // Prefer a replica with a handshake in flight — the hardest point to
  // lose state (the paper's SYN-replay discussion).
  auto active = host_.active_replicas();
  StackReplica* victim = nullptr;
  for (auto* r : active) {
    if (r->tcp().pending_handshake_count() > 0) {
      victim = r;
      break;
    }
  }
  if (victim == nullptr && !active.empty()) {
    victim = active[rng_.below(active.size())];
  }
  if (victim != nullptr) {
    ++report_.handshake_crashes;
    host_.inject_crash(*victim, Component::kWhole);
  }
}

void ChaosCampaign::do_scale_down_crash() {
  // Only meaningful with a survivor to take the load, and only legal with
  // tracking filters (draining a loaded replica without them is a hard
  // error — see NeatHost::begin_scale_down); fall back otherwise.
  auto active = host_.active_replicas();
  if (active.size() < 2 || !host_.nic().params().tracking_filters) {
    do_replica_crash();
    return;
  }
  ++report_.scale_down_crashes;
  StackReplica* r = active[rng_.below(active.size())];
  host_.begin_scale_down(*r);
  // Crash it mid-drain, shortly after the steering change lands.
  const auto delay = 1 + rng_.below(5 * sim::kMillisecond);
  host_.simulator().schedule(delay, [this, r] {
    if (!r->terminated) host_.inject_crash(*r, Component::kWhole);
  });
}

void ChaosCampaign::do_link_blip() {
  if (blip_active_) return;  // one blip at a time
  ++report_.link_blips;
  blip_active_ = true;
  pre_blip_ = link_.set_impairment(cfg_.blip);
  host_.simulator().schedule(cfg_.blip_duration, [this] {
    link_.set_impairment(pre_blip_);
    blip_active_ = false;
  });
}

const ChaosReport& ChaosCampaign::audit() {
  auto violation = [this](std::string msg) {
    report_.violations.push_back(std::move(msg));
  };

  // 1. Supervision completeness: every logged crash was watchdog-detected
  //    and resolved, within the configured detection bound.
  const auto& sup = host_.supervisor().config();
  const sim::SimTime detect_bound =
      sup.watchdog_timeout + 2 * sup.heartbeat_period;
  for (std::size_t i = 0; i < host_.recovery_log().size(); ++i) {
    const auto& ev = host_.recovery_log()[i];
    if (ev.detected_at == 0) {
      violation("event " + std::to_string(i) + " (" + ev.component +
                ") was never detected by the watchdog");
      continue;
    }
    if (ev.detection_latency() > detect_bound) {
      violation("event " + std::to_string(i) + " detection latency " +
                std::to_string(ev.detection_latency()) + "ns exceeds bound " +
                std::to_string(detect_bound) + "ns");
    }
    if (ev.recovered_at == 0) {
      violation("event " + std::to_string(i) + " (" + ev.component +
                ") was detected but never resolved");
    }
  }

  // 2. The driver must be back up once the dust settles.
  if (host_.driver().crashed()) violation("driver still down after settle");

  // 3. Steering consistency: every indirection entry points to a serving,
  //    non-terminating, non-quarantined replica with a live endpoint.
  for (const int q : host_.nic().indirection()) {
    StackReplica* owner = nullptr;
    for (std::size_t i = 0; i < host_.replica_count(); ++i) {
      if (host_.replica(i).queue() == q) {
        owner = &host_.replica(i);
        break;
      }
    }
    if (owner == nullptr) {
      violation("steering entry -> queue " + std::to_string(q) +
                " has no replica");
      continue;
    }
    if (owner->terminating || owner->terminated || owner->quarantined) {
      violation("steering entry -> replica " + std::to_string(owner->id()) +
                " which is terminating/terminated/quarantined");
    } else if (!host_.driver().endpoint_active(q)) {
      violation("steering entry -> queue " + std::to_string(q) +
                " whose driver endpoint is inactive");
    }
  }

  // 4. Every active replica is actually alive and replays every durable
  //    listener (subsocket replication survived all restarts).
  const auto ports = host_.listen_ports();
  for (auto* r : host_.active_replicas()) {
    for (auto* p : r->processes()) {
      if (p->crashed()) {
        violation("active replica " + std::to_string(r->id()) +
                  " has a crashed component process");
      }
    }
    for (const auto port : ports) {
      if (r->tcp().listener(port) == nullptr) {
        violation("active replica " + std::to_string(r->id()) +
                  " lost listener on port " + std::to_string(port));
      }
    }
  }

  // 5. Quarantine hygiene: quarantined replicas stay fully down and out of
  //    the serving set.
  const auto serving = host_.serving_replicas();
  for (std::size_t i = 0; i < host_.replica_count(); ++i) {
    StackReplica& r = host_.replica(i);
    if (!r.quarantined) continue;
    for (auto* p : r.processes()) {
      if (!p->crashed()) {
        violation("quarantined replica " + std::to_string(r.id()) +
                  " has a running process");
      }
    }
    if (std::find(serving.begin(), serving.end(), &r) != serving.end()) {
      violation("quarantined replica " + std::to_string(r.id()) +
                " still in serving set");
    }
  }

  return report_;
}

}  // namespace neat::fault
