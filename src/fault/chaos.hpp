// Randomized multi-fault chaos campaigns (the robustness harness).
//
// A ChaosCampaign drives a NeatHost through a deterministic, seeded
// schedule of composite faults — replica crashes, driver crashes, crash
// storms, crashes timed into the TCP handshake window, crashes during lazy
// termination, concurrent driver+replica failures, and transient link
// degradation (loss + reordering + duplication + corruption) — while the
// caller keeps an HTTP workload running over the host. When the schedule
// ends and the supervisor has settled, `audit()` checks the end-of-run
// invariants:
//
//   * supervision completeness — every crash in the recovery log was
//     detected by the watchdog and resolved (restart/quarantine/collect),
//     within the detection-latency bound;
//   * steering consistency — every RSS indirection entry points to a
//     serving, never-terminating, never-quarantined replica whose driver
//     endpoint is live (a replica in lazy termination or quarantine must
//     never re-enter the steering table);
//   * listener replay completeness — every durable listen() record is
//     present on every active replica;
//   * quarantine hygiene — a quarantined replica's processes are all down
//     and it stays out of the serving set.
//
// Client-visible invariants (payload integrity via
// LoadGen::Report::payload_mismatches, no cross-replica disturbance) are
// asserted by the callers, which own the workload.
//
// The campaign layer deliberately depends only on neat_core + nic — not on
// the harness — so any rig can be chaos-tested.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "neat/host.hpp"
#include "nic/nic.hpp"
#include "sim/random.hpp"

namespace neat::fault {

/// One fault kind the scheduler can draw, with its relative weight.
enum class ChaosKind {
  kReplicaCrash,    ///< whole-stack crash of one random active replica
  kComponentCrash,  ///< one component (TCP/IP/UDP/PF) of a multi replica
  kDriverCrash,     ///< NIC driver process crash
  kConcurrent,      ///< driver + replica crash in the same instant
  kCrashStorm,      ///< several replicas crash back-to-back
  kHandshakeCrash,  ///< crash a replica that has handshakes in flight
  kScaleDownCrash,  ///< begin lazy termination, then crash the drainer
  kLinkBlip,        ///< transient link degradation (loss/reorder/dup/...)
};

[[nodiscard]] const char* to_string(ChaosKind k);

struct ChaosConfig {
  std::uint64_t seed{42};
  /// Faults are injected over [start, start + duration).
  sim::SimTime duration{2 * sim::kSecond};
  /// Mean inter-fault gap (exponential inter-arrivals).
  sim::SimTime mean_fault_gap{60 * sim::kMillisecond};
  /// Quiet period after the last fault before the audit runs; must cover
  /// detection + the deepest backoff the campaign can provoke.
  sim::SimTime settle{1 * sim::kSecond};

  /// Relative weights per kind (0 disables a kind).
  double w_replica_crash{4.0};
  double w_component_crash{2.0};
  double w_driver_crash{1.0};
  double w_concurrent{1.0};
  double w_crash_storm{0.5};
  double w_handshake_crash{1.5};
  double w_scale_down_crash{1.0};
  double w_link_blip{2.0};

  /// Replicas hit by one crash storm (clamped to the active set).
  std::size_t storm_size{3};

  /// The degraded profile a link blip applies, and for how long.
  nic::LinkImpairment blip{
      .drop_probability = 0.02,
      .corrupt_probability = 0.005,
      .duplicate_probability = 0.01,
      .reorder_probability = 0.05,
      .reorder_window = 150 * sim::kMicrosecond,
      .jitter = 20 * sim::kMicrosecond,
  };
  sim::SimTime blip_duration{50 * sim::kMillisecond};
};

struct ChaosReport {
  std::size_t faults_injected{0};
  std::size_t replica_crashes{0};
  std::size_t component_crashes{0};
  std::size_t driver_crashes{0};
  std::size_t concurrent_faults{0};
  std::size_t crash_storms{0};
  std::size_t handshake_crashes{0};
  std::size_t scale_down_crashes{0};
  std::size_t link_blips{0};

  /// Invariant violations found by audit(); empty = campaign passed.
  std::vector<std::string> violations;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

class ChaosCampaign {
 public:
  ChaosCampaign(NeatHost& host, nic::Link& link, ChaosConfig cfg);

  /// Schedule the fault sequence starting now. The caller then runs the
  /// simulation past now + duration + settle and calls audit().
  void start();

  /// Total sim-time the campaign needs from start() until audit-ready.
  [[nodiscard]] sim::SimTime span() const {
    return cfg_.duration + cfg_.settle;
  }

  /// Run the end-of-run invariant checks; appends violations to the
  /// report. Idempotent per call (violations accumulate only once per
  /// distinct failure found at call time).
  const ChaosReport& audit();

  [[nodiscard]] const ChaosReport& report() const { return report_; }
  [[nodiscard]] const ChaosConfig& config() const { return cfg_; }

 private:
  void schedule_next();
  void inject_one();
  [[nodiscard]] ChaosKind draw_kind();
  [[nodiscard]] StackReplica* random_active();

  void do_replica_crash();
  void do_component_crash();
  void do_driver_crash();
  void do_concurrent();
  void do_crash_storm();
  void do_handshake_crash();
  void do_scale_down_crash();
  void do_link_blip();

  NeatHost& host_;
  nic::Link& link_;
  ChaosConfig cfg_;
  sim::Rng rng_;
  ChaosReport report_;
  sim::SimTime end_at_{0};
  bool blip_active_{false};
  nic::LinkImpairment pre_blip_;
};

}  // namespace neat::fault
