// Fault injection (paper §6.6, Table 3).
//
// Mimics the authors' tool: a fault is injected at a random point in the
// network stack's code; the probability that a given component hosts the
// fault is proportional to that component's code size. We then crash the
// chosen component process and let NEaT's recovery run, recording whether
// any TCP state (connections) was lost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "neat/host.hpp"
#include "sim/random.hpp"

namespace neat::fault {

struct ComponentWeight {
  Component component;
  bool is_driver{false};
  double weight{1.0};  ///< proportional to code size
  const char* name{""};
};

/// Code-size weights measured from this repository's modules (wc -l at the
/// time of calibration; the exact values matter less than the ratio —
/// TCP is by far the largest stateful component, just as in the paper).
[[nodiscard]] std::vector<ComponentWeight> default_weights();

struct InjectionOutcome {
  std::string component;
  bool tcp_state_lost{false};
  std::size_t connections_lost{0};
};

class FaultInjector {
 public:
  FaultInjector(NeatHost& host, std::uint64_t seed,
                std::vector<ComponentWeight> weights = default_weights());

  /// Crash one randomly chosen component of one randomly chosen replica.
  InjectionOutcome inject_random();

  /// Crash a specific component of a specific replica.
  InjectionOutcome inject(std::size_t replica, Component component);

 private:
  NeatHost& host_;
  sim::Rng rng_;
  std::vector<ComponentWeight> weights_;
  double total_weight_{0.0};
};

}  // namespace neat::fault
