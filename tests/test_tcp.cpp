// TCP state-machine tests: two TcpStacks wired back-to-back over an
// impairable virtual wire (loss, reordering, duplication, corruption).
#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <vector>

#include "net/tcp.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace neat::net {
namespace {

const Ipv4Addr kClientIp = Ipv4Addr::of(10, 0, 0, 2);
const Ipv4Addr kServerIp = Ipv4Addr::of(10, 0, 0, 1);

struct Impairments {
  double loss{0.0};
  double dup{0.0};
  double corrupt{0.0};
  sim::SimTime jitter{0};  ///< uniform extra delay -> reordering
};

/// TcpEnv over the bare event queue: segments are delivered to the peer
/// stack after a small latency, possibly impaired.
class WireEnv final : public TcpEnv {
 public:
  WireEnv(sim::Simulator& sim, std::uint64_t seed)
      : sim_(sim), rng_(seed) {}

  void set_peer(TcpStack* peer) { peer_ = peer; }
  void set_impairments(Impairments i) { imp_ = i; }
  void set_iss(std::uint32_t iss) { forced_iss_ = iss; }

  sim::SimTime now() override { return sim_.now(); }
  sim::EventHandle start_timer(sim::SimTime delay,
                               std::function<void()> fn) override {
    return sim_.schedule(delay, std::move(fn));
  }
  std::uint32_t random_u32() override {
    if (forced_iss_) return *forced_iss_;
    return static_cast<std::uint32_t>(rng_());
  }

  void tx(PacketPtr segment, Ipv4Addr src, Ipv4Addr dst) override {
    ++segments_sent_;
    seg_sizes_.push_back(segment->size());
    if (rng_.chance(imp_.loss)) return;
    const int copies = rng_.chance(imp_.dup) ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
      PacketPtr pkt = copies == 2 ? segment->clone() : segment;
      if (rng_.chance(imp_.corrupt) && pkt->size() > 0) {
        pkt = pkt->clone();
        pkt->bytes()[rng_.below(pkt->size())] ^= 0xff;
      }
      const sim::SimTime delay =
          10 * sim::kMicrosecond +
          (imp_.jitter ? rng_.below(imp_.jitter) : 0);
      sim_.schedule(delay, [this, pkt, src, dst] {
        if (peer_ != nullptr) peer_->rx(src, dst, pkt);
      });
    }
  }

  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] const std::vector<std::size_t>& seg_sizes() const {
    return seg_sizes_;
  }

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  TcpStack* peer_{nullptr};
  Impairments imp_;
  std::optional<std::uint32_t> forced_iss_;
  std::uint64_t segments_sent_{0};
  std::vector<std::size_t> seg_sizes_;
};

struct TcpPair : public ::testing::Test {
  TcpPair()
      : client_env(sim, 1),
        server_env(sim, 2),
        client(client_env, kClientIp, cfg()),
        server(server_env, kServerIp, cfg()) {
    client_env.set_peer(&server);
    server_env.set_peer(&client);
  }

  static TcpConfig cfg() {
    TcpConfig c;
    c.rto_min = 20 * sim::kMillisecond;
    c.rto_initial = 50 * sim::kMillisecond;
    c.time_wait = 50 * sim::kMillisecond;
    c.delayed_ack = 0;  // deterministic acking unless a test overrides
    c.tso = false;       // per-MSS segments: more interesting protocol
                         // behaviour (TSO has its own test)
    return c;
  }

  /// Run until quiescent or the deadline.
  void run(sim::SimTime t = sim::kSecond) { sim.run_until(sim.now() + t); }

  TcpSocketPtr connect_and_accept(TcpListener** listener_out = nullptr,
                                  std::uint16_t port = 80) {
    TcpListener* l = server.listener(port);
    if (l == nullptr) l = server.listen(port);
    if (listener_out != nullptr) *listener_out = l;
    auto c = client.connect(SockAddr{kServerIp, port});
    run(200 * sim::kMillisecond);
    return c;
  }

  sim::Simulator sim;
  WireEnv client_env;
  WireEnv server_env;
  TcpStack client;
  TcpStack server;
};

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 0) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 7 + (i >> 8));
  }
  return v;
}

/// Pump `data` through `src` -> `dst`, reading into `sink`, until all
/// bytes arrive or the deadline passes.
void transfer_on(sim::Simulator& sim, const TcpSocketPtr& src,
                 const TcpSocketPtr& dst,
                 const std::vector<std::uint8_t>& data,
                 std::vector<std::uint8_t>& sink,
                 sim::SimTime deadline = 30 * sim::kSecond) {
  std::size_t off = 0;
  const sim::SimTime end = sim.now() + deadline;
  while (sink.size() < data.size() && sim.now() < end) {
    off += src->send(std::span<const std::uint8_t>(data).subspan(off));
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = dst->recv(buf)) > 0) {
      sink.insert(sink.end(), buf, buf + n);
    }
    sim.run_until(sim.now() + sim::kMillisecond);
  }
}

void transfer(TcpPair& t, const TcpSocketPtr& src, const TcpSocketPtr& dst,
              const std::vector<std::uint8_t>& data,
              std::vector<std::uint8_t>& sink,
              sim::SimTime deadline = 30 * sim::kSecond) {
  transfer_on(t.sim, src, dst, data, sink, deadline);
}

// ---------------------------------------------------------------------------
// Sequence arithmetic
// ---------------------------------------------------------------------------

TEST(SeqArith, WrapsCorrectly) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));  // wrapped compare
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
  EXPECT_FALSE(seq_lt(5u, 5u));
}

// ---------------------------------------------------------------------------
// Handshake & basics
// ---------------------------------------------------------------------------

TEST_F(TcpPair, ThreeWayHandshakeEstablishes) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->state(), TcpState::kEstablished);
  ASSERT_EQ(l->pending(), 1u);
  auto s = l->accept();
  ASSERT_TRUE(s);
  EXPECT_EQ(s->state(), TcpState::kEstablished);
  EXPECT_EQ(server.stats().conns_accepted, 1u);
  EXPECT_EQ(client.stats().conns_initiated, 1u);
}

TEST_F(TcpPair, EstablishedCallbackFires) {
  server.listen(80);
  auto c = client.connect(SockAddr{kServerIp, 80});
  bool established = false;
  TcpSocket::Callbacks cb;
  cb.on_established = [&] { established = true; };
  c->set_callbacks(std::move(cb));
  run(100 * sim::kMillisecond);
  EXPECT_TRUE(established);
}

TEST_F(TcpPair, ConnectToClosedPortIsRefused) {
  auto c = client.connect(SockAddr{kServerIp, 81});
  TcpCloseReason reason{};
  bool closed = false;
  TcpSocket::Callbacks cb;
  cb.on_closed = [&](TcpCloseReason r) {
    closed = true;
    reason = r;
  };
  c->set_callbacks(std::move(cb));
  run(200 * sim::kMillisecond);
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, TcpCloseReason::kRefused);
  EXPECT_GT(server.stats().rsts_out, 0u);
}

TEST_F(TcpPair, SynRetransmitsUntilGivingUp) {
  // No peer wired at all: every SYN vanishes.
  client_env.set_peer(nullptr);
  auto c = client.connect(SockAddr{kServerIp, 80});
  TcpCloseReason reason{};
  TcpSocket::Callbacks cb;
  cb.on_closed = [&](TcpCloseReason r) { reason = r; };
  c->set_callbacks(std::move(cb));
  run(30 * sim::kSecond);
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(reason, TcpCloseReason::kTimeout);
  EXPECT_GE(client_env.segments_sent(), 3u);  // SYN + retries
}

TEST_F(TcpPair, MssIsNegotiatedToTheMinimum) {
  TcpConfig small = cfg();
  small.mss = 500;
  TcpStack tiny_server(server_env, kServerIp, small);
  client_env.set_peer(&tiny_server);
  server_env.set_peer(&client);
  tiny_server.listen(80);
  auto c = client.connect(SockAddr{kServerIp, 80});
  run(100 * sim::kMillisecond);
  ASSERT_EQ(c->state(), TcpState::kEstablished);

  // Client -> server data segments must respect the server's 500-byte MSS.
  c->send(pattern(5000));
  run(200 * sim::kMillisecond);
  bool any_data = false;
  for (std::size_t sz : client_env.seg_sizes()) {
    if (sz > TcpHeader::kMinSize + 4) {
      any_data = true;
      EXPECT_LE(sz, 500u + TcpHeader::kMinSize + 4);
    }
  }
  EXPECT_TRUE(any_data);
}

TEST_F(TcpPair, TsoEmitsSuperSegments) {
  TcpConfig tso_cfg = cfg();
  tso_cfg.tso = true;
  sim::Simulator sim2;
  WireEnv ce(sim2, 1), se(sim2, 2);
  TcpStack c_stack(ce, kClientIp, tso_cfg);
  TcpStack s_stack(se, kServerIp, cfg());
  ce.set_peer(&s_stack);
  se.set_peer(&c_stack);
  s_stack.listen(80);
  auto c = c_stack.connect(SockAddr{kServerIp, 80});
  sim2.run_until(100 * sim::kMillisecond);
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  auto s = s_stack.listener(80)->accept();
  const auto data = pattern(60000, 7);
  std::vector<std::uint8_t> sink;
  transfer_on(sim2, c, s, data, sink);
  ASSERT_EQ(sink, data);
  // The sender must have used far fewer (larger) segments than 60000/1460.
  std::size_t biggest = 0;
  for (std::size_t sz : ce.seg_sizes()) biggest = std::max(biggest, sz);
  EXPECT_GT(biggest, 2 * 1460u);
}

TEST_F(TcpPair, BacklogOverflowDropsSyn) {
  server.listen(80, /*backlog=*/2);
  std::vector<TcpSocketPtr> conns;
  for (int i = 0; i < 5; ++i) {
    conns.push_back(client.connect(SockAddr{kServerIp, 80}));
  }
  run(300 * sim::kMillisecond);
  EXPECT_GT(server.stats().syns_dropped_backlog, 0u);
  EXPECT_LE(server.listener(80)->pending(), 2u);
}

TEST_F(TcpPair, EphemeralPortsAreUnique) {
  server.listen(80);
  std::vector<TcpSocketPtr> conns;
  for (int i = 0; i < 50; ++i) {
    auto c = client.connect(SockAddr{kServerIp, 80});
    ASSERT_TRUE(c);
    conns.push_back(c);
  }
  std::set<std::uint16_t> ports;
  for (const auto& c : conns) ports.insert(c->flow().local_port);
  EXPECT_EQ(ports.size(), conns.size());
}

// ---------------------------------------------------------------------------
// Data transfer
// ---------------------------------------------------------------------------

TEST_F(TcpPair, SmallRequestResponse) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  ASSERT_TRUE(s);

  const auto req = pattern(64, 1);
  EXPECT_EQ(c->send(req), req.size());
  run(100 * sim::kMillisecond);
  std::vector<std::uint8_t> got(64);
  ASSERT_EQ(s->recv(got), req.size());
  EXPECT_EQ(got, req);

  const auto resp = pattern(128, 2);
  EXPECT_EQ(s->send(resp), resp.size());
  run(100 * sim::kMillisecond);
  std::vector<std::uint8_t> got2(128);
  ASSERT_EQ(c->recv(got2), resp.size());
  EXPECT_EQ(got2, resp);
}

TEST_F(TcpPair, ReadableCallbackOnDataAndEof) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  int readable = 0;
  TcpSocket::Callbacks cb;
  cb.on_readable = [&] { ++readable; };
  s->set_callbacks(std::move(cb));
  c->send(pattern(10));
  run(100 * sim::kMillisecond);
  EXPECT_GE(readable, 1);
  const int before = readable;
  c->close();
  run(100 * sim::kMillisecond);
  EXPECT_GT(readable, before) << "EOF is signalled via on_readable";
  std::uint8_t buf[32];
  s->recv(buf);
  EXPECT_TRUE(s->eof());
}

class TcpTransferSize : public TcpPair,
                        public ::testing::WithParamInterface<std::size_t> {};

TEST_P(TcpTransferSize, BulkTransferIsExact) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  ASSERT_TRUE(s);
  const auto data = pattern(GetParam(), 3);
  std::vector<std::uint8_t> sink;
  transfer(*this, c, s, data, sink);
  ASSERT_EQ(sink.size(), data.size());
  EXPECT_EQ(sink, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSize,
                         ::testing::Values(1, 100, 1460, 1461, 65536,
                                           200000, 1048576));

TEST_F(TcpPair, FlowControlStallsAndResumesOnRead) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  ASSERT_TRUE(s);

  // Server app never reads: the client can push at most roughly the
  // server's receive buffer plus its own send buffer.
  const auto data = pattern(1 << 20);
  std::size_t accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += c->send(std::span<const std::uint8_t>(data).subspan(
        accepted, std::min<std::size_t>(8192, data.size() - accepted)));
    run(20 * sim::kMillisecond);
  }
  EXPECT_LE(accepted, cfg().send_buf + cfg().recv_buf + 1);
  EXPECT_GE(s->readable(), cfg().recv_buf - 1460);

  // Now drain the server side; the rest of the stream must complete.
  std::vector<std::uint8_t> sink;
  std::size_t off = accepted;
  const sim::SimTime end = sim.now() + 60 * sim::kSecond;
  while (sink.size() < data.size() && sim.now() < end) {
    off += c->send(std::span<const std::uint8_t>(data).subspan(off));
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = s->recv(buf)) > 0) sink.insert(sink.end(), buf, buf + n);
    run(sim::kMillisecond);
  }
  EXPECT_EQ(sink, data);
}

TEST_F(TcpPair, BidirectionalSimultaneousTransfer) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  const auto up = pattern(100000, 5);
  const auto down = pattern(120000, 6);
  std::vector<std::uint8_t> up_sink, down_sink;
  std::size_t uo = 0, doo = 0;
  for (int iter = 0; iter < 4000 &&
                     (up_sink.size() < up.size() ||
                      down_sink.size() < down.size());
       ++iter) {
    uo += c->send(std::span<const std::uint8_t>(up).subspan(uo));
    doo += s->send(std::span<const std::uint8_t>(down).subspan(doo));
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = s->recv(buf)) > 0) up_sink.insert(up_sink.end(), buf, buf + n);
    while ((n = c->recv(buf)) > 0) {
      down_sink.insert(down_sink.end(), buf, buf + n);
    }
    sim.run_until(sim.now() + sim::kMillisecond);
  }
  EXPECT_EQ(up_sink, up);
  EXPECT_EQ(down_sink, down);
}

// ---------------------------------------------------------------------------
// Impairments: loss, reorder, duplication, corruption
// ---------------------------------------------------------------------------

struct Impair {
  double loss, dup, corrupt;
  sim::SimTime jitter;
};

class TcpImpaired : public TcpPair,
                    public ::testing::WithParamInterface<Impair> {};

TEST_P(TcpImpaired, StreamSurvivesExactlyOnceInOrder) {
  const auto imp = GetParam();
  client_env.set_impairments({imp.loss, imp.dup, imp.corrupt, imp.jitter});
  server_env.set_impairments({imp.loss, imp.dup, imp.corrupt, imp.jitter});

  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  ASSERT_TRUE(c);
  run(sim::kSecond);  // handshake may need retries under loss
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  auto s = l->accept();
  ASSERT_TRUE(s);

  const auto data = pattern(400000, 9);
  std::vector<std::uint8_t> sink;
  transfer(*this, c, s, data, sink, 240 * sim::kSecond);
  ASSERT_EQ(sink.size(), data.size());
  EXPECT_EQ(sink, data);
  if (imp.loss > 0.0) {
    EXPECT_GT(client.stats().retransmits, 0u);
  }
  if (imp.corrupt > 0.0) {
    EXPECT_GT(server.stats().checksum_drops + client.stats().checksum_drops,
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, TcpImpaired,
    ::testing::Values(Impair{0.01, 0, 0, 0},          // light loss
                      Impair{0.05, 0, 0, 0},          // heavy loss
                      Impair{0, 0, 0, sim::kMillisecond},  // reordering
                      Impair{0, 0.1, 0, 0},           // duplication
                      Impair{0, 0, 0.02, 0},          // corruption
                      Impair{0.02, 0.05, 0.01, 200 * sim::kMicrosecond}));

TEST_F(TcpPair, FastRetransmitRecoversWithoutRtoStall) {
  // Drop exactly one data segment, then deliver everything else: the
  // 3-dupACK path must resend it well before the RTO.
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  client_env.set_impairments({0.08, 0, 0, 0});
  const auto data = pattern(300000, 4);
  std::vector<std::uint8_t> sink;
  const sim::SimTime start = sim.now();
  transfer(*this, c, s, data, sink, 120 * sim::kSecond);
  ASSERT_EQ(sink, data);
  EXPECT_GT(client.stats().retransmits, 0u);
  // With fast retransmit, a 300KB transfer under 8% loss completes in far
  // fewer RTO periods than the number of losses.
  EXPECT_LT(sim.now() - start, 20 * sim::kSecond);
}

// ---------------------------------------------------------------------------
// Close behaviour
// ---------------------------------------------------------------------------

TEST_F(TcpPair, OrderlyCloseBothDirections) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();

  c->close();
  run(100 * sim::kMillisecond);
  EXPECT_EQ(s->state(), TcpState::kCloseWait);
  EXPECT_EQ(c->state(), TcpState::kFinWait2);
  EXPECT_TRUE(s->eof());

  s->close();
  run(10 * sim::kMillisecond);  // < the 50 ms TIME_WAIT hold
  EXPECT_EQ(s->state(), TcpState::kClosed);
  EXPECT_EQ(c->state(), TcpState::kTimeWait);
  run(200 * sim::kMillisecond);  // TIME_WAIT expires
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(client.connection_count(), 0u);
  EXPECT_EQ(server.connection_count(), 0u);
}

TEST_F(TcpPair, CloseFlushesPendingData) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  const auto data = pattern(50000, 8);
  std::size_t off = c->send(data);
  c->close();  // FIN must wait for the remaining bytes
  std::vector<std::uint8_t> sink;
  for (int i = 0; i < 2000 && sink.size() < data.size(); ++i) {
    off += c->send(std::span<const std::uint8_t>(data).subspan(off));
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = s->recv(buf)) > 0) sink.insert(sink.end(), buf, buf + n);
    run(sim::kMillisecond);
  }
  // close() forbids further sends, so only the first chunk arrives — but
  // everything accepted before close must arrive, in order, before EOF.
  EXPECT_GE(sink.size(), std::min<std::size_t>(data.size(), cfg().send_buf));
  EXPECT_TRUE(std::equal(sink.begin(), sink.end(), data.begin()));
  run(sim::kSecond);
  EXPECT_TRUE(s->eof());
}

TEST_F(TcpPair, SimultaneousCloseReachesClosed) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  c->close();
  s->close();  // both FINs cross on the wire
  run(sim::kSecond);
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(s->state(), TcpState::kClosed);
}

TEST_F(TcpPair, AbortSendsRstPeerSeesReset) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  TcpCloseReason reason{};
  TcpSocket::Callbacks cb;
  cb.on_closed = [&](TcpCloseReason r) { reason = r; };
  s->set_callbacks(std::move(cb));
  c->abort();
  run(100 * sim::kMillisecond);
  EXPECT_EQ(s->state(), TcpState::kClosed);
  EXPECT_EQ(reason, TcpCloseReason::kReset);
}

TEST_F(TcpPair, CrashedStackAnswersStragglersWithRst) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  ASSERT_EQ(s->state(), TcpState::kEstablished);

  server.destroy_all_state();  // the crash: silent
  EXPECT_EQ(server.connection_count(), 0u);

  TcpCloseReason reason{};
  TcpSocket::Callbacks cb;
  cb.on_closed = [&](TcpCloseReason r) { reason = r; };
  c->set_callbacks(std::move(cb));
  c->send(pattern(100));
  run(sim::kSecond);
  EXPECT_EQ(c->state(), TcpState::kClosed);
  EXPECT_EQ(reason, TcpCloseReason::kReset);
}

TEST_F(TcpPair, TimeWaitReleasesBufferMemory) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  c->send(pattern(1000));
  run(100 * sim::kMillisecond);
  std::uint8_t buf[2048];
  s->recv(buf);
  c->close();
  run(50 * sim::kMillisecond);
  s->close();
  run(20 * sim::kMillisecond);
  ASSERT_EQ(c->state(), TcpState::kTimeWait);
  // No data may be buffered in TIME_WAIT.
  EXPECT_EQ(c->readable(), 0u);
  EXPECT_EQ(c->inflight(), 0u);
}

// ---------------------------------------------------------------------------
// Sequence-number wraparound
// ---------------------------------------------------------------------------

TEST_F(TcpPair, TransferAcrossSeqWrap) {
  client_env.set_iss(0xffffff00u);  // ISS 256 bytes before the wrap
  server_env.set_iss(0xfffffe00u);
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  ASSERT_TRUE(c);
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  auto s = l->accept();
  const auto data = pattern(10000, 11);
  std::vector<std::uint8_t> sink;
  transfer(*this, c, s, data, sink);
  EXPECT_EQ(sink, data);
}

// ---------------------------------------------------------------------------
// Delayed ACK
// ---------------------------------------------------------------------------

TEST_F(TcpPair, DelayedAckReducesPureAcks) {
  // Immediate-ack config (fixture default) vs delayed-ack config.
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  const auto data = pattern(100000, 1);
  std::vector<std::uint8_t> sink;
  transfer(*this, c, s, data, sink);
  const std::uint64_t immediate_acks = server.stats().pure_acks_out;

  // Fresh wiring with delayed acks.
  sim::Simulator sim2;
  WireEnv ce(sim2, 1), se(sim2, 2);
  TcpConfig dcfg = cfg();
  dcfg.delayed_ack = 40 * sim::kMillisecond;
  TcpStack client2(ce, kClientIp, cfg());
  TcpStack dserver(se, kServerIp, dcfg);
  ce.set_peer(&dserver);
  se.set_peer(&client2);
  dserver.listen(80);
  auto c2 = client2.connect(SockAddr{kServerIp, 80});
  sim2.run_until(200 * sim::kMillisecond);
  auto s2 = dserver.listener(80)->accept();
  ASSERT_TRUE(s2);
  std::vector<std::uint8_t> sink2;
  transfer_on(sim2, c2, s2, data, sink2);
  ASSERT_EQ(sink2, data);
  EXPECT_LT(dserver.stats().pure_acks_out, immediate_acks)
      << "acking every 2nd segment must emit fewer pure ACKs";
}

// ---------------------------------------------------------------------------
// RTT estimation
// ---------------------------------------------------------------------------

TEST_F(TcpPair, SrttTracksWireLatency) {
  TcpListener* l = nullptr;
  auto c = connect_and_accept(&l);
  auto s = l->accept();
  const auto data = pattern(200000, 2);
  std::vector<std::uint8_t> sink;
  transfer(*this, c, s, data, sink);
  // One-way latency is 10us -> RTT 20us (plus ack scheduling).
  EXPECT_GT(c->srtt(), 15 * sim::kMicrosecond);
  EXPECT_LT(c->srtt(), 2 * sim::kMillisecond);
}

}  // namespace
}  // namespace neat::net
