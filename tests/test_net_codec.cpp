// Unit and property tests for the wire codecs: checksum, Ethernet, ARP,
// IPv4 (incl. fragmentation/reassembly), UDP, ICMP, packet filter.
#include <gtest/gtest.h>

#include <vector>

#include "net/arp.hpp"
#include "net/checksum.hpp"
#include "net/ethernet.hpp"
#include "net/filter.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/udp.hpp"
#include "net/wire.hpp"
#include "sim/random.hpp"

namespace neat::net {
namespace {

const Ipv4Addr kA = Ipv4Addr::of(10, 0, 0, 1);
const Ipv4Addr kB = Ipv4Addr::of(10, 0, 0, 2);

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                               0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, VerifiesToZeroWithChecksumInPlace) {
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5,
                               0xf6, 0xf7, 0x22, 0x0d};
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, OddLengthHandled) {
  const std::uint8_t data[] = {0xab, 0xcd, 0xef};
  ChecksumAccumulator one;
  one.add(data);
  // Equivalent to padding with a zero byte.
  const std::uint8_t padded[] = {0xab, 0xcd, 0xef, 0x00};
  EXPECT_EQ(one.finish(), internet_checksum(padded));
}

class ChecksumChunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChecksumChunking, IncrementalEqualsOneShot) {
  sim::Rng rng(GetParam());
  std::vector<std::uint8_t> data(1 + rng.below(500));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint16_t oneshot = internet_checksum(data);

  ChecksumAccumulator acc;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(33), data.size() - off);
    acc.add(std::span<const std::uint8_t>(data).subspan(off, n));
    off += n;
  }
  EXPECT_EQ(acc.finish(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumChunking,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(Checksum, DetectsSingleByteCorruption) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> seg(40 + rng.below(200));
    for (auto& b : seg) b = static_cast<std::uint8_t>(rng());
    // Zero the "checksum field", then fill it.
    seg[16] = seg[17] = 0;
    const std::uint16_t sum = transport_checksum(kA, kB, 6, seg);
    seg[16] = static_cast<std::uint8_t>(sum >> 8);
    seg[17] = static_cast<std::uint8_t>(sum);
    ASSERT_TRUE(verify_transport_checksum(kA, kB, 6, seg));
    // Flip one byte anywhere: verification must fail.
    const std::size_t i = rng.below(seg.size());
    seg[i] ^= 0xff;
    EXPECT_FALSE(verify_transport_checksum(kA, kB, 6, seg));
  }
}

namespace {
/// Independent byte-pair reference implementation (straight RFC 1071 §1):
/// the production word-wise bulk path is checked against this.
std::uint16_t reference_checksum(std::span<const std::uint8_t> d) {
  std::uint64_t s = 0;
  std::size_t i = 0;
  for (; i + 1 < d.size(); i += 2) {
    s += static_cast<std::uint32_t>(d[i]) << 8 | d[i + 1];
  }
  if (i < d.size()) s += static_cast<std::uint32_t>(d[i]) << 8;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}
}  // namespace

TEST(Checksum, WordwiseFoldCarryBoundary) {
  // Regression: the word-wise bulk path once folded its 64-bit partial sum
  // a fixed number of times; sums landing exactly on the 0xffff boundary
  // could leave an unfolded end-around carry that the 16-bit narrowing
  // silently dropped (~1/65536 of packets failed verification). Sweep a
  // saturated buffer's last word across the boundary region so every carry
  // pattern is exercised deterministically.
  std::vector<std::uint8_t> buf(64, 0xff);
  for (std::uint32_t k = 0; k < 512; ++k) {
    buf[62] = static_cast<std::uint8_t>(k >> 8);
    buf[63] = static_cast<std::uint8_t>(k);
    ASSERT_EQ(internet_checksum(buf), reference_checksum(buf))
        << "tail word " << k;
  }
  // And an all-saturated buffer at every length that enters the bulk path.
  for (std::size_t len = 8; len <= 80; ++len) {
    std::vector<std::uint8_t> ones(len, 0xff);
    ASSERT_EQ(internet_checksum(ones), reference_checksum(ones))
        << "length " << len;
  }
}

TEST(Checksum, WordwiseMatchesReferenceOnRandomBuffers) {
  sim::Rng rng(4242);
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::uint8_t> data(1 + rng.below(300));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    ASSERT_EQ(internet_checksum(data), reference_checksum(data));
  }
}

TEST(Checksum, TransportGoldenVectors) {
  // Hand-computed against an independent implementation: TCP with an
  // odd-length segment (exercises the pseudo-header + pad rule), UDP even.
  const std::uint8_t tcp_seg[] = {0x1f, 0x90, 0x00, 0x50,
                                  0xde, 0xad, 0xbe};
  EXPECT_EQ(transport_checksum(kA, kB, 6, tcp_seg), 0x2f61);
  const std::uint8_t udp_seg[] = {0x00, 0x35, 0x04, 0xd2, 0x00,
                                  0x0a, 0x00, 0x00, 0xca, 0xfe};
  EXPECT_EQ(transport_checksum(kA, kB, 17, udp_seg), 0x1bd2);
}

TEST(Checksum, TransportMatchesExplicitPseudoHeaderBytes) {
  // transport_checksum's add_u16/add_u32 fast paths must agree with
  // checksumming the literal pseudo-header byte layout (RFC 793 §3.1).
  sim::Rng rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> seg(1 + rng.below(120));
    for (auto& b : seg) b = static_cast<std::uint8_t>(rng());
    const std::uint8_t proto = trial % 2 ? 6 : 17;
    const auto oct = [](Ipv4Addr a, int i) {
      return static_cast<std::uint8_t>(a.value >> (24 - 8 * i));
    };
    std::vector<std::uint8_t> explicit_bytes = {
        oct(kA, 0), oct(kA, 1), oct(kA, 2), oct(kA, 3),
        oct(kB, 0), oct(kB, 1), oct(kB, 2), oct(kB, 3),
        0,          proto,
        static_cast<std::uint8_t>(seg.size() >> 8),
        static_cast<std::uint8_t>(seg.size())};
    explicit_bytes.insert(explicit_bytes.end(), seg.begin(), seg.end());
    ASSERT_EQ(transport_checksum(kA, kB, proto, seg),
              reference_checksum(explicit_bytes));
  }
}

TEST(Checksum, SingleBitCorruptionAlwaysDetected) {
  // Ones-complement arithmetic detects every single-bit error (a flip
  // changes the sum by ±2^k, never 0 mod 0xffff). Exhaustive over a
  // wire-realistic segment: every one of the 480 bit positions must fail
  // verification.
  std::vector<std::uint8_t> seg(60);
  sim::Rng rng(31337);
  for (auto& b : seg) b = static_cast<std::uint8_t>(rng());
  seg[16] = seg[17] = 0;
  const std::uint16_t sum = transport_checksum(kA, kB, 6, seg);
  seg[16] = static_cast<std::uint8_t>(sum >> 8);
  seg[17] = static_cast<std::uint8_t>(sum);
  ASSERT_TRUE(verify_transport_checksum(kA, kB, 6, seg));
  for (std::size_t byte = 0; byte < seg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      seg[byte] ^= static_cast<std::uint8_t>(1u << bit);
      ASSERT_FALSE(verify_transport_checksum(kA, kB, 6, seg))
          << "byte " << byte << " bit " << bit;
      seg[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  ASSERT_TRUE(verify_transport_checksum(kA, kB, 6, seg));
}

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

TEST(Addr, Formatting) {
  EXPECT_EQ(Ipv4Addr::of(192, 168, 1, 42).str(), "192.168.1.42");
  EXPECT_EQ(MacAddr::local(1).str(), "02:00:00:00:00:01");
  EXPECT_EQ((SockAddr{kA, 80}).str(), "10.0.0.1:80");
}

TEST(Addr, BroadcastDetection) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddr::local(3).is_broadcast());
}

TEST(Addr, FlowKeyHashSpreads) {
  FlowKeyHash h;
  std::size_t h1 = h(FlowKey{kA, 80, kB, 1000});
  std::size_t h2 = h(FlowKey{kA, 80, kB, 1001});
  std::size_t h3 = h(FlowKey{kB, 80, kA, 1000});
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
}

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

TEST(Ethernet, EncodeDecodeRoundtrip) {
  auto p = Packet::make(10);
  for (std::size_t i = 0; i < 10; ++i) p->bytes()[i] = std::uint8_t(i);
  EthernetHeader h;
  h.src = MacAddr::local(1);
  h.dst = MacAddr::local(2);
  h.type = EtherType::kIpv4;
  h.encode(*p);
  EXPECT_EQ(p->size(), 10 + EthernetHeader::kSize);

  auto d = EthernetHeader::decode(*p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->dst, h.dst);
  EXPECT_EQ(d->type, EtherType::kIpv4);
  EXPECT_EQ(p->size(), 10u);
  EXPECT_EQ(p->bytes()[3], 3);
}

TEST(Ethernet, RejectsRunts) {
  auto p = Packet::make(4);
  EXPECT_FALSE(EthernetHeader::decode(*p));
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

TEST(Ipv4, EncodeDecodeRoundtrip) {
  auto p = Packet::make(32);
  Ipv4Header h;
  h.src = kA;
  h.dst = kB;
  h.proto = IpProto::kTcp;
  h.ident = 4242;
  h.ttl = 61;
  h.encode(*p);

  auto d = Ipv4Header::decode(*p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->src, kA);
  EXPECT_EQ(d->dst, kB);
  EXPECT_EQ(d->proto, IpProto::kTcp);
  EXPECT_EQ(d->ident, 4242);
  EXPECT_EQ(d->ttl, 61);
  EXPECT_EQ(p->size(), 32u);
}

TEST(Ipv4, HeaderChecksumCorruptionRejected) {
  auto p = Packet::make(8);
  Ipv4Header h;
  h.src = kA;
  h.dst = kB;
  h.encode(*p);
  p->bytes()[12] ^= 0x40;  // corrupt a source-address byte
  EXPECT_FALSE(Ipv4Header::decode(*p));
}

TEST(Ipv4, TrimsLinkPadding) {
  auto p = Packet::make(8);
  Ipv4Header h;
  h.src = kA;
  h.dst = kB;
  h.encode(*p);
  // Simulate 18 bytes of Ethernet min-frame padding after the datagram.
  auto padded = Packet::make(p->size() + 18);
  auto bytes = p->bytes();
  std::copy(bytes.begin(), bytes.end(), padded->bytes().begin());
  auto d = Ipv4Header::decode(*padded);
  ASSERT_TRUE(d);
  EXPECT_EQ(padded->size(), 8u);
}

class FragmentationProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentationProperty, FragmentThenReassembleIsIdentity) {
  const std::size_t payload_size = GetParam();
  sim::Rng rng(payload_size);
  auto payload = Packet::make(payload_size);
  for (auto& b : payload->bytes()) b = static_cast<std::uint8_t>(rng());

  Ipv4Header h;
  h.src = kA;
  h.dst = kB;
  h.proto = IpProto::kUdp;
  h.ident = 99;
  auto frags = ipv4_fragment(h, *payload, kEthernetMtu);
  if (payload_size + Ipv4Header::kSize > kEthernetMtu) {
    EXPECT_GT(frags.size(), 1u);
  }

  // Deliver in reverse order to exercise out-of-order reassembly.
  Ipv4Reassembler reasm;
  std::optional<Ipv4Reassembler::Result> result;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
    auto hdr = Ipv4Header::decode(**it);
    ASSERT_TRUE(hdr);
    auto r = reasm.add(*hdr, *it);
    if (r) result = r;
  }
  ASSERT_TRUE(result);
  ASSERT_EQ(result->payload->size(), payload_size);
  EXPECT_TRUE(std::equal(payload->bytes().begin(), payload->bytes().end(),
                         result->payload->bytes().begin()));
  EXPECT_EQ(reasm.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentationProperty,
                         ::testing::Values(1, 100, 1479, 1480, 1481, 3000,
                                           8000, 20000, 65000));

TEST(Ipv4, InterleavedDatagramsReassembleIndependently) {
  Ipv4Reassembler reasm;
  auto make_frags = [](std::uint16_t ident, std::uint8_t fill) {
    auto p = Packet::make(4000);
    for (auto& b : p->bytes()) b = fill;
    Ipv4Header h;
    h.src = kA;
    h.dst = kB;
    h.proto = IpProto::kUdp;
    h.ident = ident;
    return ipv4_fragment(h, *p, kEthernetMtu);
  };
  auto f1 = make_frags(1, 0x11);
  auto f2 = make_frags(2, 0x22);
  int complete = 0;
  for (std::size_t i = 0; i < std::max(f1.size(), f2.size()); ++i) {
    for (auto* frags : {&f1, &f2}) {
      if (i >= frags->size()) continue;
      auto hdr = Ipv4Header::decode(*(*frags)[i]);
      ASSERT_TRUE(hdr);
      if (auto r = reasm.add(*hdr, (*frags)[i])) {
        ++complete;
        EXPECT_EQ(r->payload->size(), 4000u);
        EXPECT_EQ(r->payload->bytes()[0],
                  r->header.ident == 1 ? 0x11 : 0x22);
      }
    }
  }
  EXPECT_EQ(complete, 2);
}

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

TEST(Arp, MessageRoundtrip) {
  ArpMessage m;
  m.op = ArpMessage::Op::kRequest;
  m.sender_mac = MacAddr::local(1);
  m.sender_ip = kA;
  m.target_ip = kB;
  auto p = m.encode();
  auto d = ArpMessage::decode(*p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->op, ArpMessage::Op::kRequest);
  EXPECT_EQ(d->sender_mac, MacAddr::local(1));
  EXPECT_EQ(d->sender_ip, kA);
  EXPECT_EQ(d->target_ip, kB);
}

TEST(Arp, ResolverRequestReplyFlow) {
  std::vector<std::pair<ArpMessage, MacAddr>> a_tx, b_tx;
  ArpResolver a(MacAddr::local(1), kA,
                [&](const ArpMessage& m, MacAddr d) { a_tx.push_back({m, d}); });
  ArpResolver b(MacAddr::local(2), kB,
                [&](const ArpMessage& m, MacAddr d) { b_tx.push_back({m, d}); });

  std::optional<MacAddr> resolved;
  a.resolve(kB, [&](MacAddr m) { resolved = m; });
  ASSERT_EQ(a_tx.size(), 1u);  // broadcast request
  EXPECT_TRUE(a_tx[0].second.is_broadcast());
  EXPECT_FALSE(resolved);

  b.handle(a_tx[0].first);  // B answers and learns A
  ASSERT_EQ(b_tx.size(), 1u);
  EXPECT_EQ(b_tx[0].second, MacAddr::local(1));
  EXPECT_EQ(b.lookup(kA), MacAddr::local(1));

  a.handle(b_tx[0].first);  // A learns B; pending callback fires
  ASSERT_TRUE(resolved);
  EXPECT_EQ(*resolved, MacAddr::local(2));

  // Second resolve is served from cache, no new request.
  a.resolve(kB, [](MacAddr) {});
  EXPECT_EQ(a_tx.size(), 1u);
}

TEST(Arp, CoalescesConcurrentRequests) {
  int tx = 0;
  ArpResolver a(MacAddr::local(1), kA,
                [&](const ArpMessage&, MacAddr) { ++tx; });
  int cbs = 0;
  a.resolve(kB, [&](MacAddr) { ++cbs; });
  a.resolve(kB, [&](MacAddr) { ++cbs; });
  EXPECT_EQ(tx, 1);
  a.insert(kB, MacAddr::local(2));
  ArpMessage reply;
  reply.op = ArpMessage::Op::kReply;
  reply.sender_mac = MacAddr::local(2);
  reply.sender_ip = kB;
  a.handle(reply);
  EXPECT_EQ(cbs, 2);
}

// ---------------------------------------------------------------------------
// UDP / ICMP
// ---------------------------------------------------------------------------

TEST(Udp, EncodeDecodeRoundtrip) {
  auto p = Packet::make(5);
  for (std::size_t i = 0; i < 5; ++i) p->bytes()[i] = std::uint8_t(i + 1);
  UdpHeader h;
  h.src_port = 1234;
  h.dst_port = 53;
  h.encode(*p, kA, kB);
  auto d = UdpHeader::decode(*p, kA, kB);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->src_port, 1234);
  EXPECT_EQ(d->dst_port, 53);
  EXPECT_EQ(p->size(), 5u);
  EXPECT_EQ(p->bytes()[0], 1);
}

TEST(Udp, ChecksumCorruptionRejected) {
  auto p = Packet::make(5);
  UdpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  h.encode(*p, kA, kB);
  p->bytes()[UdpHeader::kSize + 2] ^= 0x5a;
  EXPECT_FALSE(UdpHeader::decode(*p, kA, kB));
}

TEST(Udp, AllZeroChecksumTransmittedAsFFFF) {
  // RFC 768: a computed checksum of zero is transmitted as all-ones
  // (0x0000 on the wire means "no checksum"). The payload below is crafted
  // so the pseudo-header sum folds to exactly 0xffff -> checksum 0.
  auto p = Packet::make(2);
  p->bytes()[0] = 0xeb;
  p->bytes()[1] = 0xd7;
  UdpHeader h;  // ports 0/0
  h.encode(*p, kA, kB);
  EXPECT_EQ(get_u16(p->bytes(), 6), 0xffff)
      << "zero checksum must be sent as 0xffff";
  EXPECT_TRUE(UdpHeader::decode(*p, kA, kB));
}

TEST(Udp, ZeroWireChecksumSkipsVerification) {
  // 0x0000 in the checksum field means the sender didn't checksum the
  // datagram; the receiver must accept it unverified.
  auto p = Packet::make(4);
  for (std::size_t i = 0; i < 4; ++i) p->bytes()[i] = std::uint8_t(i);
  UdpHeader h;
  h.src_port = 7;
  h.dst_port = 8;
  h.encode(*p, kA, kB);
  put_u16(p->bytes(), 6, 0);  // sender opted out of checksumming
  EXPECT_TRUE(UdpHeader::decode(*p, kA, kB));
}

TEST(Udp, MuxRoutesByPort) {
  UdpMux mux;
  int hits = 0;
  EXPECT_TRUE(mux.bind(53, [&](UdpMux::Datagram d) {
    ++hits;
    EXPECT_EQ(d.from.port, 9999);
  }));
  EXPECT_FALSE(mux.bind(53, [](UdpMux::Datagram) {}));  // port taken
  UdpHeader h;
  h.src_port = 9999;
  h.dst_port = 53;
  EXPECT_TRUE(mux.deliver(h, kB, kA, Packet::make(0)));
  h.dst_port = 54;
  EXPECT_FALSE(mux.deliver(h, kB, kA, Packet::make(0)));
  EXPECT_EQ(hits, 1);
  mux.unbind(53);
  EXPECT_FALSE(mux.is_bound(53));
}

TEST(Icmp, EchoRoundtrip) {
  auto p = Packet::make(16);
  IcmpMessage m;
  m.type = IcmpMessage::Type::kEchoRequest;
  m.ident = 7;
  m.seq = 3;
  m.encode(*p);
  auto d = IcmpMessage::decode(*p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->type, IcmpMessage::Type::kEchoRequest);
  EXPECT_EQ(d->ident, 7);
  EXPECT_EQ(d->seq, 3);
}

// ---------------------------------------------------------------------------
// Packet filter
// ---------------------------------------------------------------------------

TEST(Filter, FirstMatchWinsDefaultAccept) {
  PacketFilter pf;
  EXPECT_TRUE(pf.accept(IpProto::kTcp, kA, kB, 1, 80));  // no rules

  FilterRule drop_tcp80;
  drop_tcp80.action = FilterRule::Action::kDrop;
  drop_tcp80.proto = IpProto::kTcp;
  drop_tcp80.dst_port = 80;
  pf.add_rule(drop_tcp80);

  FilterRule accept_all;
  accept_all.action = FilterRule::Action::kAccept;
  pf.add_rule(accept_all);

  EXPECT_FALSE(pf.accept(IpProto::kTcp, kA, kB, 1, 80));
  EXPECT_TRUE(pf.accept(IpProto::kTcp, kA, kB, 1, 81));
  EXPECT_TRUE(pf.accept(IpProto::kUdp, kA, kB, 1, 80));
  EXPECT_EQ(pf.rules()[0].hits, 1u);
  EXPECT_EQ(pf.rules()[1].hits, 2u);
}

TEST(Filter, WildcardsMatchAnything) {
  PacketFilter pf;
  FilterRule drop_from_a;
  drop_from_a.action = FilterRule::Action::kDrop;
  drop_from_a.src_ip = kA;
  pf.add_rule(drop_from_a);
  EXPECT_FALSE(pf.accept(IpProto::kTcp, kA, kB, 5, 6));
  EXPECT_FALSE(pf.accept(IpProto::kUdp, kA, kB, 7, 8));
  EXPECT_TRUE(pf.accept(IpProto::kTcp, kB, kA, 5, 6));
}

// ---------------------------------------------------------------------------
// Packet buffer
// ---------------------------------------------------------------------------

TEST(PacketBuffer, PushPullSymmetry) {
  auto p = Packet::make(4);
  p->bytes()[0] = 0xaa;
  auto hdr = p->push(3);
  hdr[0] = 1;
  hdr[1] = 2;
  hdr[2] = 3;
  EXPECT_EQ(p->size(), 7u);
  auto pulled = p->pull(3);
  EXPECT_EQ(pulled[2], 3);
  EXPECT_EQ(p->size(), 4u);
  EXPECT_EQ(p->bytes()[0], 0xaa);
}

TEST(PacketBuffer, CloneIsDeep) {
  auto p = Packet::of(std::vector<std::uint8_t>{1, 2, 3});
  auto c = p->clone();
  c->bytes()[0] = 9;
  EXPECT_EQ(p->bytes()[0], 1);
}

}  // namespace
}  // namespace neat::net
