// Adversary-defense tests: SYN cookies (pure-function golden vectors and
// full-stack handshakes), deferred filter install, slowloris header
// deadlines, live connection migration, and the scale-down drain guard.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "harness/testbed.hpp"
#include "neat/host.hpp"
#include "net/tcp.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace neat {
namespace {

using net::FlowKey;
using net::Ipv4Addr;
using net::SockAddr;
using net::TcpConfig;
using net::TcpHeader;
using net::TcpStack;

const Ipv4Addr kClientIp = Ipv4Addr::of(10, 0, 0, 2);
const Ipv4Addr kServerIp = Ipv4Addr::of(10, 0, 0, 1);

FlowKey test_flow() {
  FlowKey f;
  f.local_ip = kServerIp;
  f.local_port = 80;
  f.remote_ip = kClientIp;
  f.remote_port = 40000;
  return f;
}

// ---------------------------------------------------------------------------
// SYN cookie pure functions
// ---------------------------------------------------------------------------

TEST(SynCookie, MssIndexRoundsDown) {
  EXPECT_EQ(net::syn_cookie_mss_index(536), 0u);
  EXPECT_EQ(net::syn_cookie_mss_index(100), 0u);  // below table: clamp
  EXPECT_EQ(net::syn_cookie_mss_index(1460), 3u);
  EXPECT_EQ(net::syn_cookie_mss_index(1500), 3u);
  EXPECT_EQ(net::syn_cookie_mss_index(9000), 7u);
  EXPECT_EQ(net::syn_cookie_mss_index(65535), 7u);
}

TEST(SynCookie, GoldenVectors) {
  // Pinned outputs: a change here is a wire-format break — every cookie
  // minted before an upgrade would be rejected after it.
  const FlowKey f = test_flow();
  EXPECT_EQ(net::syn_cookie_make(0x1122334455667788ULL, f, 0xdeadbeef, 7, 3),
            0xeee2880bu);
  EXPECT_EQ(net::syn_cookie_make(0x1122334455667788ULL, f, 0xdeadbeef, 8, 3),
            0x0da4cfb7u);
  EXPECT_EQ(net::syn_cookie_make(0, f, 0, 0, 0), 0x021f823cu);
}

TEST(SynCookie, RoundTripsThroughCheck) {
  const FlowKey f = test_flow();
  const std::uint64_t secret = 0xabcdef0123456789ULL;
  for (unsigned idx = 0; idx < net::kSynCookieMss.size(); ++idx) {
    const std::uint32_t c = net::syn_cookie_make(secret, f, 1234567, 41, idx);
    const auto mss = net::syn_cookie_check(secret, f, 1234567, c, 41);
    ASSERT_TRUE(mss.has_value()) << "idx " << idx;
    EXPECT_EQ(*mss, net::kSynCookieMss[idx]);
  }
}

TEST(SynCookie, PreviousRotationAcceptedOlderRejected) {
  const FlowKey f = test_flow();
  const std::uint64_t secret = 99;
  const std::uint32_t c = net::syn_cookie_make(secret, f, 55, 100, 2);
  EXPECT_TRUE(net::syn_cookie_check(secret, f, 55, c, 100).has_value());
  EXPECT_TRUE(net::syn_cookie_check(secret, f, 55, c, 101).has_value());
  EXPECT_FALSE(net::syn_cookie_check(secret, f, 55, c, 102).has_value());
  EXPECT_FALSE(net::syn_cookie_check(secret, f, 55, c, 99).has_value())
      << "a cookie from the future must not validate";
}

TEST(SynCookie, AnyCorruptionRejects) {
  const FlowKey f = test_flow();
  const std::uint64_t secret = 7;
  const std::uint32_t c = net::syn_cookie_make(secret, f, 42, 10, 3);
  for (int bit = 0; bit < 32; ++bit) {
    EXPECT_FALSE(
        net::syn_cookie_check(secret, f, 42, c ^ (1u << bit), 10).has_value())
        << "bit " << bit;
  }
  EXPECT_FALSE(net::syn_cookie_check(secret + 1, f, 42, c, 10).has_value());
  EXPECT_FALSE(net::syn_cookie_check(secret, f, 43, c, 10).has_value());
  FlowKey other = f;
  other.remote_port ^= 1;
  EXPECT_FALSE(net::syn_cookie_check(secret, other, 42, c, 10).has_value());
}

// ---------------------------------------------------------------------------
// SYN cookies at the stack level
// ---------------------------------------------------------------------------

/// Wire that can hold back or tamper with the client's final handshake ACK
/// (the segment carrying the echoed cookie).
class CookieWire final : public net::TcpEnv {
 public:
  CookieWire(sim::Simulator& sim, std::uint64_t seed)
      : sim_(sim), rng_(seed) {}

  void set_peer(TcpStack* peer) { peer_ = peer; }
  /// Deliver the first non-SYN segment this late (0 = no delay).
  void set_ack_delay(sim::SimTime d) { ack_delay_ = d; }
  /// Corrupt the ack field of the first non-SYN segment.
  void set_ack_corrupt(bool v) { ack_corrupt_ = v; }

  sim::SimTime now() override { return sim_.now(); }
  sim::EventHandle start_timer(sim::SimTime delay,
                               std::function<void()> fn) override {
    return sim_.schedule(delay, std::move(fn));
  }
  std::uint32_t random_u32() override {
    return static_cast<std::uint32_t>(rng_());
  }

  void tx(net::PacketPtr segment, Ipv4Addr src, Ipv4Addr dst) override {
    sim::SimTime delay = 10 * sim::kMicrosecond;
    net::PacketPtr peek = segment->clone();
    const auto h = TcpHeader::decode(*peek, src, dst);
    if (h && !h->syn && (ack_delay_ > 0 || ack_corrupt_)) {
      if (ack_corrupt_) {
        ack_corrupt_ = false;
        TcpHeader bad = *h;
        bad.ack += 1000;  // a cookie the server never minted
        bad.encode(*peek, src, dst);  // re-prepend over the stripped header
        segment = std::move(peek);
      }
      delay += ack_delay_;
      ack_delay_ = 0;
    }
    sim_.schedule(delay, [this, segment, src, dst] {
      if (peer_ != nullptr) peer_->rx(src, dst, segment);
    });
  }

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  TcpStack* peer_{nullptr};
  sim::SimTime ack_delay_{0};
  bool ack_corrupt_{false};
};

struct CookiePair : public ::testing::Test {
  static TcpConfig cfg(bool cookies) {
    TcpConfig c;
    c.rto_min = 20 * sim::kMillisecond;
    c.rto_initial = 50 * sim::kMillisecond;
    c.delayed_ack = 0;
    c.tso = false;
    c.syn_cookies = cookies;
    return c;
  }

  CookiePair()
      : cwire(sim, 1),
        swire(sim, 2),
        client(cwire, kClientIp, cfg(false)),
        server(swire, kServerIp, cfg(true)) {
    cwire.set_peer(&server);
    swire.set_peer(&client);
  }

  sim::Simulator sim;
  CookieWire cwire;
  CookieWire swire;
  TcpStack client;
  TcpStack server;
};

TEST_F(CookiePair, HandshakeCompletesStatelesslyUntilAck) {
  net::TcpSocketPtr accepted;
  net::TcpListener* l = server.listen(80);
  l->set_accept_ready([&] { accepted = l->accept(); });
  auto sock = client.connect(SockAddr{kServerIp, 80});
  sim.run_for(100 * sim::kMillisecond);

  ASSERT_TRUE(accepted != nullptr);
  EXPECT_EQ(server.stats().syn_cookies_sent, 1u);
  EXPECT_EQ(server.stats().syn_cookies_accepted, 1u);
  EXPECT_EQ(server.stats().syn_cookies_rejected, 0u);

  // The connection is fully usable in both directions.
  const std::vector<std::uint8_t> msg{'h', 'i'};
  sock->send(msg);
  sim.run_for(50 * sim::kMillisecond);
  std::uint8_t buf[16];
  EXPECT_EQ(accepted->recv(buf), msg.size());
}

TEST_F(CookiePair, StaleCookieAckRejectedAfterRotations) {
  // Hold the client's final ACK beyond two secret rotations: the echoed
  // cookie has expired, so the server must refuse to resurrect it — no
  // TCB may be allocated from an unverifiable ACK.
  cwire.set_ack_delay(3 * server.config().syn_cookie_rotate);
  net::TcpSocketPtr accepted;
  net::TcpListener* l = server.listen(80);
  l->set_accept_ready([&] { accepted = l->accept(); });
  auto sock = client.connect(SockAddr{kServerIp, 80});
  sim.run_for(2 * sim::kSecond);

  EXPECT_TRUE(accepted == nullptr);
  EXPECT_EQ(server.connection_count(), 0u);
  EXPECT_GE(server.stats().syn_cookies_rejected, 1u);
  EXPECT_EQ(server.stats().syn_cookies_accepted, 0u);
}

TEST_F(CookiePair, CorruptedCookieAckAllocatesNothing) {
  cwire.set_ack_corrupt(true);
  net::TcpSocketPtr accepted;
  net::TcpListener* l = server.listen(80);
  l->set_accept_ready([&] { accepted = l->accept(); });
  auto sock = client.connect(SockAddr{kServerIp, 80});
  sim.run_for(200 * sim::kMillisecond);

  EXPECT_TRUE(accepted == nullptr);
  EXPECT_EQ(server.connection_count(), 0u) << "forged ACK must not get a TCB";
  EXPECT_GE(server.stats().syn_cookies_rejected, 1u);
  EXPECT_EQ(server.stats().syn_cookies_accepted, 0u);
}

// ---------------------------------------------------------------------------
// Host-level defenses (testbed)
// ---------------------------------------------------------------------------

struct DefenseFixture : public ::testing::Test {
  void build(harness::NeatServerOptions so, int requests_per_conn = 1000) {
    client.reset();
    server.reset();
    tb.reset();
    harness::Testbed::Config cfg;
    cfg.seed = 606;
    tb = std::make_unique<harness::Testbed>(cfg);
    server = std::make_unique<harness::ServerRig>(
        harness::build_neat_server(*tb, so));
    harness::ClientOptions co;
    co.generators = so.webs;
    co.concurrency_per_gen = 16;
    co.requests_per_conn = requests_per_conn;
    client = std::make_unique<harness::ClientRig>(
        harness::build_client(*tb, co, so.webs));
    harness::prepopulate_arp(*server, *client);
    tb->sim.run_for(100 * sim::kMillisecond);
  }

  std::uint64_t client_errors() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().error_conns;
    return n;
  }

  std::unique_ptr<harness::Testbed> tb;
  std::unique_ptr<harness::ServerRig> server;
  std::unique_ptr<harness::ClientRig> client;
};

TEST_F(DefenseFixture, CensusGaugesAreKeyedPerHost) {
  // Regression: both hosts used to write the same "neat.replicas_*" gauge
  // names, so whichever host ticked last won and the census lied.
  harness::NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  build(so);

  const auto* srv = tb->sim.metrics().find_gauge("neat.host0.replicas_active");
  const auto* cli = tb->sim.metrics().find_gauge("neat.host1.replicas_active");
  ASSERT_NE(srv, nullptr);
  ASSERT_NE(cli, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(srv->value()),
            server->neat->replica_count());
  EXPECT_EQ(static_cast<std::size_t>(cli->value()),
            client->host->replica_count());
  EXPECT_NE(srv->value(), cli->value())
      << "distinct hosts must not share one census gauge";
  // The unscoped legacy names mirror host 0 (the system under test).
  const auto* legacy = tb->sim.metrics().find_gauge("neat.replicas_active");
  ASSERT_NE(legacy, nullptr);
  EXPECT_EQ(legacy->value(), srv->value());
}

TEST_F(DefenseFixture, ScaleDownWithoutTrackingFiltersDies) {
  // Lazy termination classifies straggler packets to the draining replica
  // by exact-match filter; without tracking filters those packets would
  // RSS-rehash mid-connection. This must be a hard error, not a silent
  // misconfiguration.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  harness::NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = false;
  build(so);
  ASSERT_GT(server->neat->replica(1).tcp().active_connection_count(), 0u);
  EXPECT_DEATH(server->neat->begin_scale_down(server->neat->replica(1)),
               "lazy termination requires tracking filters");
}

TEST_F(DefenseFixture, MigrationMovesConnectionsWithoutClientErrors) {
  harness::NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = true;
  build(so);

  auto& rep0 = server->neat->replica(0);
  auto& rep1 = server->neat->replica(1);
  const auto total_before = rep0.tcp().active_connection_count() +
                            rep1.tcp().active_connection_count();
  ASSERT_GT(total_before, 0u);
  const auto errors_before = client_errors();

  std::size_t moved = 0;
  server->neat->migrate_connections(rep0, rep1,
                                    [&moved](std::size_t n) { moved += n; });
  tb->sim.run_for(50 * sim::kMillisecond);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(rep0.tcp().active_connection_count(), 0u);
  EXPECT_GE(rep1.tcp().active_connection_count(), total_before);

  // Traffic keeps flowing through the adopted connections.
  tb->sim.run_for(200 * sim::kMillisecond);
  EXPECT_EQ(client_errors(), errors_before);
  const auto* h =
      tb->sim.metrics().find_histogram("neat.migration_blackout_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
}

TEST_F(DefenseFixture, MigrationChurnLeaksNoFiltersOrSockets) {
  // Ping-pong every connection between replicas, then let the workload
  // finish and drain: every tracking filter and TCB must be gone. Run
  // under ASan (scripts/check.sh) this also proves no socket objects leak.
  harness::NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = true;
  build(so, /*requests_per_conn=*/40);
  // Deliberately BELOW TIME_WAIT (500ms): close-handshake stragglers then
  // arrive after the filter retired and used to re-fault a dead flow's
  // filter back in — a permanent leak. The NIC's dead-flow memory now
  // suppresses those refaults, so even a short linger must leak nothing.
  tb->server_nic.set_fin_retire_linger(150 * sim::kMillisecond);

  const auto errors_before = client_errors();
  for (int i = 0; i < 8; ++i) {
    server->neat->migrate_connections(
        server->neat->replica(static_cast<std::size_t>(i % 2)),
        server->neat->replica(static_cast<std::size_t>((i + 1) % 2)));
    tb->sim.run_for(30 * sim::kMillisecond);
  }
  EXPECT_EQ(client_errors(), errors_before) << "churn must be loss-free";

  // Stop opening new connections, let in-flight ones complete and retire.
  for (auto& g : client->gens) g->config().max_conns = 1;
  tb->sim.run_for(4 * sim::kSecond);

  EXPECT_EQ(server->neat->replica(0).tcp().active_connection_count(), 0u);
  EXPECT_EQ(server->neat->replica(1).tcp().active_connection_count(), 0u);
  EXPECT_EQ(tb->server_nic.flow_filter_count(), 0u)
      << "every tracking filter must be retired after the churn";
}

}  // namespace
}  // namespace neat
