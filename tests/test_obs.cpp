// Observability-layer tests: histogram bucket layout and percentile
// behaviour, metrics registry handle stability, the flow tracer's bounded
// ring, and the chrome://tracing JSON export — including an end-to-end run
// checking that the stack's hot paths actually populate the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/random.hpp"

namespace neat::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram: bucket layout
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int i = Histogram::index(v);
    EXPECT_EQ(Histogram::bucket_lower(i), v);
    EXPECT_EQ(Histogram::bucket_upper(i), v);
  }
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  // Every bucket's lower and upper edge must map back to that bucket, and
  // the buckets must tile the value space contiguously.
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t hi = Histogram::bucket_upper(i);
    ASSERT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(Histogram::index(lo), i);
    EXPECT_EQ(Histogram::index(hi), i);
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_lower(i + 1), hi + 1)
          << "gap/overlap after bucket " << i;
    } else {
      EXPECT_EQ(hi, ~std::uint64_t{0});  // final bucket reaches the top
    }
  }
}

TEST(Histogram, ValuesLandInsideTheirBucket) {
  // Log sweep across the whole 64-bit range plus the edges around every
  // power of two.
  std::vector<std::uint64_t> probes;
  for (int b = 0; b < 64; ++b) {
    const std::uint64_t p = std::uint64_t{1} << b;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  probes.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : probes) {
    const int i = Histogram::index(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lower(i), v);
    EXPECT_GE(Histogram::bucket_upper(i), v);
  }
}

TEST(Histogram, RelativeErrorBoundedBySixteenth) {
  // The log-linear contract: a bucket's width never exceeds 1/16 of its
  // lower edge, so any reported quantile is within ~6% of the true value.
  for (int i = Histogram::kSubBuckets; i < Histogram::kBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t width = Histogram::bucket_upper(i) - lo;
    EXPECT_LE(width, lo / 16) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------------
// Histogram: recording and quantiles
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, MeanMinMaxAreExact) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(90);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 90u);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(Histogram, QuantilesAreMonotonicAndClampedToMax) {
  sim::Rng rng(99);
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed: exercise many bucket groups.
    h.record(1 + rng.below(std::uint64_t{1} << (1 + rng.below(40))));
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.001) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotonic at q=" << q;
    prev = v;
  }
  EXPECT_EQ(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(0.0), h.min() == 0 ? 0 : 0u);
}

TEST(Histogram, QuantileErrorStaysWithinBucketBound) {
  // Uniform distribution over [0, 100000): the q-th quantile must come out
  // within one bucket width (≤ 1/16 relative error) of the true value.
  Histogram h;
  for (std::uint64_t v = 0; v < 100000; ++v) h.record(v);
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    const auto truth = static_cast<double>(100000 - 1) * q;
    const auto got = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(got, truth, truth / 16.0 + 1.0) << "q=" << q;
  }
}

TEST(Histogram, MergeEqualsRecordingIntoOne) {
  sim::Rng rng(7);
  Histogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(std::uint64_t{1} << 30);
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (const double q : {0.1, 0.5, 0.95, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, HandlesAreStableAndNamed) {
  Registry reg;
  Counter& c = reg.counter("a.count");
  c.inc(3);
  // Same name → same object; pointer stability is what lets instrumented
  // code cache the handle.
  EXPECT_EQ(&reg.counter("a.count"), &c);
  EXPECT_EQ(reg.find_counter("a.count")->value(), 3u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  Histogram& h = reg.histogram("a.lat");
  h.record(42);
  EXPECT_EQ(&reg.histogram("a.lat"), &h);
  EXPECT_EQ(reg.find_histogram("a.lat")->count(), 1u);

  Gauge& g = reg.gauge("a.hwm");
  g.set_max(5.0);
  g.set_max(2.0);  // high-water keeps the max
  EXPECT_EQ(reg.find_gauge("a.hwm")->value(), 5.0);
}

// ---------------------------------------------------------------------------
// FlowTracer: bounded ring
// ---------------------------------------------------------------------------

TEST(FlowTracer, RingOverflowKeepsNewestInOrder) {
  FlowTracer t(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.emit({i * 100, 0, "test", "ev", 0, static_cast<int>(i), ""});
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.emitted(), 20u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].ts_ns, (12 + i) * 100);  // oldest 12 were overwritten
    if (i > 0) EXPECT_GE(evs[i].ts_ns, evs[i - 1].ts_ns);
  }
}

TEST(FlowTracer, DisabledTracerRecordsNothing) {
  FlowTracer t(8);
  t.set_enabled(false);
  t.emit({1, 0, "test", "ev", 0, 0, ""});
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.emitted(), 0u);
}

// ---------------------------------------------------------------------------
// chrome://tracing JSON export
// ---------------------------------------------------------------------------

/// Minimal recursive-descent JSON parser — enough to prove the trace export
/// is well-formed without pulling in a dependency. Returns false on any
/// syntax error.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string_view want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : 0; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

/// Pull every `"ts":<number>` out of a chrome trace JSON string.
std::vector<double> extract_timestamps(const std::string& json) {
  std::vector<double> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

TEST(FlowTracer, ChromeJsonIsParseable) {
  FlowTracer t(16);
  t.emit({1500, 0, "neat", "crash", 0, 2, "\"component\":\"tcp\""});
  t.emit({2750, 1250, "http", "request_served", 0, 7, ""});
  t.emit({4000, 0, "nic", "syn_received", 0, 0, "\"queue\":3"});
  const std::string json = t.chrome_json();
  EXPECT_TRUE(JsonChecker(json).parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"args\":{\"component\":\"tcp\"}"), std::string::npos);
  // µs timestamps at ns resolution: 1500 ns → 1.500 µs.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.250"), std::string::npos);
}

TEST(FlowTracer, ChromeJsonTimestampsAreOrdered) {
  FlowTracer t(32);
  for (std::uint64_t i = 0; i < 64; ++i) {  // wraps: oldest half dropped
    t.emit({i * 1000, 0, "test", "ev", 0, 0, ""});
  }
  const std::string json = t.chrome_json();
  ASSERT_TRUE(JsonChecker(json).parse());
  const auto ts = extract_timestamps(json);
  ASSERT_EQ(ts.size(), 32u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_DOUBLE_EQ(ts.front(), 32.0);  // event 32 is the oldest survivor
}

TEST(FlowTracer, EmptyTracerStillEmitsValidJson) {
  FlowTracer t(4);
  EXPECT_TRUE(JsonChecker(t.chrome_json()).parse());
}

// ---------------------------------------------------------------------------
// End-to-end: the stack populates the registry and tracer
// ---------------------------------------------------------------------------

TEST(ObsEndToEnd, WorkloadAndCrashPopulateMetricsAndTrace) {
  using namespace neat::harness;
  Testbed::Config cfg;
  cfg.seed = 31337;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 2;
  co.concurrency_per_gen = 8;
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  tb.sim.run_for(100 * sim::kMillisecond);
  server.neat->inject_crash(server.neat->replica(0), Component::kWhole);
  tb.sim.run_for(300 * sim::kMillisecond);

  const obs::Registry& reg = tb.sim.metrics();
  for (const char* name :
       {"http.request_latency_ns", "loadgen.request_latency_ns",
        "ipc.queue_delay_ns", "tcp.rtt_ns",
        "recovery.crash_to_detect_ns", "recovery.crash_to_recovered_ns",
        "recovery.crash_to_first_service_ns"}) {
    const obs::Histogram* h = reg.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count(), 0u) << name;
  }
  ASSERT_NE(reg.find_counter("tcp.handshakes"), nullptr);
  EXPECT_GT(reg.find_counter("tcp.handshakes")->value(), 0u);
  const auto* rss = reg.find_counter("nic.steer_rss");
  const auto* filt = reg.find_counter("nic.steer_filter_hit");
  ASSERT_TRUE(rss != nullptr || filt != nullptr);

  // The trace must contain the full recovery arc, time-ordered, and the
  // export must be valid JSON.
  const auto evs = tb.sim.tracer().events();
  ASSERT_FALSE(evs.empty());
  auto count_of = [&](const std::string& name) {
    return std::count_if(evs.begin(), evs.end(), [&](const obs::TraceEvent& e) {
      return name == e.name;
    });
  };
  EXPECT_GE(count_of("syn_received"), 1);
  EXPECT_GE(count_of("handshake_done"), 1);
  EXPECT_GE(count_of("request_served"), 1);
  EXPECT_EQ(count_of("crash"), 1);
  EXPECT_EQ(count_of("restart"), 1);
  EXPECT_EQ(count_of("first_service"), 1);
  const std::string json = tb.sim.tracer().chrome_json();
  EXPECT_TRUE(JsonChecker(json).parse());
  const auto ts = extract_timestamps(json);
  ASSERT_EQ(ts.size(), evs.size());
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()))
      << "chrome export must be time-ordered";
}

}  // namespace
}  // namespace neat::obs
