// Socket-library tests: the BSD-style SocketApi over the full NEaT path —
// subsocket replication, accept spreading, connect steering, data
// integrity, close semantics, and failure notification.
#include <gtest/gtest.h>

#include <string>

#include "harness/testbed.hpp"
#include "socklib/socklib.hpp"

namespace neat::harness {
namespace {

using socklib::CloseReason;
using socklib::ConnCallbacks;
using socklib::Fd;
using socklib::kBadFd;

/// A small scriptable application process for driving the API by hand.
class ScriptApp : public sim::Process {
 public:
  ScriptApp(sim::Simulator& sim, std::string name)
      : sim::Process(sim, std::move(name)) {}
  std::unique_ptr<socklib::SockLib> lib;
};

struct SockLibFixture : public ::testing::Test {
  SockLibFixture() {
    Testbed::Config cfg;
    cfg.seed = 99;
    tb = std::make_unique<Testbed>(cfg);

    // Server side: NEaT host with 2 replicas plus a scripted server app.
    NeatHost::Config hc;
    server_host = std::make_unique<NeatHost>(tb->sim, tb->server_machine,
                                             tb->server_nic, hc);
    server_host->os_process().pin(tb->server_machine.thread(0));
    server_host->syscall().pin(tb->server_machine.thread(1));
    server_host->driver().pin(tb->server_machine.thread(2));
    server_host->add_replica({&tb->server_machine.thread(3)});
    server_host->add_replica({&tb->server_machine.thread(4)});
    server_app = std::make_unique<ScriptApp>(tb->sim, "srvapp");
    server_app->pin(tb->server_machine.thread(5));
    server_app->lib =
        std::make_unique<socklib::SockLib>(*server_app, *server_host);

    // Client side: NEaT host with 1 replica plus a scripted client app.
    NeatHost::Config cc;
    client_host = std::make_unique<NeatHost>(tb->sim, tb->client_machine,
                                             tb->client_nic, cc);
    client_host->os_process().pin(tb->client_machine.thread(0));
    client_host->syscall().pin(tb->client_machine.thread(1));
    client_host->driver().pin(tb->client_machine.thread(2));
    client_host->add_replica({&tb->client_machine.thread(3)});
    client_app = std::make_unique<ScriptApp>(tb->sim, "cliapp");
    client_app->pin(tb->client_machine.thread(4));
    client_app->lib =
        std::make_unique<socklib::SockLib>(*client_app, *client_host);

    // Static neighbors.
    for (std::size_t i = 0; i < server_host->replica_count(); ++i) {
      server_host->replica(i).ip_layer_ref().arp().insert(
          kClientIp, net::MacAddr::local(2));
    }
    client_host->replica(0).ip_layer_ref().arp().insert(
        kServerIp, net::MacAddr::local(1));
  }

  ~SockLibFixture() override {
    // Apps (and their SockLibs) must unregister before the hosts die.
    server_app.reset();
    client_app.reset();
  }

  void run(sim::SimTime t = 100 * sim::kMillisecond) { tb->sim.run_for(t); }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<NeatHost> server_host;
  std::unique_ptr<NeatHost> client_host;
  std::unique_ptr<ScriptApp> server_app;
  std::unique_ptr<ScriptApp> client_app;
};

TEST_F(SockLibFixture, ListenReplicatesSubsocketsOntoEveryReplica) {
  server_app->lib->listen(8080, 64, [] {});
  run();
  // Hidden subsockets exist in every replica (paper §3.3).
  EXPECT_NE(server_host->replica(0).tcp().listener(8080), nullptr);
  EXPECT_NE(server_host->replica(1).tcp().listener(8080), nullptr);
}

TEST_F(SockLibFixture, ConnectAcceptEchoRoundtrip) {
  int acceptable = 0;
  const Fd lfd = server_app->lib->listen(8080, 64,
                                         [&] { ++acceptable; });
  run();

  bool connected = false;
  std::string received_by_client;
  ConnCallbacks ccb;
  ccb.on_connected = [&](Fd) { connected = true; };
  ccb.on_readable = [&](Fd fd) {
    std::uint8_t buf[256];
    std::size_t n;
    while ((n = client_app->lib->recv(fd, buf)) > 0) {
      received_by_client.append(reinterpret_cast<char*>(buf), n);
    }
  };
  const Fd cfd = client_app->lib->connect(
      net::SockAddr{kServerIp, 8080}, ccb);
  ASSERT_NE(cfd, kBadFd);
  run();
  EXPECT_TRUE(connected);
  ASSERT_GT(acceptable, 0);

  // Server accepts and echoes everything it reads.
  Fd sfd = kBadFd;
  ConnCallbacks scb;
  scb.on_readable = [&](Fd fd) {
    std::uint8_t buf[256];
    std::size_t n;
    while ((n = server_app->lib->recv(fd, buf)) > 0) {
      server_app->lib->send(fd, {buf, n});
    }
  };
  sfd = server_app->lib->accept(lfd, scb);
  ASSERT_NE(sfd, kBadFd);

  const std::string msg = "hello through the replicated stack";
  client_app->lib->send(
      cfd, {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  run();
  EXPECT_EQ(received_by_client, msg);
}

TEST_F(SockLibFixture, ManyConnectionsSpreadOverReplicas) {
  const Fd lfd = server_app->lib->listen(8080, 256, [] {});
  run();
  std::vector<Fd> fds;
  for (int i = 0; i < 40; ++i) {
    fds.push_back(
        client_app->lib->connect(net::SockAddr{kServerIp, 8080}, {}));
  }
  run(300 * sim::kMillisecond);
  EXPECT_GT(server_host->replica(0).tcp().stats().conns_accepted, 5u);
  EXPECT_GT(server_host->replica(1).tcp().stats().conns_accepted, 5u);

  // Accept drains connections from every replica's subsocket.
  int accepted = 0;
  while (server_app->lib->accept(lfd, {}) != kBadFd) ++accepted;
  EXPECT_EQ(accepted, 40);
}

TEST_F(SockLibFixture, CloseDeliversEofAndNormalCloseToPeer) {
  const Fd lfd = server_app->lib->listen(8080, 64, [] {});
  run();
  CloseReason client_reason{};
  bool client_closed = false;
  ConnCallbacks ccb;
  ccb.on_closed = [&](Fd, CloseReason r) {
    client_closed = true;
    client_reason = r;
  };
  const Fd cfd = client_app->lib->connect(
      net::SockAddr{kServerIp, 8080}, ccb);
  run();
  Fd sfd = server_app->lib->accept(lfd, {});
  ASSERT_NE(sfd, kBadFd);

  server_app->lib->close(sfd);  // server closes first
  run();
  // Client sees EOF; a follow-up close completes the handshake.
  EXPECT_TRUE(client_app->lib->eof(cfd));
  client_app->lib->close(cfd);
  run(600 * sim::kMillisecond);  // covers the server's TIME_WAIT hold
  EXPECT_EQ(server_host->replica(0).tcp().connection_count() +
                server_host->replica(1).tcp().connection_count(),
            0u);
  (void)client_closed;
  (void)client_reason;
}

TEST_F(SockLibFixture, ReplicaCrashFailsOnlyItsSockets) {
  const Fd lfd = server_app->lib->listen(8080, 256, [] {});
  run();
  std::map<Fd, CloseReason> closed;
  ConnCallbacks ccb;
  ccb.on_closed = [&](Fd fd, CloseReason r) { closed[fd] = r; };
  std::vector<Fd> fds;
  for (int i = 0; i < 20; ++i) {
    fds.push_back(
        client_app->lib->connect(net::SockAddr{kServerIp, 8080}, ccb));
  }
  run(200 * sim::kMillisecond);
  while (server_app->lib->accept(lfd, {}) != kBadFd) {
  }
  ASSERT_TRUE(closed.empty());

  // Crash server replica 0. The *client's* sockets living on server
  // replica 0 die via RST when they next talk; client replica sockets are
  // a different matter — here we crash a CLIENT replica to test the
  // library's kStackFailure path directly.
  client_host->inject_crash(client_host->replica(0), Component::kWhole);
  run(200 * sim::kMillisecond);
  EXPECT_EQ(closed.size(), fds.size());
  for (const auto& [fd, reason] : closed) {
    EXPECT_EQ(reason, CloseReason::kStackFailure);
  }
}

TEST_F(SockLibFixture, RssPortSelectionSteersRepliesToOwningReplica) {
  // With two client replicas, every connect must pick a source port whose
  // RSS hash returns to the replica owning the socket.
  client_host->add_replica({&tb->client_machine.thread(5)});
  server_app->lib->listen(8080, 256, [] {});
  run();
  for (int i = 0; i < 10; ++i) {
    client_app->lib->connect(net::SockAddr{kServerIp, 8080}, {});
  }
  run(200 * sim::kMillisecond);
  std::size_t established = 0;
  for (std::size_t r = 0; r < client_host->replica_count(); ++r) {
    client_host->replica(r).tcp().for_each_connection(
        [&](net::TcpSocket& s) {
          if (s.state() == net::TcpState::kEstablished) {
            ++established;
            // The reply path must match the owning replica's queue.
            EXPECT_EQ(tb->client_nic.rss_queue(
                          s.flow().remote_ip, s.flow().remote_port,
                          s.flow().local_ip, s.flow().local_port),
                      client_host->replica(r).queue());
          }
        });
  }
  EXPECT_EQ(established, 10u);
}

TEST_F(SockLibFixture, ConnectToDeadPortReportsRefused) {
  CloseReason reason{};
  bool closed = false;
  ConnCallbacks ccb;
  ccb.on_closed = [&](Fd, CloseReason r) {
    closed = true;
    reason = r;
  };
  client_app->lib->connect(net::SockAddr{kServerIp, 9999}, ccb);
  run(300 * sim::kMillisecond);
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, CloseReason::kRefused);
}

}  // namespace
}  // namespace neat::harness
