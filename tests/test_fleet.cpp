// Fleet-layer tests: the maglev steering table's balance/disruption
// contracts, per-host observability merging, and the multi-host cluster —
// steering end-to-end, health-probe crash detection with blast-radius
// isolation, flow stability across joins, and cross-host live migration.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "fleet/app.hpp"
#include "fleet/cluster.hpp"
#include "fleet/fleet_autoscaler.hpp"
#include "fleet/maglev.hpp"
#include "fleet/obs_merge.hpp"
#include "wl/scenario.hpp"

namespace neat::fleet {
namespace {

net::FlowKey flow_of(std::uint32_t client, std::uint16_t cport,
                     std::uint16_t vport) {
  net::FlowKey k;
  k.local_ip = net::Ipv4Addr::of(10, 0, 0, 100);
  k.local_port = vport;
  k.remote_ip = net::Ipv4Addr{client};
  k.remote_port = cport;
  return k;
}

// ---------------------------------------------------------------------------
// MaglevTable
// ---------------------------------------------------------------------------

TEST(Maglev, TableIsAFunctionOfTheBackendSetNotJoinOrder) {
  MaglevTable a(97);
  MaglevTable b(97);
  for (int id : {0, 1, 2, 3}) a.add_backend(id);
  for (int id : {3, 1, 0, 2}) b.add_backend(id);
  EXPECT_EQ(a.entries(), b.entries());
}

TEST(Maglev, EveryEntryAssignedAndNearBalanced) {
  MaglevTable t;  // default prime size 4099
  constexpr int kBackends = 8;
  for (int id = 0; id < kBackends; ++id) t.add_backend(id);
  std::vector<std::size_t> share(kBackends, 0);
  for (int e : t.entries()) {
    ASSERT_GE(e, 0);
    ASSERT_LT(e, kBackends);
    ++share[static_cast<std::size_t>(e)];
  }
  const double fair =
      static_cast<double>(t.size()) / static_cast<double>(kBackends);
  for (int id = 0; id < kBackends; ++id) {
    EXPECT_GT(static_cast<double>(share[static_cast<std::size_t>(id)]),
              0.8 * fair)
        << "backend " << id;
    EXPECT_LT(static_cast<double>(share[static_cast<std::size_t>(id)]),
              1.2 * fair)
        << "backend " << id;
  }
}

TEST(Maglev, RemovalDisturbsExactlyTheRemovedBackendsEntries) {
  MaglevTable t;
  constexpr int kBackends = 8;
  for (int id = 0; id < kBackends; ++id) t.add_backend(id);
  const std::vector<int> before = t.entries();

  t.remove_backend(3);
  const std::vector<int>& after = t.entries();
  ASSERT_EQ(before.size(), after.size());
  std::size_t changed = 0;
  std::size_t was_threes = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == 3) ++was_threes;
    if (before[i] != after[i]) {
      ++changed;
      // Only slots the departed backend owned may change…
      EXPECT_EQ(before[i], 3) << "survivor lost slot " << i;
      // …and they must land on a survivor.
      EXPECT_NE(after[i], 3);
      EXPECT_GE(after[i], 0);
    }
  }
  EXPECT_EQ(changed, was_threes);
  // The removed share is ~M/N.
  EXPECT_LT(static_cast<double>(changed),
            1.2 * static_cast<double>(t.size()) / kBackends);
}

TEST(Maglev, AddGivesTheNewcomerAFairShare) {
  MaglevTable t;
  for (int id = 0; id < 7; ++id) t.add_backend(id);
  t.add_backend(7);
  std::size_t newcomer = 0;
  for (int e : t.entries()) {
    if (e == 7) ++newcomer;
  }
  const double fair = static_cast<double>(t.size()) / 8.0;
  EXPECT_GT(static_cast<double>(newcomer), 0.7 * fair);
  EXPECT_LT(static_cast<double>(newcomer), 1.3 * fair);
}

TEST(Maglev, LookupIsDeterministicAndEmptyTableSaysSo) {
  MaglevTable t(193);
  EXPECT_EQ(t.lookup(flow_of(1, 2, 3)), -1);
  t.add_backend(4);
  t.add_backend(9);
  const net::FlowKey f = flow_of(0x0a000202, 49200, 8000);
  const int first = t.lookup(f);
  EXPECT_TRUE(first == 4 || first == 9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(t.lookup(f), first);
}

// ---------------------------------------------------------------------------
// Observability merge
// ---------------------------------------------------------------------------

TEST(ObsMerge, CountersGaugesAndHistogramsFold) {
  obs::Hub a;
  obs::Hub b;
  a.metrics.counter("x").inc(3);
  b.metrics.counter("x").inc(4);
  a.metrics.gauge("g").set(2.0);
  b.metrics.gauge("g").set(5.0);
  a.metrics.histogram("h").record(100);
  b.metrics.histogram("h").record(300);

  obs::Registry merged;
  merge_registry(merged, a.metrics);
  merge_registry(merged, b.metrics);
  EXPECT_EQ(merged.counter("x").value(), 7u);
  EXPECT_DOUBLE_EQ(merged.gauge("g").value(), 7.0);
  EXPECT_EQ(merged.histogram("h").count(), 2u);

  const std::vector<const obs::Hub*> hubs{&a, &b};
  EXPECT_EQ(summed_counter(hubs, "x"), 7u);
  const obs::Histogram h = merged_histogram(hubs, "h");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.max(), 300u);
  // Fleet quantiles come from the combined distribution (clamped to the
  // true maximum at q=1).
  EXPECT_EQ(h.quantile(1.0), 300u);
}

// ---------------------------------------------------------------------------
// Cluster fixtures
// ---------------------------------------------------------------------------

struct FleetRig {
  explicit FleetRig(FleetConfig cfg) : fleet(std::move(cfg)) {
    for (std::size_t i = 0; i < fleet.backend_count(); ++i) {
      FleetHost& b = fleet.backend(i);
      auto s = std::make_unique<PingServer>(
          fleet.sim, "ping" + std::to_string(b.id), *b.host, b.id);
      s->pin(b.app_thread());
      s->start(ports);
      servers.push_back(std::move(s));
    }
    fleet.set_adoption_handler(
        [this](FleetHost& to, StackReplica& rep,
               const std::vector<net::TcpSocketPtr>& adopted) {
          servers[static_cast<std::size_t>(to.id)]->adopt(rep, adopted);
        });
  }

  void add_client(FleetClient::Config cc) {
    const std::size_t j = clients.size();
    cc.vip = fleet.config().steering.vip;
    cc.ports = ports;
    FleetHost& c = fleet.client(j);
    auto cl = std::make_unique<FleetClient>(
        fleet.sim, "cli" + std::to_string(j), *c.host, std::move(cc));
    cl->pin(c.app_thread());
    clients.push_back(std::move(cl));
  }

  void start_and_run(sim::SimTime t) {
    for (auto& c : clients) c->start();
    fleet.sim.run_for(t);
  }

  // Apps are declared after the cluster, so they are destroyed first (the
  // SockLibs must unregister before their hosts die).
  FleetCluster fleet;
  std::vector<std::uint16_t> ports{8000, 8001, 8002, 8003};
  std::vector<std::unique_ptr<PingServer>> servers;
  std::vector<std::unique_ptr<FleetClient>> clients;
};

FleetConfig small_cluster(int backends, int clients, int standbys = 0) {
  FleetConfig fc;
  fc.seed = 11;
  fc.backends = backends;
  fc.standbys = standbys;
  fc.clients = clients;
  fc.replicas_per_backend = 2;
  fc.replicas_per_client = 2;
  return fc;
}

FleetClient::Config pinger_heavy(std::uint64_t conns) {
  FleetClient::Config cc;
  cc.total_conns = conns;
  cc.sample_every = 1;  // every connection pings
  cc.ping_interval = 2 * sim::kMillisecond;
  return cc;
}

// ---------------------------------------------------------------------------
// End-to-end steering
// ---------------------------------------------------------------------------

TEST(FleetCluster, ClientsReachTheVipAndFlowsPinToBackends) {
  FleetRig rig(small_cluster(2, 1));
  rig.add_client(pinger_heavy(64));
  rig.start_and_run(300 * sim::kMillisecond);

  const auto& st = rig.clients[0]->app_stats();
  EXPECT_EQ(st.connected, 64u);
  EXPECT_EQ(st.closed_reset, 0u);
  EXPECT_GT(st.responses, 64u);

  // The tier tracked every flow, and both backends ended up serving.
  const auto& ts = rig.fleet.steering().stats();
  EXPECT_GE(ts.flows_installed, 64u);
  EXPECT_EQ(ts.no_backend_drops, 0u);
  std::uint64_t served_total = 0;
  int backends_serving = 0;
  for (const auto& s : rig.servers) {
    served_total += s->app_stats().requests;
    if (s->app_stats().requests > 0) ++backends_serving;
  }
  // Every client response was served by a backend; at most one response
  // per pinger may still be in flight at the instant the sim stops.
  EXPECT_GE(served_total, st.responses);
  EXPECT_LE(served_total - st.responses, 64u);
  EXPECT_EQ(backends_serving, 2);

  // Responses attribute to real backend ids.
  for (const auto& [id, n] : st.per_host_responses) {
    EXPECT_TRUE(id == 0 || id == 1) << id;
    EXPECT_GT(n, 0u);
  }
}

TEST(FleetCluster, PerHostHubsKeepMetricsSeparable) {
  FleetRig rig(small_cluster(2, 1));
  rig.add_client(pinger_heavy(32));
  rig.start_and_run(200 * sim::kMillisecond);

  // Each backend recorded NIC activity on its own hub; the fleet view is
  // the merge, and it dominates each part.
  const auto hubs = rig.fleet.backend_hubs();
  ASSERT_EQ(hubs.size(), 2u);
  const std::uint64_t merged_rx = summed_counter(hubs, "nic.steer_rss");
  const std::uint64_t h0 = summed_counter({hubs[0]}, "nic.steer_rss");
  const std::uint64_t h1 = summed_counter({hubs[1]}, "nic.steer_rss");
  EXPECT_GT(h0, 0u);
  EXPECT_GT(h1, 0u);
  EXPECT_EQ(merged_rx, h0 + h1);
}

// ---------------------------------------------------------------------------
// Crash detection + isolation
// ---------------------------------------------------------------------------

TEST(FleetCluster, ProberEvictsACrashedHostAndSurvivorsKeepServing) {
  FleetRig rig(small_cluster(3, 1));
  rig.add_client(pinger_heavy(90));
  rig.fleet.start_health_probing();

  rig.start_and_run(250 * sim::kMillisecond);
  rig.fleet.crash_host(0);

  const std::uint64_t served_before_1 = rig.servers[1]->app_stats().requests;
  const std::uint64_t served_before_2 = rig.servers[2]->app_stats().requests;
  const std::uint64_t victim_served = rig.servers[0]->app_stats().requests;
  EXPECT_GT(victim_served, 0u);

  rig.fleet.sim.run_for(600 * sim::kMillisecond);

  // Detection: declared down within the probe budget, pulled from the
  // table; the maglev remap sends new flows to survivors only.
  const auto& ts = rig.fleet.steering().stats();
  EXPECT_EQ(ts.backends_declared_down, 1u);
  EXPECT_FALSE(rig.fleet.steering().has_backend(0));
  EXPECT_TRUE(rig.fleet.steering().has_backend(1));
  EXPECT_TRUE(rig.fleet.steering().has_backend(2));

  // Blast radius: the victim served nothing after the crash...
  EXPECT_EQ(rig.servers[0]->app_stats().requests, victim_served);
  // ...while both survivors kept serving.
  EXPECT_GT(rig.servers[1]->app_stats().requests, served_before_1);
  EXPECT_GT(rig.servers[2]->app_stats().requests, served_before_2);

  // The victim's clients were flushed out via RST (retry → survivor →
  // RST), none of the survivors' connections died.
  const auto& st = rig.clients[0]->app_stats();
  EXPECT_GT(st.closed_reset, 0u);
  EXPECT_GT(st.retries, 0u);
  const std::uint64_t live = rig.clients[0]->live_connections();
  EXPECT_EQ(live + st.closed_reset, st.connected);
}

// ---------------------------------------------------------------------------
// Join stability
// ---------------------------------------------------------------------------

TEST(FleetCluster, EstablishedFlowsSurviveAStandbyJoining) {
  FleetRig rig(small_cluster(2, 1, /*standbys=*/1));
  rig.add_client(pinger_heavy(64));
  rig.start_and_run(200 * sim::kMillisecond);

  const auto& tier = rig.fleet.steering();
  ASSERT_EQ(rig.clients[0]->app_stats().connected, 64u);
  const std::size_t tracked_before = tier.tracked_flow_count();
  ASSERT_GT(tracked_before, 0u);

  // Record every flow's pin, then bring the standby into the table.
  std::vector<std::pair<net::FlowKey, int>> pins;
  for (int b : {0, 1}) {
    for (const auto& f : tier.tracked_flows_for(b)) pins.emplace_back(f, b);
  }
  rig.fleet.activate_backend(2);
  rig.fleet.sim.run_for(300 * sim::kMillisecond);

  // Conntrack pins outrank the (rebuilt) maglev table: no tracked flow
  // moved, no connection reset.
  for (const auto& [f, b] : pins) {
    const auto now_pinned = tier.tracked_backend(f);
    ASSERT_TRUE(now_pinned.has_value());
    EXPECT_EQ(*now_pinned, b);
  }
  EXPECT_EQ(rig.clients[0]->app_stats().closed_reset, 0u);
  // The newcomer is in the table and picks up new flows from now on (not
  // asserted: no new flows are opened in this test), while old responses
  // keep flowing.
  EXPECT_TRUE(tier.has_backend(2));
  EXPECT_GT(rig.clients[0]->app_stats().responses, 0u);
}

// ---------------------------------------------------------------------------
// Cross-host live migration
// ---------------------------------------------------------------------------

TEST(FleetCluster, DrainMovesEveryConnectionAndServiceContinues) {
  FleetRig rig(small_cluster(2, 1));
  rig.add_client(pinger_heavy(64));
  rig.start_and_run(200 * sim::kMillisecond);

  const std::size_t on_src = rig.fleet.backend_connections(0);
  const std::size_t on_dst = rig.fleet.backend_connections(1);
  ASSERT_GT(on_src, 0u);
  const std::uint64_t responses_before =
      rig.clients[0]->app_stats().responses;

  std::size_t moved = 0;
  rig.fleet.drain_host(0, 1, [&moved](std::size_t n) { moved = n; });
  rig.fleet.sim.run_for(400 * sim::kMillisecond);

  // Everything moved; the source is empty and out of the table.
  EXPECT_EQ(moved, on_src);
  EXPECT_EQ(rig.fleet.backend_connections(0), 0u);
  EXPECT_EQ(rig.fleet.backend_connections(1), on_src + on_dst);
  EXPECT_FALSE(rig.fleet.steering().has_backend(0));

  // The adopting host wired the sockets into fresh fds; the source's
  // libraries dropped exactly the moved fds as kMigratedAway husks.
  EXPECT_EQ(rig.servers[1]->app_stats().adopted, on_src);
  EXPECT_EQ(rig.servers[0]->app_stats().migrated_away, on_src);

  // Byte-exact continuation: every connection keeps pinging and no client
  // connection was reset — the moved streams resumed mid-flight, and all
  // post-drain responses come from the adopting host.
  const auto& st = rig.clients[0]->app_stats();
  EXPECT_EQ(st.closed_reset, 0u);
  EXPECT_EQ(st.closed_migrated, 0u);
  EXPECT_GT(st.responses, responses_before);
  rig.clients[0]->mark();
  rig.fleet.sim.run_for(100 * sim::kMillisecond);
  const auto& window = rig.clients[0]->window_responses();
  ASSERT_TRUE(window.contains(1));
  EXPECT_GT(window.at(1), 0u);
  EXPECT_FALSE(window.contains(0));

  // Re-activating the drained host puts it back in rotation (it kept its
  // listeners; it simply has no connections).
  rig.fleet.activate_backend(0);
  EXPECT_TRUE(rig.fleet.steering().has_backend(0));
}

// ---------------------------------------------------------------------------
// Fleet autoscaler
// ---------------------------------------------------------------------------

TEST(FleetAutoScalerTest, HotFleetActivatesTheStandbyExactlyOnce) {
  FleetRig rig(small_cluster(2, 1, /*standbys=*/1));
  rig.add_client(pinger_heavy(32));
  FleetScalePolicy pol;
  pol.host_up_threshold = -1.0;   // any utilization counts as hot
  pol.host_down_threshold = -2.0; // never cold
  pol.cooldown = 100 * sim::kMillisecond;
  pol.per_host_scaling = false;
  FleetAutoScaler scaler(rig.fleet, pol);
  scaler.start();

  ASSERT_FALSE(rig.fleet.steering().has_backend(2));
  rig.start_and_run(500 * sim::kMillisecond);

  // The one standby joined the table; with no candidates left, the scaler
  // stays hot but can do nothing more.
  EXPECT_EQ(scaler.host_activations(), 1u);
  EXPECT_EQ(scaler.host_drains(), 0u);
  EXPECT_TRUE(rig.fleet.steering().has_backend(2));
  EXPECT_GE(scaler.last_fleet_utilization(), 0.0);
}

TEST(FleetAutoScalerTest, ColdFleetDrainsDownToMinHosts) {
  FleetRig rig(small_cluster(3, 1));
  rig.add_client(pinger_heavy(48));
  FleetScalePolicy pol;
  pol.host_up_threshold = 1.5;   // never hot
  pol.host_down_threshold = 2.0; // any utilization counts as cold
  pol.min_hosts = 2;
  pol.cooldown = 100 * sim::kMillisecond;
  pol.per_host_scaling = false;
  FleetAutoScaler scaler(rig.fleet, pol);
  scaler.start();

  rig.start_and_run(600 * sim::kMillisecond);

  // Exactly one host drained (down to the floor), its connections moved,
  // and nobody's connection died in the process.
  EXPECT_EQ(scaler.host_drains(), 1u);
  int in_table = 0;
  std::size_t drained = 99;
  for (std::size_t i = 0; i < 3; ++i) {
    if (rig.fleet.steering().has_backend(static_cast<int>(i))) {
      ++in_table;
    } else {
      drained = i;
    }
  }
  EXPECT_EQ(in_table, 2);
  ASSERT_LT(drained, 3u);
  EXPECT_EQ(rig.fleet.backend_connections(drained), 0u);
  const auto& st = rig.clients[0]->app_stats();
  EXPECT_EQ(st.closed_reset, 0u);
  EXPECT_EQ(rig.clients[0]->live_connections(), st.connected);
}

// ---------------------------------------------------------------------------
// Fleet scenario plumbing
// ---------------------------------------------------------------------------

TEST(FleetScenario, RunScenarioDispatchesToTheFleetBranch) {
  wl::Scenario sc;
  sc.name = "fleet_test";
  sc.seed = 5;
  sc.fleet_hosts = 2;
  sc.fleet_clients = 1;
  sc.fleet_conns = 200;
  sc.fleet_ports = 4;
  sc.warmup = 100 * sim::kMillisecond;
  sc.measure = 200 * sim::kMillisecond;
  const wl::ScenarioResult res = wl::run_scenario(sc);
  EXPECT_EQ(res.fleet_hosts_up_end, 2u);
  EXPECT_GT(res.fleet_established, 0u);
  EXPECT_GT(res.fleet_responses, 0u);
  EXPECT_EQ(res.fleet_lost_conns, 0u);
  EXPECT_EQ(res.fleet_requests_served, res.fleet_responses);
  EXPECT_GT(res.fleet_rtt_p99_ms, 0.0);
}

}  // namespace
}  // namespace neat::fleet
