// Unit and property tests for the IPC substrate: byte rings, channels,
// doorbells.
#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <vector>

#include "ipc/byte_ring.hpp"
#include "ipc/channel.hpp"
#include "ipc/doorbell.hpp"
#include "sim/machine.hpp"
#include "sim/process.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace neat::ipc {
namespace {

class TestProc : public sim::Process {
 public:
  using sim::Process::Process;
};

struct SimFixture : public ::testing::Test {
  SimFixture() : machine(sim.add_machine(fast_params())), proc(sim, "c") {
    proc.pin(machine.thread(0));
  }
  static sim::MachineParams fast_params() {
    sim::MachineParams p;
    p.cores = 2;
    p.freq = sim::Frequency{1.0};
    return p;
  }
  sim::Simulator sim;
  sim::Machine& machine;
  TestProc proc;
};

// ---------------------------------------------------------------------------
// ByteRing
// ---------------------------------------------------------------------------

TEST(ByteRing, BasicWriteRead) {
  ByteRing r(16);
  const std::uint8_t in[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(r.write(in), 5u);
  EXPECT_EQ(r.readable(), 5u);
  EXPECT_EQ(r.writable(), 11u);
  std::uint8_t out[5] = {};
  EXPECT_EQ(r.read(out), 5u);
  EXPECT_TRUE(std::equal(std::begin(in), std::end(in), std::begin(out)));
  EXPECT_TRUE(r.empty());
}

TEST(ByteRing, WriteBoundedByCapacity) {
  ByteRing r(4);
  std::uint8_t in[10] = {};
  EXPECT_EQ(r.write(in), 4u);
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.write(in), 0u);
}

TEST(ByteRing, PeekDoesNotConsume) {
  ByteRing r(8);
  const std::uint8_t in[] = {9, 8, 7};
  r.write(in);
  std::uint8_t out[3] = {};
  EXPECT_EQ(r.peek(out), 3u);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(r.readable(), 3u);
}

TEST(ByteRing, PeekAtOffset) {
  ByteRing r(8);
  const std::uint8_t in[] = {10, 11, 12, 13};
  r.write(in);
  std::uint8_t out[2] = {};
  EXPECT_EQ(r.peek_at(2, out), 2u);
  EXPECT_EQ(out[0], 12);
  EXPECT_EQ(out[1], 13);
  EXPECT_EQ(r.peek_at(4, out), 0u);  // past end
}

TEST(ByteRing, DiscardSkipsBytes) {
  ByteRing r(8);
  const std::uint8_t in[] = {1, 2, 3, 4};
  r.write(in);
  EXPECT_EQ(r.discard(2), 2u);
  std::uint8_t out[2] = {};
  r.read(out);
  EXPECT_EQ(out[0], 3);
}

TEST(ByteRing, LazyAllocationAndRelease) {
  ByteRing r(1 << 20);
  EXPECT_EQ(r.readable(), 0u);
  EXPECT_EQ(r.writable(), 1u << 20);  // capacity visible pre-allocation
  std::uint8_t b = 1;
  r.write({&b, 1});
  r.release();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.writable(), 1u << 20);
  // Usable again after release.
  r.write({&b, 1});
  EXPECT_EQ(r.readable(), 1u);
}

TEST(ByteRing, OperationsOnUnallocatedRingAreSafe) {
  ByteRing r(64);
  std::uint8_t out[4];
  EXPECT_EQ(r.read(out), 0u);
  EXPECT_EQ(r.peek(out), 0u);
  EXPECT_EQ(r.peek_at(0, out), 0u);
  EXPECT_EQ(r.discard(10), 0u);
}

/// Property: arbitrary interleavings of writes and reads deliver exactly
/// the written byte stream, in order.
class ByteRingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ByteRingProperty, StreamIntegrityUnderRandomChunking) {
  sim::Rng rng(GetParam());
  ByteRing ring(1 + rng.below(257));
  std::vector<std::uint8_t> sent, received;
  std::uint8_t next = 0;
  for (int step = 0; step < 2000; ++step) {
    if (rng.chance(0.5)) {
      std::vector<std::uint8_t> chunk(1 + rng.below(64));
      for (auto& c : chunk) c = next++;
      const std::size_t n = ring.write(chunk);
      sent.insert(sent.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
      next = static_cast<std::uint8_t>(chunk[0] + n);  // rewind unwritten
    } else {
      std::vector<std::uint8_t> buf(1 + rng.below(64));
      const std::size_t n = ring.read(buf);
      received.insert(received.end(), buf.begin(),
                      buf.begin() + static_cast<long>(n));
    }
  }
  std::vector<std::uint8_t> drain(ring.readable());
  ring.read(drain);
  received.insert(received.end(), drain.begin(), drain.end());
  ASSERT_EQ(sent, received);
  EXPECT_EQ(ring.total_in(), sent.size());
  EXPECT_EQ(ring.total_out(), received.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteRingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Property: against a std::deque reference model, arbitrary interleavings
/// of write / read / peek / peek_at / discard behave identically — this
/// pins the wrap-around arithmetic (at most two memcpy segments per
/// operation) to an obviously-correct implementation.
class ByteRingModelProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ByteRingModelProperty, MatchesDequeReferenceModel) {
  sim::Rng rng(GetParam());
  const std::size_t cap = 1 + rng.below(300);
  ByteRing ring(cap);
  std::deque<std::uint8_t> model;
  std::size_t model_high_water = 0;
  std::uint8_t next = 0;

  for (int step = 0; step < 4000; ++step) {
    switch (rng.below(5)) {
      case 0: {  // write
        std::vector<std::uint8_t> chunk(1 + rng.below(cap + 16));
        for (auto& c : chunk) c = next++;
        const std::size_t n = ring.write(chunk);
        const std::size_t expect = std::min(chunk.size(), cap - model.size());
        ASSERT_EQ(n, expect);
        model.insert(model.end(), chunk.begin(),
                     chunk.begin() + static_cast<long>(n));
        model_high_water = std::max(model_high_water, model.size());
        break;
      }
      case 1: {  // read (consumes)
        std::vector<std::uint8_t> buf(1 + rng.below(cap + 16));
        const std::size_t n = ring.read(buf);
        ASSERT_EQ(n, std::min(buf.size(), model.size()));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(buf[i], model.front());
          model.pop_front();
        }
        break;
      }
      case 2: {  // peek (does not consume)
        std::vector<std::uint8_t> buf(1 + rng.below(cap + 16));
        const std::size_t n = ring.peek(buf);
        ASSERT_EQ(n, std::min(buf.size(), model.size()));
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(buf[i], model[i]);
        break;
      }
      case 3: {  // peek_at offset (retransmission path)
        const std::size_t off = rng.below(cap + 8);
        std::vector<std::uint8_t> buf(1 + rng.below(64));
        const std::size_t n = ring.peek_at(off, buf);
        const std::size_t expect =
            off >= model.size() ? 0 : std::min(buf.size(), model.size() - off);
        ASSERT_EQ(n, expect);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(buf[i], model[off + i]);
        break;
      }
      case 4: {  // discard (acked data drop)
        const std::size_t want = rng.below(cap + 8);
        const std::size_t n = ring.discard(want);
        ASSERT_EQ(n, std::min(want, model.size()));
        model.erase(model.begin(), model.begin() + static_cast<long>(n));
        break;
      }
    }
    ASSERT_EQ(ring.readable(), model.size());
    ASSERT_EQ(ring.writable(), cap - model.size());
  }
  EXPECT_EQ(ring.high_water(), model_high_water);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteRingModelProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18,
                                           19, 20));

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST_F(SimFixture, ChannelDeliversInOrderWithCost) {
  std::vector<int> got;
  Channel<int> ch(proc, 16, kDefaultChannelLatency, 100,
                  [&](int&& v) { got.push_back(v); });
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.send(i));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ch.stats().delivered, 5u);
  EXPECT_GE(proc.stats().processing, 500u);
}

TEST_F(SimFixture, ChannelDropsWhenFull) {
  std::vector<int> got;
  Channel<int> ch(proc, 3, kDefaultChannelLatency, 100,
                  [&](int&& v) { got.push_back(v); });
  int sent = 0;
  for (int i = 0; i < 10; ++i) {
    if (ch.send(i)) ++sent;
  }
  EXPECT_EQ(sent, 3);
  EXPECT_EQ(ch.stats().dropped_full, 7u);
  sim.run();
  EXPECT_EQ(got.size(), 3u);
  // Capacity frees up after consumption.
  EXPECT_TRUE(ch.send(99));
  sim.run();
  EXPECT_EQ(got.back(), 99);
}

TEST_F(SimFixture, ChannelToCrashedConsumerDropsAndRecovers) {
  int got = 0;
  Channel<int> ch(proc, 4, kDefaultChannelLatency, 10,
                  [&](int&&) { ++got; });
  proc.crash();
  EXPECT_FALSE(ch.send(1));
  EXPECT_EQ(ch.stats().dropped_dead, 1u);
  proc.restart();
  ch.rebind(proc);
  EXPECT_TRUE(ch.send(2));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(SimFixture, ChannelMessageCostMayDependOnPayload) {
  Channel<std::vector<int>> ch(
      proc, 8, kDefaultChannelLatency,
      [](const std::vector<int>& v) {
        return static_cast<sim::Cycles>(v.size() * 10);
      },
      [](std::vector<int>&&) {});
  ch.send(std::vector<int>(100));
  sim.run();
  EXPECT_EQ(proc.stats().processing, 1000u);
}

TEST_F(SimFixture, ChannelBatchHandlerReceivesWholeBurst) {
  // A burst deposited inside one transfer latency drains as ONE delivery:
  // the batch handler sees the whole burst, in order, and the consumer is
  // still charged the summed per-message cost (virtual time unchanged).
  std::vector<std::vector<int>> bursts;
  Channel<int> ch(proc, 64, kDefaultChannelLatency, 100,
                  [&](int&&) { FAIL() << "batch handler must override"; });
  ch.set_batch_handler(
      [&](std::vector<int>&& b) { bursts.push_back(std::move(b)); });
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.send(i));
  sim.run();
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0], (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ch.stats().delivered, 5u);
  EXPECT_EQ(ch.stats().batches, 1u);
  EXPECT_GE(proc.stats().processing, 500u);  // 5 x 100, summed into one job
}

TEST_F(SimFixture, ChannelBatchRespectsBudgetAndOrder) {
  // More than kBatchBudget staged messages split into budget-sized
  // deliveries; concatenated they are exactly the sent sequence.
  std::vector<std::size_t> burst_sizes;
  std::vector<int> got;
  Channel<int> ch(proc, 128, kDefaultChannelLatency, 1,
                  [&](int&&) { FAIL() << "batch handler must override"; });
  ch.set_batch_handler([&](std::vector<int>&& b) {
    burst_sizes.push_back(b.size());
    for (int v : b) got.push_back(v);
  });
  constexpr int kN = 80;  // 2 full budgets + a remainder of 16
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(ch.send(i));
  sim.run();
  ASSERT_EQ(burst_sizes.size(), 3u);
  EXPECT_EQ(burst_sizes[0], Channel<int>::kBatchBudget);
  EXPECT_EQ(burst_sizes[1], Channel<int>::kBatchBudget);
  EXPECT_EQ(burst_sizes[2], kN - 2 * Channel<int>::kBatchBudget);
  std::vector<int> want(kN);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(got, want);
  EXPECT_EQ(ch.stats().delivered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(ch.stats().batches, 3u);
}

TEST_F(SimFixture, ChannelBatchAndSingleDeliveryAreEquivalent) {
  // The batch path and the per-message path must agree on everything
  // observable: messages, order, delivered count, and charged cycles.
  auto run_one = [&](bool batched) {
    sim::Simulator s;
    sim::Machine& m = s.add_machine(fast_params());
    TestProc p(s, "c");
    p.pin(m.thread(0));
    std::vector<int> got;
    Channel<int> ch(p, 64, kDefaultChannelLatency, 100,
                    [&](int&& v) { got.push_back(v); });
    if (batched) {
      ch.set_batch_handler([&](std::vector<int>&& b) {
        for (int v : b) got.push_back(v);
      });
    }
    for (int i = 0; i < 20; ++i) EXPECT_TRUE(ch.send(i));
    s.run();
    return std::tuple{got, ch.stats().delivered, p.stats().processing};
  };
  EXPECT_EQ(run_one(false), run_one(true));
}

TEST_F(SimFixture, ChannelBatchDiesWithCrashedConsumer) {
  // Crash while the burst is in transfer: the whole burst is classified
  // dropped_dead and the accounting invariant still balances.
  int handled = 0;
  Channel<int> ch(proc, 16, kDefaultChannelLatency, 10,
                  [&](int&&) { ++handled; });
  ch.set_batch_handler([&](std::vector<int>&& b) {
    handled += static_cast<int>(b.size());
  });
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.send(i));
  proc.crash();
  sim.run();
  EXPECT_EQ(handled, 0);
  const auto& st = ch.stats();
  EXPECT_EQ(st.sent, st.delivered + st.dropped_full + st.dropped_dead);
  EXPECT_EQ(st.dropped_dead, 4u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Doorbell
// ---------------------------------------------------------------------------

TEST_F(SimFixture, DoorbellCoalescesRings) {
  int handled = 0;
  Doorbell bell(proc, 50, [&] { ++handled; });
  bell.ring();
  bell.ring();
  bell.ring();
  sim.run();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(bell.rings(), 3u);
  EXPECT_EQ(bell.deliveries(), 1u);
  // After consumption, a new ring delivers again.
  bell.ring();
  sim.run();
  EXPECT_EQ(handled, 2);
}

TEST_F(SimFixture, DoorbellToCrashedConsumerIsNoop) {
  int handled = 0;
  Doorbell bell(proc, 50, [&] { ++handled; });
  proc.crash();
  bell.ring();
  sim.run();
  EXPECT_EQ(handled, 0);
}

TEST_F(SimFixture, DestroyedDoorbellNeverFires) {
  int handled = 0;
  {
    Doorbell bell(proc, 50, [&] { ++handled; });
    bell.ring();
  }  // destroyed with the ring still in flight
  sim.run();
  EXPECT_EQ(handled, 0);
}

}  // namespace
}  // namespace neat::ipc
