// NIC model tests: Toeplitz RSS, indirection, flow-director filters with
// LRU eviction and tracking, classification, the 10G link model, TSO wire
// accounting.
#include <gtest/gtest.h>

#include <map>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "nic/nic.hpp"
#include "nic/toeplitz.hpp"
#include "sim/simulator.hpp"

namespace neat::nic {
namespace {

const net::Ipv4Addr kSrvIp = net::Ipv4Addr::of(10, 0, 0, 1);
const net::Ipv4Addr kCliIp = net::Ipv4Addr::of(10, 0, 0, 2);

// ---------------------------------------------------------------------------
// Toeplitz
// ---------------------------------------------------------------------------

TEST(Toeplitz, MicrosoftVerificationVectors) {
  // The complete IPv4 table from the official RSS verification suite, for
  // the standard key: both the 4-tuple (with TCP ports) hash and the
  // IP-pair-only hash. Input tuples are (src, dst, srcport, dstport) hashed
  // as src ip, dst ip, src port, dst port.
  struct Vector {
    std::uint8_t s0, s1, s2, s3;  // source address octets
    std::uint8_t d0, d1, d2, d3;  // destination address octets
    std::uint16_t sport, dport;
    std::uint32_t with_ports;  // 4-tuple hash
    std::uint32_t ip_only;     // 2-tuple hash
  };
  constexpr Vector kVectors[] = {
      {66, 9, 149, 187, 161, 142, 100, 80, 2794, 1766, 0x51ccc178u,
       0x323e8fc2u},
      {199, 92, 111, 2, 65, 69, 140, 83, 14230, 4739, 0xc626b0eau,
       0xd718262au},
      {24, 19, 198, 95, 12, 22, 207, 184, 12898, 38024, 0x5c2b394au,
       0xd2d0a5deu},
      {38, 27, 205, 30, 209, 142, 163, 6, 48228, 2217, 0xafc7327fu,
       0x82989176u},
      {153, 39, 163, 191, 202, 188, 127, 2, 44251, 1303, 0x10e828a2u,
       0x5d1809c5u},
  };
  ToeplitzHasher h;
  for (const auto& v : kVectors) {
    const auto src = net::Ipv4Addr::of(v.s0, v.s1, v.s2, v.s3);
    const auto dst = net::Ipv4Addr::of(v.d0, v.d1, v.d2, v.d3);
    EXPECT_EQ(h.hash_tuple(src, dst, v.sport, v.dport), v.with_ports)
        << "4-tuple hash for " << int{v.s0} << "." << int{v.s1};
    EXPECT_EQ(h.hash_ip_pair(src, dst), v.ip_only)
        << "2-tuple hash for " << int{v.s0} << "." << int{v.s1};
  }
}

TEST(Toeplitz, DeterministicAndPortSensitive) {
  ToeplitzHasher h;
  const auto a = h.hash_tuple(kCliIp, kSrvIp, 5000, 80);
  EXPECT_EQ(a, h.hash_tuple(kCliIp, kSrvIp, 5000, 80));
  EXPECT_NE(a, h.hash_tuple(kCliIp, kSrvIp, 5001, 80));
}

TEST(Toeplitz, SpreadsFlowsRoughlyUniformly) {
  ToeplitzHasher h;
  constexpr int kQueues = 4;
  std::map<int, int> counts;
  for (std::uint16_t port = 40000; port < 44000; ++port) {
    counts[static_cast<int>(h.hash_tuple(kCliIp, kSrvIp, port, 80) %
                            kQueues)]++;
  }
  for (int q = 0; q < kQueues; ++q) {
    EXPECT_NEAR(counts[q], 1000, 150) << "queue " << q;
  }
}

// ---------------------------------------------------------------------------
// NIC fixture
// ---------------------------------------------------------------------------

struct NicFixture : public ::testing::Test {
  NicFixture()
      : nic(sim, net::MacAddr::local(1), kSrvIp, params()) {}

  static NicParams params() {
    NicParams p;
    p.num_queues = 4;
    p.flow_table_capacity = 8;
    return p;
  }

  /// Build a minimal TCP/IP/Ethernet frame addressed to the NIC.
  net::PacketPtr make_frame(std::uint16_t src_port, std::uint16_t dst_port,
                            bool syn = false, bool rst = false) {
    auto pkt = net::Packet::make(0);
    net::TcpHeader th;
    th.src_port = src_port;
    th.dst_port = dst_port;
    th.syn = syn;
    th.rst = rst;
    th.ack_flag = !syn;
    th.encode(*pkt, kCliIp, kSrvIp);
    net::Ipv4Header ih;
    ih.src = kCliIp;
    ih.dst = kSrvIp;
    ih.proto = net::IpProto::kTcp;
    ih.encode(*pkt);
    net::EthernetHeader eh;
    eh.src = net::MacAddr::local(2);
    eh.dst = net::MacAddr::local(1);
    eh.type = net::EtherType::kIpv4;
    eh.encode(*pkt);
    return pkt;
  }

  sim::Simulator sim;
  Nic nic;
};

TEST_F(NicFixture, ClassifiesByRssIndirection) {
  nic.set_active_queues({2});
  EXPECT_EQ(nic.classify(*make_frame(5000, 80)), 2);
  nic.set_active_queues({0, 1, 2, 3});
  std::map<int, int> hits;
  for (std::uint16_t p = 50000; p < 50200; ++p) {
    hits[nic.classify(*make_frame(p, 80))]++;
  }
  EXPECT_EQ(hits.size(), 4u) << "flows must spread over all active queues";
}

TEST_F(NicFixture, ExactFilterOverridesRss) {
  nic.set_active_queues({0});
  const net::FlowKey key{kSrvIp, 80, kCliIp, 5000};
  nic.add_flow_filter(key, 3);
  EXPECT_EQ(nic.classify(*make_frame(5000, 80)), 3);
  EXPECT_EQ(nic.classify(*make_frame(5001, 80)), 0);
  nic.remove_flow_filter(key);
  EXPECT_EQ(nic.classify(*make_frame(5000, 80)), 0);
}

TEST_F(NicFixture, FlowTableEvictsLru) {
  for (std::uint16_t p = 0; p < 10; ++p) {
    nic.add_flow_filter(net::FlowKey{kSrvIp, 80, kCliIp, p}, 1);
  }
  EXPECT_EQ(nic.flow_filter_count(), 8u);  // capacity
  EXPECT_EQ(nic.stats().filters_evicted, 2u);
  // Oldest two (ports 0, 1) were evicted.
  EXPECT_FALSE(nic.flow_filter(net::FlowKey{kSrvIp, 80, kCliIp, 0}));
  EXPECT_TRUE(nic.flow_filter(net::FlowKey{kSrvIp, 80, kCliIp, 9}));
}

TEST_F(NicFixture, RxEnqueueAndNotify) {
  nic.set_active_queues({1});
  int notified_queue = -1;
  nic.set_rx_notify([&](int q) { notified_queue = q; });
  nic.receive(make_frame(5000, 80));
  EXPECT_EQ(notified_queue, 1);
  EXPECT_EQ(nic.rx_depth(1), 1u);
  auto p = nic.poll_rx(1);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->rx_queue, 1);
  EXPECT_FALSE(nic.poll_rx(1));
}

TEST_F(NicFixture, RxCoalesceSharesOneDoorbellPerBurst) {
  nic.set_active_queues({1});
  nic.set_rx_coalesce(8 * sim::kMicrosecond);
  int notifies = 0;
  nic.set_rx_notify([&](int q) {
    EXPECT_EQ(q, 1);
    ++notifies;
  });
  // A back-to-back burst arrives well inside the moderation window: one
  // doorbell, fired a window after the first frame, with the whole burst
  // already sitting in the ring.
  for (int i = 0; i < 5; ++i) nic.receive(make_frame(5000, 80));
  EXPECT_EQ(notifies, 0) << "doorbell must be deferred, not immediate";
  sim.run_for(8 * sim::kMicrosecond);
  EXPECT_EQ(notifies, 1);
  EXPECT_EQ(nic.rx_depth(1), 5u);
  while (nic.poll_rx(1)) {
  }
  // An idle window later, the next frame re-arms a fresh doorbell.
  sim.run_for(100 * sim::kMicrosecond);
  nic.receive(make_frame(5000, 80));
  sim.run_for(8 * sim::kMicrosecond);
  EXPECT_EQ(notifies, 2);
  // With moderation off the doorbell is synchronous again.
  nic.set_rx_coalesce(0);
  while (nic.poll_rx(1)) {
  }
  nic.receive(make_frame(5000, 80));
  EXPECT_EQ(notifies, 3);
}

TEST_F(NicFixture, RxCoalesceSkipsDoorbellForDrainedQueue) {
  nic.set_active_queues({1});
  nic.set_rx_coalesce(8 * sim::kMicrosecond);
  int notifies = 0;
  nic.set_rx_notify([&](int) { ++notifies; });
  nic.receive(make_frame(5000, 80));
  // The driver polls the queue empty (e.g. an unrelated kick) before the
  // moderated doorbell fires: the doorbell finds nothing and stays silent.
  ASSERT_TRUE(nic.poll_rx(1));
  sim.run_for(8 * sim::kMicrosecond);
  EXPECT_EQ(notifies, 0);
}

TEST_F(NicFixture, WrongMacIsDropped) {
  auto pkt = make_frame(5000, 80);
  // Rewrite the destination MAC.
  auto b = pkt->bytes();
  b[0] = 0x02;
  b[5] = 0x77;
  nic.receive(pkt);
  EXPECT_EQ(nic.stats().rx_dropped_no_match, 1u);
  EXPECT_EQ(nic.rx_depth(0) + nic.rx_depth(1) + nic.rx_depth(2) +
                nic.rx_depth(3),
            0u);
}

TEST_F(NicFixture, QueueOverflowDrops) {
  NicParams p = params();
  p.queue_depth = 4;
  Nic small(sim, net::MacAddr::local(1), kSrvIp, p);
  small.set_active_queues({0});
  for (int i = 0; i < 10; ++i) small.receive(make_frame(5000, 80));
  EXPECT_EQ(small.rx_depth(0), 4u);
  EXPECT_EQ(small.stats().rx_dropped_queue_full, 6u);
}

TEST_F(NicFixture, TrackingFiltersPinFlowsAcrossReconfiguration) {
  NicParams p = params();
  p.tracking_filters = true;
  Nic track(sim, net::MacAddr::local(1), kSrvIp, p);
  track.set_active_queues({0, 1});

  // A SYN establishes the flow on its RSS queue and installs a filter.
  auto syn = make_frame(6000, 80, /*syn=*/true);
  const int q0 = track.classify(*syn);
  track.receive(syn);
  EXPECT_EQ(track.flow_filter_count(), 1u);

  // Reconfigure steering away from this queue; the established flow still
  // lands where its SYN went (lazy termination depends on this).
  track.set_active_queues({q0 == 0 ? 1 : 0});
  auto data = make_frame(6000, 80);
  EXPECT_EQ(track.classify(*data), q0);

  // RST tears the filter down.
  track.receive(make_frame(6000, 80, false, /*rst=*/true));
  EXPECT_EQ(track.flow_filter_count(), 0u);
}

TEST_F(NicFixture, PeekFlowParsesTcpFlags) {
  auto syn = make_frame(7000, 80, true);
  auto flow = Nic::peek_flow(*syn, kSrvIp);
  ASSERT_TRUE(flow);
  EXPECT_TRUE(flow->is_tcp);
  EXPECT_TRUE(flow->syn);
  EXPECT_EQ(flow->key.remote_port, 7000);
  EXPECT_EQ(flow->key.local_port, 80);
  EXPECT_EQ(flow->key.remote_ip, kCliIp);
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

struct LinkFixture : public ::testing::Test {
  LinkFixture()
      : a(sim, net::MacAddr::local(1), kSrvIp, NicParams{}),
        b(sim, net::MacAddr::local(2), kCliIp, NicParams{}),
        link(sim, a, b, link_params()) {}

  static nic::Link::Params link_params() {
    nic::Link::Params p;
    p.bandwidth_gbps = 10.0;
    p.propagation = 500;
    return p;
  }

  net::PacketPtr frame_to_b(std::size_t payload) {
    auto pkt = net::Packet::make(payload);
    net::EthernetHeader eh;
    eh.src = net::MacAddr::local(1);
    eh.dst = net::MacAddr::local(2);
    eh.encode(*pkt);
    return pkt;
  }

  sim::Simulator sim;
  Nic a, b;
  Link link;
};

TEST_F(LinkFixture, DeliversAfterSerializationAndPropagation) {
  sim::SimTime arrival = 0;
  b.set_rx_notify([&](int) { arrival = sim.now(); });
  a.transmit(frame_to_b(1000));
  sim.run();
  // (1014 bytes + 38B overhead) * 8 / 10 = ~842 ns + 500 ns propagation.
  EXPECT_NEAR(static_cast<double>(arrival), 842 + 500, 30);
  EXPECT_EQ(link.frames_delivered(), 1u);
}

TEST_F(LinkFixture, FifoSerializationQueues) {
  std::vector<sim::SimTime> arrivals;
  b.set_rx_notify([&](int) { arrivals.push_back(sim.now()); });
  a.transmit(frame_to_b(1000));
  a.transmit(frame_to_b(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame waits for the first to serialize (~842 ns spacing).
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), 842, 30);
}

TEST_F(LinkFixture, TsoSuperSegmentBillsPerFrameOverhead) {
  std::vector<sim::SimTime> arrivals;
  b.set_rx_notify([&](int) { arrivals.push_back(sim.now()); });

  const sim::SimTime t0 = sim.now();
  a.transmit(frame_to_b(64000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  const sim::SimTime plain = arrivals[0] - t0;

  const sim::SimTime t1 = sim.now();
  auto big = frame_to_b(64000);
  big->tso = true;
  a.transmit(big);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const sim::SimTime tso = arrivals[1] - t1;

  // TSO pays Ethernet overhead per MTU-sized frame: ~43 frames * 38 B at
  // 10G is ~1.3 us of extra wire time over the single giant frame.
  EXPECT_GT(tso, plain + sim::kMicrosecond);
}

TEST_F(LinkFixture, DropAndCorruptInjection) {
  link.set_drop_probability(1.0);
  a.transmit(frame_to_b(100));
  sim.run();
  EXPECT_EQ(link.frames_dropped(), 1u);
  EXPECT_EQ(link.frames_delivered(), 0u);

  link.set_drop_probability(0.0);
  link.set_corrupt_probability(1.0);
  a.transmit(frame_to_b(100));
  sim.run();
  EXPECT_EQ(link.frames_corrupted(), 1u);
  EXPECT_EQ(link.frames_delivered(), 1u);  // corrupted but delivered
}

TEST_F(LinkFixture, FullDuplexDirectionsIndependent) {
  std::vector<sim::SimTime> a_rx, b_rx;
  a.set_rx_notify([&](int) { a_rx.push_back(sim.now()); });
  b.set_rx_notify([&](int) { b_rx.push_back(sim.now()); });
  a.transmit(frame_to_b(1000));
  auto back = net::Packet::make(1000);
  net::EthernetHeader eh;
  eh.src = net::MacAddr::local(2);
  eh.dst = net::MacAddr::local(1);
  eh.encode(*back);
  b.transmit(back);
  sim.run();
  ASSERT_EQ(a_rx.size(), 1u);
  ASSERT_EQ(b_rx.size(), 1u);
  // Neither waited on the other: both arrive at the single-frame latency.
  EXPECT_NEAR(static_cast<double>(a_rx[0]), 842 + 500, 30);
  EXPECT_NEAR(static_cast<double>(b_rx[0]), 842 + 500, 30);
}

}  // namespace
}  // namespace neat::nic
