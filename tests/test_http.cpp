// HTTP codec and FileStore tests, including chunking property tests.
#include <gtest/gtest.h>

#include "apps/http.hpp"
#include "sim/random.hpp"

namespace neat::apps {
namespace {

std::span<const std::uint8_t> bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(HttpRequestParser, ParsesSimpleGet) {
  HttpRequestParser p;
  auto reqs = p.feed(bytes("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].method, "GET");
  EXPECT_EQ(reqs[0].path, "/index.html");
  EXPECT_TRUE(reqs[0].keep_alive);
}

TEST(HttpRequestParser, ConnectionCloseDisablesKeepAlive) {
  HttpRequestParser p;
  auto reqs = p.feed(
      bytes("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_FALSE(reqs[0].keep_alive);
}

TEST(HttpRequestParser, Http10DefaultsToClose) {
  HttpRequestParser p;
  auto reqs = p.feed(bytes("GET / HTTP/1.0\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_FALSE(reqs[0].keep_alive);
  auto reqs2 = p.feed(
      bytes("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
  ASSERT_EQ(reqs2.size(), 1u);
  EXPECT_TRUE(reqs2[0].keep_alive);
}

TEST(HttpRequestParser, PipelinedRequestsInOneChunk) {
  HttpRequestParser p;
  auto reqs = p.feed(bytes("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].path, "/a");
  EXPECT_EQ(reqs[1].path, "/b");
}

TEST(HttpRequestParser, MalformedRequestLineSetsError) {
  HttpRequestParser p;
  p.feed(bytes("NONSENSE\r\n\r\n"));
  EXPECT_TRUE(p.error());
}

TEST(HttpRequestParser, OversizedHeaderSetsError) {
  HttpRequestParser p;
  std::string huge = "GET / HTTP/1.1\r\nX: ";
  huge += std::string(10000, 'a');
  p.feed(bytes(huge));
  EXPECT_TRUE(p.error());
}

class RequestChunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RequestChunking, ArbitrarySegmentationYieldsSameRequests) {
  sim::Rng rng(GetParam());
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    stream += "GET /f" + std::to_string(i) + " HTTP/1.1\r\nHost: s\r\n\r\n";
  }
  HttpRequestParser p;
  std::vector<HttpRequest> all;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(23), stream.size() - off);
    auto got = p.feed(bytes(stream.substr(off, n)));
    all.insert(all.end(), got.begin(), got.end());
    off += n;
  }
  ASSERT_EQ(all.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)].path,
              "/f" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestChunking,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(HttpResponse, BuildAndParseRoundtrip) {
  const std::vector<std::uint8_t> body{'h', 'i'};
  auto resp = build_response(200, body);
  HttpResponseParser p;
  EXPECT_EQ(p.feed(resp), 1u);
  EXPECT_EQ(p.last_status(), 200);
  EXPECT_EQ(p.body_bytes_total(), 2u);
}

TEST(HttpResponse, ErrorResponseHasEmptyBody) {
  auto resp = build_error_response(404);
  HttpResponseParser p;
  EXPECT_EQ(p.feed(resp), 1u);
  EXPECT_EQ(p.last_status(), 404);
  EXPECT_EQ(p.body_bytes_total(), 0u);
}

class ResponseChunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResponseChunking, KeepAliveStreamCountsAllResponses) {
  sim::Rng rng(GetParam());
  std::vector<std::uint8_t> stream;
  std::size_t body_total = 0;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> body(rng.below(300));
    body_total += body.size();
    auto r = build_response(200, body);
    stream.insert(stream.end(), r.begin(), r.end());
  }
  HttpResponseParser p;
  std::size_t complete = 0;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(97), stream.size() - off);
    complete += p.feed(std::span<const std::uint8_t>(stream).subspan(off, n));
    off += n;
  }
  EXPECT_EQ(complete, 10u);
  EXPECT_EQ(p.body_bytes_total(), body_total);
  EXPECT_FALSE(p.error());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseChunking,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(HttpRequestBuilder, RoundtripsThroughParser) {
  auto req = build_request("/file20");
  HttpRequestParser p;
  auto got = p.feed(req);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].path, "/file20");
  EXPECT_TRUE(got[0].keep_alive);
}

TEST(FileStore, DeterministicContent) {
  FileStore fs;
  fs.add("/a", 100);
  fs.add("/b", 0);
  ASSERT_NE(fs.lookup("/a"), nullptr);
  EXPECT_EQ(fs.lookup("/a")->size(), 100u);
  EXPECT_EQ(fs.lookup("/b")->size(), 0u);
  EXPECT_EQ(fs.lookup("/missing"), nullptr);
  FileStore fs2;
  fs2.add("/a", 100);
  EXPECT_EQ(*fs.lookup("/a"), *fs2.lookup("/a"));
}

}  // namespace
}  // namespace neat::apps
