// Application- and harness-level tests: HttpServer behaviours (keep-alive
// limits, 404s, pipelining), LoadGen controls (max_conns, think time), and
// the placement generators that encode the paper's Figures 6, 8 and 10.
#include <gtest/gtest.h>

#include <set>

#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

struct AppsFixture : public ::testing::Test {
  void build(int webs = 1, std::function<void(NeatServerOptions&)> mod = {}) {
    client.reset();  // rigs pin processes to the old testbed's hw threads
    server.reset();
    tb.reset();
    Testbed::Config cfg;
    cfg.seed = 13;
    tb = std::make_unique<Testbed>(cfg);
    NeatServerOptions so;
    so.replicas = 1;
    so.webs = webs;
    so.files = {{"/file20", 20}, {"/big", 4096}};
    if (mod) mod(so);
    server = std::make_unique<ServerRig>(build_neat_server(*tb, so));
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ServerRig> server;
  std::unique_ptr<ClientRig> client;
};

TEST_F(AppsFixture, NotFoundReturns404WithoutKillingTheConnection) {
  build();
  ClientOptions co;
  co.generators = 1;
  co.concurrency_per_gen = 2;
  co.requests_per_conn = 10;
  co.path = "/missing";
  client = std::make_unique<ClientRig>(build_client(*tb, co, 1));
  prepopulate_arp(*server, *client);
  tb->sim.run_for(200 * sim::kMillisecond);
  const auto& r = client->gens[0]->report();
  EXPECT_GT(r.bad_status, 0u) << "404s must flow back as responses";
  EXPECT_GT(server->webs[0]->app_stats().not_found, 0u);
  EXPECT_GT(r.committed_requests, 10u)
      << "keep-alive continues across 404 responses";
}

TEST_F(AppsFixture, KeepAliveLimitClosesConnectionCleanly) {
  build(1, [](NeatServerOptions&) {});
  server->webs[0]->max_requests_per_conn = 5;  // tiny lighttpd limit
  ClientOptions co;
  co.generators = 1;
  co.concurrency_per_gen = 2;
  co.requests_per_conn = 100;  // client wants more than the server allows
  client = std::make_unique<ClientRig>(build_client(*tb, co, 1));
  prepopulate_arp(*server, *client);
  tb->sim.run_for(300 * sim::kMillisecond);
  const auto& r = client->gens[0]->report();
  // The server hangs up after 5 requests; httperf counts those
  // connections as errored (premature close), yet service continues.
  EXPECT_GT(server->webs[0]->app_stats().requests, 50u);
  EXPECT_GT(r.error_conns, 0u);
}

TEST_F(AppsFixture, MaxConnsStopsTheGenerator) {
  build();
  ClientOptions co;
  co.generators = 1;
  co.concurrency_per_gen = 4;
  co.requests_per_conn = 3;
  co.max_conns = 6;
  client = std::make_unique<ClientRig>(build_client(*tb, co, 1));
  prepopulate_arp(*server, *client);
  tb->sim.run_for(400 * sim::kMillisecond);
  const auto& r = client->gens[0]->report();
  EXPECT_EQ(r.clean_conns + r.error_conns, 6u);
  EXPECT_EQ(r.committed_requests, 6u * 3u);
  EXPECT_EQ(client->gens[0]->in_flight_conns(), 0u);
}

TEST_F(AppsFixture, ThinkTimeThrottlesOfferedLoad) {
  auto run_with_think = [&](sim::SimTime think) {
    build();
    ClientOptions co;
    co.generators = 1;
    co.concurrency_per_gen = 4;
    client = std::make_unique<ClientRig>(build_client(*tb, co, 1));
    for (auto& g : client->gens) g->config().think_time = think;
    prepopulate_arp(*server, *client);
    tb->sim.run_for(100 * sim::kMillisecond);
    client->mark();
    tb->sim.run_for(200 * sim::kMillisecond);
    return client->gens[0]->report().committed_requests;
  };
  const auto fast = run_with_think(0);
  const auto slow = run_with_think(2 * sim::kMillisecond);
  // 4 connections at ~2ms/request => ~2k requests/s => ~400 in 200ms.
  EXPECT_LT(slow, fast / 4);
  EXPECT_NEAR(static_cast<double>(slow), 400.0, 200.0);
}

TEST_F(AppsFixture, LargerFilesYieldMultiSegmentResponses) {
  build();
  ClientOptions co;
  co.generators = 1;
  co.concurrency_per_gen = 2;
  co.path = "/big";
  client = std::make_unique<ClientRig>(build_client(*tb, co, 1));
  prepopulate_arp(*server, *client);
  tb->sim.run_for(200 * sim::kMillisecond);
  const auto& r = client->gens[0]->report();
  EXPECT_GT(r.committed_requests, 100u);
  EXPECT_GT(r.committed_bytes, r.committed_requests * 4000u);
  EXPECT_EQ(r.bad_status, 0u);
}

// ---------------------------------------------------------------------------
// Placement generators
// ---------------------------------------------------------------------------

using Slot = Placement::Slot;

std::set<std::pair<int, int>> all_slots(const Placement& p) {
  std::set<std::pair<int, int>> s;
  auto add = [&](const Slot& slot) {
    auto [it, inserted] = s.insert({slot.core, slot.thread});
    EXPECT_TRUE(inserted) << "slot (" << slot.core << "," << slot.thread
                          << ") assigned twice";
  };
  add(p.os);
  if (p.syscall.core != p.os.core || p.syscall.thread != p.os.thread) {
    add(p.syscall);
  }
  add(p.driver);
  for (const auto& r : p.replicas) {
    for (const auto& slot : r) add(slot);
  }
  for (const auto& w : p.webs) add(w);
  return s;
}

TEST(Placements, AmdFigure6LayoutsAreDisjointAndFit) {
  // Figure 6b: OS | SYSCALL | drv | NEaT 1-3 | Web 1-6 on 12 cores.
  const auto single = amd_placement(false, 3, 6);
  const auto slots = all_slots(single);
  EXPECT_EQ(slots.size(), 12u);
  for (const auto& [core, thread] : slots) {
    EXPECT_LT(core, 12);
    EXPECT_EQ(thread, 0);
  }
  // Figure 6a: OS | SYSCALL | drv | TCP1 IP1 TCP2 IP2 | Web 1-5.
  const auto multi = amd_placement(true, 2, 5);
  EXPECT_EQ(all_slots(multi).size(), 12u);
  EXPECT_EQ(multi.replicas[0].size(), 2u);  // TCP + IP pins
}

TEST(Placements, XeonFigure10PacksFourReplicasOnTwoCores) {
  // Figure 10: drv+SYSCALL share a core; 4 replicas on 2 cores (both
  // threads); 9 webs, the last on the OS core's sibling.
  const auto p = xeon_placement(false, 4, 9, /*ht=*/true);
  EXPECT_EQ(p.driver.core, p.syscall.core);
  EXPECT_NE(p.driver.thread, p.syscall.thread);
  std::set<int> replica_cores;
  for (const auto& r : p.replicas) replica_cores.insert(r[0].core);
  EXPECT_EQ(replica_cores.size(), 2u) << "4 replicas pack onto 2 cores";
  EXPECT_EQ(p.webs.size(), 9u);
  EXPECT_EQ(p.webs.back().core, p.os.core)
      << "the 9th lighttpd shares the OS core (Web 9 in Fig. 10)";
  all_slots(p);  // asserts disjointness
}

TEST(Placements, XeonMultiHtColocatesReplicaPairs) {
  // Figure 8c: TCP1+TCP2 on one core's threads, IP1+IP2 on another's.
  const auto p = xeon_placement(true, 2, 8, /*ht=*/true);
  EXPECT_EQ(p.replicas[0][0].core, p.replicas[1][0].core);  // TCPs pair
  EXPECT_EQ(p.replicas[0][1].core, p.replicas[1][1].core);  // IPs pair
  EXPECT_NE(p.replicas[0][0].core, p.replicas[0][1].core);
  all_slots(p);
}

TEST(Placements, XeonWebsFillWholeCoresBeforeSiblings) {
  const auto p = xeon_placement(false, 2, 6, /*ht=*/false);
  // First webs land on thread 0 of distinct free cores.
  std::set<int> first_cores;
  for (int i = 0; i < 4 && i < static_cast<int>(p.webs.size()); ++i) {
    EXPECT_EQ(p.webs[static_cast<std::size_t>(i)].thread, 0);
    first_cores.insert(p.webs[static_cast<std::size_t>(i)].core);
  }
  EXPECT_EQ(first_cores.size(), 4u);
  // Later webs fall back to sibling threads.
  EXPECT_EQ(p.webs[4].thread, 1);
}

}  // namespace
}  // namespace neat::harness
