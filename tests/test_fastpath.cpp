// Tests for the data-path fast paths: SmallFn inline closures, EventQueue
// slot recycling, PacketPool buffer reuse, the ring/sorted-vector TCP
// stream path, and the channel-registry reset hook.
//
// The perf work these cover (see DESIGN.md "Performance engineering") is
// all invisible-by-construction: a recycled buffer must be byte-identical
// to a fresh one, a recycled event slot must never resurrect a cancelled
// closure, and the ring-backed TCP stream must deliver exactly the bytes
// the old map-based implementation did under loss and reordering. These
// tests pin those equivalences down with property-style checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "ipc/channel.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/tcp.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"

namespace neat {
namespace {

// ---------------------------------------------------------------------------
// SmallFn
// ---------------------------------------------------------------------------

TEST(SmallFn, InvokesInlineCapture) {
  int hits = 0;
  sim::SmallFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, DefaultConstructedIsEmpty) {
  sim::SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFn, HeapFallbackPreservesOversizedCapture) {
  // A capture larger than the inline budget must take the heap path and
  // still carry its state faithfully.
  std::array<std::uint64_t, 32> big{};  // 256 bytes > kInlineSize
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  sim::SmallFn fn([big, &sum] {
    for (const auto v : big) sum += v;
  });
  static_assert(sizeof(big) > sim::SmallFn::kInlineSize);
  fn();
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < big.size(); ++i) want += i * 3 + 1;
  EXPECT_EQ(sum, want);
}

TEST(SmallFn, MoveTransfersOwnershipOfCapture) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  sim::SmallFn a([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(alive.expired()) << "closure owns the capture";

  sim::SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(alive.expired());
  b();  // moved-to callable still works

  b.reset();
  EXPECT_TRUE(alive.expired()) << "reset() releases the capture immediately";
}

TEST(SmallFn, MoveAssignDestroysPreviousCapture) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> first_alive = first;
  sim::SmallFn fn([first] {});
  first.reset();
  fn = sim::SmallFn([] {});
  EXPECT_TRUE(first_alive.expired())
      << "assignment must destroy the replaced closure's capture";
  fn();
}

// ---------------------------------------------------------------------------
// EventQueue: generation-checked slot recycling
// ---------------------------------------------------------------------------

TEST(EventQueueFastPath, StaleHandleCannotCancelRecycledSlot) {
  // After an event fires, its slot is recycled for later events. A stale
  // handle to the fired event must be inert: cancelling it must not kill
  // whatever event now occupies the slot.
  sim::EventQueue q;
  std::vector<sim::EventHandle> old;
  int first_fired = 0;
  for (int i = 0; i < 64; ++i) {
    old.push_back(q.schedule_at(10, [&first_fired] { ++first_fired; }));
  }
  q.run();
  ASSERT_EQ(first_fired, 64);

  int second_fired = 0;
  std::vector<sim::EventHandle> fresh;
  for (int i = 0; i < 64; ++i) {
    fresh.push_back(q.schedule(10, [&second_fired] { ++second_fired; }));
  }
  for (auto& h : old) {
    EXPECT_FALSE(h.pending());
    h.cancel();  // must be a no-op against the recycled slots
  }
  q.run();
  EXPECT_EQ(second_fired, 64)
      << "stale cancels must not affect events reusing the slots";
  for (auto& h : fresh) EXPECT_FALSE(h.pending());
}

TEST(EventQueueFastPath, CancelReleasesClosureResourcesImmediately) {
  // Cancellation paths must not pin captured resources (packets!) until
  // the cancelled entry surfaces at the top of the heap.
  sim::EventQueue q;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  auto h = q.schedule_at(1000, [token] {});
  token.reset();
  ASSERT_FALSE(alive.expired());
  h.cancel();
  EXPECT_TRUE(alive.expired())
      << "cancel() must destroy the closure, not wait for the heap pop";
  q.run();
}

TEST(EventQueueFastPath, ExecutedCountsFiredNotCancelled) {
  sim::EventQueue q;
  const auto base = q.executed();
  auto h1 = q.schedule_at(10, [] {});
  auto h2 = q.schedule_at(20, [] {});
  q.post_at(30, [] {});  // fire-and-forget events count too
  h1.cancel();
  q.run();
  EXPECT_EQ(q.executed() - base, 2u);
  EXPECT_FALSE(h2.pending());
}

TEST(EventQueueFastPath, HandleOutlivesQueue) {
  // Handles reference the slot table through a shared_ptr: using one after
  // the queue is gone must be safe (timers owned by sockets routinely
  // outlive the simulator during teardown).
  std::optional<sim::EventQueue> q;
  q.emplace();
  auto h = q->schedule_at(10, [] { FAIL() << "must never fire"; });
  EXPECT_TRUE(h.pending());
  q.reset();  // queue dies with the event still scheduled
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, no crash
}

TEST(EventQueueFastPath, QueueDestructionReleasesPendingClosures) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  {
    sim::EventQueue q;
    q.post_at(1000, [token] {});
    token.reset();
    ASSERT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

// ---------------------------------------------------------------------------
// PacketPool
// ---------------------------------------------------------------------------

TEST(PacketPool, RecycledBufferIndistinguishableFromFresh) {
  net::PacketPool pool;
  net::PacketPool::Use use(pool);

  // Dirty a buffer thoroughly: payload bytes, pushed header bytes, then
  // drop it back to the pool.
  {
    auto p = net::Packet::make(1460);
    std::memset(p->bytes().data(), 0xff, p->size());
    auto hdr = p->push(54);
    std::memset(hdr.data(), 0xee, hdr.size());
  }
  ASSERT_GE(pool.stats().recycled, 1u);

  // The next similarly-sized allocation must reuse it — and look exactly
  // like a fresh zeroed buffer with full headroom.
  auto p = net::Packet::make(1460);
  EXPECT_GE(pool.stats().reused, 1u);
  EXPECT_EQ(p->size(), 1460u);
  EXPECT_TRUE(std::all_of(p->bytes().begin(), p->bytes().end(),
                          [](std::uint8_t b) { return b == 0; }));
  auto hdr = p->push(net::Packet::kDefaultHeadroom);  // full headroom intact
  EXPECT_EQ(hdr.size(), net::Packet::kDefaultHeadroom);
  EXPECT_TRUE(std::all_of(hdr.begin(), hdr.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(PacketPool, OfAndCloneCopyExactBytesThroughThePool) {
  net::PacketPool pool;
  net::PacketPool::Use use(pool);
  std::vector<std::uint8_t> data(997);
  sim::Rng rng(42);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  // Round-trip the same sizes a few times so later iterations hit reuse.
  for (int round = 0; round < 4; ++round) {
    auto p = net::Packet::of(data);
    ASSERT_EQ(p->size(), data.size());
    EXPECT_EQ(std::memcmp(p->bytes().data(), data.data(), data.size()), 0);
    auto c = p->clone();
    ASSERT_EQ(c->size(), data.size());
    EXPECT_EQ(std::memcmp(c->bytes().data(), data.data(), data.size()), 0);
    // Deep copy: mutating the clone must not touch the original.
    c->bytes()[0] ^= 0xff;
    EXPECT_NE(c->bytes()[0], p->bytes()[0]);
  }
  EXPECT_GT(pool.stats().reused, 0u);
}

TEST(PacketPool, UseScopesNestAndRestore) {
  net::PacketPool outer;
  net::PacketPool inner;
  {
    net::PacketPool::Use u1(outer);
    { auto p = net::Packet::make(100); }
    {
      net::PacketPool::Use u2(inner);
      { auto p = net::Packet::make(100); }
    }
    // Back to the outer pool: this reuses outer's recycled buffer.
    { auto p = net::Packet::make(100); }
  }
  EXPECT_EQ(outer.stats().fresh, 1u);
  EXPECT_EQ(outer.stats().reused, 1u);
  EXPECT_EQ(inner.stats().fresh, 1u);
  EXPECT_EQ(inner.stats().reused, 0u);
  // Outside every scope: plain heap, pools untouched.
  { auto p = net::Packet::make(100); }
  EXPECT_EQ(outer.stats().fresh + inner.stats().fresh, 2u);
}

TEST(PacketPool, PooledPacketsOutliveThePoolScope) {
  // A packet allocated under a Use scope may be dropped long after the
  // scope (even the PacketPool) is gone — the shared core keeps the
  // freelist alive until the last packet returns its buffer.
  net::PacketPtr survivor;
  {
    net::PacketPool pool;
    net::PacketPool::Use use(pool);
    survivor = net::Packet::make(256);
  }
  std::memset(survivor->bytes().data(), 0xaa, survivor->size());
  survivor.reset();  // returns the buffer to the (orphaned) core: no crash
}

// ---------------------------------------------------------------------------
// TCP stream property test: ring buffers + sorted ooo vector
// ---------------------------------------------------------------------------

const net::Ipv4Addr kClientIp = net::Ipv4Addr::of(10, 0, 0, 2);
const net::Ipv4Addr kServerIp = net::Ipv4Addr::of(10, 0, 0, 1);

/// Minimal TcpEnv over the bare event queue with loss + jitter, enough to
/// force retransmission (lazy RTO rearming) and reordering (the sorted
/// out-of-order vector) on every seed.
class LossyWire final : public net::TcpEnv {
 public:
  LossyWire(sim::Simulator& sim, std::uint64_t seed, double loss,
            sim::SimTime jitter)
      : sim_(sim), rng_(seed), loss_(loss), jitter_(jitter) {}

  void set_peer(net::TcpStack* peer) { peer_ = peer; }

  sim::SimTime now() override { return sim_.now(); }
  sim::EventHandle start_timer(sim::SimTime delay,
                               std::function<void()> fn) override {
    return sim_.schedule(delay, std::move(fn));
  }
  std::uint32_t random_u32() override {
    return static_cast<std::uint32_t>(rng_());
  }
  void tx(net::PacketPtr segment, net::Ipv4Addr src,
          net::Ipv4Addr dst) override {
    if (rng_.chance(loss_)) return;
    const sim::SimTime delay =
        10 * sim::kMicrosecond + (jitter_ ? rng_.below(jitter_) : 0);
    sim_.schedule(delay, [this, segment, src, dst] {
      if (peer_ != nullptr) peer_->rx(src, dst, segment);
    });
  }

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  double loss_;
  sim::SimTime jitter_;
  net::TcpStack* peer_{nullptr};
};

net::TcpConfig stream_cfg() {
  net::TcpConfig c;
  c.rto_min = 20 * sim::kMillisecond;
  c.rto_initial = 50 * sim::kMillisecond;
  c.delayed_ack = 0;
  c.tso = false;  // per-MSS segments maximise reordering opportunities
  return c;
}

struct StreamOutcome {
  std::uint64_t ooo_segments{0};  ///< receiver-side reassembly events
  std::uint64_t retransmits{0};   ///< sender-side RTO/dup-ack recoveries
};

/// Drive `total` pseudorandom bytes client->server through an impaired
/// wire with random-size writes and reads, and check the received stream
/// is byte-identical to the sent one. Fills `out` (when given) so callers
/// can assert the impairment actually exercised the path under test.
void stream_roundtrip(std::uint64_t seed, double loss, sim::SimTime jitter,
                      std::size_t total, StreamOutcome* out = nullptr) {
  sim::Simulator sim;
  LossyWire cwire(sim, seed * 2 + 1, loss, jitter);
  LossyWire swire(sim, seed * 2 + 2, loss, jitter);
  net::TcpStack client(cwire, kClientIp, stream_cfg());
  net::TcpStack server(swire, kServerIp, stream_cfg());
  cwire.set_peer(&server);
  swire.set_peer(&client);

  sim::Rng rng(seed);
  std::vector<std::uint8_t> sent(total);
  for (auto& b : sent) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> got;
  got.reserve(total);

  net::TcpSocketPtr accepted;
  net::TcpListener* listener = server.listen(80);
  listener->set_accept_ready([&] { accepted = listener->accept(); });
  auto sock = client.connect(net::SockAddr{kServerIp, 80});
  sim.run_for(300 * sim::kMillisecond);
  ASSERT_TRUE(accepted != nullptr) << "handshake failed under seed " << seed;

  std::size_t written = 0;
  std::uint8_t buf[4096];
  // Random interleaving of writes and reads, advanced by sim time so the
  // protocol machinery (acks, retransmits, window updates) runs between.
  while (got.size() < total) {
    if (written < total && rng.chance(0.6)) {
      const std::size_t want =
          std::min<std::size_t>(1 + rng.below(4096), total - written);
      written += sock->send({sent.data() + written, want});
    }
    if (rng.chance(0.7)) {
      std::size_t n = accepted->recv(buf);
      got.insert(got.end(), buf, buf + n);
    }
    sim.run_for(1 + rng.below(2 * sim::kMillisecond));
    ASSERT_LT(sim.now(), 600 * sim::kSecond) << "stream stalled";
  }
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_TRUE(got == sent) << "stream corrupted under seed " << seed;
  if (out != nullptr) {
    out->ooo_segments = server.stats().ooo_segments;
    out->retransmits = sock->retransmits();
  }
}

TEST(TcpStreamProperty, CleanWireDeliversExactStream) {
  stream_roundtrip(/*seed=*/1, /*loss=*/0.0, /*jitter=*/0, 256 * 1024);
}

TEST(TcpStreamProperty, ReorderingWireDeliversExactStream) {
  // Heavy jitter reorders nearly every segment: the sorted ooo_ vector
  // does the reassembly the std::map used to do.
  for (std::uint64_t seed : {11, 12, 13}) {
    StreamOutcome oc;
    stream_roundtrip(seed, /*loss=*/0.0, /*jitter=*/2 * sim::kMillisecond,
                     128 * 1024, &oc);
    EXPECT_GT(oc.ooo_segments, 0u)
        << "jitter must actually reorder segments (seed " << seed << ")";
  }
}

TEST(TcpStreamProperty, LossAndReorderingDeliverExactStream) {
  // Loss exercises the single lazily re-armed RTO timer per socket.
  for (std::uint64_t seed : {21, 22, 23}) {
    StreamOutcome oc;
    stream_roundtrip(seed, /*loss=*/0.05, /*jitter=*/1 * sim::kMillisecond,
                     64 * 1024, &oc);
    EXPECT_GT(oc.retransmits, 0u)
        << "loss must actually force retransmission (seed " << seed << ")";
  }
}

TEST(TcpStreamProperty, CheckpointRestoreResumesMidStream) {
  // Snapshot the server mid-transfer, destroy its state (crash), restore
  // from the snapshot: the stream must complete without corruption. This
  // pins the ring-backed recv path to TcpConnSnapshot's semantics.
  sim::Simulator sim;
  LossyWire cwire(sim, 101, 0.0, 0);
  LossyWire swire(sim, 102, 0.0, 0);
  net::TcpStack client(cwire, kClientIp, stream_cfg());
  net::TcpStack server(swire, kServerIp, stream_cfg());
  cwire.set_peer(&server);
  swire.set_peer(&client);

  sim::Rng rng(7);
  std::vector<std::uint8_t> sent(96 * 1024);
  for (auto& b : sent) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> got;

  net::TcpSocketPtr accepted;
  net::TcpListener* listener = server.listen(80);
  listener->set_accept_ready([&] { accepted = listener->accept(); });
  auto sock = client.connect(net::SockAddr{kServerIp, 80});
  sim.run_for(300 * sim::kMillisecond);
  ASSERT_TRUE(accepted != nullptr);

  std::uint8_t buf[4096];
  auto drain = [&](net::TcpSocket& s) {
    for (std::size_t n = s.recv(buf); n > 0; n = s.recv(buf)) {
      got.insert(got.end(), buf, buf + n);
    }
  };

  // First half, read as it arrives.
  std::size_t written = 0;
  while (written < sent.size() / 2) {
    written += sock->send({sent.data() + written,
                           std::min<std::size_t>(4096, sent.size() / 2 -
                                                           written)});
    sim.run_for(5 * sim::kMillisecond);
    drain(*accepted);
  }
  // Quiesce so the checkpoint and the client agree on stream position.
  sim.run_for(200 * sim::kMillisecond);
  drain(*accepted);

  const net::TcpCheckpoint cp = server.snapshot();
  ASSERT_EQ(cp.conns.size(), 1u);
  server.destroy_all_state();
  auto restored = server.restore(cp);
  ASSERT_EQ(restored.size(), 1u);
  accepted = restored[0];

  // Second half through the restored connection.
  while (got.size() < sent.size()) {
    if (written < sent.size()) {
      written += sock->send(
          {sent.data() + written,
           std::min<std::size_t>(4096, sent.size() - written)});
    }
    sim.run_for(5 * sim::kMillisecond);
    drain(*accepted);
    ASSERT_LT(sim.now(), 600 * sim::kSecond) << "restored stream stalled";
  }
  EXPECT_TRUE(got == sent) << "stream corrupted across checkpoint/restore";
}

TEST(TcpStreamProperty, MigrationPreservesExactStreamUnderLossAndReorder) {
  // Ping-pong the server side of a live transfer between two stacks with
  // extract_for_migration()/adopt() — no quiesce, the wire stays impaired
  // the whole time. Frames in flight toward the old stack hit its
  // migrated-out tombstone and are silently dropped; retransmission must
  // recover them, and the delivered stream must stay byte-exact.
  for (std::uint64_t seed : {31, 32, 33}) {
    sim::Simulator sim;
    const double loss = 0.03;
    const sim::SimTime jitter = 1 * sim::kMillisecond;
    LossyWire cwire(sim, seed * 3 + 1, loss, jitter);
    LossyWire swire_a(sim, seed * 3 + 2, loss, jitter);
    LossyWire swire_b(sim, seed * 3 + 3, loss, jitter);
    net::TcpStack client(cwire, kClientIp, stream_cfg());
    net::TcpStack server_a(swire_a, kServerIp, stream_cfg());
    net::TcpStack server_b(swire_b, kServerIp, stream_cfg());
    cwire.set_peer(&server_a);
    swire_a.set_peer(&client);
    swire_b.set_peer(&client);

    sim::Rng rng(seed);
    std::vector<std::uint8_t> sent(96 * 1024);
    for (auto& b : sent) b = static_cast<std::uint8_t>(rng());
    std::vector<std::uint8_t> got;

    net::TcpSocketPtr accepted;
    net::TcpListener* listener = server_a.listen(80);
    listener->set_accept_ready([&] { accepted = listener->accept(); });
    auto sock = client.connect(net::SockAddr{kServerIp, 80});
    sim.run_for(300 * sim::kMillisecond);
    ASSERT_TRUE(accepted != nullptr) << "handshake failed under seed " << seed;

    net::TcpStack* here = &server_a;
    net::TcpStack* there = &server_b;
    int migrations = 0;
    std::size_t written = 0;
    std::uint8_t buf[4096];
    while (got.size() < sent.size()) {
      if (written < sent.size() && rng.chance(0.6)) {
        const std::size_t want =
            std::min<std::size_t>(1 + rng.below(4096), sent.size() - written);
        written += sock->send({sent.data() + written, want});
      }
      for (std::size_t n = accepted->recv(buf); n > 0;
           n = accepted->recv(buf)) {
        got.insert(got.end(), buf, buf + n);
      }
      if (rng.chance(0.08)) {
        // Mid-stream hand-off, in-flight segments and all.
        const net::TcpCheckpoint cp = here->extract_for_migration();
        ASSERT_EQ(cp.conns.size(), 1u);
        auto adopted = there->adopt(cp);
        ASSERT_EQ(adopted.size(), 1u);
        accepted = adopted[0];
        cwire.set_peer(there);
        std::swap(here, there);
        ++migrations;
      }
      sim.run_for(1 + rng.below(2 * sim::kMillisecond));
      ASSERT_LT(sim.now(), 600 * sim::kSecond)
          << "migrated stream stalled (seed " << seed << ")";
    }
    EXPECT_GT(migrations, 2) << "seed " << seed
                             << " must actually exercise migration";
    ASSERT_EQ(got.size(), sent.size());
    EXPECT_TRUE(got == sent)
        << "stream corrupted across migration (seed " << seed << ")";
  }
}

// ---------------------------------------------------------------------------
// Channel registry reset
// ---------------------------------------------------------------------------

class FakeChannel : public ipc::ChannelBase {
 public:
  FakeChannel() = default;
  [[nodiscard]] const ipc::ChannelStats& channel_stats() const override {
    return stats_;
  }
  [[nodiscard]] std::size_t channel_in_flight() const override { return 0; }
  [[nodiscard]] std::string describe() const override { return "fake"; }

 private:
  ipc::ChannelStats stats_;
};

TEST(ChannelRegistry, ResetClearsAndDestructionStaysSafe) {
  const std::size_t baseline = ipc::channel_registry().size();
  {
    FakeChannel a;
    FakeChannel b;
    EXPECT_EQ(ipc::channel_registry().size(), baseline + 2);
    ipc::channel_registry_reset();
    EXPECT_EQ(ipc::channel_registry().size(), 0u);
    // a and b now destruct with no registry entry: must be a no-op.
  }
  EXPECT_EQ(ipc::channel_registry().size(), 0u);
  {
    FakeChannel c;  // registration works again after a reset
    EXPECT_EQ(ipc::channel_registry().size(), 1u);
  }
  EXPECT_EQ(ipc::channel_registry().size(), 0u);
}

}  // namespace
}  // namespace neat
