// Replica data-path tests beyond TCP: ARP resolution over the wire, ICMP
// echo, UDP delivery (single- and multi-component), IP fragmentation
// through the full path, and the packet filter in the inbound path.
#include <gtest/gtest.h>

#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

struct ReplicaFixture : public ::testing::Test {
  void build(bool multi) {
    client.reset();  // hosts pin processes to the old testbed's hw threads
    server.reset();
    tb.reset();
    Testbed::Config cfg;
    cfg.seed = 31337;
    tb = std::make_unique<Testbed>(cfg);

    NeatHost::Config hc;
    hc.kind = multi ? NeatHost::Config::Kind::kMulti
                    : NeatHost::Config::Kind::kSingle;
    server = std::make_unique<NeatHost>(tb->sim, tb->server_machine,
                                        tb->server_nic, hc);
    server->os_process().pin(tb->server_machine.thread(0));
    server->syscall().pin(tb->server_machine.thread(1));
    server->driver().pin(tb->server_machine.thread(2));
    if (multi) {
      server->add_replica({&tb->server_machine.thread(3),
                           &tb->server_machine.thread(4)});
    } else {
      server->add_replica({&tb->server_machine.thread(3)});
    }

    NeatHost::Config cc;
    client = std::make_unique<NeatHost>(tb->sim, tb->client_machine,
                                        tb->client_nic, cc);
    client->os_process().pin(tb->client_machine.thread(0));
    client->syscall().pin(tb->client_machine.thread(1));
    client->driver().pin(tb->client_machine.thread(2));
    client->add_replica({&tb->client_machine.thread(3)});
  }

  void run(sim::SimTime t = 50 * sim::kMillisecond) { tb->sim.run_for(t); }

  /// Send a UDP datagram from the client replica to the server.
  void send_udp(std::uint16_t sport, std::uint16_t dport,
                std::size_t payload_size) {
    auto& rep = client->replica(0);
    rep.tcp_process().post(2000, [&rep, sport, dport, payload_size] {
      auto pkt = net::Packet::make(payload_size);
      for (std::size_t i = 0; i < payload_size; ++i) {
        pkt->bytes()[i] = static_cast<std::uint8_t>(i);
      }
      net::UdpHeader uh;
      uh.src_port = sport;
      uh.dst_port = dport;
      uh.encode(*pkt, kClientIp, kServerIp);
      rep.ip_layer_ref().send(std::move(pkt), net::IpProto::kUdp, kClientIp,
                              kServerIp);
    });
  }

  void prepopulate() {
    for (std::size_t i = 0; i < server->replica_count(); ++i) {
      server->replica(i).ip_layer_ref().arp().insert(kClientIp,
                                                     net::MacAddr::local(2));
    }
    client->replica(0).ip_layer_ref().arp().insert(kServerIp,
                                                   net::MacAddr::local(1));
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<NeatHost> server;
  std::unique_ptr<NeatHost> client;
};

TEST_F(ReplicaFixture, ArpResolvesOverTheWire) {
  build(false);
  // No static entries: the first IP transmission must trigger real ARP.
  bool resolved = false;
  auto& rep = client->replica(0);
  rep.tcp_process().post(1000, [&] {
    rep.ip_layer_ref().arp().resolve(kServerIp, [&](net::MacAddr m) {
      resolved = true;
      EXPECT_EQ(m, net::MacAddr::local(1));
    });
  });
  run();
  EXPECT_TRUE(resolved);
  // The server side learned the client's mapping from the request.
  EXPECT_EQ(server->replica(0).ip_layer_ref().arp().lookup(kClientIp),
            net::MacAddr::local(2));
}

TEST_F(ReplicaFixture, UdpDatagramReachesBoundPort) {
  for (bool multi : {false, true}) {
    build(multi);
    prepopulate();
    std::size_t got = 0;
    net::SockAddr from{};
    server->replica(0).udp().bind(53, [&](net::UdpMux::Datagram d) {
      got = d.payload->size();
      from = d.from;
    });
    send_udp(9999, 53, 120);
    run();
    EXPECT_EQ(got, 120u) << (multi ? "multi" : "single");
    EXPECT_EQ(from.ip, kClientIp);
    EXPECT_EQ(from.port, 9999);
  }
}

TEST_F(ReplicaFixture, OversizeUdpFragmentsAndReassembles) {
  build(false);
  prepopulate();
  std::size_t got = 0;
  server->replica(0).udp().bind(53, [&](net::UdpMux::Datagram d) {
    got = d.payload->size();
    // Verify content survived fragmentation + reassembly.
    for (std::size_t i = 0; i < d.payload->size(); ++i) {
      ASSERT_EQ(d.payload->bytes()[i], static_cast<std::uint8_t>(i));
    }
  });
  send_udp(9999, 53, 5000);  // > MTU: 4 fragments on the wire
  run();
  EXPECT_EQ(got, 5000u);
  EXPECT_GE(tb->server_nic.stats().rx_frames, 4u);
}

TEST_F(ReplicaFixture, IcmpEchoIsAnswered) {
  build(false);
  prepopulate();
  // Raw ICMP echo from the client replica.
  auto& rep = client->replica(0);
  rep.tcp_process().post(2000, [&rep] {
    auto pkt = net::Packet::make(32);
    net::IcmpMessage m;
    m.type = net::IcmpMessage::Type::kEchoRequest;
    m.ident = 1;
    m.seq = 1;
    m.encode(*pkt);
    rep.ip_layer_ref().send(std::move(pkt), net::IpProto::kIcmp, kClientIp,
                            kServerIp);
  });
  run();
  // The reply comes back to the client NIC (an extra RX frame beyond ARP).
  EXPECT_GE(tb->client_nic.stats().rx_frames, 1u);
  EXPECT_GE(tb->server_nic.stats().tx_frames, 1u);
}

TEST_F(ReplicaFixture, PacketFilterDropsMatchingUdp) {
  build(false);
  prepopulate();
  net::FilterRule drop;
  drop.action = net::FilterRule::Action::kDrop;
  drop.proto = net::IpProto::kUdp;
  drop.dst_port = 53;
  server->replica(0).filter().add_rule(drop);

  int got = 0;
  server->replica(0).udp().bind(53, [&](net::UdpMux::Datagram) { ++got; });
  server->replica(0).udp().bind(54, [&](net::UdpMux::Datagram) { ++got; });
  send_udp(9999, 53, 32);  // dropped
  send_udp(9999, 54, 32);  // passes (different port)
  run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(server->replica(0).filter().rules()[0].hits, 1u);
}

}  // namespace
}  // namespace neat::harness
