// Unit tests for the discrete-event simulator substrate: event queue,
// deterministic RNG, machines, hardware threads and the process model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "sim/process.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace neat::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTimestampFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelledEventDoesNotFire) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  int fires = 0;
  auto h = q.schedule_at(10, [&] { ++fires; });
  q.run();
  EXPECT_EQ(fires, 1);
  h.cancel();  // after fire: no-op
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) q.schedule(10, step);
  };
  q.schedule(10, step);
  q.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    q.schedule_at(t, [&] { ++fired; });
  }
  q.run_until(50);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 50u);
  q.run_until(100);
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  bool fired = false;
  q.schedule_at(50, [&] { fired = true; });  // in the past
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 100u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng a(42);
  Rng s1 = a.split(1);
  Rng s2 = a.split(2);
  Rng s1b = Rng(42).split(1);
  EXPECT_EQ(s1(), s1b());
  EXPECT_NE(s1(), s2());
}

// ---------------------------------------------------------------------------
// Frequency
// ---------------------------------------------------------------------------

TEST(Frequency, DurationRoundsUpNonZeroWork) {
  Frequency f{2.0};
  EXPECT_EQ(f.duration(0), 0u);
  EXPECT_EQ(f.duration(1), 1u);  // 0.5ns rounds to at least 1
  EXPECT_EQ(f.duration(2000), 1000u);
}

TEST(Frequency, SpeedFactorScalesDuration) {
  Frequency f{1.0};
  EXPECT_EQ(f.duration(1000), 1000u);
  EXPECT_EQ(f.duration(1000, 0.5), 2000u);
}

// ---------------------------------------------------------------------------
// Process execution model
// ---------------------------------------------------------------------------

class TestProc : public Process {
 public:
  using Process::Process;
};

TEST(ProcessModel, WorkTakesTime) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};  // 1 cycle == 1 ns
  Machine& m = sim.add_machine(mp);
  TestProc p(sim, "p");
  p.pin(m.thread(0));

  SimTime done_at = 0;
  p.post(1000, [&] { done_at = sim.now(); });
  sim.run();
  // wake latency + resume overhead + 1000 cycles of work
  EXPECT_EQ(done_at, mp.wake_fast_latency + mp.resume_cycles + 1000);
  EXPECT_EQ(p.stats().processing, 1000u);
  EXPECT_EQ(p.stats().wakeups, 1u);
}

TEST(ProcessModel, JobsSerializeFifoPerThread) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  Machine& m = sim.add_machine(mp);
  TestProc p(sim, "p");
  p.pin(m.thread(0));

  std::vector<int> order;
  std::vector<SimTime> times;
  for (int i = 0; i < 3; ++i) {
    p.post(100, [&, i] {
      order.push_back(i);
      times.push_back(sim.now());
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Each 100-cycle job adds 100 ns, strictly serialized.
  EXPECT_EQ(times[1] - times[0], 100u);
  EXPECT_EQ(times[2] - times[1], 100u);
}

TEST(ProcessModel, TwoProcessesShareOneThreadSerially) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  Machine& m = sim.add_machine(mp);
  TestProc a(sim, "a"), b(sim, "b");
  a.pin(m.thread(0));
  b.pin(m.thread(0));

  SimTime a_done = 0, b_done = 0;
  a.post(1000, [&] { a_done = sim.now(); });
  b.post(1000, [&] { b_done = sim.now(); });
  sim.run();
  // b starts only after a finishes.
  EXPECT_GE(b_done, a_done + 1000);
}

TEST(ProcessModel, HyperthreadSiblingsSlowEachOther) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.threads_per_core = 2;
  mp.freq = Frequency{1.0};
  mp.ht_shared_speed = 0.5;
  Machine& m = sim.add_machine(mp);
  TestProc a(sim, "a"), b(sim, "b");
  a.pin(m.thread(0, 0));
  b.pin(m.thread(0, 1));

  // Start a long job on thread 0 first; thread 1's job then begins while
  // its sibling is busy and runs at half speed.
  SimTime b_start = 0, b_done = 0;
  a.post(100000, [] {});
  sim.run_until(mp.wake_fast_latency + 1);  // a's job is now executing
  b.post(1000, [&] { b_done = sim.now(); });
  b_start = sim.now() + mp.wake_fast_latency;
  sim.run();
  EXPECT_EQ(b_done - b_start, 2 * (1000 + mp.resume_cycles))
      << "sibling contention halves speed";
}

TEST(ProcessModel, AloneOnCoreRunsFullSpeed) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 2;
  mp.threads_per_core = 2;
  mp.freq = Frequency{1.0};
  mp.ht_shared_speed = 0.5;
  Machine& m = sim.add_machine(mp);
  TestProc a(sim, "a");
  a.pin(m.thread(0, 0));
  SimTime done = 0;
  a.post(1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, mp.wake_fast_latency + mp.resume_cycles + 1000);
}

TEST(ProcessModel, CrashDropsQueuedWork) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  Machine& m = sim.add_machine(mp);
  TestProc p(sim, "p");
  p.pin(m.thread(0));

  int ran = 0;
  p.post(100, [&] {
    ++ran;
    p.crash();
  });
  p.post(100, [&] { ++ran; });  // queued behind; must die with the crash
  sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(p.crashed());
}

TEST(ProcessModel, PostToCrashedProcessIsDropped) {
  Simulator sim;
  Machine& m = sim.add_machine(MachineParams{});
  TestProc p(sim, "p");
  p.pin(m.thread(0));
  p.crash();
  bool ran = false;
  p.post(10, [&] { ran = true; });
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(ProcessModel, RestartAcceptsNewWorkButNotStaleTimers) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  Machine& m = sim.add_machine(mp);
  TestProc p(sim, "p");
  p.pin(m.thread(0));

  bool stale_fired = false;
  bool fresh_fired = false;
  p.after(1000, 10, [&] { stale_fired = true; });
  sim.run_until(10);
  p.crash();
  p.restart();
  p.post(10, [&] { fresh_fired = true; });
  sim.run();
  EXPECT_FALSE(stale_fired) << "timers from before the crash must not fire";
  EXPECT_TRUE(fresh_fired);
}

TEST(ProcessModel, SuspendAndWakeAreAccounted) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  mp.poll_grace = 1000;  // 1 us
  Machine& m = sim.add_machine(mp);
  TestProc p(sim, "p");
  p.pin(m.thread(0));

  p.post(100, [] {});
  sim.run();  // job + poll grace + suspend
  EXPECT_EQ(p.stats().suspends, 1u);
  EXPECT_EQ(p.stats().polling, 1000u);  // grace burned at 1 cycle/ns
  // Second wake pays another wakeup.
  p.post(100, [] {});
  sim.run();
  EXPECT_EQ(p.stats().wakeups, 2u);
}

TEST(ProcessModel, ColocatedProcessesUseKernelWake) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  Machine& m = sim.add_machine(mp);
  TestProc a(sim, "a"), b(sim, "b");
  a.pin(m.thread(0));
  b.pin(m.thread(0));

  SimTime done = 0;
  a.post(100, [&] { done = sim.now(); });
  sim.run();
  // Shared thread -> kernel-assisted wake: slower than MWAIT and burns
  // kernel cycles.
  EXPECT_GE(done, mp.wake_kernel_latency);
  EXPECT_GE(a.stats().kernel, mp.wake_kernel_cycles);
}

TEST(ProcessModel, FifoPreservedAcrossWakeup) {
  Simulator sim;
  MachineParams mp;
  mp.cores = 1;
  mp.freq = Frequency{1.0};
  Machine& m = sim.add_machine(mp);
  TestProc p(sim, "p");
  p.pin(m.thread(0));

  std::vector<int> order;
  // Both posts land while the process is still waking: order must hold.
  p.post(10, [&] { order.push_back(1); });
  p.post(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Machines
// ---------------------------------------------------------------------------

TEST(MachineModel, PaperTestbedsHavePaperShapes) {
  const auto amd = amd_opteron_6168();
  EXPECT_EQ(amd.cores, 12);
  EXPECT_EQ(amd.threads_per_core, 1);
  EXPECT_DOUBLE_EQ(amd.freq.ghz, 1.9);

  const auto xeon = intel_xeon_e5520();
  EXPECT_EQ(xeon.cores, 8);
  EXPECT_EQ(xeon.threads_per_core, 2);
  EXPECT_DOUBLE_EQ(xeon.freq.ghz, 2.26);
}

TEST(MachineModel, HtSpeedupWithinPhysicalBounds) {
  const auto xeon = intel_xeon_e5520();
  // Two busy siblings must deliver more than one thread but less than two.
  EXPECT_GT(2 * xeon.ht_shared_speed, 1.0);
  EXPECT_LT(2 * xeon.ht_shared_speed, 2.0);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, SummaryMeanMinMax) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Stats, HistogramQuantiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<SimTime>(i * 1000));
  // p50 around 500us, p99 around 990us; log buckets give ~7.5% error.
  EXPECT_NEAR(h.quantile_ns(0.5), 500e3, 500e3 * 0.1);
  EXPECT_NEAR(h.quantile_ns(0.99), 990e3, 990e3 * 0.1);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(Stats, RateMeterWindows) {
  RateMeter m;
  m.mark(0);
  m.record(100);
  EXPECT_DOUBLE_EQ(m.rate(kSecond), 100.0);
  m.mark(kSecond);
  EXPECT_DOUBLE_EQ(m.rate(2 * kSecond), 0.0);
}

}  // namespace
}  // namespace neat::sim
