// End-to-end smoke tests: a full testbed (two machines, NIC, link, NEaT
// stack, HTTP server, load generator) serving real HTTP over real TCP.
#include <gtest/gtest.h>

#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

TEST(Smoke, NeatSingleReplicaServesRequests) {
  Testbed::Config cfg;
  cfg.seed = 42;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.replicas = 1;
  so.webs = 1;
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.stack_replicas = 1;
  co.generators = 1;
  co.concurrency_per_gen = 4;
  co.requests_per_conn = 10;
  ClientRig client = build_client(tb, co, 1);
  prepopulate_arp(server, client);

  const RunResult r = run_window(tb, client, 100 * sim::kMillisecond,
                                 500 * sim::kMillisecond);
  EXPECT_GT(r.requests, 100u) << "server should sustain a request stream";
  EXPECT_EQ(r.error_conns, 0u);
  EXPECT_GT(server.total_requests(), 0u);
}

TEST(Smoke, NeatMultiComponentServesRequests) {
  Testbed::Config cfg;
  cfg.seed = 7;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.multi_component = true;
  so.replicas = 1;
  so.webs = 1;
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.stack_replicas = 1;
  co.generators = 1;
  co.concurrency_per_gen = 4;
  co.requests_per_conn = 10;
  ClientRig client = build_client(tb, co, 1);
  prepopulate_arp(server, client);

  const RunResult r = run_window(tb, client, 100 * sim::kMillisecond,
                                 500 * sim::kMillisecond);
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.error_conns, 0u);
}

TEST(Smoke, LinuxBaselineServesRequests) {
  Testbed::Config cfg;
  cfg.seed = 11;
  Testbed tb(cfg);

  LinuxServerOptions so;
  so.webs = 2;
  ServerRig server = build_linux_server(tb, so);

  ClientOptions co;
  co.stack_replicas = 1;
  co.generators = 2;
  co.concurrency_per_gen = 4;
  co.requests_per_conn = 10;
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  const RunResult r = run_window(tb, client, 100 * sim::kMillisecond,
                                 500 * sim::kMillisecond);
  EXPECT_GT(r.requests, 100u);
  EXPECT_GT(server.total_requests(), 0u);
}

TEST(Smoke, MultipleReplicasSpreadConnections) {
  Testbed::Config cfg;
  cfg.seed = 3;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.replicas = 3;
  so.webs = 2;
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.stack_replicas = 2;
  co.generators = 2;
  co.concurrency_per_gen = 16;
  co.requests_per_conn = 5;  // high connection churn
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  run_window(tb, client, 100 * sim::kMillisecond, 300 * sim::kMillisecond);

  // RSS should have given every replica a share of the accepted conns.
  for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
    EXPECT_GT(server.neat->replica(i).tcp().stats().conns_accepted, 0u)
        << "replica " << i << " never saw a connection";
  }
}

}  // namespace
}  // namespace neat::harness
