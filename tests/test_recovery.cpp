// Reliability tests (paper §3.6, §6.6): crash/restart of stack components,
// isolation between replicas, listener replay, driver recovery, and the
// fault injector's accounting.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

struct RecoveryFixture : public ::testing::Test {
  void build(bool multi, int replicas, int webs = 2) {
    client.reset();  // rigs pin processes to the old testbed's hw threads
    server.reset();
    tb.reset();
    Testbed::Config cfg;
    cfg.seed = 1234;
    tb = std::make_unique<Testbed>(cfg);
    NeatServerOptions so;
    so.multi_component = multi;
    so.replicas = replicas;
    so.webs = webs;
    server = std::make_unique<ServerRig>(build_neat_server(*tb, so));
    ClientOptions co;
    co.generators = webs;
    co.concurrency_per_gen = 16;
    client = std::make_unique<ClientRig>(build_client(*tb, co, webs));
    prepopulate_arp(*server, *client);
    tb->sim.run_for(80 * sim::kMillisecond);  // steady state
  }

  std::uint64_t total_accepted() {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < server->neat->replica_count(); ++i) {
      n += server->neat->replica(i).tcp().stats().conns_accepted;
    }
    return n;
  }

  std::uint64_t client_requests() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().committed_requests;
    return n;
  }

  std::uint64_t client_errors() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().error_conns;
    return n;
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ServerRig> server;
  std::unique_ptr<ClientRig> client;
};

TEST_F(RecoveryFixture, TcpCrashLosesOnlyThatReplicasConnections) {
  build(/*multi=*/true, /*replicas=*/2);
  StackReplica& victim = server->neat->replica(0);
  StackReplica& other = server->neat->replica(1);

  const auto victim_conns = victim.tcp().connection_count();
  const auto other_conns_before = other.tcp().connection_count();
  ASSERT_GT(victim_conns, 0u);
  ASSERT_GT(other_conns_before, 0u);

  // Snapshot the other replica's sockets: they must be untouched.
  std::vector<net::TcpSocket*> other_socks;
  other.tcp().for_each_connection(
      [&](net::TcpSocket& s) { other_socks.push_back(&s); });

  server->neat->inject_crash(victim, Component::kTcp);
  EXPECT_EQ(victim.tcp().connection_count(), 0u)
      << "crash wipes the victim's state";
  EXPECT_EQ(other.tcp().connection_count(), other_conns_before)
      << "isolation: the sibling replica is untouched";
  for (auto* s : other_socks) {
    EXPECT_EQ(s->state(), net::TcpState::kEstablished);
  }

  // Recovery event recorded correctly.
  ASSERT_EQ(server->neat->recovery_log().size(), 1u);
  const auto& ev = server->neat->recovery_log()[0];
  EXPECT_TRUE(ev.tcp_state_lost);
  EXPECT_EQ(ev.connections_lost, victim_conns);
  EXPECT_EQ(ev.component, "tcp");
}

TEST_F(RecoveryFixture, ServiceContinuesThroughTcpCrash) {
  build(true, 2);
  tb->sim.run_for(50 * sim::kMillisecond);
  server->neat->inject_crash(server->neat->replica(0), Component::kTcp);

  const auto accepted_at_crash = total_accepted();
  const auto errors_at_crash = client_errors();
  tb->sim.run_for(300 * sim::kMillisecond);

  // The failed replica's clients saw errors...
  EXPECT_GT(client_errors(), errors_at_crash);
  // ...but service resumed: new connections accepted (including on the
  // restarted replica once it re-announced).
  EXPECT_GT(total_accepted(), accepted_at_crash);
  EXPECT_GT(server->neat->replica(0).tcp().stats().conns_accepted, 0u);

  const auto req_before = client_requests();
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GT(client_requests(), req_before) << "requests keep flowing";
}

TEST_F(RecoveryFixture, IpCrashIsTransparentNoConnectionLoss) {
  build(true, 2);
  StackReplica& victim = server->neat->replica(0);
  const auto conns_before = victim.tcp().connection_count();
  ASSERT_GT(conns_before, 0u);

  const auto errors_before = client_errors();
  server->neat->inject_crash(victim, Component::kIp);
  EXPECT_GE(victim.tcp().connection_count(), conns_before)
      << "TCP state survives an IP component crash";
  ASSERT_EQ(server->neat->recovery_log().size(), 1u);
  EXPECT_FALSE(server->neat->recovery_log()[0].tcp_state_lost);

  // In-flight packets were lost; TCP retransmission covers the gap and no
  // connection errors surface at the application.
  tb->sim.run_for(400 * sim::kMillisecond);
  EXPECT_EQ(client_errors(), errors_before)
      << "IP crash recovery is fully transparent to applications";
  const auto req_before = client_requests();
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GT(client_requests(), req_before);
}

TEST_F(RecoveryFixture, SingleComponentCrashBehavesLikeTcpLoss) {
  build(/*multi=*/false, 2);
  StackReplica& victim = server->neat->replica(1);
  ASSERT_GT(victim.tcp().connection_count(), 0u);
  server->neat->inject_crash(victim, Component::kWhole);
  ASSERT_EQ(server->neat->recovery_log().size(), 1u);
  EXPECT_TRUE(server->neat->recovery_log()[0].tcp_state_lost);
  tb->sim.run_for(200 * sim::kMillisecond);
  EXPECT_GT(victim.tcp().stats().conns_accepted, 0u)
      << "restarted replica accepts new connections (listeners replayed)";
}

TEST_F(RecoveryFixture, DriverCrashRecoversWithoutTcpLoss) {
  build(false, 2);
  const auto conns0 = server->neat->replica(0).tcp().connection_count();
  const auto conns1 = server->neat->replica(1).tcp().connection_count();
  server->neat->inject_driver_crash();
  EXPECT_EQ(server->neat->replica(0).tcp().connection_count(), conns0);
  EXPECT_EQ(server->neat->replica(1).tcp().connection_count(), conns1);

  tb->sim.run_for(400 * sim::kMillisecond);
  const auto req_before = client_requests();
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GT(client_requests(), req_before)
      << "traffic flows again after driver restart";
}

TEST_F(RecoveryFixture, FilterAndUdpCrashesAreTransparent) {
  build(true, 1);
  for (auto comp : {Component::kFilter, Component::kUdp}) {
    const auto errors_before = client_errors();
    const auto conns = server->neat->replica(0).tcp().connection_count();
    server->neat->inject_crash(server->neat->replica(0), comp);
    tb->sim.run_for(150 * sim::kMillisecond);
    EXPECT_EQ(server->neat->replica(0).tcp().connection_count() > 0, true);
    EXPECT_GE(server->neat->replica(0).tcp().connection_count(), conns / 2);
    EXPECT_EQ(client_errors(), errors_before)
        << to_string(comp) << " crash must not surface errors";
  }
}

TEST_F(RecoveryFixture, RepeatedCrashesOfSameReplicaKeepRecovering) {
  build(true, 2);
  for (int round = 0; round < 5; ++round) {
    server->neat->inject_crash(server->neat->replica(0), Component::kTcp);
    tb->sim.run_for(150 * sim::kMillisecond);
    EXPECT_GT(server->neat->replica(0).tcp().stats().conns_accepted, 0u)
        << "round " << round;
  }
  EXPECT_EQ(server->neat->recovery_log().size(), 5u);
}

TEST_F(RecoveryFixture, FaultInjectorClassifiesOutcomes) {
  build(true, 2);
  fault::FaultInjector inj(*server->neat, 42);
  const auto tcp_outcome =
      inj.inject(0, Component::kTcp);
  EXPECT_TRUE(tcp_outcome.tcp_state_lost);
  tb->sim.run_for(100 * sim::kMillisecond);
  const auto ip_outcome = inj.inject(1, Component::kIp);
  EXPECT_FALSE(ip_outcome.tcp_state_lost);
  EXPECT_EQ(ip_outcome.connections_lost, 0u);
}

TEST_F(RecoveryFixture, WeightsMakeTcpTheDominantFault) {
  // The code-size weights must make TCP roughly half of all faults
  // (Table 3 measured 46.2% in the paper; our component sizes give ~54%).
  double total = 0, tcp = 0;
  for (const auto& w : fault::default_weights()) {
    total += w.weight;
    if (w.component == Component::kTcp && !w.is_driver) tcp += w.weight;
  }
  EXPECT_GT(tcp / total, 0.40);
  EXPECT_LT(tcp / total, 0.62);
}

}  // namespace
}  // namespace neat::harness
