// Tests for the paper's extension features implemented beyond the core:
// checkpoint-based stateful recovery (§6.6 discussion), automatic replica
// scaling (§3.4), and the ASLR re-randomization property (§3.8).
#include <gtest/gtest.h>

#include <set>

#include "harness/testbed.hpp"
#include "neat/autoscaler.hpp"

namespace neat::harness {
namespace {

// ---------------------------------------------------------------------------
// Checkpoint-based stateful recovery
// ---------------------------------------------------------------------------

struct CheckpointFixture : public ::testing::Test {
  void build(sim::SimTime interval, int replicas = 2, int webs = 2) {
    // Tear down in dependency order: the rigs pin processes to the old
    // testbed's hardware threads, so they must go before the testbed does.
    client.reset();
    server.reset();
    tb.reset();
    Testbed::Config cfg;
    cfg.seed = 404;
    tb = std::make_unique<Testbed>(cfg);
    NeatServerOptions so;
    so.replicas = replicas;
    so.webs = webs;
    so.host.checkpoint_interval = interval;
    server = std::make_unique<ServerRig>(build_neat_server(*tb, so));
    ClientOptions co;
    co.generators = webs;
    co.concurrency_per_gen = 16;
    co.requests_per_conn = 1000;  // long-lived connections
    client = std::make_unique<ClientRig>(build_client(*tb, co, webs));
    prepopulate_arp(*server, *client);
    tb->sim.run_for(100 * sim::kMillisecond);
  }

  std::uint64_t client_errors() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().error_conns;
    return n;
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ServerRig> server;
  std::unique_ptr<ClientRig> client;
};

TEST_F(CheckpointFixture, SnapshotCapturesEstablishedConnections) {
  build(0);
  auto& tcp = server->neat->replica(0).tcp();
  const auto cp = tcp.snapshot();
  EXPECT_EQ(cp.conns.size(), tcp.active_connection_count());
  EXPECT_GT(cp.bytes(), 0u);
  for (const auto& c : cp.conns) {
    EXPECT_NE(c.flow.remote_ip, net::Ipv4Addr::any());
  }
}

TEST_F(CheckpointFixture, StatefulRecoveryRestoresConnections) {
  build(20 * sim::kMillisecond);
  tb->sim.run_for(100 * sim::kMillisecond);  // several checkpoints taken

  StackReplica& victim = server->neat->replica(0);
  const auto conns_before = victim.tcp().active_connection_count();
  ASSERT_GT(conns_before, 0u);
  const auto errors_before = client_errors();

  server->neat->inject_crash(victim, Component::kWhole);
  tb->sim.run_for(400 * sim::kMillisecond);

  const auto& ev = server->neat->recovery_log().back();
  EXPECT_GT(ev.connections_restored, 0u)
      << "the checkpoint must bring connections back";
  // Most connections survive: with a 20ms checkpoint interval and
  // request/response traffic, few connections diverge irrecoverably.
  EXPECT_LT(client_errors() - errors_before, conns_before)
      << "stateful recovery must save at least some connections";
  // And traffic keeps flowing on the restored replica.
  const auto acc = victim.tcp().stats().conns_accepted;
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GE(victim.tcp().stats().conns_accepted, acc);
}

TEST_F(CheckpointFixture, StatelessRecoveryLosesAllByComparison) {
  build(0);  // checkpointing off: the paper's default
  tb->sim.run_for(100 * sim::kMillisecond);
  StackReplica& victim = server->neat->replica(0);
  const auto conns_before = victim.tcp().active_connection_count();
  ASSERT_GT(conns_before, 0u);
  const auto errors_before = client_errors();
  server->neat->inject_crash(victim, Component::kWhole);
  tb->sim.run_for(300 * sim::kMillisecond);
  EXPECT_EQ(server->neat->recovery_log().back().connections_restored, 0u);
  EXPECT_GE(client_errors() - errors_before, conns_before)
      << "every connection of the failed replica must error out";
}

TEST_F(CheckpointFixture, CheckpointingCostsThroughput) {
  // The §6.6 trade-off: checkpointing "incurs nontrivial run-time
  // overhead, trading off performance for reliability". The cost shows at
  // the stack's saturation point: one replica, enough webs to overload it.
  auto measure = [&](sim::SimTime interval) {
    build(interval, /*replicas=*/1, /*webs=*/4);
    for (auto& g : client->gens) g->mark();
    tb->sim.run_for(300 * sim::kMillisecond);
    std::uint64_t reqs = 0;
    for (auto& g : client->gens) reqs += g->report().committed_requests;
    return reqs;
  };
  const auto without = measure(0);
  const auto with = measure(300 * sim::kMicrosecond);  // aggressive interval
  EXPECT_LT(static_cast<double>(with), static_cast<double>(without) * 0.995)
      << "checkpointing must not be free at the saturation point";
}

// ---------------------------------------------------------------------------
// AutoScaler
// ---------------------------------------------------------------------------

TEST(AutoScaler, ScalesUpUnderLoadAndDownWhenIdle) {
  Testbed::Config cfg;
  cfg.seed = 606;
  cfg.server_nic.tracking_filters = true;  // safe scale-down
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 1;
  so.webs = 4;
  ServerRig server = build_neat_server(tb, so);

  AutoScaler::Policy policy;
  policy.scale_up_threshold = 0.80;
  policy.scale_down_threshold = 0.20;
  AutoScaler scaler(*server.neat,
                    {{&tb.server_machine.thread(5)},
                     {&tb.server_machine.thread(4)}},
                    policy);
  scaler.start();

  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 32;  // enough to saturate one replica
  ClientRig client = build_client(tb, co, 4);
  prepopulate_arp(server, client);

  tb.sim.run_for(600 * sim::kMillisecond);
  EXPECT_GT(scaler.scale_ups(), 0u) << "overload must trigger a spawn";
  EXPECT_GT(server.neat->replica_count(), 1u);
  const auto ups = scaler.scale_ups();

  // Load vanishes: generators stop opening connections.
  for (auto& g : client.gens) g->config().max_conns = 1;
  tb.sim.run_for(1500 * sim::kMillisecond);
  EXPECT_GT(scaler.scale_downs(), 0u)
      << "an idle stack must lazily terminate replicas";
  EXPECT_EQ(scaler.scale_ups(), ups) << "no flapping back up while idle";
}

// ---------------------------------------------------------------------------
// Programmable-NIC offload (§4)
// ---------------------------------------------------------------------------

TEST(SmartNic, OffloadServesTrafficWithoutDriverCycles) {
  Testbed::Config cfg;
  cfg.seed = 909;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.host.smartnic_offload = true;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 2;
  co.concurrency_per_gen = 8;
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);
  const auto r = run_window(tb, client, 100 * sim::kMillisecond,
                            200 * sim::kMillisecond);
  EXPECT_GT(r.requests, 1000u);
  EXPECT_EQ(r.error_conns, 0u);
  // The data plane ran in hardware: the driver process burned (almost) no
  // cycles despite forwarding every packet.
  EXPECT_GT(server.neat->driver().driver_stats().rx_forwarded, 10000u);
  EXPECT_LT(server.neat->driver().stats().processing, 100000u);
}

// ---------------------------------------------------------------------------
// ASLR re-randomization (§3.8)
// ---------------------------------------------------------------------------

TEST(Security, ReplicasHaveDistinctLayoutsRerandomizedOnRestart) {
  Testbed::Config cfg;
  cfg.seed = 707;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 3;
  so.webs = 1;
  ServerRig server = build_neat_server(tb, so);

  std::set<std::uint64_t> layouts;
  for (std::size_t r = 0; r < 3; ++r) {
    layouts.insert(server.neat->replica(r).aslr_layout());
  }
  EXPECT_EQ(layouts.size(), 3u)
      << "semantically equivalent replicas must have different layouts";

  // A restart draws a fresh layout: the attacker's knowledge expires.
  const auto before = server.neat->replica(0).aslr_layout();
  server.neat->inject_crash(server.neat->replica(0), Component::kWhole);
  tb.sim.run_for(100 * sim::kMillisecond);
  EXPECT_NE(server.neat->replica(0).aslr_layout(), before);
}

TEST(Security, ConsecutiveConnectionsSeeUnpredictableLayouts) {
  Testbed::Config cfg;
  cfg.seed = 708;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 4;
  so.webs = 2;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 2;
  co.concurrency_per_gen = 8;
  co.requests_per_conn = 2;  // high connection churn
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);
  tb.sim.run_for(300 * sim::kMillisecond);

  // Across the run, connections landed on many replicas => many layouts.
  std::set<std::uint64_t> layouts_seen;
  for (std::size_t r = 0; r < 4; ++r) {
    if (server.neat->replica(r).tcp().stats().conns_accepted > 0) {
      layouts_seen.insert(server.neat->replica(r).aslr_layout());
    }
  }
  EXPECT_GE(layouts_seen.size(), 3u)
      << "an attacker probing across connections faces shifting layouts";
}

}  // namespace
}  // namespace neat::harness
