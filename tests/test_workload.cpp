// Workload-engine tests: deterministic arrival/size models, open-loop
// coordinated-omission accounting, scenario reproducibility, NIC filter
// retirement on FIN, AutoScaler observability export, the Testbed teardown
// contract, and the connection-churn leak soak.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "harness/testbed.hpp"
#include "socklib/socklib.hpp"
#include "wl/adversary.hpp"
#include "wl/arrival.hpp"
#include "wl/scenario.hpp"
#include "wl/session.hpp"

namespace neat::wl {
namespace {

using harness::build_client;
using harness::build_neat_server;
using harness::ClientOptions;
using harness::ClientRig;
using harness::kBasePort;
using harness::kClientIp;
using harness::kServerIp;
using harness::NeatServerOptions;
using harness::prepopulate_arp;
using harness::ServerRig;
using harness::Testbed;
using harness::TestbedDependent;

// ---------------------------------------------------------------------------
// Arrival models
// ---------------------------------------------------------------------------

std::vector<sim::SimTime> draw(const ArrivalModel& m, std::uint64_t seed,
                               std::size_t n) {
  ArrivalSampler s(m, sim::Rng(seed));
  std::vector<sim::SimTime> out;
  sim::SimTime t = 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(t = s.next_after(t));
  return out;
}

TEST(Arrival, SameSeedSameTrainDifferentSeedDifferent) {
  const auto m = ArrivalModel::poisson(10000.0);
  EXPECT_EQ(draw(m, 7, 500), draw(m, 7, 500));
  EXPECT_NE(draw(m, 7, 500), draw(m, 8, 500));
}

TEST(Arrival, PoissonHitsItsMeanRate) {
  const auto train = draw(ArrivalModel::poisson(10000.0), 3, 20000);
  const double secs = sim::to_seconds(train.back());
  const double rate = 20000.0 / secs;
  EXPECT_NEAR(rate, 10000.0, 500.0);
}

TEST(Arrival, MmppAlternatesBetweenRates) {
  // Burst rate 20x base: the train must contain both sparse and dense
  // stretches — compare gap quantiles.
  const auto m = ArrivalModel::mmpp(1000.0, 20000.0, 50 * sim::kMillisecond,
                                    50 * sim::kMillisecond);
  const auto train = draw(m, 11, 20000);
  std::vector<sim::SimTime> gaps;
  for (std::size_t i = 1; i < train.size(); ++i) {
    gaps.push_back(train[i] - train[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  const auto p10 = gaps[gaps.size() / 10];
  const auto p90 = gaps[gaps.size() * 9 / 10];
  EXPECT_GT(p90, p10 * 8) << "gap spread too small for a 20x MMPP";
}

TEST(Arrival, FlashCrowdRateFollowsRampHoldDecay) {
  auto m = ArrivalModel::flash_crowd(
      1000.0, 50000.0, /*at=*/100 * sim::kMillisecond,
      /*ramp=*/50 * sim::kMillisecond, /*hold=*/200 * sim::kMillisecond,
      /*decay=*/100 * sim::kMillisecond);
  ArrivalSampler s(m, sim::Rng(1));
  EXPECT_DOUBLE_EQ(s.rate_at(50 * sim::kMillisecond), 1000.0);
  EXPECT_NEAR(s.rate_at(125 * sim::kMillisecond), 25500.0, 1.0);  // mid-ramp
  EXPECT_DOUBLE_EQ(s.rate_at(200 * sim::kMillisecond), 50000.0);  // hold
  EXPECT_DOUBLE_EQ(s.rate_at(500 * sim::kMillisecond), 1000.0);   // after
  EXPECT_DOUBLE_EQ(m.max_rate(), 50000.0);
}

// ---------------------------------------------------------------------------
// Size + session models
// ---------------------------------------------------------------------------

TEST(SizeModel, ParetoRespectsBoundsAndIsHeavyTailed) {
  const auto m = SizeModel::pareto(200.0, 1.2, 1 << 20);
  sim::Rng rng(5);
  std::uint64_t total = 0;
  std::size_t biggest = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t s = m.sample(rng);
    ASSERT_GE(s, 200u);
    ASSERT_LE(s, std::size_t{1} << 20);
    total += s;
    biggest = std::max(biggest, s);
  }
  const double mean = static_cast<double>(total) / 20000.0;
  // alpha=1.2, xm=200 -> untruncated mean 1200; truncation pulls it down.
  EXPECT_GT(mean, 400.0);
  EXPECT_GT(biggest, 100'000u) << "no tail: not Pareto";
}

TEST(SizeModel, DeterministicGivenSeed) {
  const auto m = SizeModel::log_normal(9.0, 1.0, 1 << 18);
  sim::Rng a(9);
  sim::Rng b(9);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(m.sample(a), m.sample(b));
}

TEST(SessionModel, GeometricTrainsHaveTheRequestedMean) {
  SessionModel sm;
  sm.requests_per_session = 8;
  sm.geometric = true;
  sim::Rng rng(13);
  std::uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) total += sm.sample_requests(rng);
  EXPECT_NEAR(static_cast<double>(total) / 20000.0, 8.0, 0.5);
}

// ---------------------------------------------------------------------------
// Open-loop scenarios end to end
// ---------------------------------------------------------------------------

Scenario tiny_scenario() {
  Scenario sc;
  sc.name = "tiny";
  sc.seed = 31337;
  sc.replicas = 2;
  sc.warmup = 100 * sim::kMillisecond;
  sc.measure = 200 * sim::kMillisecond;
  TenantSpec web;
  web.name = "web";
  web.arrival = ArrivalModel::poisson(4000.0);
  web.session.requests_per_session = 2;
  web.session.abandon_after = 1 * sim::kSecond;
  web.sizes = SizeModel::fixed_size(512);
  web.slo = 20 * sim::kMillisecond;
  TenantSpec api;
  api.name = "api";
  api.arrival = ArrivalModel::poisson(6000.0);
  api.sizes = SizeModel::fixed_size(128);
  api.slo = 10 * sim::kMillisecond;
  sc.tenants = {web, api};
  return sc;
}

TEST(ScenarioRun, ServesTenantsAndRecordsCoCorrectedLatency) {
  const ScenarioResult r = run_scenario(tiny_scenario());
  ASSERT_EQ(r.tenants.size(), 2u);
  for (const TenantResult& t : r.tenants) {
    EXPECT_GT(t.sessions_started, 100u) << t.name;
    EXPECT_GT(t.requests, 200u) << t.name;
    EXPECT_GT(t.sessions_completed, 0u) << t.name;
    EXPECT_EQ(t.bad_status, 0u) << t.name;
    EXPECT_GT(t.p99_ms, 0.0) << t.name;
    // CO-corrected latency measures from the intended epoch, which never
    // trails the actual send: corrected >= wire-clock, always.
    EXPECT_GE(t.p99_ms, t.raw_p99_ms * 0.9) << t.name;
  }
  EXPECT_GE(r.max_replicas, 2u);
}

TEST(ScenarioRun, IdenticalSeedsReproduceIdenticalRuns) {
  const ScenarioResult a = run_scenario(tiny_scenario());
  const ScenarioResult b = run_scenario(tiny_scenario());
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].sessions_started, b.tenants[i].sessions_started);
    EXPECT_EQ(a.tenants[i].requests, b.tenants[i].requests);
    EXPECT_EQ(a.tenants[i].sessions_completed,
              b.tenants[i].sessions_completed);
    EXPECT_DOUBLE_EQ(a.tenants[i].p999_ms, b.tenants[i].p999_ms);
  }
  Scenario other = tiny_scenario();
  other.seed = 4;
  const ScenarioResult c = run_scenario(other);
  EXPECT_NE(a.tenants[0].requests, c.tenants[0].requests)
      << "different seed should perturb the run";
}

TEST(ScenarioRun, TenantHistogramsLandInTheHub) {
  // The per-tenant latency series must be visible through the obs registry
  // under wl.<tenant>.*, not only in the client's private report — that is
  // what ties workloads into dashboards. Smoke-check via a scenario that
  // also exercises the builtin registry.
  const auto& lib = builtin_scenarios();
  ASSERT_GE(lib.size(), 5u);
  std::set<std::string> names;
  for (const auto& s : lib) names.insert(s.name);
  EXPECT_TRUE(names.contains("flash_crowd"));
  EXPECT_TRUE(names.contains("syn_flood"));
  EXPECT_TRUE(names.contains("churn_storm"));
}

// ---------------------------------------------------------------------------
// NIC tracking-filter retirement on FIN
// ---------------------------------------------------------------------------

TEST(FilterRetirement, FinRetiresTrackingFiltersAfterLinger) {
  Testbed::Config cfg;
  cfg.seed = 2024;
  cfg.server_nic.fin_retire_linger = 800 * sim::kMillisecond;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = true;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 2;
  co.concurrency_per_gen = 8;
  co.requests_per_conn = 5;  // short conns: plenty of FINs
  co.max_conns = 50;         // bounded: the run goes fully idle
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  tb.sim.run_for(400 * sim::kMillisecond);
  const auto filters_at_quiesce = tb.server_nic.flow_filter_count();
  EXPECT_GT(tb.server_nic.stats().filters_installed, 0u);

  // All conns FINished; before the linger elapses filters may remain, but
  // afterwards every one must be retired — a dead flow's filter slot is
  // exactly what a SYN-flood needs to evict live state.
  tb.sim.run_for(1200 * sim::kMillisecond);
  EXPECT_EQ(tb.server_nic.flow_filter_count(), 0u)
      << filters_at_quiesce << " filters at quiesce";
  EXPECT_GT(tb.server_nic.stats().filters_retired, 0u);
}

TEST(FilterRetirement, ShortLingerDoesNotLeakViaStragglerRefault) {
  // Regression: with fin_retire_linger < TIME_WAIT (500ms), the filter
  // retires while the close handshake's stragglers (peer FIN/final ACK)
  // are still arriving. Those used to hit the refault path and re-install
  // the dead flow's filter — which nothing ever retired again. The NIC's
  // dead-flow memory must suppress exactly those refaults.
  Testbed::Config cfg;
  cfg.seed = 2025;
  cfg.server_nic.fin_retire_linger = 100 * sim::kMillisecond;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = true;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 2;
  co.concurrency_per_gen = 8;
  co.requests_per_conn = 5;
  co.max_conns = 50;
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  tb.sim.run_for(400 * sim::kMillisecond);
  EXPECT_GT(tb.server_nic.stats().filters_installed, 0u);

  // Idle long enough for every linger and the dead-flow memory to run out.
  tb.sim.run_for(2500 * sim::kMillisecond);
  EXPECT_EQ(tb.server_nic.flow_filter_count(), 0u)
      << "straggler refaults must not resurrect retired filters";
  EXPECT_GT(tb.server_nic.stats().filters_retired, 0u);
}

// ---------------------------------------------------------------------------
// AutoScaler observability export
// ---------------------------------------------------------------------------

TEST(AutoScalerObs, ExportsGaugesAndCountersToTheHub) {
  Testbed::Config cfg;
  cfg.seed = 606;
  cfg.server_nic.tracking_filters = true;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 1;
  so.webs = 4;
  ServerRig server = build_neat_server(tb, so);

  AutoScaler::Policy policy;
  policy.scale_up_threshold = 0.80;
  policy.scale_down_threshold = 0.20;
  AutoScaler scaler(*server.neat,
                    {{&tb.server_machine.thread(5)},
                     {&tb.server_machine.thread(4)}},
                    policy);
  scaler.start();

  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 32;
  ClientRig client = build_client(tb, co, 4);
  prepopulate_arp(server, client);

  tb.sim.run_for(600 * sim::kMillisecond);
  ASSERT_GT(scaler.scale_ups(), 0u);

  auto& m = tb.sim.metrics();
  const auto* ups = m.find_counter("autoscaler.scale_ups");
  ASSERT_NE(ups, nullptr);
  EXPECT_EQ(ups->value(), scaler.scale_ups());
  const auto* active = m.find_gauge("autoscaler.replicas_active");
  ASSERT_NE(active, nullptr);
  EXPECT_DOUBLE_EQ(active->value(),
                   static_cast<double>(server.neat->active_replicas().size()));
  const auto* census = m.find_gauge("neat.replicas_serving");
  ASSERT_NE(census, nullptr);
  EXPECT_DOUBLE_EQ(census->value(),
                   static_cast<double>(server.neat->serving_replicas().size()));
  ASSERT_NE(m.find_gauge("autoscaler.mean_utilization"), nullptr);
  ASSERT_NE(m.find_gauge("autoscaler.spare_pins"), nullptr);

  // Load vanishes -> scale-down + lazy termination become visible too.
  for (auto& g : client.gens) g->config().max_conns = 1;
  tb.sim.run_for(1500 * sim::kMillisecond);
  const auto* downs = m.find_counter("autoscaler.scale_downs");
  ASSERT_NE(downs, nullptr);
  EXPECT_EQ(downs->value(), scaler.scale_downs());
  EXPECT_GT(downs->value(), 0u);
  const auto* lazy = m.find_counter("neat.lazy_terminations");
  ASSERT_NE(lazy, nullptr);
  EXPECT_GT(lazy->value(), 0u);
}

// ---------------------------------------------------------------------------
// Testbed teardown contract
// ---------------------------------------------------------------------------

TEST(TestbedContract, RigsHoldDependentTokensUntilDestroyed) {
  Testbed tb{Testbed::Config{}};
  EXPECT_EQ(tb.dependent_count(), 0u);
  {
    TestbedDependent t1 = tb.depend();
    TestbedDependent t2 = tb.depend();
    EXPECT_EQ(tb.dependent_count(), 2u);
    TestbedDependent moved = std::move(t1);
    EXPECT_EQ(tb.dependent_count(), 2u) << "move must not double-count";
    t2.release();
    EXPECT_EQ(tb.dependent_count(), 1u);
  }
  EXPECT_EQ(tb.dependent_count(), 0u);
  {
    NeatServerOptions so;
    so.replicas = 1;
    so.webs = 1;
    ServerRig rig = build_neat_server(tb, so);
    EXPECT_EQ(tb.dependent_count(), 1u) << "rigs must register themselves";
  }
  EXPECT_EQ(tb.dependent_count(), 0u)
      << "destroying the rig must release its token";
}

// ---------------------------------------------------------------------------
// Connection-churn soak (run under ASan by scripts/check.sh)
// ---------------------------------------------------------------------------

TEST(ChurnSoak, ThousandsOfOpenCloseCyclesLeakNoSocketsOrFilters) {
  Testbed::Config cfg;
  cfg.seed = 777;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 1;
  so.tracking_filters = true;
  ServerRig server = build_neat_server(tb, so);

  struct ClientSide {
    TestbedDependent token;
    std::unique_ptr<NeatHost> host;
    std::unique_ptr<ChurnStorm> storm;
  } cs;
  cs.token = tb.depend();
  NeatHost::Config hc;
  // 6000 conns through a 16k ephemeral pool: TIME_WAIT reuse is load-
  // bearing here, exactly like the stock client rig (tcp_tw_reuse).
  hc.tcp.time_wait = 50 * sim::kMillisecond;
  cs.host = std::make_unique<NeatHost>(tb.sim, tb.client_machine,
                                       tb.client_nic, hc);
  cs.host->os_process().pin(tb.client_machine.thread(0));
  cs.host->syscall().pin(tb.client_machine.thread(1));
  cs.host->driver().pin(tb.client_machine.thread(2));
  cs.host->add_replica({&tb.client_machine.thread(3)});
  cs.host->add_replica({&tb.client_machine.thread(4)});

  ChurnStorm::Config cc;
  cc.server = net::SockAddr{kServerIp, kBasePort};
  cc.rate = 20000.0;
  cc.request_before_close = true;
  cs.storm = std::make_unique<ChurnStorm>(tb.sim, "churn", cc);
  cs.storm->pin(tb.client_machine.thread(5));
  cs.storm->attach_api(
      std::make_unique<socklib::SockLib>(*cs.storm, *cs.host));

  for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
    server.neat->replica(i).ip_layer_ref().arp().insert(
        kClientIp, net::MacAddr::local(2));
  }
  for (std::size_t i = 0; i < cs.host->replica_count(); ++i) {
    cs.host->replica(i).ip_layer_ref().arp().insert(kServerIp,
                                                    net::MacAddr::local(1));
  }

  cs.storm->start();
  tb.sim.run_for(300 * sim::kMillisecond);
  cs.storm->stop();
  EXPECT_GT(cs.storm->stats().opened, 3000u) << "storm too feeble to soak";

  // Drain: in-flight closes, TIME_WAIT (500ms server side), and the NIC
  // FIN-retirement linger (1s) must all run out, leaving *nothing*.
  tb.sim.run_for(1800 * sim::kMillisecond);
  EXPECT_EQ(cs.storm->in_flight(), 0u);
  auto& lib = static_cast<socklib::SockLib&>(cs.storm->api());
  EXPECT_EQ(lib.open_sockets(), 0u) << "leaked client sockets";
  for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
    EXPECT_EQ(server.neat->replica(i).tcp().active_connection_count(), 0u)
        << "server replica " << i << " leaked connections";
  }
  for (std::size_t i = 0; i < cs.host->replica_count(); ++i) {
    EXPECT_EQ(cs.host->replica(i).tcp().active_connection_count(), 0u)
        << "client replica " << i << " leaked connections";
  }
  EXPECT_EQ(tb.server_nic.flow_filter_count(), 0u)
      << "leaked NIC tracking filters";
  EXPECT_GT(tb.server_nic.stats().filters_retired, 1000u)
      << "retirement path barely exercised";
}

}  // namespace
}  // namespace neat::wl
