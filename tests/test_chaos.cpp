// Chaos-layer tests: link impairments, watchdog-driven crash detection,
// supervised restarts with exponential backoff, quarantine of crash-looping
// replicas, crash-during-lazy-termination, and the randomized fault
// campaign's end-of-run invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/chaos.hpp"
#include "harness/testbed.hpp"
#include "ipc/channel.hpp"

namespace neat::harness {
namespace {

struct ChaosFixture : public ::testing::Test {
  void build(bool multi, int replicas, nic::LinkImpairment imp = {},
             int webs = 2) {
    // Rebuilding mid-test: tear the previous rig down in reverse order —
    // processes unpin from their simulator's machines on destruction, so
    // the Testbed must outlive them.
    client.reset();
    server.reset();
    tb.reset();
    Testbed::Config cfg;
    cfg.seed = 777;
    cfg.link.impairment = imp;
    tb = std::make_unique<Testbed>(cfg);
    NeatServerOptions so;
    so.multi_component = multi;
    so.replicas = replicas;
    so.webs = webs;
    so.files = {{"/file512", 512}};
    // Per-flow tracking filters (§3.4): existing connections keep their
    // replica across re-steering, so lazy termination drains cleanly.
    so.tracking_filters = true;
    server = std::make_unique<ServerRig>(build_neat_server(*tb, so));
    ClientOptions co;
    co.generators = webs;
    co.concurrency_per_gen = 12;
    co.requests_per_conn = 20;  // recycle conns briskly: steady SYN flow
    co.path = "/file512";
    client = std::make_unique<ClientRig>(build_client(*tb, co, webs));
    prepopulate_arp(*server, *client);
    const auto* body = server->files->lookup("/file512");
    for (auto& g : client->gens) g->config().expect_body = body;
    tb->sim.run_for(80 * sim::kMillisecond);  // steady state
  }

  NeatHost& host() { return *server->neat; }

  std::uint64_t client_requests() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().committed_requests;
    return n;
  }

  std::uint64_t payload_mismatches() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().payload_mismatches;
    return n;
  }

  /// Step the sim in small increments until the component is back up
  /// (bounded); returns true on recovery.
  bool run_until_recovered(StackReplica& r, Component c,
                           sim::SimTime limit = 500 * sim::kMillisecond) {
    sim::Process* p = r.component(c);
    for (sim::SimTime t = 0; t < limit; t += sim::kMillisecond) {
      if (!p->crashed()) return true;
      tb->sim.run_for(sim::kMillisecond);
    }
    return !p->crashed();
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ServerRig> server;
  std::unique_ptr<ClientRig> client;
};

TEST_F(ChaosFixture, ImpairedLinkExercisesTcpRobustnessWithoutCorruption) {
  nic::LinkImpairment imp;
  imp.drop_probability = 0.01;
  imp.corrupt_probability = 0.005;
  imp.duplicate_probability = 0.01;
  imp.reorder_probability = 0.05;
  imp.reorder_window = 150 * sim::kMicrosecond;
  imp.jitter = 10 * sim::kMicrosecond;
  build(/*multi=*/false, /*replicas=*/2, imp);
  tb->sim.run_for(400 * sim::kMillisecond);

  // The impairments actually fired...
  EXPECT_GT(tb->link.frames_dropped(), 0u);
  EXPECT_GT(tb->link.frames_corrupted(), 0u);
  EXPECT_GT(tb->link.frames_duplicated(), 0u);
  EXPECT_GT(tb->link.frames_reordered(), 0u);

  // ...TCP's machinery absorbed them...
  std::uint64_t retransmits = 0;
  std::uint64_t checksum_drops = 0;
  for (std::size_t i = 0; i < host().replica_count(); ++i) {
    retransmits += host().replica(i).tcp().stats().retransmits;
    checksum_drops += host().replica(i).tcp().stats().checksum_drops;
  }
  EXPECT_GT(retransmits, 0u) << "drops must trigger retransmission";
  EXPECT_GT(checksum_drops, 0u) << "corruption must be caught by checksums";
  // The detection is also visible on the obs hub, where chaos campaign
  // reports read it. The counter aggregates every stack sharing the sim's
  // registry (client side included), so it is at least the server-side sum.
  EXPECT_GE(tb->sim.metrics().counter("tcp.checksum_drops").value(),
            checksum_drops);

  // ...and not one corrupted byte reached an application.
  EXPECT_GT(client_requests(), 0u);
  EXPECT_EQ(payload_mismatches(), 0u);
}

TEST_F(ChaosFixture, WatchdogDetectsCrashWithinBoundAndRestarts) {
  build(false, 2);
  StackReplica& victim = host().replica(0);
  host().inject_crash(victim, Component::kWhole);
  EXPECT_TRUE(victim.tcp_process().crashed());

  ASSERT_TRUE(run_until_recovered(victim, Component::kWhole));
  ASSERT_EQ(host().recovery_log().size(), 1u);
  const auto& ev = host().recovery_log()[0];
  const auto& sup = host().supervisor().config();
  EXPECT_GT(ev.detected_at, ev.at) << "detection is observed, not assumed";
  EXPECT_LE(ev.detection_latency(),
            sup.watchdog_timeout + 2 * sup.heartbeat_period);
  EXPECT_GT(ev.recovered_at, ev.detected_at);
  EXPECT_EQ(ev.action, "restart");
  EXPECT_EQ(ev.backoff_level, 0);
  EXPECT_EQ(host().supervisor().stats().detections, 1u);
  EXPECT_EQ(host().supervisor().stats().restarts, 1u);

  // Restarted replica serves again.
  const auto accepted = victim.tcp().stats().conns_accepted;
  tb->sim.run_for(150 * sim::kMillisecond);
  EXPECT_GT(victim.tcp().stats().conns_accepted, accepted);
}

TEST_F(ChaosFixture, CrashWhileDownNeverDoubleSchedulesRestart) {
  build(false, 2);
  StackReplica& victim = host().replica(0);
  host().inject_crash(victim, Component::kWhole);
  // Immediately again, before detection...
  host().inject_crash(victim, Component::kWhole);
  EXPECT_EQ(host().recovery_log().size(), 1u);

  // ...and once more inside the explicit pending-restart window.
  tb->sim.run_for(25 * sim::kMillisecond);  // watchdog has fired by now
  EXPECT_TRUE(
      host().supervisor().restart_pending(victim, Component::kWhole));
  host().inject_crash(victim, Component::kWhole);
  EXPECT_EQ(host().recovery_log().size(), 1u);

  ASSERT_TRUE(run_until_recovered(victim, Component::kWhole));
  EXPECT_EQ(host().supervisor().stats().restarts, 1u)
      << "exactly one restart for any number of redundant injects";
  EXPECT_FALSE(
      host().supervisor().restart_pending(victim, Component::kWhole));

  // Same guard on the driver path.
  host().inject_driver_crash();
  host().inject_driver_crash();
  tb->sim.run_for(25 * sim::kMillisecond);
  EXPECT_TRUE(host().supervisor().driver_restart_pending());
  host().inject_driver_crash();
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_FALSE(host().driver().crashed());
  EXPECT_EQ(host().supervisor().stats().driver_restarts, 1u);
}

TEST_F(ChaosFixture, DriverCrashIsDetectedAndRestartedBySupervisor) {
  build(false, 2);
  host().inject_driver_crash();
  EXPECT_TRUE(host().driver().crashed());
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_FALSE(host().driver().crashed());
  EXPECT_EQ(host().driver().driver_stats().restarts, 1u);
  ASSERT_EQ(host().recovery_log().size(), 1u);
  const auto& ev = host().recovery_log()[0];
  EXPECT_EQ(ev.component, "nicdrv");
  EXPECT_GT(ev.detected_at, ev.at);
  EXPECT_GT(ev.recovered_at, 0u);

  const auto req = client_requests();
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GT(client_requests(), req) << "traffic flows after driver restart";
}

TEST_F(ChaosFixture, ReplicaAnnounceLostToDriverCrashIsRepairedOnRecovery) {
  build(false, 2);
  StackReplica& victim = host().replica(0);
  const int q = victim.queue();

  // Replica dies; its endpoint goes dark until it re-announces.
  host().inject_crash(victim, Component::kWhole);
  EXPECT_FALSE(host().driver().endpoint_active(q));

  // The driver dies before the replica's recovery announce (a control op
  // posted on the driver process) can execute: the announce is lost,
  // because work posted to a crashed process is silently dropped.
  host().inject_driver_crash();
  host().recover_replica(victim, Component::kWhole);
  tb->sim.run_for(1 * sim::kMillisecond);
  EXPECT_FALSE(victim.tcp_process().crashed());
  EXPECT_FALSE(host().driver().endpoint_active(q))
      << "announce posted to a crashed driver must not take effect";

  // Driver recovery must repair the endpoint — otherwise a live steering
  // entry keeps pointing at a queue the driver silently drops, forever.
  host().recover_driver();
  tb->sim.run_for(1 * sim::kMillisecond);
  EXPECT_TRUE(host().driver().endpoint_active(q));
}

TEST_F(ChaosFixture, RapidCrashLoopEscalatesBackoff) {
  build(false, 2);
  StackReplica& victim = host().replica(0);
  for (int round = 0; round < 3; ++round) {
    host().inject_crash(victim, Component::kWhole);
    ASSERT_TRUE(run_until_recovered(victim, Component::kWhole))
        << "round " << round;
    // Re-crash immediately: uptime stays below the stability window.
  }
  ASSERT_EQ(host().recovery_log().size(), 3u);
  const auto& log = host().recovery_log();
  EXPECT_EQ(log[0].backoff_level, 0);
  EXPECT_EQ(log[1].backoff_level, 1);
  EXPECT_EQ(log[2].backoff_level, 2);
  // The applied delay (recovered - detected) must actually grow.
  const auto delay1 = log[1].recovered_at - log[1].detected_at;
  const auto delay2 = log[2].recovered_at - log[2].detected_at;
  EXPECT_GT(delay2, delay1);
  EXPECT_EQ(host().supervisor().stats().max_backoff_level, 2);

  // A stable stretch resets the loop counter.
  tb->sim.run_for(200 * sim::kMillisecond);  // > stability_window uptime
  host().inject_crash(victim, Component::kWhole);
  ASSERT_TRUE(run_until_recovered(victim, Component::kWhole));
  EXPECT_EQ(host().recovery_log().back().backoff_level, 0)
      << "stability window resets the consecutive-crash counter";
}

TEST_F(ChaosFixture, CrashLoopingReplicaIsQuarantinedAndReplaced) {
  build(false, 2);
  StackReplica& victim = host().replica(0);
  const auto replicas_before = host().replica_count();
  const int quarantine_after = host().supervisor().config().quarantine_after;

  for (int round = 0; round < quarantine_after; ++round) {
    ASSERT_FALSE(victim.quarantined) << "round " << round;
    host().inject_crash(victim, Component::kWhole);
    if (round + 1 < quarantine_after) {
      ASSERT_TRUE(run_until_recovered(victim, Component::kWhole))
          << "round " << round;
    }
  }
  // The final crash must be detected and answered with quarantine.
  tb->sim.run_for(50 * sim::kMillisecond);
  EXPECT_TRUE(victim.quarantined);
  EXPECT_TRUE(victim.terminated);
  for (auto* p : victim.processes()) EXPECT_TRUE(p->crashed());
  EXPECT_EQ(host().supervisor().stats().quarantines, 1u);

  // A replacement replica took its place on the same pins.
  ASSERT_EQ(host().replica_count(), replicas_before + 1);
  EXPECT_EQ(host().supervisor().stats().replacements, 1u);
  StackReplica& sub = host().replica(replicas_before);
  EXPECT_FALSE(sub.tcp_process().crashed());
  EXPECT_EQ(host().recovery_log().back().action, "replace");

  // Quarantined replica is out of every serving structure; the
  // replacement is steered to and serves.
  const auto serving = host().serving_replicas();
  EXPECT_EQ(std::count(serving.begin(), serving.end(), &victim), 0);
  const auto& ind = host().nic().indirection();
  EXPECT_EQ(std::count(ind.begin(), ind.end(), victim.queue()), 0)
      << "quarantined replica must leave the steering table";
  EXPECT_GT(std::count(ind.begin(), ind.end(), sub.queue()), 0);
  tb->sim.run_for(200 * sim::kMillisecond);
  EXPECT_GT(sub.tcp().stats().conns_accepted, 0u)
      << "replacement accepts connections (listeners replayed onto it)";
}

TEST_F(ChaosFixture, CrashDuringLazyTerminationNeverRejoinsSteering) {
  build(false, 2);
  StackReplica& victim = host().replica(0);
  host().begin_scale_down(victim);
  ASSERT_TRUE(victim.terminating);
  ASSERT_FALSE(victim.terminated);

  // Crash it immediately, mid-drain: TCP state is gone, so there is
  // nothing left to drain — the supervisor must collect it, not restart
  // it into service.
  host().inject_crash(victim, Component::kWhole);
  tb->sim.run_for(100 * sim::kMillisecond);
  const auto& ind = host().nic().indirection();
  EXPECT_TRUE(victim.terminated) << "collected, not restarted into service";
  EXPECT_EQ(host().recovery_log().back().action, "gc");
  EXPECT_GT(host().recovery_log().back().detected_at, 0u);
  EXPECT_EQ(host().supervisor().stats().scale_down_collects, 1u);
  EXPECT_EQ(std::count(ind.begin(), ind.end(), victim.queue()), 0)
      << "never re-enters active steering";

  // Service continues on the survivor.
  const auto req = client_requests();
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GT(client_requests(), req);
}

TEST_F(ChaosFixture, NonTcpCrashDuringLazyTerminationRestartsToFinishDrain) {
  build(/*multi=*/true, 2);
  StackReplica& victim = host().replica(0);
  host().begin_scale_down(victim);
  tb->sim.run_for(5 * sim::kMillisecond);  // control op reaches the NIC
  ASSERT_FALSE(victim.terminated) << "still draining";
  ASSERT_GT(victim.tcp().connection_count(), 0u);

  // An IP crash loses no TCP state: the drainer is restarted so surviving
  // connections can finish, and the GC collects it once they do.
  host().inject_crash(victim, Component::kIp);
  ASSERT_TRUE(run_until_recovered(victim, Component::kIp));
  EXPECT_EQ(host().recovery_log().back().action, "restart");
  EXPECT_FALSE(host().recovery_log().back().tcp_state_lost);

  const auto& ind = host().nic().indirection();
  EXPECT_EQ(std::count(ind.begin(), ind.end(), victim.queue()), 0)
      << "restarted drainer stays out of steering";
  tb->sim.run_for(1500 * sim::kMillisecond);
  EXPECT_TRUE(victim.terminated) << "drained and collected by the GC";
}

TEST_F(ChaosFixture, DeterministicCampaignHoldsAllInvariants) {
  nic::LinkImpairment lossy;
  lossy.drop_probability = 0.01;  // the acceptance floor: >=1% loss
  lossy.reorder_probability = 0.02;
  lossy.reorder_window = 100 * sim::kMicrosecond;
  build(false, 3, lossy, /*webs=*/3);

  fault::ChaosConfig cc;
  cc.seed = 31337;
  cc.duration = 600 * sim::kMillisecond;
  cc.mean_fault_gap = 40 * sim::kMillisecond;
  fault::ChaosCampaign campaign(host(), tb->link, cc);
  campaign.start();
  tb->sim.run_for(campaign.span() + 50 * sim::kMillisecond);

  const auto& rep = campaign.audit();
  EXPECT_TRUE(rep.passed()) << [&] {
    std::string all;
    for (const auto& v : rep.violations) all += v + "\n";
    return all;
  }();
  EXPECT_GE(rep.faults_injected, 5u);
  // At least the three required fault families ran: replica crashes,
  // driver crashes, and the link stayed lossy throughout.
  EXPECT_GT(rep.replica_crashes + rep.crash_storms + rep.handshake_crashes,
            0u);
  EXPECT_GT(rep.driver_crashes + rep.concurrent_faults, 0u);
  EXPECT_GT(tb->link.frames_dropped(), 0u);

  // Workload survived with intact payloads.
  EXPECT_GT(client_requests(), 0u);
  EXPECT_EQ(payload_mismatches(), 0u);

  // Every recovery event carries full supervision forensics.
  for (const auto& ev : host().recovery_log()) {
    EXPECT_GT(ev.detected_at, 0u);
    EXPECT_GT(ev.recovered_at, 0u);
    EXPECT_GE(ev.backoff_level, 0);
  }
}

TEST_F(ChaosFixture, CampaignIsDeterministicPerSeed) {
  auto run_one = [](std::size_t& faults, std::size_t& log_size) {
    Testbed::Config cfg;
    cfg.seed = 99;
    cfg.link.impairment.drop_probability = 0.01;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 2;
    so.webs = 2;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 2;
    co.concurrency_per_gen = 8;
    ClientRig client = build_client(tb, co, 2);
    prepopulate_arp(server, client);
    tb.sim.run_for(60 * sim::kMillisecond);
    fault::ChaosConfig cc;
    cc.seed = 7;
    cc.duration = 300 * sim::kMillisecond;
    cc.mean_fault_gap = 30 * sim::kMillisecond;
    fault::ChaosCampaign campaign(*server.neat, tb.link, cc);
    campaign.start();
    tb.sim.run_for(campaign.span());
    faults = campaign.report().faults_injected;
    log_size = server.neat->recovery_log().size();
  };
  std::size_t f1 = 0, l1 = 0, f2 = 0, l2 = 0;
  run_one(f1, l1);
  run_one(f2, l2);
  EXPECT_GT(f1, 0u);
  EXPECT_EQ(f1, f2) << "same seeds -> same fault schedule";
  EXPECT_EQ(l1, l2) << "same seeds -> same recovery history";
}

TEST_F(ChaosFixture, ChannelAccountingInvariantHoldsAcrossChaosSeeds) {
  // Every message a channel ever accepts must be classified as exactly one
  // of delivered / dropped_full / dropped_dead — crashes, restarts and
  // rebinds included. Sweep several campaign seeds; after each campaign,
  // stop the load and let in-flight traffic drain so the books can balance.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    nic::LinkImpairment lossy;
    lossy.drop_probability = 0.01;
    build(false, 3, lossy, /*webs=*/3);

    fault::ChaosConfig cc;
    cc.seed = seed;
    cc.duration = 400 * sim::kMillisecond;
    cc.mean_fault_gap = 35 * sim::kMillisecond;
    fault::ChaosCampaign campaign(host(), tb->link, cc);
    campaign.start();
    tb->sim.run_for(campaign.span() + 50 * sim::kMillisecond);

    // Quiesce: no new connections, existing ones finish and close, then
    // everything still in transfer latency lands and gets classified.
    for (auto& g : client->gens) g->config().max_conns = 1;
    tb->sim.run_for(1000 * sim::kMillisecond);

    std::uint64_t total_sent = 0;
    for (const ipc::ChannelBase* ch : ipc::channel_registry()) {
      const auto& s = ch->channel_stats();
      EXPECT_EQ(s.sent, s.delivered + s.dropped_full + s.dropped_dead)
          << "seed " << seed << ": " << ch->describe() << " leaked "
          << (s.sent - s.delivered - s.dropped_full - s.dropped_dead)
          << " messages";
      total_sent += s.sent;
    }
    EXPECT_GT(total_sent, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace neat::harness
