// Scaling tests (paper §3.4): spawning replicas under load, NIC steering
// updates, and lazy termination (scale-down without breaking connections).
#include <gtest/gtest.h>

#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

struct ScalingFixture : public ::testing::Test {
  void build(bool tracking_filters, int replicas = 1) {
    client.reset();  // rigs pin processes to the old testbed's hw threads
    server.reset();
    tb.reset();
    Testbed::Config cfg;
    cfg.seed = 555;
    cfg.server_nic.tracking_filters = tracking_filters;
    tb = std::make_unique<Testbed>(cfg);
    NeatServerOptions so;
    so.replicas = replicas;
    so.webs = 2;
    server = std::make_unique<ServerRig>(build_neat_server(*tb, so));
    ClientOptions co;
    co.generators = 2;
    co.concurrency_per_gen = 16;
    co.requests_per_conn = 50;
    client = std::make_unique<ClientRig>(build_client(*tb, co, 2));
    prepopulate_arp(*server, *client);
  }

  std::uint64_t client_errors() {
    std::uint64_t n = 0;
    for (auto& g : client->gens) n += g->report().error_conns;
    return n;
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<ServerRig> server;
  std::unique_ptr<ClientRig> client;
};

TEST_F(ScalingFixture, ScaleUpSpreadsNewConnections) {
  build(/*tracking_filters=*/true, /*replicas=*/1);
  tb->sim.run_for(100 * sim::kMillisecond);
  ASSERT_GT(server->neat->replica(0).tcp().stats().conns_accepted, 0u);

  // Overload detected: spawn a second replica on a free core.
  StackReplica& r2 =
      server->neat->add_replica({&tb->server_machine.thread(4)});
  EXPECT_EQ(server->neat->replica_count(), 2u);
  tb->sim.run_for(300 * sim::kMillisecond);

  // The new replica serves a share of the *new* connections (subsocket
  // replication put the listeners there automatically).
  EXPECT_GT(r2.tcp().stats().conns_accepted, 0u);
  EXPECT_EQ(client_errors(), 0u);
}

TEST_F(ScalingFixture, ExistingConnectionsStayPutAcrossScaleUp) {
  build(true, 1);
  tb->sim.run_for(100 * sim::kMillisecond);

  // Snapshot flows owned by replica 0.
  std::vector<net::FlowKey> flows;
  server->neat->replica(0).tcp().for_each_connection(
      [&](net::TcpSocket& s) {
        if (s.state() == net::TcpState::kEstablished) {
          flows.push_back(s.flow());
        }
      });
  ASSERT_GT(flows.size(), 0u);

  server->neat->add_replica({&tb->server_machine.thread(4)});
  tb->sim.run_for(200 * sim::kMillisecond);

  // Partitioning invariant: a connection lives in exactly one replica for
  // its whole life. None of replica 0's established flows may have moved.
  for (const auto& f : flows) {
    bool still_in_r0 = false;
    server->neat->replica(0).tcp().for_each_connection(
        [&](net::TcpSocket& s) {
          if (s.flow() == f) still_in_r0 = true;
        });
    bool leaked_to_r1 = false;
    server->neat->replica(1).tcp().for_each_connection(
        [&](net::TcpSocket& s) {
          if (s.flow() == f) leaked_to_r1 = true;
        });
    EXPECT_FALSE(leaked_to_r1) << f.str();
    (void)still_in_r0;  // it may have finished normally in the meantime
  }
}

TEST_F(ScalingFixture, LazyTerminationNeverBreaksConnections) {
  build(true, 2);
  tb->sim.run_for(150 * sim::kMillisecond);
  StackReplica& victim = server->neat->replica(1);
  ASSERT_GT(victim.tcp().active_connection_count(), 0u);

  const auto errors_before = client_errors();
  server->neat->begin_scale_down(victim);
  EXPECT_TRUE(victim.terminating);

  // Run until the replica drains and is collected.
  sim::SimTime waited = 0;
  while (!victim.terminated && waited < 5 * sim::kSecond) {
    tb->sim.run_for(50 * sim::kMillisecond);
    waited += 50 * sim::kMillisecond;
  }
  EXPECT_TRUE(victim.terminated)
      << "terminating replica must drain to zero and be collected";
  EXPECT_EQ(client_errors(), errors_before)
      << "lazy termination must not abort any connection";

  // All load now flows through the surviving replica.
  const auto acc_before = server->neat->replica(0).tcp().stats().conns_accepted;
  tb->sim.run_for(100 * sim::kMillisecond);
  EXPECT_GT(server->neat->replica(0).tcp().stats().conns_accepted,
            acc_before);
}

TEST_F(ScalingFixture, AbruptShutdownWithoutTrackingIsRefused) {
  // The ablation the paper argues for: without per-flow tracking filters,
  // re-steering moves live flows to the wrong replica and they die. That
  // foot-gun is no longer reachable — draining a replica that still holds
  // connections without tracking filters is a hard error, not silent
  // connection loss.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  build(/*tracking_filters=*/false, 2);
  tb->sim.run_for(150 * sim::kMillisecond);
  StackReplica& victim = server->neat->replica(1);
  ASSERT_GT(victim.tcp().active_connection_count(), 0u);

  EXPECT_DEATH(server->neat->begin_scale_down(victim),
               "lazy termination requires tracking filters");
}

TEST_F(ScalingFixture, SteeringUsesOnlyActiveReplicaQueues) {
  build(true, 2);
  tb->sim.run_for(50 * sim::kMillisecond);
  server->neat->begin_scale_down(server->neat->replica(0));
  tb->sim.run_for(10 * sim::kMillisecond);  // control op reaches the NIC
  for (int bucket : tb->server_nic.indirection()) {
    EXPECT_EQ(bucket, server->neat->replica(1).queue());
  }
}

}  // namespace
}  // namespace neat::harness
