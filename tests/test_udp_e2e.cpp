// Socket-level UDP end-to-end tests: datagrams through the full NEaT path
// (SockLib bind -> SYSCALL-server durable record -> every replica's mux ->
// NIC RSS steering), plus crash recovery replaying the binds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/testbed.hpp"
#include "socklib/socklib.hpp"

namespace neat::harness {
namespace {

using socklib::Fd;
using socklib::kBadFd;

class ScriptApp : public sim::Process {
 public:
  ScriptApp(sim::Simulator& sim, std::string name)
      : sim::Process(sim, std::move(name)) {}
  std::unique_ptr<socklib::SockLib> lib;
};

struct UdpFixture : public ::testing::Test {
  explicit UdpFixture(NeatHost::Config::Kind server_kind =
                          NeatHost::Config::Kind::kSingle) {
    Testbed::Config cfg;
    cfg.seed = 4242;
    tb = std::make_unique<Testbed>(cfg);

    NeatHost::Config hc;
    hc.kind = server_kind;
    server_host = std::make_unique<NeatHost>(tb->sim, tb->server_machine,
                                             tb->server_nic, hc);
    server_host->os_process().pin(tb->server_machine.thread(0));
    server_host->syscall().pin(tb->server_machine.thread(1));
    server_host->driver().pin(tb->server_machine.thread(2));
    const bool multi = server_kind == NeatHost::Config::Kind::kMulti;
    if (multi) {
      server_host->add_replica({&tb->server_machine.thread(3),
                                &tb->server_machine.thread(4)});
      server_host->add_replica({&tb->server_machine.thread(5),
                                &tb->server_machine.thread(6)});
    } else {
      server_host->add_replica({&tb->server_machine.thread(3)});
      server_host->add_replica({&tb->server_machine.thread(4)});
    }
    server_app = std::make_unique<ScriptApp>(tb->sim, "srvapp");
    server_app->pin(tb->server_machine.thread(7));
    server_app->lib =
        std::make_unique<socklib::SockLib>(*server_app, *server_host);

    NeatHost::Config cc;
    client_host = std::make_unique<NeatHost>(tb->sim, tb->client_machine,
                                             tb->client_nic, cc);
    client_host->os_process().pin(tb->client_machine.thread(0));
    client_host->syscall().pin(tb->client_machine.thread(1));
    client_host->driver().pin(tb->client_machine.thread(2));
    client_host->add_replica({&tb->client_machine.thread(3)});
    client_app = std::make_unique<ScriptApp>(tb->sim, "cliapp");
    client_app->pin(tb->client_machine.thread(4));
    client_app->lib =
        std::make_unique<socklib::SockLib>(*client_app, *client_host);

    for (std::size_t i = 0; i < server_host->replica_count(); ++i) {
      server_host->replica(i).ip_layer_ref().arp().insert(
          kClientIp, net::MacAddr::local(2));
    }
    client_host->replica(0).ip_layer_ref().arp().insert(
        kServerIp, net::MacAddr::local(1));
  }

  ~UdpFixture() override {
    server_app.reset();
    client_app.reset();
  }

  void run(sim::SimTime t = 50 * sim::kMillisecond) { tb->sim.run_for(t); }

  /// Server echo service on `port`: every datagram bounced back verbatim.
  Fd start_echo(std::uint16_t port) {
    socklib::SockLib* lib = server_app->lib.get();
    echo_fd = lib->udp_open(port, [this, lib](net::SockAddr from,
                                              std::span<const std::uint8_t> p) {
      ++server_datagrams;
      lib->udp_send(echo_fd, from, p);
    });
    return echo_fd;
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<NeatHost> server_host;
  std::unique_ptr<NeatHost> client_host;
  std::unique_ptr<ScriptApp> server_app;
  std::unique_ptr<ScriptApp> client_app;
  Fd echo_fd{kBadFd};
  int server_datagrams{0};
};

TEST_F(UdpFixture, BindReplicatesOntoEveryReplicaAndCloseUnbinds) {
  const Fd fd = server_app->lib->udp_open(9000, [](auto, auto) {});
  ASSERT_NE(fd, kBadFd);
  run();
  EXPECT_TRUE(server_host->replica(0).udp().is_bound(9000));
  EXPECT_TRUE(server_host->replica(1).udp().is_bound(9000));
  EXPECT_EQ(server_host->udp_bind_count(), 1u);

  server_app->lib->close(fd);
  run();
  EXPECT_FALSE(server_host->replica(0).udp().is_bound(9000));
  EXPECT_FALSE(server_host->replica(1).udp().is_bound(9000));
  EXPECT_EQ(server_host->udp_bind_count(), 0u);
}

TEST_F(UdpFixture, EchoRoundtripWithSteeringSpreadAcrossReplicas) {
  start_echo(9000);
  run();

  // Many client sockets on distinct source ports: the RSS hash over the
  // UDP 4-tuple must spread the load over both server replicas (any
  // replica can serve any datagram — the stateless half of §3.3).
  constexpr int kSockets = 16;
  constexpr int kPerSocket = 4;
  int replies = 0;
  std::vector<Fd> fds;
  for (int i = 0; i < kSockets; ++i) {
    const auto port = static_cast<std::uint16_t>(20000 + i);
    fds.push_back(client_app->lib->udp_open(
        port, [&replies](net::SockAddr, std::span<const std::uint8_t> p) {
          ASSERT_EQ(p.size(), 5u);
          ++replies;
        }));
  }
  run();
  const std::uint8_t msg[5] = {'h', 'e', 'l', 'l', 'o'};
  for (int round = 0; round < kPerSocket; ++round) {
    for (const Fd fd : fds) {
      EXPECT_EQ(client_app->lib->udp_send(
                    fd, net::SockAddr{kServerIp, 9000}, msg),
                sizeof(msg));
    }
    run(10 * sim::kMillisecond);
  }
  run();
  EXPECT_EQ(replies, kSockets * kPerSocket);
  EXPECT_EQ(server_datagrams, kSockets * kPerSocket);
  // Steering actually spread: both replicas' muxes saw traffic.
  EXPECT_GT(server_host->replica(0).udp().delivered(), 0u);
  EXPECT_GT(server_host->replica(1).udp().delivered(), 0u);

  for (const Fd fd : fds) client_app->lib->close(fd);
  run();
  EXPECT_EQ(client_app->lib->open_udp_sockets(), 0u);
}

TEST_F(UdpFixture, CrashRecoveryReplaysBindsAndServiceResumes) {
  start_echo(9000);
  run();

  int replies = 0;
  const Fd cfd = client_app->lib->udp_open(
      21000, [&replies](net::SockAddr, std::span<const std::uint8_t>) {
        ++replies;
      });
  run();
  const std::uint8_t msg[3] = {'a', 'b', 'c'};

  // Pre-crash sanity: datagrams flow.
  for (int i = 0; i < 4; ++i) {
    client_app->lib->udp_send(cfd, net::SockAddr{kServerIp, 9000}, msg);
  }
  run();
  EXPECT_GT(replies, 0);

  // Kill replica 0 outright. Its mux is soft state and dies with it; the
  // supervisor restart must replay the durable bind registry.
  StackReplica& victim = server_host->replica(0);
  server_host->inject_crash(victim, Component::kWhole);
  tb->sim.run_for(300 * sim::kMillisecond);
  EXPECT_TRUE(victim.udp().is_bound(9000))
      << "recovery must replay UDP binds onto the restarted replica";

  // Service resumes through both replicas (send from many source ports so
  // some datagrams hash to the recovered one).
  replies = 0;
  server_datagrams = 0;
  const std::uint64_t delivered_before = victim.udp().delivered();
  std::vector<Fd> fds;
  for (int i = 0; i < 16; ++i) {
    fds.push_back(client_app->lib->udp_open(
        static_cast<std::uint16_t>(22000 + i),
        [&replies](net::SockAddr, std::span<const std::uint8_t>) {
          ++replies;
        }));
  }
  run();
  for (const Fd fd : fds) {
    client_app->lib->udp_send(fd, net::SockAddr{kServerIp, 9000}, msg);
  }
  run();
  EXPECT_EQ(replies, 16);
  EXPECT_GT(victim.udp().delivered(), delivered_before)
      << "the recovered replica must carry datagrams again";
}

/// Same recovery contract for the multi-component flavor, where only the
/// UDP component process dies (finer-grained fault isolation).
struct MultiUdpFixture : public UdpFixture {
  MultiUdpFixture() : UdpFixture(NeatHost::Config::Kind::kMulti) {}
};

TEST_F(MultiUdpFixture, UdpComponentCrashRecoveryReplaysBinds) {
  start_echo(9000);
  run();

  StackReplica& victim = server_host->replica(0);
  server_host->inject_crash(victim, Component::kUdp);
  tb->sim.run_for(300 * sim::kMillisecond);
  EXPECT_TRUE(victim.udp().is_bound(9000))
      << "UDP-component restart must replay binds";

  int replies = 0;
  std::vector<Fd> fds;
  for (int i = 0; i < 16; ++i) {
    fds.push_back(client_app->lib->udp_open(
        static_cast<std::uint16_t>(23000 + i),
        [&replies](net::SockAddr, std::span<const std::uint8_t>) {
          ++replies;
        }));
  }
  run();
  const std::uint8_t msg[3] = {'x', 'y', 'z'};
  for (const Fd fd : fds) {
    client_app->lib->udp_send(fd, net::SockAddr{kServerIp, 9000}, msg);
  }
  run();
  EXPECT_EQ(replies, 16);
}

}  // namespace
}  // namespace neat::harness
