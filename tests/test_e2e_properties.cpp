// End-to-end property tests for the DESIGN.md invariants: partitioning,
// determinism, data integrity over the full simulated testbed, and
// load-balancing of connection placement (which doubles as the §3.8
// address-space re-randomization property).
#include <gtest/gtest.h>

#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

/// Invariant 1: every TCP connection lives in exactly one replica.
class PartitioningProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PartitioningProperty, EachFlowLivesInExactlyOneReplica) {
  Testbed::Config cfg;
  cfg.seed = GetParam();
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 3;
  so.webs = 3;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 3;
  co.concurrency_per_gen = 16;
  co.requests_per_conn = 20;
  ClientRig client = build_client(tb, co, 3);
  prepopulate_arp(server, client);
  tb.sim.run_for(250 * sim::kMillisecond);

  std::map<std::string, int> owners;
  for (std::size_t r = 0; r < server.neat->replica_count(); ++r) {
    server.neat->replica(r).tcp().for_each_connection(
        [&](net::TcpSocket& s) { owners[s.flow().str()]++; });
  }
  ASSERT_GT(owners.size(), 10u);
  for (const auto& [flow, count] : owners) {
    EXPECT_EQ(count, 1) << flow << " exists in multiple replicas";
  }

  // And the RSS steering agrees with the owner for every live flow — i.e.
  // all of a connection's packets reach the replica that owns it.
  for (std::size_t r = 0; r < server.neat->replica_count(); ++r) {
    server.neat->replica(r).tcp().for_each_connection(
        [&](net::TcpSocket& s) {
          if (s.state() != net::TcpState::kEstablished) return;
          EXPECT_EQ(tb.server_nic.classify(*[&] {
                      // Recreate the inbound frame header for this flow.
                      auto pkt = net::Packet::make(0);
                      net::TcpHeader th;
                      th.src_port = s.flow().remote_port;
                      th.dst_port = s.flow().local_port;
                      th.ack_flag = true;
                      th.encode(*pkt, s.flow().remote_ip,
                                s.flow().local_ip);
                      net::Ipv4Header ih;
                      ih.src = s.flow().remote_ip;
                      ih.dst = s.flow().local_ip;
                      ih.encode(*pkt);
                      net::EthernetHeader eh;
                      eh.src = net::MacAddr::local(2);
                      eh.dst = net::MacAddr::local(1);
                      eh.encode(*pkt);
                      return pkt;
                    }()),
                    server.neat->replica(r).queue())
              << "packets of " << s.flow().str()
              << " would be steered away from their replica";
        });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitioningProperty,
                         ::testing::Values(11, 22, 33, 44));

/// Invariant 7: identical seeds give bit-identical runs.
TEST(Determinism, SameSeedSameResults) {
  auto run_once = [](std::uint64_t seed) {
    Testbed::Config cfg;
    cfg.seed = seed;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 2;
    so.webs = 2;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 2;
    co.concurrency_per_gen = 8;
    ClientRig client = build_client(tb, co, 2);
    prepopulate_arp(server, client);
    const auto r = run_window(tb, client, 100 * sim::kMillisecond,
                              200 * sim::kMillisecond);
    return std::tuple{r.requests, server.total_requests(),
                      server.neat->replica(0).tcp().stats().segments_in,
                      tb.server_nic.stats().rx_frames};
  };
  EXPECT_EQ(run_once(1234), run_once(1234));
  EXPECT_NE(std::get<0>(run_once(1234)), std::get<0>(run_once(9999)));
}

/// §3.8: connection placement across replicas is balanced (each new
/// connection picks an unpredictable replica -> re-randomization).
TEST(LoadBalance, ConnectionsSpreadEvenlyAcrossReplicas) {
  Testbed::Config cfg;
  cfg.seed = 77;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 4;
  so.webs = 4;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 16;
  co.requests_per_conn = 10;
  ClientRig client = build_client(tb, co, 4);
  prepopulate_arp(server, client);
  tb.sim.run_for(400 * sim::kMillisecond);

  std::uint64_t total = 0;
  std::uint64_t min_acc = ~0ull, max_acc = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto acc = server.neat->replica(r).tcp().stats().conns_accepted;
    total += acc;
    min_acc = std::min(min_acc, acc);
    max_acc = std::max(max_acc, acc);
  }
  ASSERT_GT(total, 400u);
  // Toeplitz over random ports: no replica may get more than ~2x its share.
  EXPECT_LT(max_acc, 2 * total / 4);
  EXPECT_GT(min_acc, total / 12);
}

/// The full path preserves payload integrity: checksummed end to end.
TEST(EndToEnd, NoCorruptRepliesUnderLinkCorruption) {
  Testbed::Config cfg;
  cfg.seed = 88;
  cfg.link.corrupt_probability = 0.003;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 2;
  co.concurrency_per_gen = 8;
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);
  const auto r = run_window(tb, client, 150 * sim::kMillisecond,
                            400 * sim::kMillisecond);
  EXPECT_GT(r.requests, 500u) << "retransmission hides the corruption";
  std::uint64_t bad = 0, drops = 0;
  for (auto& g : client.gens) bad += g->report().bad_status;
  EXPECT_EQ(bad, 0u) << "no corrupted payload may reach the application";
  for (std::size_t i = 0; i < 2; ++i) {
    drops += server.neat->replica(i).tcp().stats().checksum_drops;
  }
  drops += client.host->replica(0).tcp().stats().checksum_drops;
  EXPECT_GT(drops + tb.link.frames_corrupted(), 0u)
      << "the test must actually have corrupted frames";
}

}  // namespace
}  // namespace neat::harness
