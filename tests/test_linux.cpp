// Linux-baseline tests: the monolithic shared stack, its syscall/softirq
// execution model, the Table-1 tuning knobs, and the kernel lock model.
#include <gtest/gtest.h>

#include "baseline/linux.hpp"
#include "harness/testbed.hpp"

namespace neat::harness {
namespace {

RunResult run_linux_webs(baseline::LinuxTuning tuning, std::uint64_t seed) {
  Testbed::Config cfg;
  cfg.seed = seed;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.tuning = tuning;
  so.webs = 12;
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = 12;
  co.concurrency_per_gen = 16;
  ClientRig client = build_client(tb, co, 12);
  prepopulate_arp(server, client);
  return run_window(tb, client, 150 * sim::kMillisecond,
                    200 * sim::kMillisecond);
}

TEST(LinuxBaseline, ServesTrafficAndSharesOneStack) {
  Testbed::Config cfg;
  cfg.seed = 5;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.webs = 4;
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 8;
  ClientRig client = build_client(tb, co, 4);
  prepopulate_arp(server, client);
  const auto r = run_window(tb, client, 100 * sim::kMillisecond,
                            200 * sim::kMillisecond);
  EXPECT_GT(r.requests, 1000u);
  // Single shared connection table for the whole machine.
  EXPECT_GT(server.linux_host->tcp().connection_count(), 0u);
  EXPECT_EQ(server.linux_host->tcp().stats().conns_accepted,
            server.webs[0]->app_stats().conns_accepted +
                server.webs[1]->app_stats().conns_accepted +
                server.webs[2]->app_stats().conns_accepted +
                server.webs[3]->app_stats().conns_accepted);
}

TEST(LinuxBaseline, TuningImprovesThroughputInPaperOrder) {
  const auto defaults =
      run_linux_webs(baseline::LinuxTuning::defaults(), 21);
  const auto best = run_linux_webs(baseline::LinuxTuning::best(), 21);
  // Table 1: defaults ~184 kreq/s, fully tuned ~224 kreq/s (+20%).
  EXPECT_GT(best.krps, defaults.krps * 1.1);
}

TEST(LinuxBaseline, RfsBringsNoObservableBenefit) {
  auto tuned = baseline::LinuxTuning::best();
  const auto without = run_linux_webs(tuned, 22);
  tuned.rfs = true;
  const auto with = run_linux_webs(tuned, 22);
  EXPECT_NEAR(with.krps, without.krps, without.krps * 0.05);
}

TEST(LinuxBaseline, LocksRecordContention) {
  Testbed::Config cfg;
  cfg.seed = 6;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.webs = 8;
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = 8;
  co.concurrency_per_gen = 16;
  ClientRig client = build_client(tb, co, 8);
  prepopulate_arp(server, client);
  run_window(tb, client, 100 * sim::kMillisecond, 200 * sim::kMillisecond);
  EXPECT_GT(server.linux_host->conn_lock().acquisitions(), 10000u);
  EXPECT_GT(server.linux_host->conn_lock().contended(), 0u)
      << "a loaded 12-core machine must contend on the shared state";
}

TEST(LinuxBaseline, KernelLockChargesWaitAndTransfer) {
  baseline::KernelLock lock;
  baseline::LinuxCosts costs;
  const sim::Frequency freq{1.0};
  // First acquisition: uncontended, no transfer.
  const auto c1 = lock.acquire(1000, 0, 100, freq, costs);
  EXPECT_EQ(c1, costs.lock_uncontended);
  // Same time, different core: queued behind holder + line transfer.
  const auto c2 = lock.acquire(1000, 1, 100, freq, costs);
  EXPECT_GE(c2, costs.lock_uncontended + 100 + costs.cacheline_transfer);
  EXPECT_EQ(lock.contended(), 1u);
  // Much later, same core: uncontended and cache-hot.
  const auto c3 = lock.acquire(1000000, 1, 100, freq, costs);
  EXPECT_EQ(c3, costs.lock_uncontended);
}

TEST(LinuxBaseline, UnpinnedserversMigrate) {
  Testbed::Config cfg;
  cfg.seed = 7;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.webs = 12;
  so.tuning = baseline::LinuxTuning::defaults();  // not pinned
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = 12;
  co.concurrency_per_gen = 8;
  ClientRig client = build_client(tb, co, 12);
  prepopulate_arp(server, client);

  std::vector<int> before;
  for (auto& w : server.webs) before.push_back(w->thread()->core_id());
  tb.sim.run_for(500 * sim::kMillisecond);
  int moved = 0;
  for (std::size_t i = 0; i < server.webs.size(); ++i) {
    if (server.webs[i]->thread()->core_id() !=
        before[i]) {
      ++moved;
    }
  }
  // With 12 apps at ~120 migrations/s/app over 0.5s, several must have
  // moved at least once (exact count depends on balance opportunities).
  EXPECT_GT(moved, 0);
}

TEST(LinuxBaseline, SameAppCodeRunsOnBothStacks) {
  // The BSD-compliance claim: HttpServer binaries are identical; only the
  // attached SocketApi differs. Compare served requests on both stacks.
  Testbed::Config cfg;
  cfg.seed = 9;
  {
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 2;
    so.webs = 2;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 2;
    co.concurrency_per_gen = 8;
    ClientRig client = build_client(tb, co, 2);
    prepopulate_arp(server, client);
    const auto r = run_window(tb, client, 100 * sim::kMillisecond,
                              150 * sim::kMillisecond);
    EXPECT_GT(r.requests, 500u);
  }
  {
    Testbed tb(cfg);
    LinuxServerOptions so;
    so.webs = 2;
    ServerRig server = build_linux_server(tb, so);
    ClientOptions co;
    co.generators = 2;
    co.concurrency_per_gen = 8;
    ClientRig client = build_client(tb, co, 2);
    prepopulate_arp(server, client);
    const auto r = run_window(tb, client, 100 * sim::kMillisecond,
                              150 * sim::kMillisecond);
    EXPECT_GT(r.requests, 500u);
  }
}

}  // namespace
}  // namespace neat::harness
