// Table 1: Linux request-rate breakdown per tuning option.
//
// Paper (12-core AMD, 12 httperf x 1000 conns x 1000 req/conn, 20 B file):
//   defaults                          184.118 kreq/s
//   sched+eth+irqAff+rxAff            186.667 kreq/s
//   sched+eth+irqAff+rxAff+serv       223.987 kreq/s
//
// The paper also notes that rxAff *without* serv pinning slightly lowered
// the rate (lighttpd scheduled away from its receive queues) and that RFS
// brought no observable benefit.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

RunResult with(baseline::LinuxTuning t, const std::string& trace = {}) {
  LinuxRun r;
  r.tuning = t;
  r.webs = 12;
  r.requests_per_conn = 1000;  // Table 1 used 1000 requests per connection
  r.trace_out = trace;
  return run_linux(r);
}

}  // namespace

int main(int argc, char** argv) {
  header("Table 1: request rate breakdown per Linux option tuned (AMD)");
  const std::string trace = trace_out_arg(argc, argv);

  baseline::LinuxTuning t;  // defaults
  const auto defaults = with(t, trace);

  t.deadline_sched = true;
  t.tso = true;
  const auto sched_eth = with(t);

  t.irq_affinity = true;
  const auto irq = with(t);

  t.rx_affinity = true;
  const auto rx = with(t);

  t.pin_servers = true;
  const auto serv = with(t);

  t.rfs = true;
  const auto rfs = with(t);

  std::printf("%-36s %10s %10s\n", "option tuned", "paper", "measured");
  std::printf("%-36s %10.3f %10.3f\n", "defaults", 184.118, defaults.krps);
  std::printf("%-36s %10s %10.3f\n", "sched+eth", "-", sched_eth.krps);
  std::printf("%-36s %10s %10.3f\n", "sched+eth+irqAff", "-", irq.krps);
  std::printf("%-36s %10.3f %10.3f\n", "sched+eth+irqAff+rxAff", 186.667,
              rx.krps);
  std::printf("%-36s %10.3f %10.3f\n", "sched+eth+irqAff+rxAff+serv",
              223.987, serv.krps);
  std::printf("%-36s %10s %10.3f   (no observable benefit, as in paper)\n",
              "  + RFS", "-", rfs.krps);

  std::printf("\nshape checks: defaults < rxAff-without-serv < +serv : %s\n",
              (defaults.krps < rx.krps && rx.krps < serv.krps) ? "PASS"
                                                               : "FAIL");

  JsonWriter json;
  add_latency(json, "defaults_", defaults);
  add_latency(json, "sched_eth_", sched_eth);
  add_latency(json, "irq_", irq);
  add_latency(json, "rx_", rx);
  add_latency(json, "serv_", serv);
  add_latency(json, "rfs_", rfs);
  json.write("table1_linux_tuning");
  return 0;
}
