// ext_perf: wall-clock performance of the simulator's data path.
//
// Every other bench in this directory reports *simulated* quantities
// (krps, latency percentiles at virtual time). This one is different: it
// measures how fast the simulator itself runs on the host — simulated
// packets per host-CPU-second — because that is what bounds every sweep in
// the repo. The macro section re-runs the paper's headline fig9
// configuration (Multi 2x HT, 8 web instances on the Xeon) and times it
// with a host clock; the micro section isolates the three hot mechanisms
// the data-path fast paths target: packet buffer allocation (PacketPool),
// stream buffering (ByteRing), and event scheduling (EventQueue).
//
// The committed BENCH_ext_perf.json is the perf trajectory every later PR
// is judged against: scripts/check.sh --perf re-runs this binary and fails
// on a >10% regression of fig9_pkts_per_host_sec. The `baseline_*` keys
// record the pre-fast-path measurement (same host class) so the speedup is
// auditable from the JSON alone.
#include <chrono>
#include <cstring>

#include "bench_util.hpp"
#include "ipc/byte_ring.hpp"
#include "ipc/channel.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

// Pre-PR wall-clock measurement of the same fig9 configuration, recorded
// on the container this repo's benches run in (see EXPERIMENTS.md). These
// are the `baseline_` keys the acceptance gate compares against.
constexpr double kBaselineFig9PktsPerHostSec = 76000.0;
constexpr double kBaselineFig9WallSec = 4.30;
constexpr double kBaselineFig9Krps = 316.7;
// Pre-batching simulated request p99 (deterministic — independent of host
// speed): the latency guard in scripts/check.sh --perf fails if batching
// ever trades >20% of request p99 for throughput.
constexpr double kBaselineFig9P99Ms = 1.573;  // simulated, pre-batching HEAD

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// --- micro: packet allocation ---------------------------------------------

void micro_packets(JsonWriter& json, bool pooled, std::size_t iters) {
  net::PacketPool pool;
  std::optional<net::PacketPool::Use> use;
  if (pooled) use.emplace(pool);
  std::uint8_t payload[1460];
  std::memset(payload, 0xab, sizeof payload);
  const std::size_t sizes[] = {64, 256, 1460};
  const auto t0 = Clock::now();
  std::uint64_t made = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    for (const std::size_t sz : sizes) {
      auto p = net::Packet::of({payload, sz});
      p->push(54);  // typical eth+ip+tcp header push
      ++made;
    }
  }
  const double dt = secs_since(t0);
  const char* tag = pooled ? "micro_packet_pooled" : "micro_packet_heap";
  std::printf("%-28s %12.0f packets/s\n", tag,
              static_cast<double>(made) / dt);
  json.add(std::string(tag) + "_per_sec", static_cast<double>(made) / dt);
  if (pooled) {
    const auto& st = pool.stats();
    json.add("micro_pool_fresh", st.fresh);
    json.add("micro_pool_reused", st.reused);
    json.add("micro_pool_recycled", st.recycled);
  }
}

// --- micro: stream ring ----------------------------------------------------

void micro_ring(JsonWriter& json, std::size_t iters) {
  ipc::ByteRing ring(96 * 1024);
  std::uint8_t chunk[1460];
  std::uint8_t out[1460];
  std::memset(chunk, 0x5a, sizeof chunk);
  const auto t0 = Clock::now();
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    // Fill-then-drain in MSS chunks: the TcpSocket stream pattern.
    while (ring.writable() >= sizeof chunk) bytes += ring.write(chunk);
    while (ring.readable() > 0) ring.read(out);
  }
  const double dt = secs_since(t0);
  const double gbps = static_cast<double>(bytes) / dt / 1e9;
  std::printf("%-28s %12.2f GB/s\n", "micro_ring_fill_drain", gbps);
  json.add("micro_ring_gb_per_sec", gbps);
}

// --- micro: event queue ----------------------------------------------------

void micro_events(JsonWriter& json, std::size_t iters) {
  sim::EventQueue q;
  const auto t0 = Clock::now();
  std::uint64_t fired = 0;
  for (std::size_t round = 0; round < iters; ++round) {
    sim::EventHandle handles[64];
    for (int i = 0; i < 64; ++i) {
      handles[i] =
          q.schedule(static_cast<sim::SimTime>(i + 1), [&fired] { ++fired; });
    }
    for (int i = 0; i < 64; i += 2) handles[i].cancel();  // half cancelled
    q.run();
  }
  const double dt = secs_since(t0);
  const double rate = static_cast<double>(iters) * 64.0 / dt;
  std::printf("%-28s %12.0f sched+fire/s (%llu fired)\n", "micro_event_queue",
              rate, static_cast<unsigned long long>(fired));
  json.add("micro_events_per_sec", rate);
}

// --- macro: the fig9 headline configuration -------------------------------

/// One fig9 pass worth of measurements. Simulated quantities (krps, p99,
/// batch statistics) are seed-deterministic and identical across reps;
/// host-time quantities vary with machine load.
struct Fig9Run {
  RunResult res;
  double wall{0.0};
  double pkts{0.0};
  double pkts_per_host_sec{0.0};
  double events_per_host_sec{0.0};
  double mallocs_per_pkt{0.0};
  double reuse_frac{0.0};
  net::PacketPool::Stats pool{};
  // Per-batch vs per-packet amortization: units of work (frames/messages)
  // against the jobs that carried them.
  double nic_batch_mean{0.0};
  std::uint64_t nic_batch_jobs{0};
  double ipc_batch_mean{0.0};
  std::uint64_t ipc_batch_jobs{0};
  double tcp_batch_mean{0.0};
  std::uint64_t tcp_batch_jobs{0};
  std::uint64_t ipc_msgs_delivered{0};
  std::uint64_t ipc_batches{0};
};

Fig9Run run_fig9_once(sim::SimTime warmup, sim::SimTime measure) {
  Testbed::Config cfg;
  cfg.seed = 12345;
  cfg.server_machine = sim::intel_xeon_e5520();
  // RX interrupt moderation (ethtool rx-usecs style): batch frames per
  // doorbell on both ends so the burst path is exercised end-to-end.
  cfg.server_nic.rx_coalesce_usecs = 32 * sim::kMicrosecond;
  cfg.client_nic.rx_coalesce_usecs = 32 * sim::kMicrosecond;
  Testbed tb(cfg);  // installs its own PacketPool for the simulation

  NeatServerOptions so;
  so.multi_component = true;
  so.replicas = 2;
  so.webs = 8;
  so.files = {{"/file20", 20}};
  so.placement = xeon_placement(true, 2, 8, /*ht=*/true);
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 12;
  co.concurrency_per_gen = 24;
  co.requests_per_conn = 100;
  co.path = "/file20";
  ClientRig client = build_client(tb, co, 8);
  prepopulate_arp(server, client);

  Fig9Run r;
  const auto t0 = Clock::now();
  r.res = run_window(tb, client, warmup, measure);
  r.wall = secs_since(t0);

  const auto& nic = tb.server_nic.stats();
  r.pkts =
      static_cast<double>(nic.rx_frames) + static_cast<double>(nic.tx_frames);
  r.pkts_per_host_sec = r.pkts / r.wall;
  r.events_per_host_sec =
      static_cast<double>(tb.sim.queue().executed()) / r.wall;
  r.pool = tb.pool.stats();
  r.mallocs_per_pkt =
      r.pkts > 0 ? static_cast<double>(r.pool.fresh) / r.pkts : 0.0;
  r.reuse_frac = r.pool.fresh + r.pool.reused > 0
                     ? static_cast<double>(r.pool.reused) /
                           static_cast<double>(r.pool.fresh + r.pool.reused)
                     : 0.0;

  const auto batch_stats = [&tb](const char* hname, double& mean,
                                 std::uint64_t& jobs) {
    if (const auto* h = tb.sim.metrics().find_histogram(hname)) {
      mean = h->mean();
      jobs = h->count();
    }
  };
  batch_stats("nic.rx_batch_size", r.nic_batch_mean, r.nic_batch_jobs);
  batch_stats("ipc.batch_size", r.ipc_batch_mean, r.ipc_batch_jobs);
  batch_stats("tcp.rx_batch_size", r.tcp_batch_mean, r.tcp_batch_jobs);
  // Registry sweep (before the testbed dies): every channel in the sim,
  // messages delivered vs delivery jobs posted.
  for (const ipc::ChannelBase* ch : ipc::channel_registry()) {
    r.ipc_msgs_delivered += ch->channel_stats().delivered;
    r.ipc_batches += ch->channel_stats().batches;
  }
  return r;
}

void macro_fig9(JsonWriter& json, sim::SimTime warmup, sim::SimTime measure,
                int reps) {
  // Host wall-clock numbers are noisy on a shared machine: run the whole
  // configuration `reps` times and report the best pass (standard practice
  // for wall-clock benches — the minimum-interference run is the one that
  // reflects the code). Simulated quantities are identical across reps.
  Fig9Run best;
  for (int i = 0; i < reps; ++i) {
    Fig9Run r = run_fig9_once(warmup, measure);
    std::printf("  rep %d/%d: %.0f pkts/host-sec (wall %.2f s)\n", i + 1,
                reps, r.pkts_per_host_sec, r.wall);
    if (r.pkts_per_host_sec > best.pkts_per_host_sec) best = r;
  }
  const Fig9Run& r = best;

  std::printf("\nfig9 Multi 2x HT, 8 webs (%.0f ms simulated, best of %d):\n",
              static_cast<double>(warmup + measure) / 1e6, reps);
  std::printf("  krps                 %12.1f\n", r.res.krps);
  std::printf("  request p99          %12.3f ms\n", r.res.p99_latency_ms);
  std::printf("  wall                 %12.2f s\n", r.wall);
  std::printf("  sim packets          %12.0f\n", r.pkts);
  std::printf("  pkts / host-sec      %12.0f\n", r.pkts_per_host_sec);
  std::printf("  events / host-sec    %12.0f\n", r.events_per_host_sec);
  std::printf("  nic rx batches       %12llu jobs (mean %.2f frames/job)\n",
              (unsigned long long)r.nic_batch_jobs, r.nic_batch_mean);
  std::printf("  ipc batches          %12llu jobs (mean %.2f msgs/job)\n",
              (unsigned long long)r.ipc_batch_jobs, r.ipc_batch_mean);
  std::printf("  tcp rx batches       %12llu jobs (mean %.2f segs/job)\n",
              (unsigned long long)r.tcp_batch_jobs, r.tcp_batch_mean);
  std::printf("  ipc delivered/batch  %12.2f (%llu msgs / %llu jobs)\n",
              r.ipc_batches > 0 ? static_cast<double>(r.ipc_msgs_delivered) /
                                      static_cast<double>(r.ipc_batches)
                                : 0.0,
              (unsigned long long)r.ipc_msgs_delivered,
              (unsigned long long)r.ipc_batches);
  std::printf("  buffer mallocs/pkt   %12.3f (pool reuse %.1f%%)\n",
              r.mallocs_per_pkt, r.reuse_frac * 100.0);

  json.add("fig9_reps", reps);
  json.add("fig9_krps", r.res.krps);
  json.add("fig9_requests", r.res.requests);
  json.add("fig9_p99_latency_ms", r.res.p99_latency_ms);
  json.add("fig9_wall_sec", r.wall);
  json.add("fig9_sim_packets", r.pkts);
  json.add("fig9_pkts_per_host_sec", r.pkts_per_host_sec);
  json.add("fig9_events_per_host_sec", r.events_per_host_sec);
  json.add("fig9_buffer_mallocs_per_packet", r.mallocs_per_pkt);
  json.add("fig9_pool_reuse_fraction", r.reuse_frac);
  json.add("pool_fresh", r.pool.fresh);
  json.add("pool_reused", r.pool.reused);
  json.add("pool_recycled", r.pool.recycled);
  json.add("pool_dropped_full", r.pool.dropped_full);

  // Per-batch vs per-packet accounting: how many work units each delivery
  // job amortizes, per layer.
  json.add("fig9_nic_rx_batch_jobs", r.nic_batch_jobs);
  json.add("fig9_nic_rx_batch_mean", r.nic_batch_mean);
  json.add("fig9_ipc_batch_jobs", r.ipc_batch_jobs);
  json.add("fig9_ipc_batch_mean", r.ipc_batch_mean);
  json.add("fig9_tcp_rx_batch_jobs", r.tcp_batch_jobs);
  json.add("fig9_tcp_rx_batch_mean", r.tcp_batch_mean);
  json.add("fig9_ipc_msgs_delivered", r.ipc_msgs_delivered);
  json.add("fig9_ipc_delivery_jobs", r.ipc_batches);

  json.add("baseline_fig9_pkts_per_host_sec", kBaselineFig9PktsPerHostSec);
  json.add("baseline_fig9_wall_sec", kBaselineFig9WallSec);
  json.add("baseline_fig9_krps", kBaselineFig9Krps);
  json.add("baseline_fig9_p99_latency_ms", kBaselineFig9P99Ms);
  if (kBaselineFig9PktsPerHostSec > 0) {
    const double speedup =
        r.pkts_per_host_sec / kBaselineFig9PktsPerHostSec;
    std::printf("  speedup vs baseline  %12.2fx (pre-PR %0.0f pkts/host-s)\n",
                speedup, kBaselineFig9PktsPerHostSec);
    json.add("fig9_speedup_vs_baseline", speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  header("ext_perf: simulator wall-clock throughput (host-time measured)");
  // --quick: one short pass (sanitizer runs); full mode sizes the micro
  // loops for stable wall-clock numbers.
  const bool quick = has_flag(argc, argv, "--quick");
  JsonWriter json;
  json.add("quick_mode", quick);

  const std::size_t pkt_iters = quick ? 20'000 : 400'000;
  const std::size_t ring_iters = quick ? 2'000 : 40'000;
  const std::size_t ev_iters = quick ? 5'000 : 100'000;

  micro_packets(json, /*pooled=*/false, pkt_iters);
  micro_packets(json, /*pooled=*/true, pkt_iters);
  micro_ring(json, ring_iters);
  micro_events(json, ev_iters);

  const sim::SimTime warmup = quick ? 50 * sim::kMillisecond : kWarmup;
  const sim::SimTime measure = quick ? 50 * sim::kMillisecond : kMeasure;
  macro_fig9(json, warmup, measure, /*reps=*/quick ? 1 : 3);

  if (!quick) json.write("ext_perf");
  return 0;
}
