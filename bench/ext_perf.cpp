// ext_perf: wall-clock performance of the simulator's data path.
//
// Every other bench in this directory reports *simulated* quantities
// (krps, latency percentiles at virtual time). This one is different: it
// measures how fast the simulator itself runs on the host — simulated
// packets per host-CPU-second — because that is what bounds every sweep in
// the repo. The macro section re-runs the paper's headline fig9
// configuration (Multi 2x HT, 8 web instances on the Xeon) and times it
// with a host clock; the micro section isolates the three hot mechanisms
// the data-path fast paths target: packet buffer allocation (PacketPool),
// stream buffering (ByteRing), and event scheduling (EventQueue).
//
// The committed BENCH_ext_perf.json is the perf trajectory every later PR
// is judged against: scripts/check.sh --perf re-runs this binary and fails
// on a >10% regression of fig9_pkts_per_host_sec. The `baseline_*` keys
// record the pre-fast-path measurement (same host class) so the speedup is
// auditable from the JSON alone.
#include <chrono>
#include <cstring>

#include "bench_util.hpp"
#include "ipc/byte_ring.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

// Pre-PR wall-clock measurement of the same fig9 configuration, recorded
// on the container this repo's benches run in (see EXPERIMENTS.md). These
// are the `baseline_` keys the acceptance gate compares against.
constexpr double kBaselineFig9PktsPerHostSec = 76000.0;
constexpr double kBaselineFig9WallSec = 4.30;
constexpr double kBaselineFig9Krps = 316.7;

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// --- micro: packet allocation ---------------------------------------------

void micro_packets(JsonWriter& json, bool pooled, std::size_t iters) {
  net::PacketPool pool;
  std::optional<net::PacketPool::Use> use;
  if (pooled) use.emplace(pool);
  std::uint8_t payload[1460];
  std::memset(payload, 0xab, sizeof payload);
  const std::size_t sizes[] = {64, 256, 1460};
  const auto t0 = Clock::now();
  std::uint64_t made = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    for (const std::size_t sz : sizes) {
      auto p = net::Packet::of({payload, sz});
      p->push(54);  // typical eth+ip+tcp header push
      ++made;
    }
  }
  const double dt = secs_since(t0);
  const char* tag = pooled ? "micro_packet_pooled" : "micro_packet_heap";
  std::printf("%-28s %12.0f packets/s\n", tag,
              static_cast<double>(made) / dt);
  json.add(std::string(tag) + "_per_sec", static_cast<double>(made) / dt);
  if (pooled) {
    const auto& st = pool.stats();
    json.add("micro_pool_fresh", st.fresh);
    json.add("micro_pool_reused", st.reused);
    json.add("micro_pool_recycled", st.recycled);
  }
}

// --- micro: stream ring ----------------------------------------------------

void micro_ring(JsonWriter& json, std::size_t iters) {
  ipc::ByteRing ring(96 * 1024);
  std::uint8_t chunk[1460];
  std::uint8_t out[1460];
  std::memset(chunk, 0x5a, sizeof chunk);
  const auto t0 = Clock::now();
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    // Fill-then-drain in MSS chunks: the TcpSocket stream pattern.
    while (ring.writable() >= sizeof chunk) bytes += ring.write(chunk);
    while (ring.readable() > 0) ring.read(out);
  }
  const double dt = secs_since(t0);
  const double gbps = static_cast<double>(bytes) / dt / 1e9;
  std::printf("%-28s %12.2f GB/s\n", "micro_ring_fill_drain", gbps);
  json.add("micro_ring_gb_per_sec", gbps);
}

// --- micro: event queue ----------------------------------------------------

void micro_events(JsonWriter& json, std::size_t iters) {
  sim::EventQueue q;
  const auto t0 = Clock::now();
  std::uint64_t fired = 0;
  for (std::size_t round = 0; round < iters; ++round) {
    sim::EventHandle handles[64];
    for (int i = 0; i < 64; ++i) {
      handles[i] =
          q.schedule(static_cast<sim::SimTime>(i + 1), [&fired] { ++fired; });
    }
    for (int i = 0; i < 64; i += 2) handles[i].cancel();  // half cancelled
    q.run();
  }
  const double dt = secs_since(t0);
  const double rate = static_cast<double>(iters) * 64.0 / dt;
  std::printf("%-28s %12.0f sched+fire/s (%llu fired)\n", "micro_event_queue",
              rate, static_cast<unsigned long long>(fired));
  json.add("micro_events_per_sec", rate);
}

// --- macro: the fig9 headline configuration -------------------------------

void macro_fig9(JsonWriter& json, sim::SimTime warmup, sim::SimTime measure) {
  Testbed::Config cfg;
  cfg.seed = 12345;
  cfg.server_machine = sim::intel_xeon_e5520();
  Testbed tb(cfg);  // installs its own PacketPool for the simulation
  net::PacketPool& pool = tb.pool;

  NeatServerOptions so;
  so.multi_component = true;
  so.replicas = 2;
  so.webs = 8;
  so.files = {{"/file20", 20}};
  so.placement = xeon_placement(true, 2, 8, /*ht=*/true);
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 12;
  co.concurrency_per_gen = 24;
  co.requests_per_conn = 100;
  co.path = "/file20";
  ClientRig client = build_client(tb, co, 8);
  prepopulate_arp(server, client);

  const auto t0 = Clock::now();
  const RunResult res = run_window(tb, client, warmup, measure);
  const double wall = secs_since(t0);

  const auto& nic = tb.server_nic.stats();
  const double pkts =
      static_cast<double>(nic.rx_frames) + static_cast<double>(nic.tx_frames);
  const double pkts_per_host_sec = pkts / wall;
  const double events_per_host_sec =
      static_cast<double>(tb.sim.queue().executed()) / wall;
  const auto& ps = pool.stats();
  const double mallocs_per_pkt =
      pkts > 0 ? static_cast<double>(ps.fresh) / pkts : 0.0;
  const double reuse_frac =
      ps.fresh + ps.reused > 0
          ? static_cast<double>(ps.reused) /
                static_cast<double>(ps.fresh + ps.reused)
          : 0.0;

  std::printf("\nfig9 Multi 2x HT, 8 webs (%.0f ms simulated):\n",
              static_cast<double>(warmup + measure) / 1e6);
  std::printf("  krps                 %12.1f\n", res.krps);
  std::printf("  wall                 %12.2f s\n", wall);
  std::printf("  sim packets          %12.0f\n", pkts);
  std::printf("  pkts / host-sec      %12.0f\n", pkts_per_host_sec);
  std::printf("  events / host-sec    %12.0f\n", events_per_host_sec);
  std::printf("  buffer mallocs/pkt   %12.3f (pool reuse %.1f%%)\n",
              mallocs_per_pkt, reuse_frac * 100.0);

  json.add("fig9_krps", res.krps);
  json.add("fig9_requests", res.requests);
  json.add("fig9_wall_sec", wall);
  json.add("fig9_sim_packets", pkts);
  json.add("fig9_pkts_per_host_sec", pkts_per_host_sec);
  json.add("fig9_events_per_host_sec", events_per_host_sec);
  json.add("fig9_buffer_mallocs_per_packet", mallocs_per_pkt);
  json.add("fig9_pool_reuse_fraction", reuse_frac);
  json.add("pool_fresh", ps.fresh);
  json.add("pool_reused", ps.reused);
  json.add("pool_recycled", ps.recycled);
  json.add("pool_dropped_full", ps.dropped_full);

  json.add("baseline_fig9_pkts_per_host_sec", kBaselineFig9PktsPerHostSec);
  json.add("baseline_fig9_wall_sec", kBaselineFig9WallSec);
  json.add("baseline_fig9_krps", kBaselineFig9Krps);
  if (kBaselineFig9PktsPerHostSec > 0) {
    const double speedup = pkts_per_host_sec / kBaselineFig9PktsPerHostSec;
    std::printf("  speedup vs baseline  %12.2fx (pre-PR %0.0f pkts/host-s)\n",
                speedup, kBaselineFig9PktsPerHostSec);
    json.add("fig9_speedup_vs_baseline", speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  header("ext_perf: simulator wall-clock throughput (host-time measured)");
  // --quick: one short pass (sanitizer runs); full mode sizes the micro
  // loops for stable wall-clock numbers.
  const bool quick = has_flag(argc, argv, "--quick");
  JsonWriter json;
  json.add("quick_mode", quick);

  const std::size_t pkt_iters = quick ? 20'000 : 400'000;
  const std::size_t ring_iters = quick ? 2'000 : 40'000;
  const std::size_t ev_iters = quick ? 5'000 : 100'000;

  micro_packets(json, /*pooled=*/false, pkt_iters);
  micro_packets(json, /*pooled=*/true, pkt_iters);
  micro_ring(json, ring_iters);
  micro_events(json, ev_iters);

  const sim::SimTime warmup = quick ? 50 * sim::kMillisecond : kWarmup;
  const sim::SimTime measure = quick ? 50 * sim::kMillisecond : kMeasure;
  macro_fig9(json, warmup, measure);

  if (!quick) json.write("ext_perf");
  return 0;
}
