// Figure 11: scaling the single-component stack on the Xeon.
//
// Series: NEaT 1x / 2x (core-only) and NEaT 1x / 2x / 4x HT (hyper-threaded
// placements, Figures 8b and 10). Paper landmark: NEaT 4x HT sustains
// ~372 krps with 9 lighttpd instances — 13.4% above the best Linux result
// on the same machine (328 krps with 16 lighttpd instances).
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Figure 11: Xeon - scaling the single-component stack [kreq/s]");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Series {
    const char* name;
    const char* slug;
    int replicas;
    bool ht;
  };
  const Series series[] = {
      {"NEaT 1x", "neat1x", 1, false},  {"NEaT 1x HT", "neat1x_ht", 1, true},
      {"NEaT 2x", "neat2x", 2, false},  {"NEaT 2x HT", "neat2x_ht", 2, true},
      {"NEaT 4x HT", "neat4x_ht", 4, true},
  };
  const int xs[] = {1, 2, 3, 4, 5, 8, 9};

  std::printf("%-6s", "webs");
  for (const auto& s : series) std::printf(" %11s", s.name);
  std::printf("\n");

  for (int webs : xs) {
    std::printf("%-6d", webs);
    for (const auto& s : series) {
      // Budget: ht -> os 1 + drv/sys core 2 + replicas (packed) + webs;
      // core-only -> os+sys 1, drv 1, one core per replica, webs fill the
      // rest of the 16 hardware threads.
      int used_threads;
      if (s.ht) {
        used_threads = 1 + 2 + ((s.replicas + 1) / 2) * 2;
      } else {
        used_threads = 1 + 1 + 2 * s.replicas;  // dedicated cores (both
                                                // threads blocked for webs
                                                // only partially)
      }
      if (used_threads + webs > 16) {
        std::printf(" %11s", "-");
        continue;
      }
      NeatRun r;
      r.machine = sim::intel_xeon_e5520();
      r.multi = false;
      r.replicas = s.replicas;
      r.webs = webs;
      r.use_xeon_placement = true;
      r.xeon_ht = s.ht;
      const auto res = run_neat(r);
      std::printf(" %11.1f", res.krps);
      std::fflush(stdout);
      json.add(std::string(s.slug) + "_w" + std::to_string(webs) + "_krps",
               res.krps);
    }
    std::printf("\n");
  }

  LinuxRun lr;
  lr.machine = sim::intel_xeon_e5520();
  lr.webs = 16;
  const auto lin = run_linux(lr);

  NeatRun best;
  best.machine = sim::intel_xeon_e5520();
  best.replicas = 4;
  best.webs = 9;
  best.use_xeon_placement = true;
  best.xeon_ht = true;
  best.trace_out = trace;
  const auto neat4 = run_neat(best);

  std::printf("\nLinux best (16 lighttpd): %.1f krps (paper: 328)\n",
              lin.krps);
  std::printf("NEaT 4x HT (9 lighttpd): %.1f krps (paper: 372)\n",
              neat4.krps);
  std::printf("NEaT advantage: %+.1f%% (paper: +13.4%%)\n",
              (neat4.krps / lin.krps - 1.0) * 100.0);
  add_latency(json, "linux_best_", lin);
  add_latency(json, "neat4x_ht_best_", neat4);
  json.write("fig11_xeon_single");
  return 0;
}
