// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench prints the rows/series of one table or figure from the paper
// next to the values the paper reports, so the output is self-contained
// evidence of how well the shape reproduces.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/testbed.hpp"

namespace neat::bench {

using namespace neat::harness;

inline constexpr sim::SimTime kWarmup = 200 * sim::kMillisecond;
inline constexpr sim::SimTime kMeasure = 300 * sim::kMillisecond;

/// One full NEaT experiment: server machine + configuration -> RunResult.
struct NeatRun {
  sim::MachineParams machine = sim::amd_opteron_6168();
  bool multi{false};
  int replicas{1};
  int webs{1};
  bool xeon_ht{false};          ///< use the HT placements (Xeon only)
  bool use_xeon_placement{false};
  int requests_per_conn{100};
  std::size_t concurrency_per_gen{24};
  int generators{12};
  std::string path{"/file20"};
  std::vector<std::pair<std::string, std::size_t>> files{{"/file20", 20}};
  std::uint64_t seed{12345};
  sim::SimTime warmup{kWarmup};
  sim::SimTime measure{kMeasure};
};

inline RunResult run_neat(const NeatRun& r) {
  Testbed::Config cfg;
  cfg.seed = r.seed;
  cfg.server_machine = r.machine;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.multi_component = r.multi;
  so.replicas = r.replicas;
  so.webs = r.webs;
  so.files = r.files;
  if (r.use_xeon_placement) {
    so.placement = xeon_placement(r.multi, r.replicas, r.webs, r.xeon_ht);
  }
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = r.generators > r.webs ? r.generators : r.webs;
  co.concurrency_per_gen = r.concurrency_per_gen;
  co.requests_per_conn = r.requests_per_conn;
  co.path = r.path;
  ClientRig client = build_client(tb, co, r.webs);
  prepopulate_arp(server, client);
  return run_window(tb, client, r.warmup, r.measure);
}

struct LinuxRun {
  sim::MachineParams machine = sim::amd_opteron_6168();
  baseline::LinuxTuning tuning = baseline::LinuxTuning::best();
  int webs{12};
  int requests_per_conn{100};
  std::size_t concurrency_per_gen{24};
  int generators{12};
  std::string path{"/file20"};
  std::vector<std::pair<std::string, std::size_t>> files{{"/file20", 20}};
  std::uint64_t seed{12345};
  sim::SimTime warmup{kWarmup};
  sim::SimTime measure{kMeasure};
};

inline RunResult run_linux(const LinuxRun& r) {
  Testbed::Config cfg;
  cfg.seed = r.seed;
  cfg.server_machine = r.machine;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.tuning = r.tuning;
  so.webs = r.webs;
  so.files = r.files;
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = r.generators > r.webs ? r.generators : r.webs;
  co.concurrency_per_gen = r.concurrency_per_gen;
  co.requests_per_conn = r.requests_per_conn;
  co.path = r.path;
  ClientRig client = build_client(tb, co, r.webs);
  prepopulate_arp(server, client);
  return run_window(tb, client, r.warmup, r.measure);
}

/// Tiny machine-readable sidecar: accumulates key/value pairs and writes
/// them as one flat JSON object to BENCH_<name>.json in the working
/// directory, so CI can track counters without scraping stdout.
class JsonWriter {
 public:
  void add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    kv_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::uint64_t v) {
    kv_.emplace_back(key, std::to_string(v));
  }
  void add(const std::string& key, int v) {
    kv_.emplace_back(key, std::to_string(v));
  }
  void add(const std::string& key, bool v) {
    kv_.emplace_back(key, v ? "true" : "false");
  }
  void add(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    kv_.emplace_back(key, std::move(quoted));
  }

  bool write(const std::string& bench_name) const {
    const std::string path = "BENCH_" + bench_name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", kv_[i].first.c_str(),
                   kv_[i].second.c_str(), i + 1 < kv_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace neat::bench
