// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench prints the rows/series of one table or figure from the paper
// next to the values the paper reports, so the output is self-contained
// evidence of how well the shape reproduces.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/testbed.hpp"

namespace neat::bench {

using namespace neat::harness;

inline constexpr sim::SimTime kWarmup = 200 * sim::kMillisecond;
inline constexpr sim::SimTime kMeasure = 300 * sim::kMillisecond;

/// Parse `--trace-out=FILE` (or `--trace-out FILE`) from the command line;
/// returns the empty string when the flag is absent. Every bench binary
/// accepts this flag and dumps its flow trace as chrome://tracing JSON.
inline std::string trace_out_arg(int argc, char** argv) {
  const std::string flag = "--trace-out";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(flag + "=", 0) == 0) return a.substr(flag.size() + 1);
    if (a == flag && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

/// Write the simulator's flow trace to `path` (chrome://tracing JSON,
/// loadable in chrome://tracing or ui.perfetto.dev). No-op on empty path.
inline bool write_trace(sim::Simulator& sim, const std::string& path) {
  if (path.empty()) return false;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open trace output %s\n", path.c_str());
    return false;
  }
  sim.tracer().write_chrome_json(f);
  std::printf("wrote %s (%llu events, %llu emitted)\n", path.c_str(),
              static_cast<unsigned long long>(sim.tracer().size()),
              static_cast<unsigned long long>(sim.tracer().emitted()));
  return true;
}

/// One full NEaT experiment: server machine + configuration -> RunResult.
struct NeatRun {
  sim::MachineParams machine = sim::amd_opteron_6168();
  bool multi{false};
  int replicas{1};
  int webs{1};
  bool xeon_ht{false};          ///< use the HT placements (Xeon only)
  bool use_xeon_placement{false};
  int requests_per_conn{100};
  std::size_t concurrency_per_gen{24};
  int generators{12};
  std::string path{"/file20"};
  std::vector<std::pair<std::string, std::size_t>> files{{"/file20", 20}};
  std::uint64_t seed{12345};
  sim::SimTime warmup{kWarmup};
  sim::SimTime measure{kMeasure};
  /// When non-empty, the run's flow trace is written here (chrome JSON).
  std::string trace_out;
};

inline RunResult run_neat(const NeatRun& r) {
  Testbed::Config cfg;
  cfg.seed = r.seed;
  cfg.server_machine = r.machine;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.multi_component = r.multi;
  so.replicas = r.replicas;
  so.webs = r.webs;
  so.files = r.files;
  if (r.use_xeon_placement) {
    so.placement = xeon_placement(r.multi, r.replicas, r.webs, r.xeon_ht);
  }
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = r.generators > r.webs ? r.generators : r.webs;
  co.concurrency_per_gen = r.concurrency_per_gen;
  co.requests_per_conn = r.requests_per_conn;
  co.path = r.path;
  ClientRig client = build_client(tb, co, r.webs);
  prepopulate_arp(server, client);
  RunResult res = run_window(tb, client, r.warmup, r.measure);
  write_trace(tb.sim, r.trace_out);
  return res;
}

struct LinuxRun {
  sim::MachineParams machine = sim::amd_opteron_6168();
  baseline::LinuxTuning tuning = baseline::LinuxTuning::best();
  int webs{12};
  int requests_per_conn{100};
  std::size_t concurrency_per_gen{24};
  int generators{12};
  std::string path{"/file20"};
  std::vector<std::pair<std::string, std::size_t>> files{{"/file20", 20}};
  std::uint64_t seed{12345};
  sim::SimTime warmup{kWarmup};
  sim::SimTime measure{kMeasure};
  std::string trace_out;
};

inline RunResult run_linux(const LinuxRun& r) {
  Testbed::Config cfg;
  cfg.seed = r.seed;
  cfg.server_machine = r.machine;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.tuning = r.tuning;
  so.webs = r.webs;
  so.files = r.files;
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = r.generators > r.webs ? r.generators : r.webs;
  co.concurrency_per_gen = r.concurrency_per_gen;
  co.requests_per_conn = r.requests_per_conn;
  co.path = r.path;
  ClientRig client = build_client(tb, co, r.webs);
  prepopulate_arp(server, client);
  RunResult res = run_window(tb, client, r.warmup, r.measure);
  write_trace(tb.sim, r.trace_out);
  return res;
}

/// Tiny machine-readable sidecar: accumulates key/value pairs and writes
/// them as one flat JSON object to BENCH_<name>.json in the working
/// directory, so CI can track counters without scraping stdout.
class JsonWriter {
 public:
  void add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    kv_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::uint64_t v) {
    kv_.emplace_back(key, std::to_string(v));
  }
  void add(const std::string& key, int v) {
    kv_.emplace_back(key, std::to_string(v));
  }
  void add(const std::string& key, bool v) {
    kv_.emplace_back(key, v ? "true" : "false");
  }
  void add(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    kv_.emplace_back(key, std::move(quoted));
  }

  bool write(const std::string& bench_name) const {
    const std::string path = "BENCH_" + bench_name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", kv_[i].first.c_str(),
                   kv_[i].second.c_str(), i + 1 < kv_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Append the standard latency-percentile columns for one run under
/// `prefix` (e.g. "neat3x_"). Every bench JSON carries these for its key
/// runs so latency regressions are machine-visible, not just rate ones.
inline void add_latency(JsonWriter& j, const std::string& prefix,
                        const RunResult& r) {
  j.add(prefix + "krps", r.krps);
  j.add(prefix + "requests", r.requests);
  j.add(prefix + "error_conns", r.error_conns);
  j.add(prefix + "latency_mean_ms", r.mean_latency_ms);
  j.add(prefix + "latency_p50_ms", r.p50_latency_ms);
  j.add(prefix + "latency_p95_ms", r.p95_latency_ms);
  j.add(prefix + "latency_p99_ms", r.p99_latency_ms);
  j.add(prefix + "latency_p999_ms", r.p999_latency_ms);
}

/// Summarize a host's recovery log: detection, restart-complete and
/// first-service latencies (ms percentiles). For benches that inject
/// faults.
inline void add_recovery(JsonWriter& j, const std::vector<RecoveryEvent>& log) {
  obs::Histogram detect;
  obs::Histogram recover;
  obs::Histogram first;
  for (const auto& ev : log) {
    if (ev.detected_at > 0) detect.record(ev.detection_latency());
    if (ev.recovered_at > 0) recover.record(ev.recovery_latency());
    if (ev.first_service_at > 0) first.record(ev.first_service_latency());
  }
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  j.add("recovery_events", static_cast<std::uint64_t>(log.size()));
  j.add("recovery_detect_p50_ms", ms(detect.quantile(0.5)));
  j.add("recovery_detect_p99_ms", ms(detect.quantile(0.99)));
  j.add("recovery_restart_p50_ms", ms(recover.quantile(0.5)));
  j.add("recovery_restart_p99_ms", ms(recover.quantile(0.99)));
  j.add("recovery_first_service_observed", first.count());
  j.add("recovery_first_service_p50_ms", ms(first.quantile(0.5)));
  j.add("recovery_first_service_p99_ms", ms(first.quantile(0.99)));
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace neat::bench
