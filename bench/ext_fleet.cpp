// Extension bench: the fleet layer's headline experiment.
//
// A cluster of NEaT hosts serves one VIP behind the maglev steering tier
// while client machines hold a million-plus concurrent connections across
// it. The experiment runs TWICE with the same seed: once undisturbed, once
// with a backend host powered off mid-measurement. The tier's ICMP prober
// detects the silence, evicts the host, and the maglev remap plus the
// conntrack pins confine the damage to exactly the crashed host's flows —
// which the gates check numerically:
//
//   * >= the target connection count concurrently established fleet-wide
//     (1M+ across 8 backends in full mode);
//   * the crashed host serves ~nothing after the crash;
//   * every SURVIVING host's measure-window delivered-request count and
//     per-host p99 RTT stay within 5% of the same-seed no-crash run.
//
// Per-host and fleet-merged percentiles (obs_merge fold over the per-host
// hubs) go to BENCH_ext_fleet.json; the exit code reflects the gates.
//
// Usage: ext_fleet [--quick] [--trace-out=FILE]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fleet/app.hpp"
#include "fleet/cluster.hpp"
#include "fleet/obs_merge.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

struct Params {
  std::uint64_t seed{2026};
  int backends{8};
  int clients{4};
  int replicas_per_backend{3};
  int replicas_per_client{4};
  std::uint64_t total_conns{1'050'000};
  std::uint64_t conns_gate{1'000'000};
  int ports{64};
  std::uint64_t sample_every{128};
  sim::SimTime ping_interval{20 * sim::kMillisecond};
  std::uint64_t ramp_batch{1024};
  sim::SimTime ramp_interval{500 * sim::kMicrosecond};
  /// The self-pacing ramp establishes ~850k conns/s fleet-wide; 1M+ needs
  /// ~1.3s of warmup before the measure window opens on a settled fleet.
  sim::SimTime warmup{1800 * sim::kMillisecond};
  sim::SimTime measure{500 * sim::kMillisecond};
  sim::SimTime crash_after{150 * sim::kMillisecond};  // into the measure
  std::size_t victim{0};
};

struct HostOut {
  std::uint64_t conns{0};             ///< established at measure start
  std::uint64_t window_responses{0};  ///< delivered in the measure window
  double p50_ms{0.0};
  double p99_ms{0.0};
};

struct RunOut {
  std::uint64_t established{0};
  std::uint64_t attempted{0};
  std::uint64_t connect_failures{0};
  std::uint64_t window_responses{0};
  std::uint64_t responses_total{0};
  std::uint64_t requests_served{0};
  std::uint64_t lost_conns{0};
  std::uint64_t retries{0};
  std::uint64_t declared_down{0};
  std::uint64_t victim_post_crash{0};
  std::size_t hosts_up_end{0};
  double fleet_p50_ms{0.0};
  double fleet_p99_ms{0.0};
  std::map<int, HostOut> hosts;
  double wall_s{0.0};
};

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

RunOut run_fleet(const Params& p, bool crash, const std::string& trace_out) {
  const auto wall0 = std::chrono::steady_clock::now();

  fleet::FleetConfig fc;
  fc.seed = p.seed;
  fc.backends = p.backends;
  fc.clients = p.clients;
  fc.replicas_per_backend = p.replicas_per_backend;
  fc.replicas_per_client = p.replicas_per_client;
  // Ping frames are 16 bytes; the default 96 KiB rings would cost real
  // memory times a million connections for nothing.
  fc.backend_tcp.send_buf = fc.backend_tcp.recv_buf = 4096;
  fc.client_tcp.send_buf = fc.client_tcp.recv_buf = 4096;
  fleet::FleetCluster fleet(fc);

  std::vector<std::uint16_t> ports;
  for (int i = 0; i < p.ports; ++i) {
    ports.push_back(static_cast<std::uint16_t>(8000 + i));
  }

  std::vector<std::unique_ptr<fleet::PingServer>> servers;
  for (std::size_t i = 0; i < fleet.backend_count(); ++i) {
    fleet::FleetHost& b = fleet.backend(i);
    auto s = std::make_unique<fleet::PingServer>(
        fleet.sim, "ping" + std::to_string(b.id), *b.host, b.id);
    s->pin(b.app_thread());
    s->start(ports);
    servers.push_back(std::move(s));
  }
  fleet.set_adoption_handler(
      [&servers](fleet::FleetHost& to, StackReplica& rep,
                 const std::vector<net::TcpSocketPtr>& adopted) {
        servers[static_cast<std::size_t>(to.id)]->adopt(rep, adopted);
      });

  std::vector<std::unique_ptr<fleet::FleetClient>> clients;
  for (std::size_t j = 0; j < fleet.client_count(); ++j) {
    fleet::FleetClient::Config cc;
    cc.vip = fleet.config().steering.vip;
    cc.ports = ports;
    cc.total_conns = p.total_conns / fleet.client_count();
    cc.ramp_batch = p.ramp_batch;
    cc.ramp_interval = p.ramp_interval;
    cc.sample_every = p.sample_every;
    cc.ping_interval = p.ping_interval;
    fleet::FleetHost& c = fleet.client(j);
    auto cl = std::make_unique<fleet::FleetClient>(
        fleet.sim, "cli" + std::to_string(j), *c.host, std::move(cc));
    cl->pin(c.app_thread());
    clients.push_back(std::move(cl));
  }

  fleet.start_health_probing();
  for (auto& c : clients) c->start();
  fleet.sim.run_for(p.warmup);

  RunOut out;
  for (std::size_t i = 0; i < fleet.backend_count(); ++i) {
    const auto n = static_cast<std::uint64_t>(fleet.backend_connections(i));
    out.established += n;
    out.hosts[fleet.backend(i).id].conns = n;
  }
  for (auto& c : clients) c->mark();

  if (crash) {
    fleet.sim.run_for(p.crash_after);
    fleet.crash_host(p.victim);
    std::uint64_t victim_at_crash = 0;
    for (const auto& c : clients) {
      const auto& per = c->app_stats().per_host_responses;
      if (auto it = per.find(static_cast<int>(p.victim)); it != per.end()) {
        victim_at_crash += it->second;
      }
    }
    fleet.sim.run_for(p.measure - p.crash_after);
    std::uint64_t victim_at_end = 0;
    for (const auto& c : clients) {
      const auto& per = c->app_stats().per_host_responses;
      if (auto it = per.find(static_cast<int>(p.victim)); it != per.end()) {
        victim_at_end += it->second;
      }
    }
    out.victim_post_crash = victim_at_end - victim_at_crash;
  } else {
    fleet.sim.run_for(p.measure);
  }

  std::vector<const obs::Hub*> client_hubs;
  for (std::size_t j = 0; j < fleet.client_count(); ++j) {
    client_hubs.push_back(fleet.client(j).hub.get());
  }
  for (const auto& c : clients) {
    const auto& st = c->app_stats();
    out.attempted += st.attempted;
    out.connect_failures += st.connect_failures;
    out.responses_total += st.responses;
    out.lost_conns += st.closed_reset;
    out.retries += st.retries;
    for (const auto& [id, n] : c->window_responses()) {
      out.hosts[id].window_responses += n;
      out.window_responses += n;
    }
  }
  for (const auto& s : servers) out.requests_served += s->app_stats().requests;
  for (auto& [id, h] : out.hosts) {
    const obs::Histogram rtt = fleet::merged_histogram(
        client_hubs, "fleet.rtt.host" + std::to_string(id) + "_ns");
    h.p50_ms = ms(rtt.quantile(0.5));
    h.p99_ms = ms(rtt.quantile(0.99));
  }
  const obs::Histogram rtt = fleet::merged_histogram(client_hubs, "fleet.rtt_ns");
  out.fleet_p50_ms = ms(rtt.quantile(0.5));
  out.fleet_p99_ms = ms(rtt.quantile(0.99));
  out.declared_down = fleet.steering().stats().backends_declared_down;
  for (int i = 0; i < p.backends; ++i) {
    if (fleet.steering().has_backend(i)) ++out.hosts_up_end;
  }
  write_trace(fleet.sim, trace_out);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall0)
                   .count();
  return out;
}

void add_run(JsonWriter& j, const std::string& prefix, const RunOut& r) {
  j.add(prefix + "established", r.established);
  j.add(prefix + "attempted", r.attempted);
  j.add(prefix + "connect_failures", r.connect_failures);
  j.add(prefix + "window_responses", r.window_responses);
  j.add(prefix + "responses_total", r.responses_total);
  j.add(prefix + "requests_served", r.requests_served);
  j.add(prefix + "lost_conns", r.lost_conns);
  j.add(prefix + "retries", r.retries);
  j.add(prefix + "declared_down", r.declared_down);
  j.add(prefix + "hosts_up_end", static_cast<std::uint64_t>(r.hosts_up_end));
  j.add(prefix + "rtt_p50_ms", r.fleet_p50_ms);
  j.add(prefix + "rtt_p99_ms", r.fleet_p99_ms);
  j.add(prefix + "wall_s", r.wall_s);
  for (const auto& [id, h] : r.hosts) {
    const std::string hp = prefix + "host" + std::to_string(id) + "_";
    j.add(hp + "conns", h.conns);
    j.add(hp + "window_responses", h.window_responses);
    j.add(hp + "rtt_p50_ms", h.p50_ms);
    j.add(hp + "rtt_p99_ms", h.p99_ms);
  }
}

bool within(double a, double b, double rel, double abs_slack) {
  return std::fabs(a - b) <= std::max(rel * std::max(a, b), abs_slack);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::string trace = trace_out_arg(argc, argv);

  Params p;
  if (quick) {
    p.backends = 4;
    p.clients = 2;
    p.replicas_per_backend = 2;
    p.replicas_per_client = 2;
    p.total_conns = 20'000;
    p.conns_gate = 19'000;
    p.ports = 8;
    p.sample_every = 16;
    p.ping_interval = 10 * sim::kMillisecond;
    p.ramp_batch = 512;
    p.ramp_interval = 1 * sim::kMillisecond;
    p.warmup = 250 * sim::kMillisecond;
    p.measure = 400 * sim::kMillisecond;
    p.crash_after = 100 * sim::kMillisecond;
  }

  header(quick ? "Fleet: cluster crash isolation (quick)"
               : "Fleet: 1M+ connections, 8 hosts, mid-run host crash");
  std::printf("backends=%d clients=%d conns=%llu ports=%d (seed %llu)\n",
              p.backends, p.clients,
              static_cast<unsigned long long>(p.total_conns), p.ports,
              static_cast<unsigned long long>(p.seed));

  std::printf("\n-- run A: undisturbed --\n");
  const RunOut base = run_fleet(p, /*crash=*/false, "");
  std::printf("established %llu, window responses %llu, fleet p50/p99 "
              "%.3f/%.3f ms (%.1fs wall)\n",
              static_cast<unsigned long long>(base.established),
              static_cast<unsigned long long>(base.window_responses),
              base.fleet_p50_ms, base.fleet_p99_ms, base.wall_s);

  std::printf("\n-- run B: same seed, host %d powered off mid-measure --\n",
              static_cast<int>(p.victim));
  const RunOut dead = run_fleet(p, /*crash=*/true, trace);
  std::printf("established %llu, declared down %llu, hosts up %zu, victim "
              "post-crash responses %llu (%.1fs wall)\n",
              static_cast<unsigned long long>(dead.established),
              static_cast<unsigned long long>(dead.declared_down),
              dead.hosts_up_end,
              static_cast<unsigned long long>(dead.victim_post_crash),
              dead.wall_s);

  // ---- gates --------------------------------------------------------------
  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::printf("GATE FAIL: %s\n", what);
    ok = false;
  };

  if (base.established < p.conns_gate || dead.established < p.conns_gate) {
    fail("concurrent established connections below target");
  }
  if (p.backends < (quick ? 4 : 8)) fail("host count below target");
  if (dead.declared_down != 1) fail("prober did not declare exactly one host");
  if (dead.hosts_up_end != static_cast<std::size_t>(p.backends) - 1) {
    fail("crashed host still in (or survivor missing from) the table");
  }
  // The crashed host must be silent after the crash (a handful of frames
  // already in flight may still land).
  if (dead.victim_post_crash > 64) fail("victim served after the crash");
  // Blast radius: every surviving host's delivered count and p99 within 5%
  // of the same-seed undisturbed run.
  std::printf("\n%-6s %12s %12s %10s %10s\n", "host", "base resp",
              "crash resp", "base p99", "crash p99");
  for (const auto& [id, b] : base.hosts) {
    if (id == static_cast<int>(p.victim)) continue;
    const auto it = dead.hosts.find(id);
    if (it == dead.hosts.end()) {
      fail("surviving host missing from crash run");
      continue;
    }
    const HostOut& d = it->second;
    std::printf("%-6d %12llu %12llu %9.3f %9.3f\n", id,
                static_cast<unsigned long long>(b.window_responses),
                static_cast<unsigned long long>(d.window_responses),
                b.p99_ms, d.p99_ms);
    if (!within(static_cast<double>(b.window_responses),
                static_cast<double>(d.window_responses), 0.05, 16.0)) {
      fail("surviving host's delivered count drifted >5% after the crash");
    }
    if (!within(b.p99_ms, d.p99_ms, 0.05, 0.02)) {
      fail("surviving host's p99 drifted >5% after the crash");
    }
  }

  JsonWriter json;
  json.add("quick", quick);
  json.add("seed", p.seed);
  json.add("backends", p.backends);
  json.add("clients", p.clients);
  json.add("replicas_per_backend", p.replicas_per_backend);
  json.add("ports", p.ports);
  json.add("conns_target", p.total_conns);
  json.add("victim", static_cast<int>(p.victim));
  add_run(json, "nocrash_", base);
  add_run(json, "crash_", dead);
  json.add("gates_passed", ok);
  // Written in quick mode too (the "quick" flag marks it): CI uploads the
  // sidecar as its auditable crash-isolation artifact.
  json.write("ext_fleet");

  std::printf("\n%s\n", ok ? "ALL FLEET GATES PASSED" : "FLEET GATES FAILED");
  return ok ? 0 : 1;
}
