// Extension experiment: the programmable-NIC ("driverless") mode of §4.
//
// "If the programmable NIC were to offer the same interface as the network
// driver, there would be no need for the drivers and we could free their
// cores." With the data plane in hardware, the driver core hosts an extra
// lighttpd instead — the freed core converts directly into throughput.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Extension: programmable-NIC offload (SS4) — freeing the driver "
         "core");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Row {
    const char* label;
    const char* slug;
    bool offload;
    int webs;
  };
  // Baseline: classic layout, 6 webs. Offload: the driver core (core 2)
  // hosts a 7th web because the NIC runs the data plane.
  const Row rows[] = {
      {"driver process (classic)", "classic", false, 6},
      {"NIC runs data plane, +1 web", "offload", true, 7},
  };

  std::printf("%-30s %12s %14s\n", "mode", "kreq/s", "driver fwd pkts");
  for (const auto& row : rows) {
    Testbed::Config cfg;
    cfg.seed = 3030;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 3;
    so.webs = row.webs;
    so.host.smartnic_offload = row.offload;
    if (row.offload) {
      // Hand-build the placement: the 7th web takes the driver's core.
      so.placement = amd_placement(false, 3, 6);
      so.placement.webs.push_back(so.placement.driver);
    }
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 12;
    co.concurrency_per_gen = 24;
    ClientRig client = build_client(tb, co, row.webs);
    prepopulate_arp(server, client);
    const auto r = run_window(tb, client, kWarmup, kMeasure);
    std::printf("%-30s %12.1f %14llu\n", row.label, r.krps,
                (unsigned long long)
                    server.neat->driver().driver_stats().rx_forwarded);
    std::fflush(stdout);
    write_trace(tb.sim, trace);
    trace.clear();  // trace only the first row
    const std::string prefix = std::string(row.slug) + "_";
    add_latency(json, prefix, r);
    json.add(prefix + "driver_rx_forwarded",
             server.neat->driver().driver_stats().rx_forwarded);
  }
  json.write("ext_smartnic");
  std::printf("\n=> the freed driver core converts into one more "
              "application instance's worth of throughput (~50 krps on "
              "this machine)\n");
  return 0;
}
