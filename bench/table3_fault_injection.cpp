// Table 3: fault-injection experiment.
//
// 100 runs; each injects a fault at a random (code-size-weighted) point in
// the stack of a running system under the scalability workload, then lets
// NEaT's recovery proceed. Paper results:
//   fully transparent recovery : 53.8%
//   TCP connections lost       : 46.2%
// Only TCP faults lose visible state; after every recovery the server must
// be reachable again (new connections accepted).
#include "bench_util.hpp"
#include "fault/injector.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Table 3: fault injection (100 failing runs, multi-component)");
  std::string trace = trace_out_arg(argc, argv);

  int transparent = 0;
  int tcp_lost = 0;
  int reachable_after = 0;
  std::uint64_t conns_lost_total = 0;
  std::uint64_t detections_total = 0;
  std::uint64_t restarts_total = 0;
  std::uint64_t retransmits_total = 0;
  double detection_ms_total = 0.0;
  obs::Histogram all_latency;  // client request latency across all runs
  std::vector<RecoveryEvent> all_events;
  const int kRuns = 100;

  for (int run = 0; run < kRuns; ++run) {
    Testbed::Config cfg;
    cfg.seed = 9000 + static_cast<std::uint64_t>(run);
    Testbed tb(cfg);
    NeatServerOptions so;
    so.multi_component = true;
    so.replicas = 2;
    so.webs = 4;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 4;
    co.concurrency_per_gen = 16;
    ClientRig client = build_client(tb, co, 4);
    prepopulate_arp(server, client);

    // Warm up, then inject one fault into a random component.
    tb.sim.run_for(60 * sim::kMillisecond);
    fault::FaultInjector injector(*server.neat,
                                  1234 + static_cast<std::uint64_t>(run));
    const auto outcome = injector.inject_random();

    // Let recovery play out, then verify the listener is reachable again:
    // new connections must keep being accepted.
    std::uint64_t accepted_before = 0;
    for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
      accepted_before += server.neat->replica(i).tcp().stats().conns_accepted;
    }
    tb.sim.run_for(120 * sim::kMillisecond);
    std::uint64_t accepted_after = 0;
    for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
      accepted_after += server.neat->replica(i).tcp().stats().conns_accepted;
    }

    if (outcome.tcp_state_lost) {
      ++tcp_lost;
      conns_lost_total += outcome.connections_lost;
    } else {
      ++transparent;
    }
    if (accepted_after > accepted_before) ++reachable_after;

    const auto& sup = server.neat->supervisor().stats();
    detections_total += sup.detections;
    restarts_total += sup.restarts + sup.driver_restarts;
    detection_ms_total += sup.mean_detection_ms() * sup.detections;
    for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
      retransmits_total += server.neat->replica(i).tcp().stats().retransmits;
    }
    for (const auto& g : client.gens) all_latency.merge(g->report().latency);
    const auto& log = server.neat->recovery_log();
    all_events.insert(all_events.end(), log.begin(), log.end());
    write_trace(tb.sim, trace);
    trace.clear();  // trace only the first run
  }

  std::printf("%-34s %8s %8s\n", "", "paper", "measured");
  std::printf("%-34s %7.1f%% %7.1f%%\n", "fully transparent recovery", 53.8,
              100.0 * transparent / kRuns);
  std::printf("%-34s %7.1f%% %7.1f%%\n", "TCP connections lost", 46.2,
              100.0 * tcp_lost / kRuns);
  std::printf("\nserver reachable after recovery: %d/%d runs "
              "(paper: always)\n", reachable_after, kRuns);
  std::printf("avg connections lost per TCP fault: %.1f (one replica's "
              "share only — the other replica is untouched)\n",
              tcp_lost ? static_cast<double>(conns_lost_total) / tcp_lost
                       : 0.0);
  std::printf("supervision: %llu watchdog detections (mean %.2f ms), "
              "%llu restarts across %d runs\n",
              static_cast<unsigned long long>(detections_total),
              detections_total
                  ? detection_ms_total / static_cast<double>(detections_total)
                  : 0.0,
              static_cast<unsigned long long>(restarts_total), kRuns);

  JsonWriter json;
  json.add("runs", kRuns);
  json.add("transparent_pct", 100.0 * transparent / kRuns);
  json.add("tcp_lost_pct", 100.0 * tcp_lost / kRuns);
  json.add("reachable_after", reachable_after);
  json.add("avg_conns_lost_per_tcp_fault",
           tcp_lost ? static_cast<double>(conns_lost_total) / tcp_lost : 0.0);
  json.add("detections", detections_total);
  json.add("mean_detection_ms",
           detections_total
               ? detection_ms_total / static_cast<double>(detections_total)
               : 0.0);
  json.add("restarts", restarts_total);
  json.add("tcp_retransmits", retransmits_total);
  json.add("latency_mean_ms", all_latency.mean() / 1e6);
  json.add("latency_p50_ms",
           static_cast<double>(all_latency.quantile(0.50)) / 1e6);
  json.add("latency_p95_ms",
           static_cast<double>(all_latency.quantile(0.95)) / 1e6);
  json.add("latency_p99_ms",
           static_cast<double>(all_latency.quantile(0.99)) / 1e6);
  json.add("latency_p999_ms",
           static_cast<double>(all_latency.quantile(0.999)) / 1e6);
  add_recovery(json, all_events);
  json.write("table3_fault_injection");
  return 0;
}
