// Figure 13: expected fraction of state preserved after a failure vs
// maximum throughput, across the Xeon configurations.
//
// The expected preserved fraction assumes (as the paper does) a uniform
// fault probability across the stack's code: a component fails with
// probability proportional to its code size, and only the TCP state of the
// affected replica is irrecoverable under stateless recovery. With N
// replicas, a TCP fault loses 1/N of the connections; in a
// single-component replica the whole process is TCP-stateful.
//
// Paper landmark: throughput AND reliability both increase with the number
// of replicas — they are not a trade-off.
#include "bench_util.hpp"
#include "fault/injector.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

double p_state_loss_per_fault(bool multi) {
  double total = 0.0;
  double lossy = 0.0;
  for (const auto& w : fault::default_weights()) {
    total += w.weight;
    if (w.is_driver) continue;  // driver faults never lose TCP state
    if (multi) {
      if (w.component == Component::kTcp) lossy += w.weight;
    } else {
      lossy += w.weight;  // single-component: the whole stack is one
                          // process holding the TCP state
    }
  }
  return lossy / total;
}

}  // namespace

int main(int argc, char** argv) {
  header("Figure 13: expected % of state preserved after a failure vs max "
         "throughput (Xeon)");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Config {
    const char* name;
    const char* slug;
    bool multi;
    int replicas;
    bool ht;
    int webs;  // enough instances to reach the configuration's peak
  };
  const Config configs[] = {
      {"NEaT 1x  (1 core)", "neat1x", false, 1, false, 8},
      {"Multi 1x (2 cores)", "multi1x", true, 1, false, 4},
      {"NEaT 2x  (2 cores)", "neat2x", false, 2, false, 6},
      {"NEaT 3x  (3 cores)", "neat3x", false, 3, false, 5},
      {"Multi 2x (4 cores)", "multi2x", true, 2, false, 4},
      {"Multi 2x (2c/4t HT)", "multi2x_ht", true, 2, true, 8},
      {"NEaT 4x  (2c/4t HT)", "neat4x_ht", false, 4, true, 9},
  };

  std::printf("%-22s %18s %22s\n", "configuration", "max kreq/s",
              "E[state preserved]");
  for (const auto& c : configs) {
    NeatRun r;
    r.machine = sim::intel_xeon_e5520();
    r.multi = c.multi;
    r.replicas = c.replicas;
    r.webs = c.webs;
    r.use_xeon_placement = true;
    r.xeon_ht = c.ht;
    r.trace_out = trace;
    trace.clear();  // trace only the first configuration
    const auto res = run_neat(r);
    const double preserved =
        1.0 - p_state_loss_per_fault(c.multi) / c.replicas;
    std::printf("%-22s %18.1f %21.1f%%\n", c.name, res.krps,
                100.0 * preserved);
    std::fflush(stdout);
    const std::string prefix = std::string(c.slug) + "_";
    add_latency(json, prefix, res);
    json.add(prefix + "state_preserved_pct", 100.0 * preserved);
  }
  json.write("fig13_reliability");
  std::printf("\npaper shape: both axes increase with replica count; multi-"
              "component configs sit higher on reliability, single-component"
              " higher on throughput per core\n");
  return 0;
}
