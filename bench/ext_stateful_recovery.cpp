// Extension experiment: checkpoint-based stateful TCP recovery.
//
// The paper (§6.6) keeps recovery stateless and notes: "an option is to
// rely on checkpointing techniques to support a (TCP) stateful recovery
// strategy allowing existing connections to survive failures. However,
// such techniques typically incur nontrivial run-time and recovery-time
// overhead ... trading off performance for reliability."
//
// This bench implements that option and measures both sides of the trade:
// saturated throughput vs checkpoint interval, and the fraction of a
// crashed replica's connections that survive.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Extension: stateful recovery via checkpointing — the paper's "
         "discussed trade-off, measured");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;
  std::vector<RecoveryEvent> all_events;

  struct Row {
    const char* label;
    const char* slug;
    sim::SimTime interval;
  };
  const Row rows[] = {
      {"stateless (paper default)", "stateless", 0},
      {"checkpoint every 50 ms", "ckpt50ms", 50 * sim::kMillisecond},
      {"checkpoint every 5 ms", "ckpt5ms", 5 * sim::kMillisecond},
      {"checkpoint every 500 us", "ckpt500us", 500 * sim::kMicrosecond},
  };

  std::printf("%-28s %12s %14s %16s\n", "recovery strategy", "kreq/s",
              "conns lost", "conns restored");
  for (const auto& row : rows) {
    Testbed::Config cfg;
    cfg.seed = 2121;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 1;  // saturate the one replica: overhead is visible
    so.webs = 4;
    so.host.checkpoint_interval = row.interval;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 4;
    co.concurrency_per_gen = 24;
    co.requests_per_conn = 1000;  // long-lived connections worth saving
    ClientRig client = build_client(tb, co, 4);
    prepopulate_arp(server, client);

    // Measure saturated throughput.
    tb.sim.run_for(kWarmup);
    client.mark();
    tb.sim.run_for(kMeasure);
    const auto agg = client.aggregate(kMeasure);

    // Crash the replica; count survivors.
    std::uint64_t errors_before = 0;
    for (auto& g : client.gens) errors_before += g->report().error_conns;
    server.neat->inject_crash(server.neat->replica(0), Component::kWhole);
    tb.sim.run_for(500 * sim::kMillisecond);
    std::uint64_t errors_after = 0;
    for (auto& g : client.gens) errors_after += g->report().error_conns;
    const auto& ev = server.neat->recovery_log().back();

    std::printf("%-28s %12.1f %14llu %16llu\n", row.label, agg.krps,
                (unsigned long long)(errors_after - errors_before),
                (unsigned long long)ev.connections_restored);
    std::fflush(stdout);
    write_trace(tb.sim, trace);
    trace.clear();  // trace only the first row
    const auto& log = server.neat->recovery_log();
    all_events.insert(all_events.end(), log.begin(), log.end());
    const std::string prefix = std::string(row.slug) + "_";
    json.add(prefix + "krps", agg.krps);
    json.add(prefix + "conns_lost", errors_after - errors_before);
    json.add(prefix + "conns_restored", ev.connections_restored);
    json.add(prefix + "latency_mean_ms", agg.mean_latency_ms);
    json.add(prefix + "latency_p50_ms", agg.p50_latency_ms);
    json.add(prefix + "latency_p95_ms", agg.p95_latency_ms);
    json.add(prefix + "latency_p99_ms", agg.p99_latency_ms);
    json.add(prefix + "latency_p999_ms", agg.p999_latency_ms);
  }
  add_recovery(json, all_events);
  json.write("ext_stateful_recovery");
  std::printf("\n=> tighter checkpoint intervals save more connections and "
              "cost more throughput — the paper's reliability/performance "
              "trade-off, quantified. NEaT's replicated stateless design "
              "avoids the trade entirely by shrinking the blast radius "
              "(1/N of connections) instead of preserving state.\n");
  return 0;
}
