// Figure 12: comparing configurations under the same connection-churn
// workload (12-core AMD, **one request per connection** — stressing the
// stack's connection setup/teardown path).
//
// Test points follow the paper's x-axis: 1 lighttpd with 8/16/32/64
// concurrent connections, then 2 lighttpd with 32, and 4 lighttpd with 64.
// Paper landmarks:
//   * at the lightest load (8 connections) Multi 1x beats Multi 2x —
//     lightly loaded components sleep, and the extra wake-up latency is
//     more visible in the multi-component stack;
//   * at higher loads, more replicas win.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Figure 12: AMD - configurations under 1-request-per-connection "
         "load [kreq/s]");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Config {
    const char* name;
    const char* slug;
    bool multi;
    int replicas;
  };
  const Config configs[] = {
      {"NEaT 1x", "neat1x", false, 1}, {"NEaT 2x", "neat2x", false, 2},
      {"NEaT 3x", "neat3x", false, 3}, {"Multi 1x", "multi1x", true, 1},
      {"Multi 2x", "multi2x", true, 2},
  };
  struct Point {
    const char* label;
    const char* slug;
    int webs;
    std::size_t total_conns;
  };
  const Point points[] = {
      {"8", "c8", 1, 8},           {"16", "c16", 1, 16},
      {"32", "c32", 1, 32},        {"64", "c64", 1, 64},
      {"2srv,32", "s2c32", 2, 32}, {"4srv,64", "s4c64", 4, 64},
  };

  std::printf("%-10s", "point");
  for (const auto& c : configs) std::printf(" %9s", c.name);
  std::printf("\n");

  for (const auto& p : points) {
    std::printf("%-10s", p.label);
    for (const auto& c : configs) {
      NeatRun r;
      r.multi = c.multi;
      r.replicas = c.replicas;
      r.webs = p.webs;
      r.requests_per_conn = 1;  // the modified single-request test
      r.generators = p.webs;
      r.concurrency_per_gen = p.total_conns / static_cast<std::size_t>(p.webs);
      r.trace_out = trace;
      trace.clear();  // trace only the first run
      const auto res = run_neat(r);
      std::printf(" %9.1f", res.krps);
      std::fflush(stdout);
      const std::string prefix =
          std::string(c.slug) + "_" + p.slug + "_";
      json.add(prefix + "krps", res.krps);
      // Latency matters most at the light-load points (the figure's whole
      // story is wake-up latency): full percentiles for the 8-conn column.
      if (p.total_conns == 8) add_latency(json, prefix, res);
    }
    std::printf("\n");
  }
  json.write("fig12_config_compare");
  std::printf("\npaper landmark: at 8 connections Multi 1x > Multi 2x "
              "(sleep/wake latency); at 4srv,64 all multi-replica configs "
              "beat single-replica ones\n");
  return 0;
}
