// Extension: workload engine campaigns (beyond the paper's fixed-size
// closed-loop httperf runs).
//
// Runs the built-in wl:: scenario library — multi-tenant open-loop traffic
// with heavy-tailed sizes, MMPP bursts, diurnal ramps, a flash crowd
// against the AutoScaler, and three adversaries (spoofed SYN flood,
// slowloris, connection churn) — and reports per-tenant goodput and
// CO-corrected latency percentiles, plus the replica-count timeline.
//
// Usage: ext_workloads [--quick] [--list] [--scenario=NAME]
//
// Exit code is non-zero if the flash-crowd scenario fails to demonstrate
// scale-up during the surge and lazy termination after it — the
// autoscaling contract this bench exists to pin down.
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "wl/scenario.hpp"

namespace {

using neat::bench::JsonWriter;
using neat::wl::Scenario;
using neat::wl::ScenarioResult;
using neat::wl::TenantResult;

void print_result(const ScenarioResult& r) {
  std::printf("%-28s %8s %8s %8s %8s %9s %7s %7s %7s\n", "tenant", "sess",
              "done", "aband", "shed", "krps", "p50ms", "p99ms", "p999ms");
  for (const TenantResult& t : r.tenants) {
    std::printf("%-28s %8llu %8llu %8llu %8llu %9.1f %7.2f %7.2f %7.2f\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.sessions_started),
                static_cast<unsigned long long>(t.sessions_completed),
                static_cast<unsigned long long>(t.sessions_abandoned),
                static_cast<unsigned long long>(t.sessions_shed), t.krps,
                t.p50_ms, t.p99_ms, t.p999_ms);
  }
  std::string timeline;
  for (const auto& [t, n] : r.replica_timeline) {
    timeline += std::to_string(t / neat::sim::kMillisecond) + ":" +
                std::to_string(n) + " ";
  }
  std::printf("replicas over time (ms:count): %s\n", timeline.c_str());
  std::printf(
      "scale_ups=%llu scale_downs=%llu lazy_term=%llu max_replicas=%zu "
      "end_replicas=%zu\n",
      static_cast<unsigned long long>(r.scale_ups),
      static_cast<unsigned long long>(r.scale_downs),
      static_cast<unsigned long long>(r.lazy_terminations), r.max_replicas,
      r.end_replicas);
  if (r.syns_sent > 0) {
    std::printf("syns_sent=%llu filters_retired=%llu flow_filters_end=%llu\n",
                static_cast<unsigned long long>(r.syns_sent),
                static_cast<unsigned long long>(r.server_filters_retired),
                static_cast<unsigned long long>(r.server_flow_filters_end));
  }
  if (r.churn_conns > 0) {
    std::printf("churn_conns=%llu filters_retired=%llu\n",
                static_cast<unsigned long long>(r.churn_conns),
                static_cast<unsigned long long>(r.server_filters_retired));
  }
  if (r.slowloris_held > 0) {
    std::printf("slowloris_held=%llu\n",
                static_cast<unsigned long long>(r.slowloris_held));
  }
  std::fflush(stdout);
}

void add_json(JsonWriter& j, const ScenarioResult& r) {
  const std::string p = r.name + ".";
  for (const TenantResult& t : r.tenants) {
    const std::string tp = p + t.name + "_";
    j.add(tp + "sessions", t.sessions_started);
    j.add(tp + "completed", t.sessions_completed);
    j.add(tp + "abandoned", t.sessions_abandoned);
    j.add(tp + "shed", t.sessions_shed);
    j.add(tp + "requests", t.requests);
    j.add(tp + "krps", t.krps);
    j.add(tp + "goodput_mbps", t.goodput_mbps);
    j.add(tp + "p50_ms", t.p50_ms);
    j.add(tp + "p99_ms", t.p99_ms);
    j.add(tp + "p999_ms", t.p999_ms);
    j.add(tp + "raw_p99_ms", t.raw_p99_ms);
    j.add(tp + "slo_violations", t.slo_violations);
  }
  std::string timeline;
  for (const auto& [t, n] : r.replica_timeline) {
    if (!timeline.empty()) timeline += " ";
    timeline += std::to_string(t / neat::sim::kMillisecond) + ":" +
                std::to_string(n);
  }
  j.add(p + "replica_timeline", timeline);
  j.add(p + "max_replicas", static_cast<std::uint64_t>(r.max_replicas));
  j.add(p + "end_replicas", static_cast<std::uint64_t>(r.end_replicas));
  j.add(p + "scale_ups", r.scale_ups);
  j.add(p + "scale_downs", r.scale_downs);
  j.add(p + "lazy_terminations", r.lazy_terminations);
  if (r.syns_sent > 0) j.add(p + "syns_sent", r.syns_sent);
  if (r.churn_conns > 0) j.add(p + "churn_conns", r.churn_conns);
  if (r.slowloris_held > 0) j.add(p + "slowloris_held", r.slowloris_held);
  j.add(p + "filters_retired", r.server_filters_retired);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") quick = true;
    if (a == "--list") {
      for (const auto& s : neat::wl::builtin_scenarios()) {
        std::printf("%-14s %s\n", s.name.c_str(), s.summary.c_str());
      }
      return 0;
    }
    if (a.rfind("--scenario=", 0) == 0) only = a.substr(11);
  }

  JsonWriter json;
  bool flash_ok = true;
  bool ran_flash = false;
  int ran = 0;
  for (const auto& s : neat::wl::builtin_scenarios()) {
    if (!only.empty() && s.name != only) continue;
    neat::bench::header(("workload scenario: " + s.name + " — " + s.summary)
                            .c_str());
    const Scenario sc = s.make(quick);
    const ScenarioResult r = neat::wl::run_scenario(sc);
    print_result(r);
    add_json(json, r);
    ++ran;
    if (s.name == "flash_crowd") {
      ran_flash = true;
      // The autoscaling contract: the surge forces extra replicas, the
      // calm after it lazily terminates them again.
      flash_ok = r.scale_ups > 0 && r.max_replicas > 1 &&
                 r.lazy_terminations > 0 && r.end_replicas < r.max_replicas;
      if (!flash_ok) {
        std::printf("FLASH CROWD CONTRACT FAILED: ups=%llu max=%zu "
                    "lazy=%llu end=%zu\n",
                    static_cast<unsigned long long>(r.scale_ups),
                    r.max_replicas,
                    static_cast<unsigned long long>(r.lazy_terminations),
                    r.end_replicas);
      }
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "no scenario named '%s' (try --list)\n",
                 only.c_str());
    return 2;
  }
  json.add("quick", quick);
  json.write("ext_workloads");
  return ran_flash && !flash_ok ? 1 : 0;
}
