// Ablations for the design choices DESIGN.md calls out.
//
// A) MWAIT fast wake vs kernel-assisted wake — the dedicated-core fast
//    channels (§4) matter exactly at light load (Figure 12's regime).
// B) NIC steering: per-flow tracking filters vs pure RSS during a
//    scale-down — the paper's proposed hardware extension is what makes
//    lazy termination safe.
// C) TSO on/off for bulk transfers — why the paper enables it ("greatly
//    improves performance", §6).
// D) Delayed ACKs on/off — packet-count reduction on the wire.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

void ablation_wake(JsonWriter& json, std::string trace) {
  header("Ablation A: wake-up cost at light load (NEaT 1x, 8 connections, "
         "1 req/conn)");
  std::printf("%-28s %12s %14s\n", "wake latency (fast/kernel)", "kreq/s",
              "mean lat [us]");
  struct P {
    sim::SimTime fast, kern;
  };
  for (const auto& p :
       {P{1 * sim::kMicrosecond, 5 * sim::kMicrosecond},
        P{25 * sim::kMicrosecond, 25 * sim::kMicrosecond},
        P{60 * sim::kMicrosecond, 120 * sim::kMicrosecond}}) {
    Testbed::Config cfg;
    cfg.seed = 42;
    cfg.server_machine.wake_fast_latency = p.fast;
    cfg.server_machine.wake_kernel_latency = p.kern;
    cfg.client_machine.wake_fast_latency = p.fast;
    cfg.client_machine.wake_kernel_latency = p.kern;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 1;
    so.webs = 1;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 1;
    co.concurrency_per_gen = 8;
    co.requests_per_conn = 1;
    ClientRig client = build_client(tb, co, 1);
    prepopulate_arp(server, client);
    const auto r = run_window(tb, client, kWarmup, kMeasure);
    std::printf("%9.0f / %-16.0f %12.1f %14.1f\n",
                sim::to_micros(p.fast), sim::to_micros(p.kern), r.krps,
                r.mean_latency_ms * 1000.0);
    write_trace(tb.sim, trace);
    trace.clear();  // trace only the first point
    char tag[48];
    std::snprintf(tag, sizeof(tag), "wake_%.0fus_", sim::to_micros(p.fast));
    add_latency(json, tag, r);
  }
  std::printf("=> sleepy-component wake latency directly caps light-load "
              "throughput (the Figure 12 effect)\n");
}

void ablation_steering(JsonWriter& json) {
  header("Ablation B: scale-down with vs without per-flow tracking filters");
  std::printf("%-26s %16s %16s\n", "NIC mode", "errors", "verdict");
  for (bool tracking : {true, false}) {
    Testbed::Config cfg;
    cfg.seed = 43;
    cfg.server_nic.tracking_filters = tracking;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 2;
    so.webs = 2;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 2;
    co.concurrency_per_gen = 16;
    co.requests_per_conn = 50;
    ClientRig client = build_client(tb, co, 2);
    prepopulate_arp(server, client);

    tb.sim.run_for(150 * sim::kMillisecond);
    for (auto& g : client.gens) g->mark();
    if (tracking) {
      server.neat->begin_scale_down(server.neat->replica(1));
    } else {
      // begin_scale_down() now refuses to drain a loaded replica without
      // tracking filters (it would be this ablation's broken arm in
      // production). Perform the raw steering change it would have made —
      // point every RSS bucket at replica 0 — to measure the breakage.
      const int q0 = server.neat->replica(0).queue();
      tb.server_nic.set_indirection(
          std::vector<int>(tb.server_nic.indirection().size(), q0));
    }
    tb.sim.run_for(400 * sim::kMillisecond);
    std::uint64_t errs = 0;
    for (auto& g : client.gens) errs += g->report().error_conns;
    std::printf("%-26s %16llu %16s\n",
                tracking ? "tracking filters" : "pure RSS",
                (unsigned long long)errs,
                errs == 0 ? "no conn broken" : "connections DIED");
    json.add(std::string(tracking ? "tracking_" : "pure_rss_") +
                 "scale_down_errors",
             errs);
  }
  std::printf("=> without the NIC extension, re-steering moves live flows "
              "to the wrong replica (paper SS4)\n");
}

void ablation_tso(JsonWriter& json) {
  header("Ablation C: TSO on/off, 1MB file transfers (Linux best config)");
  std::printf("%-10s %12s %14s\n", "TSO", "thpt [MB/s]", "mean lat [ms]");
  for (bool tso : {true, false}) {
    LinuxRun r;
    r.webs = 12;
    r.files = {{"/file", 1048576}};
    r.path = "/file";
    r.concurrency_per_gen = 4;
    r.warmup = 500 * sim::kMillisecond;
    r.measure = 1200 * sim::kMillisecond;
    auto tuning = baseline::LinuxTuning::best();
    tuning.tso = tso;
    r.tuning = tuning;
    const auto res = run_linux(r);
    std::printf("%-10s %12.1f %14.1f\n", tso ? "on" : "off", res.mbps,
                res.mean_latency_ms);
    const std::string prefix = tso ? "tso_on_" : "tso_off_";
    add_latency(json, prefix, res);
    json.add(prefix + "mbps", res.mbps);
  }
  std::printf("=> TSO lets smaller configurations reach full 10Gb/s "
              "utilization (paper SS6)\n");
}

void ablation_delack(JsonWriter& json) {
  header("Ablation D: delayed ACKs on/off (NEaT 2x, 20B requests)");
  std::printf("%-14s %12s %18s\n", "delayed ACK", "kreq/s",
              "pure ACKs/request");
  for (bool delack : {true, false}) {
    NeatRun r;
    r.replicas = 2;
    r.webs = 4;
    net::TcpConfig tcp;
    if (!delack) tcp.delayed_ack = 0;
    r.machine = sim::amd_opteron_6168();
    Testbed::Config cfg;
    cfg.seed = 44;
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = r.replicas;
    so.webs = r.webs;
    so.host.tcp = tcp;
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 4;
    co.concurrency_per_gen = 24;
    co.tcp = tcp;
    ClientRig client = build_client(tb, co, 4);
    prepopulate_arp(server, client);
    const auto res = run_window(tb, client, kWarmup, kMeasure);
    std::uint64_t acks = 0;
    for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
      acks += server.neat->replica(i).tcp().stats().pure_acks_out;
    }
    std::printf("%-14s %12.1f %18.2f\n", delack ? "on" : "off", res.krps,
                static_cast<double>(acks) /
                    static_cast<double>(res.requests ? res.requests : 1));
    const std::string prefix = delack ? "delack_on_" : "delack_off_";
    add_latency(json, prefix, res);
    json.add(prefix + "pure_acks_per_request",
             static_cast<double>(acks) /
                 static_cast<double>(res.requests ? res.requests : 1));
  }
  std::printf("=> immediate acking doubles the server's TX packet load\n");
}

}  // namespace

int main(int argc, char** argv) {
  JsonWriter json;
  ablation_wake(json, trace_out_arg(argc, argv));
  ablation_steering(json);
  ablation_tso(json);
  ablation_delack(json);
  json.write("ablation_design_choices");
  return 0;
}
