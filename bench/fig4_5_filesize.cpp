// Figures 4 and 5: Linux (optimal configuration) vs requested file size.
//
// Figure 4: latency and total number of requests vs file size — latency
// blows up once files exceed ~100KB and the 10G link saturates.
// Figure 5: request rate and throughput vs file size — beyond ~7KB the
// link bandwidth, not the CPU, is the bottleneck.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Figures 4+5: Linux optimal config - latency/requests/throughput "
         "vs file size");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Size {
    const char* label;
    std::size_t bytes;
  };
  const Size sizes[] = {
      {"1B", 1},      {"10B", 10},     {"100B", 100}, {"1K", 1024},
      {"10K", 10240}, {"100K", 102400}, {"1M", 1048576},
      {"10M", 10485760},
  };

  std::printf("%-6s %12s %12s %14s %14s %8s\n", "size", "kreq/s",
              "latency[ms]", "requests[k]", "thpt[MB/s]", "errconn");
  for (const auto& s : sizes) {
    LinuxRun r;
    r.webs = 12;
    r.files = {{"/file", s.bytes}};
    r.path = "/file";
    r.requests_per_conn = 100;
    // Fewer, longer transfers for the big files (as httperf effectively
    // does once the link is the bottleneck): a multi-megabyte transfer per
    // connection takes hundreds of milliseconds, so the measurement window
    // must cover several of them.
    if (s.bytes >= 1048576) {
      r.concurrency_per_gen = 4;
      r.warmup = 500 * sim::kMillisecond;
      r.measure = 1500 * sim::kMillisecond;
    } else {
      r.concurrency_per_gen = 24;
    }
    r.trace_out = trace;
    trace.clear();  // trace only the first run
    const auto res = run_linux(r);
    std::printf("%-6s %12.1f %12.2f %14.1f %14.1f %8llu\n", s.label,
                res.krps, res.mean_latency_ms,
                static_cast<double>(res.requests) / 1000.0, res.mbps,
                (unsigned long long)res.error_conns);
    std::fflush(stdout);
    const std::string prefix = std::string("linux_") + s.label + "_";
    add_latency(json, prefix, res);
    json.add(prefix + "mbps", res.mbps);
  }
  json.write("fig4_5_filesize");
  std::printf("\npaper landmarks: request rate flat until ~1K, link "
              "saturates (~1.2 GB/s) above ~7KB, latency explodes for "
              ">=100K files, errors appear at saturation\n");
  return 0;
}
