// Figure 9: scaling the multi-component stack on the 8-core/16-thread Xeon.
//
// Series: Multi 1x, Multi 2x (core-only placements), Multi 2x HT (both
// replicas colocated on sibling threads, Figure 8c). Lighttpd counts follow
// the paper's x-axis {1,2,3,4,6,8}; beyond the dedicated cores, instances
// run on the hyper-threads of the stack cores themselves.
// Paper landmarks: throughput knees at 4 instances for Multi 1x;
// Multi 2x HT peaks at ~322 krps with 8 instances.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Figure 9: Xeon - scaling the multi-component stack [kreq/s]");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Series {
    const char* name;
    const char* slug;
    int replicas;
    bool ht;
  };
  const Series series[] = {
      {"Multi 1x", "multi1x", 1, false},
      {"Multi 2x", "multi2x", 2, false},
      {"Multi 2x HT", "multi2x_ht", 2, true},
  };
  const int xs[] = {1, 2, 3, 4, 6, 8};

  std::printf("%-6s %12s %12s %12s\n", "webs", series[0].name, series[1].name,
              series[2].name);
  for (int webs : xs) {
    std::printf("%-6d", webs);
    for (const auto& s : series) {
      // Hardware-thread budget check is inside xeon_placement (asserts);
      // compute conservatively here.
      const int sys_threads = s.ht ? 3 : 3;  // os(+syscall), driver, ...
      const int stack_threads = 2 * s.replicas;
      if (sys_threads + (s.ht ? (stack_threads + 1) / 2 * 2 : stack_threads * 2) +
              webs > 16) {
        std::printf(" %12s", "-");
        continue;
      }
      NeatRun r;
      r.machine = sim::intel_xeon_e5520();
      r.multi = true;
      r.replicas = s.replicas;
      r.webs = webs;
      r.use_xeon_placement = true;
      r.xeon_ht = s.ht;
      // Trace the paper's headline point: Multi 2x HT at 8 instances.
      if (s.ht && webs == 8) r.trace_out = trace;
      const auto res = run_neat(r);
      std::printf(" %12.1f", res.krps);
      std::fflush(stdout);
      const std::string prefix =
          std::string(s.slug) + "_w" + std::to_string(webs) + "_";
      json.add(prefix + "krps", res.krps);
      if (s.ht && webs == 8) add_latency(json, "multi2x_ht_peak_", res);
    }
    std::printf("\n");
  }
  json.write("fig9_xeon_multi");
  std::printf("\npaper landmarks: Multi 1x peaks at 4 webs (~240); "
              "Multi 2x HT peaks at 8 webs (~322)\n");
  return 0;
}
