// Table 2: 10G NIC driver CPU usage breakdown under a range of loads
// (Xeon, single-component stack with 3 replicas, as in the paper).
//
// Paper rows (CPU load | active in kernel | polling | web krps):
//    6%  | 33.3% | 51.8% |   3
//   60%  | 14.2% | 27.9% |  45
//   88%  |  5.4% | 19.7% |  90
//   97%  |  0.1% |  7.4% | 242
//
// A mostly idle driver spends its active time suspending/resuming (MWAIT is
// privileged -> kernel) and polling; under load the wasted share shrinks
// and CPU load levels off near 100% while throughput keeps growing.
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

struct Row {
  double target_krps;
  std::size_t conc_per_gen;
  sim::SimTime think;
};

}  // namespace

int main(int argc, char** argv) {
  header("Table 2: 10G driver CPU usage breakdown (Xeon, 3 replicas)");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  const Row rows[] = {
      {3.0, 1, 3 * sim::kMillisecond},
      {45.0, 8, 900 * sim::kMicrosecond},
      {90.0, 16, 800 * sim::kMicrosecond},
      {242.0, 24, 0},
  };

  std::printf("%-10s %-10s %-16s %-10s %-10s\n", "CPU load", "kernel",
              "polling", "web krps", "(target)");
  for (const auto& row : rows) {
    Testbed::Config cfg;
    cfg.seed = 777;
    cfg.server_machine = sim::intel_xeon_e5520();
    Testbed tb(cfg);
    NeatServerOptions so;
    so.replicas = 3;
    so.webs = 6;
    so.placement = xeon_placement(false, 3, 6, true);
    ServerRig server = build_neat_server(tb, so);
    ClientOptions co;
    co.generators = 6;
    co.concurrency_per_gen = row.conc_per_gen;
    ClientRig client = build_client(tb, co, 6);
    for (auto& g : client.gens) g->config().think_time = row.think;
    prepopulate_arp(server, client);

    tb.sim.run_for(kWarmup);
    client.mark();
    const auto& drv = server.neat->driver();
    const auto s0 = drv.stats();
    tb.sim.run_for(kMeasure);
    const auto s1 = drv.stats();
    const auto agg = client.aggregate(kMeasure);

    const double proc = static_cast<double>(s1.processing - s0.processing);
    const double poll = static_cast<double>(s1.polling - s0.polling);
    const double kern = static_cast<double>(s1.kernel - s0.kernel);
    const double active = proc + poll + kern;
    const double budget = cfg.server_machine.freq.ghz * 1e9 *
                          sim::to_seconds(kMeasure) /
                          cfg.server_machine.work_scale;
    std::printf("%8.1f%% %8.1f%% %14.1f%% %10.1f %10.0f\n",
                100.0 * active / budget,
                active > 0 ? 100.0 * kern / active : 0.0,
                active > 0 ? 100.0 * poll / active : 0.0, agg.krps,
                row.target_krps);
    std::fflush(stdout);
    write_trace(tb.sim, trace);
    trace.clear();  // trace only the first row

    char tag[32];
    std::snprintf(tag, sizeof(tag), "target%.0f_", row.target_krps);
    const std::string prefix = tag;
    json.add(prefix + "cpu_load_pct", 100.0 * active / budget);
    json.add(prefix + "kernel_pct",
             active > 0 ? 100.0 * kern / active : 0.0);
    json.add(prefix + "polling_pct",
             active > 0 ? 100.0 * poll / active : 0.0);
    json.add(prefix + "krps", agg.krps);
    json.add(prefix + "latency_mean_ms", agg.mean_latency_ms);
    json.add(prefix + "latency_p50_ms", agg.p50_latency_ms);
    json.add(prefix + "latency_p95_ms", agg.p95_latency_ms);
    json.add(prefix + "latency_p99_ms", agg.p99_latency_ms);
    json.add(prefix + "latency_p999_ms", agg.p999_latency_ms);
  }
  json.write("table2_driver_cpu");
  std::printf("\npaper shape: CPU load grows sharply then levels off; the "
              "kernel and polling shares shrink as load rises\n");
  return 0;
}
